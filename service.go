package fedshap

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"fedshap/internal/resilience"
)

// Valuation job service wire API: the JSON types exchanged between the
// fedvald daemon (internal/valserve) and its clients, plus a small HTTP
// client. They live in the root package so external programs can submit
// jobs without importing internals.

// JobState is the lifecycle state of a valuation job.
type JobState string

// The job lifecycle: Queued → Running → one of the terminal states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
	// JobTimedOut is reached by a running job that exceeded its
	// JobRequest.DeadlineSeconds budget. Like the other terminal states
	// it survives a daemon restart.
	JobTimedOut JobState = "timed_out"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled || s == JobTimedOut
}

// JobRequest describes a valuation job, mirroring the fedval CLI flags:
// pick a dataset family, a model, a federation size and an algorithm.
type JobRequest struct {
	// Data is the dataset family: femnist | adult | synthetic.
	Data string `json:"data"`
	// Setup selects the synthetic partition setup (synthetic only).
	Setup string `json:"setup,omitempty"`
	// Noise is the noise level for the noisy synthetic setups.
	Noise float64 `json:"noise,omitempty"`
	// Model is the FL model family: mlp | cnn | xgb | logreg | deepmlp.
	Model string `json:"model"`
	// N is the federation size (2..127).
	N int `json:"n"`
	// Algorithm names the valuation algorithm (ipss, exact, tmc, ...).
	Algorithm string `json:"algorithm"`
	// Gamma is the sampling budget γ; 0 selects the paper's policy.
	Gamma int `json:"gamma,omitempty"`
	// K is the K-Greedy probe depth.
	K int `json:"k,omitempty"`
	// Seed drives dataset generation, training and sampling.
	Seed int64 `json:"seed,omitempty"`
	// Scale is the substrate scale: tiny | small.
	Scale string `json:"scale,omitempty"`
	// Workers bounds the job's concurrent coalition evaluations
	// (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// DeadlineSeconds, when > 0, bounds the job's run time: a job still
	// executing this many seconds after it leaves the queue is stopped
	// and reaches the terminal timed_out state. Queue wait does not
	// count, and the deadline is not part of the problem fingerprint —
	// re-submitting with a different deadline reuses cached utilities.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// Confidence, when in (0, 1), turns on anytime valuation: the job
	// tracks running per-client estimates with simultaneous confidence
	// intervals at this level and streams interim "values" events over
	// GET /v1/jobs/{id}/events.
	Confidence float64 `json:"confidence,omitempty"`
	// RankStop, with Confidence set, stops sampling as soon as every
	// pairwise client ranking is resolved at the requested confidence.
	// Unspent budget is reported in Report.BudgetUnspent. Only algorithms
	// exposing their complete evaluation plan support it.
	RankStop bool `json:"rank_stop,omitempty"`
	// Versions are per-client dataset version counters (len == N when
	// set). Version 0 is the base dataset; bumping a client's version
	// perturbs its partition deterministically. Delta revaluation (POST
	// /v1/jobs/{id}/revalue) bumps versions for the changed clients and
	// re-evaluates only the coalitions containing them.
	Versions []int `json:"versions,omitempty"`
}

// RevalueRequest is the body of POST /v1/jobs/{id}/revalue: the set of
// clients whose data changed since the referenced job ran. The daemon
// submits a follow-up job whose version vector bumps exactly these clients,
// warm-starting every coalition untouched by the change from the
// fingerprint store.
type RevalueRequest struct {
	// Changed lists the 0-based client indices with new data.
	Changed []int `json:"changed"`
}

// InterimValues is one anytime snapshot of a running job, streamed as a
// "values" event on GET /v1/jobs/{id}/events: current per-client estimates
// with simultaneous confidence intervals and progress through the
// evaluation plan.
type InterimValues struct {
	// JobID is the job the snapshot belongs to.
	JobID string `json:"job_id"`
	// Names are the client display names, aligned with Values.
	Names []string `json:"names,omitempty"`
	// Values are the current per-client estimates.
	Values []float64 `json:"values"`
	// CILow/CIHigh bound each client's value: all n intervals hold
	// simultaneously at the requested confidence, at every snapshot of
	// the run (anytime validity).
	CILow  []float64 `json:"ci_low"`
	CIHigh []float64 `json:"ci_high"`
	// Confidence echoes the requested simultaneous confidence level.
	Confidence float64 `json:"confidence"`
	// Observations counts marginal contributions folded per client.
	Observations []int `json:"observations,omitempty"`
	// SeenCoalitions / PlannedCoalitions measure progress through the
	// evaluation plan (PlannedCoalitions is 0 when the algorithm exposes
	// no complete plan).
	SeenCoalitions    int `json:"seen_coalitions"`
	PlannedCoalitions int `json:"planned_coalitions,omitempty"`
	// Resolved reports whether every pairwise client ranking is decided
	// at the requested confidence.
	Resolved bool `json:"resolved"`
	// At stamps the snapshot.
	At time.Time `json:"at"`
}

// BatchRequest is the body of POST /v1/jobs:batch: many job submissions
// in one round trip, the shape a load generator or a tenant onboarding
// burst wants. Jobs are admitted independently — one invalid or
// queue-rejected job never blocks its neighbours.
type BatchRequest struct {
	// Jobs are the submissions, in order. The daemon caps a batch at
	// MaxBatchJobs entries.
	Jobs []JobRequest `json:"jobs"`
}

// MaxBatchJobs bounds one BatchRequest; larger batches are rejected whole
// with HTTP 413 (split them client-side).
const MaxBatchJobs = 256

// BatchItem is the outcome of one submission inside a batch: exactly one
// of Status (accepted) or Error (rejected) is set.
type BatchItem struct {
	Status *JobStatus `json:"status,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// BatchResponse answers POST /v1/jobs:batch. Items align 1:1 with the
// request's Jobs slice.
type BatchResponse struct {
	// Accepted counts items carrying a Status.
	Accepted int `json:"accepted"`
	// Jobs holds each submission's outcome, in request order.
	Jobs []BatchItem `json:"jobs"`
}

// JobStatus is the service's view of one job.
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State JobState `json:"state"`
	// Request echoes the submitted job.
	Request JobRequest `json:"request"`
	// Problem names the constructed valuation problem.
	Problem string `json:"problem,omitempty"`
	// Fingerprint identifies the problem in the persistent utility cache.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Budget is the resolved sampling budget γ.
	Budget int `json:"budget"`
	// FreshEvals counts fresh coalition evaluations so far — progress
	// toward Budget. It only ever increases while the job runs.
	FreshEvals int `json:"fresh_evals"`
	// WarmedCoalitions counts utilities preloaded from the persistent
	// cache; a fully warm job finishes with FreshEvals == 0.
	WarmedCoalitions int `json:"warmed_coalitions"`
	// RemoteWorkers is the size of the evaluation worker fleet the job
	// started with; 0 means the job evaluates in-process.
	RemoteWorkers int `json:"remote_workers,omitempty"`
	// RevalueOf is the job ID this job revalues (set by POST
	// /v1/jobs/{id}/revalue); empty for directly submitted jobs.
	RevalueOf string `json:"revalue_of,omitempty"`
	// Error describes a failure (state failed or cancelled).
	Error string `json:"error,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt bound the job's lifecycle.
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Report is the valuation outcome (state done only).
	Report *Report `json:"report,omitempty"`
}

// WorkerInfo describes one remote evaluation worker attached to the
// daemon's coordinator (see internal/evalnet): jobs fan their coalition
// evaluations out across these machines.
type WorkerInfo struct {
	// ID is the coordinator-assigned worker identifier.
	ID int `json:"id"`
	// Name is the worker's self-reported name (fedvalworker -name).
	Name string `json:"name"`
	// Addr is the remote address the worker connected from.
	Addr string `json:"addr,omitempty"`
	// Capacity is the worker's concurrent-evaluation limit.
	Capacity int `json:"capacity"`
	// InFlight is the number of evaluations currently assigned.
	InFlight int `json:"in_flight"`
	// Completed counts evaluations this worker has answered.
	Completed int64 `json:"completed"`
	// EWMAMillis is the worker's exponentially weighted moving average
	// evaluation latency in milliseconds; 0 until its first result. The
	// coordinator schedules by expected completion time derived from it.
	EWMAMillis float64 `json:"ewma_ms"`
	// Redispatched counts speculative straggler-relief copies this worker
	// received.
	Redispatched int64 `json:"redispatched"`
	// Flaps counts this worker name's recent unexpected disconnects
	// inside the coordinator's flap window. Reaching the flap threshold
	// benches the name (see FleetMetrics.Quarantined).
	Flaps int `json:"flaps,omitempty"`
}

// FleetMetrics is the scheduler section of GET /metrics: the remote
// evaluation fleet's per-worker state plus the coordinator's speculation
// counters.
type FleetMetrics struct {
	// Workers lists the attached workers, as GET /v1/workers does.
	Workers []WorkerInfo `json:"workers"`
	// TotalCapacity is the fleet's aggregate in-flight limit.
	TotalCapacity int `json:"total_capacity"`
	// PendingTasks is the depth of the coordinator's unassigned-task queue.
	PendingTasks int `json:"pending_tasks"`
	// Redispatches counts speculative task copies dispatched to relieve
	// stragglers; RedispatchWins counts the copies that answered first.
	Redispatches   int64 `json:"redispatches"`
	RedispatchWins int64 `json:"redispatch_wins"`
	// Requeues counts tasks re-dispatched because their worker died
	// mid-evaluation (distinct from speculative straggler relief).
	Requeues int64 `json:"requeues"`
	// DeadlineRequeues counts tasks requeued because a worker held them
	// past the per-task deadline (fedvald -task-deadline) — hung, not
	// merely slow.
	DeadlineRequeues int64 `json:"deadline_requeues,omitempty"`
	// Quarantined lists worker names currently benched for flapping;
	// QuarantineRejections counts attach attempts refused while benched.
	Quarantined          []string `json:"quarantined,omitempty"`
	QuarantineRejections int64    `json:"quarantine_rejections,omitempty"`
}

// TraceSpan is one step of a job's trace timeline (GET
// /v1/jobs/{id}/trace): a named interval with its source — "daemon" for
// coordinator-side phases, a worker's name for fleet dispatch spans — and
// free-form attributes. An instant event has DurationSeconds 0 and
// End == Start; a span still open when the trace was fetched has a nil
// End.
type TraceSpan struct {
	// Name is the lifecycle step: submit, queue, build_problem,
	// warm_start, prefetch, aggregate, report, dispatch, redispatch.
	Name string `json:"name"`
	// Source attributes the span: "daemon", or a worker name.
	Source string `json:"source,omitempty"`
	// Start and End bound the span (End nil while it is open).
	Start time.Time  `json:"start"`
	End   *time.Time `json:"end,omitempty"`
	// DurationSeconds is End - Start (0 for events and open spans).
	DurationSeconds float64 `json:"duration_seconds"`
	// Attrs carries step-specific detail: task counts by outcome on
	// dispatch spans, the reason (worker-death | straggler) on redispatch
	// events, warmed/planned counts on the daemon phases.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// JobTrace is the assembled span timeline of one job — the answer to
// "where did this job spend its time" across the daemon → coordinator →
// worker path. Traces live in daemon memory only: they cover jobs run by
// the current process and do not survive a restart (unlike job statuses
// and reports, which replay from the journal).
type JobTrace struct {
	// JobID is the job the spans belong to.
	JobID string `json:"job_id"`
	// State is the job's lifecycle state when the trace was fetched.
	State JobState `json:"state"`
	// Spans is the timeline ordered by start time. Worker-side evaluation
	// time is merged into per-worker dispatch spans (attr eval_seconds).
	Spans []TraceSpan `json:"spans"`
}

// JobMetrics is the job-table section of GET /metrics.
type JobMetrics struct {
	// Queued/Running/Done/Failed/Cancelled/TimedOut count jobs per
	// lifecycle state.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	TimedOut  int `json:"timed_out"`
	// QueueDepth is the number of jobs waiting for a pool worker;
	// QueueCapacity is the admission limit (fedvald -queue).
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}

// CacheMetrics is the utility-cache section of GET /metrics. The hit
// ratio is warmed / (warmed + fresh) across the jobs the daemon currently
// remembers: 1 means every requested coalition was served from cache.
type CacheMetrics struct {
	// WarmedTotal sums every job's coalitions preloaded from the
	// persistent store; FreshTotal sums fresh coalition evaluations.
	WarmedTotal int64 `json:"warmed_total"`
	FreshTotal  int64 `json:"fresh_total"`
	// HitRatio is WarmedTotal / (WarmedTotal + FreshTotal), 0 when no
	// coalition has been requested yet.
	HitRatio float64 `json:"hit_ratio"`
	// StoreFingerprints and StoreBytes describe the persistent store on
	// disk (0 when persistence is disabled).
	StoreFingerprints int   `json:"store_fingerprints"`
	StoreBytes        int64 `json:"store_bytes"`
	// Compactions counts background store+journal compaction sweeps run
	// since start (fedvald -compact-every); CompactionDropped sums the
	// duplicate records they removed.
	Compactions       int64 `json:"compactions"`
	CompactionDropped int64 `json:"compaction_dropped"`
}

// JournalMetrics is the durability section of GET /metrics.
type JournalMetrics struct {
	// Path is the journal file (empty when durability is disabled) and
	// Bytes its current size on disk.
	Path  string `json:"path,omitempty"`
	Bytes int64  `json:"bytes"`
}

// Metrics is the GET /metrics response: one JSON snapshot of queue depth,
// cache effectiveness, journal size and — when a worker fleet is
// configured — the adaptive scheduler's per-worker state.
type Metrics struct {
	Jobs    JobMetrics     `json:"jobs"`
	Cache   CacheMetrics   `json:"cache"`
	Journal JournalMetrics `json:"journal"`
	// Fleet is nil when the daemon runs without -worker-addr.
	Fleet *FleetMetrics `json:"fleet,omitempty"`
	// Degraded reports memory-only operation: a journal or store write
	// failed and the daemon is running without persistence until its
	// background probe restores it (see OPERATIONS.md, "Failure modes &
	// degraded operation").
	Degraded bool `json:"degraded,omitempty"`
}

// ServiceError is a non-2xx daemon response.
type ServiceError struct {
	StatusCode int
	Message    string
	// RetryAfter carries the server's Retry-After hint on throttled
	// responses (HTTP 429 when the job queue is saturated); 0 when the
	// response had none. Retry policies prefer it over computed backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ServiceError) Error() string {
	return fmt.Sprintf("fedshap: service: %s (HTTP %d)", e.Message, e.StatusCode)
}

// RetryAfterHint implements resilience.RetryAfterHinter.
func (e *ServiceError) RetryAfterHint() time.Duration { return e.RetryAfter }

// ErrJobNotFound is reported for unknown job IDs.
var ErrJobNotFound = errors.New("fedshap: job not found")

// ServiceClient talks to a fedvald daemon.
type ServiceClient struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8787".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// Retry, when non-nil, governs transparent request retries:
	// idempotent GETs are retried on transport errors and 502/503/504,
	// and any request on 429 — honoring the server's Retry-After over
	// the policy's own backoff. NewServiceClient installs a conservative
	// default; set nil (or build the struct directly) to disable.
	Retry *resilience.Policy
}

// NewServiceClient builds a client for the daemon at base.
func NewServiceClient(base string) *ServiceClient {
	return &ServiceClient{
		BaseURL: strings.TrimRight(base, "/"),
		Retry: &resilience.Policy{
			Initial:     200 * time.Millisecond,
			Max:         5 * time.Second,
			MaxAttempts: 4,
		},
	}
}

func (c *ServiceClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *ServiceClient) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = buf
	}
	attempt := func(ctx context.Context) error {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return decodeServiceError(resp)
		}
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	if c.Retry == nil {
		return attempt(ctx)
	}
	return c.Retry.Do(ctx, func(ctx context.Context) error {
		err := attempt(ctx)
		if err == nil || retryableRequestError(method, err) {
			return err
		}
		return resilience.Permanent(err)
	})
}

// retryableRequestError decides which failures a retry can plausibly
// fix: a 429 on any method (the request was rejected before any state
// changed, and the server asked us back), and transport errors or
// gateway-style 5xx on idempotent GETs. Everything else — validation
// errors, not-found, a 503 from a daemon that is shutting down, or a
// transport error on a POST that may already have been applied — is
// permanent.
func retryableRequestError(method string, err error) bool {
	var se *ServiceError
	if errors.As(err, &se) {
		if se.StatusCode == http.StatusTooManyRequests {
			return true
		}
		if method == http.MethodGet {
			switch se.StatusCode {
			case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				return true
			}
		}
		return false
	}
	if errors.Is(err, ErrJobNotFound) {
		return false
	}
	if method == http.MethodGet {
		var ue *url.Error
		return errors.As(err, &ue)
	}
	return false
}

// decodeServiceError turns a non-2xx daemon response into an error,
// extracting the {"error": "..."} envelope and any Retry-After hint
// when present.
func decodeServiceError(resp *http.Response) error {
	if resp.StatusCode == http.StatusNotFound {
		return ErrJobNotFound
	}
	var e struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	se := &ServiceError{StatusCode: resp.StatusCode, Message: msg}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// Submit enqueues a valuation job and returns its initial status.
func (c *ServiceClient) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitBatch enqueues many jobs in one POST /v1/jobs:batch round trip.
// Admission is per-item: the response carries one BatchItem per request
// job, each a status or a rejection message, so a partially full queue
// accepts what fits. The call errors only when the batch itself is
// rejected (empty, oversized, or the daemon is unreachable).
func (c *ServiceClient) SubmitBatch(ctx context.Context, reqs []JobRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/jobs:batch", BatchRequest{Jobs: reqs}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job fetches the current status of one job.
func (c *ServiceClient) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the daemon knows, newest first.
func (c *ServiceClient) Jobs(ctx context.Context) ([]*JobStatus, error) {
	return c.JobsSince(ctx, "", 0)
}

// JobsSince pages the job history (GET /v1/jobs?since=...&limit=...).
// since is a job ID or an RFC 3339 timestamp: only jobs submitted
// strictly after it are returned, oldest first, so a poller passes the
// last ID it saw and receives exactly the jobs it missed. An empty since
// lists newest first (the plain Jobs ordering). limit > 0 caps the page
// size. An unknown since job ID reports ErrJobNotFound.
func (c *ServiceClient) JobsSince(ctx context.Context, since string, limit int) ([]*JobStatus, error) {
	path := "/v1/jobs"
	q := url.Values{}
	if since != "" {
		q.Set("since", since)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out []*JobStatus
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches a job's span timeline (GET /v1/jobs/{id}/trace). Traces
// exist for jobs run by the current daemon process; for a job replayed
// from the journal after a restart the timeline is empty.
func (c *ServiceClient) Trace(ctx context.Context, id string) (*JobTrace, error) {
	var tr JobTrace
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Cancel requests cancellation of a queued or running job and returns the
// resulting status.
func (c *ServiceClient) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Workers lists the remote evaluation workers attached to the daemon.
// With no worker fleet configured the list is empty and jobs evaluate
// in-process.
func (c *ServiceClient) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var out []WorkerInfo
	if err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics fetches the daemon's operational snapshot (GET /metrics): queue
// depth, cache hit ratio, journal size and the evaluation fleet's
// per-worker scheduler state.
func (c *ServiceClient) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Report fetches the final report of a completed job.
func (c *ServiceClient) Report(ctx context.Context, id string) (*Report, error) {
	var r Report
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/report", nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Revalue asks the daemon to revalue a finished job after the given
// clients' data changed (POST /v1/jobs/{id}/revalue). It returns the status
// of the newly submitted follow-up job, whose RevalueOf field links back to
// id. Coalitions not containing a changed client are warm-started from the
// fingerprint store, so the follow-up spends fresh evaluations only on the
// changed part of the game.
func (c *ServiceClient) Revalue(ctx context.Context, id string, changed []int) (*JobStatus, error) {
	var st JobStatus
	path := "/v1/jobs/" + url.PathEscape(id) + "/revalue"
	if err := c.do(ctx, http.MethodPost, path, RevalueRequest{Changed: changed}, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WatchJob subscribes to a job's server-sent event stream
// (GET /v1/jobs/{id}/events) and returns its final status once the job
// reaches a terminal state. onEvent, when non-nil, observes every
// notification: event is the transition name — "submitted", "running",
// "progress", "done", "failed", "cancelled" or "timed_out" — and st is the job's full
// status snapshot at that moment (the done snapshot carries the Report).
// The daemon pushes events as they happen, so progress arrives without
// polling latency or per-poll request cost; it also emits ": ping"
// heartbeat comments on idle streams so aggressive proxies keep the
// connection open.
//
// A stream that drops before a terminal event — a proxy idle-timeout or a
// momentary network fault — is resumed automatically: WatchJob reconnects
// with a Last-Event-ID header carrying the last event id it saw, so the
// daemon skips the snapshot the client already holds and continues from
// the next transition. Reconnection gives up after a few consecutive
// attempts that deliver nothing new (a daemon restart, or one predating
// the events endpoint) and returns an error; callers wanting full
// robustness fall back to polling Wait, as `fedval -server` does.
// Cancelling ctx closes the stream and returns the last status seen
// alongside ctx.Err().
func (c *ServiceClient) WatchJob(ctx context.Context, id string, onEvent func(event string, st *JobStatus)) (*JobStatus, error) {
	return c.watch(ctx, id, onEvent, nil)
}

// WatchValues is WatchJob plus a live feed of the job's anytime estimates:
// onValues observes every interim "values" snapshot the daemon streams (a
// job submitted without Confidence produces none). Reconnection and
// terminal-status semantics match WatchJob.
func (c *ServiceClient) WatchValues(ctx context.Context, id string, onEvent func(event string, st *JobStatus), onValues func(*InterimValues)) (*JobStatus, error) {
	return c.watch(ctx, id, onEvent, onValues)
}

func (c *ServiceClient) watch(ctx context.Context, id string, onEvent func(event string, st *JobStatus), onValues func(*InterimValues)) (*JobStatus, error) {
	var (
		last        *JobStatus
		lastEventID string
		stale       int // consecutive attempts with no event AND no heartbeat
		lastErr     error
	)
	for stale < 3 {
		st, alive, err := c.watchStream(ctx, id, lastEventID, &lastEventID, &last, onEvent, onValues)
		if st != nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return last, ctx.Err()
		}
		var se *ServiceError
		if errors.As(err, &se) || errors.Is(err, ErrJobNotFound) {
			return last, err // the daemon answered: reconnecting won't help
		}
		lastErr = err
		if alive {
			stale = 0
		} else {
			stale++
		}
		// Breathe before redialling: a daemon mid-restart refuses
		// connections for a moment, and instant retries would burn every
		// attempt inside that window.
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
	return last, fmt.Errorf("fedshap: event stream ended before a terminal event: %w", lastErr)
}

// watchStream consumes one SSE connection. It returns the terminal status
// when one arrives; otherwise it reports whether the stream showed any
// sign of life — an event, or a ": ping" heartbeat comment — and the
// error that broke it. Heartbeats count: a quiet job behind a proxy that
// drops idle connections produces reconnect cycles that deliver only
// pings, and those must not be mistaken for a dead daemon. lastID, when
// non-empty, is sent as Last-Event-ID so the daemon resumes past events
// the client already processed.
func (c *ServiceClient) watchStream(ctx context.Context, id, lastID string, idOut *string, last **JobStatus, onEvent func(event string, st *JobStatus), onValues func(*InterimValues)) (*JobStatus, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, false, decodeServiceError(resp)
	}
	br := bufio.NewReader(resp.Body)
	var event string
	var data []byte
	alive := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, alive, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "": // blank line terminates one SSE frame
			if len(data) == 0 {
				continue // heartbeat comment or id-only frame
			}
			if event == "values" {
				// Interim anytime snapshot: a different payload type, so it
				// must never be decoded into the JobStatus tracking below.
				var iv InterimValues
				if json.Unmarshal(data, &iv) == nil {
					alive = true
					if onValues != nil {
						onValues(&iv)
					}
				}
				event, data = "", nil
				continue
			}
			var st JobStatus
			if json.Unmarshal(data, &st) == nil {
				*last = &st
				alive = true
				if onEvent != nil {
					onEvent(event, &st)
				}
				if st.State.Terminal() {
					return &st, true, nil
				}
			}
			event, data = "", nil
		case strings.HasPrefix(line, ":"): // comment (heartbeat)
			alive = true
		case strings.HasPrefix(line, "id:"):
			*idOut = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
}

// Wait polls the job every interval until it reaches a terminal state or
// ctx is done. onPoll, when non-nil, observes every polled status — the
// hook progress bars attach to. WatchJob is the push-based alternative;
// Wait remains the fallback when the event stream is unavailable.
func (c *ServiceClient) Wait(ctx context.Context, id string, interval time.Duration, onPoll func(*JobStatus)) (*JobStatus, error) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if onPoll != nil {
			onPoll(st)
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
