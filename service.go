package fedshap

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Valuation job service wire API: the JSON types exchanged between the
// fedvald daemon (internal/valserve) and its clients, plus a small HTTP
// client. They live in the root package so external programs can submit
// jobs without importing internals.

// JobState is the lifecycle state of a valuation job.
type JobState string

// The job lifecycle: Queued → Running → one of the terminal states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobRequest describes a valuation job, mirroring the fedval CLI flags:
// pick a dataset family, a model, a federation size and an algorithm.
type JobRequest struct {
	// Data is the dataset family: femnist | adult | synthetic.
	Data string `json:"data"`
	// Setup selects the synthetic partition setup (synthetic only).
	Setup string `json:"setup,omitempty"`
	// Noise is the noise level for the noisy synthetic setups.
	Noise float64 `json:"noise,omitempty"`
	// Model is the FL model family: mlp | cnn | xgb | logreg | deepmlp.
	Model string `json:"model"`
	// N is the federation size (2..127).
	N int `json:"n"`
	// Algorithm names the valuation algorithm (ipss, exact, tmc, ...).
	Algorithm string `json:"algorithm"`
	// Gamma is the sampling budget γ; 0 selects the paper's policy.
	Gamma int `json:"gamma,omitempty"`
	// K is the K-Greedy probe depth.
	K int `json:"k,omitempty"`
	// Seed drives dataset generation, training and sampling.
	Seed int64 `json:"seed,omitempty"`
	// Scale is the substrate scale: tiny | small.
	Scale string `json:"scale,omitempty"`
	// Workers bounds the job's concurrent coalition evaluations
	// (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// JobStatus is the service's view of one job.
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State JobState `json:"state"`
	// Request echoes the submitted job.
	Request JobRequest `json:"request"`
	// Problem names the constructed valuation problem.
	Problem string `json:"problem,omitempty"`
	// Fingerprint identifies the problem in the persistent utility cache.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Budget is the resolved sampling budget γ.
	Budget int `json:"budget"`
	// FreshEvals counts fresh coalition evaluations so far — progress
	// toward Budget. It only ever increases while the job runs.
	FreshEvals int `json:"fresh_evals"`
	// WarmedCoalitions counts utilities preloaded from the persistent
	// cache; a fully warm job finishes with FreshEvals == 0.
	WarmedCoalitions int `json:"warmed_coalitions"`
	// RemoteWorkers is the size of the evaluation worker fleet the job
	// started with; 0 means the job evaluates in-process.
	RemoteWorkers int `json:"remote_workers,omitempty"`
	// Error describes a failure (state failed or cancelled).
	Error string `json:"error,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt bound the job's lifecycle.
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Report is the valuation outcome (state done only).
	Report *Report `json:"report,omitempty"`
}

// WorkerInfo describes one remote evaluation worker attached to the
// daemon's coordinator (see internal/evalnet): jobs fan their coalition
// evaluations out across these machines.
type WorkerInfo struct {
	// ID is the coordinator-assigned worker identifier.
	ID int `json:"id"`
	// Name is the worker's self-reported name (fedvalworker -name).
	Name string `json:"name"`
	// Addr is the remote address the worker connected from.
	Addr string `json:"addr,omitempty"`
	// Capacity is the worker's concurrent-evaluation limit.
	Capacity int `json:"capacity"`
	// InFlight is the number of evaluations currently assigned.
	InFlight int `json:"in_flight"`
	// Completed counts evaluations this worker has answered.
	Completed int64 `json:"completed"`
}

// ServiceError is a non-2xx daemon response.
type ServiceError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *ServiceError) Error() string {
	return fmt.Sprintf("fedshap: service: %s (HTTP %d)", e.Message, e.StatusCode)
}

// ErrJobNotFound is reported for unknown job IDs.
var ErrJobNotFound = errors.New("fedshap: job not found")

// ServiceClient talks to a fedvald daemon.
type ServiceClient struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8787".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

// NewServiceClient builds a client for the daemon at base.
func NewServiceClient(base string) *ServiceClient {
	return &ServiceClient{BaseURL: strings.TrimRight(base, "/")}
}

func (c *ServiceClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *ServiceClient) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeServiceError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeServiceError turns a non-2xx daemon response into an error,
// extracting the {"error": "..."} envelope when present.
func decodeServiceError(resp *http.Response) error {
	if resp.StatusCode == http.StatusNotFound {
		return ErrJobNotFound
	}
	var e struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &ServiceError{StatusCode: resp.StatusCode, Message: msg}
}

// Submit enqueues a valuation job and returns its initial status.
func (c *ServiceClient) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches the current status of one job.
func (c *ServiceClient) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job the daemon knows, newest first.
func (c *ServiceClient) Jobs(ctx context.Context) ([]*JobStatus, error) {
	var out []*JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests cancellation of a queued or running job and returns the
// resulting status.
func (c *ServiceClient) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Workers lists the remote evaluation workers attached to the daemon.
// With no worker fleet configured the list is empty and jobs evaluate
// in-process.
func (c *ServiceClient) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var out []WorkerInfo
	if err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Report fetches the final report of a completed job.
func (c *ServiceClient) Report(ctx context.Context, id string) (*Report, error) {
	var r Report
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/report", nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WatchJob subscribes to a job's server-sent event stream
// (GET /v1/jobs/{id}/events) and returns its final status once the job
// reaches a terminal state. onEvent, when non-nil, observes every
// notification: event is the transition name — "submitted", "running",
// "progress", "done", "failed" or "cancelled" — and st is the job's full
// status snapshot at that moment (the done snapshot carries the Report).
// The daemon pushes events as they happen, so progress arrives without
// polling latency or per-poll request cost.
//
// Cancelling ctx closes the stream and returns the last status seen
// alongside ctx.Err(). If the stream ends before a terminal event — a
// daemon restart, a proxy idle-timeout, or a daemon predating the events
// endpoint — an error is returned; callers wanting robustness fall back
// to polling Wait, as `fedval -server` does.
func (c *ServiceClient) WatchJob(ctx context.Context, id string, onEvent func(event string, st *JobStatus)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeServiceError(resp)
	}
	br := bufio.NewReader(resp.Body)
	var event string
	var data []byte
	var last *JobStatus
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if ctx.Err() != nil {
				return last, ctx.Err()
			}
			return last, fmt.Errorf("fedshap: event stream ended before a terminal event: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "": // blank line terminates one SSE frame
			if len(data) == 0 {
				continue
			}
			var st JobStatus
			if json.Unmarshal(data, &st) == nil {
				last = &st
				if onEvent != nil {
					onEvent(event, &st)
				}
				if st.State.Terminal() {
					return &st, nil
				}
			}
			event, data = "", nil
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
}

// Wait polls the job every interval until it reaches a terminal state or
// ctx is done. onPoll, when non-nil, observes every polled status — the
// hook progress bars attach to. WatchJob is the push-based alternative;
// Wait remains the fallback when the event stream is unavailable.
func (c *ServiceClient) Wait(ctx context.Context, id string, interval time.Duration, onPoll func(*JobStatus)) (*JobStatus, error) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if onPoll != nil {
			onPoll(st)
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
