package fedshap

import (
	"math"
	"testing"
)

func TestValueParallelMatchesSequential(t *testing.T) {
	fed := tinyFederation(t)
	seq, err := fed.Value(IPSS(6), 5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fed.ValueParallel(IPSS(6), 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Values {
		if math.Abs(seq.Values[i]-par.Values[i]) > 1e-12 {
			t.Fatalf("parallel deviates at client %d: %v vs %v", i, par.Values[i], seq.Values[i])
		}
	}
}

func TestValueParallelExact(t *testing.T) {
	fed := tinyFederation(t)
	seq, err := fed.ExactValues(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := fed.ValueParallel(ExactShapley(), 1, 0) // 0 = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Values {
		if math.Abs(seq.Values[i]-par.Values[i]) > 1e-12 {
			t.Fatalf("parallel exact deviates at client %d", i)
		}
	}
	if par.Evaluations != 8 {
		t.Errorf("parallel exact evals = %d, want 8", par.Evaluations)
	}
}

func TestValueParallelNonPrefetchable(t *testing.T) {
	fed := tinyFederation(t)
	// TMC's plan covers only the certain prefix of its evaluation
	// sequence (truncation is utility-dependent); ValueParallel must
	// evaluate the remainder lazily and still agree with serial.
	rep, err := fed.ValueParallel(TMC(6), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Errorf("values = %v", rep.Values)
	}
}

func TestUtilitiesBatchMatchesUtility(t *testing.T) {
	fed := tinyFederation(t)
	coalitions := [][]int{{0}, {1, 2}, {0, 1, 2}, {0}} // incl. a duplicate
	got := fed.Utilities(coalitions, 4)
	if len(got) != len(coalitions) {
		t.Fatalf("got %d utilities, want %d", len(got), len(coalitions))
	}
	for i, c := range coalitions {
		if want := fed.Utility(c); got[i] != want {
			t.Errorf("utilities[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestFedProxFederation(t *testing.T) {
	clients, test := FederatedWriters(3, 30, 90, 27)
	fed, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		WithLogReg(),
		WithFedProx(0.5),
		WithFLRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Value(IPSS(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Errorf("values = %v", rep.Values)
	}
	// FedProx must actually change the game relative to FedAvg.
	fedAvg, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		WithLogReg(),
		WithFLRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	uProx := fed.Utility([]int{0, 1})
	uAvg := fedAvg.Utility([]int{0, 1})
	if uProx == uAvg {
		t.Logf("FedProx and FedAvg coincide on this coalition (possible but unusual): %v", uProx)
	}
	if _, err := NewFederation(
		WithDatasets(clients...), WithTestSet(test), WithFedProx(-1),
	); err == nil {
		t.Errorf("negative mu accepted")
	}
}

func TestBanzhafValuers(t *testing.T) {
	fed := tinyFederation(t)
	exact, err := fed.Value(Banzhaf(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Evaluations != 8 {
		t.Errorf("Banzhaf exact evals = %d, want 8", exact.Evaluations)
	}
	mc, err := fed.Value(BanzhafMC(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Values) != 3 {
		t.Errorf("values = %v", mc.Values)
	}
}

func TestPlanBudget(t *testing.T) {
	// Loose target → small budget; tight target → larger budget.
	loose := PlanBudget(10, 500, 8, 0.1)
	tight := PlanBudget(10, 500, 8, 0.0001)
	if loose <= 0 || tight <= 0 {
		t.Fatalf("budgets: loose=%d tight=%d", loose, tight)
	}
	if tight < loose {
		t.Errorf("tighter target got smaller budget: %d < %d", tight, loose)
	}
	if tight > 1024 {
		t.Errorf("budget %d exceeds 2^10", tight)
	}
}

func TestStratifiedSchemesViaAPI(t *testing.T) {
	fed := tinyFederation(t)
	for _, scheme := range []Scheme{MCScheme, CCScheme} {
		rep, err := fed.Value(Stratified(scheme, 8), 3)
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		if len(rep.Values) != 3 {
			t.Errorf("scheme %v: values = %v", scheme, rep.Values)
		}
	}
}

func TestDeepMLPFederation(t *testing.T) {
	clients, test := FederatedWriters(3, 25, 60, 61)
	fed, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		WithDeepMLP(10, 8),
		WithFLRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Value(IPSS(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Errorf("values = %v", rep.Values)
	}
	// Gradient baselines work on DeepMLP too (it is parametric).
	if _, err := fed.Value(OR(), 2); err != nil {
		t.Errorf("OR on DeepMLP: %v", err)
	}
	// Validation.
	if _, err := NewFederation(
		WithDatasets(clients...), WithTestSet(test), WithDeepMLP(),
	); err == nil {
		t.Errorf("empty hidden list accepted")
	}
	if _, err := NewFederation(
		WithDatasets(clients...), WithTestSet(test), WithDeepMLP(0),
	); err == nil {
		t.Errorf("zero hidden width accepted")
	}
}

func TestVerticalFederationAPI(t *testing.T) {
	pool := SyntheticImages(300, 71)
	train, test := SplitTrainTest(pool, 0.75, 72)
	blocks := EqualFeatureBlocks(train.Dim(), 4)
	fed, err := NewVerticalFederation(train, test, blocks,
		WithVerticalEpochs(2), WithVerticalLR(0.1), WithVerticalSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if fed.N() != 4 {
		t.Fatalf("N = %d", fed.N())
	}
	rep, err := fed.Value(IPSS(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 4 || rep.Evaluations > 8 {
		t.Errorf("values=%v evals=%d", rep.Values, rep.Evaluations)
	}
	if rep.Names[0] != "provider-0" {
		t.Errorf("names = %v", rep.Names)
	}
	// Overlapping blocks rejected at construction.
	bad := []FeatureBlock{{Name: "a", Start: 0, Width: 10}, {Name: "b", Start: 5, Width: 10}}
	if _, err := NewVerticalFederation(train, test, bad); err == nil {
		t.Errorf("overlapping blocks accepted")
	}
}

func TestVerticalExactEfficiency(t *testing.T) {
	pool := SyntheticImages(200, 73)
	train, test := SplitTrainTest(pool, 0.75, 74)
	blocks := EqualFeatureBlocks(train.Dim(), 3)
	fed, err := NewVerticalFederation(train, test, blocks, WithVerticalEpochs(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Value(ExactShapley(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency holds for the feature game too (Σφ = U(N) − U(∅)); we
	// can't query the oracle directly here, so check finite + count.
	if rep.Evaluations != 8 {
		t.Errorf("exact evals = %d, want 8", rep.Evaluations)
	}
	for i, v := range rep.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("provider %d value %v", i, v)
		}
	}
}

func TestStratifiedNeymanAPI(t *testing.T) {
	fed := tinyFederation(t)
	rep, err := fed.Value(StratifiedNeyman(12), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Errorf("values = %v", rep.Values)
	}
	for _, v := range rep.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("bad value %v", v)
		}
	}
}

func TestDatasetPersistencePublicAPI(t *testing.T) {
	d := SyntheticImages(25, 81)
	dir := t.TempDir()

	gobPath := dir + "/d.gob"
	if err := SaveDataset(d, gobPath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Errorf("gob round trip len %d", back.Len())
	}
	if _, err := LoadDataset(dir + "/missing.gob"); err == nil {
		t.Errorf("missing gob accepted")
	}
	if _, err := LoadDatasetCSV(dir+"/missing.csv", 0); err == nil {
		t.Errorf("missing csv accepted")
	}
}

func TestValueRepeated(t *testing.T) {
	fed := tinyFederation(t)
	rep, err := fed.ValueRepeated(TMC(6), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 8 || len(rep.Mean) != 3 {
		t.Fatalf("shape: runs=%d mean=%v", rep.Runs, rep.Mean)
	}
	for i := range rep.Mean {
		if math.IsNaN(rep.Mean[i]) || rep.Std[i] < 0 || rep.CI95[i] < 0 {
			t.Errorf("client %d: mean=%v std=%v ci=%v", i, rep.Mean[i], rep.Std[i], rep.CI95[i])
		}
	}
	// Exact algorithm: zero spread.
	ex, err := fed.ValueRepeated(ExactShapley(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ex.Std {
		if s != 0 {
			t.Errorf("exact repeated std[%d] = %v, want 0", i, s)
		}
	}
	// Shared cache: exact repeated three times still costs 2^3 trainings.
	if ex.Evaluations != 8 {
		t.Errorf("evals = %d, want 8 (cache shared)", ex.Evaluations)
	}
	if _, err := fed.ValueRepeated(TMC(6), 1, 1); err == nil {
		t.Errorf("runs=1 accepted")
	}
}

func TestPerRoundValues(t *testing.T) {
	fed := tinyFederation(t)
	rounds, err := fed.PerRoundValues()
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 { // tinyFederation uses 2 FL rounds
		t.Fatalf("rounds = %d", len(rounds))
	}
	for r, v := range rounds {
		if len(v) != 3 {
			t.Fatalf("round %d has %d values", r, len(v))
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("round %d client %d value %v", r, i, x)
			}
		}
	}
	// Tree models have no trace → error.
	pool, occ := CensusTabular(150, 3)
	clients := PartitionByGroup(pool, occ, 3)
	_, test := SplitTrainTest(pool, 0.7, 4)
	xfed, err := NewFederation(WithDatasets(clients...), WithTestSet(test), WithXGB(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xfed.PerRoundValues(); err == nil {
		t.Errorf("per-round values on XGB should fail")
	}
}
