module fedshap

go 1.22
