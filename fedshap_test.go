package fedshap

import (
	"math"
	"strings"
	"testing"
)

// tinyFederation builds a 3-writer federation with a fast logistic model.
func tinyFederation(t *testing.T) *Federation {
	t.Helper()
	clients, test := FederatedWriters(3, 30, 90, 7)
	fed, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		WithLogReg(),
		WithSeed(11),
		WithFLRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestFederationExactValue(t *testing.T) {
	fed := tinyFederation(t)
	rep, err := fed.ExactValues(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Fatalf("values = %v", rep.Values)
	}
	if rep.Evaluations != 8 {
		t.Errorf("exact used %d evaluations, want 8", rep.Evaluations)
	}
	// Efficiency: Σφ = U(N) − U(∅).
	want := fed.Utility([]int{0, 1, 2}) - fed.Utility(nil)
	if math.Abs(rep.Values.Sum()-want) > 1e-9 {
		t.Errorf("Σφ = %v, want %v", rep.Values.Sum(), want)
	}
}

func TestFederationIPSS(t *testing.T) {
	fed := tinyFederation(t)
	gamma := fed.RecommendedGamma()
	if gamma != 5 {
		t.Errorf("RecommendedGamma = %d, want 5 (Table III)", gamma)
	}
	rep, err := fed.Value(IPSS(gamma), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluations > gamma {
		t.Errorf("IPSS used %d > γ=%d evaluations", rep.Evaluations, gamma)
	}
	if rep.Algorithm != "IPSS(γ=5)" {
		t.Errorf("Algorithm = %q", rep.Algorithm)
	}
	if len(rep.Names) != 3 || rep.Names[0] != "client-0" {
		t.Errorf("Names = %v", rep.Names)
	}
}

func TestFederationAllValuersRun(t *testing.T) {
	fed := tinyFederation(t)
	valuers := []Valuer{
		IPSS(5), IPSSRescaled(5), ExactShapley(), ExactShapleyCC(), PermShapley(),
		Stratified(MCScheme, 6), Stratified(CCScheme, 6), StratifiedNeyman(8),
		KGreedy(2), TMC(6), GTB(6), CCShapley(6), DIGFL(), OR(), LambdaMR(1),
		GTGShapley(), LeaveOneOut(), PermSampling(8), Banzhaf(), BanzhafMC(6),
	}
	for _, v := range valuers {
		rep, err := fed.Value(v, 3)
		if err != nil {
			t.Errorf("%s: %v", v.Name(), err)
			continue
		}
		if len(rep.Values) != 3 {
			t.Errorf("%s: %d values", v.Name(), len(rep.Values))
		}
		for i, x := range rep.Values {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s: client %d value %v", v.Name(), i, x)
			}
		}
	}
}

func TestFederationValidation(t *testing.T) {
	clients, test := FederatedWriters(2, 10, 20, 1)
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"no clients", []Option{WithTestSet(test)}, "at least one client"},
		{"no test", []Option{WithDatasets(clients...)}, "test set"},
		{"bad mlp", []Option{WithDatasets(clients...), WithTestSet(test), WithMLP(0)}, "hidden"},
		{"bad rounds", []Option{WithDatasets(clients...), WithTestSet(test), WithFLRounds(0)}, "rounds"},
		{"bad lr", []Option{WithDatasets(clients...), WithTestSet(test), WithLearningRate(-1)}, "learning rate"},
	}
	for _, c := range cases {
		_, err := NewFederation(c.opts...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestFederationXGBRejectsGradientBaselines(t *testing.T) {
	pool, occ := CensusTabular(150, 3)
	clients := PartitionByGroup(pool, occ, 3)
	_, test := SplitTrainTest(pool, 0.7, 4)
	fed, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		WithXGB(5, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Value(OR(), 1); err == nil {
		t.Errorf("OR on XGB should fail with not-applicable")
	}
	if _, err := fed.Value(IPSS(5), 1); err != nil {
		t.Errorf("IPSS on XGB: %v", err)
	}
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset("d", [][]float64{{1, 2}}, []int{0, 1}, 2); err == nil {
		t.Errorf("length mismatch not rejected")
	}
	if _, err := NewDataset("d", [][]float64{{1, 2}, {3}}, []int{0, 1}, 2); err == nil {
		t.Errorf("ragged rows not rejected")
	}
	if _, err := NewDataset("d", [][]float64{{1}}, []int{5}, 2); err == nil {
		t.Errorf("out-of-range label not rejected")
	}
	d, err := NewDataset("d", [][]float64{{1, 2}, {3, 4}}, []int{0, 1}, 2)
	if err != nil || d.Len() != 2 || d.Dim() != 2 {
		t.Errorf("valid dataset rejected: %v", err)
	}
}

func TestEmptyDatasetFreeRider(t *testing.T) {
	clients, test := FederatedWriters(2, 25, 60, 9)
	rider := EmptyDataset("rider", clients[0].Dim(), clients[0].NumClasses)
	fed, err := NewFederation(
		WithClients(
			Client{Name: "a", Data: clients[0]},
			Client{Name: "b", Data: clients[1]},
			Client{Name: "rider", Data: rider},
		),
		WithTestSet(test),
		WithLogReg(),
		WithFLRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.ExactValues(1)
	if err != nil {
		t.Fatal(err)
	}
	// Null-player property: the free rider's exact value is ~0.
	if math.Abs(rep.Values[2]) > 0.02 {
		t.Errorf("free rider value %v, want ≈0", rep.Values[2])
	}
	if rep.Values[0] <= 0 || rep.Values[1] <= 0 {
		t.Errorf("contributing clients should have positive value: %v", rep.Values)
	}
}

func TestDuplicateClientsSymmetry(t *testing.T) {
	clients, test := FederatedWriters(2, 25, 60, 13)
	dup := clients[0].Clone()
	fed, err := NewFederation(
		WithClients(
			Client{Name: "a", Data: clients[0]},
			Client{Name: "a-copy", Data: dup},
			Client{Name: "b", Data: clients[1]},
		),
		WithTestSet(test),
		WithLogReg(),
		WithFLRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.ExactValues(1)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric-fairness: identical datasets get identical exact values.
	if math.Abs(rep.Values[0]-rep.Values[1]) > 1e-9 {
		t.Errorf("duplicates valued differently: %v vs %v", rep.Values[0], rep.Values[1])
	}
}

func TestUtilityMonotoneExtremes(t *testing.T) {
	fed := tinyFederation(t)
	full := fed.Utility([]int{0, 1, 2})
	empty := fed.Utility(nil)
	if full <= empty {
		t.Errorf("U(N)=%v should exceed U(∅)=%v on a learnable task", full, empty)
	}
}

func TestCNNFederation(t *testing.T) {
	clients, test := FederatedWriters(3, 20, 40, 17)
	fed, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		WithCNN(2),
		WithFLRounds(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fed.Value(IPSS(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != 3 {
		t.Errorf("values = %v", rep.Values)
	}
}

func TestTooManyClients(t *testing.T) {
	clients, test := FederatedWriters(2, 5, 10, 19)
	many := make([]*Dataset, 128)
	for i := range many {
		many[i] = clients[0]
	}
	_, err := NewFederation(WithDatasets(many...), WithTestSet(test))
	if err == nil {
		t.Errorf("128 clients should be rejected")
	}
	// 100 clients (the paper's Fig. 9 ceiling) are accepted.
	if _, err := NewFederation(WithDatasets(many[:100]...), WithTestSet(test), WithLogReg()); err != nil {
		t.Errorf("100 clients rejected: %v", err)
	}
}
