package fedshap

import (
	"errors"
	"fmt"
	"math"
	"time"

	"fedshap/internal/metrics"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// Repeated valuation with uncertainty: sampling-based algorithms are random
// in their coalition choices, so a payout used in a contract should come
// with run-to-run spread. ValueRepeated reruns the algorithm under
// different sampling seeds against one shared utility cache (training is
// deterministic, so coalitions are only ever trained once) and reports
// per-client mean, standard deviation and a normal-approximation 95%
// confidence interval.

// RepeatedReport summarises repeated valuation runs.
type RepeatedReport struct {
	// Algorithm is the Valuer's display name.
	Algorithm string
	// Names mirrors ClientNames.
	Names []string
	// Mean[i] is client i's mean value across runs.
	Mean Values
	// Std[i] is the sample standard deviation across runs.
	Std Values
	// CI95[i] is the half-width of the 95% confidence interval of the
	// mean (1.96·std/√runs).
	CI95 Values
	// Runs is the number of repetitions.
	Runs int
	// Seconds is the total wall-clock time.
	Seconds float64
	// Evaluations is the number of distinct coalitions trained across all
	// runs (shared cache: repeats are free).
	Evaluations int
}

// ValueRepeated runs the algorithm `runs` times with seeds seed, seed+1, …
// and aggregates. Exact algorithms yield zero spread; sampling algorithms
// yield honest run-to-run uncertainty.
func (f *Federation) ValueRepeated(alg Valuer, runs int, seed int64) (*RepeatedReport, error) {
	if runs < 2 {
		return nil, errors.New("fedshap: ValueRepeated needs at least two runs")
	}
	spec := f.spec()
	oracle := utility.NewFLOracle(*spec)
	start := time.Now()
	all := make([][]float64, 0, runs)
	for r := 0; r < runs; r++ {
		view := utility.NewRunView(oracle)
		ctx := shapley.NewContext(view, seed+int64(r)).WithSpec(spec)
		v, err := alg.Values(ctx)
		if err != nil {
			return nil, fmt.Errorf("fedshap: run %d: %w", r, err)
		}
		all = append(all, v)
	}
	n := f.N()
	rep := &RepeatedReport{
		Algorithm: alg.Name(),
		Names:     f.ClientNames(),
		Mean:      make(Values, n),
		Std:       make(Values, n),
		CI95:      make(Values, n),
		Runs:      runs,
		Seconds:   time.Since(start).Seconds(),
	}
	col := make([]float64, runs)
	for i := 0; i < n; i++ {
		for r := range all {
			col[r] = all[r][i]
		}
		rep.Mean[i] = metrics.Mean(col)
		rep.Std[i] = metrics.StdDev(col)
		rep.CI95[i] = 1.96 * rep.Std[i] / math.Sqrt(float64(runs))
	}
	rep.Evaluations = oracle.Evals()
	return rep, nil
}

// PerRoundValues decomposes data values over training rounds: for each
// FedAvg round it computes the exact MC-SV of the single-round
// reconstruction game (the quantity λ-MR aggregates), exposing *when* in
// training each client contributed. Requires a parametric model.
func (f *Federation) PerRoundValues() ([]Values, error) {
	spec := f.spec()
	rounds, err := shapley.PerRoundValues(spec)
	if err != nil {
		return nil, fmt.Errorf("fedshap: per-round values: %w", err)
	}
	return rounds, nil
}
