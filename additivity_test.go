package fedshap

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestValueByTestSliceAdditivity(t *testing.T) {
	fed := tinyFederation(t)
	// Split the 90-sample test set into three disjoint slices.
	var s1, s2, s3 []int
	for i := 0; i < 90; i++ {
		switch i % 3 {
		case 0:
			s1 = append(s1, i)
		case 1:
			s2 = append(s2, i)
		default:
			s3 = append(s3, i)
		}
	}
	rep, err := fed.ValueByTestSlice(ExactShapley(), [][]int{s1, s2, s3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SliceValues) != 3 {
		t.Fatalf("slices = %d", len(rep.SliceValues))
	}
	// Linear additivity (Def. 2, property iii): slice values sum to the
	// union value exactly for the exact scheme.
	if gap := rep.AdditivityGap(); gap > 1e-9 {
		t.Errorf("additivity gap %v for exact valuation", gap)
	}
}

func TestValueByTestSliceValidation(t *testing.T) {
	fed := tinyFederation(t)
	if _, err := fed.ValueByTestSlice(ExactShapley(), nil, 1); err == nil {
		t.Errorf("empty slice list accepted")
	}
	if _, err := fed.ValueByTestSlice(ExactShapley(), [][]int{{0}, {0}}, 1); err == nil {
		t.Errorf("overlapping slices accepted")
	}
	if _, err := fed.ValueByTestSlice(ExactShapley(), [][]int{{99999}}, 1); err == nil {
		t.Errorf("out-of-range index accepted")
	}
}

func TestValueByTestSliceApproximate(t *testing.T) {
	fed := tinyFederation(t)
	var s1, s2 []int
	for i := 0; i < 90; i++ {
		if i < 45 {
			s1 = append(s1, i)
		} else {
			s2 = append(s2, i)
		}
	}
	rep, err := fed.ValueByTestSlice(IPSS(5), [][]int{s1, s2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Approximate valuation has a gap, but it must be finite and modest.
	gap := rep.AdditivityGap()
	if math.IsNaN(gap) || gap > 1 {
		t.Errorf("gap = %v", gap)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	fed := tinyFederation(t)
	rep, err := fed.Value(IPSS(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"algorithm\"") {
		t.Errorf("JSON missing fields: %s", buf.String())
	}
	back, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != rep.Algorithm || back.Evaluations != rep.Evaluations {
		t.Errorf("round trip lost metadata")
	}
	for i := range rep.Values {
		if back.Values[i] != rep.Values[i] {
			t.Errorf("round trip lost values")
		}
	}
}

func TestReportJSONFile(t *testing.T) {
	fed := tinyFederation(t)
	rep, err := fed.Value(IPSS(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/report.json"
	if err := rep.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReportJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != rep.Algorithm {
		t.Errorf("file round trip mismatch")
	}
}

func TestReadReportJSONRejectsCorrupt(t *testing.T) {
	if _, err := ReadReportJSON(strings.NewReader("{")); err == nil {
		t.Errorf("truncated JSON accepted")
	}
	if _, err := ReadReportJSON(strings.NewReader(`{"version":99}`)); err == nil {
		t.Errorf("future version accepted")
	}
	if _, err := ReadReportJSON(strings.NewReader(
		`{"version":1,"names":["a"],"values":[1,2]}`)); err == nil {
		t.Errorf("mismatched names/values accepted")
	}
}
