package fedshap_test

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks verifies every relative link in the repo's top-level
// documentation resolves to an existing file, so README/ARCHITECTURE/
// ROADMAP cross-references can't silently rot. External URLs and anchors
// are skipped. CI runs this alongside the Go suite.
func TestMarkdownLinks(t *testing.T) {
	docs := []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md"}
	linkRE := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, m[1], err)
			}
		}
	}
}
