package fedshap_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks verifies every relative link in the repo's
// documentation resolves to an existing file, so README/ARCHITECTURE/
// ROADMAP/OPERATIONS/docs cross-references can't silently rot. Link
// targets are resolved relative to the document that contains them.
// External URLs and anchors are skipped. CI runs this alongside the Go
// suite.
func TestMarkdownLinks(t *testing.T) {
	docs := []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md", "OPERATIONS.md", "docs/api.md"}
	linkRE := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, m[1], err)
			}
		}
	}
}
