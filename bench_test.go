package fedshap

// One testing.B benchmark per table and figure of the paper (DESIGN.md §4),
// plus the design-choice ablations and the micro-benchmarks of the
// substrate. Benchmarks run at Tiny scale so `go test -bench=.` finishes in
// minutes; `cmd/benchtab` and `cmd/benchfig` regenerate the full-size rows.

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/experiments"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

func benchScale() experiments.Scale {
	sc := experiments.Tiny()
	sc.Reps = 3
	return sc
}

func benchTableConfig(ns []int, models []experiments.ModelKind) experiments.TableConfig {
	return experiments.TableConfig{
		Ns: ns, Models: models, Scale: benchScale(), Seed: 1, MaxExactPerm: 4,
	}
}

// BenchmarkTableIV_MLP regenerates the MLP block of Table IV (E-T4).
func BenchmarkTableIV_MLP(b *testing.B) {
	cfg := benchTableConfig([]int{3, 6}, []experiments.ModelKind{experiments.MLP})
	for i := 0; i < b.N; i++ {
		experiments.TableIV(cfg)
	}
}

// BenchmarkTableIV_CNN regenerates the CNN block of Table IV (E-T4).
func BenchmarkTableIV_CNN(b *testing.B) {
	cfg := benchTableConfig([]int{3}, []experiments.ModelKind{experiments.CNN})
	for i := 0; i < b.N; i++ {
		experiments.TableIV(cfg)
	}
}

// BenchmarkTableV_MLP regenerates the MLP block of Table V (E-T5).
func BenchmarkTableV_MLP(b *testing.B) {
	cfg := benchTableConfig([]int{3, 6}, []experiments.ModelKind{experiments.MLP})
	for i := 0; i < b.N; i++ {
		experiments.TableV(cfg)
	}
}

// BenchmarkTableV_XGB regenerates the XGB block of Table V (E-T5),
// including the not-applicable gradient columns.
func BenchmarkTableV_XGB(b *testing.B) {
	cfg := benchTableConfig([]int{3}, []experiments.ModelKind{experiments.XGB})
	for i := 0; i < b.N; i++ {
		experiments.TableV(cfg)
	}
}

// BenchmarkFig1b regenerates the motivation scatter (E-F1b).
func BenchmarkFig1b(b *testing.B) {
	cfg := experiments.FigConfig{N: 6, Models: []experiments.ModelKind{experiments.MLP}, Scale: benchScale(), Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.Fig1b(cfg)
	}
}

// BenchmarkFig4KGreedy regenerates the key-combinations probe (E-F4).
func BenchmarkFig4KGreedy(b *testing.B) {
	cfg := experiments.FigConfig{N: 6, Models: []experiments.ModelKind{experiments.MLP}, Scale: benchScale(), Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.Fig4(cfg)
	}
}

// benchFig6 runs one Fig. 6 synthetic setup (E-F6).
func benchFig6(b *testing.B, setup experiments.SyntheticSetup) {
	b.Helper()
	sc := benchScale()
	gamma := experiments.GammaForN(6)
	for i := 0; i < b.N; i++ {
		p := experiments.NewSyntheticProblem(setup, 6, experiments.MLP, sc, 0.1, int64(i))
		exact, _ := experiments.ExactValues(p, 1)
		for _, alg := range experiments.StandardSuite(gamma) {
			experiments.RunAlgorithm(p, alg, exact, int64(i+2))
		}
	}
}

// The five Fig. 6 setups.
func BenchmarkFig6_SameSizeSameDist(b *testing.B)  { benchFig6(b, experiments.SameSizeSameDist) }
func BenchmarkFig6_SameSizeDiffDist(b *testing.B)  { benchFig6(b, experiments.SameSizeDiffDist) }
func BenchmarkFig6_DiffSizeSameDist(b *testing.B)  { benchFig6(b, experiments.DiffSizeSameDist) }
func BenchmarkFig6_SameSizeNoisyLbl(b *testing.B)  { benchFig6(b, experiments.SameSizeNoisyLbl) }
func BenchmarkFig6_SameSizeNoisyFeat(b *testing.B) { benchFig6(b, experiments.SameSizeNoisyFeat) }

// BenchmarkFig6NoiseSweep regenerates the noise sweeps behind Figs. 6(d)
// and 6(e).
func BenchmarkFig6NoiseSweep(b *testing.B) {
	cfg := experiments.FigConfig{N: 5, Models: []experiments.ModelKind{experiments.MLP}, Scale: benchScale(), Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.Fig6Noise(cfg, []float64{0, 0.2})
	}
}

// BenchmarkLemmaOne validates the Lemma 1 closed form on FL linear
// regression (E-L1).
func BenchmarkLemmaOne(b *testing.B) {
	cfg := experiments.DefaultLinRegProblem(1)
	for i := 0; i < b.N; i++ {
		experiments.LemmaOne(cfg, 3)
	}
}

// BenchmarkTheoremThree validates the truncation bound (E-T3).
func BenchmarkTheoremThree(b *testing.B) {
	cfg := experiments.DefaultLinRegProblem(2)
	for i := 0; i < b.N; i++ {
		experiments.TheoremThree(cfg, 2)
	}
}

// BenchmarkFig7GammaSweep regenerates the error-vs-γ sweep (E-F7).
func BenchmarkFig7GammaSweep(b *testing.B) {
	cfg := experiments.FigConfig{N: 6, Models: []experiments.ModelKind{experiments.MLP}, Scale: benchScale(), Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.Fig7(cfg, []int{8, 16, 32})
	}
}

// BenchmarkFig8Pareto regenerates the Pareto trade-off curves (E-F8).
func BenchmarkFig8Pareto(b *testing.B) {
	cfg := experiments.FigConfig{Models: []experiments.ModelKind{experiments.MLP}, Scale: benchScale(), Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.Fig8(cfg, []int{3, 6}, []int{5, 10})
	}
}

// BenchmarkFig9Scalability regenerates the large-federation run with
// property-proxy errors (E-F9).
func BenchmarkFig9Scalability(b *testing.B) {
	cfg := experiments.FigConfig{Models: []experiments.ModelKind{experiments.LogReg}, Scale: benchScale(), Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.Fig9(cfg, []int{20, 40})
	}
}

// BenchmarkFig10Variance regenerates the MC-vs-CC variance comparison
// (E-F10).
func BenchmarkFig10Variance(b *testing.B) {
	cfg := experiments.FigConfig{Models: []experiments.ModelKind{experiments.LogReg}, Scale: benchScale(), Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.Fig10(cfg, []int{6}, []int{12, 48})
	}
}

// BenchmarkVarianceMCvsCC is the E-T2 micro-experiment: Alg. 1 under both
// schemes on the same problem.
func BenchmarkVarianceMCvsCC(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.LogReg, sc, 1)
	oracle := p.Oracle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, scheme := range []shapley.Scheme{shapley.MC, shapley.CC} {
			ctx := shapley.NewContext(oracle, int64(i)).WithSpec(p.Spec)
			if _, err := shapley.NewStratified(scheme, 24).Values(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationIPSSRescale compares paper-faithful IPSS with the
// Horvitz-Thompson-rescaled variant at equal budget (E-AB1).
func BenchmarkAblationIPSSRescale(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.LogReg, sc, 1)
	exact, _ := experiments.ExactValues(p, 1)
	gamma := experiments.GammaForN(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAlgorithm(p, shapley.NewIPSS(gamma), exact, int64(i))
		experiments.RunAlgorithm(p, &shapley.IPSS{Gamma: gamma, RescaleSampledStratum: true}, exact, int64(i))
	}
}

// BenchmarkAblationBalancedP compares balanced vs uniform sampling of the
// k*+1 stratum (E-AB2, constraint (3) of Alg. 3).
func BenchmarkAblationBalancedP(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.LogReg, sc, 1)
	exact, _ := experiments.ExactValues(p, 1)
	gamma := experiments.GammaForN(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAlgorithm(p, shapley.NewIPSS(gamma), exact, int64(i))
		experiments.RunAlgorithm(p, &shapley.IPSS{Gamma: gamma, UnbalancedP: true}, exact, int64(i))
	}
}

// BenchmarkFig3MarginalCurve regenerates the Fig. 3 observation (average
// marginal utility per stratum).
func BenchmarkFig3MarginalCurve(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		p := experiments.NewFEMNISTProblem(6, experiments.LogReg, sc, int64(i))
		experiments.MarginalCurve(p, 1)
	}
}

// BenchmarkSummary runs the Sec. V-E findings generator end to end.
func BenchmarkSummary(b *testing.B) {
	sc := benchScale()
	problems := []*experiments.Problem{
		experiments.NewFEMNISTProblem(3, experiments.LogReg, sc, 1),
		experiments.NewFEMNISTProblem(4, experiments.LogReg, sc, 2),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunSummary(problems, int64(i))
	}
}

// BenchmarkAblationForcePairs compares Alg. 1 MC with and without forced
// pair evaluation at equal budget.
func BenchmarkAblationForcePairs(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.LogReg, sc, 1)
	exact, _ := experiments.ExactValues(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAlgorithm(p, &shapley.Stratified{Scheme: shapley.MC, TotalRounds: 10}, exact, int64(i))
		experiments.RunAlgorithm(p, &shapley.Stratified{Scheme: shapley.MC, TotalRounds: 10, ForcePairs: true}, exact, int64(i))
	}
}

// BenchmarkExtensionVertical values feature providers in the vertical-FL
// extension.
func BenchmarkExtensionVertical(b *testing.B) {
	pool := SyntheticImages(240, 7)
	train, test := SplitTrainTest(pool, 0.75, 8)
	blocks := EqualFeatureBlocks(train.Dim(), 4)
	fed, err := NewVerticalFederation(train, test, blocks, WithVerticalEpochs(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Value(IPSS(8), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionNeyman compares the variance-aware Neyman allocation
// against the paper's even split and IPSS at equal budget.
func BenchmarkExtensionNeyman(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(8, experiments.LogReg, sc, 1)
	exact, _ := experiments.ExactValues(p, 1)
	gamma := 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAlgorithm(p, shapley.NewStratifiedNeyman(gamma), exact, int64(i))
		experiments.RunAlgorithm(p, shapley.NewStratified(shapley.MC, gamma), exact, int64(i))
		experiments.RunAlgorithm(p, shapley.NewIPSS(gamma), exact, int64(i))
	}
}

// BenchmarkExtensionBanzhaf measures the Banzhaf semivalue extension.
func BenchmarkExtensionBanzhaf(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.LogReg, sc, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAlgorithm(p, shapley.ExactBanzhaf{}, nil, int64(i))
	}
}

// BenchmarkBaselineLeaveOneOut measures the O(n) LOO reference point.
func BenchmarkBaselineLeaveOneOut(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(8, experiments.LogReg, sc, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAlgorithm(p, shapley.LeaveOneOut{}, nil, int64(i))
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkUtilityEval measures τ, the per-coalition train+evaluate cost
// that dominates every algorithm's runtime.
func BenchmarkUtilityEval(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.MLP, sc, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := p.Oracle()
		oracle.U(toCoalition([]int{0, 2, 4}))
	}
}

// BenchmarkUtilityEvalInstrumented is BenchmarkUtilityEval with the full
// daemon telemetry installed on the oracle — the cache-hit latency hook,
// the progress hook and the eval-timing wrapper valserve jobs run with.
// The acceptance bound for the observability layer is < 2% overhead
// against the uninstrumented variant; compare the two ns/op directly.
func BenchmarkUtilityEvalInstrumented(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.MLP, sc, 1)
	var hits, evals atomic.Int64
	var seconds uint64 // float64 bits; same pattern as the histogram sum
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle := p.Oracle()
		oracle.OnCacheHit(func(s float64) {
			hits.Add(1)
			atomic.AddUint64(&seconds, math.Float64bits(s))
		})
		oracle.OnEval(func(total int) { evals.Add(1) })
		oracle.WrapEval(func(inner utility.EvalFunc) utility.EvalFunc {
			return func(s combin.Coalition) float64 {
				start := time.Now()
				u := inner(s)
				atomic.AddUint64(&seconds, math.Float64bits(time.Since(start).Seconds()))
				return u
			}
		})
		oracle.U(toCoalition([]int{0, 2, 4}))
	}
}

// BenchmarkExactShapley measures the full 2ⁿ ground-truth computation.
func BenchmarkExactShapley(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(6, experiments.LogReg, sc, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ExactValues(p, int64(i))
	}
}

// BenchmarkIPSS measures one IPSS run at the Table III budget.
func BenchmarkIPSS(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(10, experiments.LogReg, sc, 1)
	gamma := experiments.GammaForN(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunAlgorithm(p, shapley.NewIPSS(gamma), nil, int64(i))
	}
}

// BenchmarkFederationValue measures the public-API path end to end — the
// acceptance benchmark of the two-level evaluation pipeline: IPSS on an MLP
// federation, serial against a full worker pool. The workers=N/workers=1
// wall-clock ratio is the pipeline's speedup; values and evaluation counts
// are bit-identical across the variants (the parallel determinism suite
// asserts this).
func BenchmarkFederationValue(b *testing.B) {
	clients, test := FederatedWriters(10, 40, 120, 7)
	fed, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		WithMLP(12),
		WithFLRounds(2),
	)
	if err != nil {
		b.Fatal(err)
	}
	gamma := fed.RecommendedGamma() // 32 at n=10 (Table III)
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	dedup := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			dedup = append(dedup, w)
		}
	}
	for _, workers := range dedup {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fed.ValueParallel(IPSS(gamma), int64(i), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionSybilSplit runs the sybil-splitting robustness study.
func BenchmarkExtensionSybilSplit(b *testing.B) {
	sc := benchScale()
	p := experiments.NewFEMNISTProblem(4, experiments.LogReg, sc, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SybilSplit(p, 1, 2,
			func(g int) shapley.Valuer { return shapley.NewIPSS(g) }, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
