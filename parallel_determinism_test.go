package fedshap

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"fedshap/internal/shapley"
)

// The parallel-vs-serial determinism suite: for every valuation algorithm
// this package exports, ValueParallel must return bit-identical values and
// an identical evaluation count to the serial Value, at every worker
// count, across the parametric, logistic and tree model families. This is
// the contract the whole evaluation pipeline (plan → parallel evaluate →
// deterministic reduce) is built on.

// determinismValuers enumerates the full Valuer surface of valuers.go at a
// small budget. PermShapley is feasible because the suite runs at n=4.
func determinismValuers() map[string]Valuer {
	const gamma = 6
	return map[string]Valuer{
		"ipss":              IPSS(gamma),
		"ipss-rescaled":     IPSSRescaled(gamma),
		"exact-mc":          ExactShapley(),
		"exact-cc":          ExactShapleyCC(),
		"exact-perm":        PermShapley(),
		"stratified-mc":     Stratified(MCScheme, gamma),
		"stratified-cc":     Stratified(CCScheme, gamma),
		"stratified-neyman": StratifiedNeyman(gamma),
		"kgreedy":           KGreedy(2),
		"tmc":               TMC(gamma),
		"gtb":               GTB(gamma),
		"ccshapley":         CCShapley(gamma),
		"digfl":             DIGFL(),
		"or":                OR(),
		"lambdamr":          LambdaMR(0.9),
		"gtg":               GTGShapley(),
		"leave-one-out":     LeaveOneOut(),
		"perm-sampling":     PermSampling(gamma),
		"banzhaf":           Banzhaf(),
		"banzhaf-mc":        BanzhafMC(gamma),
	}
}

func determinismFederation(t *testing.T, model Option) *Federation {
	t.Helper()
	clients, test := FederatedWriters(4, 16, 48, 11)
	fed, err := NewFederation(
		WithDatasets(clients...),
		WithTestSet(test),
		model,
		WithFLRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestParallelDeterminismAllValuers(t *testing.T) {
	models := map[string]Option{
		"mlp":    WithMLP(8),
		"logreg": WithLogReg(),
		"xgb":    WithXGB(3, 2),
	}
	if testing.Short() {
		models = map[string]Option{"logreg": WithLogReg()}
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	if runtime.NumCPU() == 4 {
		workerCounts = workerCounts[:2]
	}
	for mname, model := range models {
		model := model
		t.Run(mname, func(t *testing.T) {
			fed := determinismFederation(t, model)
			for aname, alg := range determinismValuers() {
				alg := alg
				t.Run(aname, func(t *testing.T) {
					const seed = 23
					serial, serr := fed.Value(alg, seed)
					for _, workers := range workerCounts {
						par, perr := fed.ValueParallel(alg, seed, workers)
						if serr != nil || perr != nil {
							// Gradient baselines are not applicable to tree
							// models; both paths must agree on the error.
							if !errors.Is(perr, shapley.ErrNotApplicable) || !errors.Is(serr, shapley.ErrNotApplicable) {
								t.Fatalf("workers=%d: serial err = %v, parallel err = %v", workers, serr, perr)
							}
							continue
						}
						if par.Evaluations != serial.Evaluations {
							t.Errorf("workers=%d: evaluations = %d, serial = %d",
								workers, par.Evaluations, serial.Evaluations)
						}
						for i := range serial.Values {
							if par.Values[i] != serial.Values[i] {
								t.Fatalf("workers=%d: value[%d] = %v, serial = %v (must be bit-identical)",
									workers, i, par.Values[i], serial.Values[i])
							}
						}
					}
				})
			}
		})
	}
}

// TestParallelDeterminismWithTrainWorkers stacks both parallelism levels:
// client-level training workers under coalition-level evaluation workers
// must still reproduce the serial run bit for bit.
func TestParallelDeterminismWithTrainWorkers(t *testing.T) {
	clients, test := FederatedWriters(4, 16, 48, 13)
	build := func(trainWorkers int) *Federation {
		fed, err := NewFederation(
			WithDatasets(clients...),
			WithTestSet(test),
			WithMLP(8),
			WithFLRounds(2),
			WithTrainWorkers(trainWorkers),
		)
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}
	serial, err := build(1).Value(IPSS(6), 7)
	if err != nil {
		t.Fatal(err)
	}
	par, err := build(4).ValueParallel(IPSS(6), 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Evaluations != serial.Evaluations {
		t.Errorf("evaluations = %d, serial = %d", par.Evaluations, serial.Evaluations)
	}
	for i := range serial.Values {
		if par.Values[i] != serial.Values[i] {
			t.Fatalf("value[%d] = %v, serial = %v (must be bit-identical)", i, par.Values[i], serial.Values[i])
		}
	}
}

// TestValueParallelCtxCancelledPrefetch regresses the context-threading
// fix: a cancelled valuation context must stop the prefetch pool, not just
// the sequential pass.
func TestValueParallelCtxCancelledPrefetch(t *testing.T) {
	fed := determinismFederation(t, WithLogReg())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fed.ValueParallelCtx(ctx, ExactShapley(), 1, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
