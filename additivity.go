package fedshap

import (
	"errors"
	"fmt"
	"time"

	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// Linear additivity (Def. 2, property iii): data values are additive across
// disjoint test sets, so valuing per test slice lets new test data be
// integrated without invalidating existing values. ValueByTestSlice exposes
// that decomposition.

// SliceReport is the per-slice valuation of ValueByTestSlice.
type SliceReport struct {
	// SliceValues[k][i] is client i's value on test slice k.
	SliceValues []Values
	// Total[i] is the value on the full test set; for exact valuation it
	// equals the sum over slices (linear additivity).
	Total Values
	// Seconds is the combined wall-clock time.
	Seconds float64
}

// ValueByTestSlice splits the test set into the given disjoint row-index
// slices, values every client against each slice separately, and also
// against the union. For exact algorithms the slice values sum to the union
// value exactly (weighted by slice sizes, since utility is accuracy — a
// per-sample average rather than a sum); the returned SliceValues are
// already size-weighted so they add up.
func (f *Federation) ValueByTestSlice(alg Valuer, slices [][]int, seed int64) (*SliceReport, error) {
	if len(slices) == 0 {
		return nil, errors.New("fedshap: ValueByTestSlice needs at least one slice")
	}
	total := 0
	seen := make(map[int]bool)
	for _, sl := range slices {
		for _, idx := range sl {
			if idx < 0 || idx >= f.test.Len() {
				return nil, fmt.Errorf("fedshap: test index %d out of range", idx)
			}
			if seen[idx] {
				return nil, fmt.Errorf("fedshap: test index %d appears in two slices", idx)
			}
			seen[idx] = true
			total++
		}
	}

	start := time.Now()
	out := &SliceReport{}
	for k, sl := range slices {
		sub := f.test.Subset(fmt.Sprintf("%s/slice-%d", f.test.Name, k), sl)
		spec := f.spec()
		spec.Test = sub
		oracle := utility.NewFLOracle(*spec)
		ctx := shapley.NewContext(oracle, seed+int64(k)).WithSpec(spec)
		v, err := alg.Values(ctx)
		if err != nil {
			return nil, fmt.Errorf("fedshap: slice %d: %w", k, err)
		}
		// Weight by slice share so per-slice accuracies compose into the
		// union accuracy: acc(T) = Σ_k (|T_k|/|T|)·acc(T_k).
		w := float64(len(sl)) / float64(total)
		weighted := v.Clone()
		for i := range weighted {
			weighted[i] *= w
		}
		out.SliceValues = append(out.SliceValues, weighted)
	}

	// Union value over exactly the rows covered by the slices.
	var unionIdx []int
	for _, sl := range slices {
		unionIdx = append(unionIdx, sl...)
	}
	union := f.test.Subset(f.test.Name+"/union", unionIdx)
	spec := f.spec()
	spec.Test = union
	oracle := utility.NewFLOracle(*spec)
	ctx := shapley.NewContext(oracle, seed+997).WithSpec(spec)
	v, err := alg.Values(ctx)
	if err != nil {
		return nil, fmt.Errorf("fedshap: union: %w", err)
	}
	out.Total = v
	out.Seconds = time.Since(start).Seconds()
	return out, nil
}

// AdditivityGap returns the maximum absolute difference between the summed
// slice values and the union values — zero (up to float error) for exact
// valuation, a diagnostic for approximate ones.
func (r *SliceReport) AdditivityGap() float64 {
	if len(r.SliceValues) == 0 {
		return 0
	}
	n := len(r.Total)
	var gap float64
	for i := 0; i < n; i++ {
		var sum float64
		for _, sv := range r.SliceValues {
			sum += sv[i]
		}
		if d := abs(sum - r.Total[i]); d > gap {
			gap = d
		}
	}
	return gap
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
