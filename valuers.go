package fedshap

import (
	"math"

	"fedshap/internal/combin"
	"fedshap/internal/shapley"
	"fedshap/internal/theory"
)

// Constructors for every valuation algorithm in the suite. All of them
// return Valuer values accepted by Federation.Value.

// IPSS returns the paper's contribution: Importance-Pruned Stratified
// Sampling with evaluation budget gamma (Alg. 3). It exhaustively evaluates
// the small "key combinations", spends the remaining budget on a balanced
// sample one size up, and prunes everything larger.
func IPSS(gamma int) Valuer { return shapley.NewIPSS(gamma) }

// IPSSRescaled is the E-AB1 ablation: IPSS with a Horvitz-Thompson
// rescaling of the partially sampled stratum.
func IPSSRescaled(gamma int) Valuer {
	return &shapley.IPSS{Gamma: gamma, RescaleSampledStratum: true}
}

// ExactShapley computes the exact Shapley value via the MC-SV scheme
// (2ⁿ coalition evaluations).
func ExactShapley() Valuer { return shapley.ExactMC{} }

// ExactShapleyCC computes the exact Shapley value via the CC-SV scheme.
func ExactShapleyCC() Valuer { return shapley.ExactCC{} }

// PermShapley computes the exact Shapley value by full permutation
// enumeration (n!·n marginals; feasible only for n ≤ 12).
func PermShapley() Valuer { return shapley.ExactPerm{} }

// Stratified returns the unified stratified sampling framework (Alg. 1)
// under the chosen scheme, with budget gamma split evenly across strata.
func Stratified(scheme Scheme, gamma int) Valuer {
	return shapley.NewStratified(shapley.Scheme(scheme), gamma)
}

// Scheme selects the Shapley computation scheme for Stratified.
type Scheme int

// The two computation schemes of the paper's Sec. II-B.
const (
	// MCScheme pairs coalitions by marginal contribution (Def. 3) —
	// the lower-variance choice (Theorem 2).
	MCScheme Scheme = Scheme(shapley.MC)
	// CCScheme pairs coalitions by complementary contribution (Def. 4).
	CCScheme Scheme = Scheme(shapley.CC)
)

// StratifiedNeyman returns the two-phase variance-aware extension of
// Alg. 1: a uniform pilot estimates per-stratum variances, then the
// remaining budget follows Neyman allocation, with pooled-mean shrinkage
// for unsampled (client, stratum) cells. An extension beyond the paper,
// which leaves the per-stratum budget m_k unspecified.
func StratifiedNeyman(gamma int) Valuer { return shapley.NewStratifiedNeyman(gamma) }

// KGreedy returns the Alg. 2 probe: exact truncated MC-SV over all
// combinations of at most k clients.
func KGreedy(k int) Valuer { return &shapley.KGreedy{K: k} }

// TMC returns the Extended-TMC baseline (truncated Monte Carlo permutation
// sampling) with evaluation budget gamma.
func TMC(gamma int) Valuer { return shapley.NewTMC(gamma) }

// GTB returns the Extended-GTB baseline (group-testing-based estimation)
// with evaluation budget gamma.
func GTB(gamma int) Valuer { return shapley.NewGTB(gamma) }

// CCShapley returns the CC-Shapley baseline (complementary-contribution
// sampling, Zhang et al.) with evaluation budget gamma.
func CCShapley(gamma int) Valuer { return shapley.NewCCShapley(gamma) }

// DIGFL returns the DIG-FL baseline (O(n) per-round leave-one-out
// evaluation; falls back to leave-one-out retraining for tree models).
func DIGFL() Valuer { return shapley.DIGFL{} }

// OR returns the OR gradient-reconstruction baseline (Song et al.). Not
// applicable to tree models.
func OR() Valuer { return shapley.OR{} }

// LambdaMR returns the λ-MR per-round gradient baseline (Wei et al.) with
// decay lambda in (0,1]; lambda = 1 averages rounds uniformly. Not
// applicable to tree models.
func LambdaMR(lambda float64) Valuer { return &shapley.LambdaMR{Lambda: lambda} }

// GTGShapley returns the GTG-Shapley guided-truncation gradient baseline
// (Liu et al.). Not applicable to tree models.
func GTGShapley() Valuer { return &shapley.GTGShapley{} }

// LeaveOneOut returns the O(n) leave-one-out baseline φᵢ = U(N) − U(N\{i}).
// Cheap but not a Shapley value: perfect substitutes are both zeroed.
func LeaveOneOut() Valuer { return shapley.LeaveOneOut{} }

// PermSampling returns plain Monte-Carlo permutation sampling (ApproShapley)
// with evaluation budget gamma — the untruncated ancestor of Extended-TMC.
func PermSampling(gamma int) Valuer { return shapley.NewPermSampling(gamma) }

// Banzhaf returns the exact Banzhaf value (a robustness-oriented valuation
// variant; 2ⁿ evaluations). Unlike the Shapley value it does not satisfy
// efficiency, but it is provably the most noise-robust semivalue.
func Banzhaf() Valuer { return shapley.ExactBanzhaf{} }

// BanzhafMC returns the Monte-Carlo Banzhaf approximation with evaluation
// budget gamma.
func BanzhafMC(gamma int) Valuer { return shapley.NewMCBanzhaf(gamma) }

// PlanBudget inverts the paper's Theorem 3 error bound: it returns the IPSS
// budget γ that guarantees a relative truncation error of at most epsRel
// for a federation of n clients holding samplesPerClient samples of
// featureDim features each, under the linear-regression analysis model.
func PlanBudget(n, samplesPerClient, featureDim int, epsRel float64) int {
	return int(theory.PlanGamma(n, samplesPerClient, featureDim, epsRel))
}

// recommendedGamma mirrors the paper's budget policy (Table III, and the
// Fig. 9 n·ln n rule for other sizes).
func recommendedGamma(n int) int {
	switch n {
	case 3:
		return 5
	case 6:
		return 8
	case 10:
		return 32
	default:
		if n <= 1 {
			return 2
		}
		return int(math.Ceil(float64(n) * math.Log(float64(n))))
	}
}

// toCoalition converts a member list to the internal bitmask form.
func toCoalition(members []int) combin.Coalition {
	return combin.NewCoalition(members...)
}
