package fedshap

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Report persistence: valuation results are contracts between data
// providers, so they need a durable, human-auditable form.

// reportFile is the JSON schema for a saved report.
type reportFile struct {
	Algorithm   string    `json:"algorithm"`
	Names       []string  `json:"names"`
	Values      []float64 `json:"values"`
	Seconds     float64   `json:"seconds"`
	Evaluations int       `json:"evaluations"`
	SavedAt     time.Time `json:"saved_at"`
	Version     int       `json:"version"`
}

const reportVersion = 1

// WriteJSON serialises the report to w as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reportFile{
		Algorithm:   r.Algorithm,
		Names:       r.Names,
		Values:      r.Values,
		Seconds:     r.Seconds,
		Evaluations: r.Evaluations,
		SavedAt:     time.Now().UTC(),
		Version:     reportVersion,
	})
}

// SaveJSON writes the report to a file. The close error is checked —
// Close flushes, so dropping it could report success on a truncated
// file.
func (r *Report) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fedshap: save report: %w", err)
	}
	err = r.WriteJSON(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("fedshap: save report: %w", cerr)
	}
	return err
}

// ReadReportJSON parses a report previously written by WriteJSON.
func ReadReportJSON(r io.Reader) (*Report, error) {
	var rf reportFile
	if err := json.NewDecoder(r).Decode(&rf); err != nil {
		return nil, fmt.Errorf("fedshap: parse report: %w", err)
	}
	if rf.Version != reportVersion {
		return nil, fmt.Errorf("fedshap: unsupported report version %d", rf.Version)
	}
	if len(rf.Names) != len(rf.Values) {
		return nil, fmt.Errorf("fedshap: corrupt report: %d names for %d values", len(rf.Names), len(rf.Values))
	}
	return &Report{
		Algorithm:   rf.Algorithm,
		Names:       rf.Names,
		Values:      rf.Values,
		Seconds:     rf.Seconds,
		Evaluations: rf.Evaluations,
	}, nil
}

// LoadReportJSON reads a report from a file.
func LoadReportJSON(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fedshap: load report: %w", err)
	}
	defer f.Close()
	return ReadReportJSON(f)
}
