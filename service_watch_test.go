package fedshap_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fedshap"
)

// TestWatchJobResumesWithLastEventID simulates a proxy that kills the SSE
// stream after one event: WatchJob must reconnect with the Last-Event-ID
// of the event it already processed, and the "daemon" resumes from there
// instead of replaying the snapshot.
func TestWatchJobResumesWithLastEventID(t *testing.T) {
	var connections atomic.Int64
	running := `{"id":"j1","state":"running","request":{"n":4},"fresh_evals":3,"submitted_at":"2026-01-01T00:00:00Z"}`
	done := `{"id":"j1","state":"done","request":{"n":4},"fresh_evals":8,"submitted_at":"2026-01-01T00:00:00Z"}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j1/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		switch connections.Add(1) {
		case 1:
			// One running event plus a heartbeat, then the stream "dies".
			fmt.Fprintf(w, "id: 41\nevent: running\ndata: %s\n\n: ping\n\n", running)
		default:
			// The resuming client must identify what it already saw.
			if got := r.Header.Get("Last-Event-ID"); got != "41" {
				t.Errorf("resume Last-Event-ID = %q, want 41", got)
			}
			fmt.Fprintf(w, "id: 42\nevent: done\ndata: %s\n\n", done)
		}
	}))
	defer srv.Close()

	var events []string
	client := fedshap.NewServiceClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := client.WatchJob(ctx, "j1", func(event string, st *fedshap.JobStatus) {
		events = append(events, event)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != fedshap.JobDone || st.FreshEvals != 8 {
		t.Fatalf("final status = %+v, want done with 8 fresh evals", st)
	}
	if len(events) != 2 || events[0] != "running" || events[1] != "done" {
		t.Errorf("observed events = %v, want [running done]", events)
	}
	if connections.Load() != 2 {
		t.Errorf("client made %d connections, want 2 (one resume)", connections.Load())
	}
}

// TestWatchJobGivesUpWithoutProgress: a stream that keeps dying without
// delivering anything must surface an error (the polling fallback's cue)
// instead of reconnecting forever.
func TestWatchJobGivesUpWithoutProgress(t *testing.T) {
	var connections atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		connections.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		// Headers out, then die: an accepted stream that never delivers.
	}))
	defer srv.Close()

	client := fedshap.NewServiceClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.WatchJob(ctx, "j1", nil); err == nil {
		t.Fatal("WatchJob returned nil error on a stream that never delivers")
	}
	if n := connections.Load(); n < 2 || n > 5 {
		t.Errorf("client made %d connections, want a few bounded retries", n)
	}
}
