package fedshap_test

import (
	"fmt"

	"fedshap"
)

// ExampleNewFederation values a small federation with the exact Shapley
// value. Everything is seeded, so the output is reproducible.
func ExampleNewFederation() {
	clients, test := fedshap.FederatedWriters(3, 40, 120, 7)
	fed, err := fedshap.NewFederation(
		fedshap.WithDatasets(clients...),
		fedshap.WithTestSet(test),
		fedshap.WithLogReg(),
		fedshap.WithFLRounds(2),
		fedshap.WithSeed(11),
	)
	if err != nil {
		panic(err)
	}
	report, err := fed.ExactValues(1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clients: %d, coalition evaluations: %d\n", fed.N(), report.Evaluations)
	// Output:
	// clients: 3, coalition evaluations: 8
}

// ExampleIPSS shows the paper's algorithm staying within its sampling
// budget γ.
func ExampleIPSS() {
	clients, test := fedshap.FederatedWriters(6, 30, 90, 7)
	fed, err := fedshap.NewFederation(
		fedshap.WithDatasets(clients...),
		fedshap.WithTestSet(test),
		fedshap.WithLogReg(),
		fedshap.WithFLRounds(2),
	)
	if err != nil {
		panic(err)
	}
	gamma := fed.RecommendedGamma() // Table III: n=6 → γ=8
	report, err := fed.Value(fedshap.IPSS(gamma), 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("budget %d, used %d of 2^6=64 coalitions\n", gamma, report.Evaluations)
	// Output:
	// budget 8, used 8 of 2^6=64 coalitions
}

// ExampleFederation_Utility inspects the underlying cooperative game: the
// utility of an explicit coalition of clients.
func ExampleFederation_Utility() {
	clients, test := fedshap.FederatedWriters(3, 40, 120, 7)
	fed, err := fedshap.NewFederation(
		fedshap.WithDatasets(clients...),
		fedshap.WithTestSet(test),
		fedshap.WithLogReg(),
		fedshap.WithFLRounds(2),
		fedshap.WithSeed(11),
	)
	if err != nil {
		panic(err)
	}
	full := fed.Utility([]int{0, 1, 2})
	empty := fed.Utility(nil)
	fmt.Printf("U(N) > U(empty): %v\n", full > empty)
	// Output:
	// U(N) > U(empty): true
}

// ExamplePlanBudget picks an IPSS budget from a target relative error using
// the paper's Theorem 3 bound.
func ExamplePlanBudget() {
	gamma := fedshap.PlanBudget(10, 1000, 8, 0.01)
	fmt.Printf("γ for 1%% target at n=10: %d (vs 1024 exact)\n", gamma)
	// Output:
	// γ for 1% target at n=10: 11 (vs 1024 exact)
}
