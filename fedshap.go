// Package fedshap is a from-scratch Go implementation of Shapley-value data
// valuation for cross-silo federated learning, reproducing "Efficient Data
// Valuation Approximation in Federated Learning: A Sampling-based Approach"
// (Wei et al., ICDE 2025) — including the paper's IPSS algorithm, the
// unified stratified sampling framework, nine baseline valuation methods,
// and the complete federated-learning substrate (FedAvg, MLP/CNN/logistic/
// linear/gradient-boosted-tree models, synthetic federated datasets) needed
// to run them.
//
// The central object is a Federation: a set of named clients with local
// datasets, a shared test set, and an FL model family. Valuation algorithms
// (Valuer implementations) estimate each client's data value, defined as
// the Shapley value of the cooperative game whose utility U(M_S) is the
// test performance of the model federatedly trained on coalition S.
//
// Quick start:
//
//	fed, err := fedshap.NewFederation(
//	    fedshap.WithClients(clients...),
//	    fedshap.WithTestSet(test),
//	    fedshap.WithMLP(16),
//	)
//	report, err := fed.Value(fedshap.IPSS(32), 1)
//	// report.Values[i] is client i's data value.
package fedshap

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/model"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// Dataset is an in-memory supervised dataset (see NewDataset and the
// generators in this package for ways to build one).
type Dataset = dataset.Dataset

// Values holds one data value per client, ordered as the clients were
// registered.
type Values = shapley.Values

// Valuer is a data-valuation algorithm; see IPSS, ExactShapley, TMC, and
// the other constructors.
type Valuer = shapley.Valuer

// Coalition is a subset of clients, used by Federation.Utility.
type Coalition = []int

// Client is one data provider in the federation.
type Client struct {
	// Name identifies the client in reports.
	Name string
	// Data is the client's local training data; an empty dataset models a
	// free rider.
	Data *Dataset
}

// Federation is a configured valuation problem: clients, test set, model
// family and FL hyper-parameters.
type Federation struct {
	clients []Client
	test    *Dataset
	factory model.Factory
	config  fl.Config
	metric  utility.Metric
}

// Option configures a Federation.
type Option func(*Federation) error

// WithClients registers the data providers, in value-report order.
func WithClients(clients ...Client) Option {
	return func(f *Federation) error {
		f.clients = append(f.clients, clients...)
		return nil
	}
}

// WithDatasets registers providers named client-0, client-1, ... from bare
// datasets.
func WithDatasets(ds ...*Dataset) Option {
	return func(f *Federation) error {
		for i, d := range ds {
			f.clients = append(f.clients, Client{Name: fmt.Sprintf("client-%d", i), Data: d})
		}
		return nil
	}
}

// WithTestSet sets the shared held-out test data the utility function
// scores models on.
func WithTestSet(test *Dataset) Option {
	return func(f *Federation) error {
		f.test = test
		return nil
	}
}

// WithMLP selects a one-hidden-layer perceptron FL model.
func WithMLP(hidden int) Option {
	return func(f *Federation) error {
		if hidden < 1 {
			return errors.New("fedshap: MLP hidden width must be positive")
		}
		f.factory = func(seed int64) model.Model {
			return model.NewMLP(f.dim(), hidden, f.classes(), seed)
		}
		return nil
	}
}

// WithDeepMLP selects a multi-hidden-layer perceptron with the given hidden
// widths (an extension beyond the paper's single-hidden-layer MLP).
func WithDeepMLP(hidden ...int) Option {
	return func(f *Federation) error {
		if len(hidden) == 0 {
			return errors.New("fedshap: DeepMLP needs at least one hidden width")
		}
		for _, h := range hidden {
			if h < 1 {
				return errors.New("fedshap: DeepMLP hidden widths must be positive")
			}
		}
		f.factory = func(seed int64) model.Model {
			dims := append([]int{f.dim()}, hidden...)
			dims = append(dims, f.classes())
			return model.NewDeepMLP(dims, seed)
		}
		return nil
	}
}

// WithLogReg selects multinomial logistic regression (the fastest family).
func WithLogReg() Option {
	return func(f *Federation) error {
		f.factory = func(seed int64) model.Model {
			return model.NewLogReg(f.dim(), f.classes(), seed)
		}
		return nil
	}
}

// WithCNN selects a small convolutional model; datasets must carry an image
// shape.
func WithCNN(filters int) Option {
	return func(f *Federation) error {
		if filters < 1 {
			return errors.New("fedshap: CNN filter count must be positive")
		}
		f.factory = func(seed int64) model.Model {
			w, h := f.imageShape()
			return model.NewCNN(w, h, filters, f.classes(), seed)
		}
		return nil
	}
}

// WithXGB selects gradient-boosted trees. Gradient-based valuation
// baselines (OR, λ-MR, GTG-Shapley) are not applicable to this family.
func WithXGB(rounds, depth int) Option {
	return func(f *Federation) error {
		cfg := model.DefaultXGBConfig()
		if rounds > 0 {
			cfg.Rounds = rounds
		}
		if depth > 0 {
			cfg.Depth = depth
		}
		f.factory = func(seed int64) model.Model {
			return model.NewXGB(f.classes(), cfg, seed)
		}
		return nil
	}
}

// WithFedProx switches federated optimisation from FedAvg to FedProx with
// proximal coefficient mu, damping client drift under strongly non-IID
// data. Valuation is agnostic to the FL algorithm A (Def. 2), so every
// Valuer works unchanged.
func WithFedProx(mu float64) Option {
	return func(f *Federation) error {
		if mu <= 0 {
			return errors.New("fedshap: FedProx mu must be positive")
		}
		f.config.Algorithm = fl.FedProx
		f.config.ProxMu = mu
		return nil
	}
}

// WithFLRounds overrides the FedAvg round count.
func WithFLRounds(rounds int) Option {
	return func(f *Federation) error {
		if rounds < 1 {
			return errors.New("fedshap: FL rounds must be positive")
		}
		f.config.Rounds = rounds
		return nil
	}
}

// WithLearningRate overrides the client learning rate.
func WithLearningRate(lr float64) Option {
	return func(f *Federation) error {
		if lr <= 0 {
			return errors.New("fedshap: learning rate must be positive")
		}
		f.config.LR = lr
		return nil
	}
}

// WithSeed fixes the training seed (valuation is deterministic given seeds).
func WithSeed(seed int64) Option {
	return func(f *Federation) error {
		f.config.Seed = seed
		return nil
	}
}

// WithTrainWorkers parallelises per-client local training inside each
// FedAvg round across the given number of workers (client-level
// parallelism). Training stays bit-identical at any worker count: client
// updates are independent and are aggregated in fixed client order. This
// speeds up a single coalition evaluation, so it composes with — and
// trades off against — the coalition-level pool of ValueParallel; prefer
// coalition-level workers when many coalitions are pending and client-level
// workers when evaluating few coalitions over many clients. workers <= 1
// trains serially (the default).
func WithTrainWorkers(workers int) Option {
	return func(f *Federation) error {
		f.config.Workers = workers
		return nil
	}
}

// WithAccuracyUtility scores coalitions by test accuracy (the default).
func WithAccuracyUtility() Option {
	return func(f *Federation) error {
		f.metric = model.Accuracy
		return nil
	}
}

// WithNegMSEUtility scores coalitions by negative test MSE (the utility of
// the paper's linear-regression theory).
func WithNegMSEUtility() Option {
	return func(f *Federation) error {
		f.metric = model.NegMSE
		return nil
	}
}

// NewFederation validates and assembles a federation.
func NewFederation(opts ...Option) (*Federation, error) {
	f := &Federation{
		config: fl.DefaultConfig(1),
		metric: model.Accuracy,
	}
	// Apply data options first so model options can see dimensions.
	for _, opt := range opts {
		if err := opt(f); err != nil {
			return nil, err
		}
	}
	if len(f.clients) == 0 {
		return nil, errors.New("fedshap: federation needs at least one client")
	}
	if len(f.clients) > 127 {
		return nil, fmt.Errorf("fedshap: %d clients exceed the supported maximum of 127", len(f.clients))
	}
	if f.test == nil || f.test.Len() == 0 {
		return nil, errors.New("fedshap: federation needs a non-empty test set")
	}
	if f.factory == nil {
		hidden := 16
		f.factory = func(seed int64) model.Model {
			return model.NewMLP(f.dim(), hidden, f.classes(), seed)
		}
	}
	return f, nil
}

// N returns the number of clients.
func (f *Federation) N() int { return len(f.clients) }

// ClientNames returns the registered names in report order.
func (f *Federation) ClientNames() []string {
	names := make([]string, len(f.clients))
	for i, c := range f.clients {
		names[i] = c.Name
	}
	return names
}

func (f *Federation) dim() int { return f.test.Dim() }

func (f *Federation) classes() int { return f.test.NumClasses }

func (f *Federation) imageShape() (int, int) {
	if f.test.ImageW > 0 {
		return f.test.ImageW, f.test.ImageH
	}
	panic("fedshap: CNN model requires image-shaped datasets")
}

// spec assembles the internal FL specification.
func (f *Federation) spec() *utility.FLSpec {
	ds := make([]*Dataset, len(f.clients))
	for i, c := range f.clients {
		ds[i] = c.Data
	}
	return &utility.FLSpec{
		Factory: f.factory,
		Clients: ds,
		Test:    f.test,
		Config:  f.config,
		Metric:  f.metric,
	}
}

// Report is the outcome of one valuation run.
type Report struct {
	// Algorithm is the Valuer's display name.
	Algorithm string `json:"algorithm"`
	// Values holds one data value per client, in registration order.
	Values Values `json:"values"`
	// Names mirrors ClientNames for convenience.
	Names []string `json:"names"`
	// Seconds is the wall-clock cost, dominated by coalition training.
	Seconds float64 `json:"seconds"`
	// Evaluations is the number of distinct coalitions trained+evaluated.
	Evaluations int `json:"evaluations"`
	// Confidence is the simultaneous confidence level of the anytime
	// fields below; 0 when the job ran without anytime tracking.
	Confidence float64 `json:"confidence,omitempty"`
	// AnytimeValues are the tracker's final per-client estimates. For a
	// run that completed its plan they coincide with Values up to the
	// algorithm's own estimator; for an early-stopped run they ARE the
	// reported values.
	AnytimeValues []float64 `json:"anytime_values,omitempty"`
	// CILow/CIHigh bound each client's value simultaneously at
	// Confidence.
	CILow  []float64 `json:"ci_low,omitempty"`
	CIHigh []float64 `json:"ci_high,omitempty"`
	// EarlyStopped reports that sampling halted before the plan ran dry
	// because every pairwise ranking resolved at Confidence.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	// BudgetUnspent is the part of the sampling budget γ an early stop
	// left unspent (0 otherwise).
	BudgetUnspent int `json:"budget_unspent,omitempty"`
}

// Value runs a valuation algorithm against a fresh utility oracle.
// The seed drives the algorithm's sampling decisions.
func (f *Federation) Value(alg Valuer, seed int64) (*Report, error) {
	//fedvallint:allow(ctxthread) context-free compat wrapper; ValueCtx is the cancellable entry point
	return f.ValueCtx(context.Background(), alg, seed)
}

// ValueCtx is Value with cooperative cancellation: when ctx is cancelled
// the run stops before its next fresh coalition evaluation and returns an
// error satisfying errors.Is(err, context.Canceled). This is the
// entry point the valuation service (internal/valserve) builds on.
func (f *Federation) ValueCtx(ctx context.Context, alg Valuer, seed int64) (*Report, error) {
	spec := f.spec()
	oracle := utility.NewFLOracle(*spec)
	sctx := shapley.NewContext(oracle, seed).WithSpec(spec).WithContext(ctx)
	start := time.Now()
	values, err := shapley.Run(sctx, alg)
	if err != nil {
		return nil, fmt.Errorf("fedshap: %s: %w", alg.Name(), err)
	}
	return &Report{
		Algorithm:   alg.Name(),
		Values:      values,
		Names:       f.ClientNames(),
		Seconds:     time.Since(start).Seconds(),
		Evaluations: oracle.Evals(),
	}, nil
}

// ExactValues computes the ground-truth Shapley values (2ⁿ coalition
// trainings — use only for small federations).
func (f *Federation) ExactValues(seed int64) (*Report, error) {
	return f.Value(ExactShapley(), seed)
}

// ValueParallel is Value with concurrent coalition evaluation: the
// algorithm's deterministic evaluation plan — the full seeded sampling
// sequence for the sampling algorithms (IPSS, Stratified, CC-Shapley,
// Extended-GTB, MC-Banzhaf, Perm-MC, ...), the certain evaluation set
// otherwise — is trained on a bounded worker pool before the sequential
// valuation pass, which then reduces against a warm cache. Values are
// bit-identical to Value, and the number of coalition evaluations is
// unchanged; only wall-clock shrinks. workers <= 0 selects GOMAXPROCS;
// workers == 1 degrades gracefully to the serial path.
func (f *Federation) ValueParallel(alg Valuer, seed int64, workers int) (*Report, error) {
	//fedvallint:allow(ctxthread) context-free compat wrapper; ValueParallelCtx is the cancellable entry point
	return f.ValueParallelCtx(context.Background(), alg, seed, workers)
}

// ValueParallelCtx is ValueParallel with cooperative cancellation: the
// valuation context governs the evaluation pool too, so cancelling the run
// stops concurrent coalition training before the next fresh evaluation,
// not just the sequential pass.
func (f *Federation) ValueParallelCtx(ctx context.Context, alg Valuer, seed int64, workers int) (*Report, error) {
	spec := f.spec()
	oracle := utility.NewFLOracle(*spec)
	start := time.Now()
	if plan, ok := shapley.PlanFor(alg, f.N(), seed); ok && len(plan) > 0 {
		if err := oracle.Prefetch(ctx, plan, workers); err != nil {
			return nil, fmt.Errorf("fedshap: %s: %w", alg.Name(), err)
		}
	}
	// The sequential pass runs in a fresh budget scope over the warm
	// cache: budget-gated samplers meter the coalitions this run requests
	// (warm or not), exactly as against a cold oracle, so their sampling
	// decisions — and hence the values — cannot be perturbed by the
	// prefetch. Fresh-evaluation accounting stays on the oracle.
	view := utility.NewRunView(oracle)
	sctx := shapley.NewContext(view, seed).WithSpec(spec).WithContext(ctx)
	values, err := shapley.Run(sctx, alg)
	if err != nil {
		return nil, fmt.Errorf("fedshap: %s: %w", alg.Name(), err)
	}
	return &Report{
		Algorithm:   alg.Name(),
		Values:      values,
		Names:       f.ClientNames(),
		Seconds:     time.Since(start).Seconds(),
		Evaluations: oracle.Evals(),
	}, nil
}

// Utility trains and evaluates the model for one explicit coalition —
// useful for inspecting the game a valuation runs on.
func (f *Federation) Utility(coalition Coalition) float64 {
	spec := f.spec()
	oracle := utility.NewFLOracle(*spec)
	return oracle.U(toCoalition(coalition))
}

// Utilities is the batch companion of Utility: it trains and evaluates the
// given coalitions concurrently on a bounded worker pool (the same
// evaluation pool ValueParallel uses) and returns their utilities aligned
// with the input; duplicate coalitions are trained once. workers <= 0
// selects GOMAXPROCS.
func (f *Federation) Utilities(coalitions []Coalition, workers int) []float64 {
	spec := f.spec()
	oracle := utility.NewFLOracle(*spec)
	in := make([]combin.Coalition, len(coalitions))
	for i, c := range coalitions {
		in[i] = toCoalition(c)
	}
	// A background context cannot be cancelled, so EvalBatch cannot fail.
	//fedvallint:allow(ctxthread) context-free convenience API; the cancellable path is Oracle.EvalBatch
	out, _ := oracle.EvalBatch(context.Background(), in, workers)
	return out
}

// RecommendedGamma returns the paper's sampling budget policy for this
// federation size (Table III for n ∈ {3,6,10}, γ = ⌈n·ln n⌉ otherwise).
func (f *Federation) RecommendedGamma() int {
	return recommendedGamma(f.N())
}
