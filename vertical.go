package fedshap

import (
	"fmt"
	"time"

	"fedshap/internal/shapley"
	"fedshap/internal/vfl"
)

// Vertical federated valuation: providers contribute feature *columns* of a
// shared sample population instead of sample rows. The same Valuer
// algorithms apply; the utility of a coalition is the accuracy of a split
// logistic model trained with only that coalition's feature blocks. An
// extension beyond the paper's horizontal evaluation (its DIG-FL baseline
// and the Adult dataset both come from the vertical-FL literature).

// FeatureBlock declares one vertical provider's feature-column range.
type FeatureBlock = vfl.FeatureBlock

// VerticalFederation is a feature-partitioned valuation problem.
type VerticalFederation struct {
	problem *vfl.Problem
}

// NewVerticalFederation builds a vertical federation over aligned train and
// test data. Blocks must be disjoint column ranges; columns not covered by
// any block are treated as coordinator-owned and always available.
func NewVerticalFederation(train, test *Dataset, blocks []FeatureBlock, opts ...VerticalOption) (*VerticalFederation, error) {
	p := &vfl.Problem{
		Train: train, Test: test, Blocks: blocks,
		Epochs: 3, LR: 0.1, Seed: 1,
	}
	for _, opt := range opts {
		opt(p)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &VerticalFederation{problem: p}, nil
}

// VerticalOption configures a VerticalFederation.
type VerticalOption func(*vfl.Problem)

// WithVerticalEpochs sets the split-model training epochs per coalition.
func WithVerticalEpochs(epochs int) VerticalOption {
	return func(p *vfl.Problem) { p.Epochs = epochs }
}

// WithVerticalLR sets the split-model learning rate.
func WithVerticalLR(lr float64) VerticalOption {
	return func(p *vfl.Problem) { p.LR = lr }
}

// WithVerticalSeed fixes the training seed.
func WithVerticalSeed(seed int64) VerticalOption {
	return func(p *vfl.Problem) { p.Seed = seed }
}

// N returns the number of feature providers.
func (v *VerticalFederation) N() int { return v.problem.N() }

// EqualFeatureBlocks splits dim feature columns into n near-equal provider
// blocks, for synthetic vertical scenarios.
func EqualFeatureBlocks(dim, n int) []FeatureBlock { return vfl.EqualBlocks(dim, n) }

// Value runs a valuation algorithm over the feature providers.
func (v *VerticalFederation) Value(alg Valuer, seed int64) (*Report, error) {
	oracle, err := v.problem.Oracle()
	if err != nil {
		return nil, err
	}
	ctx := shapley.NewContext(oracle, seed)
	start := time.Now()
	values, err := alg.Values(ctx)
	if err != nil {
		return nil, fmt.Errorf("fedshap: vertical %s: %w", alg.Name(), err)
	}
	names := make([]string, len(v.problem.Blocks))
	for i, b := range v.problem.Blocks {
		names[i] = b.Name
	}
	return &Report{
		Algorithm:   alg.Name(),
		Values:      values,
		Names:       names,
		Seconds:     time.Since(start).Seconds(),
		Evaluations: oracle.Evals(),
	}, nil
}
