// Command fedvalload replays synthetic multi-tenant traffic against a
// fedvald daemon and reports throughput, queue-wait and job-latency
// percentiles — the load-level numbers `go test -bench` cannot measure.
// Traffic spreads across many problem fingerprints with mixed γ budgets
// and model types, a configurable fraction of warm resubmits, and a pool
// of SSE watchers holding live event streams.
//
// Point it at a running daemon:
//
//	fedvalload -addr http://127.0.0.1:8787 -jobs 500 -concurrency 16
//
// or let it spawn a private stack (daemon + worker fleet) to load:
//
//	fedvalload -spawn -fleet 3 -jobs 200
//
// With -chaos (implies -spawn) it becomes a fault-injection harness: mid
// load it SIGKILLs and relaunches fleet workers and the daemon itself and
// severs every coordinator connection, then asserts the service's
// recovery invariants — every submitted job reaches a terminal state,
// replaying every distinct request costs zero fresh evaluations, the
// recovered reports are bit-identical to an undisturbed control daemon's,
// and the fleet's worker-death requeue counter accounts for every induced
// death that had work in flight:
//
//	fedvalload -chaos -jobs 120 -fleet 3 -daemon-kills 1 -worker-kills 2 -partitions 1
//
// Three more fault types exercise the defense-in-depth resilience layer:
// -disk-full forces a persistence failure window (the daemon must flip to
// degraded memory-only operation, admit a canary job, and restore once
// the fault clears), -stalls SIGSTOPs a fleet worker past the task
// deadline (the reaper must requeue its frozen evaluations), and -flaps
// kills the same worker repeatedly (the quarantine must bench it and
// refuse the reattach):
//
//	fedvalload -chaos -jobs 120 -fleet 2 -disk-full 1 -stalls 1 -flaps 1
//
// The process exits 0 on success, 1 on harness errors, and 2 when a
// chaos invariant is violated. -json writes the full report; -bench-out
// writes the headline percentiles in the scripts/bench.sh line format so
// load numbers land on the BENCH_PR*.json trajectory. See the "Load
// testing & chaos" section of OPERATIONS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fedshap"
	"fedshap/internal/loadgen"
)

func main() {
	var (
		addr         = flag.String("addr", "http://127.0.0.1:8787", "target daemon base URL (ignored with -spawn/-chaos)")
		jobs         = flag.Int("jobs", 100, "total submissions to replay")
		concurrency  = flag.Int("concurrency", 8, "concurrent submitters")
		batch        = flag.Int("batch", 1, "jobs per POST /v1/jobs:batch call (1 submits singly)")
		fingerprints = flag.Int("fingerprints", 8, "distinct problem fingerprints to spread traffic across")
		warmFraction = flag.Float64("warm-fraction", 0.25, "fraction of submissions that repeat an earlier request verbatim")
		watchers     = flag.Int("watchers", 4, "SSE watcher pool size (0 disables)")
		nClients     = flag.Int("n", 4, "federation size of generated problems")
		models       = flag.String("models", "logreg", "comma-separated model mix, cycled across fingerprints")
		gammas       = flag.String("gammas", "6,12", "comma-separated γ budget mix, sampled per submission")
		data         = flag.String("data", "synthetic", "dataset family for generated problems")
		scale        = flag.String("scale", "tiny", "dataset scale for generated problems")
		seed         = flag.Int64("seed", 1, "traffic generation seed (equal seeds replay identical request sequences)")
		timeout      = flag.Duration("timeout", 10*time.Minute, "overall run deadline")
		jsonOut      = flag.String("json", "", "write the full report as JSON to this file (- for stdout)")
		benchOut     = flag.String("bench-out", "", "write headline percentiles in scripts/bench.sh line format to this file")
		spawn        = flag.Bool("spawn", false, "spawn a private daemon (+fleet) to load instead of targeting -addr")
		fedvald      = flag.String("fedvald", "fedvald", "fedvald binary for -spawn/-chaos (path or $PATH name)")
		fedvalworker = flag.String("fedvalworker", "fedvalworker", "fedvalworker binary for -spawn/-chaos")
		dir          = flag.String("dir", "", "working directory for spawned daemons (default: a temp dir, removed on exit)")
		fleet        = flag.Int("fleet", 2, "remote evaluation workers to spawn with -spawn/-chaos (0 = in-process evaluation)")
		poolWorkers  = flag.Int("pool", 4, "spawned daemon's concurrent valuation jobs (fedvald -workers)")
		queueCap     = flag.Int("queue", 256, "spawned daemon's queue capacity (fedvald -queue)")
		chaos        = flag.Bool("chaos", false, "inject faults mid-load and check recovery invariants (implies -spawn)")
		daemonKills  = flag.Int("daemon-kills", 1, "daemon SIGKILL+relaunch cycles under -chaos")
		workerKills  = flag.Int("worker-kills", 2, "fleet worker SIGKILLs under -chaos")
		partitions   = flag.Int("partitions", 1, "coordinator connection severances under -chaos")
		diskFull     = flag.Int("disk-full", 0, "persistence fault windows under -chaos (daemon must degrade to memory-only and recover)")
		stalls       = flag.Int("stalls", 0, "fleet worker SIGSTOP windows under -chaos (task deadline must rescue frozen evaluations)")
		flaps        = flag.Int("flaps", 0, "repeated-death cycles on one fleet worker under -chaos (quarantine must bench it)")
		stallFor     = flag.Duration("stall-for", 3*time.Second, "how long -stalls keeps a worker frozen")
		taskDeadline = flag.Duration("task-deadline", 0, "spawned daemon's fedvald -task-deadline (0: 1s when -stalls is set, else fedvald's default)")
	)
	flag.Parse()

	mix := loadgen.Mix{
		Data:   *data,
		Scale:  *scale,
		N:      *nClients,
		Models: splitList(*models),
		Gammas: splitInts(*gammas),
	}
	cfg := loadgen.Config{
		Jobs:         *jobs,
		Concurrency:  *concurrency,
		BatchSize:    *batch,
		Fingerprints: *fingerprints,
		WarmFraction: *warmFraction,
		Watchers:     *watchers,
		Seed:         *seed,
		Timeout:      *timeout,
		Mix:          mix,
		Logf:         logf,
	}

	rep, err := run(cfg, runOpts{
		addr: *addr, spawn: *spawn || *chaos, chaos: *chaos,
		fedvald: *fedvald, fedvalworker: *fedvalworker, dir: *dir,
		fleet: *fleet, poolWorkers: *poolWorkers, queueCap: *queueCap,
		daemonKills: *daemonKills, workerKills: *workerKills, partitions: *partitions,
		diskFull: *diskFull, stalls: *stalls, flaps: *flaps,
		stallFor: *stallFor, taskDeadline: *taskDeadline,
		timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedvalload:", err)
		os.Exit(1)
	}

	fmt.Println(rep.Summary())
	if err := writeOutputs(rep, *jsonOut, *benchOut); err != nil {
		fmt.Fprintln(os.Stderr, "fedvalload:", err)
		os.Exit(1)
	}
	if rep.Chaos != nil {
		if v := rep.Chaos.Violations(); len(v) > 0 {
			fmt.Fprintf(os.Stderr, "fedvalload: %d invariant violation(s)\n", len(v))
			os.Exit(2)
		}
	}
}

type runOpts struct {
	addr                  string
	spawn, chaos          bool
	fedvald, fedvalworker string
	dir                   string
	fleet                 int
	poolWorkers, queueCap int
	daemonKills           int
	workerKills           int
	partitions            int
	diskFull              int
	stalls, flaps         int
	stallFor              time.Duration
	taskDeadline          time.Duration
	timeout               time.Duration
}

func run(cfg loadgen.Config, opts runOpts) (*loadgen.Report, error) {
	ctx, cancel := context.WithTimeout(context.Background(), opts.timeout+2*time.Minute)
	defer cancel()

	if !opts.spawn {
		cfg.Client = fedshap.NewServiceClient(opts.addr)
		r, err := loadgen.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		return r.Run(ctx)
	}

	dir := opts.dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "fedvalload-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	apiAddr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	workerAddr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	client := fedshap.NewServiceClient("http://" + apiAddr)
	cfg.Client = client

	stack := &stack{
		opts: opts, dir: dir,
		apiAddr: apiAddr, workerAddr: workerAddr,
	}

	if !opts.chaos {
		if err := stack.startPlain(ctx, client); err != nil {
			return nil, err
		}
		defer stack.stop()
		r, err := loadgen.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		return r.Run(ctx)
	}

	// Chaos: workers dial the coordinator through a severable proxy, the
	// controller owns every process, and a control daemon with fresh state
	// anchors the bit-identical check.
	if opts.fleet <= 0 {
		return nil, fmt.Errorf("-chaos needs -fleet >= 1 (worker kills and partitions target the fleet)")
	}
	proxy, err := loadgen.NewProxy("127.0.0.1:0", workerAddr)
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	controlAddr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	names := make([]string, opts.fleet)
	for i := range names {
		names[i] = fmt.Sprintf("chaos-w%d", i)
	}
	// Disk-full faults need a fault file shared with the chaos daemon
	// (the control daemon never sees it), and stalls need a task deadline
	// shorter than the stall window or the frozen work is never rescued.
	faultFile := ""
	if opts.diskFull > 0 {
		faultFile = filepath.Join(dir, "fault-disk-full")
	}
	if opts.stalls > 0 && stack.opts.taskDeadline == 0 {
		stack.opts.taskDeadline = time.Second
	}
	stack.faultFile = faultFile
	r, err := loadgen.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return loadgen.RunChaos(ctx, r, loadgen.ChaosConfig{
		Spec: loadgen.ProcessSpec{
			StartDaemon: func() (*exec.Cmd, error) {
				return stack.launchDaemon(dir, apiAddr, workerAddr)
			},
			StartWorker: func(name string) (*exec.Cmd, error) {
				return stack.launchWorker(name, proxy.Addr())
			},
			StartControl: func() (*exec.Cmd, error) {
				controlDir := filepath.Join(dir, "control")
				if err := os.MkdirAll(controlDir, 0o755); err != nil {
					return nil, err
				}
				return stack.launchControl(controlDir, controlAddr)
			},
		},
		Client:        client,
		ControlClient: fedshap.NewServiceClient("http://" + controlAddr),
		WorkerNames:   names,
		Proxy:         proxy,
		DaemonKills:   opts.daemonKills,
		WorkerKills:   opts.workerKills,
		Partitions:    opts.partitions,
		DiskFull:      opts.diskFull,
		Stalls:        opts.stalls,
		Flaps:         opts.flaps,
		FaultFile:     faultFile,
		StallFor:      opts.stallFor,
		Logf:          logf,
	})
}

// stack launches and tears down a private daemon + fleet for -spawn runs.
// Under -chaos the loadgen controller owns the processes instead and the
// stack only provides the launch recipes.
type stack struct {
	opts                runOpts
	dir                 string
	apiAddr, workerAddr string
	faultFile           string
	procs               []*exec.Cmd
}

// launchDaemon starts the daemon under load: it carries the task deadline
// and, when disk-full faults are configured, the persistence fault switch.
func (s *stack) launchDaemon(dir, apiAddr, workerAddr string) (*exec.Cmd, error) {
	args := s.daemonArgs(dir, apiAddr, workerAddr)
	if s.opts.taskDeadline > 0 && workerAddr != "" {
		args = append(args, "-task-deadline", s.opts.taskDeadline.String())
	}
	cmd := exec.Command(s.opts.fedvald, args...)
	if s.faultFile != "" {
		cmd.Env = append(os.Environ(), "FEDVALD_FAULT_FILE="+s.faultFile)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", s.opts.fedvald, err)
	}
	return cmd, nil
}

// launchControl starts the undisturbed control daemon: no fleet, no fault
// switch — it anchors the bit-identical comparison.
func (s *stack) launchControl(dir, apiAddr string) (*exec.Cmd, error) {
	cmd := exec.Command(s.opts.fedvald, s.daemonArgs(dir, apiAddr, "")...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", s.opts.fedvald, err)
	}
	return cmd, nil
}

func (s *stack) daemonArgs(dir, apiAddr, workerAddr string) []string {
	args := []string{
		"-addr", apiAddr,
		"-workers", strconv.Itoa(s.opts.poolWorkers),
		"-queue", strconv.Itoa(s.opts.queueCap),
		"-journal", filepath.Join(dir, "jobs.jsonl"),
		"-cache-dir", filepath.Join(dir, "cache"),
		"-log-level", "warn",
	}
	if workerAddr != "" {
		args = append(args, "-worker-addr", workerAddr)
	}
	return args
}

func (s *stack) launchWorker(name, coordinator string) (*exec.Cmd, error) {
	cmd := exec.Command(s.opts.fedvalworker,
		"-coordinator", coordinator,
		"-name", name,
		"-capacity", "2",
		"-retry", "200ms",
		"-log-level", "warn",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", s.opts.fedvalworker, err)
	}
	return cmd, nil
}

// startPlain brings up daemon + fleet for a no-chaos spawn run and waits
// until the API answers and the fleet is attached.
func (s *stack) startPlain(ctx context.Context, client *fedshap.ServiceClient) error {
	workerAddr := s.workerAddr
	if s.opts.fleet <= 0 {
		workerAddr = ""
	}
	d, err := s.launchDaemon(s.dir, s.apiAddr, workerAddr)
	if err != nil {
		return err
	}
	s.procs = append(s.procs, d)
	deadline := time.Now().Add(30 * time.Second)
	for {
		hctx, hcancel := context.WithTimeout(ctx, time.Second)
		_, err := client.Metrics(hctx)
		hcancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("spawned daemon not healthy: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	for i := 0; i < s.opts.fleet; i++ {
		w, err := s.launchWorker(fmt.Sprintf("load-w%d", i), workerAddr)
		if err != nil {
			return err
		}
		s.procs = append(s.procs, w)
	}
	for s.opts.fleet > 0 {
		hctx, hcancel := context.WithTimeout(ctx, time.Second)
		workers, err := client.Workers(hctx)
		hcancel()
		if err == nil && len(workers) >= s.opts.fleet {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet did not attach")
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil
}

func (s *stack) stop() {
	for _, p := range s.procs {
		if p != nil && p.Process != nil {
			p.Process.Kill()
			p.Wait()
		}
	}
}

func writeOutputs(rep *loadgen.Report, jsonOut, benchOut string) error {
	if jsonOut == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if jsonOut != "" {
		if err := writeFile(jsonOut, rep.WriteJSON); err != nil {
			return err
		}
	}
	if benchOut != "" {
		if err := writeFile(benchOut, rep.WriteBenchLines); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path, streams the report through write, and checks
// the close error on every path — Close flushes, so its error is a write
// error.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// freeAddr reserves a loopback port and releases it for a child process
// to bind. The tiny reuse race is acceptable for a load harness.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func splitInts(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedvalload: bad integer %q in list\n", part)
			os.Exit(1)
		}
		out = append(out, n)
	}
	return out
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "[fedvalload] "+format+"\n", args...)
}
