// Command fedvallint is the project-invariant static analysis suite: it
// machine-checks the source-level rules the runtime test suites can only
// catch after the fact — determinism in value-affecting packages,
// context threading, lock hygiene, durability of persistence writes, and
// the metric naming convention.
//
// Usage:
//
//	fedvallint [-json] [packages]   # default pattern ./...
//	fedvallint -list                # print analyzer names, one per line
//
// Exit status: 0 when clean, 1 when diagnostics were reported, 2 on a
// usage or load error. Diagnostics print as file:line:col: message
// [check]; -json emits them as a JSON array for machine consumption.
// Violations that are deliberate carry a
// //fedvallint:allow(<check>) <reason> annotation at the site.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fedshap/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print analyzer names, one per line, and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedvallint [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Println(a.Name)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedvallint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.NewLoader().Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedvallint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)

	// Report paths relative to the working directory, like go vet.
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && len(rel) < len(diags[i].File) {
				diags[i].File = rel
			}
		}
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{} // a clean run is [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "fedvallint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
