// Command fedval values a synthetic federation from the command line: pick
// a dataset family, a model, a federation size and an algorithm, and it
// prints the per-client data values with timing and budget accounting.
//
// Usage:
//
//	fedval -data femnist -model mlp -n 6 -alg ipss
//	fedval -data adult -model xgb -n 10 -alg ipss -gamma 64
//	fedval -data synthetic -setup same-size-noisy-label -noise 0.2 -alg exact
//
// With -server it becomes a client of the fedvald daemon instead of
// computing locally: the job runs in the daemon's worker pool against its
// persistent utility cache, with live progress and Ctrl-C cancellation:
//
//	fedval -server http://127.0.0.1:8787 -data femnist -model mlp -n 6 -alg ipss
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"fedshap"
	"fedshap/internal/dataset"
	"fedshap/internal/experiments"
	"fedshap/internal/fl"
	"fedshap/internal/model"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// jsonResult is the machine-readable output of -json.
type jsonResult struct {
	Problem     string    `json:"problem"`
	Algorithm   string    `json:"algorithm"`
	Seconds     float64   `json:"seconds"`
	Evaluations int       `json:"evaluations"`
	Values      []float64 `json:"values"`
	Exact       []float64 `json:"exact,omitempty"`
	L2Error     *float64  `json:"l2_error,omitempty"`

	// Anytime fields, present when the job ran with -confidence.
	Confidence    float64   `json:"confidence,omitempty"`
	CILow         []float64 `json:"ci_low,omitempty"`
	CIHigh        []float64 `json:"ci_high,omitempty"`
	EarlyStopped  bool      `json:"early_stopped,omitempty"`
	BudgetUnspent int       `json:"budget_unspent,omitempty"`
}

func main() {
	var (
		data  = flag.String("data", "femnist", "dataset family: femnist | adult | synthetic | csv")
		file  = flag.String("file", "", "CSV file for -data csv (features..., integer label last; header auto-detected)")
		setup = flag.String("setup", string(experiments.SameSizeSameDist),
			"synthetic partition setup: same-size-same-distr | same-size-diff-distr | diff-size-same-distr | same-size-noisy-label | same-size-noisy-feature")
		noise        = flag.Float64("noise", 0.1, "noise level for the noisy synthetic setups (0..0.2)")
		modelKind    = flag.String("model", "mlp", "FL model: mlp | cnn | xgb | logreg | deepmlp")
		n            = flag.Int("n", 6, "number of FL clients (2..127)")
		algName      = flag.String("alg", "ipss", "algorithm: ipss | ipss-rescaled | exact | perm | stratified-mc | stratified-cc | kgreedy | tmc | gtb | ccshapley | digfl | or | lambdamr | gtg")
		gamma        = flag.Int("gamma", 0, "sampling budget γ (0 = paper's Table III / n·ln n policy)")
		k            = flag.Int("k", 2, "K for kgreedy")
		seed         = flag.Int64("seed", 1, "random seed")
		scaleName    = flag.String("scale", "small", "substrate scale: tiny | small")
		compare      = flag.Bool("compare", false, "also compute exact values and report the l2 error (2^n trainings)")
		jsonOut      = flag.Bool("json", false, "emit the result as JSON")
		server       = flag.String("server", "", "fedvald base URL; when set, run the job remotely instead of locally")
		showTrace    = flag.Bool("trace", false, "in -server mode, fetch the job's trace timeline after it finishes and print it to stderr")
		poll         = flag.Duration("poll", 300*time.Millisecond, "polling-fallback interval in -server mode (progress normally streams over server-sent events)")
		workers      = flag.Int("workers", 0, "concurrent coalition evaluations in -server mode (0 = daemon default)")
		confidence   = flag.Float64("confidence", 0, "in -server mode, stream anytime confidence intervals at this simultaneous level, e.g. 0.9 (0 = off)")
		rankStop     = flag.Bool("rank-stop", false, "in -server mode, stop the job early once every pairwise client ranking is resolved at -confidence (plan-exhaustive algorithms only)")
		watchValues  = flag.Bool("watch-values", false, "in -server mode, print each interim values snapshot as it streams in")
		deadline     = flag.Duration("deadline", 0, "in -server mode, bound the job's run time once it starts executing; an overrunning job terminates as timed_out (0 = no deadline)")
		evalWorkers  = flag.Int("eval-workers", 1, "concurrent coalition evaluations in local mode: the algorithm's deterministic sampling plan is trained on this many workers, bit-identically to serial (0 = all cores, 1 = serial)")
		trainWorkers = flag.Int("train-workers", 0, "concurrent per-client local trainings inside each FL round in local mode (<= 1 trains serially; results are bit-identical at any value)")
	)
	flag.Parse()

	if *server != "" {
		if strings.EqualFold(*data, "csv") {
			fatal(errors.New("-data csv is not available in -server mode (the file is local)"))
		}
		if *compare {
			fatal(errors.New("-compare is not available in -server mode"))
		}
		if *watchValues && *confidence == 0 {
			fatal(errors.New("-watch-values requires -confidence (values events stream only for anytime jobs)"))
		}
		runRemote(*server, fedshap.JobRequest{
			Data:            *data,
			Setup:           *setup,
			Noise:           *noise,
			Model:           *modelKind,
			N:               *n,
			Algorithm:       *algName,
			Gamma:           *gamma,
			K:               *k,
			Seed:            *seed,
			Scale:           *scaleName,
			Workers:         *workers,
			Confidence:      *confidence,
			RankStop:        *rankStop,
			DeadlineSeconds: deadline.Seconds(),
		}, *jsonOut, *showTrace, *watchValues, *poll)
		return
	}

	sc := experiments.Small()
	if *scaleName == "tiny" {
		sc = experiments.Tiny()
	}
	if *gamma == 0 {
		*gamma = experiments.GammaForN(*n)
	}

	kind, err := parseModel(*modelKind)
	if err != nil {
		fatal(err)
	}
	p, err := buildProblem(*data, *file, *setup, *noise, *n, kind, sc, *seed)
	if err != nil {
		fatal(err)
	}
	if *trainWorkers > 1 && p.Spec != nil {
		p.Spec.Config.Workers = *trainWorkers
	}
	alg, err := parseAlg(*algName, *gamma, *k)
	if err != nil {
		fatal(err)
	}

	var exact shapley.Values
	if *compare {
		fmt.Fprintf(os.Stderr, "computing exact values (%d coalition trainings)...\n", 1<<uint(*n))
		exact, _ = experiments.ExactValuesParallel(context.Background(), p, *seed+1, *evalWorkers)
	}

	res := experiments.RunAlgorithmParallel(context.Background(), p, alg, exact, *seed+2, *evalWorkers)
	if res.RunErr != nil {
		fatal(res.RunErr)
	}
	if res.NotApplicable {
		fatal(fmt.Errorf("%s is not applicable to model %s", alg.Name(), kind))
	}

	if *jsonOut {
		out := jsonResult{
			Problem:     p.Name,
			Algorithm:   res.Algorithm,
			Seconds:     res.Seconds,
			Evaluations: res.Evals,
			Values:      res.Values,
		}
		if exact != nil {
			out.Exact = exact
			out.L2Error = &res.Err
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("problem:    %s\n", p.Name)
	fmt.Printf("algorithm:  %s\n", res.Algorithm)
	fmt.Printf("time:       %.3fs   coalition evaluations: %d\n", res.Seconds, res.Evals)
	if exact != nil {
		fmt.Printf("l2 error:   %.4f\n", res.Err)
	}
	fmt.Println()
	fmt.Printf("%-10s %12s", "client", "value")
	if exact != nil {
		fmt.Printf(" %12s", "exact")
	}
	fmt.Println()
	for i, v := range res.Values {
		fmt.Printf("client-%-3d %12.4f", i, v)
		if exact != nil {
			fmt.Printf(" %12.4f", exact[i])
		}
		fmt.Println()
	}
}

// runRemote submits the job to a fedvald daemon, streams progress to
// stderr, and prints the final report in the same formats as a local run.
// Progress arrives over the daemon's server-sent event stream; if the
// stream is unavailable (older daemon, proxy in the way) the client falls
// back to polling at the -poll interval. Ctrl-C cancels the remote job
// before exiting.
func runRemote(server string, req fedshap.JobRequest, jsonOut, showTrace, watchValues bool, poll time.Duration) {
	client := fedshap.NewServiceClient(server)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st, err := client.Submit(ctx, req)
	if err != nil {
		fatal(err)
	}
	jobID := st.ID
	fmt.Fprintf(os.Stderr, "fedval: submitted %s (fingerprint %s, budget %d)\n", st.ID, st.Fingerprint, st.Budget)

	// Print a line whenever the job makes progress. Event snapshots can
	// arrive out of order under concurrent evaluation, so only advances
	// are shown.
	lastFresh := -1
	show := func(s *fedshap.JobStatus) {
		if s.FreshEvals > lastFresh {
			lastFresh = s.FreshEvals
			fmt.Fprintf(os.Stderr, "fedval: %-8s fresh evaluations %d/%d (warm-cached %d)\n",
				s.State, s.FreshEvals, s.Budget, s.WarmedCoalitions)
		}
	}
	// Interim anytime snapshots ride the same event stream as lifecycle
	// events; -watch-values prints each one as a compact interval line.
	var onValues func(*fedshap.InterimValues)
	if watchValues {
		onValues = func(iv *fedshap.InterimValues) {
			parts := make([]string, len(iv.Values))
			for i, v := range iv.Values {
				parts[i] = fmt.Sprintf("%s=%.3f[%.3f,%.3f]", iv.Names[i], v, iv.CILow[i], iv.CIHigh[i])
			}
			fmt.Fprintf(os.Stderr, "fedval: values  seen %d/%d resolved=%v  %s\n",
				iv.SeenCoalitions, iv.PlannedCoalitions, iv.Resolved, strings.Join(parts, " "))
		}
	}
	st, err = client.WatchValues(ctx, jobID, func(event string, s *fedshap.JobStatus) { show(s) }, onValues)
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "fedval: event stream unavailable (%v); falling back to polling\n", err)
		st, err = client.Wait(ctx, jobID, poll, show)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Interrupted: cancel the remote job before giving up. The
			// interrupt may have landed mid-poll (Wait returns no status
			// then), so cancel by the submit-time ID.
			cctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if cst, cerr := client.Cancel(cctx, jobID); cerr == nil {
				fatal(fmt.Errorf("interrupted; job %s is now %s", cst.ID, cst.State))
			}
		}
		fatal(err)
	}
	if showTrace {
		// Fetch before judging the terminal state, so a failed or
		// cancelled job's timeline still prints — that is when it is most
		// wanted.
		tctx, tcancel := context.WithTimeout(context.Background(), 3*time.Second)
		tr, terr := client.Trace(tctx, jobID)
		tcancel()
		if terr != nil {
			fmt.Fprintf(os.Stderr, "fedval: trace unavailable: %v\n", terr)
		} else {
			printTrace(tr)
		}
	}
	switch st.State {
	case fedshap.JobDone:
	case fedshap.JobCancelled:
		fatal(fmt.Errorf("job %s was cancelled: %s", st.ID, st.Error))
	default:
		fatal(fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
	}

	rep := st.Report
	if jsonOut {
		out := jsonResult{
			Problem:       st.Problem,
			Algorithm:     rep.Algorithm,
			Seconds:       rep.Seconds,
			Evaluations:   rep.Evaluations,
			Values:        rep.Values,
			Confidence:    rep.Confidence,
			CILow:         rep.CILow,
			CIHigh:        rep.CIHigh,
			EarlyStopped:  rep.EarlyStopped,
			BudgetUnspent: rep.BudgetUnspent,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("problem:    %s\n", st.Problem)
	fmt.Printf("algorithm:  %s\n", rep.Algorithm)
	fmt.Printf("time:       %.3fs   fresh coalition evaluations: %d (warm-cached %d)\n",
		rep.Seconds, rep.Evaluations, st.WarmedCoalitions)
	if rep.EarlyStopped {
		fmt.Printf("early stop: rankings resolved at confidence %.2f; %d of %d budgeted evaluations unspent\n",
			rep.Confidence, rep.BudgetUnspent, st.Budget)
	}
	fmt.Println()
	hasCI := len(rep.CILow) == len(rep.Values) && len(rep.CIHigh) == len(rep.Values) && len(rep.Values) > 0
	fmt.Printf("%-10s %12s", "client", "value")
	if hasCI {
		fmt.Printf(" %12s %12s", "ci-low", "ci-high")
	}
	fmt.Println()
	for i, v := range rep.Values {
		fmt.Printf("%-10s %12.4f", rep.Names[i], v)
		if hasCI {
			fmt.Printf(" %12.4f %12.4f", rep.CILow[i], rep.CIHigh[i])
		}
		fmt.Println()
	}
}

// printTrace renders a job's trace timeline to stderr: one line per span,
// offset from the first recorded span, with its source and attributes.
// Worker-side dispatch spans show up under the worker's name, so the
// split between daemon phases and fleet work is visible at a glance.
func printTrace(tr *fedshap.JobTrace) {
	fmt.Fprintf(os.Stderr, "fedval: trace for %s (%s, %d spans)\n", tr.JobID, tr.State, len(tr.Spans))
	if len(tr.Spans) == 0 {
		fmt.Fprintln(os.Stderr, "fedval:   no spans recorded (job predates this daemon life)")
		return
	}
	base := tr.Spans[0].Start
	for _, sp := range tr.Spans {
		dur := "     open"
		if sp.End != nil {
			dur = fmt.Sprintf("%8.3fs", sp.DurationSeconds)
		}
		line := fmt.Sprintf("  +%8.3fs %s %-14s %s", sp.Start.Sub(base).Seconds(), dur, sp.Name, sp.Source)
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf(" %s=%s", k, sp.Attrs[k])
			}
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func parseModel(s string) (experiments.ModelKind, error) {
	switch strings.ToLower(s) {
	case "mlp":
		return experiments.MLP, nil
	case "cnn":
		return experiments.CNN, nil
	case "xgb":
		return experiments.XGB, nil
	case "logreg":
		return experiments.LogReg, nil
	case "deepmlp":
		return experiments.DeepMLP, nil
	default:
		return "", fmt.Errorf("unknown model %q", s)
	}
}

func buildProblem(data, file, setup string, noise float64, n int, kind experiments.ModelKind, sc experiments.Scale, seed int64) (*experiments.Problem, error) {
	if n < 2 || n > 127 {
		return nil, fmt.Errorf("n=%d out of range [2,127]", n)
	}
	switch strings.ToLower(data) {
	case "csv":
		return csvProblem(file, n, kind, sc, seed)
	case "femnist":
		return experiments.NewFEMNISTProblem(n, kind, sc, seed), nil
	case "adult":
		return experiments.NewAdultProblem(n, kind, sc, seed), nil
	case "synthetic":
		return experiments.NewSyntheticProblem(experiments.SyntheticSetup(setup), n, kind, sc, noise, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", data)
	}
}

func parseAlg(name string, gamma, k int) (shapley.Valuer, error) {
	switch strings.ToLower(name) {
	case "ipss":
		return shapley.NewIPSS(gamma), nil
	case "ipss-rescaled":
		return &shapley.IPSS{Gamma: gamma, RescaleSampledStratum: true}, nil
	case "exact", "mc":
		return shapley.ExactMC{}, nil
	case "perm":
		return shapley.ExactPerm{}, nil
	case "stratified-mc":
		return shapley.NewStratified(shapley.MC, gamma), nil
	case "stratified-cc":
		return shapley.NewStratified(shapley.CC, gamma), nil
	case "kgreedy":
		return &shapley.KGreedy{K: k}, nil
	case "tmc":
		return shapley.NewTMC(gamma), nil
	case "gtb":
		return shapley.NewGTB(gamma), nil
	case "ccshapley":
		return shapley.NewCCShapley(gamma), nil
	case "digfl":
		return shapley.DIGFL{}, nil
	case "or":
		return shapley.OR{}, nil
	case "lambdamr":
		return &shapley.LambdaMR{}, nil
	case "gtg":
		return &shapley.GTGShapley{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// csvProblem partitions a user-supplied CSV into an IID federation with a
// held-out test split.
func csvProblem(file string, n int, kind experiments.ModelKind, sc experiments.Scale, seed int64) (*experiments.Problem, error) {
	if file == "" {
		return nil, fmt.Errorf("-data csv requires -file")
	}
	pool, err := dataset.LoadCSV(file, 0)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	train, test := pool.Split(0.8, rng)
	clients := dataset.PartitionEqualIID(train, n, rng)
	spec := &utility.FLSpec{
		Factory: csvFactory(kind, pool.Dim(), pool.NumClasses, sc),
		Clients: clients,
		Test:    test,
		Config:  fl.Config{Rounds: sc.Rounds, LocalEpochs: sc.LocalEpochs, LR: 0.05, Seed: seed, WeightBySize: true},
		Metric:  model.Accuracy,
	}
	return &experiments.Problem{
		Name: fmt.Sprintf("csv:%s/n=%d/%s", file, n, kind),
		N:    n,
		Spec: spec,
	}, nil
}

func csvFactory(kind experiments.ModelKind, dim, classes int, sc experiments.Scale) model.Factory {
	switch kind {
	case experiments.MLP:
		return func(seed int64) model.Model { return model.NewMLP(dim, sc.Hidden, classes, seed) }
	case experiments.LogReg:
		return func(seed int64) model.Model { return model.NewLogReg(dim, classes, seed) }
	case experiments.XGB:
		cfg := model.DefaultXGBConfig()
		cfg.Rounds = sc.XGBRounds
		return func(seed int64) model.Model { return model.NewXGB(classes, cfg, seed) }
	default:
		// CSV data carries no image shape; CNN is not meaningful here.
		return func(seed int64) model.Model { return model.NewMLP(dim, sc.Hidden, classes, seed) }
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedval:", err)
	os.Exit(1)
}
