// Command fedvald is the valuation job daemon: it serves the fedshap
// valuation service over HTTP, executing jobs on a bounded worker pool with
// a persistent utility cache so resubmitted and follow-up jobs reuse every
// coalition already trained.
//
// Usage:
//
//	fedvald -addr 127.0.0.1:8787 -cache-dir fedval-cache -workers 2
//
// With -journal set (the default), the daemon keeps a durable job log
// beside the utility cache: on restart, completed jobs reload their
// reports and interrupted jobs are requeued, starting warm from the
// cache so already-trained coalitions cost nothing. -job-ttl expires
// finished jobs after a retention window. See OPERATIONS.md at the repo
// root for the full runbook.
//
// With -worker-addr set, the daemon also accepts a fleet of remote
// evaluation workers (cmd/fedvalworker) and fans each job's coalition
// evaluations out across them; jobs evaluate in-process while no workers
// are attached. The coordinator schedules adaptively — workers are picked
// by observed evaluation latency, stragglers are speculatively
// re-dispatched near job end (-speculate), and newly attached workers are
// warm-started with the daemon's cached utilities. The worker listener is
// unauthenticated — anything that can reach it can register and return
// utilities — so bind it to a trusted network only:
//
//	fedvald -addr 127.0.0.1:8787 -worker-addr 10.0.0.5:8788
//
// GET /metrics exposes queue depth, cache hit ratio, journal size and the
// fleet's per-worker scheduler state for dashboards and alerting — as JSON
// by default, or Prometheus text exposition with Accept: text/plain (or
// ?format=prometheus). -pprof starts a separate diagnostics listener with
// /debug/pprof/ and the same Prometheus /metrics; -log-level and
// -log-format configure structured job-lifecycle logs on stderr. See the
// Monitoring section of OPERATIONS.md.
//
// Submit and track jobs with `fedval -server http://127.0.0.1:8787 ...` or
// plain HTTP:
//
//	curl -X POST localhost:8787/v1/jobs -d '{"data":"femnist","model":"mlp","n":6,"algorithm":"ipss"}'
//	curl localhost:8787/v1/jobs/<id>
//	curl -X DELETE localhost:8787/v1/jobs/<id>
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fedshap/internal/evalnet"
	"fedshap/internal/obs"
	"fedshap/internal/resilience"
	"fedshap/internal/valserve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8787", "listen address")
		workers      = flag.Int("workers", 2, "concurrent valuation jobs")
		evalWorkers  = flag.Int("eval-workers", 0, "concurrent coalition evaluations per job (0 = GOMAXPROCS)")
		trainWorkers = flag.Int("train-workers", 0, "concurrent per-client local trainings inside each FL round (<= 1 trains serially; results are bit-identical at any value)")
		queueCap     = flag.Int("queue", 64, "pending-job queue capacity")
		cacheDir     = flag.String("cache-dir", "fedval-cache", "persistent utility cache directory (empty disables persistence)")
		journal      = flag.String("journal", "fedval-jobs.jsonl", "durable job journal file: restart recovery replays it (empty disables durability)")
		jobTTL       = flag.Duration("job-ttl", 0, "expire finished jobs this long after completion, e.g. 24h (0 keeps them forever)")
		workerAddr   = flag.String("worker-addr", "", "listen address for remote evaluation workers (fedvalworker); empty disables the fleet")
		speculate    = flag.Bool("speculate", true, "speculatively re-dispatch stragglers' in-flight coalitions to idle workers near job end (first result wins; values and budgets unchanged)")
		taskDeadline = flag.Duration("task-deadline", 0, "requeue a fleet evaluation unanswered this long, independent of the straggler scan — rescues tasks on stalled workers whose connection stays open (0 disables)")
		admitMark    = flag.Float64("admit-watermark", 0, "fraction of -queue at which submissions are rejected (429), keeping headroom for recovery requeues; 0 or 1 admits to full capacity")
		compactEvery = flag.Duration("compact-every", 0, "background store+journal compaction interval, e.g. 1h (0 compacts only at startup and shutdown; requires exclusive ownership of the cache directory)")
		sseHeartbeat = flag.Duration("sse-heartbeat", 15*time.Second, "idle heartbeat interval on SSE event streams so proxies keep them open (negative disables)")
		pprofAddr    = flag.String("pprof", "", "diagnostics listener address serving /debug/pprof/ and Prometheus /metrics, kept off the API port (empty disables)")
		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn or error (debug includes per-evaluation job progress)")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logLevel, *logFormat)

	var coord *evalnet.Coordinator
	if *workerAddr != "" {
		wln, err := net.Listen("tcp", *workerAddr)
		if err != nil {
			fatal(err)
		}
		coord = evalnet.NewCoordinatorWith(evalnet.SchedulerConfig{
			DisableSpeculation: !*speculate,
			TaskDeadline:       *taskDeadline,
			Logger:             logger,
		})
		go func() { _ = coord.Serve(wln) }()
		fmt.Fprintf(os.Stderr, "fedvald: accepting evaluation workers on %s\n", wln.Addr())
	}

	// FEDVALD_FAULT_FILE arms the persistence fault switch: while a file
	// exists at the named path, every journal and store write fails, so
	// chaos tooling (and operators rehearsing the runbook) can force
	// degraded, memory-only operation without actually filling a disk.
	var fault *resilience.Hook
	if path := os.Getenv("FEDVALD_FAULT_FILE"); path != "" {
		fault = resilience.FileHook(path)
		fmt.Fprintf(os.Stderr, "fedvald: persistence fault switch armed on %s\n", path)
	}

	mgr, err := valserve.NewManager(valserve.Config{
		Workers:        *workers,
		EvalWorkers:    *evalWorkers,
		TrainWorkers:   *trainWorkers,
		QueueCap:       *queueCap,
		AdmitWatermark: *admitMark,
		CacheDir:       *cacheDir,
		JournalPath:    *journal,
		JobTTL:         *jobTTL,
		CompactEvery:   *compactEvery,
		SSEHeartbeat:   *sseHeartbeat,
		Coordinator:    coord,
		Fault:          fault,
		Logger:         logger,
	})
	if err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		dbg, err := obs.ServeDebug(*pprofAddr, mgr.Registry())
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "fedvald: diagnostics on http://%s/debug/pprof/\n", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: valserve.NewHandler(mgr)}
	fmt.Fprintf(os.Stderr, "fedvald: listening on http://%s (cache: %s, journal: %s)\n",
		ln.Addr(), cacheDesc(*cacheDir), cacheDesc(*journal))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "fedvald: shutting down")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if err := mgr.Close(); err != nil {
		fatal(err)
	}
	if coord != nil {
		_ = coord.Close()
	}
}

func cacheDesc(dir string) string {
	if dir == "" {
		return "disabled"
	}
	return dir
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedvald:", err)
	os.Exit(1)
}
