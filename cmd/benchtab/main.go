// Command benchtab regenerates the paper's evaluation tables (Table IV on
// the FEMNIST-like benchmark and Table V on the Adult-like benchmark) at a
// chosen substrate scale, printing the same rows the paper reports: per
// model family and client count, the running time and ℓ2 approximation
// error of all ten compared algorithms.
//
// Usage:
//
//	benchtab            # both tables, small scale
//	benchtab -table 4   # Table IV only
//	benchtab -table 5 -scale tiny -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"fedshap/internal/experiments"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate: 4 | 5 (0 = both)")
		scaleName = flag.String("scale", "small", "substrate scale: tiny | small")
		seed      = flag.Int64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		ns        = flag.String("n", "", "comma-separated client counts (default 3,6,10)")
	)
	flag.Parse()

	sc := experiments.Small()
	if *scaleName == "tiny" {
		sc = experiments.Tiny()
	}
	cfg := experiments.DefaultTableConfig(sc, *seed)
	if *ns != "" {
		parsed, err := parseInts(*ns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		cfg.Ns = parsed
	}

	emit := func(r *experiments.Report) {
		if *csv {
			r.RenderCSV(os.Stdout)
		} else {
			r.Render(os.Stdout)
		}
	}

	if *table == 0 || *table == 4 {
		emit(experiments.TableIV(cfg))
	}
	if *table == 0 || *table == 5 {
		vcfg := cfg
		vcfg.Models = []experiments.ModelKind{experiments.MLP, experiments.XGB}
		emit(experiments.TableV(vcfg))
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitComma(s) {
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
