// Command fedvalworker is a remote coalition-evaluation worker: it dials a
// fedvald coordinator (fedvald -worker-addr), registers its capacity, and
// serves federated-training evaluations for the jobs the daemon fans out.
// Datasets and training are rebuilt deterministically from each job's spec,
// so a fleet of workers produces bit-identical values to in-process
// evaluation — only faster. On its first task of a job the worker also
// receives the coordinator's cached utilities for that job (warm-start),
// so coalitions the daemon already knows are answered from cache instead
// of retrained.
//
// Usage:
//
//	fedvalworker -coordinator 10.0.0.5:8788 -capacity 4 -name rack1-a
//
// The worker reconnects when the coordinator restarts, backing off with
// jittered exponential delays capped at -retry so a restarted or
// quarantining coordinator is not hammered by a thundering herd of
// reconnects; a connection that actually served work resets the backoff.
// It exits cleanly on SIGINT/SIGTERM. -pprof starts a diagnostics
// listener with /debug/pprof/ and a Prometheus /metrics exposing the
// worker's evaluation counts (by outcome) and latency histogram;
// -log-level and -log-format configure structured connection/spec logs
// on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"fedshap/internal/evalnet"
	"fedshap/internal/obs"
	"fedshap/internal/resilience"
	"fedshap/internal/valserve"
)

func main() {
	var (
		coordinator  = flag.String("coordinator", "127.0.0.1:8788", "coordinator worker-listener address (fedvald -worker-addr)")
		capacity     = flag.Int("capacity", 0, "concurrent coalition evaluations (0 = GOMAXPROCS)")
		trainWorkers = flag.Int("train-workers", 0, "concurrent per-client local trainings inside each FL round of one evaluation (<= 1 trains serially; pair -capacity 1 with -train-workers = cores for few-coalition jobs)")
		name         = flag.String("name", "", "worker name in the fleet listing (default: hostname)")
		retry        = flag.Duration("retry", 2*time.Second, "reconnect backoff cap after a lost coordinator: delays grow exponentially with full jitter from 100ms up to this")
		warm         = flag.Bool("warm", true, "apply coordinator-shipped warm-start utilities instead of retraining them (disable only for debugging)")
		pprofAddr    = flag.String("pprof", "", "diagnostics listener address serving /debug/pprof/ and Prometheus /metrics (empty disables)")
		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()

	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = host
	}
	cap := *capacity
	if cap <= 0 {
		cap = runtime.GOMAXPROCS(0)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tel := valserve.NewWorkerTelemetry()
	if *pprofAddr != "" {
		dbg, err := obs.ServeDebug(*pprofAddr, tel.Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedvalworker:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "fedvalworker: diagnostics on http://%s/debug/pprof/\n", dbg.Addr())
	}

	logger := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	w := &evalnet.Worker{
		Name:             *name,
		Capacity:         cap,
		Build:            valserve.WorkerEvaluatorWith(*trainWorkers),
		DisableWarmStart: !*warm,
		Observe:          tel.Observe,
		Logger:           logger,
	}
	fmt.Fprintf(os.Stderr, "fedvalworker: %s (capacity %d) dialling %s\n", *name, cap, *coordinator)

	// Jittered exponential backoff between reconnects: a fleet of workers
	// losing the same coordinator (restart, deploy) must not re-dial in
	// lockstep, and a worker refused by flap quarantine must not spin on
	// the handshake. A connection that lived long enough to have served
	// work resets the schedule — the next loss is a fresh incident.
	backoff := resilience.Policy{Initial: 100 * time.Millisecond, Max: *retry}
	attempt := 0
	for {
		start := time.Now()
		err := w.Dial(ctx, *coordinator)
		if ctx.Err() != nil {
			logger.Info("shutting down")
			return
		}
		if time.Since(start) > 30*time.Second {
			attempt = 0
		}
		delay := backoff.Delay(attempt)
		attempt++
		logger.Warn("coordinator connection lost; reconnecting",
			"error", err, "attempt", attempt, "backoff", delay.Round(time.Millisecond))
		select {
		case <-ctx.Done():
			logger.Info("shutting down")
			return
		case <-time.After(delay):
		}
	}
}
