// Command gendemo emits a small synthetic CSV dataset, for trying the
// fedval -data csv path without any external data.
package main

import (
	"flag"
	"fmt"
	"os"

	"fedshap/internal/dataset"
)

func main() {
	var (
		out     = flag.String("out", "demo.csv", "output CSV path")
		samples = flag.Int("samples", 400, "sample count")
		seed    = flag.Int64("seed", 3, "random seed")
	)
	flag.Parse()
	d := dataset.SynthImages(dataset.DefaultSynthImages(*samples, *seed))
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendemo:", err)
		os.Exit(1)
	}
	err = d.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendemo:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d samples (%d features, %d classes) to %s\n",
		d.Len(), d.Dim(), d.NumClasses, *out)
}
