// Command benchfig regenerates the paper's evaluation figures as data
// series: Fig. 1(b) (time-vs-error scatter), Fig. 4 (key combinations),
// Fig. 6 (synthetic setups), Fig. 7 (error vs γ), Fig. 8 (Pareto curves),
// Fig. 9 (scalability with property proxies) and Fig. 10 (MC vs CC
// variance), plus the IPSS design-choice ablations.
//
// Usage:
//
//	benchfig -fig 1b
//	benchfig -fig 4 -scale tiny
//	benchfig -fig all -csv > series.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"fedshap/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure: 1b | 3 | 4 | 6 | 6noise | 7 | 8 | 9 | 10 | ablations | lemma1 | thm3 | all")
		scaleName = flag.String("scale", "small", "substrate scale: tiny | small")
		seed      = flag.Int64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart     = flag.Bool("chart", false, "also render ASCII charts of the series")
		n         = flag.Int("n", 10, "client count for single-n figures")
	)
	flag.Parse()

	sc := experiments.Small()
	if *scaleName == "tiny" {
		sc = experiments.Tiny()
	}
	cfg := experiments.DefaultFigConfig(sc, *seed)
	cfg.N = *n

	emit := func(r *experiments.Report) {
		if *csv {
			r.RenderCSV(os.Stdout)
		} else {
			r.Render(os.Stdout)
		}
	}

	plot := func(r *experiments.Report, groupCol, xCol, yCol int, xl, yl string, logY bool) {
		if !*chart || *csv {
			return
		}
		c := experiments.ChartFromRows(r.Title, r.Rows, groupCol, xCol, yCol, xl, yl, logY)
		c.Render(os.Stdout)
	}

	runs := map[string]func(){
		"1b": func() { emit(experiments.Fig1b(cfg)) },
		"4": func() {
			r := experiments.Fig4(cfg)
			emit(r)
			plot(r, 2, 0, 1, "K", "rel error", false) // group by evals col? use K on x
		},
		"6":      func() { emit(experiments.Fig6(cfg)) },
		"6noise": func() { emit(experiments.Fig6Noise(cfg, nil)) },
		"7": func() {
			r := experiments.Fig7(cfg, nil)
			emit(r)
			plot(r, 2, 1, 3, "γ", "mean error", true)
		},
		"8": func() {
			r := experiments.Fig8(cfg, nil, nil)
			emit(r)
			plot(r, 3, 4, 5, "time (s)", "mean error", true)
		},
		"9": func() {
			r := experiments.Fig9(cfg, nil)
			emit(r)
			plot(r, 2, 0, 3, "n", "time (s)", false)
		},
		"10":        func() { emit(experiments.Fig10(cfg, nil, nil)) },
		"ablations": func() { emit(experiments.Ablations(cfg)) },
		"lemma1":    func() { emit(experiments.LemmaOne(experiments.DefaultLinRegProblem(*seed), 10)) },
		"thm3":      func() { emit(experiments.TheoremThree(experiments.DefaultLinRegProblem(*seed), 5)) },
		"3": func() {
			p := experiments.NewFEMNISTProblem(cfg.N, experiments.MLP, sc, *seed)
			emit(experiments.MarginalCurve(p, *seed))
		},
	}
	if *fig == "all" {
		for _, key := range []string{"1b", "3", "4", "6", "6noise", "7", "8", "9", "10", "ablations", "lemma1", "thm3"} {
			runs[key]()
		}
		return
	}
	run, ok := runs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", *fig)
		os.Exit(1)
	}
	run()
}
