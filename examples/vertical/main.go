// Command vertical demonstrates feature-provider valuation in vertical
// federated learning: a bank, a telecom and a retailer hold different
// feature columns about the same customers; the coordinator holds default
// labels. Shapley values over feature blocks price each provider's
// columns — the bank's (which carry most of the signal here) should
// dominate.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedshap"
)

func main() {
	const (
		samples = 800
		perProv = 4 // feature columns per provider
	)
	rng := rand.New(rand.NewSource(11))

	// Build an aligned tabular dataset: 12 columns across 3 providers.
	dim := 3 * perProv
	features := make([][]float64, samples)
	labels := make([]int, samples)
	for i := range features {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		// Bank columns (0-3) drive default risk; telecom column 4 helps a
		// little; retail columns are noise.
		z := 1.6*row[0] - 1.1*row[2] + 0.4*row[4] + 0.3*rng.NormFloat64()
		if z > 0 {
			labels[i] = 1
		}
		features[i] = row
	}
	pool, err := fedshap.NewDataset("credit", features, labels, 2)
	if err != nil {
		log.Fatal(err)
	}
	train, test := fedshap.SplitTrainTest(pool, 0.75, 13)

	blocks := []fedshap.FeatureBlock{
		{Name: "bank", Start: 0, Width: perProv},
		{Name: "telecom", Start: perProv, Width: perProv},
		{Name: "retail", Start: 2 * perProv, Width: perProv},
	}
	fed, err := fedshap.NewVerticalFederation(train, test, blocks,
		fedshap.WithVerticalEpochs(4), fedshap.WithVerticalSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	exact, err := fed.Value(fedshap.ExactShapley(), 1)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := fed.Value(fedshap.IPSS(5), 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("feature-provider valuation (vertical FL)")
	fmt.Printf("%-10s %12s %12s\n", "provider", "exact SV", "IPSS(γ=5)")
	for i, name := range exact.Names {
		fmt.Printf("%-10s %12.4f %12.4f\n", name, exact.Values[i], approx.Values[i])
	}
	fmt.Printf("\nexact: %d coalition trainings; IPSS: %d\n",
		exact.Evaluations, approx.Evaluations)
}
