// Command hospitals reproduces the paper's Fig. 1(a) motivation: three
// hospitals jointly train a diagnosis model and need to know what each
// hospital's dataset is worth before agreeing to collaborate. Hospital A
// holds a large balanced dataset, hospital B a small specialised one, and
// hospital C a mislabelled (poor-quality) one — the valuation should expose
// the difference.
package main

import (
	"fmt"
	"log"

	"fedshap"
)

func main() {
	// One pooled "disease image" corpus split into three very different
	// hospital datasets.
	pool := fedshap.SyntheticImages(900, 7)
	train, test := fedshap.SplitTrainTest(pool, 0.7, 8)
	parts := fedshap.PartitionBySize(train, 3, 9) // sizes 1:2:3

	hospitalA := parts[2] // largest, clean
	hospitalB := parts[1] // medium, clean
	hospitalC := parts[0] // smallest — and we corrupt 40% of its labels
	flipped := fedshap.CorruptLabels(hospitalC, 0.4, 10)

	fed, err := fedshap.NewFederation(
		fedshap.WithClients(
			fedshap.Client{Name: "hospital-A", Data: hospitalA},
			fedshap.Client{Name: "hospital-B", Data: hospitalB},
			fedshap.Client{Name: "hospital-C", Data: hospitalC},
		),
		fedshap.WithTestSet(test),
		fedshap.WithMLP(16),
		fedshap.WithFLRounds(3),
		fedshap.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hospital-C has %d mislabelled records\n\n", flipped)

	// The toy scale permits the exact computation (7 coalitions + ∅, as in
	// the paper's Fig. 1(a) walkthrough).
	exact, err := fed.ExactValues(1)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := fed.Value(fedshap.IPSS(fed.RecommendedGamma()), 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s  %10s  %10s\n", "hospital", "exact SV", "IPSS")
	for i, name := range exact.Names {
		fmt.Printf("%-12s  %10.4f  %10.4f\n", name, exact.Values[i], approx.Values[i])
	}

	// A fair payment split proportional to value.
	total := exact.Values.Sum()
	fmt.Printf("\npayment split for a 1000-credit reward:\n")
	for i, name := range exact.Names {
		share := exact.Values[i] / total
		if share < 0 {
			share = 0
		}
		fmt.Printf("  %-12s %6.1f credits\n", name, 1000*share)
	}
}
