// Command marketplace demonstrates valuation at cross-silo scale (the
// paper's Fig. 9 regime): twenty data providers, among them a free rider
// with no data and a provider that simply duplicated another's dataset.
// Exact Shapley needs 2²⁰ ≈ 10⁶ model trainings — infeasible — so the
// marketplace uses IPSS with the γ = ⌈n·ln n⌉ policy and verifies the two
// fairness properties the paper uses as error proxies: the free rider is
// priced at ~0, and the duplicates are priced equally.
package main

import (
	"fmt"
	"log"
	"math"

	"fedshap"
)

func main() {
	const n = 20
	clients, test := fedshap.FederatedWriters(n, 40, 300, 77)

	// Client 19 is a free rider; client 18 duplicated client 0's data.
	rider := fedshap.EmptyDataset("free-rider", clients[0].Dim(), clients[0].NumClasses)
	clients[19] = rider
	clients[18] = clients[0].Clone()

	fed, err := fedshap.NewFederation(
		fedshap.WithDatasets(clients...),
		fedshap.WithTestSet(test),
		fedshap.WithLogReg(),
		fedshap.WithFLRounds(2),
		fedshap.WithSeed(41),
	)
	if err != nil {
		log.Fatal(err)
	}

	gamma := fed.RecommendedGamma() // ⌈20·ln 20⌉ = 60
	rep, err := fed.Value(fedshap.IPSS(gamma), 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("marketplace valuation of %d providers (γ=%d, %d evaluations, %.1fs)\n\n",
		n, gamma, rep.Evaluations, rep.Seconds)

	total := 0.0
	for _, v := range rep.Values {
		if v > 0 {
			total += v
		}
	}
	fmt.Printf("%-10s %10s %14s\n", "client", "value", "payout (10k)")
	for i, v := range rep.Values {
		payout := 0.0
		if v > 0 {
			payout = 10000 * v / total
		}
		tag := ""
		switch i {
		case 19:
			tag = "  <- free rider"
		case 18:
			tag = "  <- duplicate of client-0"
		}
		fmt.Printf("%-10s %10.4f %14.0f%s\n", rep.Names[i], v, payout, tag)
	}

	fmt.Printf("\nfairness checks:\n")
	fmt.Printf("  free-rider value:        %+.4f (want ≈ 0)\n", rep.Values[19])
	fmt.Printf("  duplicate gap |v0-v18|:  %.4f (want ≈ 0)\n", math.Abs(rep.Values[0]-rep.Values[18]))
}
