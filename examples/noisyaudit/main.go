// Command noisyaudit shows data valuation as a data-quality audit (the
// paper's setup (d), same-size-noisy-label): ten clients hold equally sized
// IID partitions, but some clients' labels are progressively corrupted.
// Shapley values — here approximated by IPSS at budget γ=32, since 2¹⁰
// exact evaluations would be expensive — rank clean clients above noisy
// ones, exposing the corruption without inspecting any raw data.
package main

import (
	"fmt"
	"log"
	"sort"

	"fedshap"
)

func main() {
	pool := fedshap.SyntheticImages(1300, 21)
	train, test := fedshap.SplitTrainTest(pool, 0.77, 22)
	clients := fedshap.PartitionIID(train, 10, 23)

	// Clients 5..9 get increasing label noise: 10%, 20%, 30%, 40%, 50%.
	noise := map[int]float64{5: 0.1, 6: 0.2, 7: 0.3, 8: 0.4, 9: 0.5}
	for i, frac := range noise {
		fedshap.CorruptLabels(clients[i], frac, int64(100+i))
	}

	fed, err := fedshap.NewFederation(
		fedshap.WithDatasets(clients...),
		fedshap.WithTestSet(test),
		fedshap.WithLogReg(),
		fedshap.WithFLRounds(3),
		fedshap.WithSeed(31),
	)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := fed.Value(fedshap.IPSS(fed.RecommendedGamma()), 3)
	if err != nil {
		log.Fatal(err)
	}

	type ranked struct {
		idx   int
		value float64
	}
	order := make([]ranked, len(rep.Values))
	for i, v := range rep.Values {
		order[i] = ranked{i, v}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].value > order[b].value })

	fmt.Printf("data-quality audit via IPSS (γ=%d, %d evaluations, %.2fs)\n\n",
		fed.RecommendedGamma(), rep.Evaluations, rep.Seconds)
	fmt.Printf("%-4s %-10s %10s %12s\n", "rank", "client", "value", "label noise")
	for r, e := range order {
		fmt.Printf("%-4d %-10s %10.4f %11.0f%%\n",
			r+1, rep.Names[e.idx], e.value, noise[e.idx]*100)
	}

	// Quality signal: mean value of clean vs noisy clients.
	var clean, noisy float64
	for i, v := range rep.Values {
		if _, bad := noise[i]; bad {
			noisy += v / float64(len(noise))
		} else {
			clean += v / float64(len(rep.Values)-len(noise))
		}
	}
	fmt.Printf("\nmean value: clean clients %.4f, noisy clients %.4f\n", clean, noisy)
	if clean > noisy {
		fmt.Println("=> valuation correctly prices noisy data below clean data")
	}
}
