// Command quickstart is the smallest end-to-end use of the fedshap public
// API: build a four-writer federation on synthetic non-IID image data,
// compute exact Shapley data values, and compare them with the IPSS
// approximation at the paper's recommended budget.
package main

import (
	"fmt"
	"log"

	"fedshap"
)

func main() {
	// Four data providers with naturally non-IID (per-writer style) data,
	// plus a shared test set.
	clients, test := fedshap.FederatedWriters(4, 60, 200, 42)

	fed, err := fedshap.NewFederation(
		fedshap.WithDatasets(clients...),
		fedshap.WithTestSet(test),
		fedshap.WithMLP(16),
		fedshap.WithFLRounds(3),
		fedshap.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	exact, err := fed.ExactValues(1)
	if err != nil {
		log.Fatal(err)
	}
	gamma := fed.RecommendedGamma()
	approx, err := fed.Value(fedshap.IPSS(gamma), 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federation of %d clients, IPSS budget γ=%d\n\n", fed.N(), gamma)
	fmt.Printf("%-10s  %12s  %12s\n", "client", "exact SV", "IPSS")
	for i, name := range exact.Names {
		fmt.Printf("%-10s  %12.4f  %12.4f\n", name, exact.Values[i], approx.Values[i])
	}
	fmt.Printf("\nexact:  %d coalition evaluations in %.2fs\n", exact.Evaluations, exact.Seconds)
	fmt.Printf("IPSS:   %d coalition evaluations in %.2fs\n", approx.Evaluations, approx.Seconds)
}
