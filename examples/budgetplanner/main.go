// Command budgetplanner shows the theory-driven workflow the paper's
// Theorem 3 enables: instead of guessing a sampling budget, a practitioner
// states a target relative error and derives the IPSS budget from the
// error bound, then verifies the achieved accuracy against the exact
// Shapley values on a small federation.
package main

import (
	"fmt"
	"log"

	"fedshap"
)

func main() {
	const (
		n          = 8
		perClient  = 80
		featureDim = 100 // 10×10 synthetic images
	)
	clients, test := fedshap.FederatedWriters(n, perClient, 240, 99)
	fed, err := fedshap.NewFederation(
		fedshap.WithDatasets(clients...),
		fedshap.WithTestSet(test),
		fedshap.WithLogReg(),
		fedshap.WithFLRounds(2),
		fedshap.WithSeed(5),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("target error -> planned IPSS budget (Theorem 3 inversion)")
	for _, eps := range []float64{0.10, 0.01, 0.001} {
		gamma := fedshap.PlanBudget(n, perClient, featureDim, eps)
		fmt.Printf("  eps = %5.3f  ->  γ = %3d of %d coalitions\n", eps, gamma, 1<<n)
	}

	// Validate the middle setting against ground truth.
	gamma := fedshap.PlanBudget(n, perClient, featureDim, 0.01)
	exact, err := fed.ExactValues(1)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := fed.Value(fedshap.IPSS(gamma), 2)
	if err != nil {
		log.Fatal(err)
	}

	var num, den float64
	for i := range exact.Values {
		d := approx.Values[i] - exact.Values[i]
		num += d * d
		den += exact.Values[i] * exact.Values[i]
	}
	fmt.Printf("\nplanned γ=%d: achieved l2 error %.4f (%d evaluations vs %d exact, %.1fx cheaper)\n",
		gamma, sqrt(num/den), approx.Evaluations, exact.Evaluations,
		float64(exact.Evaluations)/float64(approx.Evaluations))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
