package fedshap

import (
	"errors"
	"math/rand"

	"fedshap/internal/dataset"
)

// Dataset construction helpers: build from raw slices, or use the synthetic
// generators mirroring the paper's benchmark corpora.

// NewDataset builds a dataset from raw features and labels. Labels must lie
// in [0, numClasses).
func NewDataset(name string, features [][]float64, labels []int, numClasses int) (*Dataset, error) {
	if len(features) != len(labels) {
		return nil, errors.New("fedshap: features and labels length mismatch")
	}
	if len(features) == 0 {
		return nil, errors.New("fedshap: empty dataset; use EmptyDataset for free riders")
	}
	dim := len(features[0])
	d := dataset.New(name, len(features), dim, numClasses)
	for i, row := range features {
		if len(row) != dim {
			return nil, errors.New("fedshap: ragged feature rows")
		}
		copy(d.X.Row(i), row)
		if labels[i] < 0 || labels[i] >= numClasses {
			return nil, errors.New("fedshap: label out of range")
		}
		d.Y[i] = labels[i]
	}
	return d, nil
}

// EmptyDataset returns a zero-sample dataset with the given schema,
// modelling a free-riding client.
func EmptyDataset(name string, dim, numClasses int) *Dataset {
	return dataset.New(name, 0, dim, numClasses)
}

// SyntheticImages generates an MNIST-like image classification dataset
// (10 classes of 10×10 images by default) — the raw material of the
// paper's synthetic experiments.
func SyntheticImages(samples int, seed int64) *Dataset {
	return dataset.SynthImages(dataset.DefaultSynthImages(samples, seed))
}

// FederatedWriters generates a FEMNIST-like federation: writers share class
// structure but differ in style, giving naturally non-IID client datasets
// plus a shared test set.
func FederatedWriters(writers, samplesPerWriter, testSamples int, seed int64) (clients []*Dataset, test *Dataset) {
	cfg := dataset.DefaultFEMNISTLike(writers, samplesPerWriter, seed)
	if testSamples > 0 {
		cfg.TestSamples = testSamples
	}
	return dataset.FEMNISTLike(cfg)
}

// CensusTabular generates an Adult-like binary tabular dataset with
// occupation codes usable as a partition key.
func CensusTabular(samples int, seed int64) (*Dataset, []int) {
	return dataset.AdultLike(dataset.DefaultAdultLike(samples, seed))
}

// PartitionIID splits a pool into n same-size IID client datasets
// (the paper's setup (a)).
func PartitionIID(pool *Dataset, n int, seed int64) []*Dataset {
	return dataset.PartitionEqualIID(pool, n, rand.New(rand.NewSource(seed)))
}

// PartitionLabelSkew splits a pool into n same-size clients with label
// skew: majorFrac of each client's data comes from its own label group
// (setup (b)).
func PartitionLabelSkew(pool *Dataset, n int, majorFrac float64, seed int64) []*Dataset {
	return dataset.PartitionLabelSkew(pool, n, majorFrac, rand.New(rand.NewSource(seed)))
}

// PartitionBySize splits a pool into n clients with size ratios 1:2:…:n
// (setup (c)).
func PartitionBySize(pool *Dataset, n int, seed int64) []*Dataset {
	return dataset.PartitionBySizeRatio(pool, n, rand.New(rand.NewSource(seed)))
}

// PartitionByGroup splits a pool by an integer key (e.g. occupation),
// assigning whole key groups to clients round-robin.
func PartitionByGroup(pool *Dataset, keys []int, n int) []*Dataset {
	return dataset.PartitionByKey(pool, keys, n)
}

// CorruptLabels flips a fraction of labels uniformly to other classes, in
// place (setup (d)). Returns the number of flipped samples.
func CorruptLabels(d *Dataset, fraction float64, seed int64) int {
	return dataset.AddLabelNoise(d, fraction, rand.New(rand.NewSource(seed)))
}

// CorruptFeatures adds scale·N(0,1) noise to all features, in place
// (setup (e)).
func CorruptFeatures(d *Dataset, scale float64, seed int64) {
	dataset.AddFeatureNoise(d, scale, rand.New(rand.NewSource(seed)))
}

// LoadDatasetCSV reads a dataset from a CSV file: numeric feature columns
// with the integer class label last; a non-numeric header row is skipped.
// numClasses 0 infers the class count from the labels.
func LoadDatasetCSV(path string, numClasses int) (*Dataset, error) {
	return dataset.LoadCSV(path, numClasses)
}

// SaveDataset / LoadDataset persist a dataset in the compact gob format.
func SaveDataset(d *Dataset, path string) error { return d.Save(path) }

// LoadDataset reads a gob dataset written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) { return dataset.Load(path) }

// SplitTrainTest splits a dataset into train and test portions.
func SplitTrainTest(d *Dataset, trainFrac float64, seed int64) (train, test *Dataset) {
	return d.Split(trainFrac, rand.New(rand.NewSource(seed)))
}
