package utility

import (
	"context"
	"sync/atomic"
	"testing"

	"fedshap/internal/combin"
)

func TestPrefetchWarmsCache(t *testing.T) {
	var calls int64
	o := NewOracle(5, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return float64(s.Size())
	})
	var want []combin.Coalition
	combin.SubsetsOfSize(5, 2, func(s combin.Coalition) { want = append(want, s) })
	o.Prefetch(context.Background(), want, 4)
	if got := o.Evals(); got != len(want) {
		t.Errorf("prefetched %d, want %d", got, len(want))
	}
	before := atomic.LoadInt64(&calls)
	for _, s := range want {
		o.U(s)
	}
	if atomic.LoadInt64(&calls) != before {
		t.Errorf("post-prefetch queries re-evaluated")
	}
}

func TestPrefetchDeduplicates(t *testing.T) {
	var calls int64
	o := NewOracle(3, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	s := combin.NewCoalition(0, 1)
	o.Prefetch(context.Background(), []combin.Coalition{s, s, s, combin.Empty, combin.Empty}, 2)
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("calls = %d, want 2 (dedup)", got)
	}
}

func TestPrefetchSkipsCached(t *testing.T) {
	var calls int64
	o := NewOracle(3, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	o.U(combin.Empty)
	o.Prefetch(context.Background(), []combin.Coalition{combin.Empty}, 1)
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("calls = %d, want 1", got)
	}
}

func TestPrefetchStrata(t *testing.T) {
	o := NewOracle(5, func(s combin.Coalition) float64 { return 0 })
	o.PrefetchStrata(context.Background(), 2, 3)
	// 1 + 5 + 10 = 16 coalitions of size ≤ 2.
	if got := o.Evals(); got != 16 {
		t.Errorf("evals = %d, want 16", got)
	}
}

func TestPrefetchEmptyInput(t *testing.T) {
	o := NewOracle(3, func(s combin.Coalition) float64 { return 0 })
	o.Prefetch(context.Background(), nil, 4) // must not hang or panic
	if o.Evals() != 0 {
		t.Errorf("evals = %d", o.Evals())
	}
}
