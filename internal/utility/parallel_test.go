package utility

import (
	"context"
	"sync/atomic"
	"testing"

	"fedshap/internal/combin"
)

func TestPrefetchWarmsCache(t *testing.T) {
	var calls int64
	o := NewOracle(5, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return float64(s.Size())
	})
	var want []combin.Coalition
	combin.SubsetsOfSize(5, 2, func(s combin.Coalition) { want = append(want, s) })
	o.Prefetch(context.Background(), want, 4)
	if got := o.Evals(); got != len(want) {
		t.Errorf("prefetched %d, want %d", got, len(want))
	}
	before := atomic.LoadInt64(&calls)
	for _, s := range want {
		o.U(s)
	}
	if atomic.LoadInt64(&calls) != before {
		t.Errorf("post-prefetch queries re-evaluated")
	}
}

func TestPrefetchDeduplicates(t *testing.T) {
	var calls int64
	o := NewOracle(3, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	s := combin.NewCoalition(0, 1)
	o.Prefetch(context.Background(), []combin.Coalition{s, s, s, combin.Empty, combin.Empty}, 2)
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Errorf("calls = %d, want 2 (dedup)", got)
	}
}

func TestPrefetchSkipsCached(t *testing.T) {
	var calls int64
	o := NewOracle(3, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return 0
	})
	o.U(combin.Empty)
	o.Prefetch(context.Background(), []combin.Coalition{combin.Empty}, 1)
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("calls = %d, want 1", got)
	}
}

func TestPrefetchStrata(t *testing.T) {
	o := NewOracle(5, func(s combin.Coalition) float64 { return 0 })
	o.PrefetchStrata(context.Background(), 2, 3)
	// 1 + 5 + 10 = 16 coalitions of size ≤ 2.
	if got := o.Evals(); got != 16 {
		t.Errorf("evals = %d, want 16", got)
	}
}

func TestPrefetchEmptyInput(t *testing.T) {
	o := NewOracle(3, func(s combin.Coalition) float64 { return 0 })
	o.Prefetch(context.Background(), nil, 4) // must not hang or panic
	if o.Evals() != 0 {
		t.Errorf("evals = %d", o.Evals())
	}
}

func TestPrefetchStreamPipelines(t *testing.T) {
	// The pool must start evaluating while the producer is still emitting:
	// feed coalitions through an unbuffered channel from a slow producer
	// and check every one lands in the cache exactly once.
	var calls int64
	o := NewOracle(6, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return float64(s.Size())
	})
	var want []combin.Coalition
	combin.SubsetsOfSize(6, 2, func(s combin.Coalition) { want = append(want, s) })
	ch := make(chan combin.Coalition)
	go func() {
		defer close(ch)
		for _, s := range want {
			ch <- s
			ch <- s // duplicates must not double-evaluate
		}
	}()
	if err := o.PrefetchStream(context.Background(), ch, 3); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&calls); got != int64(len(want)) {
		t.Errorf("calls = %d, want %d", got, len(want))
	}
	if got := o.Evals(); got != len(want) {
		t.Errorf("evals = %d, want %d", got, len(want))
	}
}

func TestPrefetchStreamCancelDrains(t *testing.T) {
	o := NewOracle(6, func(s combin.Coalition) float64 { return 0 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch := make(chan combin.Coalition)
	go func() {
		defer close(ch)
		combin.SubsetsOfSize(6, 2, func(s combin.Coalition) { ch <- s })
	}()
	if err := o.PrefetchStream(ctx, ch, 2); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if o.Evals() != 0 {
		t.Errorf("cancelled stream evaluated %d coalitions", o.Evals())
	}
}

func TestEvalBatchReturnsAlignedValues(t *testing.T) {
	var calls int64
	o := NewOracle(5, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return float64(s.Size())
	})
	in := []combin.Coalition{
		combin.NewCoalition(0, 1),
		combin.Empty,
		combin.NewCoalition(0, 1), // duplicate: same value, one evaluation
		combin.NewCoalition(2, 3, 4),
	}
	got, err := o.EvalBatch(context.Background(), in, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (dedup)", calls)
	}
}

func TestEvalBatchCancelled(t *testing.T) {
	o := NewOracle(5, func(s combin.Coalition) float64 { return 0 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.EvalBatch(ctx, []combin.Coalition{combin.Empty}, 2); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
