package utility

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"fedshap/internal/combin"
)

// Parallel evaluation: every entry point below drives the same bounded
// worker pool over the oracle's evaluation function. Coalition trainings
// are embarrassingly parallel — each trains an independent model — so the
// wall-clock of every algorithm scales down by the worker count while the
// budget accounting (distinct evaluations), the OnEval progress hook and
// the write-through persistence seam behave exactly as under serial
// evaluation.
//
//   - PrefetchStream is the pipelined core: it consumes coalitions from a
//     channel as the producer emits them, so evaluation overlaps plan
//     generation.
//   - Prefetch feeds a known list through the stream after deduplicating
//     and dropping already-cached entries.
//   - EvalBatch is Prefetch plus result collection, for callers that want
//     the utilities, not just a warm cache.

// PrefetchStream evaluates coalitions arriving on the channel concurrently
// on a bounded worker pool, caching the results. workers <= 0 selects
// GOMAXPROCS. Already-cached coalitions are skipped, and duplicates within
// the stream are claimed by exactly one worker — a duplicate must never
// race two workers into the same training run, because each evaluation is
// a full federated training. When ctx is cancelled the pool drains the
// channel without issuing fresh evaluations and returns the context error;
// utilities evaluated before the cancellation stay cached. PrefetchStream
// returns once the channel is closed and the in-flight evaluations
// finished.
func (o *Oracle) PrefetchStream(ctx context.Context, coalitions <-chan combin.Coalition, workers int) error {
	if ctx == nil {
		ctx = context.Background() //fedvallint:allow(ctxthread) nil-ctx compat fallback; callers that care pass their own
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu   sync.Mutex
		seen = make(map[combin.Coalition]struct{})
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range coalitions {
				if ctx.Err() != nil {
					continue // drain the channel without evaluating
				}
				mu.Lock()
				_, dup := seen[s]
				if !dup {
					seen[s] = struct{}{}
				}
				mu.Unlock()
				if dup || o.Cached(s) {
					continue
				}
				o.safeU(s)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Prefetch evaluates the given coalitions concurrently on a bounded worker
// pool and caches the results, so that a subsequent single-threaded
// valuation pass (which is where the algorithmic bookkeeping lives) hits a
// warm cache. workers <= 0 selects GOMAXPROCS. Duplicate and
// already-cached coalitions are skipped. When ctx is cancelled the pool
// stops issuing fresh evaluations and Prefetch returns the context error;
// utilities evaluated before the cancellation stay cached.
//
// This mirrors the paper's implementation note: coalition evaluations are
// embarrassingly parallel because each trains an independent model, so the
// wall-clock of every algorithm scales down by the worker count while the
// budget accounting (distinct evaluations) is unchanged.
func (o *Oracle) Prefetch(ctx context.Context, coalitions []combin.Coalition, workers int) error {
	if ctx == nil {
		ctx = context.Background() //fedvallint:allow(ctxthread) nil-ctx compat fallback; callers that care pass their own
	}
	// Deduplicate and drop cached entries up front.
	pending := make([]combin.Coalition, 0, len(coalitions))
	seen := make(map[combin.Coalition]struct{}, len(coalitions))
	for _, s := range coalitions {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		if !o.Cached(s) {
			pending = append(pending, s)
		}
	}
	if len(pending) == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	// The list is already deduplicated, so the pool can claim work with a
	// bare atomic index instead of routing through PrefetchStream's channel
	// and its second claim map — one training per entry is guaranteed by
	// construction, and the fixed-list path stays allocation-lean (it is
	// the inner loop of every warm-up in the service).
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pending) || ctx.Err() != nil {
					return
				}
				o.safeU(pending[i])
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// EvalBatch evaluates the given coalitions concurrently (see Prefetch for
// the pool semantics) and returns their utilities aligned with the input.
// On cancellation it returns the context error and no values.
func (o *Oracle) EvalBatch(ctx context.Context, coalitions []combin.Coalition, workers int) ([]float64, error) {
	if err := o.Prefetch(ctx, coalitions, workers); err != nil {
		return nil, err
	}
	out := make([]float64, len(coalitions))
	for i, s := range coalitions {
		out[i] = o.U(s) // warm: the pool above evaluated every entry
	}
	return out, nil
}

// safeU evaluates one coalition, swallowing the cancellation panic a bound
// oracle context may raise mid-pool; other panics propagate.
func (o *Oracle) safeU(s combin.Coalition) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*CancelError); ok {
				return
			}
			panic(r)
		}
	}()
	o.U(s)
}

// PrefetchStrata warms the cache with every coalition of size ≤ k — the
// exact set IPSS evaluates exhaustively (its "key combinations").
func (o *Oracle) PrefetchStrata(ctx context.Context, k, workers int) error {
	var all []combin.Coalition
	for size := 0; size <= k && size <= o.n; size++ {
		combin.SubsetsOfSize(o.n, size, func(s combin.Coalition) {
			all = append(all, s)
		})
	}
	return o.Prefetch(ctx, all, workers)
}
