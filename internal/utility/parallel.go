package utility

import (
	"context"
	"runtime"
	"sync"

	"fedshap/internal/combin"
)

// Prefetch evaluates the given coalitions concurrently on a bounded worker
// pool and caches the results, so that a subsequent single-threaded
// valuation pass (which is where the algorithmic bookkeeping lives) hits a
// warm cache. workers <= 0 selects GOMAXPROCS. Duplicate and
// already-cached coalitions are skipped. When ctx is cancelled the pool
// stops issuing fresh evaluations and Prefetch returns the context error;
// utilities evaluated before the cancellation stay cached.
//
// This mirrors the paper's implementation note: coalition evaluations are
// embarrassingly parallel because each trains an independent model, so the
// wall-clock of every algorithm scales down by the worker count while the
// budget accounting (distinct evaluations) is unchanged.
func (o *Oracle) Prefetch(ctx context.Context, coalitions []combin.Coalition, workers int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Deduplicate and drop cached entries up front.
	pending := make([]combin.Coalition, 0, len(coalitions))
	seen := make(map[combin.Coalition]struct{}, len(coalitions))
	for _, s := range coalitions {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		if !o.Cached(s) {
			pending = append(pending, s)
		}
	}
	if len(pending) == 0 {
		return ctx.Err()
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	var wg sync.WaitGroup
	work := make(chan combin.Coalition)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				if ctx.Err() != nil {
					continue // drain the channel without evaluating
				}
				o.safeU(s)
			}
		}()
	}
	for _, s := range pending {
		work <- s
	}
	close(work)
	wg.Wait()
	return ctx.Err()
}

// safeU evaluates one coalition, swallowing the cancellation panic a bound
// oracle context may raise mid-pool; other panics propagate.
func (o *Oracle) safeU(s combin.Coalition) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*CancelError); ok {
				return
			}
			panic(r)
		}
	}()
	o.U(s)
}

// PrefetchStrata warms the cache with every coalition of size ≤ k — the
// exact set IPSS evaluates exhaustively (its "key combinations").
func (o *Oracle) PrefetchStrata(ctx context.Context, k, workers int) error {
	var all []combin.Coalition
	for size := 0; size <= k && size <= o.n; size++ {
		combin.SubsetsOfSize(o.n, size, func(s combin.Coalition) {
			all = append(all, s)
		})
	}
	return o.Prefetch(ctx, all, workers)
}
