package utility

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"fedshap/internal/combin"
)

// Benchmarks comparing the sharded coalition cache against the previous
// single-mutex design under a Prefetch-shaped workload: a pool of workers
// racing through a coalition list, each doing a lookup, a (cheap)
// evaluation on miss, and an insert. The sharded cache must not regress
// single-threaded and should scale at GOMAXPROCS workers.

// coalitionCache is the seam both implementations share.
type coalitionCache interface {
	get(s combin.Coalition) (float64, bool)
	putIfAbsent(s combin.Coalition, v float64) bool
}

// mutexCache replicates the pre-sharding Oracle cache: one mutex over one
// map.
type mutexCache struct {
	mu sync.Mutex
	m  map[combin.Coalition]float64
}

func newMutexCache() *mutexCache {
	return &mutexCache{m: make(map[combin.Coalition]float64)}
}

func (c *mutexCache) get(s combin.Coalition) (float64, bool) {
	c.mu.Lock()
	v, ok := c.m[s]
	c.mu.Unlock()
	return v, ok
}

func (c *mutexCache) putIfAbsent(s combin.Coalition, v float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[s]; ok {
		return false
	}
	c.m[s] = v
	return true
}

var _ coalitionCache = (*shardedCache)(nil)

var cacheImpls = []struct {
	name string
	mk   func() coalitionCache
}{
	{"sharded", func() coalitionCache { return newShardedCache() }},
	{"mutex", func() coalitionCache { return newMutexCache() }},
}

// benchCoalitions builds a deterministic working set over 24 players.
func benchCoalitions(n int) []combin.Coalition {
	out := make([]combin.Coalition, n)
	for i := range out {
		out[i] = combin.FromMask(uint64(i) * 2654435761 % (1 << 24))
	}
	return out
}

// prefetchFill runs the Prefetch inner loop over the coalition list on a
// bounded worker pool against the given cache.
func prefetchFill(c coalitionCache, coals []combin.Coalition, workers int) {
	work := make(chan combin.Coalition)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				if _, ok := c.get(s); ok {
					continue
				}
				c.putIfAbsent(s, float64(s.Size()))
			}
		}()
	}
	for _, s := range coals {
		work <- s
	}
	close(work)
	wg.Wait()
}

// benchWorkerCounts returns deduplicated worker counts: single-threaded,
// GOMAXPROCS, and an oversubscribed pool (which exposes lock-handoff costs
// even on small machines).
func benchWorkerCounts() []int {
	counts := []int{1, runtime.GOMAXPROCS(0), 4 * runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	out := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// BenchmarkCacheFill measures a full Prefetch-style fill at increasing
// worker counts.
func BenchmarkCacheFill(b *testing.B) {
	coals := benchCoalitions(4096)
	for _, impl := range cacheImpls {
		for _, workers := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("impl=%s/workers=%d", impl.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					prefetchFill(impl.mk(), coals, workers)
				}
			})
		}
	}
}

// BenchmarkCacheHotRead measures warm-cache lookups — the regime every
// valuation algorithm's sequential bookkeeping pass runs in after a
// prefetch — serially and with all cores hitting the cache at once.
func BenchmarkCacheHotRead(b *testing.B) {
	coals := benchCoalitions(4096)
	for _, impl := range cacheImpls {
		c := impl.mk()
		for _, s := range coals {
			c.putIfAbsent(s, 1)
		}
		b.Run("impl="+impl.name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.get(coals[i%len(coals)])
			}
		})
		b.Run("impl="+impl.name+"/parallel", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					c.get(coals[i%len(coals)])
					i++
				}
			})
		})
	}
}

// BenchmarkOraclePrefetch exercises the real Oracle end to end with a
// trivial evaluation function, so the cache is the dominant cost.
func BenchmarkOraclePrefetch(b *testing.B) {
	var coals []combin.Coalition
	for size := 0; size <= 3; size++ {
		combin.SubsetsOfSize(18, size, func(s combin.Coalition) { coals = append(coals, s) })
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := NewOracle(18, func(s combin.Coalition) float64 { return 0 })
				if err := o.Prefetch(context.Background(), coals, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
