package utility

import (
	"sync"

	"fedshap/internal/combin"
)

// numShards is the shard count of the in-memory coalition cache. A power of
// two well above typical GOMAXPROCS keeps write contention negligible while
// the per-shard maps stay dense.
const numShards = 64

// cacheShard is one lock-striped segment of the coalition cache. Reads take
// the read lock, so concurrent lookups of warm entries never serialise.
type cacheShard struct {
	mu sync.RWMutex
	m  map[combin.Coalition]float64
}

// shardedCache is a concurrent coalition→utility map striped across
// numShards lock-protected segments. Coalition evaluations are issued from
// bounded worker pools (Prefetch, the valuation service), so the cache is
// on the hot path of every worker at once; sharding by coalition hash keeps
// those workers from serialising on a single mutex.
type shardedCache struct {
	shards [numShards]cacheShard
}

func newShardedCache() *shardedCache {
	c := &shardedCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[combin.Coalition]float64)
	}
	return c
}

func (c *shardedCache) shard(s combin.Coalition) *cacheShard {
	return &c.shards[s.Hash()&(numShards-1)]
}

// get returns the cached utility of s, if present.
func (c *shardedCache) get(s combin.Coalition) (float64, bool) {
	sh := c.shard(s)
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	return v, ok
}

// putIfAbsent inserts s→v unless already present, reporting whether the
// insert happened. The first writer wins; utilities are deterministic per
// coalition, so a lost race returns an equal value.
func (c *shardedCache) putIfAbsent(s combin.Coalition, v float64) bool {
	sh := c.shard(s)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[s]; ok {
		return false
	}
	sh.m[s] = v
	return true
}

// len returns the total entry count.
func (c *shardedCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// snapshot copies every entry into a plain map.
func (c *shardedCache) snapshot() map[combin.Coalition]float64 {
	out := make(map[combin.Coalition]float64, c.len())
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		//fedvallint:allow(determinism) copying a map into a map is order-independent
		for k, v := range sh.m {
			out[k] = v
		}
		sh.mu.RUnlock()
	}
	return out
}

// clear drops every entry.
func (c *shardedCache) clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = make(map[combin.Coalition]float64)
		sh.mu.Unlock()
	}
}
