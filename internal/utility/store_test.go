package utility

import (
	"bufio"
	"os"
	"path/filepath"
	"testing"

	"fedshap/internal/combin"
)

func countLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n++
	}
	return n
}

// TestStoreStats checks the metrics export counts only the store's own
// fingerprint files, by metadata alone.
func TestStoreStats(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	empty, err := st.Stats()
	if err != nil || empty.Fingerprints != 0 || empty.Bytes != 0 {
		t.Fatalf("empty store stats = %+v (%v), want zeros", empty, err)
	}
	if err := st.Append("deadbeef", combin.NewCoalition(0), 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("cafebabe", combin.NewCoalition(1), 2); err != nil {
		t.Fatal(err)
	}
	// A foreign .jsonl in the cache dir (like a misplaced journal) is not
	// counted: the store only owns valid fingerprint files.
	if err := os.WriteFile(filepath.Join(dir, "not.a.fingerprint.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprints != 2 || got.Bytes == 0 {
		t.Errorf("stats = %+v, want 2 fingerprints with nonzero bytes", got)
	}
}

// TestStoreCompact writes duplicate and malformed records, compacts, and
// checks the rewrite keeps exactly one (latest) record per coalition while
// the loaded cache is unchanged.
func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const fp = "deadbeef"
	a, b := combin.NewCoalition(0), combin.NewCoalition(0, 1)
	// A superseded record for a, a duplicate for b, and a torn tail.
	for _, rec := range []struct {
		s combin.Coalition
		u float64
	}{{a, 0.1}, {b, 0.5}, {a, 0.7}, {b, 0.5}} {
		if err := st.Append(fp, rec.s, rec.u); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, fp+".jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"lo":3,"u":0.9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	kept, dropped, err := st.Compact(fp)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 || dropped != 3 {
		t.Errorf("Compact = (%d kept, %d dropped), want (2, 3)", kept, dropped)
	}
	if got := countLines(t, path); got != 2 {
		t.Errorf("compacted file has %d lines, want 2", got)
	}
	entries, err := st.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[a] != 0.7 || entries[b] != 0.5 {
		t.Errorf("entries after compact = %v", entries)
	}

	// Idempotent: a clean file is left alone.
	if kept, dropped, err = st.Compact(fp); err != nil || kept != 2 || dropped != 0 {
		t.Errorf("second Compact = (%d, %d, %v), want (2, 0, nil)", kept, dropped, err)
	}
	// A missing fingerprint is an empty no-op, and traversal stays guarded.
	if kept, dropped, err = st.Compact("0000"); err != nil || kept != 0 || dropped != 0 {
		t.Errorf("Compact(missing) = (%d, %d, %v)", kept, dropped, err)
	}
	if _, _, err := st.Compact("../evil"); err == nil {
		t.Error("Compact accepted a traversal fingerprint")
	}
}

// TestStoreCompactWithOpenAppendHandle compacts while the store holds an
// open append handle, then appends again: the new record must land in the
// compacted file, not a stale unlinked one.
func TestStoreCompactWithOpenAppendHandle(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const fp = "cafe0123"
	a := combin.NewCoalition(2)
	if err := st.Append(fp, a, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(fp, a, 2.0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Compact(fp); err != nil {
		t.Fatal(err)
	}
	b := combin.NewCoalition(3)
	if err := st.Append(fp, b, 3.0); err != nil {
		t.Fatal(err)
	}
	entries, err := st.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[a] != 2.0 || entries[b] != 3.0 {
		t.Errorf("entries = %v, want {a:2, b:3}", entries)
	}
}

// TestStoreCompactAll compacts every fingerprint in the directory at once.
func TestStoreCompactAll(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := combin.NewCoalition(1)
	for _, fp := range []string{"aaaa", "bbbb"} {
		for i := 0; i < 3; i++ {
			if err := st.Append(fp, s, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	kept, dropped, err := st.CompactAll()
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 || dropped != 4 {
		t.Errorf("CompactAll = (%d kept, %d dropped), want (2, 4)", kept, dropped)
	}
}
