package utility

import (
	"sync"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/model"
)

func TestOracleCachesAndCounts(t *testing.T) {
	calls := 0
	o := NewOracle(3, func(s combin.Coalition) float64 {
		calls++
		return float64(s.Size())
	})
	s := combin.NewCoalition(0, 2)
	if got := o.U(s); got != 2 {
		t.Errorf("U = %v", got)
	}
	if got := o.U(s); got != 2 {
		t.Errorf("cached U = %v", got)
	}
	if calls != 1 {
		t.Errorf("eval function called %d times, want 1", calls)
	}
	if o.Evals() != 1 {
		t.Errorf("Evals = %d, want 1", o.Evals())
	}
	o.U(combin.Empty)
	if o.Evals() != 2 {
		t.Errorf("Evals = %d, want 2", o.Evals())
	}
	if !o.Cached(s) || o.Cached(combin.NewCoalition(1)) {
		t.Errorf("Cached misreports")
	}
}

func TestOracleReset(t *testing.T) {
	o := NewOracle(2, func(s combin.Coalition) float64 { return 1 })
	o.U(combin.Empty)
	o.Reset()
	if o.Evals() != 0 || o.Cached(combin.Empty) {
		t.Errorf("Reset did not clear state")
	}
}

func TestOracleConcurrentAccess(t *testing.T) {
	o := NewOracle(4, func(s combin.Coalition) float64 { return float64(s.Index()) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			combin.AllSubsets(4, func(s combin.Coalition) { o.U(s) })
		}()
	}
	wg.Wait()
	if o.Evals() != 16 {
		t.Errorf("concurrent Evals = %d, want 16", o.Evals())
	}
}

func TestTableOracle(t *testing.T) {
	table := map[combin.Coalition]float64{
		combin.Empty:            0.1,
		combin.NewCoalition(0):  0.5,
		combin.FullCoalition(1): 0.5,
	}
	o := TableOracle(1, table)
	if got := o.U(combin.Empty); got != 0.1 {
		t.Errorf("table lookup = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("missing coalition should panic")
		}
	}()
	o.U(combin.NewCoalition(0, 5))
}

func TestFLOracleMonotoneOnAverage(t *testing.T) {
	// More clients should (in aggregate) give at least as good utility —
	// the monotonicity the paper's observations build on. We check the
	// grand coalition beats the average singleton.
	cfg := dataset.DefaultFEMNISTLike(3, 50, 21)
	cfg.Classes = 4
	clients, test := dataset.FEMNISTLike(cfg)
	spec := FLSpec{
		Factory: func(seed int64) model.Model { return model.NewLogReg(clients[0].Dim(), 4, seed) },
		Clients: clients,
		Test:    test,
		Config:  fl.Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true},
	}
	o := NewFLOracle(spec)
	full := o.U(combin.FullCoalition(3))
	var singles float64
	for i := 0; i < 3; i++ {
		singles += o.U(combin.NewCoalition(i))
	}
	singles /= 3
	if full < singles {
		t.Errorf("grand coalition %v below average singleton %v", full, singles)
	}
}

func TestFLOracleEmptyCoalition(t *testing.T) {
	cfg := dataset.DefaultFEMNISTLike(2, 20, 22)
	cfg.Classes = 4
	clients, test := dataset.FEMNISTLike(cfg)
	spec := FLSpec{
		Factory: func(seed int64) model.Model { return model.NewLogReg(clients[0].Dim(), 4, seed) },
		Clients: clients,
		Test:    test,
		Config:  fl.DefaultConfig(7),
	}
	o := NewFLOracle(spec)
	u := o.U(combin.Empty)
	// The untrained model should be near chance (1/4) on a 4-class task.
	if u < 0 || u > 0.6 {
		t.Errorf("empty-coalition utility %v looks wrong for untrained model", u)
	}
}

func TestSnapshot(t *testing.T) {
	o := NewOracle(2, func(s combin.Coalition) float64 { return float64(s.Size()) })
	o.U(combin.Empty)
	o.U(combin.NewCoalition(1))
	snap := o.Snapshot()
	if len(snap) != 2 {
		t.Errorf("snapshot size = %d", len(snap))
	}
	if snap[combin.NewCoalition(1)] != 1 {
		t.Errorf("snapshot content wrong")
	}
}

func TestOnEvalValue(t *testing.T) {
	o := NewOracle(3, func(s combin.Coalition) float64 { return float64(s.Size()) })
	var mu sync.Mutex
	got := make(map[combin.Coalition]float64)
	o.OnEvalValue(func(s combin.Coalition, u float64) {
		mu.Lock()
		got[s] = u
		mu.Unlock()
	})
	// Warmed entries must not fire the hook — only fresh evaluations carry
	// new information for an anytime consumer.
	o.Warm(map[combin.Coalition]float64{combin.Empty: 0})
	a := combin.NewCoalition(0)
	b := combin.NewCoalition(0, 1)
	o.U(a)
	o.U(b)
	o.U(a) // cached: no second call
	o.U(combin.Empty)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[a] != 1 || got[b] != 2 {
		t.Fatalf("hook saw %v, want exactly {%v: 1, %v: 2}", got, a, b)
	}
}
