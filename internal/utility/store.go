package utility

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"fedshap/internal/combin"
	"fedshap/internal/resilience"
)

// Store is a disk-backed coalition-utility cache shared across processes
// and jobs: one append-only JSON-lines file per problem fingerprint. Every
// coalition evaluation trains a full FL model, so persisted utilities are
// the expensive asset the valuation service reuses — a resubmitted job
// loads its fingerprint's file and finishes with zero fresh evaluations.
//
// The append-only format makes concurrent write-through crash-safe: a torn
// final line is skipped on load, and duplicate records (two processes
// evaluating the same coalition) are harmless because utilities are
// deterministic per fingerprint. The JSONL mechanics (lenient scan,
// atomic rewrite, reopen-after-compaction append handles) are shared with
// the valuation service's job journal — see jsonl.go.
type Store struct {
	dir string

	// Fault, when set, is consulted before every durable write — the
	// injectable seam tests and the chaos harness use to simulate a
	// full or failing disk. Set it before the store is shared between
	// goroutines.
	Fault *resilience.Hook
	// OnError, when set, observes every write failure (outside the
	// store mutex). The valuation service hooks it to flip into
	// degraded, memory-only operation. Set before sharing.
	OnError func(error)

	mu      sync.Mutex
	files   map[string]*AppendFile // append handles per fingerprint; guarded by mu
	err     error                  // first write error, reported by Close; guarded by mu
	pending []pendingWrite         // utilities buffered while the disk fails; guarded by mu
}

// pendingWrite is one utility that could not be persisted when it was
// produced. Buffering instead of dropping is what makes degraded mode
// lossless: FlushPending replays the buffer once writes succeed again,
// so a degrade/restore cycle leaves the cache exactly as if the disk
// had never failed.
type pendingWrite struct {
	fp  string
	rec storeRecord
}

// storeRecord is the JSONL schema for one persisted utility.
type storeRecord struct {
	Lo uint64  `json:"lo"`
	Hi uint64  `json:"hi,omitempty"`
	U  float64 `json:"u"`
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("utility: open store: %w", err)
	}
	return &Store{dir: dir, files: make(map[string]*AppendFile)}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(fingerprint string) string {
	return filepath.Join(st.dir, fingerprint+".jsonl")
}

// checkFingerprint guards against path traversal via untrusted fingerprints.
func checkFingerprint(fp string) error {
	if fp == "" || strings.ContainsAny(fp, "/\\.") {
		return fmt.Errorf("utility: invalid fingerprint %q", fp)
	}
	return nil
}

// Load reads every persisted utility for a fingerprint. A missing file is
// an empty cache, not an error; malformed lines (torn tail writes) are
// skipped.
func (st *Store) Load(fingerprint string) (map[combin.Coalition]float64, error) {
	if err := checkFingerprint(fingerprint); err != nil {
		return nil, err
	}
	out := make(map[combin.Coalition]float64)
	err := ScanJSONL(st.path(fingerprint), func(line []byte) {
		var rec storeRecord
		if json.Unmarshal(line, &rec) != nil {
			return
		}
		out[combin.FromWords(rec.Lo, rec.Hi)] = rec.U
	})
	if err != nil {
		return nil, fmt.Errorf("utility: load store: %w", err)
	}
	return out, nil
}

// Append durably records one utility under a fingerprint. The append
// handle stays open for the store's lifetime, so per-evaluation overhead
// is one encode + write syscall. The write happens under the store
// mutex, serialised against Compact's handle-retire-then-rename — an
// append can never slip in between and land in the unlinked
// pre-compaction file.
func (st *Store) Append(fingerprint string, s combin.Coalition, u float64) error {
	if err := checkFingerprint(fingerprint); err != nil {
		return err
	}
	lo, hi := s.Words()
	rec := storeRecord{Lo: lo, Hi: hi, U: u}
	st.mu.Lock()
	err := st.appendLocked(fingerprint, rec)
	if err != nil {
		st.pending = append(st.pending, pendingWrite{fp: fingerprint, rec: rec})
		st.recordErr(err)
	}
	onErr := st.OnError
	st.mu.Unlock()
	if err != nil && onErr != nil {
		onErr(err)
	}
	return err
}

// appendLocked writes one record through the fault hook and the
// per-fingerprint append handle. Call with st.mu held.
func (st *Store) appendLocked(fingerprint string, rec storeRecord) error {
	if err := st.Fault.Check("store.append"); err != nil {
		return err
	}
	//fedvallint:allow(lockhygiene) locked helper by contract: "Call with st.mu held" (Append, FlushPending)
	f, ok := st.files[fingerprint]
	if !ok {
		f = NewAppendFile(st.path(fingerprint))
		st.files[fingerprint] = f
	}
	return f.Append(rec)
}

// FlushPending replays utilities buffered while the disk was failing,
// in production order. On the first failure it stops, keeping the
// unwritten tail for the next probe; after a complete flush the latched
// write error is cleared — the disk has caught up, so Close should not
// report a stale fault. It returns the number of records flushed.
func (st *Store) FlushPending() (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	flushed := 0
	for len(st.pending) > 0 {
		p := st.pending[0]
		if err := st.appendLocked(p.fp, p.rec); err != nil {
			return flushed, err
		}
		st.pending = st.pending[1:]
		flushed++
	}
	st.pending = nil
	st.err = nil
	return flushed, nil
}

// PendingWrites reports the number of utilities waiting in the
// degraded-mode buffer.
func (st *Store) PendingWrites() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.pending)
}

// recordErr keeps the first write failure for Close. Callers on the
// evaluation hot path deliberately ignore per-record errors (persistence
// must not fail a valuation), so Close is where they surface. Call with
// st.mu held.
func (st *Store) recordErr(err error) {
	//fedvallint:allow(lockhygiene) locked helper by contract: "Call with st.mu held" (Append, Compact, Close)
	if st.err == nil {
		st.err = err
	}
}

// Attach layers the store under an oracle for one problem fingerprint:
// persisted utilities warm the cache without charging the budget, and
// every fresh evaluation is written through. It returns the number of
// warmed coalitions.
func (st *Store) Attach(o *Oracle, fingerprint string) (int, error) {
	entries, err := st.Load(fingerprint)
	if err != nil {
		return 0, err
	}
	warmed := o.Warm(entries)
	o.WriteThrough(func(s combin.Coalition, u float64) {
		//fedvallint:allow(durability) persistence must not fail a valuation; Append latches the error and OnError flips degraded mode
		_ = st.Append(fingerprint, s, u) // surfaced by Close
	})
	return warmed, nil
}

// StoreStats summarises a store's on-disk footprint.
type StoreStats struct {
	// Fingerprints is the number of per-problem cache files.
	Fingerprints int
	// Bytes is their total size on disk. Compaction shrinks it by
	// rewriting duplicate records (see Compact).
	Bytes int64
}

// fingerprintFiles enumerates the store-owned cache files: every *.jsonl
// in the directory whose basename is a valid fingerprint. Foreign .jsonl
// files (a misplaced journal, editor droppings) are not the store's to
// touch — this is the single definition of ownership shared by Stats and
// CompactAll.
func (st *Store) fingerprintFiles() ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(st.dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	owned := paths[:0]
	for _, p := range paths {
		if checkFingerprint(strings.TrimSuffix(filepath.Base(p), ".jsonl")) == nil {
			owned = append(owned, p)
		}
	}
	return owned, nil
}

// Stats scans the store directory and reports its footprint — the export
// behind the valuation service's /metrics cache gauges. It deliberately
// reads only directory metadata, never file contents, so it stays cheap
// at GB-scale caches.
func (st *Store) Stats() (StoreStats, error) {
	paths, err := st.fingerprintFiles()
	if err != nil {
		return StoreStats{}, fmt.Errorf("utility: store stats: %w", err)
	}
	var out StoreStats
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		out.Fingerprints++
		out.Bytes += fi.Size()
	}
	return out, nil
}

// Compact rewrites one fingerprint's JSONL file with a single line per
// coalition (the last record wins) and drops malformed lines, so
// long-lived caches stop growing unboundedly: duplicates accrue whenever
// several processes share a cache directory or a crash tears a write. The
// rewrite goes through a temp file and an atomic rename, so a concurrent
// crash leaves either the old or the new file, never a mix. It returns
// the records kept and the lines dropped; a missing file is (0, 0, nil).
//
// Compact assumes no *other process* is appending to the fingerprint
// while it runs: records another process writes between the read and the
// rename are lost, and that process's open append handle is left pointing
// at the unlinked file. Compact at startup or shutdown (Manager.Close
// does the latter, after its jobs have drained), not while a shared cache
// directory is live.
func (st *Store) Compact(fingerprint string) (kept, dropped int, err error) {
	if err := checkFingerprint(fingerprint); err != nil {
		return 0, 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	path := st.path(fingerprint)
	entries := make(map[combin.Coalition]float64)
	var order []combin.Coalition
	lines := 0
	scanErr := ScanJSONL(path, func(line []byte) {
		lines++
		var rec storeRecord
		if json.Unmarshal(line, &rec) != nil {
			return
		}
		s := combin.FromWords(rec.Lo, rec.Hi)
		if _, seen := entries[s]; !seen {
			order = append(order, s)
		}
		entries[s] = rec.U
	})
	if scanErr != nil {
		err := fmt.Errorf("utility: compact: %w", scanErr)
		st.recordErr(err)
		return 0, 0, err
	}
	kept = len(entries)
	dropped = lines - kept
	if lines == 0 || dropped == 0 {
		return kept, 0, nil
	}

	rows := make([][]byte, 0, len(order))
	for _, s := range order {
		lo, hi := s.Words()
		line, err := json.Marshal(storeRecord{Lo: lo, Hi: hi, U: entries[s]})
		if err == nil {
			rows = append(rows, line)
		}
	}
	// Retire the open append handle before swapping the file underneath
	// it; the next Append reopens against the compacted file.
	if open, ok := st.files[fingerprint]; ok {
		open.Close()
	}
	if rerr := ReplaceJSONL(path, rows); rerr != nil {
		// Remembered like write errors: callers on background sweeps drop
		// per-run errors, so Close is where a failing disk surfaces.
		err := fmt.Errorf("utility: compact: %w", rerr)
		st.recordErr(err)
		return kept, dropped, err
	}
	return kept, dropped, nil
}

// CompactAll compacts every fingerprint file in the store's directory,
// summing the kept/dropped counts. The first error is returned after the
// remaining files are still attempted.
func (st *Store) CompactAll() (kept, dropped int, err error) {
	paths, globErr := st.fingerprintFiles()
	if globErr != nil {
		return 0, 0, fmt.Errorf("utility: compact all: %w", globErr)
	}
	for _, p := range paths {
		k, d, cerr := st.Compact(strings.TrimSuffix(filepath.Base(p), ".jsonl"))
		kept += k
		dropped += d
		if err == nil && cerr != nil {
			err = cerr
		}
	}
	return kept, dropped, err
}

// Close flushes and closes every open fingerprint file, returning the
// first write error encountered during the store's lifetime.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	// Close in sorted fingerprint order so which failure gets latched as
	// "first" is stable run to run.
	fps := make([]string, 0, len(st.files))
	//fedvallint:allow(determinism) key collection feeding an immediate sort; collection order is irrelevant
	for fp := range st.files {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		if err := st.files[fp].Close(); err != nil {
			st.recordErr(err)
		}
		delete(st.files, fp)
	}
	return st.err
}
