package utility

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScanJSONL feeds arbitrary file contents — valid JSONL, binary
// garbage, torn tails, pathological newline runs — through ScanJSONL and
// checks it against the contract the journal and store recovery paths
// rely on: never panic, and deliver every line (including a torn,
// unterminated final one) intact and in order. Inputs at or beyond the
// per-line size limit are out of contract (ScanJSONL reports ErrTooLong
// for those) and are skipped.
func FuzzScanJSONL(f *testing.F) {
	f.Add([]byte(`{"lo":1,"hi":0,"u":0.5}` + "\n"))
	f.Add([]byte("{\"u\":1}\n{\"u\":2}\n{\"u\":3"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{'})
	f.Add(bytes.Repeat([]byte("a"), 4096))
	f.Add([]byte("{\"u\":1}\r\n{\"u\":2}\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= maxJSONLLine {
			t.Skip("single lines beyond the scan limit are out of contract")
		}
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		err := ScanJSONL(path, func(line []byte) {
			got = append(got, append([]byte(nil), line...))
		})
		if err != nil {
			t.Fatalf("ScanJSONL: %v", err)
		}

		// Reference semantics: the file split on '\n' (one trailing '\r'
		// stripped per line, matching bufio.ScanLines), without the
		// phantom empty line after a final newline.
		var want [][]byte
		rest := data
		for len(rest) > 0 {
			nl := bytes.IndexByte(rest, '\n')
			var line []byte
			if nl < 0 {
				line, rest = rest, nil
			} else {
				line, rest = rest[:nl], rest[nl+1:]
			}
			want = append(want, bytes.TrimSuffix(line, []byte("\r")))
		}
		if len(got) != len(want) {
			t.Fatalf("delivered %d lines, want %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("line %d: got %q want %q", i, got[i], want[i])
			}
		}
	})
}
