package utility

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"fedshap/internal/combin"
)

// TestShardedCacheConcurrent hammers one oracle from many goroutines doing
// mixed lookups, evaluations, prefetches and snapshots — run with -race.
func TestShardedCacheConcurrent(t *testing.T) {
	const n = 12
	var calls int64
	o := NewOracle(n, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return float64(s.Size())
	})
	var coals []combin.Coalition
	for size := 0; size <= 3; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) { coals = append(coals, s) })
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := coals[(g*31+i*7)%len(coals)]
				if got := o.U(s); got != float64(s.Size()) {
					t.Errorf("U(%v) = %v, want %v", s, got, s.Size())
					return
				}
				o.Cached(s)
				if i%50 == 0 {
					o.Snapshot()
					o.Evals()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := o.Prefetch(context.Background(), coals, 4); err != nil {
			t.Errorf("Prefetch: %v", err)
		}
	}()
	wg.Wait()

	if got := o.Evals(); got != len(coals) {
		t.Errorf("Evals = %d, want %d distinct", got, len(coals))
	}
	if got := o.Size(); got != len(coals) {
		t.Errorf("Size = %d, want %d", got, len(coals))
	}
}

// TestOracleCancellation proves a cancelled oracle stops issuing fresh
// evaluations while still serving cached utilities.
func TestOracleCancellation(t *testing.T) {
	var calls int64
	o := NewOracle(6, func(s combin.Coalition) float64 {
		atomic.AddInt64(&calls, 1)
		return 1
	})
	ctx, cancel := context.WithCancel(context.Background())
	o.SetContext(ctx)

	warm := combin.NewCoalition(0, 1)
	o.U(warm)
	cancel()

	if got := o.U(warm); got != 1 {
		t.Errorf("cached lookup after cancel = %v, want 1", got)
	}
	func() {
		defer func() {
			r := recover()
			ce, ok := r.(*CancelError)
			if !ok {
				t.Fatalf("fresh eval after cancel: recovered %v, want *CancelError", r)
			}
			if !errors.Is(ce, context.Canceled) {
				t.Errorf("errors.Is(CancelError, context.Canceled) = false")
			}
		}()
		o.U(combin.NewCoalition(2))
		t.Error("fresh eval after cancel did not panic")
	}()
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Errorf("eval calls = %d, want 1 (no fresh evals after cancel)", got)
	}
}

// TestPrefetchCancelledMidRun cancels while a prefetch pool is working and
// checks that the pool drains without finishing the plan.
func TestPrefetchCancelledMidRun(t *testing.T) {
	const n = 10
	ctx, cancel := context.WithCancel(context.Background())
	var evals int64
	o := NewOracle(n, func(s combin.Coalition) float64 {
		if atomic.AddInt64(&evals, 1) == 8 {
			cancel()
		}
		return 0
	})
	o.SetContext(ctx)
	var coals []combin.Coalition
	for size := 0; size <= 2; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) { coals = append(coals, s) })
	}
	err := o.Prefetch(ctx, coals, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Prefetch error = %v, want context.Canceled", err)
	}
	got := atomic.LoadInt64(&evals)
	if got >= int64(len(coals)) {
		t.Errorf("prefetch evaluated all %d coalitions despite cancellation", len(coals))
	}
	// The pool must have stopped promptly: at most the 8 trigger evals plus
	// one in-flight eval per worker.
	if got > 8+2 {
		t.Errorf("prefetch issued %d evals after cancellation trigger at 8", got)
	}
}

// TestWarmDoesNotCharge loads utilities without consuming budget.
func TestWarmDoesNotCharge(t *testing.T) {
	o := NewOracle(4, func(s combin.Coalition) float64 { return -1 })
	entries := map[combin.Coalition]float64{
		combin.Empty:           0.1,
		combin.NewCoalition(0): 0.5,
	}
	if added := o.Warm(entries); added != 2 {
		t.Fatalf("Warm added %d, want 2", added)
	}
	if o.Evals() != 0 {
		t.Errorf("Evals = %d after Warm, want 0", o.Evals())
	}
	if got := o.U(combin.NewCoalition(0)); got != 0.5 {
		t.Errorf("warmed utility = %v, want 0.5 (not re-evaluated)", got)
	}
	if o.Evals() != 0 {
		t.Errorf("Evals = %d after warmed lookup, want 0", o.Evals())
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const fp = "abc123"
	s1, s2 := combin.NewCoalition(0, 2), combin.NewCoalition(1).With(100)
	if err := st.Append(fp, s1, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(fp, s2, 0.75); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[s1] != 0.25 || got[s2] != 0.75 {
		t.Errorf("Load = %v", got)
	}
	// Unknown fingerprint loads empty, not an error.
	if empty, err := st.Load("deadbeef"); err != nil || len(empty) != 0 {
		t.Errorf("Load(missing) = %v, %v", empty, err)
	}
}

func TestStoreRejectsPathTraversal(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, fp := range []string{"", "../evil", "a/b", `a\b`, "dot.dot"} {
		if _, err := st.Load(fp); err == nil {
			t.Errorf("Load(%q) accepted", fp)
		}
		if err := st.Append(fp, combin.Empty, 0); err == nil {
			t.Errorf("Append(%q) accepted", fp)
		}
	}
}

// TestStoreSkipsTornLine simulates a crash mid-append: the torn tail line
// is skipped, everything before it loads.
func TestStoreSkipsTornLine(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "ffee00"
	if err := st.Append(fp, combin.NewCoalition(3), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, fp+".jsonl"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"lo":9,"u":0.`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[combin.NewCoalition(3)] != 0.5 {
		t.Errorf("Load after torn line = %v", got)
	}
}

// TestStoreAttach warms an oracle from disk (free) and writes fresh
// evaluations through, so a second attach starts fully warm.
func TestStoreAttach(t *testing.T) {
	dir := t.TempDir()
	const fp = "0a0b0c"
	var calls int64
	mkOracle := func() *Oracle {
		return NewOracle(5, func(s combin.Coalition) float64 {
			atomic.AddInt64(&calls, 1)
			return float64(s.Size()) * 0.125
		})
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o1 := mkOracle()
	if warmed, err := st.Attach(o1, fp); err != nil || warmed != 0 {
		t.Fatalf("first Attach = %d, %v", warmed, err)
	}
	var plan []combin.Coalition
	combin.SubsetsOfSize(5, 2, func(s combin.Coalition) { plan = append(plan, s) })
	for _, s := range plan {
		o1.U(s)
	}
	if o1.Evals() != len(plan) {
		t.Fatalf("first run evals = %d, want %d", o1.Evals(), len(plan))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a process restart: fresh store handle, fresh oracle.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	o2 := mkOracle()
	warmed, err := st2.Attach(o2, fp)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != len(plan) {
		t.Fatalf("second Attach warmed %d, want %d", warmed, len(plan))
	}
	before := atomic.LoadInt64(&calls)
	for _, s := range plan {
		o2.U(s)
	}
	if atomic.LoadInt64(&calls) != before {
		t.Error("warm oracle re-evaluated persisted coalitions")
	}
	if o2.Evals() != 0 {
		t.Errorf("warm run fresh evals = %d, want 0", o2.Evals())
	}
}
