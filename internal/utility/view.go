package utility

import (
	"context"

	"fedshap/internal/combin"
)

// Source is what valuation algorithms consume: coalition utilities plus the
// budget accounting they self-limit against. *Oracle implements it; RunView
// wraps an Oracle to give each algorithm run its own budget meter over a
// shared cache.
type Source interface {
	// N returns the federation size.
	N() int
	// U returns the utility of a coalition.
	U(s combin.Coalition) float64
	// Cached reports whether the coalition has been evaluated in this
	// budget scope.
	Cached(s combin.Coalition) bool
	// Evals returns the number of distinct coalitions charged to this
	// budget scope.
	Evals() int
}

var (
	_ Source = (*Oracle)(nil)
	_ Source = (*RunView)(nil)
)

// RunView is a per-run budget scope over a shared Oracle: utilities come
// from the underlying cache (no retraining across runs), but Evals and
// Cached reflect only the coalitions this run has requested, so algorithms
// that stop at a budget γ behave exactly as they would against a fresh
// oracle. This is what makes repeated-sampling experiments (Figs. 7, 8, 10)
// affordable without distorting budget semantics.
type RunView struct {
	o    *Oracle
	seen map[combin.Coalition]struct{}
}

// NewRunView opens a fresh budget scope over o.
func NewRunView(o *Oracle) *RunView {
	return &RunView{o: o, seen: make(map[combin.Coalition]struct{})}
}

// N implements Source.
func (v *RunView) N() int { return v.o.N() }

// U implements Source, charging the coalition to this run's budget.
func (v *RunView) U(s combin.Coalition) float64 {
	v.seen[s] = struct{}{}
	return v.o.U(s)
}

// Cached implements Source: true only if this run already requested s.
func (v *RunView) Cached(s combin.Coalition) bool {
	_, ok := v.seen[s]
	return ok
}

// Evals implements Source: distinct coalitions requested by this run.
func (v *RunView) Evals() int { return len(v.seen) }

// SetContext implements ContextBinder by binding the underlying oracle, so
// cancelling a run cancels the fresh evaluations it would trigger.
func (v *RunView) SetContext(ctx context.Context) { v.o.SetContext(ctx) }

var _ ContextBinder = (*RunView)(nil)
