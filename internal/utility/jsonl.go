package utility

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// JSONL helpers shared by the persistent utility Store and the valuation
// service's durable job journal (internal/valserve): append-only files
// with one JSON document per line. The format is crash-safe by
// construction — appends are a single write, a torn tail line is skipped
// on the next scan, and compaction rewrites through a temp file and an
// atomic rename so a crash leaves either the old or the new file, never a
// mix.

// maxJSONLLine bounds one scanned line; records here are small (a
// coalition utility or a job snapshot), so 1 MiB is generous headroom.
const maxJSONLLine = 1 << 20

// ScanJSONL streams every line of the JSONL file at path to fn, in file
// order. A missing file is an empty file, not an error. Malformed lines
// (torn tail writes) are the caller's to detect and skip — fn receives
// the raw bytes of every line.
func ScanJSONL(path string, fn func(line []byte)) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("utility: scan jsonl: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxJSONLLine)
	for sc.Scan() {
		fn(sc.Bytes())
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("utility: scan jsonl: %w", err)
	}
	return nil
}

// ReplaceJSONL atomically replaces the file at path with the given
// marshalled lines (each without a trailing newline). The rewrite goes
// through a temp file in the same directory — chmodded to 0644 so
// cross-process readers keep access — fsynced, then renamed over the
// original. Callers must ensure no other process is appending to the
// path while it runs; records written between read and rename are lost.
func ReplaceJSONL(path string, lines [][]byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("utility: replace jsonl: %w", err)
	}
	// CreateTemp makes the file 0600; restore the permissions append
	// created the original with, or cross-process readers lose it.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close() //fedvallint:allow(durability) best-effort cleanup of a temp file already being abandoned for the chmod error
		os.Remove(tmp.Name())
		return fmt.Errorf("utility: replace jsonl: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, line := range lines {
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("utility: replace jsonl: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("utility: replace jsonl: %w", err)
	}
	return nil
}

// AppendFile is a lazily-opened, mutex-serialised append handle for one
// JSONL file. It cooperates with ReplaceJSONL-based compaction: Close
// retires the current handle, and the next Append transparently reopens
// the (possibly replaced) path. The caller must serialise the
// Close-then-ReplaceJSONL sequence against its own Appends (as
// Store.Compact and valserve.Journal do with their mutexes) — an Append
// interleaved between the two would reopen and write the unlinked
// original, and the record would vanish with the rename.
type AppendFile struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// NewAppendFile prepares an append handle for path; the file is not
// opened (or created) until the first Append.
func NewAppendFile(path string) *AppendFile {
	return &AppendFile{path: path}
}

// Path returns the file path appends go to.
func (a *AppendFile) Path() string { return a.path }

// Append marshals v and durably appends it as one JSONL line: one encode
// plus one write syscall on a long-lived handle.
func (a *AppendFile) Append(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		f, err := os.OpenFile(a.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		a.f = f
	}
	_, err = a.f.Write(line)
	return err
}

// Close retires the current handle. The AppendFile stays usable: a later
// Append reopens the path — this is how callers swap the underlying file
// (compaction) without racing in-flight appends into the unlinked inode.
func (a *AppendFile) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	err := a.f.Close()
	a.f = nil
	return err
}
