// Package utility implements the utility oracle U(M_S) at the heart of
// SV-based data valuation: train a federated model on a coalition's merged
// datasets and score it on the shared test set. The oracle memoises by
// coalition bitmask — every valuation algorithm in this repo is budgeted
// and timed in units of *distinct coalition evaluations*, matching the
// paper's accounting where τ (one train+evaluate) dominates everything.
//
// The cache behind the oracle is sharded for concurrent evaluation pools
// (Prefetch, the valuation service) and can be layered over a disk-backed
// Store so utilities survive the process and warm later jobs. Evaluation is
// cooperatively cancellable via a bound context.Context, and a progress
// hook reports every fresh evaluation — together these are what let a
// long-running service cancel jobs mid-run and stream budget consumption.
package utility

import (
	"context"
	"sync/atomic"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/model"
)

// EvalFunc trains and evaluates the model for one coalition, returning its
// utility.
type EvalFunc func(s combin.Coalition) float64

// CancelError is the panic payload raised by a cancelled oracle when a
// fresh evaluation is requested. It unwraps to the bound context's error,
// so errors.Is(err, context.Canceled) holds after shapley.Run converts the
// panic back into an error. Cached lookups never raise it: a cancelled job
// may finish reading warm utilities, it just stops issuing fresh ones.
type CancelError struct {
	// Err is the context error that triggered cancellation.
	Err error
}

// Error implements error.
func (e *CancelError) Error() string { return "utility: evaluation cancelled: " + e.Err.Error() }

// Unwrap exposes the context error for errors.Is.
func (e *CancelError) Unwrap() error { return e.Err }

// ContextBinder is implemented by Sources whose fresh evaluations can be
// bound to a context for cooperative cancellation.
type ContextBinder interface {
	// SetContext binds ctx; once it is done, requesting a non-cached
	// utility panics with *CancelError (recovered by shapley.Run).
	SetContext(ctx context.Context)
}

// Oracle memoises coalition utilities in a sharded concurrent cache and
// counts fresh evaluations. It is safe for concurrent use.
type Oracle struct {
	n    int
	eval EvalFunc

	cache *shardedCache
	// evals counts distinct fresh evaluations — the consumed budget.
	// Entries inserted via Warm (e.g. from a persistent Store) are free.
	evals atomic.Int64

	// ctx, onEval, onEvalValue, writeThrough and onHit are set before a
	// run and read on the evaluation path; atomic.Value keeps them
	// race-free against concurrent U calls from a prefetch pool.
	ctx          atomic.Value // context.Context
	onEval       atomic.Value // func(total int)
	onEvalValue  atomic.Value // func(combin.Coalition, float64)
	writeThrough atomic.Value // func(combin.Coalition, float64)
	onHit        atomic.Value // func(seconds float64)
}

// NewOracle wraps an evaluation function for a federation of n clients.
func NewOracle(n int, eval EvalFunc) *Oracle {
	return &Oracle{n: n, eval: eval, cache: newShardedCache()}
}

// N returns the federation size.
func (o *Oracle) N() int { return o.n }

// WrapEval replaces the oracle's evaluation function with wrap(current),
// handing the wrapped function the previous one as its fallback. This is
// the seam the distributed evaluator (internal/evalnet) plugs into: the
// remote EvalFunc dispatches coalitions to the worker fleet and falls back
// to the original in-process function when no workers remain. It must be
// called before evaluations begin, never concurrently with U.
func (o *Oracle) WrapEval(wrap func(EvalFunc) EvalFunc) {
	o.eval = wrap(o.eval)
}

// SetContext implements ContextBinder.
func (o *Oracle) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() //fedvallint:allow(ctxthread) nil-ctx compat fallback; callers that care pass their own
	}
	o.ctx.Store(ctx)
}

// OnEval registers a hook invoked after every fresh evaluation with the
// running distinct-evaluation total. The hook may be called concurrently
// from evaluation workers and must be cheap and thread-safe.
func (o *Oracle) OnEval(fn func(total int)) {
	o.onEval.Store(fn)
}

// OnEvalValue registers a hook invoked with every fresh (coalition,
// utility) pair — the marginal-attribution seam: an anytime tracker folds
// each result into running per-client statistics as it lands. Unlike
// WriteThrough (reserved for the persistent Store), this hook is for
// in-process consumers. It may be called concurrently from evaluation
// workers and must be cheap and thread-safe.
func (o *Oracle) OnEvalValue(fn func(s combin.Coalition, u float64)) {
	o.onEvalValue.Store(fn)
}

// WriteThrough registers a hook invoked with every fresh (coalition,
// utility) pair, the seam the persistent Store attaches to.
func (o *Oracle) WriteThrough(fn func(s combin.Coalition, u float64)) {
	o.writeThrough.Store(fn)
}

// OnCacheHit registers a hook invoked with the lookup latency of every
// utility served from the cache — the telemetry seam behind the service's
// eval-latency-by-source histograms (fresh evaluations are timed by the
// caller around the eval function instead). With no hook installed the
// hit path costs one extra atomic load.
func (o *Oracle) OnCacheHit(fn func(seconds float64)) {
	o.onHit.Store(fn)
}

func (o *Oracle) ctxErr() error {
	if ctx, ok := o.ctx.Load().(context.Context); ok {
		return ctx.Err()
	}
	return nil
}

// U returns the utility of coalition s, evaluating and caching on first use.
// If a bound context is done, a cache miss panics with *CancelError.
func (o *Oracle) U(s combin.Coalition) float64 {
	hit, _ := o.onHit.Load().(func(float64))
	var start time.Time
	if hit != nil {
		start = time.Now() //fedvallint:allow(determinism) cache-hit latency telemetry only; never feeds values or fingerprints
	}
	if v, ok := o.cache.get(s); ok {
		if hit != nil {
			hit(time.Since(start).Seconds())
		}
		return v
	}
	if err := o.ctxErr(); err != nil {
		panic(&CancelError{Err: err})
	}
	// Evaluate outside any lock; duplicate concurrent evaluation of the
	// same coalition is possible but harmless (deterministic result), and
	// only the first insert is charged.
	v := o.eval(s)
	if o.cache.putIfAbsent(s, v) {
		total := int(o.evals.Add(1))
		if fn, ok := o.onEval.Load().(func(int)); ok && fn != nil {
			fn(total)
		}
		if fn, ok := o.onEvalValue.Load().(func(combin.Coalition, float64)); ok && fn != nil {
			fn(s, v)
		}
		if fn, ok := o.writeThrough.Load().(func(combin.Coalition, float64)); ok && fn != nil {
			fn(s, v)
		}
	}
	return v
}

// Cached reports whether s has already been evaluated (or warmed).
func (o *Oracle) Cached(s combin.Coalition) bool {
	_, ok := o.cache.get(s)
	return ok
}

// Evals returns the number of distinct coalitions evaluated so far — the
// consumed sampling budget. Warmed entries are not counted.
func (o *Oracle) Evals() int {
	return int(o.evals.Load())
}

// Warm inserts known utilities without charging the evaluation budget —
// the loading path for persisted or otherwise pre-computed coalitions. It
// returns how many entries were new.
func (o *Oracle) Warm(entries map[combin.Coalition]float64) int {
	added := 0
	//fedvallint:allow(determinism) putIfAbsent per distinct key is commutative; insertion order cannot affect cache contents or the count
	for s, v := range entries {
		if o.cache.putIfAbsent(s, v) {
			added++
		}
	}
	return added
}

// Size returns the number of cached coalitions (fresh plus warmed).
func (o *Oracle) Size() int { return o.cache.len() }

// Reset clears the cache and the evaluation counter.
func (o *Oracle) Reset() {
	o.cache.clear()
	o.evals.Store(0)
}

// Metric scores a trained model on a test set.
type Metric func(m model.Model, test *dataset.Dataset) float64

// FLSpec bundles everything needed to evaluate coalitions by federated
// training: the model factory, the per-client datasets, the shared test set,
// the FedAvg configuration and the utility metric.
type FLSpec struct {
	Factory model.Factory
	Clients []*dataset.Dataset
	Test    *dataset.Dataset
	Config  fl.Config
	Metric  Metric
}

// NewFLOracle builds the standard oracle of Def. 2: U(M_S) = Metric of the
// FL model trained on ∪_{i∈S} D_i. Training is deterministic per coalition
// (seeded from the base seed), so repeated queries agree.
func NewFLOracle(spec FLSpec) *Oracle {
	if spec.Metric == nil {
		spec.Metric = model.Accuracy
	}
	return NewOracle(len(spec.Clients), func(s combin.Coalition) float64 {
		subset := make([]*dataset.Dataset, 0, s.Size())
		for _, i := range s.Members() {
			subset = append(subset, spec.Clients[i])
		}
		cfg := spec.Config
		m := fl.Train(spec.Factory, subset, cfg)
		return spec.Metric(m, spec.Test)
	})
}

// Snapshot returns a copy of the cache, for tests and reporting.
func (o *Oracle) Snapshot() map[combin.Coalition]float64 {
	return o.cache.snapshot()
}

// TableOracle builds an oracle from an explicit utility table, used by the
// paper's worked examples (Table I, Figs. 2 and 5) and by synthetic games in
// tests. Lookups of missing coalitions panic.
func TableOracle(n int, table map[combin.Coalition]float64) *Oracle {
	return NewOracle(n, func(s combin.Coalition) float64 {
		v, ok := table[s]
		if !ok {
			panic("utility: coalition missing from table: " + s.String())
		}
		return v
	})
}
