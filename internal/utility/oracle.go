// Package utility implements the utility oracle U(M_S) at the heart of
// SV-based data valuation: train a federated model on a coalition's merged
// datasets and score it on the shared test set. The oracle memoises by
// coalition bitmask — every valuation algorithm in this repo is budgeted
// and timed in units of *distinct coalition evaluations*, matching the
// paper's accounting where τ (one train+evaluate) dominates everything.
package utility

import (
	"sync"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/model"
)

// EvalFunc trains and evaluates the model for one coalition, returning its
// utility.
type EvalFunc func(s combin.Coalition) float64

// Oracle memoises coalition utilities and counts fresh evaluations.
// It is safe for concurrent use.
type Oracle struct {
	n    int
	eval EvalFunc

	mu    sync.Mutex
	cache map[combin.Coalition]float64
	evals int
}

// NewOracle wraps an evaluation function for a federation of n clients.
func NewOracle(n int, eval EvalFunc) *Oracle {
	return &Oracle{n: n, eval: eval, cache: make(map[combin.Coalition]float64)}
}

// N returns the federation size.
func (o *Oracle) N() int { return o.n }

// U returns the utility of coalition s, evaluating and caching on first use.
func (o *Oracle) U(s combin.Coalition) float64 {
	o.mu.Lock()
	if v, ok := o.cache[s]; ok {
		o.mu.Unlock()
		return v
	}
	o.mu.Unlock()
	// Evaluate outside the lock; duplicate concurrent evaluation of the
	// same coalition is possible but harmless (deterministic result).
	v := o.eval(s)
	o.mu.Lock()
	if _, ok := o.cache[s]; !ok {
		o.cache[s] = v
		o.evals++
	}
	o.mu.Unlock()
	return v
}

// Cached reports whether s has already been evaluated.
func (o *Oracle) Cached(s combin.Coalition) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, ok := o.cache[s]
	return ok
}

// Evals returns the number of distinct coalitions evaluated so far — the
// consumed sampling budget.
func (o *Oracle) Evals() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.evals
}

// Reset clears the cache and the evaluation counter.
func (o *Oracle) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cache = make(map[combin.Coalition]float64)
	o.evals = 0
}

// Metric scores a trained model on a test set.
type Metric func(m model.Model, test *dataset.Dataset) float64

// FLSpec bundles everything needed to evaluate coalitions by federated
// training: the model factory, the per-client datasets, the shared test set,
// the FedAvg configuration and the utility metric.
type FLSpec struct {
	Factory model.Factory
	Clients []*dataset.Dataset
	Test    *dataset.Dataset
	Config  fl.Config
	Metric  Metric
}

// NewFLOracle builds the standard oracle of Def. 2: U(M_S) = Metric of the
// FL model trained on ∪_{i∈S} D_i. Training is deterministic per coalition
// (seeded from the base seed), so repeated queries agree.
func NewFLOracle(spec FLSpec) *Oracle {
	if spec.Metric == nil {
		spec.Metric = model.Accuracy
	}
	return NewOracle(len(spec.Clients), func(s combin.Coalition) float64 {
		subset := make([]*dataset.Dataset, 0, s.Size())
		for _, i := range s.Members() {
			subset = append(subset, spec.Clients[i])
		}
		cfg := spec.Config
		m := fl.Train(spec.Factory, subset, cfg)
		return spec.Metric(m, spec.Test)
	})
}

// Snapshot returns a copy of the cache, for tests and reporting.
func (o *Oracle) Snapshot() map[combin.Coalition]float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[combin.Coalition]float64, len(o.cache))
	for k, v := range o.cache {
		out[k] = v
	}
	return out
}

// TableOracle builds an oracle from an explicit utility table, used by the
// paper's worked examples (Table I, Figs. 2 and 5) and by synthetic games in
// tests. Lookups of missing coalitions panic.
func TableOracle(n int, table map[combin.Coalition]float64) *Oracle {
	return NewOracle(n, func(s combin.Coalition) float64 {
		v, ok := table[s]
		if !ok {
			panic("utility: coalition missing from table: " + s.String())
		}
		return v
	})
}
