package utility

import (
	"testing"

	"fedshap/internal/combin"
)

func TestRunViewIndependentBudgets(t *testing.T) {
	calls := 0
	o := NewOracle(4, func(s combin.Coalition) float64 {
		calls++
		return float64(s.Size())
	})
	a := NewRunView(o)
	b := NewRunView(o)

	s := combin.NewCoalition(0, 1)
	a.U(s)
	if a.Evals() != 1 {
		t.Errorf("view a evals = %d", a.Evals())
	}
	if b.Evals() != 0 {
		t.Errorf("view b evals = %d before any request", b.Evals())
	}
	// Second view requesting the same coalition is charged, but the
	// underlying oracle does not retrain.
	b.U(s)
	if b.Evals() != 1 {
		t.Errorf("view b evals = %d", b.Evals())
	}
	if calls != 1 {
		t.Errorf("underlying evaluations = %d, want 1 (cache shared)", calls)
	}
}

func TestRunViewCachedScopedToRun(t *testing.T) {
	o := NewOracle(3, func(s combin.Coalition) float64 { return 0 })
	o.U(combin.Empty) // warm the shared cache
	v := NewRunView(o)
	if v.Cached(combin.Empty) {
		t.Errorf("view should not see other scopes' requests as cached")
	}
	v.U(combin.Empty)
	if !v.Cached(combin.Empty) {
		t.Errorf("view should see its own requests")
	}
}

func TestRunViewChargesDistinctOnly(t *testing.T) {
	o := NewOracle(3, func(s combin.Coalition) float64 { return 0 })
	v := NewRunView(o)
	s := combin.NewCoalition(1)
	v.U(s)
	v.U(s)
	v.U(s)
	if v.Evals() != 1 {
		t.Errorf("repeat requests charged %d times", v.Evals())
	}
}

func TestRunViewN(t *testing.T) {
	o := NewOracle(7, func(s combin.Coalition) float64 { return 0 })
	if NewRunView(o).N() != 7 {
		t.Errorf("view N mismatch")
	}
}
