package theory

import (
	"math"

	"fedshap/internal/combin"
)

// Budget planning: invert the Theorem 3 error bound to answer the question
// a practitioner actually asks — "how many coalition evaluations do I need
// for a target relative error?" — instead of guessing γ.

// PlanKStar returns the smallest truncation size k* whose Theorem 3 bound
// is at most epsRel for a federation of n clients with t samples each and
// dim input features. Returns n (full evaluation) when no smaller k*
// reaches the target.
func PlanKStar(n, t, dim int, epsRel float64) int {
	for k := 1; k < n; k++ {
		if b := TheoremThreeBound(n, t, dim, k); b <= epsRel {
			return k
		}
	}
	return n
}

// PlanGamma returns the evaluation budget γ that lets IPSS fully evaluate
// all strata up to PlanKStar(n, t, dim, epsRel): Σ_{j≤k*} C(n,j). The
// result saturates at 2ⁿ (exact computation) and is the budget to pass to
// IPSS for the requested accuracy.
func PlanGamma(n, t, dim int, epsRel float64) uint64 {
	kstar := PlanKStar(n, t, dim, epsRel)
	total := combin.CumulativeBinomial(n, n)
	gamma := combin.CumulativeBinomial(n, kstar)
	if gamma > total {
		return total
	}
	return gamma
}

// SpeedupOverExact returns the expected evaluation-count speedup of IPSS at
// budget γ versus the exact 2ⁿ computation — the headline efficiency claim
// (e.g. the paper's "99% reduction vs MC-Shapley" at n = 10, γ = 32).
func SpeedupOverExact(n int, gamma uint64) float64 {
	if gamma == 0 {
		return math.Inf(1)
	}
	return math.Pow(2, float64(n)) / float64(gamma)
}
