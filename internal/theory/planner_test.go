package theory

import (
	"math"
	"testing"
)

func TestPlanKStarMeetsTarget(t *testing.T) {
	n, tt, dim := 10, 500, 8
	for _, eps := range []float64{0.1, 0.01, 0.001} {
		k := PlanKStar(n, tt, dim, eps)
		if k < n {
			if b := TheoremThreeBound(n, tt, dim, k); b > eps {
				t.Errorf("eps=%v: k*=%d bound %v exceeds target", eps, k, b)
			}
		}
		// Minimality: k*-1 must miss the target (when k* > 1).
		if k > 1 && k <= n {
			if b := TheoremThreeBound(n, tt, dim, k-1); b <= eps {
				t.Errorf("eps=%v: k*-1=%d already meets target (%v)", eps, k-1, b)
			}
		}
	}
}

func TestPlanKStarMonotoneInEps(t *testing.T) {
	n, tt, dim := 12, 300, 6
	prev := 0
	for _, eps := range []float64{0.5, 0.1, 0.01, 0.001, 0.0001} {
		k := PlanKStar(n, tt, dim, eps)
		if k < prev {
			t.Errorf("tighter eps=%v got smaller k*=%d (prev %d)", eps, k, prev)
		}
		prev = k
	}
}

func TestPlanGamma(t *testing.T) {
	n, tt, dim := 10, 500, 8
	gamma := PlanGamma(n, tt, dim, 0.01)
	if gamma == 0 || gamma > 1<<10 {
		t.Errorf("gamma = %d out of range", gamma)
	}
	// Impossible target saturates at 2^n.
	if g := PlanGamma(4, 5, 3, 0); g != 16 {
		t.Errorf("impossible target gamma = %d, want 16", g)
	}
}

func TestSpeedupOverExact(t *testing.T) {
	// n=10, γ=32: 1024/32 = 32× fewer evaluations — the paper's "99%
	// reduction vs MC-Shapley" at ten clients.
	if got := SpeedupOverExact(10, 32); math.Abs(got-32) > 1e-12 {
		t.Errorf("speedup = %v, want 32", got)
	}
	if !math.IsInf(SpeedupOverExact(5, 0), 1) {
		t.Errorf("zero budget should give infinite speedup")
	}
}
