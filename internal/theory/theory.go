// Package theory implements the analytical model behind the paper's proofs:
// the Donahue–Kleinberg expected-MSE law for linear regression (Eq. 12),
// the closed-form expected data value of Lemma 1, the IPSS truncation-error
// bound of Theorem 3, and the MC-vs-CC variance comparison of Theorem 2.
// The theory tests validate these formulas against the empirical substrate.
package theory

import (
	"math"

	"fedshap/internal/combin"
)

// ExpectedMSE returns the Donahue–Kleinberg expected test MSE of a linear
// regression fitted on d samples of dim-dimensional standard-Gaussian
// inputs with noise expectation muE (Eq. 12):
//
//	E[mse(d)] = muE · dim / (d − dim − 1)
//
// It returns +Inf when d ≤ dim+1 (the OLS variance does not exist).
func ExpectedMSE(d int, dim int, muE float64) float64 {
	den := float64(d - dim - 1)
	if den <= 0 {
		return math.Inf(1)
	}
	return muE * float64(dim) / den
}

// LemmaOneValue returns the Lemma 1 closed form for the expected data value
// of every client under negative-MSE utility when all n clients hold t
// samples each:
//
//	E[φ̂ᵢ] = (1/n)(m0 − muE·dim/(n·t − dim − 1))
//
// where m0 is the MSE of the initialised model.
func LemmaOneValue(n, t, dim int, muE, m0 float64) float64 {
	return (m0 - ExpectedMSE(n*t, dim, muE)) / float64(n)
}

// TruncatedValue returns the Theorem 3 intermediate: the expected value when
// only combinations of size ≤ k* are used,
//
//	E[φ̂ᵢ^{k*}] = (1/n)(m0 − muE·dim/(k*·t − dim − 1)).
func TruncatedValue(n, t, dim, kstar int, muE, m0 float64) float64 {
	return (m0 - ExpectedMSE(kstar*t, dim, muE)) / float64(n)
}

// TheoremThreeBound returns the Theorem 3 relative-error bound for IPSS
// truncation at k*:
//
//	|E[φ̂^{k*}] − E[φ]| / E[φ] ≤ (n−k*)·t / ((k*·t − dim − 1)(n·t − dim − 2))
//
// i.e. O((n−k*)/(k*·n·t)). Returns +Inf when the denominators are not
// positive (k*·t too small relative to dim).
func TheoremThreeBound(n, t, dim, kstar int) float64 {
	d1 := float64(kstar*t - dim - 1)
	d2 := float64(n*t - dim - 2)
	if d1 <= 0 || d2 <= 0 {
		return math.Inf(1)
	}
	return float64(n-kstar) * float64(t) / (d1 * d2)
}

// MCVarianceTerm returns the Theorem 2 per-sample variance of one MC-SV
// marginal-contribution estimate under the FL linear-regression model with
// per-sample noise variance sigma2 and client data size di (Eq. 9 inner
// term): Var[U(M_{S∪{i}}) − U(M_S)] = |Dᵢ|²σ².
func MCVarianceTerm(di int, sigma2 float64) float64 {
	return float64(di) * float64(di) * sigma2
}

// CCVarianceTerm returns the Theorem 2 per-sample variance of one CC-SV
// complementary-contribution estimate (Eq. 10 inner term):
// ((|D_S|+|Dᵢ|)² + (|D_N|−|D_S|−|Dᵢ|)²)σ².
func CCVarianceTerm(dS, di, dN int, sigma2 float64) float64 {
	a := float64(dS + di)
	b := float64(dN - dS - di)
	return (a*a + b*b) * sigma2
}

// VarianceGap returns the Theorem 2 lower bound on Var[CC] − Var[MC] for a
// single sampled coalition: |D_S|²σ² (Eq. 11 inner term), always ≥ 0 and
// strictly positive once |D_S| > 0.
func VarianceGap(dS int, sigma2 float64) float64 {
	return float64(dS) * float64(dS) * sigma2
}

// IPSSBudgetForKStar returns the smallest budget γ for which Alg. 3 selects
// the given k* on an n-client federation: Σ_{j=0..k*} C(n,j).
func IPSSBudgetForKStar(n, kstar int) uint64 {
	return combin.CumulativeBinomial(n, kstar)
}
