package theory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedshap/internal/model"
	"fedshap/internal/tensor"
)

func TestExpectedMSEBasics(t *testing.T) {
	// E[mse(d)] = muE·dim/(d−dim−1).
	if got := ExpectedMSE(12, 4, 1.0); math.Abs(got-4.0/7) > 1e-12 {
		t.Errorf("ExpectedMSE = %v, want %v", got, 4.0/7)
	}
	// Decreasing in d.
	prev := math.Inf(1)
	for d := 6; d <= 100; d += 5 {
		cur := ExpectedMSE(d, 4, 1.0)
		if cur > prev {
			t.Errorf("E[mse] not decreasing at d=%d", d)
		}
		prev = cur
	}
	// Undefined below dim+2.
	if !math.IsInf(ExpectedMSE(5, 4, 1.0), 1) {
		t.Errorf("E[mse] should be +Inf for d <= dim+1")
	}
}

// The Donahue–Kleinberg law matches empirical OLS on Gaussian data: the
// substrate really follows the model the paper's proofs assume.
func TestExpectedMSEMatchesEmpiricalOLS(t *testing.T) {
	dim := 3
	sigma := 0.5
	muE := sigma * sigma // noise variance = expected squared noise
	trainN := 40
	const trials = 300
	rng := rand.New(rand.NewSource(9))

	wTrue := make([]float64, dim)
	for j := range wTrue {
		wTrue[j] = rng.NormFloat64()
	}
	gen := func(n int) (*tensor.Matrix, []float64) {
		X := tensor.NewMatrix(n, dim)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < dim; j++ {
				v := rng.NormFloat64()
				X.Set(i, j, v)
				s += wTrue[j] * v
			}
			y[i] = s + rng.NormFloat64()*sigma
		}
		return X, y
	}

	var excess float64
	for trial := 0; trial < trials; trial++ {
		Xtr, ytr := gen(trainN)
		m := model.NewLinReg(dim)
		m.FitOLS(Xtr, ytr, 1e-9)
		Xte, yte := gen(500)
		mse := -model.NegMSEFloat(m, Xte, yte)
		excess += mse - sigma*sigma // subtract irreducible noise
	}
	excess /= trials
	want := ExpectedMSE(trainN, dim, muE)
	if math.Abs(excess-want) > 0.5*want {
		t.Errorf("empirical excess MSE %v, Donahue–Kleinberg predicts %v", excess, want)
	}
}

func TestLemmaOneValue(t *testing.T) {
	n, tt, dim := 5, 100, 4
	muE, m0 := 1.0, 2.0
	got := LemmaOneValue(n, tt, dim, muE, m0)
	want := (m0 - muE*float64(dim)/float64(n*tt-dim-1)) / float64(n)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("LemmaOneValue = %v, want %v", got, want)
	}
	// More total data → value per client approaches m0/n from below.
	if got >= m0/float64(n) {
		t.Errorf("value %v should be below m0/n = %v", got, m0/float64(n))
	}
}

func TestTruncatedValueApproachesLemmaOne(t *testing.T) {
	n, tt, dim := 10, 200, 4
	muE, m0 := 1.0, 2.0
	full := LemmaOneValue(n, tt, dim, muE, m0)
	prevGap := math.Inf(1)
	for kstar := 1; kstar <= n; kstar++ {
		trunc := TruncatedValue(n, tt, dim, kstar, muE, m0)
		gap := math.Abs(trunc - full)
		if gap > prevGap+1e-12 {
			t.Errorf("truncation gap not shrinking at k*=%d", kstar)
		}
		prevGap = gap
	}
	if prevGap > 1e-12 {
		t.Errorf("k*=n should recover Lemma 1 value; gap %v", prevGap)
	}
}

// Theorem 3: the actual relative truncation error is within the bound.
// The paper's derivation assumes the initialised model is worse than a
// model fitted on |x|+2 samples, i.e. m0 ≥ mse(|x|+2) = muE·|x| — the
// property test honours that assumption.
func TestTheoremThreeBoundHolds(t *testing.T) {
	muE := 1.0
	f := func(nRaw, tRaw, dRaw, kRaw uint8) bool {
		n := int(nRaw%12) + 3
		tt := int(tRaw%200) + 50
		dim := int(dRaw%6) + 1
		kstar := int(kRaw)%n + 1
		m0 := muE * float64(dim) * 1.5 // satisfies m0 ≥ muE·|x|
		if kstar*tt <= dim+1 {
			return true // bound undefined; nothing to check
		}
		full := LemmaOneValue(n, tt, dim, muE, m0)
		trunc := TruncatedValue(n, tt, dim, kstar, muE, m0)
		rel := math.Abs(trunc-full) / math.Abs(full)
		bound := TheoremThreeBound(n, tt, dim, kstar)
		// The derivation replaces m0 with mse(|x|+2) ≥ m0's lower bound,
		// so the bound must dominate the actual error.
		return rel <= bound+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTheoremThreeBoundShrinks(t *testing.T) {
	n, tt, dim := 10, 100, 4
	// Bound decreases in k*.
	prev := math.Inf(1)
	for k := 1; k <= n; k++ {
		b := TheoremThreeBound(n, tt, dim, k)
		if b > prev+1e-15 {
			t.Errorf("bound not decreasing at k*=%d", k)
		}
		prev = b
	}
	// Bound is zero at k* = n.
	if prev != 0 {
		t.Errorf("bound at k*=n is %v, want 0", prev)
	}
	// Bound decreases in t (more data per client → smaller error).
	if TheoremThreeBound(n, 1000, dim, 2) >= TheoremThreeBound(n, 100, dim, 2) {
		t.Errorf("bound should shrink with more per-client data")
	}
}

// Theorem 2: the CC variance term exceeds the MC variance term by at least
// the VarianceGap for every coalition configuration.
func TestTheoremTwoVarianceOrdering(t *testing.T) {
	f := func(dSRaw, diRaw, restRaw uint8, sigmaRaw uint8) bool {
		dS := int(dSRaw % 100)
		di := int(diRaw%100) + 1
		dN := dS + di + int(restRaw%100)
		sigma2 := float64(sigmaRaw%9+1) / 10
		mc := MCVarianceTerm(di, sigma2)
		cc := CCVarianceTerm(dS, di, dN, sigma2)
		gap := VarianceGap(dS, sigma2)
		return cc-mc >= gap-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIPSSBudgetForKStar(t *testing.T) {
	if got := IPSSBudgetForKStar(4, 1); got != 5 {
		t.Errorf("budget = %d, want 5", got)
	}
	if got := IPSSBudgetForKStar(10, 1); got != 11 {
		t.Errorf("budget = %d, want 11", got)
	}
}
