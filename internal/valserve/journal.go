package valserve

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fedshap"
	"fedshap/internal/resilience"
	"fedshap/internal/utility"
)

// Event type names, as streamed over GET /v1/jobs/{id}/events and
// recorded in the job journal. Each event carries a full JobStatus
// snapshot, so consumers (and crash replay) never need to reassemble
// state from deltas.
const (
	// EventSubmitted: the job entered the queue.
	EventSubmitted = "submitted"
	// EventRunning: a worker picked the job up.
	EventRunning = "running"
	// EventProgress: a fresh coalition evaluation completed (FreshEvals
	// advanced toward Budget).
	EventProgress = "progress"
	// EventDone / EventFailed / EventCancelled / EventTimedOut: terminal
	// transitions. The done snapshot includes the final Report.
	EventDone      = "done"
	EventFailed    = "failed"
	EventCancelled = "cancelled"
	EventTimedOut  = "timed_out"
	// EventValues: an interim anytime snapshot (Event.Values) from a job
	// running with Confidence set. Streamed over SSE, never journaled.
	EventValues = "values"
)

// eventTypeForState maps a lifecycle state to the event type describing
// it as a snapshot — the type watchers receive for the initial status
// event and the type compaction records live jobs under.
func eventTypeForState(s fedshap.JobState) string {
	switch s {
	case fedshap.JobQueued:
		return EventSubmitted
	case fedshap.JobRunning:
		return EventRunning
	case fedshap.JobDone:
		return EventDone
	case fedshap.JobFailed:
		return EventFailed
	case fedshap.JobCancelled:
		return EventCancelled
	case fedshap.JobTimedOut:
		return EventTimedOut
	}
	return EventProgress
}

// journalRecord is the JSONL schema of one journal line: the event type,
// the job it belongs to, the wall-clock write time, and a full status
// snapshot (request, fingerprint, budget, progress, and — for done jobs —
// the report). Replay is last-record-wins per job ID, which makes record
// ordering across concurrent writers irrelevant.
type journalRecord struct {
	Event  string             `json:"event"`
	ID     string             `json:"id"`
	At     time.Time          `json:"at"`
	Status *fedshap.JobStatus `json:"status"`
}

// Journal is the durable job log behind a Manager: an append-only JSONL
// file recording every submission, state transition, progress checkpoint
// and final report. Utilities live in the utility.Store; the journal is
// what turns them back into *jobs* after a restart — completed jobs
// reload their reports verbatim, interrupted jobs are requeued and start
// warm from the store, and cancelled or failed jobs stay terminal.
//
// Appends are best-effort on the job hot path: write errors are
// remembered and surfaced by Close rather than failing a valuation.
// Compact rewrites the file to one snapshot per surviving job (atomic
// temp-file rename), pruning the event history a long-lived daemon
// accumulates.
type Journal struct {
	path string
	file *utility.AppendFile

	// ProgressEvery throttles progress checkpoints per job: at most one
	// progress record per interval hits the disk (default 200ms).
	// Lifecycle transitions are never throttled. Replay does not depend
	// on progress records — they exist for post-mortem observability.
	ProgressEvery time.Duration

	// Fault, when set, is consulted before every append and rewrite —
	// the injectable seam tests and the chaos harness use to simulate a
	// full or failing disk. Set it before the journal is shared.
	Fault *resilience.Hook
	// OnError, when set, observes every write failure (under the journal
	// mutex — it must not call back into the journal). The valuation
	// service hooks it to flip into degraded, memory-only operation.
	OnError func(error)

	mu           sync.Mutex
	err          error
	lastProgress map[string]time.Time
}

// OpenJournal opens (creating parent directories if needed) the journal
// at path. The file itself is created on the first append.
func OpenJournal(path string) (*Journal, error) {
	if path == "" {
		return nil, errors.New("valserve: journal path is empty")
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Journal{
		path:          path,
		file:          utility.NewAppendFile(path),
		ProgressEvery: 200 * time.Millisecond,
		lastProgress:  make(map[string]time.Time),
	}, nil
}

// Path returns the journal's file path.
func (jl *Journal) Path() string { return jl.path }

// Size returns the journal's current size on disk in bytes (0 when the
// file doesn't exist yet) — the /metrics journal gauge an operator watches
// to decide whether compaction keeps up with event churn.
func (jl *Journal) Size() int64 {
	fi, err := os.Stat(jl.path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Append records one event. Progress events are throttled per job
// (ProgressEvery); everything else is written unconditionally. Errors are
// recorded and surfaced by Close — a failing disk must not fail jobs.
//
// The write happens under the journal mutex, fully serialised against
// Compact: an append can never slip between Compact's handle retirement
// and its atomic rename, where the record would land in the unlinked
// pre-compaction file and vanish.
func (jl *Journal) Append(event string, st *fedshap.JobStatus) {
	if jl == nil || st == nil {
		return
	}
	now := time.Now().UTC()
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if event == EventProgress && jl.ProgressEvery > 0 {
		if last, ok := jl.lastProgress[st.ID]; ok && now.Sub(last) < jl.ProgressEvery {
			return
		}
		jl.lastProgress[st.ID] = now
	}
	if st.State.Terminal() {
		delete(jl.lastProgress, st.ID)
	}
	err := jl.Fault.Check("journal.append")
	if err == nil {
		err = jl.file.Append(journalRecord{Event: event, ID: st.ID, At: now, Status: st})
	}
	if err != nil {
		if jl.err == nil {
			jl.err = err
		}
		if jl.OnError != nil {
			jl.OnError(err)
		}
	}
}

// Replay reads the whole journal and returns the last recorded status of
// every job, in first-appearance (submission) order. Malformed lines —
// torn tail writes from a crash — are skipped, as are records without a
// status snapshot.
func (jl *Journal) Replay() ([]*fedshap.JobStatus, error) {
	var order []string
	last := make(map[string]*fedshap.JobStatus)
	err := utility.ScanJSONL(jl.path, func(line []byte) {
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil || rec.Status == nil || rec.Status.ID == "" {
			return
		}
		if _, seen := last[rec.Status.ID]; !seen {
			order = append(order, rec.Status.ID)
		}
		last[rec.Status.ID] = rec.Status
	})
	if err != nil {
		return nil, err
	}
	out := make([]*fedshap.JobStatus, 0, len(order))
	for _, id := range order {
		out = append(out, last[id])
	}
	return out, nil
}

// Compact atomically rewrites the journal to exactly one snapshot record
// per job in live, dropping the event history and every job not listed
// (this is how TTL-expired jobs leave the journal). Like
// utility.Store.Compact, it assumes no other *process* is appending
// concurrently. Within this process, callers that compact while jobs are
// running must use CompactWith so the snapshots are collected under the
// journal mutex — Compact with a pre-collected list is only safe when no
// appender is live (startup, post-drain shutdown, tests).
func (jl *Journal) Compact(live []*fedshap.JobStatus) error {
	return jl.CompactWith(func() []*fedshap.JobStatus { return live })
}

// CompactWith is Compact with the live set collected *inside* the
// journal's critical section: appends are blocked while collect runs, so
// no event — in particular no terminal record, which would never be
// superseded by a later event — can land between the collection and the
// rewrite and be erased by a stale snapshot. Transitions always mutate
// job status before journaling it, so a blocked appender's state is
// already visible to collect and its record, appended after the rewrite,
// agrees with the compacted snapshot.
//
// collect must not append to or close this journal (deadlock); taking
// manager/job locks inside it is fine.
func (jl *Journal) CompactWith(collect func() []*fedshap.JobStatus) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.rewriteLocked(collect())
}

// Restore attempts one full snapshot rewrite and, on success, clears
// the journal's latched write error — the degraded-mode recovery probe.
// A successful rewrite re-journals every live job from scratch, so any
// records lost while the disk was failing are reconstructed; the stale
// error must not survive to Close once the file on disk is whole again.
func (jl *Journal) Restore(collect func() []*fedshap.JobStatus) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if err := jl.rewriteLocked(collect()); err != nil {
		return err
	}
	jl.err = nil
	return nil
}

// rewriteLocked replaces the journal with one snapshot per live job.
// Call with jl.mu held.
func (jl *Journal) rewriteLocked(live []*fedshap.JobStatus) error {
	if err := jl.Fault.Check("journal.rewrite"); err != nil {
		if jl.err == nil {
			jl.err = err
		}
		if jl.OnError != nil {
			jl.OnError(err)
		}
		return err
	}
	now := time.Now().UTC()
	rows := make([][]byte, 0, len(live))
	for _, st := range live {
		line, err := json.Marshal(journalRecord{
			Event:  eventTypeForState(st.State),
			ID:     st.ID,
			At:     now,
			Status: st,
		})
		if err != nil {
			continue
		}
		rows = append(rows, line)
	}
	// Retire the append handle before swapping the file underneath it;
	// the next Append reopens against the compacted journal.
	jl.file.Close()
	if err := utility.ReplaceJSONL(jl.path, rows); err != nil {
		if jl.err == nil {
			jl.err = err
		}
		if jl.OnError != nil {
			jl.OnError(err)
		}
		return err
	}
	return nil
}

// Close retires the append handle and returns the first write error
// encountered during the journal's lifetime.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	cerr := jl.file.Close()
	if jl.err != nil {
		return jl.err
	}
	return cerr
}
