// Package valserve is the valuation job service behind the fedvald daemon:
// a bounded worker pool executing valuation jobs (dataset family + model +
// federation size + algorithm, mirroring the fedval CLI) with cooperative
// cancellation, live progress against the sampling budget γ, and a
// persistent sharded utility cache keyed by problem fingerprint so
// resubmitted and follow-up jobs start warm.
//
// Utilities are the expensive asset — each is a full federated training
// run — so the service's whole design centres on never evaluating a
// coalition twice: the in-memory cache is sharded for the evaluation pool,
// the disk store survives the process (and is compacted on shutdown), and
// budget accounting (fresh evaluations) distinguishes new work from reuse.
//
// The service is durable: a Journal records every submission, state
// transition, progress checkpoint and final report as append-only JSONL.
// On restart the Manager replays it — completed jobs reload their reports
// verbatim, interrupted jobs are requeued and start warm from the utility
// store (coalitions evaluated before the crash cost nothing), and
// cancelled jobs stay terminal. A TTL sweep expires old jobs and compacts
// the journal. The same transition events feed per-job subscribers
// (Manager.Watch), which the HTTP layer exposes as Server-Sent Events on
// GET /v1/jobs/{id}/events.
//
// With an internal/evalnet coordinator configured, the service also scales
// one job's evaluations *out*: coalition training fans across a fleet of
// remote worker daemons (cmd/fedvalworker) through the oracle's evaluation
// seam, falling back to in-process evaluation while no workers are
// attached. See ARCHITECTURE.md at the repo root for the full layer map
// and OPERATIONS.md for the operator runbook.
package valserve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"fedshap"
	"fedshap/internal/dataset"
	"fedshap/internal/evalnet"
	"fedshap/internal/experiments"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// Normalize fills a request's defaulted fields in place (dataset family,
// model, scale, seed, synthetic setup, budget), so that equal jobs have
// equal wire forms and equal fingerprints.
func Normalize(req *fedshap.JobRequest) {
	req.Data = strings.ToLower(strings.TrimSpace(req.Data))
	req.Model = strings.ToLower(strings.TrimSpace(req.Model))
	req.Algorithm = strings.ToLower(strings.TrimSpace(req.Algorithm))
	req.Scale = strings.ToLower(strings.TrimSpace(req.Scale))
	req.Setup = strings.ToLower(strings.TrimSpace(req.Setup))
	if req.Data == "" {
		req.Data = "femnist"
	}
	if req.Model == "" {
		req.Model = "mlp"
	}
	if req.Algorithm == "" {
		req.Algorithm = "ipss"
	}
	if req.Scale == "" {
		req.Scale = "small"
	}
	if req.Data == "synthetic" && req.Setup == "" {
		req.Setup = string(experiments.SameSizeSameDist)
	}
	if req.Data != "synthetic" {
		req.Setup = ""
		req.Noise = 0
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Gamma == 0 {
		req.Gamma = experiments.GammaForN(req.N)
	}
	if req.K == 0 {
		req.K = 2
	}
	// A version vector of all zeros is the base problem: canonicalise it
	// to nil so it fingerprints (and compares) identically to a request
	// that never mentioned versions.
	for len(req.Versions) > 0 && req.Versions[len(req.Versions)-1] == 0 {
		req.Versions = req.Versions[:len(req.Versions)-1]
	}
	if len(req.Versions) == 0 {
		req.Versions = nil
	}
}

// Fingerprint derives the persistent-cache key of a request's underlying
// valuation problem. Only problem-defining fields participate: the
// algorithm, its budget and probe depth are properties of the sampler, not
// of the utility function, so an IPSS job warms a later exact job on the
// same federation. Normalize first.
func Fingerprint(req fedshap.JobRequest) string {
	canon := fmt.Sprintf("v1|data=%s|setup=%s|noise=%g|model=%s|n=%d|scale=%s|seed=%d",
		req.Data, req.Setup, req.Noise, req.Model, req.N, req.Scale, req.Seed)
	// Per-client dataset versions change the utility function, so they are
	// problem-defining. The base vector (all zeros) is normalised away and
	// keeps the historical canonical form — and therefore the cache
	// contents — of version-less requests.
	if len(req.Versions) > 0 {
		canon += "|vers="
		for i, v := range req.Versions {
			if i > 0 {
				canon += ","
			}
			canon += fmt.Sprint(v)
		}
	}
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:16])
}

// ParseModel maps a wire model name to the experiments model family.
func ParseModel(s string) (experiments.ModelKind, error) {
	switch strings.ToLower(s) {
	case "mlp":
		return experiments.MLP, nil
	case "cnn":
		return experiments.CNN, nil
	case "xgb":
		return experiments.XGB, nil
	case "logreg":
		return experiments.LogReg, nil
	case "deepmlp":
		return experiments.DeepMLP, nil
	default:
		return "", fmt.Errorf("unknown model %q", s)
	}
}

// ParseScale maps a wire scale name to the experiments substrate scale.
func ParseScale(s string) (experiments.Scale, error) {
	switch strings.ToLower(s) {
	case "", "small":
		return experiments.Small(), nil
	case "tiny":
		return experiments.Tiny(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q", s)
	}
}

// NewValuer builds the valuation algorithm named by a request (the same
// vocabulary as the fedval -alg flag).
func NewValuer(name string, gamma, k int) (shapley.Valuer, error) {
	switch strings.ToLower(name) {
	case "ipss":
		return shapley.NewIPSS(gamma), nil
	case "ipss-rescaled":
		return &shapley.IPSS{Gamma: gamma, RescaleSampledStratum: true}, nil
	case "exact", "mc":
		return shapley.ExactMC{}, nil
	case "perm":
		return shapley.ExactPerm{}, nil
	case "stratified-mc":
		return shapley.NewStratified(shapley.MC, gamma), nil
	case "stratified-cc":
		return shapley.NewStratified(shapley.CC, gamma), nil
	case "kgreedy":
		return &shapley.KGreedy{K: k}, nil
	case "tmc":
		return shapley.NewTMC(gamma), nil
	case "gtb":
		return shapley.NewGTB(gamma), nil
	case "ccshapley":
		return shapley.NewCCShapley(gamma), nil
	case "digfl":
		return shapley.DIGFL{}, nil
	case "or":
		return shapley.OR{}, nil
	case "lambdamr":
		return &shapley.LambdaMR{}, nil
	case "gtg":
		return &shapley.GTGShapley{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// exactFamily reports whether the algorithm enumerates the full power set.
func exactFamily(name string) bool {
	switch strings.ToLower(name) {
	case "exact", "mc", "perm":
		return true
	}
	return false
}

// maxExactN bounds the federation size the daemon accepts for power-set
// algorithms: beyond it, 2ⁿ trainings are infeasible for a service and the
// enumeration guards in combin would panic long before finishing.
const maxExactN = 25

// budgetFor resolves the progress denominator a job reports against: the
// sampling budget γ for budgeted algorithms, 2ⁿ for the exact family.
func budgetFor(req fedshap.JobRequest) int {
	if exactFamily(req.Algorithm) && req.N <= maxExactN {
		return 1 << uint(req.N)
	}
	return req.Gamma
}

// ValidateRequest checks a normalized request without building datasets.
// When lenientData is true the dataset/model vocabulary is not enforced
// (managers with an injected problem builder accept arbitrary families).
func ValidateRequest(req fedshap.JobRequest, lenientData bool) error {
	if req.N < 2 || req.N > 127 {
		return fmt.Errorf("n=%d out of range [2,127]", req.N)
	}
	if _, err := NewValuer(req.Algorithm, req.Gamma, req.K); err != nil {
		return err
	}
	if exactFamily(req.Algorithm) && req.N > maxExactN {
		return fmt.Errorf("algorithm %q enumerates 2^n coalitions; n=%d exceeds the service limit %d",
			req.Algorithm, req.N, maxExactN)
	}
	if req.Gamma < 0 {
		return fmt.Errorf("gamma=%d must be non-negative", req.Gamma)
	}
	if req.DeadlineSeconds < 0 || math.IsNaN(req.DeadlineSeconds) || math.IsInf(req.DeadlineSeconds, 0) {
		return fmt.Errorf("deadline_seconds=%g must be a non-negative finite number; 0 disables the deadline", req.DeadlineSeconds)
	}
	if req.Confidence < 0 || req.Confidence >= 1 {
		return fmt.Errorf("confidence=%g out of range [0,1); 0 disables anytime tracking", req.Confidence)
	}
	if req.RankStop {
		if req.Confidence == 0 {
			return fmt.Errorf("rank_stop requires confidence in (0,1)")
		}
		alg, _ := NewValuer(req.Algorithm, req.Gamma, req.K)
		if alg == nil || !shapley.PlanExhaustive(alg) {
			return fmt.Errorf("rank_stop requires an algorithm with a complete evaluation plan; %q exposes only a partial or utility-dependent plan", req.Algorithm)
		}
	}
	if len(req.Versions) > 0 {
		// Normalize trims trailing zeros, so a canonical vector may be
		// shorter than n — clients past its end are at version 0.
		if len(req.Versions) > req.N {
			return fmt.Errorf("versions has %d entries for n=%d clients", len(req.Versions), req.N)
		}
		for i, v := range req.Versions {
			if v < 0 {
				return fmt.Errorf("versions[%d]=%d must be non-negative", i, v)
			}
		}
	}
	if lenientData {
		return nil
	}
	if _, err := ParseScale(req.Scale); err != nil {
		return err
	}
	if _, err := ParseModel(req.Model); err != nil {
		return err
	}
	switch req.Data {
	case "femnist", "adult":
	case "synthetic":
		valid := false
		for _, s := range experiments.AllSyntheticSetups() {
			if req.Setup == string(s) {
				valid = true
			}
		}
		if !valid {
			return fmt.Errorf("unknown synthetic setup %q", req.Setup)
		}
	default:
		return fmt.Errorf("unknown dataset %q (the service accepts femnist | adult | synthetic)", req.Data)
	}
	return nil
}

// WorkerEval is the standard problem builder for a remote evaluation
// worker (cmd/fedvalworker): it rebuilds the spec's valuation problem from
// the normalized request — dataset generation and training are
// deterministic per seed, so the worker's utilities are bit-identical to
// the coordinator's — and evaluates through a fresh per-spec oracle, so
// coalitions the coordinator retries after a fleet change are served from
// the worker's own cache instead of retrained.
func WorkerEval(spec evalnet.ProblemSpec) (utility.EvalFunc, error) {
	return WorkerEvalWith(0)(spec)
}

// WorkerEvalWith is WorkerEval with client-level training parallelism:
// every coalition the worker evaluates trains its clients across
// trainWorkers concurrent slots (see fl.Config.Workers). Training is
// bit-identical at any value, so a mixed fleet still agrees on every
// utility. The right setting depends on the worker's -capacity: a worker
// evaluating one coalition at a time wants trainWorkers ≈ its core count,
// while capacity ≈ cores pairs with serial training.
func WorkerEvalWith(trainWorkers int) func(evalnet.ProblemSpec) (utility.EvalFunc, error) {
	build := WorkerEvaluatorWith(trainWorkers)
	return func(spec evalnet.ProblemSpec) (utility.EvalFunc, error) {
		ev, err := build(spec)
		return ev.Eval, err
	}
}

// WorkerEvaluatorWith is the standard problem builder for a remote
// evaluation worker (cmd/fedvalworker): like WorkerEvalWith, but it also
// exposes the per-spec oracle's Warm hook, so coordinator-shipped
// warm-start utilities land in the worker's cache and a recycled fleet
// never retrains a coalition the daemon already knows.
func WorkerEvaluatorWith(trainWorkers int) func(evalnet.ProblemSpec) (evalnet.Evaluator, error) {
	return func(spec evalnet.ProblemSpec) (evalnet.Evaluator, error) {
		req := spec.Request
		Normalize(&req)
		p, err := BuildProblem(req)
		if err != nil {
			return evalnet.Evaluator{}, err
		}
		if trainWorkers > 1 && p.Spec != nil {
			p.Spec.Config.Workers = trainWorkers
		}
		oracle := p.Oracle()
		return evalnet.Evaluator{Eval: oracle.U, Warm: oracle.Warm, Cached: oracle.Cached}, nil
	}
}

// BuildProblem constructs the valuation problem for a normalized request
// using the experiments constructors — the same problems the paper's
// tables are built from.
func BuildProblem(req fedshap.JobRequest) (*experiments.Problem, error) {
	sc, err := ParseScale(req.Scale)
	if err != nil {
		return nil, err
	}
	kind, err := ParseModel(req.Model)
	if err != nil {
		return nil, err
	}
	var p *experiments.Problem
	switch req.Data {
	case "femnist":
		p = experiments.NewFEMNISTProblem(req.N, kind, sc, req.Seed)
	case "adult":
		p = experiments.NewAdultProblem(req.N, kind, sc, req.Seed)
	case "synthetic":
		p = experiments.NewSyntheticProblem(experiments.SyntheticSetup(req.Setup), req.N, kind, sc, req.Noise, req.Seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q", req.Data)
	}
	applyVersions(p, req)
	return p, nil
}

// versionNoiseScale is the feature perturbation applied per client dataset
// version step — large enough to move the utility function, small enough
// that a revalued federation stays a perturbation of the base problem.
const versionNoiseScale = 0.05

// applyVersions perturbs each client dataset whose version is non-zero:
// version v replaces client i's data with a clone of the base dataset
// carrying feature noise seeded deterministically from (seed, i, v).
// Deterministic per (seed, client, version) means revaluation jobs rebuild
// bit-identical utility functions on every node — the worker fleet and
// the daemon agree on every coalition, and the fingerprint store stays
// coherent across restarts. Versions are not cumulative: v=2 is one
// perturbation with the v=2 stream, not two stacked perturbations, so any
// version is reachable directly.
func applyVersions(p *experiments.Problem, req fedshap.JobRequest) {
	if p == nil || p.Spec == nil || len(req.Versions) == 0 {
		return
	}
	for i, v := range req.Versions {
		if v <= 0 || i >= len(p.Spec.Clients) || p.Spec.Clients[i] == nil {
			continue
		}
		d := p.Spec.Clients[i].Clone()
		rng := rand.New(rand.NewSource(req.Seed ^ (int64(i)+1)*1_000_003 ^ int64(v)*8191))
		dataset.AddFeatureNoise(d, versionNoiseScale, rng)
		p.Spec.Clients[i] = d
	}
}
