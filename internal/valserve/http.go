package valserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"fedshap"
)

// NewHandler exposes a Manager as the fedvald JSON API:
//
//	POST   /v1/jobs             submit a job (fedshap.JobRequest → JobStatus)
//	GET    /v1/jobs             list jobs, newest first
//	GET    /v1/jobs/{id}        poll one job's status and progress
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream job events (Server-Sent Events)
//	GET    /v1/jobs/{id}/report fetch a finished job's valuation report
//	GET    /v1/workers          list attached remote evaluation workers
//	GET    /healthz             liveness probe
//
// Errors are returned as {"error": "..."} with a matching status code.
// See docs/api.md at the repo root for the full request/response schema.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req fedshap.JobRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		st, err := m.Submit(req)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			case errors.Is(err, ErrClosed):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Workers())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	// Server-Sent Events: an initial snapshot event, then every state
	// transition and progress checkpoint until the job terminates. Each
	// frame is "event: <type>" + "data: <JobStatus JSON>". The stream
	// closes itself after the terminal event; clients that lose it (proxy
	// timeout, daemon restart) fall back to polling GET /v1/jobs/{id}.
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		ch, cancel, err := m.Watch(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		defer cancel()
		fl, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for {
			select {
			case <-r.Context().Done():
				return // client went away
			case ev, ok := <-ch:
				if !ok {
					return // terminal event delivered
				}
				data, err := json.Marshal(ev.Status)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
				fl.Flush()
			}
		}
	})
	mux.HandleFunc("GET /v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		if st.Report == nil {
			writeError(w, http.StatusConflict, "job has no report yet: state="+string(st.State))
			return
		}
		writeJSON(w, http.StatusOK, st.Report)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
