package valserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fedshap"
)

// NewHandler exposes a Manager as the fedvald JSON API:
//
//	POST   /v1/jobs             submit a job (fedshap.JobRequest → JobStatus)
//	POST   /v1/jobs:batch       submit many jobs in one request (per-item admission)
//	GET    /v1/jobs             list jobs, newest first (?since=, ?limit= paginate)
//	GET    /v1/jobs/{id}        poll one job's status and progress
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/events stream job events (Server-Sent Events)
//	GET    /v1/jobs/{id}/report fetch a finished job's valuation report
//	GET    /v1/jobs/{id}/trace  fetch a job's trace timeline (spans)
//	POST   /v1/jobs/{id}/revalue submit a delta revaluation of a done job
//	GET    /v1/workers          list attached remote evaluation workers
//	GET    /metrics             operational snapshot (JSON; Prometheus text
//	                            with Accept: text/plain or ?format=prometheus)
//	GET    /healthz             liveness probe
//
// Errors are returned as {"error": "..."} with a matching status code.
// See docs/api.md at the repo root for the full request/response schema.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Degraded (memory-only persistence) is still 200: the daemon is
		// alive and serving jobs, and a restart would lose the in-memory
		// state a probe-driven restart loop is supposed to protect. The
		// body says so; alerting keys off the fedvald_degraded gauge.
		status := "ok"
		if m.Degraded() {
			status = "degraded"
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": status})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Content negotiation: the JSON snapshot stays the default for
		// humans and the CLI; a Prometheus scraper gets the text
		// exposition format by Accept header or explicit query.
		if r.URL.Query().Get("format") == "prometheus" ||
			strings.Contains(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_ = m.Registry().WriteText(w)
			return
		}
		writeJSON(w, http.StatusOK, m.Metrics())
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req fedshap.JobRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		st, err := m.Submit(req)
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				writeQueueFull(w, m, err)
			case errors.Is(err, ErrClosed):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	// Batch submission: one round trip for a burst of jobs. Admission is
	// per-item — the response aligns 1:1 with the request and mixes
	// accepted statuses with rejection messages — so load generators and
	// tenant onboarding bursts don't serialise on per-job round trips. The
	// whole batch is rejected (400/413) only when it is empty, oversized,
	// or unparsable.
	mux.HandleFunc("POST /v1/jobs:batch", func(w http.ResponseWriter, r *http.Request) {
		var batch fedshap.BatchRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&batch); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		if len(batch.Jobs) == 0 {
			writeError(w, http.StatusBadRequest, "empty batch: provide at least one job")
			return
		}
		if len(batch.Jobs) > fedshap.MaxBatchJobs {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch of %d jobs exceeds the limit %d", len(batch.Jobs), fedshap.MaxBatchJobs))
			return
		}
		statuses, errs := m.SubmitBatch(batch.Jobs)
		resp := fedshap.BatchResponse{Jobs: make([]fedshap.BatchItem, len(statuses))}
		for i := range statuses {
			if errs[i] != nil {
				resp.Jobs[i].Error = errs[i].Error()
				continue
			}
			resp.Jobs[i].Status = statuses[i]
			resp.Accepted++
		}
		writeJSON(w, http.StatusOK, &resp)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit := 0
		if raw := q.Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "invalid limit: "+raw)
				return
			}
			limit = n
		}
		jobs, err := m.ListSince(q.Get("since"), limit)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, jobs)
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Workers())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	// Server-Sent Events: an initial snapshot event, then every state
	// transition and progress checkpoint until the job terminates. Each
	// frame is "id: <seq>" + "event: <type>" + "data: <JobStatus JSON>".
	// Idle streams are kept alive with ": ping" heartbeat comments
	// (Config.SSEHeartbeat) so aggressive proxies don't cut them. A
	// reconnecting client sends Last-Event-ID with the last id it saw;
	// because every event carries a self-contained snapshot, resume is
	// simply skipping non-terminal events at or below that id — terminal
	// events are always delivered. The stream closes itself after the
	// terminal event; clients that lose it permanently fall back to
	// polling GET /v1/jobs/{id}.
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		ch, cancel, err := m.Watch(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		defer cancel()
		fl, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
			return
		}
		lastSeen, _ := strconv.ParseUint(r.Header.Get("Last-Event-ID"), 10, 64)
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		heartbeat := m.cfg.SSEHeartbeat
		if heartbeat == 0 {
			heartbeat = 15 * time.Second
		}
		var ping <-chan time.Time
		if heartbeat > 0 {
			t := time.NewTicker(heartbeat)
			defer t.Stop()
			ping = t.C
		}
		for {
			select {
			case <-r.Context().Done():
				return // client went away
			case <-ping:
				// An SSE comment: ignored by parsers, but traffic enough
				// to keep proxy idle-timeout clocks at zero.
				fmt.Fprint(w, ": ping\n\n")
				fl.Flush()
			case ev, ok := <-ch:
				if !ok {
					return // terminal event delivered
				}
				terminal := ev.Status != nil && ev.Status.State.Terminal()
				// The seed snapshot reflects the job's state *now*, which
				// may be newer than the event id it is stamped with, so
				// it is always delivered; so are terminal events. The
				// filter drops only genuinely stale intermediate events —
				// in practice ones from a previous daemon life.
				if !ev.Seed && !terminal && lastSeen > 0 && ev.Seq > 0 && ev.Seq <= lastSeen {
					continue
				}
				// Values events carry an InterimValues snapshot instead of
				// a JobStatus; everything else about the frame (id, resume
				// filtering above) is shared with lifecycle events.
				var payload any = ev.Status
				if ev.Values != nil {
					payload = ev.Values
				}
				data, err := json.Marshal(payload)
				if err != nil {
					continue
				}
				if ev.Seq > 0 {
					fmt.Fprintf(w, "id: %d\n", ev.Seq)
				}
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
				fl.Flush()
			}
		}
	})
	// Delta revaluation: bump the listed clients' dataset versions on a
	// completed job's problem and resubmit it. Utilities of coalitions
	// untouched by the change migrate to the new fingerprint first, so the
	// follow-up job spends fresh trainings only where the data actually
	// changed.
	mux.HandleFunc("POST /v1/jobs/{id}/revalue", func(w http.ResponseWriter, r *http.Request) {
		var req fedshap.RevalueRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
			return
		}
		st, err := m.Revalue(r.PathValue("id"), req.Changed)
		if err != nil {
			switch {
			case errors.Is(err, ErrNotFound):
				writeError(w, http.StatusNotFound, err.Error())
			case errors.Is(err, ErrNotRevaluable):
				writeError(w, http.StatusConflict, err.Error())
			case errors.Is(err, ErrQueueFull):
				writeQueueFull(w, m, err)
			case errors.Is(err, ErrClosed):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		tr, err := m.Trace(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, tr)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		if st.Report == nil {
			writeError(w, http.StatusConflict, "job has no report yet: state="+string(st.State))
			return
		}
		writeJSON(w, http.StatusOK, st.Report)
	})
	return mux
}

// writeQueueFull turns queue saturation into 429 Too Many Requests with a
// Retry-After hint derived from the observed queue drain rate, so clients
// back off for roughly one dequeue interval instead of hammering a full
// queue (503 is reserved for a daemon that is shutting down).
func writeQueueFull(w http.ResponseWriter, m *Manager, err error) {
	secs := int(m.SubmitRetryAfter() / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
