package valserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"fedshap"
	"fedshap/internal/experiments"
)

// TestSubmitBatchMixedAdmission drives POST /v1/jobs:batch end to end:
// valid jobs are admitted in order, invalid ones are rejected in place,
// and a queue at capacity rejects the overflow suffix without disturbing
// the admitted prefix.
func TestSubmitBatchMixedAdmission(t *testing.T) {
	gate := make(chan struct{})
	m, err := NewManager(Config{
		Workers:  1,
		QueueCap: 2,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			<-gate // hold the single worker so queued jobs stay queued
			return gameBuilder(0, nil)(req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate) // LIFO: release the held worker before Close drains the pool
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	client := fedshap.NewServiceClient(srv.URL)
	ctx := context.Background()

	ok := fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 4}
	bad := fedshap.JobRequest{N: 1, Algorithm: "ipss"} // n out of range
	// Queue capacity 2 (one job is picked up by the held worker, leaving a
	// slot): jobs 1, 2, 3 are admitted, the invalid job is rejected in
	// place, and job 5 overflows the queue.
	resp, err := client.SubmitBatch(ctx, []fedshap.JobRequest{ok, ok, ok, bad, ok})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 5 {
		t.Fatalf("batch answered %d items, want 5", len(resp.Jobs))
	}
	if resp.Accepted != 3 {
		t.Errorf("accepted = %d, want 3", resp.Accepted)
	}
	for i := 0; i < 3; i++ {
		if resp.Jobs[i].Status == nil || resp.Jobs[i].Error != "" {
			t.Errorf("item %d: status=%v error=%q, want accepted", i, resp.Jobs[i].Status, resp.Jobs[i].Error)
		}
	}
	if resp.Jobs[3].Status != nil || resp.Jobs[3].Error == "" {
		t.Errorf("invalid item accepted: %+v", resp.Jobs[3])
	}
	if resp.Jobs[4].Status != nil || resp.Jobs[4].Error == "" {
		t.Errorf("overflow item accepted: %+v", resp.Jobs[4])
	}
	// Admitted jobs are real: visible over the single-job API.
	for i := 0; i < 3; i++ {
		if _, err := client.Job(ctx, resp.Jobs[i].Status.ID); err != nil {
			t.Errorf("admitted job %d not found: %v", i, err)
		}
	}
}

// TestSubmitBatchRejectsMalformed covers the whole-batch rejections:
// empty batches, oversized batches and unparsable bodies.
func TestSubmitBatchRejectsMalformed(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs:batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if code := post([]byte(`{"jobs": []}`)); code != http.StatusBadRequest {
		t.Errorf("empty batch → HTTP %d, want 400", code)
	}
	if code := post([]byte(`{not json`)); code != http.StatusBadRequest {
		t.Errorf("malformed body → HTTP %d, want 400", code)
	}
	big := fedshap.BatchRequest{Jobs: make([]fedshap.JobRequest, fedshap.MaxBatchJobs+1)}
	raw, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	if code := post(raw); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch → HTTP %d, want 413", code)
	}
}
