package valserve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fedshap"
)

// submitQuickJobs submits n fast additive-game jobs and waits for all of
// them to finish, returning their IDs in submission (ordinal) order.
func submitQuickJobs(t *testing.T, m *Manager, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		st, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 3})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		waitState(t, m, id, terminal)
	}
	return ids
}

// TestListSinceTieBreakWalk forces every job onto one SubmittedAt
// timestamp and walks the list with the composite (SubmittedAt, ID)
// cursor: each page must continue exactly where the previous one ended,
// visiting every job exactly once — the tie-break the ID ordinal
// provides. A plain timestamp cursor over the same population returns
// nothing, which is why clients paginate by job ID.
func TestListSinceTieBreakWalk(t *testing.T) {
	m, err := NewManager(Config{Workers: 2, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ids := submitQuickJobs(t, m, 6)

	// Force the degenerate case pagination must survive: every job shares
	// one submission timestamp (same-instant burst submissions quantised
	// by clock resolution produce this for real).
	shared := time.Now().UTC().Truncate(time.Second)
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		j.status.SubmittedAt = shared
		j.mu.Unlock()
	}
	m.mu.Unlock()

	var visited []string
	cursor := ids[0]
	for {
		page, err := m.ListSince(cursor, 2)
		if err != nil {
			t.Fatalf("ListSince(%s): %v", cursor, err)
		}
		if len(page) == 0 {
			break
		}
		for _, st := range page {
			visited = append(visited, st.ID)
		}
		cursor = page[len(page)-1].ID
	}
	if len(visited) != len(ids)-1 {
		t.Fatalf("walk visited %d jobs %v, want the %d after %s", len(visited), visited, len(ids)-1, ids[0])
	}
	for i, id := range visited {
		if id != ids[i+1] {
			t.Errorf("walk position %d = %s, want %s (skip or repeat at a shared timestamp)", i, id, ids[i+1])
		}
	}

	// A timestamp-only cursor is strictly-after and excludes the whole
	// equal-timestamp cohort.
	page, err := m.ListSince(shared.Format(time.RFC3339Nano), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 0 {
		t.Errorf("timestamp cursor returned %d jobs from the equal-timestamp cohort, want 0", len(page))
	}
}

// TestListSinceLimitZero: limit 0 (and any non-positive limit) means "no
// limit", both from the manager API and over HTTP with ?limit=0.
func TestListSinceLimitZero(t *testing.T) {
	m, err := NewManager(Config{Workers: 2, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ids := submitQuickJobs(t, m, 4)

	all, err := m.ListSince("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ids) {
		t.Errorf("ListSince(\"\", 0) = %d jobs, want %d", len(all), len(ids))
	}
	after, err := m.ListSince(ids[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(ids)-1 {
		t.Errorf("ListSince(%s, 0) = %d jobs, want %d", ids[0], len(after), len(ids)-1)
	}

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs?limit=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("?limit=0 → HTTP %d, want 200", resp.StatusCode)
	}
}

// TestListSinceExpiredCursor: a cursor job that the TTL sweep collected
// is an unknown ID — ErrNotFound from the manager, 404 over HTTP — not a
// silent restart-from-the-beginning, which would make a poller re-emit
// every retained job.
func TestListSinceExpiredCursor(t *testing.T) {
	m, err := NewManager(Config{
		Workers:      2,
		JobTTL:       20 * time.Millisecond,
		GCInterval:   time.Hour, // sweep manually
		BuildProblem: gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ids := submitQuickJobs(t, m, 2)

	time.Sleep(40 * time.Millisecond) // let both finished jobs pass their TTL
	if n := m.SweepExpired(); n != 2 {
		t.Fatalf("SweepExpired() = %d, want 2", n)
	}
	// Fresh traffic after the sweep: the list is non-empty, so a 404 below
	// is about the cursor, not an empty daemon.
	fresh := submitQuickJobs(t, m, 1)

	if _, err := m.ListSince(ids[0], 0); err != ErrNotFound {
		t.Errorf("ListSince(expired id) = %v, want ErrNotFound", err)
	}

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs?since=" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("?since=<expired> → HTTP %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs?since=" + fresh[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("?since=<live> → HTTP %d, want 200", resp.StatusCode)
	}
}

// TestListSinceCursorParsing is the table-driven contract for how the
// since string is interpreted: empty means "newest first, truncated to
// limit"; a string that parses as RFC3339(Nano) is a strictly-after time
// cutoff; anything else is a job ID, and an unknown one is ErrNotFound —
// malformed timestamps deliberately fall into the job-ID branch rather
// than being guessed at, so a client typo surfaces as a 404 instead of a
// silently-empty page.
func TestListSinceCursorParsing(t *testing.T) {
	m, err := NewManager(Config{Workers: 2, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ids := submitQuickJobs(t, m, 4)

	t.Run("empty since truncates newest-first", func(t *testing.T) {
		page, err := m.ListSince("", 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) != 2 || page[0].ID != ids[3] || page[1].ID != ids[2] {
			got := make([]string, len(page))
			for i, st := range page {
				got[i] = st.ID
			}
			t.Errorf("ListSince(\"\", 2) = %v, want [%s %s]", got, ids[3], ids[2])
		}
	})

	t.Run("malformed timestamps are unknown job IDs", func(t *testing.T) {
		for _, since := range []string{
			"not-a-time",
			"2026-13-45T99:99:99Z", // RFC3339 shape, impossible fields
			"2026-08-08",           // date only
			"2026-08-08T10:00:00",  // missing zone
			"2026-08-08 10:00:00Z", // space instead of T
			"1754640000",           // unix seconds
		} {
			if _, err := m.ListSince(since, 0); err != ErrNotFound {
				t.Errorf("ListSince(%q) = %v, want ErrNotFound", since, err)
			}
		}
	})

	t.Run("valid time cutoffs", func(t *testing.T) {
		past := time.Now().Add(-time.Hour).UTC().Format(time.RFC3339Nano)
		all, err := m.ListSince(past, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != len(ids) {
			t.Fatalf("ListSince(past) = %d jobs, want %d", len(all), len(ids))
		}
		// Time-cursor pages come back oldest first, the order a poller
		// replays them in.
		for i, st := range all {
			if st.ID != ids[i] {
				t.Errorf("position %d = %s, want %s", i, st.ID, ids[i])
			}
		}
		future := time.Now().Add(time.Hour).UTC().Format(time.RFC3339)
		none, err := m.ListSince(future, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(none) != 0 {
			t.Errorf("ListSince(future) = %d jobs, want 0", len(none))
		}
	})
}
