package valserve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fedshap"
)

// FuzzJournalReplay crash-tests journal recovery: a healthy journal with
// a few real lifecycle records gets its tail truncated at an arbitrary
// byte offset and arbitrary bytes appended — the on-disk states a crashed
// daemon or a bad disk leaves behind. Replay must never panic or error,
// and must return exactly what a line-by-line reference read of the
// corrupted file yields: every intact record honoured (last one per job
// wins), every torn or garbage line skipped. In particular, records
// *before* the corruption point always survive.
func FuzzJournalReplay(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(10), []byte("garbage tail"))
	f.Add(uint16(1<<15), []byte("{\"event\":\"submitted\",\"id\":\"j0009-ff\"}"))
	f.Add(uint16(40), []byte{0x00, 0xff, '\n', '{', '}'})
	f.Add(uint16(1<<15), []byte("{\"event\":\"done\",\"id\":\"jx\",\"status\":{\"id\":\"jx\",\"state\":\"done\"}}\n"))

	f.Fuzz(func(t *testing.T, cut uint16, tail []byte) {
		if len(tail) >= 1<<20 {
			t.Skip("oversized lines are out of the scan contract")
		}
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		jl, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Now().UTC()
		for i, state := range []fedshap.JobState{fedshap.JobQueued, fedshap.JobRunning, fedshap.JobDone} {
			st := &fedshap.JobStatus{
				ID:          []string{"j0001-aa", "j0002-bb", "j0001-aa"}[i],
				State:       state,
				SubmittedAt: now,
			}
			jl.Append(eventTypeForState(state), st)
		}
		if err := jl.Close(); err != nil {
			t.Fatal(err)
		}

		// Corrupt: truncate at cut (clamped into the file), then append
		// the fuzzed tail verbatim.
		content, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		c := int(cut)
		if c > len(content) {
			c = len(content)
		}
		corrupted := append(append([]byte(nil), content[:c]...), tail...)
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}

		jl2, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer jl2.Close()
		got, err := jl2.Replay()
		if err != nil {
			t.Fatalf("Replay on corrupted journal: %v", err)
		}

		// Reference: independent line split + unmarshal with the same
		// skip rule Replay documents.
		wantLast := make(map[string]fedshap.JobState)
		var wantOrder []string
		for _, line := range bytes.Split(corrupted, []byte("\n")) {
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil || rec.Status == nil || rec.Status.ID == "" {
				continue
			}
			if _, seen := wantLast[rec.Status.ID]; !seen {
				wantOrder = append(wantOrder, rec.Status.ID)
			}
			wantLast[rec.Status.ID] = rec.Status.State
		}
		if len(got) != len(wantOrder) {
			t.Fatalf("replayed %d jobs, reference has %d (%v)", len(got), len(wantOrder), wantOrder)
		}
		for i, st := range got {
			if st.ID != wantOrder[i] {
				t.Fatalf("job %d replayed as %s, reference order %v", i, st.ID, wantOrder)
			}
			if st.State != wantLast[st.ID] {
				t.Fatalf("job %s replayed in state %s, reference %s", st.ID, st.State, wantLast[st.ID])
			}
		}
	})
}
