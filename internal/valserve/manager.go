package valserve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"fedshap"
	"fedshap/internal/evalnet"
	"fedshap/internal/experiments"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// Config tunes a Manager.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2).
	// Each job additionally parallelises its own coalition evaluations.
	Workers int
	// EvalWorkers bounds one job's concurrent coalition evaluations when
	// the request doesn't say (0 = GOMAXPROCS). An explicit value is a
	// hard cap: the evaluation pool is then never widened to an attached
	// worker fleet's capacity.
	EvalWorkers int
	// QueueCap bounds pending jobs; Submit fails when full (default 64).
	QueueCap int
	// CacheDir roots the persistent utility store; "" disables
	// persistence.
	CacheDir string
	// BuildProblem overrides problem construction. Tests inject synthetic
	// games; nil uses the experiments constructors (and strict dataset
	// validation).
	BuildProblem func(req fedshap.JobRequest) (*experiments.Problem, error)
	// Coordinator, when set, fans each job's coalition evaluations out
	// across its remote worker fleet (cmd/fedvalworker daemons). Jobs fall
	// back to in-process evaluation while no workers are attached.
	Coordinator *evalnet.Coordinator
}

// Job is one tracked valuation job. All mutation goes through its methods;
// external readers get immutable snapshots.
type Job struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	status fedshap.JobStatus
}

// snapshot returns a copy safe to serialise concurrently with updates.
func (j *Job) snapshot() *fedshap.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	if j.status.StartedAt != nil {
		t := *j.status.StartedAt
		st.StartedAt = &t
	}
	if j.status.FinishedAt != nil {
		t := *j.status.FinishedAt
		st.FinishedAt = &t
	}
	return &st
}

// markRunning moves queued → running, reporting false if the job was
// cancelled while waiting. A context cancelled before start (Manager.Close)
// terminates the job here, before any expensive problem construction.
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State != fedshap.JobQueued {
		return false
	}
	now := time.Now().UTC()
	if j.ctx.Err() != nil {
		j.status.State = fedshap.JobCancelled
		j.status.Error = "cancelled before start"
		j.status.FinishedAt = &now
		return false
	}
	j.status.State = fedshap.JobRunning
	j.status.StartedAt = &now
	return true
}

// setFresh records progress from the oracle's evaluation hook; the counter
// is monotone even under concurrent evaluation workers.
func (j *Job) setFresh(total int) {
	j.mu.Lock()
	if total > j.status.FreshEvals {
		j.status.FreshEvals = total
	}
	j.mu.Unlock()
}

func (j *Job) setWarmed(n int) {
	j.mu.Lock()
	j.status.WarmedCoalitions = n
	j.mu.Unlock()
}

func (j *Job) setProblem(name string) {
	j.mu.Lock()
	j.status.Problem = name
	j.mu.Unlock()
}

func (j *Job) setRemoteWorkers(n int) {
	j.mu.Lock()
	j.status.RemoteWorkers = n
	j.mu.Unlock()
}

// finish moves the job to a terminal state.
func (j *Job) finish(state fedshap.JobState, errMsg string, report *fedshap.Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.State.Terminal() {
		return
	}
	now := time.Now().UTC()
	j.status.State = state
	j.status.Error = errMsg
	j.status.Report = report
	j.status.FinishedAt = &now
}

// Manager queues, executes, observes and cancels valuation jobs over a
// bounded worker pool and a shared persistent utility store.
type Manager struct {
	cfg   Config
	store *utility.Store
	queue chan *Job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool
}

// ErrQueueFull is returned by Submit when the pending queue is at capacity.
var ErrQueueFull = errors.New("valserve: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("valserve: manager closed")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("valserve: job not found")

// NewManager opens the persistent store (if configured) and starts the
// worker pool.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	m := &Manager{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueCap),
		jobs:  make(map[string]*Job),
	}
	if cfg.CacheDir != "" {
		st, err := utility.OpenStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		m.store = st
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m, nil
}

// Store exposes the persistent utility store (nil when persistence is
// disabled), for inspection and tests.
func (m *Manager) Store() *utility.Store { return m.store }

// Workers lists the attached remote evaluation workers; empty when no
// coordinator is configured or no worker has dialled in.
func (m *Manager) Workers() []fedshap.WorkerInfo {
	if m.cfg.Coordinator == nil {
		return []fedshap.WorkerInfo{}
	}
	return m.cfg.Coordinator.Workers()
}

// newID mints a unique job identifier: a submission ordinal plus random
// suffix.
func (m *Manager) newID() string {
	var b [4]byte
	_, _ = rand.Read(b[:])
	m.seq++
	return fmt.Sprintf("j%04d-%s", m.seq, hex.EncodeToString(b[:]))
}

// Submit validates, registers and enqueues a job, returning its initial
// status.
func (m *Manager) Submit(req fedshap.JobRequest) (*fedshap.JobStatus, error) {
	Normalize(&req)
	if err := ValidateRequest(req, m.cfg.BuildProblem != nil); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{ctx: ctx, cancel: cancel}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	j.status = fedshap.JobStatus{
		ID:          m.newID(),
		State:       fedshap.JobQueued,
		Request:     req,
		Fingerprint: Fingerprint(req),
		Budget:      budgetFor(req),
		SubmittedAt: time.Now().UTC(),
	}
	m.jobs[j.status.ID] = j
	var enqueued bool
	select {
	case m.queue <- j:
		enqueued = true
	default:
	}
	if !enqueued {
		delete(m.jobs, j.status.ID)
	}
	m.mu.Unlock()
	if !enqueued {
		cancel()
		return nil, ErrQueueFull
	}
	return j.snapshot(), nil
}

// Get returns the status of one job.
func (m *Manager) Get(id string) (*fedshap.JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns every job, newest submission first.
func (m *Manager) List() []*fedshap.JobStatus {
	m.mu.Lock()
	out := make([]*fedshap.JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.After(out[b].SubmittedAt)
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// Cancel stops a job: a queued job terminates immediately, a running job
// stops before its next fresh coalition evaluation (already-cached
// utilities may still be read). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*fedshap.JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	if j.status.State == fedshap.JobQueued {
		now := time.Now().UTC()
		j.status.State = fedshap.JobCancelled
		j.status.Error = "cancelled while queued"
		j.status.FinishedAt = &now
	}
	j.mu.Unlock()
	j.cancel()
	return j.snapshot(), nil
}

// Close cancels every live job, drains the workers, compacts the
// persistent store (dropping superseded JSONL lines accumulated over the
// daemon's lifetime) and closes it.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	close(m.queue)
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	m.wg.Wait()
	if m.store != nil {
		_, _, cerr := m.store.CompactAll()
		return errors.Join(cerr, m.store.Close())
	}
	return nil
}

// buildProblem dispatches to the injected builder or the experiments
// constructors.
func (m *Manager) buildProblem(req fedshap.JobRequest) (*experiments.Problem, error) {
	if m.cfg.BuildProblem != nil {
		return m.cfg.BuildProblem(req)
	}
	return BuildProblem(req)
}

// runJob executes one job on the worker pool. Algorithm or substrate
// panics become job failures, not daemon crashes.
func (m *Manager) runJob(j *Job) {
	if !j.markRunning() {
		return // cancelled while queued
	}
	defer j.cancel()
	defer func() {
		if r := recover(); r != nil {
			j.finish(fedshap.JobFailed, fmt.Sprintf("panic: %v", r), nil)
		}
	}()

	req := j.snapshot().Request
	alg, err := NewValuer(req.Algorithm, req.Gamma, req.K)
	if err != nil {
		j.finish(fedshap.JobFailed, err.Error(), nil)
		return
	}
	p, err := m.buildProblem(req)
	if err != nil {
		j.finish(fedshap.JobFailed, err.Error(), nil)
		return
	}
	j.setProblem(p.Name)

	oracle := p.Oracle()
	if m.store != nil {
		warmed, err := m.store.Attach(oracle, j.snapshot().Fingerprint)
		if err != nil {
			j.finish(fedshap.JobFailed, err.Error(), nil)
			return
		}
		j.setWarmed(warmed)
	}
	oracle.OnEval(j.setFresh)

	// Evaluate the algorithm's deterministic plan on the job's evaluation
	// pool first; the sequential valuation pass then runs against a warm
	// cache. Cancellation mid-prefetch falls through to shapley.Run, which
	// reports it uniformly.
	evalWorkers := req.Workers
	if evalWorkers <= 0 {
		evalWorkers = m.cfg.EvalWorkers
	}
	if evalWorkers <= 0 {
		evalWorkers = runtime.GOMAXPROCS(0)
	}

	// With a coordinator configured, swap the oracle's evaluation function
	// for a distributed session: coalitions dispatch to remote workers and
	// results flow back through the same cache, budget accounting and
	// write-through. The session is registered even when the fleet is
	// momentarily empty — evaluations then run through the local fallback,
	// and workers that dial in mid-job are picked up. The pool is widened
	// to the fleet's aggregate capacity (Eval blocks while a worker
	// trains, so pool slots, not CPUs, keep the fleet busy) unless the
	// request or the daemon set an explicit worker limit, which stays an
	// upper bound on the job's concurrency wherever it runs.
	if c := m.cfg.Coordinator; c != nil {
		snap := j.snapshot()
		spec := evalnet.ProblemSpec{
			ID:          snap.ID,
			Fingerprint: snap.Fingerprint,
			N:           p.N,
			Request:     req,
		}
		localLimit := evalWorkers
		var sess *evalnet.Session
		oracle.WrapEval(func(local utility.EvalFunc) utility.EvalFunc {
			sess = c.NewSession(j.ctx, spec, local, localLimit)
			return sess.Eval
		})
		defer sess.Close()
		j.setRemoteWorkers(c.WorkerCount())
		if cap := c.TotalCapacity(); req.Workers <= 0 && m.cfg.EvalWorkers <= 0 && cap > evalWorkers {
			evalWorkers = cap
		}
	}
	if pf, ok := alg.(shapley.Prefetchable); ok && evalWorkers > 1 {
		_ = oracle.Prefetch(j.ctx, pf.PrefetchPlan(p.N), evalWorkers)
	}

	// The algorithm runs against a per-job budget view, not the raw
	// oracle: budget-gated samplers loop on Evals() < γ, and warmed
	// entries deliberately don't count as fresh evaluations — without the
	// view, a warm cache would make such a sampler draw far past its
	// budget over cached lookups. The view charges every distinct
	// coalition this run requests (warm or fresh), exactly as a fresh
	// oracle would, while FreshEvals/Report keep counting only real
	// training work.
	start := time.Now()
	view := utility.NewRunView(oracle)
	sctx := shapley.NewContext(view, req.Seed+2).WithSpec(p.Spec).WithContext(j.ctx)
	values, err := shapley.Run(sctx, alg)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			j.finish(fedshap.JobCancelled, err.Error(), nil)
		} else {
			j.finish(fedshap.JobFailed, err.Error(), nil)
		}
		return
	}
	names := make([]string, p.N)
	for i := range names {
		names[i] = fmt.Sprintf("client-%d", i)
	}
	j.finish(fedshap.JobDone, "", &fedshap.Report{
		Algorithm:   alg.Name(),
		Values:      values,
		Names:       names,
		Seconds:     elapsed,
		Evaluations: oracle.Evals(),
	})
}
