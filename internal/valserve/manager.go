package valserve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/evalnet"
	"fedshap/internal/experiments"
	"fedshap/internal/obs"
	"fedshap/internal/resilience"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// Config tunes a Manager.
type Config struct {
	// Workers is the number of jobs executed concurrently (default 2).
	// Each job additionally parallelises its own coalition evaluations.
	Workers int
	// EvalWorkers bounds one job's concurrent coalition evaluations when
	// the request doesn't say (0 = GOMAXPROCS). An explicit value is a
	// hard cap: the evaluation pool is then never widened to an attached
	// worker fleet's capacity.
	EvalWorkers int
	// TrainWorkers parallelises per-client local training inside each
	// FedAvg round of every coalition evaluation (client-level
	// parallelism; see fl.Config.Workers). Training is bit-identical at
	// any value. <= 1 trains clients serially — the right default when
	// EvalWorkers already saturates the cores; raise it instead of
	// EvalWorkers for jobs that evaluate few coalitions over many
	// clients.
	TrainWorkers int
	// QueueCap bounds pending jobs; Submit fails when full (default 64).
	QueueCap int
	// AdmitWatermark, when in (0, 1), lowers the admission bound below
	// QueueCap: submissions are rejected with ErrQueueFull once the queue
	// reaches AdmitWatermark × QueueCap, keeping headroom for recovery
	// requeues and revaluation follow-ups. 0 (and 1) admit up to the full
	// capacity.
	AdmitWatermark float64
	// CacheDir roots the persistent utility store; "" disables
	// persistence.
	CacheDir string
	// JournalPath names the durable job journal (append-only JSONL; see
	// Journal). On startup the journal is replayed: completed jobs
	// reload their reports, interrupted jobs are requeued and start warm
	// from the utility store. "" disables durability — jobs and reports
	// are lost on restart. The journal must not live inside CacheDir
	// with a .jsonl extension, or store compaction would rewrite it.
	JournalPath string
	// JobTTL expires terminal jobs this long after they finish: expired
	// jobs disappear from the API and are pruned from the journal on the
	// next compaction. 0 keeps finished jobs forever.
	JobTTL time.Duration
	// GCInterval is how often the TTL sweep runs (default 1 minute;
	// only meaningful with JobTTL > 0).
	GCInterval time.Duration
	// CompactEvery, when > 0, runs a background compaction sweep on that
	// interval: the persistent store's fingerprint files and the job
	// journal are rewritten to one record per coalition/job, so a
	// long-lived or crash-prone daemon stops accumulating duplicate
	// records unboundedly. Off by default (0): compaction then runs only
	// at startup replay and shutdown. Periodic compaction assumes this
	// daemon is the only process appending to the cache directory.
	CompactEvery time.Duration
	// SSEHeartbeat is the idle-stream heartbeat interval for
	// GET /v1/jobs/{id}/events: a ": ping" SSE comment is written whenever
	// the stream has been quiet this long, so aggressive proxies don't
	// kill idle connections. 0 selects the 15s default; < 0 disables
	// heartbeats.
	SSEHeartbeat time.Duration
	// BuildProblem overrides problem construction. Tests inject synthetic
	// games; nil uses the experiments constructors (and strict dataset
	// validation).
	BuildProblem func(req fedshap.JobRequest) (*experiments.Problem, error)
	// Coordinator, when set, fans each job's coalition evaluations out
	// across its remote worker fleet (cmd/fedvalworker daemons). Jobs fall
	// back to in-process evaluation while no workers are attached.
	Coordinator *evalnet.Coordinator
	// Fault, when set, is installed as the journal's and store's fault
	// hook — the injectable seam unit tests and the chaos harness use to
	// fail persistence writes on demand (see internal/resilience.Hook and
	// the FEDVALD_FAULT_FILE switch in cmd/fedvald).
	Fault *resilience.Hook
	// DegradedProbeEvery is how often a degraded manager re-probes
	// persistence: each probe rewrites the journal from live state and
	// flushes the store's pending-write buffer, clearing the degraded
	// flag once both succeed (default 1s).
	DegradedProbeEvery time.Duration
	// Logger receives structured job-lifecycle logs (submissions,
	// transitions, terminal outcomes) with job-ID correlation; nil
	// discards them.
	Logger *slog.Logger
}

// Job is one tracked valuation job. All mutation goes through its methods;
// external readers get immutable snapshots.
type Job struct {
	ctx    context.Context
	cancel context.CancelFunc

	// notify fans a transition event (with its snapshot) into the
	// journal and the event hub. Set once, before the job is visible to
	// workers or watchers; nil in bare tests.
	notify func(event string, st *fedshap.JobStatus)

	// tel is the manager's instrument set and trace the job's span
	// timeline (GET /v1/jobs/{id}/trace); both nil in bare tests, and
	// trace nil for terminal jobs restored from a previous life's
	// journal. queueSpan is the open queue-wait span between enqueue and
	// pickup; enqueuedAt anchors the queue-wait and end-to-end duration
	// histograms to *this* life's enqueue time, so a job requeued by
	// crash recovery doesn't report its pre-crash age as queue wait.
	tel        *telemetry
	trace      *obs.Trace
	queueSpan  *obs.SpanHandle
	enqueuedAt time.Time

	// emitMu serialises [mutate status + emit event] as one unit, so
	// journal records and hub events are appended in the same order the
	// transitions happened — without it, a stale non-terminal snapshot
	// could land after the terminal record and a replay would resurrect
	// a finished job. Lock order: emitMu before mu (readers take only mu).
	emitMu sync.Mutex

	mu            sync.Mutex
	status        fedshap.JobStatus
	userCancelled bool // Cancel() was called: terminal across restarts
}

// snapshotLocked copies the status; the caller holds j.mu.
func (j *Job) snapshotLocked() *fedshap.JobStatus {
	st := j.status
	if j.status.StartedAt != nil {
		t := *j.status.StartedAt
		st.StartedAt = &t
	}
	if j.status.FinishedAt != nil {
		t := *j.status.FinishedAt
		st.FinishedAt = &t
	}
	return &st
}

// snapshot returns a copy safe to serialise concurrently with updates.
func (j *Job) snapshot() *fedshap.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// emit publishes one event; callers hold emitMu but never j.mu (notify
// re-enters no job locks).
func (j *Job) emit(event string, st *fedshap.JobStatus) {
	if j.notify != nil {
		j.notify(event, st)
	}
}

// markRunning moves queued → running, reporting false if the job was
// cancelled while waiting. A context cancelled before start (Manager.Close)
// terminates the job here, before any expensive problem construction.
func (j *Job) markRunning() bool {
	j.emitMu.Lock()
	defer j.emitMu.Unlock()
	j.mu.Lock()
	if j.status.State != fedshap.JobQueued {
		j.mu.Unlock()
		return false
	}
	now := time.Now().UTC()
	if j.ctx.Err() != nil {
		j.status.State = fedshap.JobCancelled
		j.status.Error = "cancelled before start"
		j.status.FinishedAt = &now
		st := j.snapshotLocked()
		j.mu.Unlock()
		j.observeTerminal(fedshap.JobCancelled, now)
		j.emit(EventCancelled, st)
		return false
	}
	j.status.State = fedshap.JobRunning
	j.status.StartedAt = &now
	st := j.snapshotLocked()
	j.mu.Unlock()
	j.queueSpan.End()
	if j.tel != nil && !j.enqueuedAt.IsZero() {
		j.tel.queueWait.Observe(now.Sub(j.enqueuedAt).Seconds())
	}
	j.emit(EventRunning, st)
	return true
}

// observeTerminal feeds a terminal transition into telemetry: the
// trailing trace event, the completion counter for the outcome, and the
// end-to-end duration histogram. Called once per terminal transition,
// after j.mu is released.
func (j *Job) observeTerminal(state fedshap.JobState, now time.Time) {
	j.queueSpan.End()
	j.trace.Event("report", "daemon", "state", string(state))
	if j.tel == nil {
		return
	}
	switch state {
	case fedshap.JobDone:
		j.tel.jobsDone.Inc()
	case fedshap.JobFailed:
		j.tel.jobsFailed.Inc()
	case fedshap.JobCancelled:
		j.tel.jobsCancelled.Inc()
	case fedshap.JobTimedOut:
		j.tel.jobsTimedOut.Inc()
	}
	if !j.enqueuedAt.IsZero() {
		j.tel.jobDuration.Observe(now.Sub(j.enqueuedAt).Seconds())
	}
}

// setFresh records progress from the oracle's evaluation hook; the counter
// is monotone even under concurrent evaluation workers.
func (j *Job) setFresh(total int) {
	j.emitMu.Lock()
	defer j.emitMu.Unlock()
	j.mu.Lock()
	if total <= j.status.FreshEvals || j.status.State.Terminal() {
		j.mu.Unlock()
		return
	}
	delta := total - j.status.FreshEvals
	j.status.FreshEvals = total
	st := j.snapshotLocked()
	j.mu.Unlock()
	if j.tel != nil {
		j.tel.evalsFresh.Add(int64(delta))
	}
	j.emit(EventProgress, st)
}

func (j *Job) setWarmed(n int) {
	j.mu.Lock()
	j.status.WarmedCoalitions = n
	j.mu.Unlock()
	if j.tel != nil {
		j.tel.evalsWarmed.Add(int64(n))
	}
}

func (j *Job) setProblem(name string) {
	j.mu.Lock()
	j.status.Problem = name
	j.mu.Unlock()
}

func (j *Job) setRemoteWorkers(n int) {
	j.mu.Lock()
	j.status.RemoteWorkers = n
	j.mu.Unlock()
}

// finish moves the job to a terminal state.
func (j *Job) finish(state fedshap.JobState, errMsg string, report *fedshap.Report) {
	j.emitMu.Lock()
	defer j.emitMu.Unlock()
	j.mu.Lock()
	if j.status.State.Terminal() {
		j.mu.Unlock()
		return
	}
	now := time.Now().UTC()
	j.status.State = state
	j.status.Error = errMsg
	j.status.Report = report
	j.status.FinishedAt = &now
	st := j.snapshotLocked()
	j.mu.Unlock()
	j.observeTerminal(state, now)
	j.emit(eventTypeForState(state), st)
}

// wasUserCancelled reports whether Cancel was explicitly requested for
// this job — the one kind of interruption that stays terminal across a
// daemon restart.
func (j *Job) wasUserCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancelled
}

// Manager queues, executes, observes and cancels valuation jobs over a
// bounded worker pool, a shared persistent utility store, and (when
// configured) a durable job journal that survives daemon restarts.
type Manager struct {
	cfg         Config
	store       *utility.Store
	journal     *Journal
	hub         *eventHub
	tel         *telemetry
	logger      *slog.Logger
	queue       chan *Job
	wg          sync.WaitGroup
	gcStop      chan struct{}
	gcDone      chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
	probeStop   chan struct{}
	probeDone   chan struct{}

	// compactions / compactDropped feed the /metrics cache section.
	compactions    atomic.Int64
	compactDropped atomic.Int64

	// degraded is set by the first journal/store write failure: the
	// manager keeps serving jobs memory-only while the probe loop retries
	// persistence (see onPersistError / tryRestore).
	degraded atomic.Bool

	// drainMu guards the queue-drain EWMA behind Retry-After estimation:
	// the smoothed interval between job dequeues, observed by the worker
	// pool.
	drainMu     sync.Mutex
	drainEWMA   time.Duration
	lastDequeue time.Time

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool
}

// ErrQueueFull is returned by Submit when the pending queue is at capacity.
var ErrQueueFull = errors.New("valserve: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("valserve: manager closed")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("valserve: job not found")

// ErrNotRevaluable is returned by Revalue for jobs without a completed
// report — only done jobs define a base problem to revalue against.
var ErrNotRevaluable = errors.New("valserve: job is not revaluable")

// NewManager opens the persistent store and the job journal (as
// configured), replays the journal — restoring completed jobs and
// requeuing interrupted ones — and starts the worker pool and the TTL
// sweep.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if err := checkJournalPlacement(cfg); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:    cfg,
		hub:    newEventHub(),
		jobs:   make(map[string]*Job),
		logger: cfg.Logger,
	}
	if m.logger == nil {
		m.logger = obs.NopLogger()
	}
	// Collectors close over m and sample at scrape time, so registering
	// before the store/journal/queue exist is safe — every closure
	// nil-checks the field it reads.
	m.tel = newTelemetry(m)
	if cfg.CacheDir != "" {
		st, err := utility.OpenStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		st.Fault = cfg.Fault
		st.OnError = m.onPersistError
		m.store = st
	}
	var pending []*Job
	if cfg.JournalPath != "" {
		jl, err := OpenJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		jl.Fault = cfg.Fault
		jl.OnError = m.onPersistError
		m.journal = jl
		if pending, err = m.replay(); err != nil {
			return nil, err
		}
	}
	// The queue is sized after replay so every job the previous process
	// life left unfinished is guaranteed a slot — recovery must never
	// fail jobs that survived a crash just because QueueCap is smaller
	// than the backlog.
	queueCap := cfg.QueueCap
	if len(pending) > queueCap {
		queueCap = len(pending)
	}
	m.queue = make(chan *Job, queueCap)
	// Requeue the recovered jobs in their original submission order,
	// ahead of any new submissions. They run against the warmed utility
	// store, so already-evaluated coalitions cost nothing.
	for _, j := range pending {
		m.queue <- j
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.noteDequeue()
				m.runJob(j)
			}
		}()
	}
	if cfg.JobTTL > 0 {
		interval := cfg.GCInterval
		if interval <= 0 {
			interval = time.Minute
		}
		m.gcStop = make(chan struct{})
		m.gcDone = make(chan struct{})
		go m.gcLoop(interval)
	}
	if cfg.CompactEvery > 0 {
		m.compactStop = make(chan struct{})
		m.compactDone = make(chan struct{})
		go m.compactLoop(cfg.CompactEvery)
	}
	if m.journal != nil || m.store != nil {
		interval := cfg.DegradedProbeEvery
		if interval <= 0 {
			interval = time.Second
		}
		m.probeStop = make(chan struct{})
		m.probeDone = make(chan struct{})
		go m.probeLoop(interval)
	}
	return m, nil
}

// onPersistError flips the manager into degraded, memory-only operation
// on a journal or store write failure. Serving jobs beats preserving
// them: valuation keeps running and results stay available over the
// API, while the probe loop retries persistence in the background and
// re-journals everything once the disk recovers.
func (m *Manager) onPersistError(err error) {
	if m.degraded.CompareAndSwap(false, true) {
		m.logger.Error("persistence failed; entering degraded (memory-only) mode",
			"error", err.Error())
	}
}

// Degraded reports memory-only operation: a persistence write failed
// and the background probe has not yet restored the disk. Exposed on
// /healthz and as the fedvald_degraded gauge.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// probeLoop retries persistence while the manager is degraded.
func (m *Manager) probeLoop(interval time.Duration) {
	defer close(m.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.probeStop:
			return
		case <-t.C:
			if m.degraded.Load() {
				m.tryRestore()
			}
		}
	}
}

// tryRestore attempts to leave degraded mode: rewrite the journal from
// live job state — reconstructing every record lost while the disk was
// failing, including transitions that happened memory-only — then flush
// the store's pending utility buffer. The degraded flag clears only
// when both succeed; a partial recovery keeps probing.
func (m *Manager) tryRestore() {
	if m.journal != nil {
		if err := m.journal.Restore(m.snapshotsOldestFirst); err != nil {
			return
		}
	}
	var flushed int
	if m.store != nil {
		n, err := m.store.FlushPending()
		flushed = n
		if err != nil {
			return
		}
	}
	if m.degraded.CompareAndSwap(true, false) {
		m.logger.Info("persistence restored; leaving degraded mode",
			"store_flushed", flushed)
	}
}

// noteDequeue feeds the queue-drain EWMA each time a pool worker picks
// up a job — the basis for SubmitRetryAfter's 429 hint.
func (m *Manager) noteDequeue() {
	now := time.Now()
	m.drainMu.Lock()
	if !m.lastDequeue.IsZero() {
		d := now.Sub(m.lastDequeue)
		if m.drainEWMA == 0 {
			m.drainEWMA = d
		} else {
			m.drainEWMA = (3*m.drainEWMA + d) / 4
		}
	}
	m.lastDequeue = now
	m.drainMu.Unlock()
}

// SubmitRetryAfter estimates when a rejected submission is worth
// retrying: roughly one queue-drain interval, from the EWMA of the
// worker pool's dequeue cadence. With no drain history it answers 1s.
// The result is clamped to [1s, 60s] and rounded up to whole seconds —
// the granularity of an HTTP Retry-After header.
func (m *Manager) SubmitRetryAfter() time.Duration {
	m.drainMu.Lock()
	d := m.drainEWMA
	m.drainMu.Unlock()
	secs := int64(1)
	if d > 0 {
		secs = int64((d + time.Second - 1) / time.Second)
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// checkJournalPlacement rejects a journal that store compaction would
// mistake for a fingerprint cache file and rewrite as utilities. Paths
// are resolved to absolute form first, so a relative cache dir and an
// absolute journal path naming the same directory (or vice versa) are
// still caught.
func checkJournalPlacement(cfg Config) error {
	if cfg.JournalPath == "" || cfg.CacheDir == "" || !strings.HasSuffix(cfg.JournalPath, ".jsonl") {
		return nil
	}
	journalDir := filepath.Dir(cfg.JournalPath)
	cacheDir := filepath.Clean(cfg.CacheDir)
	if abs, err := filepath.Abs(journalDir); err == nil {
		journalDir = abs
	}
	if abs, err := filepath.Abs(cacheDir); err == nil {
		cacheDir = abs
	}
	if journalDir == cacheDir {
		return fmt.Errorf("valserve: journal %q must not be a .jsonl file inside the cache directory %q (store compaction would rewrite it)",
			cfg.JournalPath, cfg.CacheDir)
	}
	return nil
}

// attachNotify wires a job's transition events into the journal and the
// event hub. Must run before the job becomes visible to workers or
// watchers.
func (m *Manager) attachNotify(j *Job) {
	j.notify = func(event string, st *fedshap.JobStatus) {
		// While degraded, transitions stay memory-only: the append would
		// fail anyway, and the recovery probe re-journals every job from
		// live state, so nothing is missing once the disk heals.
		if m.journal != nil && !m.degraded.Load() {
			m.journal.Append(event, st)
		}
		m.hub.publish(st.ID, Event{Type: event, Status: st})
		lvl := slog.LevelInfo
		if event == EventProgress {
			lvl = slog.LevelDebug
		}
		attrs := []any{"job", st.ID, "state", string(st.State), "fresh", st.FreshEvals}
		if st.Error != "" {
			attrs = append(attrs, "error", st.Error)
		}
		//fedvallint:allow(ctxthread) slog.Log requires a ctx; job lifecycle logging has no request-scoped one
		m.logger.Log(context.Background(), lvl, "job "+event, attrs...)
	}
}

// replay rebuilds the job table from the journal: terminal jobs are
// restored read-only (reports included), interrupted jobs are reset to
// queued and returned for requeuing. The ID counter advances past every
// replayed ordinal, and the journal is compacted to one snapshot per
// surviving job, dropping the previous life's event history.
func (m *Manager) replay() ([]*Job, error) {
	entries, err := m.journal.Replay()
	if err != nil {
		return nil, err
	}
	var pending []*Job
	for _, st := range entries {
		//fedvallint:allow(ctxthread) job contexts are rooted at the daemon lifetime, not at any request
		ctx, cancel := context.WithCancel(context.Background())
		j := &Job{ctx: ctx, cancel: cancel, tel: m.tel}
		if st.State.Terminal() {
			cancel()
			j.status = *st
		} else {
			j.status = *resetForRequeue(st)
			// A fresh trace for the fresh run; the queue-wait clock
			// restarts here rather than at the original submission, so
			// the job's pre-crash age doesn't pollute the histograms.
			j.trace = obs.NewTrace()
			j.trace.Event("requeue", "daemon", "reason", "restart-recovery")
			j.queueSpan = j.trace.StartSpan("queue", "daemon")
			j.enqueuedAt = time.Now().UTC()
			pending = append(pending, j)
		}
		m.attachNotify(j)
		m.jobs[j.status.ID] = j
		if n := idOrdinal(j.status.ID); n > m.seq {
			m.seq = n
		}
	}
	if err := m.journal.Compact(m.snapshotsOldestFirst()); err != nil {
		// A failing disk must not block startup: the journal already
		// replayed into memory, so serve degraded and let the probe loop
		// restore persistence (the Compact failure flipped the flag via
		// OnError).
		m.logger.Warn("startup journal compaction failed; continuing degraded",
			"error", err.Error())
	}
	return pending, nil
}

// resetForRequeue returns a copy of an interrupted job's status ready for
// a fresh run: back to queued, progress and per-run fields cleared, the
// original submission time and identity kept.
func resetForRequeue(st *fedshap.JobStatus) *fedshap.JobStatus {
	reset := *st
	reset.State = fedshap.JobQueued
	reset.StartedAt, reset.FinishedAt = nil, nil
	reset.FreshEvals, reset.WarmedCoalitions, reset.RemoteWorkers = 0, 0, 0
	reset.Problem, reset.Error = "", ""
	reset.Report = nil
	return &reset
}

// idOrdinal parses the submission ordinal out of a job ID ("j0042-…"),
// or 0 for foreign IDs.
func idOrdinal(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%d-", &n); err == nil {
		return n
	}
	return 0
}

// snapshotsOldestFirst returns every job's snapshot in submission order —
// the order Compact preserves so a replay requeues jobs as originally
// submitted. Call without holding m.mu.
func (m *Manager) snapshotsOldestFirst() []*fedshap.JobStatus {
	out := m.List()
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Store exposes the persistent utility store (nil when persistence is
// disabled), for inspection and tests.
func (m *Manager) Store() *utility.Store { return m.store }

// Journal exposes the durable job journal (nil when durability is
// disabled), for inspection and tests.
func (m *Manager) Journal() *Journal { return m.journal }

// Workers lists the attached remote evaluation workers; empty when no
// coordinator is configured or no worker has dialled in.
func (m *Manager) Workers() []fedshap.WorkerInfo {
	if m.cfg.Coordinator == nil {
		return []fedshap.WorkerInfo{}
	}
	return m.cfg.Coordinator.Workers()
}

// newID mints a unique job identifier: a submission ordinal plus random
// suffix.
func (m *Manager) newID() string {
	var b [4]byte
	_, _ = rand.Read(b[:])
	m.seq++
	return fmt.Sprintf("j%04d-%s", m.seq, hex.EncodeToString(b[:]))
}

// Submit validates, registers and enqueues a job, returning its initial
// status.
func (m *Manager) Submit(req fedshap.JobRequest) (*fedshap.JobStatus, error) {
	return m.submit(req, "")
}

// submit is Submit with provenance: revalueOf, when non-empty, links the
// new job back to the completed job it revalues (POST /v1/jobs/{id}/revalue).
func (m *Manager) submit(req fedshap.JobRequest, revalueOf string) (*fedshap.JobStatus, error) {
	Normalize(&req)
	if err := ValidateRequest(req, m.cfg.BuildProblem != nil); err != nil {
		return nil, err
	}
	//fedvallint:allow(ctxthread) job contexts are rooted at the daemon lifetime, not at the submitting request
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{ctx: ctx, cancel: cancel, tel: m.tel, trace: obs.NewTrace()}
	m.attachNotify(j)
	// emitMu is held from before the job becomes visible until the
	// submitted event is out, so a worker picking the job up immediately
	// cannot journal its running event ahead of the submission record.
	j.emitMu.Lock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		j.emitMu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	j.status = fedshap.JobStatus{
		ID:          m.newID(),
		State:       fedshap.JobQueued,
		Request:     req,
		Fingerprint: Fingerprint(req),
		Budget:      budgetFor(req),
		SubmittedAt: time.Now().UTC(),
		RevalueOf:   revalueOf,
	}
	j.enqueuedAt = j.status.SubmittedAt
	j.trace.Event("submit", "daemon", "algorithm", req.Algorithm)
	j.queueSpan = j.trace.StartSpan("queue", "daemon")
	m.jobs[j.status.ID] = j
	// Admission is bounded by the configured QueueCap (scaled by the
	// watermark), not the channel's capacity: recovery may have sized the
	// channel larger to fit a replayed backlog, and that headroom must
	// not leak into a higher steady-state admission limit. Both the
	// length check and the send happen under m.mu, so the bound is exact.
	var enqueued bool
	if len(m.queue) < m.admitLimit() {
		select {
		case m.queue <- j:
			enqueued = true
		default:
		}
	}
	if !enqueued {
		delete(m.jobs, j.status.ID)
	}
	m.mu.Unlock()
	if !enqueued {
		j.emitMu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	st := j.snapshot()
	if m.tel != nil {
		m.tel.jobsSubmitted.Inc()
	}
	j.emit(EventSubmitted, st)
	j.emitMu.Unlock()
	return st, nil
}

// admitLimit is the admission bound: QueueCap scaled by the configured
// watermark, at least 1.
func (m *Manager) admitLimit() int {
	if w := m.cfg.AdmitWatermark; w > 0 && w < 1 {
		if limit := int(float64(m.cfg.QueueCap) * w); limit >= 1 {
			return limit
		}
		return 1
	}
	return m.cfg.QueueCap
}

// SubmitBatch validates and enqueues many jobs in one call — the
// POST /v1/jobs:batch entry point. Admission is per-item and in request
// order: each job is accepted or rejected independently, so a batch that
// overflows the queue admits a prefix and reports ErrQueueFull for the
// rest instead of failing whole. The returned slices align 1:1 with reqs;
// exactly one of statuses[i] / errs[i] is non-nil.
func (m *Manager) SubmitBatch(reqs []fedshap.JobRequest) (statuses []*fedshap.JobStatus, errs []error) {
	statuses = make([]*fedshap.JobStatus, len(reqs))
	errs = make([]error, len(reqs))
	for i, req := range reqs {
		statuses[i], errs[i] = m.Submit(req)
	}
	return statuses, errs
}

// Revalue submits a delta-revaluation follow-up to a completed job: the
// same valuation problem with the listed clients' dataset versions bumped
// by one. Before the new job is enqueued, every persisted utility of the
// old fingerprint whose coalition contains *none* of the changed clients
// is migrated to the new fingerprint — those coalitions' training sets are
// untouched by the change, so their utilities are still exact. The new job
// then warm-starts from them and spends fresh evaluations only on
// coalitions that actually include a changed client.
func (m *Manager) Revalue(id string, changed []int) (*fedshap.JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	st := j.snapshot()
	if st.State != fedshap.JobDone {
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotRevaluable, id, st.State)
	}
	req := st.Request
	if len(changed) == 0 {
		return nil, errors.New("revalue: changed client set is empty")
	}
	changedSet := make(map[int]bool, len(changed))
	for _, c := range changed {
		if c < 0 || c >= req.N {
			return nil, fmt.Errorf("revalue: client %d out of range [0,%d)", c, req.N)
		}
		changedSet[c] = true
	}
	vers := make([]int, req.N)
	copy(vers, req.Versions)
	for c := range changedSet {
		vers[c]++
	}
	req.Versions = vers
	Normalize(&req)
	if oldFp, newFp := st.Fingerprint, Fingerprint(req); m.store != nil && oldFp != newFp {
		migrated, err := migrateDisjoint(m.store, oldFp, newFp, changedSet)
		if err != nil {
			// Migration is a warm-start optimisation: losing it costs
			// retraining, not correctness, so it never blocks the job.
			m.logger.Warn("revalue: store migration failed",
				"job", id, "error", err.Error())
		}
		m.logger.Info("revalue: migrated store utilities",
			"job", id, "migrated", migrated, "from", oldFp, "to", newFp)
	}
	nst, err := m.submit(req, id)
	if err != nil {
		return nil, err
	}
	if m.tel != nil {
		m.tel.revaluations.Inc()
	}
	return nst, nil
}

// migrateDisjoint copies every persisted utility of oldFp whose coalition
// is disjoint from the changed client set to newFp, skipping coalitions
// the new fingerprint already holds. Returns the number migrated.
func migrateDisjoint(store *utility.Store, oldFp, newFp string, changed map[int]bool) (int, error) {
	old, err := store.Load(oldFp)
	if err != nil || len(old) == 0 {
		return 0, err
	}
	existing, err := store.Load(newFp)
	if err != nil {
		return 0, err
	}
	moved := 0
	for s, u := range old {
		touched := false
		for c := range changed {
			if s.Has(c) {
				touched = true
				break
			}
		}
		if touched {
			continue
		}
		if _, dup := existing[s]; dup {
			continue
		}
		if err := store.Append(newFp, s, u); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// Get returns the status of one job.
func (m *Manager) Get(id string) (*fedshap.JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return j.snapshot(), nil
}

// List returns every job, newest submission first.
func (m *Manager) List() []*fedshap.JobStatus {
	m.mu.Lock()
	out := make([]*fedshap.JobStatus, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.After(out[b].SubmittedAt)
		}
		return out[a].ID > out[b].ID
	})
	return out
}

// countState counts jobs currently in one state, for the scrape-time
// gauges.
func (m *Manager) countState(state fedshap.JobState) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.status.State == state {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Registry exposes the daemon's metric registry, for the HTTP handler's
// Prometheus exposition and the debug listener.
func (m *Manager) Registry() *obs.Registry { return m.tel.reg }

// Trace returns a job's span timeline: daemon-side lifecycle phases plus
// the per-worker dispatch spans and redispatch events merged in by the
// coordinator. Terminal jobs restored from a previous life's journal
// have no recorded spans.
func (m *Manager) Trace(id string) (*fedshap.JobTrace, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	st := j.snapshot()
	spans := j.trace.Snapshot()
	out := &fedshap.JobTrace{JobID: id, State: st.State, Spans: make([]fedshap.TraceSpan, 0, len(spans))}
	for _, sp := range spans {
		ts := fedshap.TraceSpan{Name: sp.Name, Source: sp.Source, Start: sp.Start, Attrs: sp.Attrs}
		if !sp.End.IsZero() {
			end := sp.End
			ts.End = &end
			ts.DurationSeconds = end.Sub(sp.Start).Seconds()
		}
		out.Spans = append(out.Spans, ts)
	}
	return out, nil
}

// ListSince pages through jobs. With since == "" it returns the newest
// limit jobs (newest first), exactly like List head-limited. A non-empty
// since — a job ID, or an RFC 3339 timestamp — flips the order to oldest
// first and returns only jobs submitted strictly after that point, which
// is the shape a poller wants: "everything new since the last job I
// saw". An unknown job ID returns ErrNotFound. limit <= 0 means no
// limit.
func (m *Manager) ListSince(since string, limit int) ([]*fedshap.JobStatus, error) {
	all := m.List()
	if since == "" {
		if limit > 0 && len(all) > limit {
			all = all[:limit]
		}
		return all, nil
	}
	var cutoff time.Time
	var cutID string
	if t, err := time.Parse(time.RFC3339Nano, since); err == nil {
		cutoff = t
	} else {
		m.mu.Lock()
		j, ok := m.jobs[since]
		m.mu.Unlock()
		if !ok {
			return nil, ErrNotFound
		}
		st := j.snapshot()
		cutoff, cutID = st.SubmittedAt, st.ID
	}
	// Oldest first, strictly after the (SubmittedAt, ID) cutoff — the
	// same composite order List sorts by, so pagination by last-seen job
	// ID never skips or repeats a job even when submissions share a
	// timestamp.
	out := make([]*fedshap.JobStatus, 0, len(all))
	for i := len(all) - 1; i >= 0; i-- {
		st := all[i]
		after := st.SubmittedAt.After(cutoff) ||
			(cutID != "" && st.SubmittedAt.Equal(cutoff) && idAfter(st.ID, cutID))
		if !after {
			continue
		}
		out = append(out, st)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// idAfter orders job IDs by submission ordinal, falling back to string
// order for foreign IDs.
func idAfter(a, b string) bool {
	na, nb := idOrdinal(a), idOrdinal(b)
	if na > 0 && nb > 0 && na != nb {
		return na > nb
	}
	return a > b
}

// Watch subscribes to a job's event stream. The channel delivers an
// initial snapshot event immediately, then every subsequent transition
// and progress checkpoint, and is closed after a terminal event. A slow
// reader loses intermediate progress events, never the final state. The
// returned cancel releases the subscription; it is safe to call after the
// channel closed.
func (m *Manager) Watch(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch, cancel := m.hub.watch(id, j.snapshot)
	return ch, cancel, nil
}

// Cancel stops a job: a queued job terminates immediately, a running job
// stops before its next fresh coalition evaluation (already-cached
// utilities may still be read). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (*fedshap.JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.emitMu.Lock()
	j.mu.Lock()
	if !j.status.State.Terminal() {
		j.userCancelled = true
	}
	var st *fedshap.JobStatus
	if j.status.State == fedshap.JobQueued {
		now := time.Now().UTC()
		j.status.State = fedshap.JobCancelled
		j.status.Error = "cancelled while queued"
		j.status.FinishedAt = &now
		st = j.snapshotLocked()
	}
	j.mu.Unlock()
	if st != nil {
		j.observeTerminal(fedshap.JobCancelled, *st.FinishedAt)
		j.emit(EventCancelled, st)
	}
	j.emitMu.Unlock()
	j.cancel()
	return j.snapshot(), nil
}

// SweepExpired drops terminal jobs whose FinishedAt is older than the
// configured JobTTL, pruning them from the API and — via journal
// compaction — from disk, and returns how many expired. The manager runs
// it automatically every GCInterval; it is exported for embedders and
// tests that want a deterministic sweep. With JobTTL <= 0 it is a no-op.
func (m *Manager) SweepExpired() int {
	if m.cfg.JobTTL <= 0 {
		return 0
	}
	cutoff := time.Now().UTC().Add(-m.cfg.JobTTL)
	m.mu.Lock()
	var expired []string
	for id, j := range m.jobs {
		st := j.snapshot()
		if st.State.Terminal() && st.FinishedAt != nil && st.FinishedAt.Before(cutoff) {
			expired = append(expired, id)
		}
	}
	for _, id := range expired {
		delete(m.jobs, id)
	}
	m.mu.Unlock()
	if len(expired) > 0 && m.journal != nil {
		// Jobs are live during a sweep: collect the snapshots inside the
		// journal's critical section so a terminal record appended
		// mid-compaction cannot be lost. The error is kept for Close.
		//fedvallint:allow(durability) best-effort sweep compaction; CompactWith latches its error for Close
		_ = m.journal.CompactWith(m.snapshotsOldestFirst)
	}
	return len(expired)
}

// gcLoop periodically expires terminal jobs past the TTL until Close.
func (m *Manager) gcLoop(interval time.Duration) {
	defer close(m.gcDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.gcStop:
			return
		case <-t.C:
			m.SweepExpired()
		}
	}
}

// CompactNow runs one compaction sweep over the persistent store and the
// job journal, returning the number of duplicate records dropped. The
// background loop (Config.CompactEvery) calls it on its interval; it is
// exported for embedders and tests that want a deterministic sweep. Safe
// while jobs are running — in-process appends are serialised against the
// rewrite — but it assumes no other process appends to the cache
// directory concurrently (see utility.Store.Compact).
func (m *Manager) CompactNow() (dropped int, err error) {
	var errs []error
	if m.store != nil {
		_, d, cerr := m.store.CompactAll()
		dropped += d
		errs = append(errs, cerr)
	}
	if m.journal != nil {
		errs = append(errs, m.journal.CompactWith(m.snapshotsOldestFirst))
	}
	m.compactions.Add(1)
	m.compactDropped.Add(int64(dropped))
	return dropped, errors.Join(errs...)
}

// compactLoop periodically compacts the store and journal until Close —
// the long-lived-daemon counterpart of the shutdown compaction, so a
// crashed or never-restarted process doesn't accumulate duplicate records
// without bound.
func (m *Manager) compactLoop(interval time.Duration) {
	defer close(m.compactDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.compactStop:
			return
		case <-t.C:
			_, _ = m.CompactNow() // write errors surface via Close
		}
	}
}

// Metrics snapshots the manager for GET /metrics: job-state counts and
// queue depth, cache effectiveness across the jobs currently remembered,
// journal size on disk, and — with a coordinator configured — the
// adaptive scheduler's fleet state.
func (m *Manager) Metrics() *fedshap.Metrics {
	var mt fedshap.Metrics
	for _, st := range m.List() {
		switch st.State {
		case fedshap.JobQueued:
			mt.Jobs.Queued++
		case fedshap.JobRunning:
			mt.Jobs.Running++
		case fedshap.JobDone:
			mt.Jobs.Done++
		case fedshap.JobFailed:
			mt.Jobs.Failed++
		case fedshap.JobCancelled:
			mt.Jobs.Cancelled++
		case fedshap.JobTimedOut:
			mt.Jobs.TimedOut++
		}
		mt.Cache.WarmedTotal += int64(st.WarmedCoalitions)
		mt.Cache.FreshTotal += int64(st.FreshEvals)
	}
	mt.Jobs.QueueDepth = len(m.queue)
	// The channel's real capacity, not cfg.QueueCap: crash recovery sizes
	// the channel up to fit a replayed backlog, and a depth gauge must
	// never read past its capacity.
	mt.Jobs.QueueCapacity = cap(m.queue)
	if total := mt.Cache.WarmedTotal + mt.Cache.FreshTotal; total > 0 {
		mt.Cache.HitRatio = float64(mt.Cache.WarmedTotal) / float64(total)
	}
	mt.Cache.Compactions = m.compactions.Load()
	mt.Cache.CompactionDropped = m.compactDropped.Load()
	if m.store != nil {
		if stats, err := m.store.Stats(); err == nil {
			mt.Cache.StoreFingerprints = stats.Fingerprints
			mt.Cache.StoreBytes = stats.Bytes
		}
	}
	if m.journal != nil {
		mt.Journal.Path = m.journal.Path()
		mt.Journal.Bytes = m.journal.Size()
	}
	if m.cfg.Coordinator != nil {
		fleet := m.cfg.Coordinator.Stats()
		mt.Fleet = &fleet
	}
	mt.Degraded = m.degraded.Load()
	return &mt
}

// Close cancels every live job, drains the workers, compacts the
// persistent store and the journal, and closes both. Jobs that were
// still queued or running are recorded in the journal as *queued*, not
// cancelled: a graceful shutdown (SIGTERM) preserves in-flight work, and
// the next start requeues it warm from the utility store. Only explicit
// user cancellation is terminal across restarts.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	close(m.queue)
	m.mu.Unlock()

	// Remember which jobs the shutdown itself interrupts, before the
	// cancellation below marks them cancelled. Jobs the user already
	// asked to cancel are excluded — user cancellation stays terminal
	// even when the cancel and the shutdown race.
	interrupted := make(map[string]*Job)
	for _, j := range jobs {
		if st := j.snapshot(); !st.State.Terminal() && !j.wasUserCancelled() {
			interrupted[st.ID] = j
		}
	}
	if m.gcStop != nil {
		close(m.gcStop)
		<-m.gcDone
	}
	if m.compactStop != nil {
		close(m.compactStop)
		<-m.compactDone
	}
	if m.probeStop != nil {
		close(m.probeStop)
		<-m.probeDone
	}
	for _, j := range jobs {
		j.cancel()
	}
	m.wg.Wait()

	var errs []error
	if m.journal != nil {
		snaps := m.snapshotsOldestFirst()
		for i, st := range snaps {
			// A job both interrupted by shutdown and finished cancelled
			// was killed by Close, not the user: journal it as queued so
			// the next start resumes it. A job that still completed
			// (done/failed) between the snapshot and the cancel keeps
			// its real outcome, and a user cancel that landed during
			// shutdown stays cancelled.
			j := interrupted[st.ID]
			if j != nil && st.State == fedshap.JobCancelled && !j.wasUserCancelled() {
				snaps[i] = resetForRequeue(st)
			}
		}
		errs = append(errs, m.journal.Compact(snaps))
		errs = append(errs, m.journal.Close())
	}
	if m.store != nil {
		_, _, cerr := m.store.CompactAll()
		errs = append(errs, cerr, m.store.Close())
	}
	return errors.Join(errs...)
}

// warmSource builds a job's warm-start snapshot provider: the job
// oracle's cache unioned with the persistent store's *current* contents
// for the fingerprint. The store re-read matters: this job's oracle only
// knows what it was warmed with at attach time, but a concurrent job on
// the same fingerprint writes utilities through to the store while this
// one runs — and only coalitions missing from *this* oracle are ever
// dispatched to the fleet, so the store is exactly where a shippable
// answer the coordinator would otherwise retrain can still appear. The
// function runs on the coordinator's writer goroutines (once per worker
// and job), never on the scheduler lock, so the disk read is off every
// hot path.
func warmSource(oracle *utility.Oracle, store *utility.Store, fingerprint string) func() map[combin.Coalition]float64 {
	return func() map[combin.Coalition]float64 {
		snap := oracle.Snapshot()
		if store == nil {
			return snap
		}
		persisted, err := store.Load(fingerprint)
		if err != nil {
			return snap
		}
		for coal, u := range persisted {
			if _, ok := snap[coal]; !ok {
				snap[coal] = u
			}
		}
		return snap
	}
}

// buildProblem dispatches to the injected builder or the experiments
// constructors.
func (m *Manager) buildProblem(req fedshap.JobRequest) (*experiments.Problem, error) {
	if m.cfg.BuildProblem != nil {
		return m.cfg.BuildProblem(req)
	}
	return BuildProblem(req)
}

// finishInterrupted maps a cancellation-shaped run error to its
// terminal state: the run deadline expiring while nobody cancelled the
// job itself is a timeout (the new timed_out terminal state); every
// other interruption — user cancel, shutdown — stays cancelled.
func finishInterrupted(j *Job, runCtx context.Context, req fedshap.JobRequest, err error) {
	if errors.Is(runCtx.Err(), context.DeadlineExceeded) && j.ctx.Err() == nil {
		j.finish(fedshap.JobTimedOut,
			fmt.Sprintf("deadline exceeded (%gs)", req.DeadlineSeconds), nil)
		return
	}
	j.finish(fedshap.JobCancelled, err.Error(), nil)
}

// runJob executes one job on the worker pool. Algorithm or substrate
// panics become job failures, not daemon crashes.
func (m *Manager) runJob(j *Job) {
	if !j.markRunning() {
		return // cancelled while queued
	}
	defer j.cancel()
	defer func() {
		if r := recover(); r != nil {
			j.finish(fedshap.JobFailed, fmt.Sprintf("panic: %v", r), nil)
		}
	}()

	req := j.snapshot().Request
	// The job deadline clock starts when the job leaves the queue, not at
	// submission: queue wait is the daemon's fault, not the job's. runCtx
	// bounds everything below — problem build, warm start, dispatch, the
	// final aggregation — while j.ctx alone still distinguishes explicit
	// cancellation (finishInterrupted keys off the difference).
	runCtx := j.ctx
	if d := req.DeadlineSeconds; d > 0 {
		var cancelDeadline context.CancelFunc
		runCtx, cancelDeadline = context.WithTimeout(j.ctx, time.Duration(d*float64(time.Second)))
		defer cancelDeadline()
	}
	alg, err := NewValuer(req.Algorithm, req.Gamma, req.K)
	if err != nil {
		j.finish(fedshap.JobFailed, err.Error(), nil)
		return
	}
	buildSpan := j.trace.StartSpan("build_problem", "daemon")
	p, err := m.buildProblem(req)
	if err != nil {
		buildSpan.End()
		j.finish(fedshap.JobFailed, err.Error(), nil)
		return
	}
	buildSpan.SetAttr("problem", p.Name)
	buildSpan.End()
	j.setProblem(p.Name)

	// Client-level training parallelism is configured before the oracle is
	// built (the oracle snapshots the FL spec). It never changes results,
	// so it stays out of the problem fingerprint.
	if m.cfg.TrainWorkers > 1 && p.Spec != nil {
		p.Spec.Config.Workers = m.cfg.TrainWorkers
	}
	oracle := p.Oracle()
	if m.store != nil {
		warmSpan := j.trace.StartSpan("warm_start", "daemon")
		warmed, err := m.store.Attach(oracle, j.snapshot().Fingerprint)
		if err != nil {
			warmSpan.End()
			j.finish(fedshap.JobFailed, err.Error(), nil)
			return
		}
		warmSpan.SetInt("warmed", int64(warmed))
		warmSpan.End()
		j.setWarmed(warmed)
	}
	oracle.OnEval(j.setFresh)
	if tel := m.tel; tel != nil {
		// Eval-source latency series: cache hits via the oracle's hit
		// hook, in-process trainings via an innermost eval wrapper —
		// installed before the coordinator session wraps it, so the
		// session's local-fallback path is timed as "local" — and fleet
		// round trips via the session's Observe seam below.
		oracle.OnCacheHit(func(seconds float64) { tel.observeEval("cache", seconds) })
		oracle.WrapEval(func(inner utility.EvalFunc) utility.EvalFunc {
			return func(s combin.Coalition) float64 {
				evalStart := time.Now()
				u := inner(s)
				tel.observeEval("local", time.Since(evalStart).Seconds())
				return u
			}
		})
	}

	// Resolve the width of the job's coalition-evaluation pool: the
	// request's preference, else the daemon's, else one pool slot per CPU.
	evalWorkers := req.Workers
	if evalWorkers <= 0 {
		evalWorkers = m.cfg.EvalWorkers
	}
	if evalWorkers <= 0 {
		evalWorkers = runtime.GOMAXPROCS(0)
	}

	// With a coordinator configured, swap the oracle's evaluation function
	// for a distributed session: coalitions dispatch to remote workers and
	// results flow back through the same cache, budget accounting and
	// write-through. The session is registered even when the fleet is
	// momentarily empty — evaluations then run through the local fallback,
	// and workers that dial in mid-job are picked up. Each worker's first
	// spec message ships the oracle's cache snapshot at that moment
	// (store-warmed entries plus everything evaluated so far), so a
	// recycled or late-attaching fleet never retrains what the daemon
	// already knows. The pool is widened to the fleet's aggregate capacity
	// (Eval blocks while a worker trains, so pool slots, not CPUs, keep
	// the fleet busy) unless the request or the daemon set an explicit
	// worker limit, which stays an upper bound on the job's concurrency
	// wherever it runs.
	if c := m.cfg.Coordinator; c != nil {
		snap := j.snapshot()
		spec := evalnet.ProblemSpec{
			ID:          snap.ID,
			Fingerprint: snap.Fingerprint,
			N:           p.N,
			Request:     req,
		}
		localLimit := evalWorkers
		var sess *evalnet.Session
		oracle.WrapEval(func(local utility.EvalFunc) utility.EvalFunc {
			sess = c.NewSessionWith(runCtx, evalnet.SessionConfig{
				Spec:         spec,
				Local:        local,
				LocalLimit:   localLimit,
				WarmSnapshot: warmSource(oracle, m.store, snap.Fingerprint),
				Observe:      m.tel.observeEval,
				Trace:        j.trace,
			})
			return sess.Eval
		})
		defer sess.Close()
		j.setRemoteWorkers(c.WorkerCount())
		if cap := c.TotalCapacity(); req.Workers <= 0 && m.cfg.EvalWorkers <= 0 && cap > evalWorkers {
			evalWorkers = cap
		}
	}
	// Anytime valuation: a requested confidence turns on interval
	// tracking. Plan-exhaustive algorithms are *driven* — their complete
	// seeded plan is evaluated chunk by chunk in plan order (replacing the
	// prefetch pass below), streaming interim snapshots and, with
	// rank_stop, finishing the job the moment every pairwise ranking is
	// resolved. Algorithms without a complete plan get a passive observer
	// hook: fresh evaluations feed the tracker in completion order and the
	// intervals ride along on the final report, but the job never stops
	// early (ValidateRequest already rejected rank_stop for them).
	var any *anytimeState
	planDriven := false
	if req.Confidence > 0 {
		if plan, ok := shapley.PlanFor(alg, p.N, req.Seed+2); ok && len(plan) > 0 && shapley.PlanExhaustive(alg) {
			any = newAnytimeState(m, j, p.N, req.Confidence, plan)
			planDriven = true
			driveStart := time.Now()
			driveSpan := j.trace.StartSpan("anytime_drive", "daemon")
			driveSpan.SetInt("planned", int64(len(plan)))
			driveSpan.SetInt("workers", int64(evalWorkers))
			stopped, derr := any.drivePlan(runCtx, oracle, plan, evalWorkers, req.RankStop)
			driveSpan.End()
			if derr != nil {
				if errors.Is(derr, context.Canceled) || errors.Is(derr, context.DeadlineExceeded) {
					finishInterrupted(j, runCtx, req, derr)
				} else {
					j.finish(fedshap.JobFailed, derr.Error(), nil)
				}
				return
			}
			if stopped {
				rep := any.report(alg.Name(), j.snapshot().Budget,
					oracle.Evals(), time.Since(driveStart).Seconds())
				if m.tel != nil {
					m.tel.earlyStops.Inc()
					m.tel.budgetSaved.Add(int64(rep.BudgetUnspent))
				}
				j.finish(fedshap.JobDone, "", rep)
				return
			}
		} else {
			any = newAnytimeState(m, j, p.N, req.Confidence, nil)
			oracle.OnEvalValue(any.observe)
		}
	}

	// Pipeline the algorithm's deterministic evaluation plan — the full
	// seeded sampling sequence for the samplers, the certain set otherwise
	// — through the job's evaluation pool (and, via the wrapped eval
	// function, across the remote fleet). The sequential pass below then
	// reduces against a warm cache. The plan is replayed from the same
	// seed the run's Context uses, so it is exactly the run's request
	// sequence: values, budget metering and fresh-evaluation counts are
	// untouched. Cancellation mid-prefetch falls through to shapley.Run,
	// which reports it uniformly. An anytime plan drive already warmed the
	// entire plan, so prefetching again would be a no-op.
	if evalWorkers > 1 && !planDriven {
		if plan, ok := shapley.PlanFor(alg, p.N, req.Seed+2); ok && len(plan) > 0 {
			prefetchSpan := j.trace.StartSpan("prefetch", "daemon")
			prefetchSpan.SetInt("planned", int64(len(plan)))
			prefetchSpan.SetInt("workers", int64(evalWorkers))
			_ = oracle.Prefetch(runCtx, plan, evalWorkers)
			prefetchSpan.End()
		}
	}

	// The algorithm runs against a per-job budget view, not the raw
	// oracle: budget-gated samplers loop on Evals() < γ, and warmed
	// entries deliberately don't count as fresh evaluations — without the
	// view, a warm cache would make such a sampler draw far past its
	// budget over cached lookups. The view charges every distinct
	// coalition this run requests (warm or fresh), exactly as a fresh
	// oracle would, while FreshEvals/Report keep counting only real
	// training work.
	start := time.Now()
	aggSpan := j.trace.StartSpan("aggregate", "daemon")
	aggSpan.SetAttr("algorithm", alg.Name())
	view := utility.NewRunView(oracle)
	sctx := shapley.NewContext(view, req.Seed+2).WithSpec(p.Spec).WithContext(runCtx)
	values, err := shapley.Run(sctx, alg)
	aggSpan.SetInt("evaluations", int64(oracle.Evals()))
	aggSpan.End()
	elapsed := time.Since(start).Seconds()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			finishInterrupted(j, runCtx, req, err)
		} else {
			j.finish(fedshap.JobFailed, err.Error(), nil)
		}
		return
	}
	names := make([]string, p.N)
	for i := range names {
		names[i] = clientName(i)
	}
	rep := &fedshap.Report{
		Algorithm:   alg.Name(),
		Values:      values,
		Names:       names,
		Seconds:     elapsed,
		Evaluations: oracle.Evals(),
	}
	if any != nil {
		any.decorate(rep)
	}
	j.finish(fedshap.JobDone, "", rep)
}
