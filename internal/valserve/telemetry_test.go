package valserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/analysis"
	"fedshap/internal/obs"
)

// promSampleRe matches one exposition sample line: name{labels} value.
var promSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?(?:[0-9.e+-]+|\+Inf|NaN))$`)

// scrapeProm fetches the Prometheus exposition from a handler and parses
// it strictly: every non-comment line must be a well-formed sample whose
// metric family was introduced by a # HELP / # TYPE pair. Keys in the
// returned map are name{labels}.
func scrapeProm(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics (Accept: text/plain) = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("exposition Content-Type = %q, want version=0.0.4", ct)
	}
	return parseProm(t, rec.Body.String())
}

func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool) // families with HELP+TYPE seen
	helped := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		mm := promSampleRe.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("malformed exposition line: %q", line)
		}
		fam := mm[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suffix); base != fam && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] || !helped[fam] {
			t.Fatalf("sample %q has no # HELP/# TYPE for its family", line)
		}
		v, err := strconv.ParseFloat(mm[3], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		samples[mm[1]+mm[2]] = v
	}
	return samples
}

// TestMetricNameLint is the metric-name lint gate: every series either
// daemon registers must carry the right prefix and unit suffix. It goes
// through analysis.MetricProblems — the same code path fedvallint's
// obsmetrics analyzer applies at call sites — so the test and the linter
// cannot drift apart. Label cardinality is checked statically by
// fedvallint, so the runtime pass supplies zero label keys.
func TestMetricNameLint(t *testing.T) {
	coord, _ := startFleetCoordinator(t)
	m, err := NewManager(Config{Workers: 1, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	lintRegistryNames(t, "fedvald", m.Registry().Names())
	lintRegistryNames(t, "fedvalworker", NewWorkerTelemetry().Registry().Names())
}

func lintRegistryNames(t *testing.T, who string, names map[string]obs.Type) {
	t.Helper()
	for name, typ := range names {
		for _, p := range analysis.MetricProblems(name, typ, 0) {
			t.Errorf("%s registry lint: %s", who, p)
		}
	}
}

// TestPrometheusEndpoint drives jobs through a full daemon and asserts
// the Prometheus scrape covers the job, evaluation, cache, journal,
// fleet and autoscaling series with believable values — while the
// default JSON snapshot stays intact.
func TestPrometheusEndpoint(t *testing.T) {
	coord, _ := startFleetCoordinator(t)
	dir := t.TempDir()
	m, err := NewManager(Config{
		Workers:      1,
		QueueCap:     32,
		CacheDir:     dir,
		JournalPath:  t.TempDir() + "/jobs.jsonl",
		Coordinator:  coord,
		BuildProblem: gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := NewHandler(m)

	req := fedshap.JobRequest{N: 6, Algorithm: "exact", Seed: 3}
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitState(t, m, st.ID, terminal); fin.State != fedshap.JobDone {
		t.Fatalf("job state = %s (%s)", fin.State, fin.Error)
	}
	// Warm resubmit: all coalitions come back as store-warmed cache hits.
	st2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitState(t, m, st2.ID, terminal); fin.State != fedshap.JobDone {
		t.Fatalf("warm job state = %s (%s)", fin.State, fin.Error)
	}
	// And one cancelled-while-queued job for the outcome counter.
	st3, err := m.Submit(fedshap.JobRequest{N: 20, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(st3.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st3.ID, terminal)

	samples := scrapeProm(t, h)
	wantAtLeast := map[string]float64{
		`fedvald_jobs_submitted_total`:                       3,
		`fedvald_jobs_completed_total{state="done"}`:         2,
		`fedvald_job_duration_seconds_count`:                 3,
		`fedvald_job_queue_wait_seconds_count`:               2,
		`fedvald_evaluations_total{kind="fresh"}`:            1 << 6,
		`fedvald_evaluations_total{kind="warmed"}`:           1 << 6,
		`fedvald_eval_latency_seconds_count{source="local"}`: 1 << 6,
		`fedvald_eval_latency_seconds_count{source="cache"}`: 1,
		`fedvald_cache_hit_ratio`:                            0.4,
		`fedvald_store_bytes`:                                1,
		`fedvald_store_fingerprints`:                         1,
		`fedvald_journal_bytes`:                              1,
	}
	for key, min := range wantAtLeast {
		if got, ok := samples[key]; !ok {
			t.Errorf("scrape is missing %s", key)
		} else if got < min {
			t.Errorf("%s = %v, want >= %v", key, got, min)
		}
	}
	wantExact := map[string]float64{
		`fedvald_jobs_completed_total{state="cancelled"}`:       1,
		`fedvald_jobs_completed_total{state="failed"}`:          0,
		`fedvald_job_queue_capacity_jobs`:                       32,
		`fedvald_job_queue_depth_jobs`:                          0,
		`fedvald_queued_jobs`:                                   0,
		`fedvald_running_jobs`:                                  0,
		`fedvald_sse_subscribers`:                               0,
		`fedvald_fleet_workers`:                                 0,
		`fedvald_fleet_wanted_workers`:                          0,
		`fedvald_fleet_pending_tasks`:                           0,
		`fedvald_fleet_redispatch_total{reason="straggler"}`:    0,
		`fedvald_fleet_redispatch_total{reason="worker-death"}`: 0,
	}
	for key, want := range wantExact {
		if got, ok := samples[key]; !ok {
			t.Errorf("scrape is missing %s", key)
		} else if got != want {
			t.Errorf("%s = %v, want %v", key, got, want)
		}
	}
	// Histogram invariant on a live series: +Inf bucket == count.
	inf := samples[`fedvald_job_duration_seconds_bucket{le="+Inf"}`]
	if cnt := samples[`fedvald_job_duration_seconds_count`]; inf != cnt {
		t.Errorf("job duration +Inf bucket %v != count %v", inf, cnt)
	}

	// ?format=prometheus negotiates the same exposition without a header.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if !strings.Contains(rec.Header().Get("Content-Type"), "version=0.0.4") {
		t.Errorf("?format=prometheus Content-Type = %q", rec.Header().Get("Content-Type"))
	}

	// The default stays the JSON snapshot.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default /metrics Content-Type = %q, want application/json", ct)
	}
	var mt fedshap.Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &mt); err != nil {
		t.Fatalf("default /metrics is not the JSON snapshot: %v", err)
	}
	if mt.Jobs.Done != 2 {
		t.Errorf("JSON snapshot done = %d, want 2", mt.Jobs.Done)
	}
}

// TestTraceEndpoint checks the daemon-side timeline of a completed job:
// submit → queue → build_problem → warm_start → prefetch → aggregate →
// report, ordered by start time, with spans closed and attributed.
func TestTraceEndpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Config{Workers: 1, CacheDir: dir, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := NewHandler(m)

	st, err := m.Submit(fedshap.JobRequest{N: 5, Algorithm: "exact", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitState(t, m, st.ID, terminal); fin.State != fedshap.JobDone {
		t.Fatalf("job state = %s (%s)", fin.State, fin.Error)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+st.ID+"/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", rec.Code, rec.Body.String())
	}
	var tr fedshap.JobTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.JobID != st.ID || tr.State != fedshap.JobDone {
		t.Fatalf("trace header = %s/%s", tr.JobID, tr.State)
	}
	want := []string{"submit", "queue", "build_problem", "warm_start", "prefetch", "aggregate", "report"}
	byName := map[string]fedshap.TraceSpan{}
	for _, sp := range tr.Spans {
		byName[sp.Name] = sp
	}
	for _, name := range want {
		sp, ok := byName[name]
		if !ok {
			t.Errorf("trace is missing span %q (have %d spans)", name, len(tr.Spans))
			continue
		}
		if sp.Source != "daemon" {
			t.Errorf("span %s source = %q, want daemon", name, sp.Source)
		}
		if sp.End == nil {
			t.Errorf("span %s is still open in a terminal job", name)
		}
	}
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].Start.Before(tr.Spans[i-1].Start) {
			t.Errorf("spans out of start order at %d: %s before %s",
				i, tr.Spans[i].Name, tr.Spans[i-1].Name)
		}
	}
	if got := byName["report"].Attrs["state"]; got != "done" {
		t.Errorf("report state attr = %q, want done", got)
	}
	if got := byName["aggregate"].Attrs["evaluations"]; got != "32" {
		t.Errorf("aggregate evaluations attr = %q, want 32", got)
	}

	// Unknown jobs 404, exactly like the other job routes.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/nope/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET trace for unknown job = %d, want 404", rec.Code)
	}
}

// TestJobsPagination covers GET /v1/jobs?since=&limit= end to end: ID and
// timestamp cursors, strict-after semantics, oldest-first order with a
// cursor, and the error statuses.
func TestJobsPagination(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h := NewHandler(m)

	ids := make([]string, 5)
	for i := range ids {
		st, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "exact", Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
		waitState(t, m, st.ID, terminal)
		time.Sleep(2 * time.Millisecond) // distinct SubmittedAt timestamps
	}

	fetch := func(query string, wantCode int) []*fedshap.JobStatus {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs"+query, nil))
		if rec.Code != wantCode {
			t.Fatalf("GET /v1/jobs%s = %d, want %d: %s", query, rec.Code, wantCode, rec.Body.String())
		}
		if wantCode != http.StatusOK {
			return nil
		}
		var out []*fedshap.JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Plain limit: the newest two, newest first.
	got := fetch("?limit=2", http.StatusOK)
	if len(got) != 2 || got[0].ID != ids[4] || got[1].ID != ids[3] {
		t.Fatalf("limit=2 returned %s", idsOf(got))
	}
	// ID cursor: strictly after ids[2], oldest first.
	got = fetch("?since="+ids[2], http.StatusOK)
	if len(got) != 2 || got[0].ID != ids[3] || got[1].ID != ids[4] {
		t.Fatalf("since=%s returned %s, want [%s %s]", ids[2], idsOf(got), ids[3], ids[4])
	}
	// Cursor plus limit pages forward one at a time.
	got = fetch("?since="+ids[2]+"&limit=1", http.StatusOK)
	if len(got) != 1 || got[0].ID != ids[3] {
		t.Fatalf("since+limit returned %s, want [%s]", idsOf(got), ids[3])
	}
	// The newest job as cursor yields an empty page — the poller's steady
	// state.
	if got = fetch("?since="+ids[4], http.StatusOK); len(got) != 0 {
		t.Fatalf("since=newest returned %s, want none", idsOf(got))
	}
	// Timestamp cursor: everything submitted after job 1's timestamp.
	all := m.List()
	var ts time.Time
	for _, st := range all {
		if st.ID == ids[1] {
			ts = st.SubmittedAt
		}
	}
	got = fetch("?since="+ts.UTC().Format(time.RFC3339Nano), http.StatusOK)
	if len(got) != 3 || got[0].ID != ids[2] {
		t.Fatalf("since=<timestamp> returned %s, want 3 starting at %s", idsOf(got), ids[2])
	}
	// Unknown cursor job is 404; a bad limit is 400.
	fetch("?since=j9999-nope", http.StatusNotFound)
	fetch("?limit=-1", http.StatusBadRequest)
	fetch("?limit=abc", http.StatusBadRequest)
}

func idsOf(sts []*fedshap.JobStatus) string {
	out := make([]string, len(sts))
	for i, st := range sts {
		out[i] = st.ID
	}
	return fmt.Sprintf("%v", out)
}
