package valserve

import (
	"strconv"
	"time"

	"fedshap"
	"fedshap/internal/obs"
)

// wantedWorkersTarget is the drain window behind the
// fedvald_fleet_wanted_workers autoscaling gauge: the fleet size the gauge
// reports is the one that clears the coordinator's current evaluation
// backlog (queue depth × EWMA latency) within this window. See
// evalnet.Coordinator.WantedWorkers and the OPERATIONS.md monitoring
// runbook.
const wantedWorkersTarget = 30 * time.Second

// telemetry owns the daemon's Prometheus registry and the instruments the
// manager updates on its hot paths. Instruments are atomics (see
// internal/obs); everything sampled from manager or coordinator state is
// a scrape-time collector, so steady-state job execution pays only for
// counter increments and histogram observes.
type telemetry struct {
	reg *obs.Registry

	jobsSubmitted *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter
	jobsTimedOut  *obs.Counter

	jobDuration *obs.Histogram
	queueWait   *obs.Histogram

	evalLocal  *obs.Histogram
	evalRemote *obs.Histogram
	evalCache  *obs.Histogram

	evalsFresh  *obs.Counter
	evalsWarmed *obs.Counter

	valuesSnapshots *obs.Counter
	earlyStops      *obs.Counter
	budgetSaved     *obs.Counter
	revaluations    *obs.Counter
}

// evalLatencyBuckets spans cache lookups (microseconds) through full
// federated trainings (minutes) in one histogram family.
var evalLatencyBuckets = obs.ExpBuckets(1e-6, 10, 10)

// newTelemetry registers every fedvald_* series against m. Collectors
// close over the manager (and its coordinator, when configured) and
// sample at scrape time; they must not be registered before the fields
// they read exist.
func newTelemetry(m *Manager) *telemetry {
	r := obs.NewRegistry()
	t := &telemetry{reg: r}

	t.jobsSubmitted = r.NewCounter("fedvald_jobs_submitted_total",
		"Valuation jobs accepted by POST /v1/jobs since process start.")
	t.jobsDone = r.NewCounter("fedvald_jobs_completed_total",
		"Jobs reaching a terminal state, by outcome.", "state", "done")
	t.jobsFailed = r.NewCounter("fedvald_jobs_completed_total",
		"Jobs reaching a terminal state, by outcome.", "state", "failed")
	t.jobsCancelled = r.NewCounter("fedvald_jobs_completed_total",
		"Jobs reaching a terminal state, by outcome.", "state", "cancelled")
	t.jobsTimedOut = r.NewCounter("fedvald_jobs_completed_total",
		"Jobs reaching a terminal state, by outcome.", "state", "timed_out")

	t.jobDuration = r.NewHistogram("fedvald_job_duration_seconds",
		"End-to-end job latency, enqueue to terminal state.",
		obs.ExpBuckets(0.01, 2, 16))
	t.queueWait = r.NewHistogram("fedvald_job_queue_wait_seconds",
		"Time jobs spend queued before a pool worker picks them up.",
		obs.ExpBuckets(0.001, 4, 10))

	// const, not var: fedvallint's obsmetrics check verifies help text at
	// compile time, so it must be a compile-time constant.
	const help = "Coalition evaluation latency by serving source (cache lookup, in-process training, fleet round trip)."
	t.evalCache = r.NewHistogram("fedvald_eval_latency_seconds", help, evalLatencyBuckets, "source", "cache")
	t.evalLocal = r.NewHistogram("fedvald_eval_latency_seconds", help, evalLatencyBuckets, "source", "local")
	t.evalRemote = r.NewHistogram("fedvald_eval_latency_seconds", help, evalLatencyBuckets, "source", "remote")

	t.evalsFresh = r.NewCounter("fedvald_evaluations_total",
		"Coalition utilities produced, by kind: fresh trainings vs store-warmed preloads.", "kind", "fresh")
	t.evalsWarmed = r.NewCounter("fedvald_evaluations_total",
		"Coalition utilities produced, by kind: fresh trainings vs store-warmed preloads.", "kind", "warmed")

	t.valuesSnapshots = r.NewCounter("fedvald_values_snapshots_total",
		"Interim anytime value snapshots streamed over SSE.")
	t.earlyStops = r.NewCounter("fedvald_early_stops_total",
		"Jobs halted early because every pairwise ranking resolved at the requested confidence.")
	t.budgetSaved = r.NewCounter("fedvald_budget_saved_evaluations_total",
		"Planned coalition evaluations skipped by early stopping.")
	t.revaluations = r.NewCounter("fedvald_revaluations_total",
		"Delta revaluation jobs submitted via POST /v1/jobs/{id}/revalue.")

	r.NewGaugeFunc("fedvald_queued_jobs", "Jobs currently queued.",
		func() float64 { return float64(m.countState(fedshap.JobQueued)) })
	r.NewGaugeFunc("fedvald_running_jobs", "Jobs currently running.",
		func() float64 { return float64(m.countState(fedshap.JobRunning)) })
	r.NewGaugeFunc("fedvald_job_queue_depth_jobs", "Jobs waiting for a pool worker.",
		func() float64 { return float64(len(m.queue)) })
	r.NewGaugeFunc("fedvald_job_queue_capacity_jobs", "Admission limit of the job queue.",
		func() float64 { return float64(cap(m.queue)) })
	r.NewGaugeFunc("fedvald_sse_subscribers", "Open SSE event-stream subscriptions across all jobs.",
		func() float64 { return float64(m.hub.subscriberCount()) })
	r.NewGaugeFunc("fedvald_degraded",
		"1 while the daemon runs memory-only after a persistence write failure, 0 when the journal and store are healthy.",
		func() float64 {
			if m.degraded.Load() {
				return 1
			}
			return 0
		})
	r.NewGaugeFunc("fedvald_store_pending_writes",
		"Utilities buffered in memory while the store's disk is failing (flushed on recovery).",
		func() float64 {
			if m.store == nil {
				return 0
			}
			return float64(m.store.PendingWrites())
		})

	r.NewGaugeFunc("fedvald_cache_hit_ratio",
		"Warmed / (warmed + fresh) coalition utilities since process start.",
		func() float64 {
			warmed, fresh := float64(t.evalsWarmed.Value()), float64(t.evalsFresh.Value())
			if warmed+fresh == 0 {
				return 0
			}
			return warmed / (warmed + fresh)
		})
	r.NewGaugeFunc("fedvald_store_bytes", "Persistent utility store size on disk.",
		func() float64 {
			if m.store == nil {
				return 0
			}
			stats, err := m.store.Stats()
			if err != nil {
				return 0
			}
			return float64(stats.Bytes)
		})
	r.NewGaugeFunc("fedvald_store_fingerprints", "Problem fingerprints in the persistent utility store.",
		func() float64 {
			if m.store == nil {
				return 0
			}
			stats, err := m.store.Stats()
			if err != nil {
				return 0
			}
			return float64(stats.Fingerprints)
		})
	r.NewGaugeFunc("fedvald_journal_bytes", "Durable job journal size on disk (0 when durability is off).",
		func() float64 {
			if m.journal == nil {
				return 0
			}
			return float64(m.journal.Size())
		})
	r.NewCollector("fedvald_compactions_total",
		"Store+journal compaction sweeps run since process start.", obs.TypeCounter,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(m.compactions.Load())}}
		})
	r.NewCollector("fedvald_compaction_dropped_total",
		"Duplicate records removed by compaction sweeps.", obs.TypeCounter,
		func() []obs.Sample {
			return []obs.Sample{{Value: float64(m.compactDropped.Load())}}
		})

	if c := m.cfg.Coordinator; c != nil {
		r.NewGaugeFunc("fedvald_fleet_workers", "Remote evaluation workers attached.",
			func() float64 { return float64(c.WorkerCount()) })
		r.NewGaugeFunc("fedvald_fleet_capacity_tasks", "Aggregate in-flight evaluation limit of the fleet.",
			func() float64 { return float64(c.TotalCapacity()) })
		r.NewGaugeFunc("fedvald_fleet_pending_tasks", "Evaluations queued on the coordinator, unassigned.",
			func() float64 { return float64(c.Stats().PendingTasks) })
		r.NewGaugeFunc("fedvald_fleet_wanted_workers",
			"Autoscaling signal: workers needed to drain the evaluation backlog (queue depth x EWMA latency) within 30s.",
			func() float64 { return float64(c.WantedWorkers(wantedWorkersTarget)) })
		r.NewCollector("fedvald_fleet_redispatch_total",
			"Evaluations re-dispatched, by reason: speculative straggler relief, worker death, or task deadline.", obs.TypeCounter,
			func() []obs.Sample {
				s := c.Stats()
				return []obs.Sample{
					{Labels: []string{"reason", "straggler"}, Value: float64(s.Redispatches)},
					{Labels: []string{"reason", "worker-death"}, Value: float64(s.Requeues)},
					{Labels: []string{"reason", "deadline"}, Value: float64(s.DeadlineRequeues)},
				}
			})
		r.NewGaugeFunc("fedvald_fleet_quarantined_workers",
			"Worker names currently benched by flap quarantine.",
			func() float64 { return float64(len(c.Stats().Quarantined)) })
		r.NewCollector("fedvald_fleet_quarantine_rejections_total",
			"Attach attempts refused because the worker name was serving a quarantine bench.", obs.TypeCounter,
			func() []obs.Sample {
				return []obs.Sample{{Value: float64(c.Stats().QuarantineRejections)}}
			})
		r.NewCollector("fedvald_fleet_redispatch_wins_total",
			"Speculative copies that answered before the original assignment.", obs.TypeCounter,
			func() []obs.Sample {
				return []obs.Sample{{Value: float64(c.Stats().RedispatchWins)}}
			})
		r.NewCollector("fedvald_fleet_worker_completed_total",
			"Evaluations answered, per attached worker.", obs.TypeCounter,
			func() []obs.Sample {
				return workerSamples(c.Workers(), func(w fedshap.WorkerInfo) float64 { return float64(w.Completed) })
			})
		r.NewCollector("fedvald_fleet_worker_redispatched_total",
			"Speculative relief copies received, per attached worker.", obs.TypeCounter,
			func() []obs.Sample {
				return workerSamples(c.Workers(), func(w fedshap.WorkerInfo) float64 { return float64(w.Redispatched) })
			})
		r.NewCollector("fedvald_fleet_worker_inflight_tasks",
			"Evaluations currently assigned, per attached worker.", obs.TypeGauge,
			func() []obs.Sample {
				return workerSamples(c.Workers(), func(w fedshap.WorkerInfo) float64 { return float64(w.InFlight) })
			})
		r.NewCollector("fedvald_fleet_worker_ewma_seconds",
			"EWMA evaluation latency, per attached worker.", obs.TypeGauge,
			func() []obs.Sample {
				return workerSamples(c.Workers(), func(w fedshap.WorkerInfo) float64 { return w.EWMAMillis / 1000 })
			})
	}
	return t
}

// workerSamples projects the fleet listing into one sample per worker.
// Label identity is the worker name plus the coordinator-assigned id, so
// two workers launched with the same -name stay distinguishable.
func workerSamples(workers []fedshap.WorkerInfo, value func(fedshap.WorkerInfo) float64) []obs.Sample {
	out := make([]obs.Sample, 0, len(workers))
	for _, w := range workers {
		out = append(out, obs.Sample{
			Labels: []string{"worker", w.Name, "id", strconv.Itoa(w.ID)},
			Value:  value(w),
		})
	}
	return out
}

// observeEval routes one evaluation latency sample to its source series.
func (t *telemetry) observeEval(source string, seconds float64) {
	if t == nil {
		return
	}
	switch source {
	case "cache":
		t.evalCache.Observe(seconds)
	case "remote":
		t.evalRemote.Observe(seconds)
	default:
		t.evalLocal.Observe(seconds)
	}
}

// WorkerTelemetry is the fedvalworker daemon's metric surface, served on
// its -pprof debug listener: evaluation counts by outcome and a latency
// histogram. Observe is plugged into evalnet.Worker.Observe.
type WorkerTelemetry struct {
	reg     *obs.Registry
	fresh   *obs.Counter
	warm    *obs.Counter
	errored *obs.Counter
	latency *obs.Histogram
}

// NewWorkerTelemetry builds the fedvalworker registry.
func NewWorkerTelemetry() *WorkerTelemetry {
	r := obs.NewRegistry()
	// const, not var: fedvallint's obsmetrics check verifies help text at
	// compile time, so it must be a compile-time constant.
	const help = "Assignments answered, by outcome: fresh training, warm cache answer, or error."
	return &WorkerTelemetry{
		reg:     r,
		fresh:   r.NewCounter("fedvalworker_evaluations_total", help, "outcome", "fresh"),
		warm:    r.NewCounter("fedvalworker_evaluations_total", help, "outcome", "warm"),
		errored: r.NewCounter("fedvalworker_evaluations_total", help, "outcome", "error"),
		latency: r.NewHistogram("fedvalworker_eval_latency_seconds",
			"Wall time per answered assignment.", evalLatencyBuckets),
	}
}

// Registry exposes the registry for the debug listener's /metrics route.
func (t *WorkerTelemetry) Registry() *obs.Registry { return t.reg }

// Observe records one answered assignment (evalnet.Worker.Observe).
func (t *WorkerTelemetry) Observe(outcome string, seconds float64) {
	switch outcome {
	case "warm":
		t.warm.Inc()
	case "error":
		t.errored.Inc()
	default:
		t.fresh.Inc()
	}
	t.latency.Observe(seconds)
}
