package valserve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/experiments"
)

// runTestDaemon is the FEDSHAP_TEST_DAEMON_DIR entry point (see TestMain):
// a fedvald-style daemon over the additive test game, with journal and
// cache rooted in dir. It writes its listen address to dir/addr for the
// parent test and serves until killed — the crash-recovery e2e SIGKILLs
// it mid-job, exactly like a daemon host dying.
func runTestDaemon(dir string) {
	delayMS, _ := strconv.Atoi(os.Getenv("FEDSHAP_TEST_DAEMON_GAME_DELAY_MS"))
	m, err := NewManager(Config{
		Workers:      1,
		EvalWorkers:  2,
		CacheDir:     filepath.Join(dir, "cache"),
		JournalPath:  filepath.Join(dir, "jobs.jsonl"),
		BuildProblem: gameBuilder(time.Duration(delayMS)*time.Millisecond, nil),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "test daemon:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "test daemon:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(filepath.Join(dir, "addr"), []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "test daemon:", err)
		os.Exit(1)
	}
	_ = (&http.Server{Handler: NewHandler(m)}).Serve(ln)
}

// spawnDaemonProcess re-executes the test binary as a daemon process
// rooted at dir and returns a client for it plus the process handle.
func spawnDaemonProcess(t *testing.T, dir string, gameDelayMS int) (*fedshap.ServiceClient, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"FEDSHAP_TEST_DAEMON_DIR="+dir,
		fmt.Sprintf("FEDSHAP_TEST_DAEMON_GAME_DELAY_MS=%d", gameDelayMS),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addrFile := filepath.Join(dir, "addr")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return fedshap.NewServiceClient("http://" + string(b)), cmd
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon process never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRecoveryE2E is the acceptance end-to-end for the durable
// journal: a real daemon OS process is SIGKILLed in the middle of a job,
// and a manager restarted over the same journal + utility store must
// (1) serve the pre-crash completed job's report bit-identically, and
// (2) resume the interrupted job warm — every coalition persisted before
// the kill is replayed from the store with zero fresh evaluations, and
// the final report is bit-identical to an uninterrupted run.
func TestCrashRecoveryE2E(t *testing.T) {
	dir := t.TempDir()
	client, daemon := spawnDaemonProcess(t, dir, 10)
	ctx := context.Background()

	// Job A completes before the crash; its report must survive verbatim.
	reqA := fedshap.JobRequest{N: 6, Algorithm: "ipss", Gamma: 12, Seed: 5}
	stA, err := client.Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	// Consume A over the SSE stream — the acceptance event sequence
	// (submitted/running → progress → done) on a real daemon.
	var sawProgress, sawDone bool
	finA, err := client.WatchJob(ctx, stA.ID, func(event string, s *fedshap.JobStatus) {
		switch event {
		case "progress":
			sawProgress = true
		case "done":
			sawDone = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finA.State != fedshap.JobDone || !sawProgress || !sawDone {
		t.Fatalf("job A over SSE: state=%s progress=%v done=%v", finA.State, sawProgress, sawDone)
	}

	// Job B: exact over n=8 (256 evaluations, ~10ms each on a 2-slot
	// pool). Kill the daemon once a few dozen utilities are persisted.
	reqB := fedshap.JobRequest{N: 8, Algorithm: "exact", Seed: 1}
	stB, err := client.Submit(ctx, reqB)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.WatchJob(ctx, stB.ID, func(event string, s *fedshap.JobStatus) {
		if s.FreshEvals >= 48 {
			_ = daemon.Process.Kill() // SIGKILL: no shutdown hooks run
		}
	})
	if err == nil {
		t.Fatal("stream survived a SIGKILLed daemon")
	}
	_, _ = daemon.Process.Wait()

	// Restart over the same journal and store, counting every fresh
	// evaluation the second life performs.
	var evals atomic.Int64
	m2, err := NewManager(Config{
		Workers:      1,
		CacheDir:     filepath.Join(dir, "cache"),
		JournalPath:  filepath.Join(dir, "jobs.jsonl"),
		BuildProblem: gameBuilder(0, &evals),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	// (1) Job A recovered with a bit-identical report, no recomputation.
	recA, err := m2.Get(stA.ID)
	if err != nil {
		t.Fatalf("job A not recovered: %v", err)
	}
	if recA.State != fedshap.JobDone || recA.Report == nil {
		t.Fatalf("job A recovered as %s", recA.State)
	}
	for i := range finA.Report.Values {
		if finA.Report.Values[i] != recA.Report.Values[i] {
			t.Errorf("job A value[%d] = %v after restart, want %v", i, recA.Report.Values[i], finA.Report.Values[i])
		}
	}

	// (2) Job B resumes warm and finishes. Every coalition persisted
	// before the kill must come from the store, not retraining: fresh +
	// warmed covers the full power set exactly, and the second life's
	// evaluation count equals its fresh count (zero re-evaluations of
	// replayed coalitions).
	finB := waitState(t, m2, stB.ID, terminal)
	if finB.State != fedshap.JobDone {
		t.Fatalf("job B after crash restart: %s (%s)", finB.State, finB.Error)
	}
	// The kill fired after 48 observed evaluations; allow a little slack
	// for writes that were mid-flight when SIGKILL landed.
	if finB.WarmedCoalitions < 40 {
		t.Errorf("job B warmed only %d coalitions; ~48 were persisted before the kill", finB.WarmedCoalitions)
	}
	if finB.FreshEvals+finB.WarmedCoalitions != 256 {
		t.Errorf("fresh %d + warmed %d != 256: coalitions lost or retrained",
			finB.FreshEvals, finB.WarmedCoalitions)
	}
	if got := int(evals.Load()); got != finB.FreshEvals {
		t.Errorf("second life trained %d coalitions but reported %d fresh: replayed coalitions were re-evaluated",
			got, finB.FreshEvals)
	}

	// Bit-identical to a never-crashed run of the same job.
	base, err := NewManager(Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	stBase, err := base.Submit(reqB)
	if err != nil {
		t.Fatal(err)
	}
	finBase := waitState(t, base, stBase.ID, terminal)
	if finBase.State != fedshap.JobDone {
		t.Fatalf("baseline run: %s (%s)", finBase.State, finBase.Error)
	}
	for i := range finBase.Report.Values {
		if finBase.Report.Values[i] != finB.Report.Values[i] {
			t.Errorf("value[%d]: recovered %v != uninterrupted %v", i, finB.Report.Values[i], finBase.Report.Values[i])
		}
	}
}

// TestServiceEventStream drives the SSE endpoint over real loopback HTTP:
// WatchJob must deliver submitted → running → progress… → done in order,
// and a cancelled watch context must end the stream with ctx.Err while
// the job keeps running.
func TestServiceEventStream(t *testing.T) {
	gate := make(chan struct{})
	first := true
	client, _ := startDaemon(t, Config{
		Workers:     1,
		EvalWorkers: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			if first {
				first = false
				<-gate // hold the single worker so the watched job stays queued
			}
			// A slow game keeps later jobs observable mid-run (the
			// cancelled-watch phase below needs the job still running).
			return gameBuilder(3*time.Millisecond, nil)(req)
		},
	})
	ctx := context.Background()

	if _, err := client.WatchJob(ctx, "no-such-job", nil); !errors.Is(err, fedshap.ErrJobNotFound) {
		t.Errorf("WatchJob(unknown) err = %v, want ErrJobNotFound", err)
	}

	blocker, err := client.Submit(ctx, fedshap.JobRequest{N: 3, Algorithm: "ipss", Gamma: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, client, blocker.ID, func(s *fedshap.JobStatus) bool { return s.State == fedshap.JobRunning })
	st, err := client.Submit(ctx, fedshap.JobRequest{N: 5, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}

	type frame struct {
		event string
		fresh int
	}
	frames := make(chan frame, 256)
	watchErr := make(chan error, 1)
	go func() {
		_, err := client.WatchJob(ctx, st.ID, func(event string, s *fedshap.JobStatus) {
			frames <- frame{event, s.FreshEvals}
		})
		watchErr <- err
	}()
	// The first frame must be the queued snapshot — the job cannot run
	// while the blocker holds the worker.
	select {
	case f := <-frames:
		if f.event != "submitted" {
			t.Errorf("first event = %q, want submitted", f.event)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no snapshot event")
	}
	close(gate)
	if err := <-watchErr; err != nil {
		t.Fatalf("WatchJob: %v", err)
	}
	var types []string
	fresh := -1
	for {
		var f frame
		select {
		case f = <-frames:
		default:
			f = frame{"", -1}
		}
		if f.event == "" {
			break
		}
		if len(types) == 0 || types[len(types)-1] != f.event {
			types = append(types, f.event)
		}
		if f.fresh > fresh {
			fresh = f.fresh
		}
	}
	want := []string{"running", "progress", "done"}
	if len(types) != len(want) {
		t.Fatalf("event sequence after snapshot = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event sequence after snapshot = %v, want %v", types, want)
		}
	}
	if fresh != 32 {
		t.Errorf("final fresh over the stream = %d, want 32 (2^5)", fresh)
	}

	// A watch cancelled mid-stream returns ctx.Err without disturbing the
	// job (256 evaluations at 3ms each: still running at cancel time).
	slow, err := client.Submit(ctx, fedshap.JobRequest{N: 8, Algorithm: "exact", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		wcancel()
	}()
	if _, err := client.WatchJob(wctx, slow.ID, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled watch err = %v, want context.Canceled", err)
	}
	fin := waitJob(t, client, slow.ID, func(s *fedshap.JobStatus) bool { return s.State.Terminal() })
	if fin.State != fedshap.JobDone {
		t.Errorf("job after cancelled watch: %s (%s), want done", fin.State, fin.Error)
	}
}

// waitJob polls over HTTP until the job satisfies ok, or times out.
func waitJob(t *testing.T, client *fedshap.ServiceClient, id string, ok func(*fedshap.JobStatus) bool) *fedshap.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := client.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if ok(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach the expected state in time", id)
	return nil
}
