package valserve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"math"

	"fedshap"
	"fedshap/internal/experiments"
	"fedshap/internal/resilience"
)

// TestDegradedModeFlipCompleteRestore is the degraded-persistence
// contract end to end: a failing disk mid-run flips the manager to
// memory-only operation, jobs submitted while degraded still complete,
// and once writes succeed again the probe restores persistence — with
// the restored journal and store complete enough that a restarted
// manager sees every job and report.
func TestDegradedModeFlipCompleteRestore(t *testing.T) {
	dir := t.TempDir()
	hook := &resilience.Hook{}
	cfg := Config{
		Workers:            1,
		CacheDir:           filepath.Join(dir, "cache"),
		JournalPath:        filepath.Join(dir, "journal.jsonl"),
		Fault:              hook,
		DegradedProbeEvery: 30 * time.Millisecond,
		BuildProblem:       gameBuilder(0, nil),
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}

	req := fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6}

	// Job 1 completes healthy.
	st1, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done1 := waitState(t, m, st1.ID, terminal)
	if done1.State != fedshap.JobDone {
		t.Fatalf("healthy job state = %s", done1.State)
	}
	if m.Degraded() {
		t.Fatal("manager degraded with no fault injected")
	}

	// Disk starts failing: the next persistence write flips the manager.
	hook.Set(func(op string) error { return errors.New("induced: disk full") })
	req2 := req
	req2.Seed = 2 // distinct fingerprint: forces fresh evals and store writes
	st2, err := m.Submit(req2)
	if err != nil {
		t.Fatalf("submit while disk failing: %v", err)
	}
	done2 := waitState(t, m, st2.ID, terminal)
	if done2.State != fedshap.JobDone || done2.Report == nil {
		t.Fatalf("degraded job state = %s (report %v)", done2.State, done2.Report != nil)
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after persistence write failures")
	}
	if got := m.Metrics(); !got.Degraded {
		t.Fatal("Metrics().Degraded = false while degraded")
	}

	// Disk heals: the probe must clear the flag and flush the buffer.
	hook.Clear()
	deadline := time.Now().Add(10 * time.Second)
	for m.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("manager never recovered after the fault cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A clean close must not report the stale write error.
	if err := m.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}

	// A restarted manager replays both jobs with their reports — the
	// restore rewrote the journal from live state, so nothing written
	// into the failing-disk window is missing.
	m2, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for _, id := range []string{st1.ID, st2.ID} {
		st, err := m2.Get(id)
		if err != nil {
			t.Fatalf("job %s lost across degrade/restore/restart: %v", id, err)
		}
		if st.State != fedshap.JobDone || st.Report == nil {
			t.Fatalf("job %s replayed as %s (report %v)", id, st.State, st.Report != nil)
		}
	}
}

// TestDegradedJobBitIdentical checks the acceptance bar directly: a job
// submitted during degraded operation produces the same values as the
// identical job submitted healthy.
func TestDegradedJobBitIdentical(t *testing.T) {
	dir := t.TempDir()
	hook := &resilience.Hook{}
	m, err := NewManager(Config{
		Workers:            1,
		CacheDir:           filepath.Join(dir, "cache"),
		JournalPath:        filepath.Join(dir, "journal.jsonl"),
		Fault:              hook,
		DegradedProbeEvery: 20 * time.Millisecond,
		BuildProblem:       gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	req := fedshap.JobRequest{N: 5, Algorithm: "ipss", Gamma: 8}
	healthy, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ref := waitState(t, m, healthy.ID, terminal)

	hook.Set(func(op string) error { return errors.New("induced: disk full") })
	// A different seed forces fresh evaluations (the first job's cache
	// would otherwise answer everything); then compare against the same
	// seed resubmitted after recovery.
	reqB := req
	reqB.Seed = 3
	degradedJob, err := m.Submit(reqB)
	if err != nil {
		t.Fatal(err)
	}
	degSt := waitState(t, m, degradedJob.ID, terminal)
	if !m.Degraded() {
		t.Fatal("manager not degraded")
	}
	hook.Clear()

	again, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	againSt := waitState(t, m, again.ID, terminal)

	if ref.Report == nil || againSt.Report == nil || degSt.Report == nil {
		t.Fatal("missing reports")
	}
	if len(ref.Report.Values) != len(againSt.Report.Values) {
		t.Fatal("value length mismatch")
	}
	for i := range ref.Report.Values {
		if ref.Report.Values[i] != againSt.Report.Values[i] {
			t.Fatalf("value[%d] differs across degrade window: %v vs %v",
				i, ref.Report.Values[i], againSt.Report.Values[i])
		}
	}
}

// TestJobDeadlineTimesOut submits a job whose per-eval delay guarantees
// it overruns its DeadlineSeconds and checks it terminates as timed_out
// with the deadline in the error, counted in the metrics snapshot.
func TestJobDeadlineTimesOut(t *testing.T) {
	m, err := NewManager(Config{
		Workers:      1,
		BuildProblem: gameBuilder(20*time.Millisecond, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	req := fedshap.JobRequest{N: 6, Algorithm: "ipss", Gamma: 40, DeadlineSeconds: 0.1}
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	end := waitState(t, m, st.ID, terminal)
	if end.State != fedshap.JobTimedOut {
		t.Fatalf("state = %s, want %s (error %q)", end.State, fedshap.JobTimedOut, end.Error)
	}
	if !strings.Contains(end.Error, "deadline exceeded") {
		t.Errorf("error = %q, want mention of the deadline", end.Error)
	}
	if mt := m.Metrics(); mt.Jobs.TimedOut != 1 {
		t.Errorf("Metrics().Jobs.TimedOut = %d, want 1", mt.Jobs.TimedOut)
	}
}

// TestDeadlineValidation rejects non-finite and negative deadlines.
func TestDeadlineValidation(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, d := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 4, DeadlineSeconds: d}); err == nil {
			t.Errorf("Submit with deadline_seconds=%v accepted", d)
		}
	}
}

// TestQueueFull429RetryAfter drives the HTTP layer: queue saturation is
// 429 Too Many Requests with a Retry-After hint, not 503.
func TestQueueFull429RetryAfter(t *testing.T) {
	gate := make(chan struct{})
	m, err := NewManager(Config{
		Workers:  1,
		QueueCap: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			<-gate
			return gameBuilder(0, nil)(req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate)

	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	req := fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 4}
	post := func() *http.Response {
		body, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	first := post()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", first.StatusCode)
	}
	var st1 fedshap.JobStatus
	_ = json.NewDecoder(first.Body).Decode(&st1)
	waitState(t, m, st1.ID, func(s *fedshap.JobStatus) bool { return s.State == fedshap.JobRunning })

	if second := post(); second.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", second.StatusCode)
	}
	third := post()
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: %d, want 429", third.StatusCode)
	}
	ra, err := strconv.Atoi(third.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", third.Header.Get("Retry-After"))
	}
}

// TestHealthzDegraded reports degraded (still 200) on the liveness probe.
func TestHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	hook := &resilience.Hook{}
	m, err := NewManager(Config{
		Workers:            1,
		JournalPath:        filepath.Join(dir, "journal.jsonl"),
		Fault:              hook,
		DegradedProbeEvery: time.Hour, // keep it degraded for the assertion
		BuildProblem:       gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	health := func() string {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d", resp.StatusCode)
		}
		var body map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return body["status"]
	}

	if got := health(); got != "ok" {
		t.Fatalf("healthy /healthz status = %q", got)
	}
	hook.Set(func(op string) error { return errors.New("induced: disk full") })
	st, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, terminal)
	if !m.Degraded() {
		t.Fatal("manager not degraded")
	}
	if got := health(); got != "degraded" {
		t.Fatalf("degraded /healthz status = %q", got)
	}
}
