package valserve

import (
	"context"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fedshap"
)

// TestSSEResumeAcrossRestart: a WatchJob client holding a Last-Event-ID
// from the daemon's previous life must keep working across a restart.
// The event hub seeds each life's sequence counter from its creation
// time, so the new life's ids are strictly above every id the old life
// issued — a resuming client's stale Last-Event-ID therefore must not
// filter (drop) the new life's progress events, and the client must see
// the recovered job run to completion exactly once.
func TestSSEResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.jsonl")
	cache := filepath.Join(dir, "cache")

	newManager := func() *Manager {
		t.Helper()
		m, err := NewManager(Config{
			Workers:     1,
			CacheDir:    cache,
			JournalPath: journal,
			// Slow enough that the recovered job is still running when the
			// watcher's reconnect lands (WatchJob backs off 250ms between
			// attempts).
			BuildProblem: gameBuilder(50*time.Millisecond, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Life A on a fixed port the restart will rebind.
	mA := newManager()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srvA := &http.Server{Handler: NewHandler(mA)}
	go srvA.Serve(ln)

	client := fedshap.NewServiceClient("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := client.Submit(ctx, fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 16})
	if err != nil {
		t.Fatal(err)
	}

	// The watcher logs every event with the daemon life it arrived in.
	var mu sync.Mutex
	var lifeB bool
	type obsEvent struct {
		typ   string
		lifeB bool
	}
	var events []obsEvent
	watchDone := make(chan struct{})
	var final *fedshap.JobStatus
	var watchErr error
	go func() {
		defer close(watchDone)
		final, watchErr = client.WatchJob(ctx, st.ID, func(event string, _ *fedshap.JobStatus) {
			mu.Lock()
			events = append(events, obsEvent{typ: event, lifeB: lifeB})
			mu.Unlock()
		})
	}()

	// Let the job make visible progress in life A so the watcher holds a
	// real Last-Event-ID from this hub epoch.
	waitState(t, mA, st.ID, func(s *fedshap.JobStatus) bool { return s.FreshEvals >= 2 })

	// Restart: kill the HTTP server first so the watcher's stream breaks
	// before Close's shutdown-cancel transition is published (a live
	// stream would hand the client a spurious "cancelled" terminal), then
	// close the manager — which journals the interrupted job as queued —
	// and bring up life B over the same journal, cache and address.
	srvA.Close()
	if err := mA.Close(); err != nil {
		t.Fatal(err)
	}
	mB := newManager()
	defer mB.Close()
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srvB := &http.Server{Handler: NewHandler(mB)}
	defer srvB.Close()
	mu.Lock()
	lifeB = true
	mu.Unlock()
	go srvB.Serve(ln2)

	<-watchDone
	if watchErr != nil {
		t.Fatalf("WatchJob did not survive the restart: %v", watchErr)
	}
	if final == nil || final.State != fedshap.JobDone {
		t.Fatalf("final state = %+v, want done", final)
	}

	mu.Lock()
	defer mu.Unlock()
	var doneEvents, lifeBProgress int
	for _, ev := range events {
		if ev.typ == "done" {
			doneEvents++
		}
		if ev.lifeB && (ev.typ == "progress" || ev.typ == "running") {
			lifeBProgress++
		}
	}
	// Exactly one terminal event: the resume neither replayed the job's
	// stream from scratch nor delivered a stale terminal.
	if doneEvents != 1 {
		t.Errorf("watcher saw %d done events, want exactly 1 (events: %+v)", doneEvents, events)
	}
	// The new life's progress was not filtered by the stale Last-Event-ID:
	// the new hub epoch issues ids above every old one.
	if lifeBProgress == 0 {
		t.Errorf("watcher saw no progress/running events after the restart (events: %+v)", events)
	}
}
