package valserve

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/experiments"
)

// versionedGameBuilder injects an additive game whose per-client weights
// move with the request's dataset versions: w_i = (i+1) + 10·version_i.
// Reading req.Versions is exactly what the standard BuildProblem does with
// real datasets (perturb the versioned clients), shrunk to a closed form.
func versionedGameBuilder(evalCount *atomic.Int64) func(fedshap.JobRequest) (*experiments.Problem, error) {
	return func(req fedshap.JobRequest) (*experiments.Problem, error) {
		vers := req.Versions
		return experiments.NewFuncProblem("versioned-game", req.N, func(s combin.Coalition) float64 {
			if evalCount != nil {
				evalCount.Add(1)
			}
			var u float64
			for _, i := range s.Members() {
				w := float64(i + 1)
				if i < len(vers) {
					w += 10 * float64(vers[i])
				}
				u += w
			}
			return u
		}), nil
	}
}

// ranking returns client indices sorted by descending value.
func ranking(values []float64) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	return idx
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// near tolerates accumulation error when comparing against an analytic
// value; run-vs-run comparisons stay bitwise.
func near(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runOnce executes one job on a fresh manager (no shared cache) and
// returns its terminal status.
func runOnce(t *testing.T, req fedshap.JobRequest) *fedshap.JobStatus {
	t.Helper()
	m, err := NewManager(Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m, st.ID, terminal)
	if st.State != fedshap.JobDone {
		t.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return st
}

// TestAnytimeValidation covers the request-level rules: confidence range,
// rank_stop prerequisites, and version vector sanity.
func TestAnytimeValidation(t *testing.T) {
	m, err := NewManager(Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cases := []struct {
		name string
		req  fedshap.JobRequest
	}{
		{"confidence too high", fedshap.JobRequest{N: 4, Algorithm: "ipss", Confidence: 1}},
		{"confidence negative", fedshap.JobRequest{N: 4, Algorithm: "ipss", Confidence: -0.1}},
		{"rank_stop without confidence", fedshap.JobRequest{N: 4, Algorithm: "ipss", RankStop: true}},
		{"rank_stop on partial-plan algorithm", fedshap.JobRequest{N: 4, Algorithm: "tmc", Confidence: 0.9, RankStop: true}},
		{"too many versions", fedshap.JobRequest{N: 4, Algorithm: "ipss", Versions: []int{1, 0, 0, 0, 1}}},
		{"negative version", fedshap.JobRequest{N: 4, Algorithm: "ipss", Versions: []int{-1, 0, 0, 2}}},
	}
	for _, tc := range cases {
		if _, err := m.Submit(tc.req); err == nil {
			t.Errorf("%s: Submit accepted %+v", tc.name, tc.req)
		}
	}

	// Sanity: the confidence+rank_stop combination those cases circle is
	// accepted on a plan-exhaustive algorithm.
	if _, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Confidence: 0.9, RankStop: true}); err != nil {
		t.Errorf("valid rank_stop request rejected: %v", err)
	}
}

// TestVersionsFingerprint pins the version vector's fingerprint semantics:
// all-zero vectors normalise away (same fingerprint as version-less), and
// distinct non-zero vectors get distinct fingerprints.
func TestVersionsFingerprint(t *testing.T) {
	base := fedshap.JobRequest{N: 5, Algorithm: "ipss"}
	zero := fedshap.JobRequest{N: 5, Algorithm: "ipss", Versions: []int{0, 0, 0, 0, 0}}
	v1 := fedshap.JobRequest{N: 5, Algorithm: "ipss", Versions: []int{0, 1, 0, 0, 0}}
	v2 := fedshap.JobRequest{N: 5, Algorithm: "ipss", Versions: []int{0, 2, 0, 0, 0}}
	Normalize(&base)
	Normalize(&zero)
	Normalize(&v1)
	Normalize(&v2)
	if zero.Versions != nil {
		t.Errorf("all-zero versions survived Normalize: %v", zero.Versions)
	}
	if Fingerprint(base) != Fingerprint(zero) {
		t.Error("all-zero version vector changed the fingerprint")
	}
	if Fingerprint(base) == Fingerprint(v1) || Fingerprint(v1) == Fingerprint(v2) {
		t.Error("distinct version vectors must yield distinct fingerprints")
	}
	if !equalInts(v1.Versions, []int{0, 1}) {
		t.Errorf("trailing zeros not trimmed: %v", v1.Versions)
	}
}

// TestAnytimeDeterminism is the PR 4 determinism suite extended to anytime
// tracking: with early stop disabled, a job run with a confidence request
// reports bit-identical values and evaluation counts to the same job run
// without one — per algorithm, at one and at three evaluation workers.
// Plan-driven algorithms exercise the chunked drive path, tmc the passive
// observer hook.
func TestAnytimeDeterminism(t *testing.T) {
	for _, alg := range []string{"ipss", "exact", "stratified-mc", "tmc"} {
		var baseline *fedshap.Report
		for _, workers := range []int{1, 3} {
			for _, confidence := range []float64{0, 0.9} {
				req := fedshap.JobRequest{
					N: 6, Algorithm: alg, Gamma: 40, Seed: 7,
					Workers: workers, Confidence: confidence,
				}
				st := runOnce(t, req)
				rep := st.Report
				if baseline == nil {
					baseline = rep
					continue
				}
				if !equalFloats(rep.Values, baseline.Values) {
					t.Errorf("%s workers=%d confidence=%g: values %v != baseline %v",
						alg, workers, confidence, rep.Values, baseline.Values)
				}
				if rep.Evaluations != baseline.Evaluations {
					t.Errorf("%s workers=%d confidence=%g: %d evaluations, baseline %d",
						alg, workers, confidence, rep.Evaluations, baseline.Evaluations)
				}
				if confidence > 0 {
					if rep.EarlyStopped {
						t.Errorf("%s: early-stopped without rank_stop", alg)
					}
					if len(rep.CILow) != 6 || len(rep.CIHigh) != 6 || len(rep.AnytimeValues) != 6 {
						t.Errorf("%s: anytime decoration missing: %+v", alg, rep)
					}
					for i := range rep.CILow {
						if rep.CILow[i] > rep.AnytimeValues[i] || rep.AnytimeValues[i] > rep.CIHigh[i] {
							t.Errorf("%s: estimate %d outside its own interval", alg, i)
						}
					}
				} else if rep.CILow != nil || rep.AnytimeValues != nil {
					t.Errorf("%s: control run carries anytime fields", alg)
				}
			}
		}
	}
}

// TestAnytimeExactCollapse: an exhaustively-enumerated anytime job ends
// with every interval collapsed to a point — the estimand is known, and
// the report says so.
func TestAnytimeExactCollapse(t *testing.T) {
	st := runOnce(t, fedshap.JobRequest{N: 5, Algorithm: "exact", Seed: 3, Confidence: 0.95})
	rep := st.Report
	for i := range rep.AnytimeValues {
		if rep.CILow[i] != rep.AnytimeValues[i] || rep.CIHigh[i] != rep.AnytimeValues[i] {
			t.Fatalf("client %d interval [%g,%g] not collapsed onto %g after full enumeration",
				i, rep.CILow[i], rep.CIHigh[i], rep.AnytimeValues[i])
		}
		// The injected game is additive, so the exact value is i+1 and the
		// tracker's mean-of-marginals must agree with it.
		if want := float64(i + 1); !near(rep.AnytimeValues[i], want) {
			t.Fatalf("client %d anytime estimate %g, want %g", i, rep.AnytimeValues[i], want)
		}
	}
}

// TestEarlyStopEndToEnd is the acceptance scenario over loopback HTTP: an
// IPSS job with rank_stop finishes with strictly fewer fresh evaluations
// than the identical full-budget control while reporting the same client
// ranking, and streams interim values events on the way. n=11/γ=500 puts
// hundreds of coalitions in each sampled stratum — the regime where the
// without-replacement (Serfling) correction resolves rankings well before
// the plan runs out.
func TestEarlyStopEndToEnd(t *testing.T) {
	client, _ := startDaemon(t, Config{Workers: 1, BuildProblem: gameBuilder(2*time.Millisecond, nil)})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	base := fedshap.JobRequest{N: 11, Algorithm: "ipss", Gamma: 500, Seed: 11}

	control, err := client.Submit(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	controlSt, err := client.Wait(ctx, control.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if controlSt.State != fedshap.JobDone {
		t.Fatalf("control job %s: %s", controlSt.State, controlSt.Error)
	}

	stop := base
	stop.Confidence = 0.6
	stop.RankStop = true
	stopJob, err := client.Submit(ctx, stop)
	if err != nil {
		t.Fatal(err)
	}
	var snapshots []*fedshap.InterimValues
	stopSt, err := client.WatchValues(ctx, stopJob.ID, nil,
		func(iv *fedshap.InterimValues) { snapshots = append(snapshots, iv) })
	if err != nil {
		t.Fatal(err)
	}
	if stopSt.State != fedshap.JobDone {
		t.Fatalf("rank_stop job %s: %s", stopSt.State, stopSt.Error)
	}

	rep := stopSt.Report
	if !rep.EarlyStopped {
		t.Fatal("rank_stop job did not stop early")
	}
	if rep.BudgetUnspent <= 0 {
		t.Fatalf("early-stopped job reports BudgetUnspent=%d", rep.BudgetUnspent)
	}
	if stopSt.FreshEvals >= controlSt.FreshEvals {
		t.Fatalf("early stop spent %d fresh evaluations, control %d — no saving",
			stopSt.FreshEvals, controlSt.FreshEvals)
	}
	if got, want := ranking(rep.Values), ranking(controlSt.Report.Values); !equalInts(got, want) {
		t.Fatalf("early-stopped ranking %v differs from control %v", got, want)
	}
	if len(snapshots) == 0 {
		t.Fatal("no interim values events observed on the SSE stream")
	}
	last := snapshots[len(snapshots)-1]
	if !last.Resolved {
		t.Errorf("final snapshot not marked resolved: %+v", last)
	}
	if last.PlannedCoalitions != 500 {
		t.Errorf("final snapshot planned=%d, want 500", last.PlannedCoalitions)
	}
	for i := range last.Values {
		if last.CILow[i] > last.Values[i] || last.Values[i] > last.CIHigh[i] {
			t.Errorf("snapshot interval %d does not contain its estimate", i)
		}
	}
	t.Logf("early stop: %d/%d fresh evaluations (%d unspent), %d values events",
		stopSt.FreshEvals, controlSt.FreshEvals, rep.BudgetUnspent, len(snapshots))
}

// TestRevalueDelta covers delta revaluation end to end at the manager
// layer: a changed-client bump migrates every untouched coalition's
// utility to the new fingerprint, the follow-up job spends fresh
// evaluations only on coalitions containing the changed client, and its
// values are bit-identical to a from-scratch run of the versioned problem.
func TestRevalueDelta(t *testing.T) {
	var evals atomic.Int64
	m, err := NewManager(Config{
		Workers:      1,
		CacheDir:     t.TempDir(),
		BuildProblem: versionedGameBuilder(&evals),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	base := fedshap.JobRequest{N: 6, Algorithm: "exact", Seed: 5}
	st, err := m.Submit(base)
	if err != nil {
		t.Fatal(err)
	}
	st = waitState(t, m, st.ID, terminal)
	if st.State != fedshap.JobDone {
		t.Fatalf("base job %s: %s", st.State, st.Error)
	}
	if st.FreshEvals != 64 {
		t.Fatalf("base exact job made %d fresh evaluations, want 64", st.FreshEvals)
	}

	// Guard-rails first: unknown job, empty and out-of-range change sets,
	// and revaluing a non-terminal job are all rejected.
	if _, err := m.Revalue("nope", []int{0}); !errors.Is(err, ErrNotFound) {
		t.Errorf("Revalue(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := m.Revalue(st.ID, nil); err == nil {
		t.Error("Revalue with empty change set accepted")
	}
	if _, err := m.Revalue(st.ID, []int{6}); err == nil {
		t.Error("Revalue with out-of-range client accepted")
	}

	rst, err := m.Revalue(st.ID, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if rst.RevalueOf != st.ID {
		t.Errorf("RevalueOf = %q, want %q", rst.RevalueOf, st.ID)
	}
	if rst.Fingerprint == st.Fingerprint {
		t.Error("revaluation kept the base fingerprint")
	}
	if !equalInts(rst.Request.Versions, []int{0, 0, 1}) {
		t.Errorf("revaluation versions = %v, want [0 0 1]", rst.Request.Versions)
	}
	rst = waitState(t, m, rst.ID, terminal)
	if rst.State != fedshap.JobDone {
		t.Fatalf("revalue job %s: %s", rst.State, rst.Error)
	}
	// Exactly the 2^5 = 32 coalitions containing client 2 retrain; the 32
	// disjoint ones were migrated and arrive warm.
	if rst.FreshEvals != 32 {
		t.Errorf("revalue job made %d fresh evaluations, want 32", rst.FreshEvals)
	}
	if rst.WarmedCoalitions != 32 {
		t.Errorf("revalue job warm-started %d coalitions, want 32", rst.WarmedCoalitions)
	}
	for i, v := range rst.Report.Values {
		want := float64(i + 1)
		if i == 2 {
			want += 10
		}
		if !near(v, want) {
			t.Errorf("revalued value[%d] = %g, want %g", i, v, want)
		}
	}

	// Bit-identical to a cold full recompute of the same versioned
	// problem on an independent manager.
	m2, err := NewManager(Config{Workers: 1, BuildProblem: versionedGameBuilder(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	full := base
	full.Versions = []int{0, 0, 1, 0, 0, 0}
	fst, err := m2.Submit(full)
	if err != nil {
		t.Fatal(err)
	}
	fst = waitState(t, m2, fst.ID, terminal)
	if fst.State != fedshap.JobDone {
		t.Fatalf("full recompute %s: %s", fst.State, fst.Error)
	}
	if fst.Fingerprint != rst.Fingerprint {
		t.Errorf("full recompute fingerprint %s != revaluation fingerprint %s", fst.Fingerprint, rst.Fingerprint)
	}
	if !equalFloats(fst.Report.Values, rst.Report.Values) {
		t.Errorf("delta revaluation %v differs from full recompute %v", rst.Report.Values, fst.Report.Values)
	}

	// Chaining works: revaluing the revaluation bumps client 2 again.
	r2, err := m.Revalue(rst.ID, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(r2.Request.Versions, []int{0, 0, 2}) {
		t.Errorf("chained revaluation versions = %v, want [0 0 2]", r2.Request.Versions)
	}
	r2 = waitState(t, m, r2.ID, terminal)
	if r2.State != fedshap.JobDone {
		t.Fatalf("chained revaluation %s: %s", r2.State, r2.Error)
	}
	if v := r2.Report.Values[2]; !near(v, 3+20) {
		t.Errorf("chained revaluation value[2] = %g, want 23", v)
	}
}
