package valserve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/experiments"
)

// sseFrame is one parsed server-sent event (or heartbeat comment).
type sseFrame struct {
	id      string
	event   string
	status  *fedshap.JobStatus
	comment bool
}

// readFrame parses the next SSE frame off the stream; heartbeat comments
// are returned as their own frames so tests can assert on them.
func readFrame(t *testing.T, br *bufio.Reader) sseFrame {
	t.Helper()
	var f sseFrame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended mid-frame: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if f.comment || f.status != nil {
				return f
			}
		case strings.HasPrefix(line, ":"):
			f.comment = true
		case strings.HasPrefix(line, "id:"):
			f.id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			f.event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			var st fedshap.JobStatus
			if err := json.Unmarshal([]byte(strings.TrimSpace(strings.TrimPrefix(line, "data:"))), &st); err != nil {
				t.Fatalf("bad event payload: %v", err)
			}
			f.status = &st
		}
	}
}

// openStream opens a raw SSE connection for a job, optionally resuming
// from a previous event id.
func openStream(t *testing.T, base, jobID, lastEventID string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

// TestSSEHeartbeat holds a job idle and checks the events stream emits
// ": ping" comments on the configured interval — the traffic that keeps
// aggressive proxies from killing quiet streams.
func TestSSEHeartbeat(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	client, _ := startDaemon(t, Config{
		Workers:      1,
		SSEHeartbeat: 30 * time.Millisecond,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			<-gate // park the job mid-build so the stream stays quiet
			return gameBuilder(0, nil)(req)
		},
	})
	st, err := client.Submit(context.Background(), fedshap.JobRequest{N: 4, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}

	br, closeStream := openStream(t, client.BaseURL, st.ID, "")
	defer closeStream()
	// Initial snapshot first, then heartbeats while the job is parked.
	if f := readFrame(t, br); f.status == nil {
		t.Fatalf("first frame = %+v, want the snapshot event", f)
	}
	pings := 0
	for pings < 3 {
		f := readFrame(t, br)
		if f.comment {
			pings++
		}
	}

	// Releasing the job ends the stream with a terminal event, pings
	// notwithstanding.
	released = true
	close(gate)
	for {
		f := readFrame(t, br)
		if f.status != nil && f.status.State.Terminal() {
			if f.status.State != fedshap.JobDone {
				t.Fatalf("terminal state = %s (%s)", f.status.State, f.status.Error)
			}
			return
		}
	}
}

// TestSSELastEventIDResume reconnects mid-job with the Last-Event-ID of
// the snapshot already held: the daemon re-seeds the stream with the
// *current* snapshot (state may have moved past the stamped id, so the
// seed is never filtered) and then delivers only events newer than the
// resumed id, with terminal events always getting through.
func TestSSELastEventIDResume(t *testing.T) {
	gate := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()
	client, _ := startDaemon(t, Config{
		Workers:      1,
		SSEHeartbeat: -1, // keep frames deterministic for the id assertions
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			<-gate
			return gameBuilder(0, nil)(req)
		},
	})
	st, err := client.Submit(context.Background(), fedshap.JobRequest{N: 4, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}

	// First connection: hold the running snapshot and its event id.
	br, closeStream := openStream(t, client.BaseURL, st.ID, "")
	first := readFrame(t, br)
	if first.status == nil || first.id == "" {
		t.Fatalf("first frame = %+v, want a snapshot with an event id", first)
	}
	closeStream()

	// Resume past it: the stream re-seeds with the current snapshot (the
	// job may have progressed past the stamped id, so the seed always
	// goes out), then carries only events newer than the resumed id.
	br2, closeStream2 := openStream(t, client.BaseURL, st.ID, first.id)
	defer closeStream2()
	f := readFrame(t, br2)
	if f.status == nil || f.id != first.id {
		t.Fatalf("resumed seed = %+v, want the current snapshot stamped id %s", f, first.id)
	}
	released = true
	close(gate)
	for f = readFrame(t, br2); f.status == nil || !f.status.State.Terminal(); f = readFrame(t, br2) {
		if f.id != "" && f.id <= first.id {
			t.Errorf("resumed stream replayed stale event id %s (resumed from %s)", f.id, first.id)
		}
	}
	if f.status.State != fedshap.JobDone {
		t.Fatalf("terminal state = %s (%s)", f.status.State, f.status.Error)
	}
	// A watcher arriving after the terminal event still gets the final
	// snapshot even when its Last-Event-ID is current: terminal events
	// are never filtered.
	br3, closeStream3 := openStream(t, client.BaseURL, st.ID, f.id)
	defer closeStream3()
	fin := readFrame(t, br3)
	if fin.status == nil || fin.status.State != fedshap.JobDone {
		t.Fatalf("post-terminal resume frame = %+v, want the done snapshot", fin)
	}
}
