package valserve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"fedshap"
)

// startDaemon serves a Manager over a real loopback TCP listener — the
// same wiring as cmd/fedvald — and returns a ServiceClient for it.
func startDaemon(t *testing.T, cfg Config) (*fedshap.ServiceClient, *Manager) {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(m)}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = m.Close()
	})
	return fedshap.NewServiceClient("http://" + ln.Addr().String()), m
}

// TestServiceEndToEnd drives the full daemon flow over loopback HTTP with
// real federated training: submit a small job, observe monotone progress,
// fetch the report, then resubmit and see it served entirely from the
// persistent cache with zero fresh evaluations.
func TestServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real FL models")
	}
	client, _ := startDaemon(t, Config{Workers: 1, CacheDir: t.TempDir()})
	ctx := context.Background()

	req := fedshap.JobRequest{
		Data:      "synthetic",
		Model:     "logreg",
		N:         5,
		Algorithm: "ipss",
		Scale:     "tiny",
		Seed:      7,
	}
	st, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != fedshap.JobQueued && st.State != fedshap.JobRunning {
		t.Fatalf("initial state = %s", st.State)
	}
	if st.Fingerprint == "" || st.Budget <= 0 {
		t.Fatalf("initial status missing fingerprint/budget: %+v", st)
	}

	var progress []int
	fin, err := client.Wait(ctx, st.ID, 10*time.Millisecond, func(s *fedshap.JobStatus) {
		progress = append(progress, s.FreshEvals)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != fedshap.JobDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatalf("progress not monotone: %v", progress)
		}
	}
	if fin.FreshEvals == 0 || fin.FreshEvals > fin.Budget {
		t.Errorf("fresh evals = %d, budget %d", fin.FreshEvals, fin.Budget)
	}
	rep, err := client.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Values) != req.N || len(rep.Names) != req.N {
		t.Fatalf("report has %d values / %d names, want %d", len(rep.Values), len(rep.Names), req.N)
	}

	// Resubmit the identical job: served from the persistent cache.
	st2, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := client.Wait(ctx, st2.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.State != fedshap.JobDone {
		t.Fatalf("warm rerun state = %s (%s)", fin2.State, fin2.Error)
	}
	if fin2.FreshEvals != 0 {
		t.Errorf("warm rerun fresh evals = %d, want 0", fin2.FreshEvals)
	}
	if fin2.WarmedCoalitions == 0 {
		t.Error("warm rerun loaded no cached utilities")
	}
	for i := range rep.Values {
		if rep.Values[i] != fin2.Report.Values[i] {
			t.Errorf("value[%d] differs on warm rerun: %v vs %v", i, rep.Values[i], fin2.Report.Values[i])
		}
	}

	// The job listing knows both runs.
	jobs, err := client.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("listed %d jobs, want 2", len(jobs))
	}
}

// TestServiceCancelOverHTTP cancels a running job through the API and
// verifies fresh evaluations stop.
func TestServiceCancelOverHTTP(t *testing.T) {
	var evals atomic.Int64
	client, _ := startDaemon(t, Config{
		Workers:      1,
		EvalWorkers:  1,
		BuildProblem: gameBuilder(3*time.Millisecond, &evals),
	})
	ctx := context.Background()

	st, err := client.Submit(ctx, fedshap.JobRequest{N: 8, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job demonstrably makes progress, then cancel it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, err := client.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.FreshEvals >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := client.Wait(ctx, st.ID, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != fedshap.JobCancelled {
		t.Fatalf("state = %s (%s), want cancelled", fin.State, fin.Error)
	}
	if fin.FreshEvals >= fin.Budget {
		t.Errorf("cancelled job consumed the whole budget (%d/%d)", fin.FreshEvals, fin.Budget)
	}
	// No report for a cancelled job: the endpoint answers 409.
	var se *fedshap.ServiceError
	if _, err := client.Report(ctx, st.ID); !errors.As(err, &se) || se.StatusCode != http.StatusConflict {
		t.Errorf("Report on cancelled job = %v, want HTTP 409", err)
	}
	settled := evals.Load()
	time.Sleep(50 * time.Millisecond)
	if got := evals.Load(); got != settled {
		t.Errorf("evaluations continued after cancellation: %d → %d", settled, got)
	}
}

// TestServiceHTTPErrors covers the API's error envelope.
func TestServiceHTTPErrors(t *testing.T) {
	client, _ := startDaemon(t, Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	ctx := context.Background()

	if _, err := client.Job(ctx, "no-such-job"); !errors.Is(err, fedshap.ErrJobNotFound) {
		t.Errorf("unknown job err = %v, want ErrJobNotFound", err)
	}
	if _, err := client.Cancel(ctx, "no-such-job"); !errors.Is(err, fedshap.ErrJobNotFound) {
		t.Errorf("cancel unknown job err = %v, want ErrJobNotFound", err)
	}
	var se *fedshap.ServiceError
	if _, err := client.Submit(ctx, fedshap.JobRequest{N: 1, Algorithm: "ipss"}); !errors.As(err, &se) || se.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid submit err = %v, want HTTP 400", err)
	}
}
