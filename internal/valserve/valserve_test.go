package valserve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/experiments"
)

// waitState polls until the job reaches a state satisfying ok, or times out.
func waitState(t *testing.T, m *Manager, id string, ok func(*fedshap.JobStatus) bool) *fedshap.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if ok(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach the expected state in time", id)
	return nil
}

func terminal(st *fedshap.JobStatus) bool { return st.State.Terminal() }

// gameBuilder injects a deterministic cooperative game so manager tests
// need no FL training: U(S) = Σ_{i∈S} (i+1), optionally slowed per eval.
func gameBuilder(delay time.Duration, evalCount *atomic.Int64) func(fedshap.JobRequest) (*experiments.Problem, error) {
	return func(req fedshap.JobRequest) (*experiments.Problem, error) {
		return experiments.NewFuncProblem("injected-game", req.N, func(s combin.Coalition) float64 {
			if evalCount != nil {
				evalCount.Add(1)
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			var u float64
			for _, i := range s.Members() {
				u += float64(i + 1)
			}
			return u
		}), nil
	}
}

func TestNormalizeAndFingerprint(t *testing.T) {
	a := fedshap.JobRequest{Data: " FEMNIST ", Model: "MLP", N: 6, Algorithm: "IPSS"}
	b := fedshap.JobRequest{N: 6, Algorithm: "tmc", Gamma: 99}
	Normalize(&a)
	Normalize(&b)
	if a.Data != "femnist" || a.Scale != "small" || a.Seed != 1 || a.Gamma != experiments.GammaForN(6) {
		t.Errorf("Normalize(a) = %+v", a)
	}
	// Sampler settings must not change the problem fingerprint...
	if Fingerprint(a) != Fingerprint(b) {
		t.Errorf("fingerprint depends on algorithm/gamma: %s vs %s", Fingerprint(a), Fingerprint(b))
	}
	// ...while problem settings must.
	c := a
	c.Seed = 2
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprint ignores seed")
	}
	d := a
	d.N = 7
	if Fingerprint(a) == Fingerprint(d) {
		t.Error("fingerprint ignores n")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bad := []fedshap.JobRequest{
		{Data: "femnist", Model: "mlp", N: 1, Algorithm: "ipss"},   // n too small
		{Data: "femnist", Model: "mlp", N: 6, Algorithm: "nope"},   // unknown alg
		{Data: "nope", Model: "mlp", N: 6, Algorithm: "ipss"},      // unknown dataset
		{Data: "femnist", Model: "nope", N: 6, Algorithm: "ipss"},  // unknown model
		{Data: "femnist", Model: "mlp", N: 40, Algorithm: "exact"}, // power set too large
		{Data: "synthetic", Setup: "bad", Model: "mlp", N: 6, Algorithm: "ipss"},
	}
	for _, req := range bad {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("Submit(%+v) accepted", req)
		}
	}
}

func TestQueueFullAndQueuedCancel(t *testing.T) {
	gate := make(chan struct{})
	m, err := NewManager(Config{
		Workers:  1,
		QueueCap: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			<-gate // hold the single worker until released
			return gameBuilder(0, nil)(req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(gate)

	req := fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6}
	st1, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick job 1 up so the queue is empty again.
	waitState(t, m, st1.ID, func(s *fedshap.JobStatus) bool { return s.State == fedshap.JobRunning })

	st2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit err = %v, want ErrQueueFull", err)
	}

	// Cancelling the queued job terminates it without ever running.
	cst, err := m.Cancel(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cst.State != fedshap.JobCancelled || cst.StartedAt != nil {
		t.Errorf("queued cancel: state=%s startedAt=%v", cst.State, cst.StartedAt)
	}
}

// TestCancelRunningJobStopsFreshEvals is the core cancellation guarantee:
// after cancel, the job terminates as cancelled and issues no further
// fresh coalition evaluations.
func TestCancelRunningJobStopsFreshEvals(t *testing.T) {
	var evals atomic.Int64
	m, err := NewManager(Config{
		Workers:      1,
		EvalWorkers:  1, // sequential evaluation: deterministic progress
		BuildProblem: gameBuilder(3*time.Millisecond, &evals),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// exact on n=8 needs 256 evaluations ≈ 0.8s at 3ms each — plenty of
	// time to observe and cancel mid-run.
	st, err := m.Submit(fedshap.JobRequest{N: 8, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Budget != 256 {
		t.Errorf("budget = %d, want 256 (2^8)", st.Budget)
	}
	waitState(t, m, st.ID, func(s *fedshap.JobStatus) bool { return s.FreshEvals >= 3 })
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, terminal)
	if fin.State != fedshap.JobCancelled {
		t.Fatalf("state = %s (%s), want cancelled", fin.State, fin.Error)
	}
	if fin.FreshEvals >= 256 {
		t.Errorf("cancelled job still ran all %d evaluations", fin.FreshEvals)
	}
	if fin.Report != nil {
		t.Error("cancelled job produced a report")
	}
	// No evaluations may trickle in after the terminal state.
	settled := evals.Load()
	time.Sleep(50 * time.Millisecond)
	if got := evals.Load(); got != settled {
		t.Errorf("evaluations continued after cancellation: %d → %d", settled, got)
	}
}

// TestWarmResubmitZeroFresh is the persistence guarantee: an identical job
// resubmitted — including across a manager restart — is served entirely
// from the disk cache and reports zero fresh evaluations.
func TestWarmResubmitZeroFresh(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Manager {
		m, err := NewManager(Config{
			Workers:      1,
			CacheDir:     dir,
			BuildProblem: gameBuilder(0, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	req := fedshap.JobRequest{N: 6, Algorithm: "ipss", Gamma: 12, Seed: 3}

	m1 := mk()
	st, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	first := waitState(t, m1, st.ID, terminal)
	if first.State != fedshap.JobDone {
		t.Fatalf("first run: %s (%s)", first.State, first.Error)
	}
	if first.FreshEvals == 0 || first.Report.Evaluations != first.FreshEvals {
		t.Fatalf("first run fresh evals = %d (report %d), want > 0 and equal",
			first.FreshEvals, first.Report.Evaluations)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarted manager, same cache dir: the resubmitted job must be fully
	// warm.
	m2 := mk()
	defer m2.Close()
	st2, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	second := waitState(t, m2, st2.ID, terminal)
	if second.State != fedshap.JobDone {
		t.Fatalf("second run: %s (%s)", second.State, second.Error)
	}
	if second.FreshEvals != 0 || second.Report.Evaluations != 0 {
		t.Errorf("warm rerun fresh evals = %d (report %d), want 0", second.FreshEvals, second.Report.Evaluations)
	}
	if second.WarmedCoalitions < first.FreshEvals {
		t.Errorf("warmed %d < first run's %d evaluations", second.WarmedCoalitions, first.FreshEvals)
	}
	if len(second.Report.Values) != len(first.Report.Values) {
		t.Fatalf("value count changed: %d vs %d", len(second.Report.Values), len(first.Report.Values))
	}
	for i := range first.Report.Values {
		if first.Report.Values[i] != second.Report.Values[i] {
			t.Errorf("value[%d] changed on warm rerun: %v vs %v", i, first.Report.Values[i], second.Report.Values[i])
		}
	}
	// A different algorithm on the same problem also starts warm: the
	// cache is keyed by problem, not sampler.
	st3, err := m2.Submit(fedshap.JobRequest{N: 6, Algorithm: "kgreedy", K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	third := waitState(t, m2, st3.ID, terminal)
	if third.State != fedshap.JobDone {
		t.Fatalf("third run: %s (%s)", third.State, third.Error)
	}
	if third.WarmedCoalitions == 0 {
		t.Error("cross-algorithm job saw no warm utilities")
	}
}

// TestWarmBudgetSemantics: budget-gated samplers (TMC loops until
// Evals() < γ fails) must run against a per-job budget view, because
// warmed utilities never count as fresh evaluations — without the view, a
// fully warm cache would make TMC loop forever. Regression test for the
// RunView wiring in runJob.
func TestWarmBudgetSemantics(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Manager {
		m, err := NewManager(Config{Workers: 1, CacheDir: dir, BuildProblem: gameBuilder(0, nil)})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := mk()
	defer m.Close()

	// Persist the complete n=5 game (2^5 coalitions).
	st, err := m.Submit(fedshap.JobRequest{N: 5, Algorithm: "exact", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitState(t, m, st.ID, terminal); fin.State != fedshap.JobDone {
		t.Fatalf("exact run: %s (%s)", fin.State, fin.Error)
	}

	// A fully warm TMC job must terminate at its budget, with no fresh work.
	st2, err := m.Submit(fedshap.JobRequest{N: 5, Algorithm: "tmc", Gamma: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st2.ID, terminal)
	if fin.State != fedshap.JobDone {
		t.Fatalf("warm tmc run: %s (%s)", fin.State, fin.Error)
	}
	if fin.FreshEvals != 0 {
		t.Errorf("warm tmc fresh evals = %d, want 0", fin.FreshEvals)
	}
}

// TestJobFailureIsIsolated: a panicking problem build or evaluation fails
// the job, not the manager.
func TestJobFailureIsIsolated(t *testing.T) {
	m, err := NewManager(Config{
		Workers: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			if req.N == 3 {
				return experiments.NewFuncProblem("boom", req.N, func(s combin.Coalition) float64 {
					panic("evaluation exploded")
				}), nil
			}
			return gameBuilder(0, nil)(req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st, err := m.Submit(fedshap.JobRequest{N: 3, Algorithm: "ipss", Gamma: 4})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, terminal)
	if fin.State != fedshap.JobFailed {
		t.Fatalf("state = %s, want failed", fin.State)
	}
	// The worker survives and runs the next job.
	st2, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6})
	if err != nil {
		t.Fatal(err)
	}
	if fin2 := waitState(t, m, st2.ID, terminal); fin2.State != fedshap.JobDone {
		t.Fatalf("follow-up job: %s (%s)", fin2.State, fin2.Error)
	}
}
