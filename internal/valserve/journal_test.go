package valserve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/experiments"
)

func tmpJournal(t *testing.T) *Journal {
	t.Helper()
	jl, err := OpenJournal(filepath.Join(t.TempDir(), "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	jl.ProgressEvery = 0 // no throttling in unit tests unless asked
	return jl
}

func statusFor(id string, state fedshap.JobState, fresh int) *fedshap.JobStatus {
	st := &fedshap.JobStatus{
		ID:          id,
		State:       state,
		Request:     fedshap.JobRequest{Data: "femnist", Model: "mlp", N: 4, Algorithm: "ipss"},
		Fingerprint: "fp-" + id,
		Budget:      10,
		FreshEvals:  fresh,
		SubmittedAt: time.Now().UTC(),
	}
	if state.Terminal() {
		now := time.Now().UTC()
		st.FinishedAt = &now
	}
	return st
}

// TestJournalReplayLastWins: replay returns one status per job — the last
// record — in first-appearance order, and survives a torn tail line.
func TestJournalReplayLastWins(t *testing.T) {
	jl := tmpJournal(t)
	defer jl.Close()

	jl.Append(EventSubmitted, statusFor("j0001-aa", fedshap.JobQueued, 0))
	jl.Append(EventRunning, statusFor("j0001-aa", fedshap.JobRunning, 0))
	jl.Append(EventSubmitted, statusFor("j0002-bb", fedshap.JobQueued, 0))
	jl.Append(EventProgress, statusFor("j0001-aa", fedshap.JobRunning, 5))
	done := statusFor("j0001-aa", fedshap.JobDone, 9)
	done.Report = &fedshap.Report{Algorithm: "ipss", Values: []float64{1, 2, 3, 4}, Names: []string{"a", "b", "c", "d"}}
	jl.Append(EventDone, done)

	// A torn tail write (crash mid-append) must be skipped on replay.
	f, err := os.OpenFile(jl.Path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"event":"progress","id":"j0002-bb","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := jl.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(got))
	}
	if got[0].ID != "j0001-aa" || got[1].ID != "j0002-bb" {
		t.Errorf("replay order = %s, %s; want submission order", got[0].ID, got[1].ID)
	}
	if got[0].State != fedshap.JobDone || got[0].FreshEvals != 9 {
		t.Errorf("last record did not win: %+v", got[0])
	}
	if got[0].Report == nil || got[0].Report.Values[2] != 3 {
		t.Errorf("done record lost its report: %+v", got[0].Report)
	}
	if got[1].State != fedshap.JobQueued {
		t.Errorf("job 2 state = %s, want queued", got[1].State)
	}
}

// TestJournalCompact: compaction rewrites to one line per surviving job
// and drops jobs not in the live set (TTL expiry path).
func TestJournalCompact(t *testing.T) {
	jl := tmpJournal(t)
	defer jl.Close()

	for i := 0; i < 10; i++ {
		jl.Append(EventProgress, statusFor("j0001-aa", fedshap.JobRunning, i))
	}
	jl.Append(EventDone, statusFor("j0002-bb", fedshap.JobDone, 4))

	live := []*fedshap.JobStatus{statusFor("j0001-aa", fedshap.JobRunning, 9)}
	if err := jl.Compact(live); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jl.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 1 {
		t.Errorf("compacted journal has %d lines, want 1:\n%s", lines, data)
	}
	got, err := jl.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "j0001-aa" {
		t.Fatalf("after compact: %d jobs (want only j0001-aa): %+v", len(got), got)
	}

	// Appends after compaction land in the replaced file.
	jl.Append(EventDone, statusFor("j0001-aa", fedshap.JobDone, 9))
	got, err = jl.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].State != fedshap.JobDone {
		t.Fatalf("append after compact lost: %+v", got)
	}
}

// TestJournalProgressThrottle: progress records are rate-limited per job;
// lifecycle transitions never are.
func TestJournalProgressThrottle(t *testing.T) {
	jl := tmpJournal(t)
	defer jl.Close()
	jl.ProgressEvery = time.Hour

	for i := 1; i <= 50; i++ {
		jl.Append(EventProgress, statusFor("j0001-aa", fedshap.JobRunning, i))
	}
	jl.Append(EventDone, statusFor("j0001-aa", fedshap.JobDone, 50))
	data, err := os.ReadFile(jl.Path())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// One throttled progress checkpoint plus the terminal record.
	if lines != 2 {
		t.Errorf("journal has %d lines, want 2 (throttled progress + done)", lines)
	}
}

// TestManagerRestartRecovery is the tentpole guarantee, in-process: a
// manager dies (abandoned, not closed — as in a crash) with one job done,
// one running and one cancelled. A new manager over the same journal and
// store must (1) serve the done job's report bit-identically without
// recomputation, (2) keep the cancelled job terminal, and (3) requeue the
// interrupted job, which completes fully warm — zero fresh evaluations.
func TestManagerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	journal := filepath.Join(dir, "jobs.jsonl")

	gate := make(chan struct{})
	m1, err := NewManager(Config{
		Workers:  1,
		CacheDir: cache,
		// The interrupted job (kgreedy) hangs in problem construction
		// until the gate opens — the crash leaves it journaled as
		// running.
		JournalPath: journal,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			if req.Algorithm == "kgreedy" {
				<-gate
				return nil, errors.New("crashed")
			}
			return gameBuilder(0, nil)(req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close(gate) }) // release the abandoned worker

	// Job A: exact over n=5 persists the complete power set.
	req := fedshap.JobRequest{N: 5, Algorithm: "exact", Seed: 3}
	stA, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	finA := waitState(t, m1, stA.ID, terminal)
	if finA.State != fedshap.JobDone || finA.FreshEvals != 32 {
		t.Fatalf("job A: %s fresh=%d (%s)", finA.State, finA.FreshEvals, finA.Error)
	}

	// Job B: same problem fingerprint, stuck mid-run at the crash.
	stB, err := m1.Submit(fedshap.JobRequest{N: 5, Algorithm: "kgreedy", K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, stB.ID, func(s *fedshap.JobStatus) bool { return s.State == fedshap.JobRunning })

	// Job C: queued behind B, cancelled by the user before the crash.
	stC, err := m1.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Cancel(stC.ID); err != nil {
		t.Fatal(err)
	}
	// m1 is now abandoned without Close: the crash.

	m2, err := NewManager(Config{
		Workers:      1,
		CacheDir:     cache,
		JournalPath:  journal,
		BuildProblem: gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	// (1) Job A: recovered done, report bit-identical, never re-run.
	recA, err := m2.Get(stA.ID)
	if err != nil {
		t.Fatalf("job A not recovered: %v", err)
	}
	if recA.State != fedshap.JobDone || recA.Report == nil {
		t.Fatalf("job A recovered as %s (report %v)", recA.State, recA.Report)
	}
	for i := range finA.Report.Values {
		if finA.Report.Values[i] != recA.Report.Values[i] {
			t.Errorf("recovered value[%d] = %v, want %v", i, recA.Report.Values[i], finA.Report.Values[i])
		}
	}

	// (2) Job C: cancelled stays cancelled, not resubmitted.
	recC, err := m2.Get(stC.ID)
	if err != nil {
		t.Fatalf("job C not recovered: %v", err)
	}
	if recC.State != fedshap.JobCancelled {
		t.Errorf("job C recovered as %s, want cancelled", recC.State)
	}

	// (3) Job B: requeued under its original ID and completes entirely
	// from the warm store — zero fresh evaluations.
	finB := waitState(t, m2, stB.ID, terminal)
	if finB.State != fedshap.JobDone {
		t.Fatalf("job B after restart: %s (%s)", finB.State, finB.Error)
	}
	if finB.FreshEvals != 0 {
		t.Errorf("replayed job B fresh evals = %d, want 0 (warm start)", finB.FreshEvals)
	}
	if finB.WarmedCoalitions < finA.FreshEvals {
		t.Errorf("job B warmed %d < job A's %d persisted coalitions", finB.WarmedCoalitions, finA.FreshEvals)
	}

	// New IDs don't collide with replayed ones.
	stD, err := m2.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if stD.ID == stA.ID || stD.ID == stB.ID || stD.ID == stC.ID {
		t.Errorf("new job reused a replayed ID: %s", stD.ID)
	}
	if idOrdinal(stD.ID) <= idOrdinal(stC.ID) {
		t.Errorf("ID ordinal did not advance past replayed jobs: %s vs %s", stD.ID, stC.ID)
	}
}

// TestGracefulShutdownRequeuesInterrupted: Close (SIGTERM path) must
// journal still-running jobs as queued, so a graceful restart resumes
// them instead of abandoning them as cancelled.
func TestGracefulShutdownRequeuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.jsonl")

	gate := make(chan struct{})
	var once bool
	m1, err := NewManager(Config{
		Workers:     1,
		JournalPath: journal,
		CacheDir:    filepath.Join(dir, "cache"),
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			if !once {
				once = true
				<-gate // held until Close cancels the job's context… never: gate closes below
			}
			return gameBuilder(0, nil)(req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID, func(s *fedshap.JobStatus) bool { return s.State == fedshap.JobRunning })
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate) // let the builder return so Close can drain
	}()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(Config{
		Workers:      1,
		JournalPath:  journal,
		CacheDir:     filepath.Join(dir, "cache"),
		BuildProblem: gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	fin := waitState(t, m2, st.ID, terminal)
	if fin.State != fedshap.JobDone {
		t.Errorf("interrupted job after graceful restart: %s (%s), want done", fin.State, fin.Error)
	}
}

// TestRecoveryBacklogExceedsQueueCap: a journal holding more interrupted
// jobs than QueueCap must recover all of them — jobs that survived a
// crash are never failed for queue-capacity reasons — while new
// submissions stay bounded by the configured cap.
func TestRecoveryBacklogExceedsQueueCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		st := statusFor(fmt.Sprintf("j%04d-recov", i+1), fedshap.JobRunning, 3)
		st.Request = fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6, Seed: int64(i + 1)}
		jl.Append(EventRunning, st)
		ids = append(ids, st.ID)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(Config{
		Workers:      1,
		QueueCap:     2, // smaller than the recovered backlog
		JournalPath:  path,
		BuildProblem: gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, id := range ids {
		fin := waitState(t, m, id, terminal)
		if fin.State != fedshap.JobDone {
			t.Errorf("recovered job %s: %s (%s), want done", id, fin.State, fin.Error)
		}
	}
}

// TestJobTTLExpiry: terminal jobs past the TTL vanish from the API and —
// via journal compaction — from the next restart.
func TestJobTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.jsonl")
	mk := func() *Manager {
		m, err := NewManager(Config{
			Workers:      1,
			JournalPath:  journal,
			JobTTL:       30 * time.Millisecond,
			GCInterval:   time.Hour, // sweeps are manual in this test
			BuildProblem: gameBuilder(0, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := mk()
	st, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "ipss", Gamma: 6})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, terminal)

	if n := m.SweepExpired(); n != 0 {
		t.Errorf("sweep expired %d jobs before the TTL elapsed", n)
	}
	time.Sleep(50 * time.Millisecond)
	if n := m.SweepExpired(); n != 1 {
		t.Errorf("sweep expired %d jobs, want 1", n)
	}
	if _, err := m.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired job still served: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The expired job must not come back on restart.
	m2 := mk()
	defer m2.Close()
	if _, err := m2.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired job resurrected after restart: %v", err)
	}
}

// TestJournalInsideCacheDirRejected: a .jsonl journal inside the cache
// directory would be rewritten as utilities by store compaction; the
// manager must refuse the configuration.
func TestJournalInsideCacheDirRejected(t *testing.T) {
	dir := t.TempDir()
	_, err := NewManager(Config{
		CacheDir:    dir,
		JournalPath: filepath.Join(dir, "jobs.jsonl"),
	})
	if err == nil {
		t.Fatal("manager accepted a journal inside the cache directory")
	}

	// A relative cache dir naming the same directory as an absolute
	// journal path must be caught too (the guard resolves both).
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewManager(Config{
		CacheDir:    "relative-cache",
		JournalPath: filepath.Join(cwd, "relative-cache", "jobs.jsonl"),
	})
	if err == nil {
		t.Fatal("manager accepted a relative-cache/absolute-journal collision")
	}
}

// TestWatchEventSequence: a watcher attached to a queued job sees
// submitted → running → progress… → done, with monotone fresh counts and
// a closed channel after the terminal event.
func TestWatchEventSequence(t *testing.T) {
	gate := make(chan struct{})
	var first = true
	m, err := NewManager(Config{
		Workers:     1,
		EvalWorkers: 1,
		BuildProblem: func(req fedshap.JobRequest) (*experiments.Problem, error) {
			if first {
				first = false
				<-gate // hold the single worker so the watched job stays queued
			}
			return gameBuilder(0, nil)(req)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, _, err := m.Watch("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Watch(unknown) err = %v, want ErrNotFound", err)
	}

	blocker, err := m.Submit(fedshap.JobRequest{N: 3, Algorithm: "ipss", Gamma: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, func(s *fedshap.JobStatus) bool { return s.State == fedshap.JobRunning })
	st, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	close(gate)

	var types []string
	fresh := -1
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				goto doneStream
			}
			if len(types) == 0 || types[len(types)-1] != ev.Type {
				types = append(types, ev.Type)
			}
			if ev.Status.FreshEvals < fresh && ev.Type == EventProgress {
				t.Errorf("progress went backwards: %d after %d", ev.Status.FreshEvals, fresh)
			}
			if ev.Status.FreshEvals > fresh {
				fresh = ev.Status.FreshEvals
			}
		case <-deadline:
			t.Fatal("event stream never terminated")
		}
	}
doneStream:
	want := []string{EventSubmitted, EventRunning, EventProgress, EventDone}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types = %v, want %v", types, want)
		}
	}
	if fresh != 16 {
		t.Errorf("final fresh count over the stream = %d, want 16 (2^4)", fresh)
	}

	// Watching an already-terminal job yields its snapshot, then closes.
	ch2, cancel2, err := m.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	ev := <-ch2
	if ev.Type != EventDone || ev.Status.Report == nil {
		t.Errorf("terminal watch snapshot = %s (report %v)", ev.Type, ev.Status.Report)
	}
	if _, ok := <-ch2; ok {
		t.Error("terminal watch channel not closed after snapshot")
	}
}
