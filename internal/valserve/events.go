package valserve

import (
	"sync"

	"fedshap"
)

// Event is one notification on a job's event stream: a type (see the
// Event* constants) plus a full status snapshot taken at the moment of
// the transition. Snapshots are self-contained — consumers render the
// latest one they hold and never need to merge deltas, which is what
// makes dropped intermediate events (slow subscribers) harmless.
type Event struct {
	// Type is the event name: submitted, running, progress, done,
	// failed or cancelled.
	Type string
	// Status is the job's status snapshot at the transition. For done
	// events it includes the final Report.
	Status *fedshap.JobStatus
}

// eventHub fans job events out to per-job subscribers. All channel sends
// and closes happen under the hub mutex, so publishing a terminal event
// (which closes subscriber channels) can never race a concurrent send.
type eventHub struct {
	mu   sync.Mutex
	subs map[string]map[int]chan Event
	next int
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[string]map[int]chan Event)}
}

// watch registers a subscriber for job id and seeds it with the snapshot
// current() returns — atomically with respect to publishes, so no
// transition can fall between the snapshot and the registration. If the
// snapshot is already terminal the channel is closed immediately after
// the seed event and nothing is registered. The returned cancel is
// idempotent and safe after the hub has already closed the channel.
func (h *eventHub) watch(id string, current func() *fedshap.JobStatus) (<-chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan Event, 64)
	st := current()
	ch <- Event{Type: eventTypeForState(st.State), Status: st}
	if st.State.Terminal() {
		close(ch)
		return ch, func() {}
	}
	h.next++
	key := h.next
	if h.subs[id] == nil {
		h.subs[id] = make(map[int]chan Event)
	}
	h.subs[id][key] = ch
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if m := h.subs[id]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(h.subs, id)
			}
		}
	}
	return ch, cancel
}

// publish delivers ev to every subscriber of the job. A slow subscriber
// loses its oldest buffered event, never the newest — the final snapshot
// always gets through. A terminal event closes and removes every
// subscriber for the job.
func (h *eventHub) publish(id string, ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs[id] {
		sendLatest(ch, ev)
	}
	if ev.Status != nil && ev.Status.State.Terminal() {
		for _, ch := range h.subs[id] {
			close(ch)
		}
		delete(h.subs, id)
	}
}

// sendLatest delivers without blocking: when the buffer is full, the
// oldest pending event is dropped to make room for the newest.
func sendLatest(ch chan Event, ev Event) {
	for {
		select {
		case ch <- ev:
			return
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}
