package valserve

import (
	"sync"
	"time"

	"fedshap"
)

// Event is one notification on a job's event stream: a type (see the
// Event* constants) plus a full status snapshot taken at the moment of
// the transition. Snapshots are self-contained — consumers render the
// latest one they hold and never need to merge deltas, which is what
// makes dropped intermediate events (slow subscribers) harmless.
type Event struct {
	// Type is the event name: submitted, running, progress, done,
	// failed or cancelled.
	Type string
	// Status is the job's status snapshot at the transition. For done
	// events it includes the final Report. Nil for values events, whose
	// payload is Values instead.
	Status *fedshap.JobStatus
	// Values is the interim anytime snapshot carried by a values event
	// (nil for lifecycle events). Values events share the job's Seq
	// space, so Last-Event-ID resume covers them, but they are never
	// journaled — they are derived, high-churn state the final report
	// supersedes.
	Values *fedshap.InterimValues
	// Seq is the event's per-job sequence number, strictly increasing
	// across the job's published events. The SSE layer emits it as the
	// event id, which is what makes Last-Event-ID resume possible:
	// because snapshots are self-contained, "resume" is just "skip
	// snapshots the client already holds" — events with Seq at or below
	// the client's last seen id. Seq 0 means "unknown" (a snapshot seeded
	// for a job with no published events this process life) and is never
	// filtered.
	Seq uint64
	// Seed marks the snapshot a fresh subscription is primed with. It is
	// stamped with the *last published* event's Seq but reflects the
	// job's state *now* — possibly newer than that event — so the SSE
	// layer always delivers it, Last-Event-ID notwithstanding.
	Seed bool
}

// eventHub fans job events out to per-job subscribers. All channel sends
// and closes happen under the hub mutex, so publishing a terminal event
// (which closes subscriber channels) can never race a concurrent send.
type eventHub struct {
	mu   sync.Mutex
	subs map[string]map[int]chan Event
	next int
	// base seeds each job's sequence counter with the hub's creation time
	// in nanoseconds, so event ids stay monotone across daemon restarts
	// without persisting any counter — assuming the host clock doesn't
	// step backwards across the restart. If it does, a resuming client's
	// stale Last-Event-ID can filter the new life's progress events; the
	// terminal event is exempt from filtering, so the final state (and
	// report) still gets through and only intermediate progress display
	// degrades.
	base uint64
	seqs map[string]uint64
}

func newEventHub() *eventHub {
	return &eventHub{
		subs: make(map[string]map[int]chan Event),
		base: uint64(time.Now().UnixNano()),
		seqs: make(map[string]uint64),
	}
}

// subscriberCount reports the number of live subscriptions across all
// jobs, for the fedvald_sse_subscribers gauge.
func (h *eventHub) subscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, m := range h.subs {
		n += len(m)
	}
	return n
}

// watch registers a subscriber for job id and seeds it with the snapshot
// current() returns — atomically with respect to publishes, so no
// transition can fall between the snapshot and the registration. If the
// snapshot is already terminal the channel is closed immediately after
// the seed event and nothing is registered. The returned cancel is
// idempotent and safe after the hub has already closed the channel.
func (h *eventHub) watch(id string, current func() *fedshap.JobStatus) (<-chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan Event, 64)
	st := current()
	// The seed carries the job's current sequence number — the id of the
	// last published event — but its snapshot is taken now and may be
	// newer than that event, which is why Seed exempts it from resume
	// filtering.
	ch <- Event{Type: eventTypeForState(st.State), Status: st, Seq: h.seqs[id], Seed: true}
	if st.State.Terminal() {
		close(ch)
		return ch, func() {}
	}
	h.next++
	key := h.next
	if h.subs[id] == nil {
		h.subs[id] = make(map[int]chan Event)
	}
	h.subs[id][key] = ch
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if m := h.subs[id]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(h.subs, id)
			}
		}
	}
	return ch, cancel
}

// publish delivers ev to every subscriber of the job. A slow subscriber
// loses its oldest buffered event, never the newest — the final snapshot
// always gets through. A terminal event closes and removes every
// subscriber for the job.
func (h *eventHub) publish(id string, ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	seq := h.seqs[id]
	if seq == 0 {
		seq = h.base
	}
	seq++
	h.seqs[id] = seq
	ev.Seq = seq
	for _, ch := range h.subs[id] {
		sendLatest(ch, ev)
	}
	if ev.Status != nil && ev.Status.State.Terminal() {
		for _, ch := range h.subs[id] {
			close(ch)
		}
		delete(h.subs, id)
		delete(h.seqs, id)
	}
}

// sendLatest delivers without blocking: when the buffer is full, the
// oldest pending event is dropped to make room for the newest.
func sendLatest(ch chan Event, ev Event) {
	for {
		select {
		case ch <- ev:
			return
		default:
			select {
			case <-ch:
			default:
			}
		}
	}
}
