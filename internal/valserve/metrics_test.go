package valserve

import (
	"context"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// TestMetricsEndpoint drives the full daemon flow and checks GET /metrics
// aggregates it: job-state counts, queue bounds, cache effectiveness
// (zero hit ratio on a cold run, nonzero after a warm resubmit), store
// footprint and journal size.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	client, _ := startDaemon(t, Config{
		Workers:      1,
		QueueCap:     7,
		CacheDir:     dir,
		JournalPath:  dir + "/jobs-journal.db",
		BuildProblem: gameBuilder(0, nil),
	})
	ctx := context.Background()

	req := fedshap.JobRequest{N: 5, Algorithm: "exact", Seed: 9}
	st, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := client.Wait(ctx, st.ID, 5*time.Millisecond, nil); err != nil || fin.State != fedshap.JobDone {
		t.Fatalf("first run: %v (%+v)", err, fin)
	}

	mt, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Jobs.Done != 1 || mt.Jobs.QueueCapacity != 7 {
		t.Errorf("jobs = %+v, want 1 done, queue capacity 7", mt.Jobs)
	}
	if mt.Cache.FreshTotal != 32 || mt.Cache.WarmedTotal != 0 || mt.Cache.HitRatio != 0 {
		t.Errorf("cold cache metrics = %+v, want 32 fresh, 0 warmed", mt.Cache)
	}
	if mt.Cache.StoreFingerprints != 1 || mt.Cache.StoreBytes == 0 {
		t.Errorf("store metrics = %+v, want 1 fingerprint with bytes on disk", mt.Cache)
	}
	if mt.Journal.Path == "" || mt.Journal.Bytes == 0 {
		t.Errorf("journal metrics = %+v, want a path and bytes on disk", mt.Journal)
	}
	if mt.Fleet != nil {
		t.Errorf("fleet = %+v, want nil without a coordinator", mt.Fleet)
	}

	// A warm resubmit flips the cache ratio.
	st2, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := client.Wait(ctx, st2.ID, 5*time.Millisecond, nil); err != nil || fin.State != fedshap.JobDone {
		t.Fatalf("warm run: %v (%+v)", err, fin)
	}
	mt, err = client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Cache.WarmedTotal != 32 || mt.Cache.HitRatio != 0.5 {
		t.Errorf("warm cache metrics = %+v, want 32 warmed, hit ratio 0.5", mt.Cache)
	}
}

// TestPeriodicCompaction checks the background compaction loop rewrites
// duplicate store records while the daemon is live — the long-lived-daemon
// counterpart of the shutdown compaction.
func TestPeriodicCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Config{
		Workers:      1,
		CacheDir:     dir,
		JournalPath:  dir + "/jobs-journal.db",
		CompactEvery: 20 * time.Millisecond,
		BuildProblem: gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Seed the store with heavy duplication, as a crash-looping daemon
	// re-evaluating the same fingerprint would.
	const fp = "deadbeefdeadbeef"
	coal := combin.NewCoalition(0, 1)
	for i := 0; i < 50; i++ {
		if err := m.Store().Append(fp, coal, 3); err != nil {
			t.Fatal(err)
		}
	}
	before, err := m.Store().Stats()
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for m.Metrics().Cache.CompactionDropped < 49 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never dropped the duplicates (metrics: %+v)", m.Metrics().Cache)
		}
		time.Sleep(5 * time.Millisecond)
	}
	after, err := m.Store().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Bytes >= before.Bytes {
		t.Errorf("store bytes %d → %d, want shrink", before.Bytes, after.Bytes)
	}
	// The compacted file still holds the utility.
	entries, err := m.Store().Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[coal] != 3 {
		t.Errorf("compacted entries = %v, want {%v: 3}", entries, coal)
	}
	if got := m.Metrics().Cache.Compactions; got == 0 {
		t.Error("metrics report zero compaction sweeps")
	}
}

// TestWarmSourceUnionsStore: the warm-start snapshot shipped to workers
// must include utilities the persistent store gained *after* this job's
// oracle was attached — that's what lets a concurrent same-fingerprint
// job's work reach the fleet instead of being retrained there.
func TestWarmSourceUnionsStore(t *testing.T) {
	store, err := utility.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const fp = "deadbeefcafef00d"
	a, b := combin.NewCoalition(0), combin.NewCoalition(0, 1)

	oracle := utility.NewOracle(4, func(s combin.Coalition) float64 { return 1 })
	oracle.Warm(map[combin.Coalition]float64{a: 10})
	// Another job persists b after this oracle was attached/warmed.
	if err := store.Append(fp, b, 20); err != nil {
		t.Fatal(err)
	}

	snap := warmSource(oracle, store, fp)()
	if len(snap) != 2 || snap[a] != 10 || snap[b] != 20 {
		t.Errorf("warm snapshot = %v, want oracle ∪ store {a:10, b:20}", snap)
	}
	// Oracle entries win over stale store rows, and a nil store is fine.
	if err := store.Append(fp, a, 99); err != nil {
		t.Fatal(err)
	}
	if snap = warmSource(oracle, store, fp)(); snap[a] != 10 {
		t.Errorf("oracle entry overridden by store: a=%v, want 10", snap[a])
	}
	if snap = warmSource(oracle, nil, fp)(); len(snap) != 1 || snap[a] != 10 {
		t.Errorf("nil-store snapshot = %v, want oracle only", snap)
	}
}

// TestCompactNow exercises the deterministic sweep entry point the
// background loop runs, including the journal rewrite.
func TestCompactNow(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Config{
		Workers:      1,
		CacheDir:     dir,
		JournalPath:  dir + "/jobs-journal.db",
		BuildProblem: gameBuilder(0, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st, err := m.Submit(fedshap.JobRequest{N: 4, Algorithm: "exact", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitState(t, m, st.ID, terminal); fin.State != fedshap.JobDone {
		t.Fatalf("job: %s (%s)", fin.State, fin.Error)
	}
	const fp = "feedfacefeedface"
	for i := 0; i < 10; i++ {
		if err := m.Store().Append(fp, combin.NewCoalition(2), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	dropped, err := m.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if dropped < 9 {
		t.Errorf("CompactNow dropped %d records, want >= 9", dropped)
	}
	// Last record wins, exactly as Store.Compact documents.
	entries, err := m.Store().Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if entries[combin.NewCoalition(2)] != 9 {
		t.Errorf("compacted utility = %v, want 9 (last record wins)", entries[combin.NewCoalition(2)])
	}
	// The journal survived its rewrite: the finished job still replays.
	jobs, err := m.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID || jobs[0].State != fedshap.JobDone {
		t.Errorf("journal after compaction replays %+v, want the finished job", jobs)
	}
}
