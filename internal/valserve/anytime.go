package valserve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// anytimeChunk is the number of planned coalitions evaluated between
// early-stop checks in plan-driven anytime execution. It is a fixed
// constant — deliberately independent of the job's evaluation pool width —
// so the plan position where the stopping criterion fires (and therefore
// the reported values) is identical whether the chunk was evaluated by one
// worker or thirty. Within a chunk, evaluation order doesn't matter: the
// tracker is fed in plan order after the whole chunk is in the cache.
const anytimeChunk = 8

// defaultValuesEvery throttles interim values events on the SSE stream: at
// most one snapshot per interval per job, plus an unthrottled final one.
// Snapshots are derived state the next one (or the final report)
// supersedes, so dropping intermediate ones is harmless.
const defaultValuesEvery = 100 * time.Millisecond

// anytimeState is one job's anytime-valuation bookkeeping: a Replay
// folding evaluated coalitions into confidence intervals, plus the
// publication throttle for interim values events. Two execution modes
// share it:
//
//   - Plan-driven (algorithms where PlanExhaustive holds): drivePlan
//     evaluates the complete plan in fixed-size chunks, folds each chunk in
//     plan order, and can stop the job early once every pairwise ranking is
//     resolved. The fold sequence is a pure function of the plan, so
//     estimates, intervals and the stop position are bit-identical across
//     worker counts.
//
//   - Observer (everything else): the oracle's OnEvalValue hook feeds
//     fresh evaluations in completion order. Intervals remain anytime-valid
//     under any fold order, but the fold sequence is racy, so this mode
//     never stops a job — it only reports.
type anytimeState struct {
	m     *Manager
	j     *Job
	names []string

	// mu serialises Replay mutation (the observer hook fires from the
	// evaluation pool) and the publication throttle.
	mu      sync.Mutex
	rp      *shapley.Replay
	lastPub time.Time
}

func newAnytimeState(m *Manager, j *Job, n int, confidence float64, plan []combin.Coalition) *anytimeState {
	names := make([]string, n)
	for i := range names {
		names[i] = clientName(i)
	}
	return &anytimeState{
		m:     m,
		j:     j,
		names: names,
		rp:    shapley.NewReplay(n, confidence, plan),
	}
}

// observe is the observer-mode hook (utility.Oracle.OnEvalValue): fold one
// fresh evaluation and maybe publish a throttled snapshot.
func (a *anytimeState) observe(s combin.Coalition, u float64) {
	a.mu.Lock()
	a.rp.Add(s, u)
	a.publishLocked(false)
	a.mu.Unlock()
}

// interimLocked renders the current Replay state as the wire snapshot.
func (a *anytimeState) interimLocked() *fedshap.InterimValues {
	snap := a.rp.Snapshot()
	return &fedshap.InterimValues{
		JobID:             a.j.snapshot().ID,
		Names:             a.names,
		Values:            snap.Values,
		CILow:             snap.Lo,
		CIHigh:            snap.Hi,
		Confidence:        a.j.snapshot().Request.Confidence,
		Observations:      snap.Observations,
		SeenCoalitions:    snap.Seen,
		PlannedCoalitions: snap.Planned,
		Resolved:          snap.Resolved,
		At:                time.Now().UTC(),
	}
}

// publishLocked emits a values event to the job's SSE subscribers,
// throttled unless force. Values events go straight to the hub — never
// through j.notify — so they are not journaled: they are high-churn
// derived state the final report supersedes.
func (a *anytimeState) publishLocked(force bool) {
	now := time.Now()
	if !force && now.Sub(a.lastPub) < defaultValuesEvery {
		return
	}
	a.lastPub = now
	iv := a.interimLocked()
	a.m.hub.publish(iv.JobID, Event{Type: EventValues, Values: iv})
	if a.m.tel != nil {
		a.m.tel.valuesSnapshots.Inc()
	}
}

// drivePlan executes the algorithm's complete evaluation plan through the
// job's pool in fixed-size chunks, folding each chunk into the tracker in
// plan order and publishing interim snapshots. With rankStop set it
// returns stopped=true as soon as every pairwise ranking is resolved at
// the requested confidence — at a chunk boundary, so the stop position is
// worker-count invariant. Without rankStop it simply warms the entire plan
// (the algorithm then reduces against a fully warm cache, exactly like the
// prefetch path it replaces) while streaming confidence intervals.
func (a *anytimeState) drivePlan(ctx context.Context, oracle *utility.Oracle, plan []combin.Coalition, workers int, rankStop bool) (stopped bool, err error) {
	if workers < 1 {
		workers = 1
	}
	for off := 0; off < len(plan); off += anytimeChunk {
		chunk := plan[off:min(off+anytimeChunk, len(plan))]
		us, err := oracle.EvalBatch(ctx, chunk, workers)
		if err != nil {
			return false, err
		}
		a.mu.Lock()
		for i, s := range chunk {
			a.rp.Add(s, us[i])
		}
		resolved := rankStop && a.rp.Tracker().Resolved()
		a.publishLocked(resolved)
		a.mu.Unlock()
		if resolved {
			return true, nil
		}
	}
	return false, nil
}

// report assembles the early-stopped job's final report: the tracker
// estimates ARE the reported values — the algorithm's own reduction never
// ran — together with the intervals certifying the ranking and the unspent
// budget the stop saved.
func (a *anytimeState) report(algName string, budget int, evals int, seconds float64) *fedshap.Report {
	a.mu.Lock()
	snap := a.rp.Snapshot()
	a.mu.Unlock()
	unspent := budget - snap.Seen
	if unspent < 0 {
		unspent = 0
	}
	return &fedshap.Report{
		Algorithm:     algName,
		Values:        snap.Values,
		Names:         a.names,
		Seconds:       seconds,
		Evaluations:   evals,
		Confidence:    a.j.snapshot().Request.Confidence,
		AnytimeValues: snap.Values,
		CILow:         snap.Lo,
		CIHigh:        snap.Hi,
		EarlyStopped:  true,
		BudgetUnspent: unspent,
	}
}

// decorate attaches the anytime view to a normally-completed report: the
// algorithm's own values stay authoritative (bit-identical to a run
// without anytime tracking), and the tracker's estimates and intervals
// ride along for consumers that want uncertainty.
func (a *anytimeState) decorate(rep *fedshap.Report) {
	a.mu.Lock()
	snap := a.rp.Snapshot()
	// The stream's last word should match the report, so the final
	// snapshot is published unthrottled before the terminal event closes
	// the subscribers.
	a.publishLocked(true)
	a.mu.Unlock()
	rep.Confidence = a.j.snapshot().Request.Confidence
	rep.AnytimeValues = snap.Values
	rep.CILow = snap.Lo
	rep.CIHigh = snap.Hi
}

// clientName is the display name of client i, shared by reports and
// interim snapshots.
func clientName(i int) string {
	return fmt.Sprintf("client-%d", i)
}
