package valserve

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/evalnet"
	"fedshap/internal/utility"
)

// TestMain doubles as the entry point for spawned helper processes: with
// FEDSHAP_TEST_WORKER_ADDR set the test binary is a fedvalworker-style
// daemon, with FEDSHAP_TEST_DAEMON_DIR it is a fedvald-style daemon (see
// recovery_test.go). This is how the distributed and crash-recovery tests
// exercise real OS processes over loopback TCP without shipping a
// prebuilt binary.
func TestMain(m *testing.M) {
	if addr := os.Getenv("FEDSHAP_TEST_WORKER_ADDR"); addr != "" {
		runTestWorker(addr)
		os.Exit(0)
	}
	if dir := os.Getenv("FEDSHAP_TEST_DAEMON_DIR"); dir != "" {
		runTestDaemon(dir)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTestWorker serves evaluations until the coordinator link drops. The
// default problem builder is the production one (WorkerEval, real FL
// training); FEDSHAP_TEST_WORKER_GAME_DELAY_MS switches to the additive
// test game used by the kill/cancel tests.
func runTestWorker(addr string) {
	capacity, _ := strconv.Atoi(os.Getenv("FEDSHAP_TEST_WORKER_CAP"))
	build := WorkerEval
	if ms := os.Getenv("FEDSHAP_TEST_WORKER_GAME_DELAY_MS"); ms != "" {
		delay, _ := strconv.Atoi(ms)
		build = func(evalnet.ProblemSpec) (utility.EvalFunc, error) {
			return func(s combin.Coalition) float64 {
				time.Sleep(time.Duration(delay) * time.Millisecond)
				var u float64
				for _, i := range s.Members() {
					u += float64(i + 1)
				}
				return u
			}, nil
		}
	}
	w := &evalnet.Worker{
		Name:      os.Getenv("FEDSHAP_TEST_WORKER_NAME"),
		Capacity:  capacity,
		BuildEval: build,
	}
	_ = w.Dial(context.Background(), addr)
}

// startFleetCoordinator serves an evalnet coordinator on loopback TCP.
func startFleetCoordinator(t *testing.T) (*evalnet.Coordinator, string) {
	t.Helper()
	coord := evalnet.NewCoordinator()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = coord.Serve(ln) }()
	t.Cleanup(func() { _ = coord.Close() })
	return coord, ln.Addr().String()
}

// spawnWorkerProcess re-executes the test binary as a worker process
// dialling addr, returning the process handle for mid-job kills.
func spawnWorkerProcess(t *testing.T, addr, name string, capacity, gameDelayMS int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"FEDSHAP_TEST_WORKER_ADDR="+addr,
		"FEDSHAP_TEST_WORKER_NAME="+name,
		fmt.Sprintf("FEDSHAP_TEST_WORKER_CAP=%d", capacity),
	)
	if gameDelayMS > 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("FEDSHAP_TEST_WORKER_GAME_DELAY_MS=%d", gameDelayMS))
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return cmd
}

func waitFleet(t *testing.T, coord *evalnet.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for coord.WorkerCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers (have %d)", n, coord.WorkerCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDistributedJobBitIdentical is the acceptance end-to-end: one
// valuation job with real federated training fanned out across two worker
// OS processes over loopback TCP must produce bit-identical Shapley values
// and identical budget accounting to the in-process oracle.
func TestDistributedJobBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains real FL models in worker subprocesses")
	}
	req := fedshap.JobRequest{
		Data:      "synthetic",
		Model:     "logreg",
		N:         5,
		Algorithm: "exact", // prefetchable: the power set fans out concurrently
		Scale:     "tiny",
		Seed:      7,
	}

	// Baseline: the same job evaluated entirely in-process.
	base, err := NewManager(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	st, err := base.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	baseline := waitState(t, base, st.ID, terminal)
	if baseline.State != fedshap.JobDone {
		t.Fatalf("baseline state = %s (%s)", baseline.State, baseline.Error)
	}

	// Distributed: two worker processes, each rebuilding the problem from
	// the spec and training locally.
	coord, addr := startFleetCoordinator(t)
	spawnWorkerProcess(t, addr, "proc-a", 2, 0)
	spawnWorkerProcess(t, addr, "proc-b", 2, 0)
	waitFleet(t, coord, 2)

	m, err := NewManager(Config{Workers: 1, Coordinator: coord})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	st, err = m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	dist := waitState(t, m, st.ID, terminal)
	if dist.State != fedshap.JobDone {
		t.Fatalf("distributed state = %s (%s)", dist.State, dist.Error)
	}
	if dist.RemoteWorkers != 2 {
		t.Errorf("remote workers = %d, want 2", dist.RemoteWorkers)
	}
	if len(dist.Report.Values) != req.N {
		t.Fatalf("report has %d values, want %d", len(dist.Report.Values), req.N)
	}
	for i := range baseline.Report.Values {
		if baseline.Report.Values[i] != dist.Report.Values[i] {
			t.Errorf("value[%d]: in-process %v != distributed %v",
				i, baseline.Report.Values[i], dist.Report.Values[i])
		}
	}
	if baseline.FreshEvals != dist.FreshEvals {
		t.Errorf("fresh evals: in-process %d != distributed %d", baseline.FreshEvals, dist.FreshEvals)
	}

	// Both processes trained, and between them they did exactly the fresh
	// work — nothing fell back to local evaluation, nothing ran twice.
	infos := coord.Workers()
	if len(infos) != 2 {
		t.Fatalf("fleet listing has %d workers, want 2", len(infos))
	}
	var total int64
	for _, w := range infos {
		if w.Completed == 0 {
			t.Errorf("worker %s evaluated nothing", w.Name)
		}
		total += w.Completed
	}
	if total != int64(dist.FreshEvals) {
		t.Errorf("fleet completed %d evaluations, fresh evals %d", total, dist.FreshEvals)
	}
}

// TestDistributedWorkerKillRequeue kills one of two worker processes in
// the middle of a job: the coordinator must requeue its in-flight
// coalitions onto the survivor and the job must still finish with exact
// values and no lost or double-counted evaluations.
func TestDistributedWorkerKillRequeue(t *testing.T) {
	coord, addr := startFleetCoordinator(t)
	victim := spawnWorkerProcess(t, addr, "victim", 2, 8)
	spawnWorkerProcess(t, addr, "survivor", 2, 8)
	waitFleet(t, coord, 2)

	m, err := NewManager(Config{
		Workers:      1,
		Coordinator:  coord,
		BuildProblem: gameBuilder(8*time.Millisecond, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	n := 8
	st, err := m.Submit(fedshap.JobRequest{N: n, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the victim once the job has demonstrably made remote progress.
	waitState(t, m, st.ID, func(s *fedshap.JobStatus) bool { return s.FreshEvals >= 20 })
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	fin := waitState(t, m, st.ID, terminal)
	if fin.State != fedshap.JobDone {
		t.Fatalf("state after worker kill = %s (%s)", fin.State, fin.Error)
	}
	// The additive game's Shapley values are i+1 (up to float summation
	// error); any lost or duplicated marginal would show up here or in the
	// budget accounting.
	for i, v := range fin.Report.Values {
		if diff := v - float64(i+1); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("value[%d] = %v, want %d", i, v, i+1)
		}
	}
	want := 1 << uint(n)
	if fin.FreshEvals != want || fin.Report.Evaluations != want {
		t.Errorf("fresh evals = %d, report evals = %d, want %d (lost or double-counted work)",
			fin.FreshEvals, fin.Report.Evaluations, want)
	}
	if coord.WorkerCount() != 1 {
		t.Errorf("fleet size after kill = %d, want 1", coord.WorkerCount())
	}

	// The job's trace must record the requeue: a redispatch event with
	// reason worker-death naming the dead worker, plus per-worker dispatch
	// spans for both fleet members. Dispatch spans flush when the job's
	// session closes — just after the terminal state becomes visible — so
	// poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var redispatch, dispatches int
	for time.Now().Before(deadline) {
		tr, err := m.Trace(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		redispatch, dispatches = 0, 0
		for _, sp := range tr.Spans {
			switch sp.Name {
			case "redispatch":
				if sp.Attrs["reason"] == "worker-death" && sp.Attrs["worker"] == "victim" {
					redispatch++
				}
			case "dispatch":
				dispatches++
			}
		}
		if redispatch > 0 && dispatches == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if redispatch == 0 {
		t.Error("trace has no redispatch span with reason=worker-death for the killed worker")
	}
	if dispatches != 2 {
		t.Errorf("trace has %d dispatch spans, want one per fleet worker (2)", dispatches)
	}

	// And the scrape shows the same event: the worker-death redispatch
	// counter is nonzero on the Prometheus endpoint.
	samples := scrapeProm(t, NewHandler(m))
	if got := samples[`fedvald_fleet_redispatch_total{reason="worker-death"}`]; got == 0 {
		t.Error(`scrape: fedvald_fleet_redispatch_total{reason="worker-death"} = 0 after a worker kill`)
	}
}

// TestDistributedStragglerRedispatch is the adaptive-scheduler acceptance
// end-to-end: one worker process is deliberately ~60x slower than the
// other, speculation is enabled, and the job must still produce values and
// fresh-eval counts bit-identical to the in-process baseline — the
// straggler's superseded duplicates are discarded, never double-charged.
// GET /metrics must report the re-dispatches and, after a warm resubmit,
// a nonzero cache-hit ratio.
func TestDistributedStragglerRedispatch(t *testing.T) {
	// Aggressive speculation tuning so the test straggler is relieved
	// within milliseconds instead of the production-scale defaults.
	coord := evalnet.NewCoordinatorWith(evalnet.SchedulerConfig{
		SpeculateFactor: 1.5,
		SpeculateMinAge: 10 * time.Millisecond,
		SpeculateTick:   5 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = coord.Serve(ln) }()
	t.Cleanup(func() { _ = coord.Close() })
	addr := ln.Addr().String()
	spawnWorkerProcess(t, addr, "fast", 2, 1)
	spawnWorkerProcess(t, addr, "slow", 2, 60)
	waitFleet(t, coord, 2)

	req := fedshap.JobRequest{N: 7, Algorithm: "exact", Seed: 5}

	// Baseline: the same job evaluated entirely in-process.
	base, err := NewManager(Config{Workers: 1, BuildProblem: gameBuilder(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	st, err := base.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	baseline := waitState(t, base, st.ID, terminal)
	if baseline.State != fedshap.JobDone {
		t.Fatalf("baseline state = %s (%s)", baseline.State, baseline.Error)
	}

	// Distributed, over the full daemon HTTP surface so /metrics is
	// exercised exactly as an operator sees it.
	client, _ := startDaemon(t, Config{
		Workers:      1,
		CacheDir:     t.TempDir(),
		Coordinator:  coord,
		BuildProblem: gameBuilder(0, nil),
	})
	ctx := context.Background()
	st2, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := client.Wait(ctx, st2.ID, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist.State != fedshap.JobDone {
		t.Fatalf("distributed state = %s (%s)", dist.State, dist.Error)
	}
	for i := range baseline.Report.Values {
		if baseline.Report.Values[i] != dist.Report.Values[i] {
			t.Errorf("value[%d]: in-process %v != distributed-with-speculation %v",
				i, baseline.Report.Values[i], dist.Report.Values[i])
		}
	}
	if baseline.FreshEvals != dist.FreshEvals {
		t.Errorf("fresh evals: in-process %d != distributed %d (duplicates double-charged?)",
			baseline.FreshEvals, dist.FreshEvals)
	}
	stats := coord.Stats()
	if stats.Redispatches == 0 {
		t.Error("no speculative re-dispatch despite a 60x straggler")
	}
	var completed int64
	for _, w := range stats.Workers {
		completed += w.Completed
	}
	if completed != int64(dist.FreshEvals) {
		t.Errorf("fleet completed %d evaluations, fresh evals %d (duplicate results must be discarded)",
			completed, dist.FreshEvals)
	}

	// Resubmit warm: zero fresh work, and /metrics shows both the
	// scheduler and the cache paying off.
	st3, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := client.Wait(ctx, st3.ID, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != fedshap.JobDone || warm.FreshEvals != 0 || warm.WarmedCoalitions == 0 {
		t.Fatalf("warm rerun = %+v, want done with zero fresh evals", warm)
	}
	mt, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Fleet == nil || mt.Fleet.Redispatches == 0 {
		t.Errorf("metrics fleet = %+v, want nonzero re-dispatch counter", mt.Fleet)
	}
	if mt.Cache.WarmedTotal == 0 || mt.Cache.HitRatio <= 0 {
		t.Errorf("metrics cache = %+v, want nonzero warm/hit counters", mt.Cache)
	}
}

// TestDistributedCancel cancels a job running on remote worker processes
// and checks it terminates promptly without consuming the whole budget.
func TestDistributedCancel(t *testing.T) {
	coord, addr := startFleetCoordinator(t)
	spawnWorkerProcess(t, addr, "w", 2, 15)
	waitFleet(t, coord, 1)

	m, err := NewManager(Config{
		Workers:      1,
		Coordinator:  coord,
		BuildProblem: gameBuilder(15*time.Millisecond, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	st, err := m.Submit(fedshap.JobRequest{N: 8, Algorithm: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, st.ID, func(s *fedshap.JobStatus) bool { return s.FreshEvals >= 5 })
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, st.ID, terminal)
	if fin.State != fedshap.JobCancelled {
		t.Fatalf("state = %s (%s), want cancelled", fin.State, fin.Error)
	}
	if fin.FreshEvals >= fin.Budget {
		t.Errorf("cancelled distributed job consumed the whole budget (%d/%d)", fin.FreshEvals, fin.Budget)
	}
}
