package fl

import (
	"fedshap/internal/combin"
	"fedshap/internal/model"
	"fedshap/internal/tensor"
)

// Gradient-based valuation baselines avoid retraining by reconstructing the
// model a coalition S "would have trained" from the updates recorded during
// the single all-client run. Two reconstruction styles exist in the
// literature, both provided here.

// ReconstructFull rebuilds M_S across all rounds (Song et al.'s OR / "one
// round of communication" construction): starting from the initial global
// parameters, each round applies the weight-renormalised aggregate of the
// updates of clients in S. The approximation is that each client's recorded
// update was computed against the *actual* global trajectory, not the
// counterfactual one.
func ReconstructFull(factory model.Factory, trace *Trace, s combin.Coalition, seed int64) model.Model {
	m := factory(seed).(model.Parametric)
	params := trace.Init.Clone()
	for _, rt := range trace.Rounds {
		applyCoalitionUpdate(params, &rt, s)
	}
	m.SetParams(params)
	return m
}

// ReconstructRound rebuilds the single-round counterfactual for round r
// (used by λ-MR and GTG-Shapley): the round's actual starting global
// parameters plus the renormalised aggregate of S's updates for that round.
func ReconstructRound(factory model.Factory, trace *Trace, r int, s combin.Coalition, seed int64) model.Model {
	m := factory(seed).(model.Parametric)
	rt := &trace.Rounds[r]
	params := rt.Global.Clone()
	applyCoalitionUpdate(params, rt, s)
	m.SetParams(params)
	return m
}

// applyCoalitionUpdate adds the weight-renormalised aggregate update of
// coalition S to params, in place. Clients outside S (or without updates)
// contribute nothing; if no member of S participated, params is unchanged.
func applyCoalitionUpdate(params tensor.Vector, rt *RoundTrace, s combin.Coalition) {
	var total float64
	for i, u := range rt.Updates {
		if u == nil || !s.Has(i) {
			continue
		}
		total += rt.Weights[i]
	}
	if total == 0 {
		return
	}
	for i, u := range rt.Updates {
		if u == nil || !s.Has(i) {
			continue
		}
		params.AddScaled(rt.Weights[i]/total, u)
	}
}
