// Package fl implements the federated-learning substrate of Def. 1: a
// FedAvg server/client loop over parametric models, with optional recording
// of per-round client updates (the Trace) that the gradient-based valuation
// baselines — OR, λ-MR and GTG-Shapley — reconstruct coalition models from.
//
// Tree ensembles (model.Fitter) are trained on the merged coalition data,
// which is what histogram-sharing federated boosting computes; they produce
// no trace, matching the paper's "\" (not applicable) entries.
package fl

import (
	"fmt"
	"math/rand"
	"sync"

	"fedshap/internal/dataset"
	"fedshap/internal/model"
	"fedshap/internal/tensor"
)

// Algorithm selects the federated optimisation algorithm A of Def. 1.
type Algorithm int

const (
	// FedAvg is McMahan et al.'s weighted model averaging (the default).
	FedAvg Algorithm = iota
	// FedProx adds a proximal pull toward the global model to each local
	// update (Li et al.), damping client drift under non-IID data. The
	// proximal term is applied at the parameter level after local
	// training: Δ ← Δ · 1/(1 + ProxMu), the closed-form proximal step for
	// a quadratic penalty around the global parameters.
	FedProx
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case FedAvg:
		return "FedAvg"
	case FedProx:
		return "FedProx"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config holds the federated-training hyper-parameters.
type Config struct {
	// Algorithm selects FedAvg (default) or FedProx.
	Algorithm Algorithm
	// Rounds is the number of server aggregation rounds.
	Rounds int
	// LocalEpochs is the number of local SGD epochs per client per round.
	LocalEpochs int
	// LR is the client learning rate.
	LR float64
	// ProxMu is the FedProx proximal coefficient (ignored by FedAvg).
	ProxMu float64
	// Seed drives model initialisation and SGD shuffling; training is
	// deterministic given the seed and the participating datasets.
	Seed int64
	// WeightBySize aggregates client updates weighted by |D_i| (standard
	// FedAvg); when false, clients with data are weighted equally.
	WeightBySize bool
	// Workers bounds concurrent per-client local training within one
	// aggregation round; <= 1 trains clients serially. Client updates are
	// independent (each trains from the round's global parameters with its
	// own seeded RNG) and are reduced sequentially in client order after
	// the round's trainings complete, so the trained model is bit-identical
	// at any worker count. Workers is an execution knob, not part of the
	// training problem: it never participates in problem fingerprints.
	Workers int
}

// DefaultConfig is sized for laptop-scale valuation experiments, where the
// per-coalition train+evaluate cost τ must stay in the milliseconds.
func DefaultConfig(seed int64) Config {
	return Config{Rounds: 3, LocalEpochs: 1, LR: 0.05, Seed: seed, WeightBySize: true}
}

// RoundTrace records one aggregation round: the global parameters the round
// started from and each participating client's update (local − global).
type RoundTrace struct {
	// Global is the global parameter vector at round start.
	Global tensor.Vector
	// Updates[i] is client i's parameter delta for this round; nil for
	// clients with no data (they do not participate).
	Updates []tensor.Vector
	// Weights[i] is client i's aggregation weight (already normalised over
	// participants; zero for non-participants).
	Weights []float64
}

// Trace is the full training history needed for gradient-based valuation.
type Trace struct {
	// Init is the initial global parameter vector.
	Init tensor.Vector
	// Rounds holds one entry per aggregation round.
	Rounds []RoundTrace
	// NumClients is the federation size the trace was recorded over.
	NumClients int
}

// Train runs federated training across the given client datasets and
// returns the final model. Parametric models use FedAvg; Fitter models are
// fitted on the merged data. Clients with empty datasets are skipped; if no
// client has data, the freshly initialised model is returned.
func Train(factory model.Factory, clients []*dataset.Dataset, cfg Config) model.Model {
	m, _ := train(factory, clients, cfg, false)
	return m
}

// TrainWithTrace is Train but additionally records the per-round updates.
// It returns a nil trace for Fitter models.
func TrainWithTrace(factory model.Factory, clients []*dataset.Dataset, cfg Config) (model.Model, *Trace) {
	return train(factory, clients, cfg, true)
}

func train(factory model.Factory, clients []*dataset.Dataset, cfg Config, wantTrace bool) (model.Model, *Trace) {
	m := factory(cfg.Seed)
	switch mm := m.(type) {
	case model.Parametric:
		return fedAvg(mm, clients, cfg, wantTrace)
	case model.Fitter:
		merged := dataset.Merge("coalition", clients...)
		if merged.Len() > 0 {
			mm.Fit(merged)
		}
		return mm, nil
	default:
		panic(fmt.Sprintf("fl: model %T is neither Parametric nor Fitter", m))
	}
}

func fedAvg(global model.Parametric, clients []*dataset.Dataset, cfg Config, wantTrace bool) (model.Model, *Trace) {
	n := len(clients)
	weights := aggregationWeights(clients, cfg.WeightBySize)
	var participants []int
	for i, w := range weights {
		if w > 0 {
			participants = append(participants, i)
		}
	}
	var trace *Trace
	if wantTrace {
		trace = &Trace{Init: global.Params(), NumClients: n}
	}
	if len(participants) == 0 {
		return global, trace
	}

	workers := cfg.Workers
	if workers > len(participants) {
		workers = len(participants)
	}
	if workers < 1 {
		workers = 1
	}
	// One local model per pool slot, reused across clients and rounds:
	// SetParams fully overwrites the trainable state, so reuse changes
	// nothing numerically while dropping a Clone per client per round.
	locals := make([]model.Parametric, workers)
	for w := range locals {
		locals[w] = global.Clone().(model.Parametric)
	}

	params := global.Params()
	// trainClient runs client i's local update for one round against the
	// round-start parameters (read-only here) and returns its delta.
	// Per-client, per-round deterministic shuffling keeps every update
	// independent of scheduling order.
	trainClient := func(local model.Parametric, round, i int) tensor.Vector {
		local.SetParams(params)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(round)*1009 + int64(i)*9176))
		for e := 0; e < cfg.LocalEpochs; e++ {
			local.TrainEpoch(clients[i], cfg.LR, rng)
		}
		delta := local.Params()
		delta.AddScaled(-1, params) // delta = local - global
		if cfg.Algorithm == FedProx && cfg.ProxMu > 0 {
			// Proximal step: shrink the local deviation toward the
			// global model by the closed-form factor 1/(1+μ).
			delta.Scale(1 / (1 + cfg.ProxMu))
		}
		return delta
	}

	deltas := make([]tensor.Vector, n)
	for round := 0; round < cfg.Rounds; round++ {
		var rt RoundTrace
		if wantTrace {
			rt = RoundTrace{
				Global:  params.Clone(),
				Updates: make([]tensor.Vector, n),
				Weights: append([]float64(nil), weights...),
			}
		}
		// Per-slot delta collection: each participating client trains
		// independently on a pool slot...
		if workers > 1 {
			var wg sync.WaitGroup
			work := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(local model.Parametric) {
					defer wg.Done()
					for i := range work {
						deltas[i] = trainClient(local, round, i)
					}
				}(locals[w])
			}
			for _, i := range participants {
				work <- i
			}
			close(work)
			wg.Wait()
		} else {
			for _, i := range participants {
				deltas[i] = trainClient(locals[0], round, i)
			}
		}
		// ...and the reduction is sequential in fixed client order, so the
		// floating-point aggregation sequence — and hence the trained
		// model — is bit-identical to serial execution.
		agg := tensor.NewVector(len(params))
		for _, i := range participants {
			agg.AddScaled(weights[i], deltas[i])
			if wantTrace {
				rt.Updates[i] = deltas[i]
			}
			deltas[i] = nil
		}
		params.AddScaled(1, agg)
		if wantTrace {
			trace.Rounds = append(trace.Rounds, rt)
		}
	}
	global.SetParams(params)
	return global, trace
}

// aggregationWeights returns normalised FedAvg weights; clients without data
// get weight zero.
func aggregationWeights(clients []*dataset.Dataset, bySize bool) []float64 {
	w := make([]float64, len(clients))
	var total float64
	for i, ds := range clients {
		if ds == nil || ds.Len() == 0 {
			continue
		}
		if bySize {
			w[i] = float64(ds.Len())
		} else {
			w[i] = 1
		}
		total += w[i]
	}
	if total > 0 {
		for i := range w {
			w[i] /= total
		}
	}
	return w
}
