package fl

import (
	"runtime"
	"testing"

	"fedshap/internal/dataset"
	"fedshap/internal/model"
	"fedshap/internal/tensor"
)

// paramsOf trains with the given worker count and returns the final flat
// parameter vector.
func paramsOf(t *testing.T, factory model.Factory, clients []*dataset.Dataset, cfg Config, workers int) tensor.Vector {
	t.Helper()
	cfg.Workers = workers
	m := Train(factory, clients, cfg)
	return m.(model.Parametric).Params()
}

// TestFedAvgParallelBitIdentical is the client-level determinism contract:
// the trained model must be bit-identical at any worker count, for plain
// FedAvg and FedProx, with and without free-riding (empty) clients.
func TestFedAvgParallelBitIdentical(t *testing.T) {
	clients, _ := femClients(5, 40, 3)
	clients = append(clients, clients[0].Empty("free-rider"))
	factories := map[string]model.Factory{
		"mlp":     mlpFactory(clients[0].Dim(), 4),
		"deepmlp": func(seed int64) model.Model { return model.NewDeepMLP([]int{clients[0].Dim(), 6, 5, 4}, seed) },
		"logreg":  func(seed int64) model.Model { return model.NewLogReg(clients[0].Dim(), 4, seed) },
		"cnn": func(seed int64) model.Model {
			return model.NewCNN(clients[0].ImageW, clients[0].ImageH, 3, 4, seed)
		},
	}
	configs := map[string]Config{
		"fedavg":  {Rounds: 3, LocalEpochs: 2, LR: 0.05, Seed: 11, WeightBySize: true},
		"fedprox": {Algorithm: FedProx, ProxMu: 0.5, Rounds: 3, LocalEpochs: 1, LR: 0.05, Seed: 11},
	}
	for fname, factory := range factories {
		for cname, cfg := range configs {
			serial := paramsOf(t, factory, clients, cfg, 1)
			for _, workers := range []int{2, 4, runtime.NumCPU(), 64} {
				got := paramsOf(t, factory, clients, cfg, workers)
				for j := range serial {
					if got[j] != serial[j] {
						t.Fatalf("%s/%s workers=%d: param[%d] = %v, want %v (bit-exact)",
							fname, cname, workers, j, got[j], serial[j])
					}
				}
			}
		}
	}
}

// TestFedAvgParallelTraceIdentical checks that the recorded trace — which
// the gradient-based baselines reconstruct coalition models from — is also
// bit-identical under client-level parallelism.
func TestFedAvgParallelTraceIdentical(t *testing.T) {
	clients, _ := femClients(4, 30, 5)
	factory := mlpFactory(clients[0].Dim(), 4)
	cfg := Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 9, WeightBySize: true}
	_, serial := TrainWithTrace(factory, clients, cfg)
	cfg.Workers = 4
	_, par := TrainWithTrace(factory, clients, cfg)
	if len(par.Rounds) != len(serial.Rounds) {
		t.Fatalf("rounds = %d, want %d", len(par.Rounds), len(serial.Rounds))
	}
	for r := range serial.Rounds {
		for i := range serial.Rounds[r].Updates {
			su, pu := serial.Rounds[r].Updates[i], par.Rounds[r].Updates[i]
			if len(su) != len(pu) {
				t.Fatalf("round %d client %d: update length %d vs %d", r, i, len(pu), len(su))
			}
			for j := range su {
				if su[j] != pu[j] {
					t.Fatalf("round %d client %d: update[%d] = %v, want %v", r, i, j, pu[j], su[j])
				}
			}
		}
	}
}

// TestFedAvgWorkersClamped checks degenerate worker counts: zero, negative
// and more-than-participants all train correctly.
func TestFedAvgWorkersClamped(t *testing.T) {
	clients, test := femClients(3, 40, 7)
	factory := mlpFactory(clients[0].Dim(), 4)
	for _, workers := range []int{-3, 0, 1, 100} {
		cfg := Config{Rounds: 3, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true, Workers: workers}
		m := Train(factory, clients, cfg)
		if acc := model.Accuracy(m, test); acc < 0.6 {
			t.Errorf("workers=%d: accuracy %v, want > 0.6", workers, acc)
		}
	}
}
