package fl

import (
	"math"
	"math/rand"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/model"
)

func femClients(n, perClient int, seed int64) ([]*dataset.Dataset, *dataset.Dataset) {
	cfg := dataset.DefaultFEMNISTLike(n, perClient, seed)
	cfg.Classes = 4
	return dataset.FEMNISTLike(cfg)
}

func mlpFactory(dim, classes int) model.Factory {
	return func(seed int64) model.Model { return model.NewMLP(dim, 8, classes, seed) }
}

func TestFedAvgLearns(t *testing.T) {
	clients, test := femClients(4, 60, 1)
	cfg := Config{Rounds: 4, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	m := Train(mlpFactory(clients[0].Dim(), 4), clients, cfg)
	if acc := model.Accuracy(m, test); acc < 0.7 {
		t.Errorf("FedAvg accuracy %v, want > 0.7", acc)
	}
}

func TestFedAvgDeterminism(t *testing.T) {
	clients, _ := femClients(3, 40, 2)
	cfg := DefaultConfig(9)
	f := mlpFactory(clients[0].Dim(), 4)
	a := Train(f, clients, cfg).(model.Parametric).Params()
	b := Train(f, clients, cfg).(model.Parametric).Params()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FedAvg non-deterministic at param %d", i)
		}
	}
}

func TestFedAvgAllEmptyReturnsInit(t *testing.T) {
	clients, _ := femClients(2, 10, 3)
	empty := []*dataset.Dataset{clients[0].Empty("a"), clients[1].Empty("b")}
	cfg := DefaultConfig(5)
	f := mlpFactory(clients[0].Dim(), 4)
	m := Train(f, empty, cfg).(model.Parametric)
	init := f(cfg.Seed).(model.Parametric)
	got, want := m.Params(), init.Params()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("empty federation changed parameters")
		}
	}
}

func TestFedAvgSkipsEmptyClients(t *testing.T) {
	clients, test := femClients(3, 60, 4)
	withRider := []*dataset.Dataset{clients[0], clients[1].Empty("rider"), clients[2]}
	cfg := Config{Rounds: 3, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	f := mlpFactory(clients[0].Dim(), 4)
	m := Train(f, withRider, cfg)
	if acc := model.Accuracy(m, test); acc < 0.5 {
		t.Errorf("FedAvg with free rider accuracy %v, want > 0.5", acc)
	}
}

func TestFitterPathTrainsOnMergedData(t *testing.T) {
	d, _ := dataset.AdultLike(dataset.DefaultAdultLike(400, 5))
	rng := rand.New(rand.NewSource(1))
	train, test := d.Split(0.8, rng)
	clients := dataset.PartitionEqualIID(train, 3, rng)
	f := func(seed int64) model.Model { return model.NewXGB(2, model.DefaultXGBConfig(), seed) }
	m := Train(f, clients, DefaultConfig(3))
	if acc := model.Accuracy(m, test); acc < 0.7 {
		t.Errorf("federated XGB accuracy %v, want > 0.7", acc)
	}
	// Fitter produces no trace.
	_, trace := TrainWithTrace(f, clients, DefaultConfig(3))
	if trace != nil {
		t.Errorf("Fitter model should yield nil trace")
	}
}

func TestTraceShape(t *testing.T) {
	clients, _ := femClients(3, 30, 6)
	cfg := Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	_, trace := TrainWithTrace(mlpFactory(clients[0].Dim(), 4), clients, cfg)
	if trace == nil {
		t.Fatal("nil trace for parametric model")
	}
	if len(trace.Rounds) != 2 {
		t.Fatalf("trace rounds = %d, want 2", len(trace.Rounds))
	}
	if trace.NumClients != 3 {
		t.Errorf("trace clients = %d", trace.NumClients)
	}
	for r, rt := range trace.Rounds {
		if len(rt.Updates) != 3 || len(rt.Weights) != 3 {
			t.Fatalf("round %d: %d updates, %d weights", r, len(rt.Updates), len(rt.Weights))
		}
		var wsum float64
		for i, u := range rt.Updates {
			if u == nil {
				t.Fatalf("round %d client %d missing update", r, i)
			}
			wsum += rt.Weights[i]
		}
		if math.Abs(wsum-1) > 1e-9 {
			t.Errorf("round %d weights sum to %v", r, wsum)
		}
	}
}

// The full-coalition reconstruction must reproduce the actual final model
// exactly — the consistency anchor of all gradient-based baselines.
func TestReconstructFullCoalitionExact(t *testing.T) {
	clients, _ := femClients(4, 30, 8)
	cfg := Config{Rounds: 3, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	f := mlpFactory(clients[0].Dim(), 4)
	final, trace := TrainWithTrace(f, clients, cfg)
	rec := ReconstructFull(f, trace, combin.FullCoalition(4), cfg.Seed)
	got := rec.(model.Parametric).Params()
	want := final.(model.Parametric).Params()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("full reconstruction deviates at param %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Reconstructing the empty coalition yields the initial model.
func TestReconstructEmptyCoalition(t *testing.T) {
	clients, _ := femClients(3, 20, 9)
	cfg := DefaultConfig(7)
	f := mlpFactory(clients[0].Dim(), 4)
	_, trace := TrainWithTrace(f, clients, cfg)
	rec := ReconstructFull(f, trace, combin.Empty, cfg.Seed)
	got := rec.(model.Parametric).Params()
	for i := range got {
		if got[i] != trace.Init[i] {
			t.Fatalf("empty reconstruction differs from init at %d", i)
		}
	}
}

// Round reconstruction of the full coalition equals the next round's global
// parameters.
func TestReconstructRoundConsistency(t *testing.T) {
	clients, _ := femClients(3, 30, 10)
	cfg := Config{Rounds: 3, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	f := mlpFactory(clients[0].Dim(), 4)
	_, trace := TrainWithTrace(f, clients, cfg)
	for r := 0; r < len(trace.Rounds)-1; r++ {
		rec := ReconstructRound(f, trace, r, combin.FullCoalition(3), cfg.Seed)
		got := rec.(model.Parametric).Params()
		want := trace.Rounds[r+1].Global
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("round %d reconstruction deviates at param %d", r, i)
			}
		}
	}
}

func TestAggregationWeights(t *testing.T) {
	a := dataset.New("a", 10, 2, 2)
	b := dataset.New("b", 30, 2, 2)
	empty := dataset.New("e", 0, 2, 2)
	w := aggregationWeights([]*dataset.Dataset{a, b, empty}, true)
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 || w[2] != 0 {
		t.Errorf("weights = %v", w)
	}
	weq := aggregationWeights([]*dataset.Dataset{a, b, empty}, false)
	if math.Abs(weq[0]-0.5) > 1e-12 || math.Abs(weq[1]-0.5) > 1e-12 {
		t.Errorf("equal weights = %v", weq)
	}
}

func TestFedProxShrinksUpdates(t *testing.T) {
	clients, _ := femClients(3, 40, 31)
	f := mlpFactory(clients[0].Dim(), 4)
	base := Config{Rounds: 1, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	prox := base
	prox.Algorithm = FedProx
	prox.ProxMu = 1.0 // shrink factor 1/2

	init := f(base.Seed).(model.Parametric).Params()
	avg := Train(f, clients, base).(model.Parametric).Params()
	px := Train(f, clients, prox).(model.Parametric).Params()

	// After one round, the FedProx displacement from init must be exactly
	// half the FedAvg displacement (closed-form proximal step).
	for i := range init {
		dAvg := avg[i] - init[i]
		dProx := px[i] - init[i]
		if math.Abs(dProx-dAvg/2) > 1e-9 {
			t.Fatalf("param %d: prox delta %v, want %v", i, dProx, dAvg/2)
		}
	}
}

func TestFedProxZeroMuIsFedAvg(t *testing.T) {
	clients, _ := femClients(2, 20, 33)
	f := mlpFactory(clients[0].Dim(), 4)
	base := Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 3, WeightBySize: true}
	prox := base
	prox.Algorithm = FedProx // ProxMu = 0 → no shrink
	a := Train(f, clients, base).(model.Parametric).Params()
	b := Train(f, clients, prox).(model.Parametric).Params()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FedProx(mu=0) deviates from FedAvg at %d", i)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if FedAvg.String() != "FedAvg" || FedProx.String() != "FedProx" {
		t.Errorf("algorithm names wrong")
	}
	if Algorithm(99).String() == "" {
		t.Errorf("unknown algorithm should still print")
	}
}

func TestMultipleLocalEpochs(t *testing.T) {
	clients, test := femClients(3, 40, 35)
	f := mlpFactory(clients[0].Dim(), 4)
	one := Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	three := one
	three.LocalEpochs = 3
	accOne := model.Accuracy(Train(f, clients, one), test)
	accThree := model.Accuracy(Train(f, clients, three), test)
	// More local work should not collapse accuracy (and typically helps).
	if accThree < accOne-0.2 {
		t.Errorf("3 local epochs (%v) far below 1 epoch (%v)", accThree, accOne)
	}
}
