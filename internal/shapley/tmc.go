package shapley

import (
	"fmt"

	"fedshap/internal/combin"
)

// TMC is the paper's "Extended-TMC" baseline: Ghorbani & Zou's Truncated
// Monte Carlo data-Shapley extended to FL. It samples random permutations of
// the clients, walks each permutation accumulating marginal contributions,
// and truncates the walk once the running utility is within Tolerance of
// the grand-coalition utility (remaining marginals are taken as zero).
// Sampling stops when the oracle has consumed the evaluation budget γ.
type TMC struct {
	// Gamma is the evaluation budget (distinct coalition evaluations).
	Gamma int
	// Tolerance is the truncation threshold as a fraction of |U(N)|;
	// the conventional 0.01 is used when zero.
	Tolerance float64
	// MaxPermutations bounds the number of sampled permutations
	// independently of the budget (0 = no bound).
	MaxPermutations int
}

// NewTMC returns the baseline with budget γ and default truncation.
func NewTMC(gamma int) *TMC { return &TMC{Gamma: gamma} }

// Name implements Valuer.
func (a *TMC) Name() string { return fmt.Sprintf("Extended-TMC(γ=%d)", a.Gamma) }

// Values implements Valuer.
func (a *TMC) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	tol := a.Tolerance
	if tol <= 0 {
		tol = 0.01
	}
	uFull := o.U(combin.FullCoalition(n))
	uEmpty := o.U(combin.Empty)
	thresh := tol * abs(uFull)

	sums := make(Values, n)
	perms := 0
	budget := func() bool { return a.Gamma <= 0 || o.Evals() < a.Gamma }

	for budget() {
		if a.MaxPermutations > 0 && perms >= a.MaxPermutations {
			break
		}
		perm := combin.RandomPermutation(n, ctx.RNG)
		var s combin.Coalition
		prev := uEmpty
		truncated := false
		for _, i := range perm {
			s = s.With(i)
			if truncated || !budget() && !o.Cached(s) {
				// Truncation: remaining marginals contribute zero.
				continue
			}
			cur := o.U(s)
			sums[i] += cur - prev
			prev = cur
			if abs(uFull-cur) < thresh {
				truncated = true
			}
		}
		perms++
		if perms >= 1<<20 {
			break // safety valve for degenerate budgets
		}
	}
	if perms == 0 {
		return make(Values, n), nil
	}
	inv := 1.0 / float64(perms)
	for i := range sums {
		sums[i] *= inv
	}
	return sums, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
