package shapley

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
)

// IPSS is the paper's contribution (Alg. 3, Importance-Pruned Stratified
// Sampling). Given a sampling budget γ it:
//
//  1. computes k* = max{k : Σ_{j≤k} C(n,j) ≤ γ} and exhaustively evaluates
//     every combination of size ≤ k* (lines 1-7) — the key combinations;
//  2. spends the remaining budget on a balanced sample P of combinations of
//     size k*+1, with equal per-client coverage so approximation error is
//     fair across clients (lines 8-14, constraints (1)-(3));
//  3. estimates each client's value by the truncated MC-SV plug-in sum over
//     the evaluated combinations (lines 15-17).
//
// Combinations larger than k*+1 are pruned entirely: by the key-combinations
// phenomenon their marginal utilities are small and their MC-SV coefficients
// 1/C(n−1,|S|) are tiny, so the pruned mass is negligible (Theorem 3 bounds
// the relative error by O((n−k*)/(k*·n·t))).
type IPSS struct {
	// Gamma is the total sampling budget γ (coalition evaluations).
	Gamma int
	// RescaleSampledStratum, when true, applies a Horvitz-Thompson
	// correction to the partially sampled stratum k*+1: each sampled
	// marginal is scaled by (number of size-k* subsets avoiding i) /
	// (number sampled for i), making the stratum term an unbiased estimate
	// of its full sum rather than the paper's plug-in partial sum. This is
	// an ablation of the paper's design choice (DESIGN.md E-AB1), not part
	// of Alg. 3.
	RescaleSampledStratum bool
	// UnbalancedP, when true, replaces the balanced sample of line 11
	// (constraint (3): equal per-client coverage) with plain uniform
	// sampling — the E-AB2 ablation.
	UnbalancedP bool
}

// NewIPSS returns the paper-faithful algorithm with budget γ.
func NewIPSS(gamma int) *IPSS { return &IPSS{Gamma: gamma} }

// Name implements Valuer.
func (a *IPSS) Name() string {
	switch {
	case a.RescaleSampledStratum:
		return fmt.Sprintf("IPSS-rescaled(γ=%d)", a.Gamma)
	case a.UnbalancedP:
		return fmt.Sprintf("IPSS-unbalanced(γ=%d)", a.Gamma)
	default:
		return fmt.Sprintf("IPSS(γ=%d)", a.Gamma)
	}
}

// samplePlan replays Alg. 3 lines 1-11 — the deterministic part of the
// algorithm: the stratum boundary k*, the exhaustively evaluated strata of
// size ≤ k* (in enumeration order) and the balanced sample P of size k*+1
// drawn from rng. Both Values and SamplePlan consume it, so the parallel
// evaluation plan, the evaluated set and the estimator's stratum boundary
// cannot drift apart.
func (a *IPSS) samplePlan(n int, rng *rand.Rand) (kstar int, strata, pset []combin.Coalition) {
	gamma := a.Gamma
	if gamma < 1 {
		gamma = 1
	}

	// Line 1: k* = max{k | Σ_{j=0..k} C(n,j) <= γ}.
	kstar = combin.MaxFullStratum(n, uint64(gamma))
	if kstar < 0 {
		kstar = 0 // degenerate budget: still evaluate the empty coalition
	}

	// Lines 2-7: all combinations of size <= k*.
	for size := 0; size <= kstar; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) {
			strata = append(strata, s)
		})
	}

	// Lines 8-11: sample P at size k*+1 within the remaining budget, with
	// equal per-client coverage (constraint (3)) unless ablated.
	remaining := gamma - int(combin.CumulativeBinomial(n, kstar))
	if kstar+1 <= n && remaining > 0 {
		if a.UnbalancedP {
			pset = combin.SampleStratumWithoutReplacement(n, kstar+1, remaining, rng)
		} else {
			pset = combin.BalancedStratumSample(n, kstar+1, remaining, rng)
		}
	}
	return kstar, strata, pset
}

// Values implements Valuer, following Alg. 3: plan the evaluation set, run
// it through the oracle, then reduce.
func (a *IPSS) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	kstar, strata, pset := a.samplePlan(n, ctx.RNG)

	// Lines 2-7 and 12-14: evaluate the strata then the sampled
	// combinations, in plan order.
	u := make(map[combin.Coalition]float64, len(strata)+len(pset))
	for _, s := range strata {
		u[s] = o.U(s)
	}
	for _, s := range pset {
		u[s] = o.U(s)
	}

	// Lines 15-17: truncated MC-SV plug-in estimate.
	phi := make(Values, n)
	for i := 0; i < n; i++ {
		// Fully evaluated strata: S ⊆ N\{i}, |S| < k*; both S and S∪{i}
		// have size <= k* and are in u.
		for size := 0; size < kstar; size++ {
			w := mcWeight(n, size)
			combin.SubsetsOfSizeNotContaining(n, size, i, func(s combin.Coalition) {
				phi[i] += w * (u[s.With(i)] - u[s])
			})
		}
		// Sampled stratum: S of size k* with S∪{i} ∈ P. S itself is fully
		// evaluated (size k*).
		if len(pset) > 0 {
			w := mcWeight(n, kstar)
			var contrib float64
			cnt := 0
			for _, si := range pset {
				if !si.Has(i) {
					continue
				}
				s := si.Without(i)
				contrib += u[si] - u[s]
				cnt++
			}
			if a.RescaleSampledStratum && cnt > 0 {
				// Unbiased stratum estimate: mean marginal × stratum size.
				total := combin.Binomial(n-1, kstar)
				contrib = contrib / float64(cnt) * total
			}
			phi[i] += w * contrib
		}
	}
	return phi, nil
}

// KStar exposes the Alg. 3 line-1 computation for reporting and tests.
func (a *IPSS) KStar(n int) int {
	g := a.Gamma
	if g < 1 {
		g = 1
	}
	return combin.MaxFullStratum(n, uint64(g))
}
