package shapley

import (
	"math"
	"testing"

	"fedshap/internal/metrics"
)

func TestNeymanConverges(t *testing.T) {
	n := 6
	exact := mustValues(t, ExactMC{}, NewContext(steepMonotoneGame(n, 91), 1))
	var sum float64
	const reps = 15
	for r := 0; r < reps; r++ {
		phi := mustValues(t, NewStratifiedNeyman(64), NewContext(steepMonotoneGame(n, 91), int64(r)))
		sum += metrics.L2RelativeError(phi, exact)
	}
	if avg := sum / reps; avg > 0.35 {
		t.Errorf("Neyman error %v, want < 0.35", avg)
	}
}

func TestNeymanRespectsBudgetApproximately(t *testing.T) {
	n := 8
	o := monotoneGame(n, 93)
	ctx := NewContext(o, 2)
	mustValues(t, NewStratifiedNeyman(40), ctx)
	// Each draw costs at most 2 fresh evaluations; modest overshoot only
	// from the pilot minimum.
	if got := ctx.Oracle.Evals(); got > 40+2*n {
		t.Errorf("evals = %d for γ=40", got)
	}
}

func TestNeymanImprovesOnUniformAllocation(t *testing.T) {
	// On games whose variance concentrates in the small strata, Neyman
	// allocation should (weakly) beat the plain framework's even split at
	// equal budget. Averaged over repetitions to damp luck.
	n := 8
	gamma := 40
	exact := mustValues(t, ExactMC{}, NewContext(steepMonotoneGame(n, 95), 1))
	avg := func(mk func() Valuer) float64 {
		var sum float64
		const reps = 25
		for r := 0; r < reps; r++ {
			phi := mustValues(t, mk(), NewContext(steepMonotoneGame(n, 95), int64(r*3+1)))
			sum += metrics.L2RelativeError(phi, exact)
		}
		return sum / reps
	}
	neyman := avg(func() Valuer { return NewStratifiedNeyman(gamma) })
	uniform := avg(func() Valuer { return NewStratified(MC, gamma) })
	// Allow a small tolerance: the claim is "not worse", typically better.
	if neyman > uniform*1.1 {
		t.Errorf("Neyman %v notably worse than uniform %v", neyman, uniform)
	}
	t.Logf("neyman=%v uniform=%v", neyman, uniform)
}

func TestNeymanDegenerate(t *testing.T) {
	o := monotoneGame(3, 97)
	phi := mustValues(t, NewStratifiedNeyman(0), NewContext(o, 1))
	for _, v := range phi {
		if math.IsNaN(v) {
			t.Errorf("NaN value on degenerate budget")
		}
	}
	if got := NewStratifiedNeyman(16).Name(); got != "Stratified-Neyman(γ=16)" {
		t.Errorf("Name = %q", got)
	}
}
