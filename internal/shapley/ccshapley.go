package shapley

import (
	"fmt"

	"fedshap/internal/combin"
)

// CCShapley is the paper's "CC-Shapley" baseline: Zhang et al.'s
// complementary-contribution sampling (SIGMOD 2023). Each draw evaluates a
// coalition S and its complement N\S; the single complementary contribution
// U(S) − U(N\S) simultaneously informs every member of S (at stratum |S|)
// and, negated, every member of N\S (at stratum n−|S|) — the scheme's
// sample-efficiency trick. Values average per-stratum means, as in CC-SV.
type CCShapley struct {
	// Gamma is the evaluation budget (each draw costs up to two
	// evaluations).
	Gamma int
}

// NewCCShapley returns the baseline with budget γ.
func NewCCShapley(gamma int) *CCShapley { return &CCShapley{Gamma: gamma} }

// Name implements Valuer.
func (a *CCShapley) Name() string { return fmt.Sprintf("CC-Shapley(γ=%d)", a.Gamma) }

// Values implements Valuer.
func (a *CCShapley) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	full := combin.FullCoalition(n)

	// sums[i][k] accumulates complementary contributions of client i at
	// stratum k (coalition size containing i); counts track sample counts.
	sums := make([][]float64, n)
	counts := make([][]int, n)
	for i := range sums {
		sums[i] = make([]float64, n+1)
		counts[i] = make([]int, n+1)
	}

	draws := 0
	for o.Evals() < a.Gamma || draws == 0 {
		k := 1 + ctx.RNG.Intn(n) // coalition size 1..n
		s := combin.RandomSubsetOfSize(n, k, ctx.RNG)
		comp := full.Minus(s)
		us := o.U(s)
		uc := o.U(comp)
		cc := us - uc
		for _, i := range s.Members() {
			sums[i][k] += cc
			counts[i][k]++
		}
		ck := n - k
		if ck > 0 {
			for _, i := range comp.Members() {
				sums[i][ck] += -cc
				counts[i][ck]++
			}
		}
		draws++
		if draws >= 1<<20 || a.Gamma <= 0 {
			break
		}
	}

	phi := make(Values, n)
	for i := 0; i < n; i++ {
		var total float64
		for k := 1; k <= n; k++ {
			if counts[i][k] > 0 {
				total += sums[i][k] / float64(counts[i][k])
			}
		}
		phi[i] = total / float64(n)
	}
	return phi, nil
}
