package shapley

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
)

// CCShapley is the paper's "CC-Shapley" baseline: Zhang et al.'s
// complementary-contribution sampling (SIGMOD 2023). Each draw evaluates a
// coalition S and its complement N\S; the single complementary contribution
// U(S) − U(N\S) simultaneously informs every member of S (at stratum |S|)
// and, negated, every member of N\S (at stratum n−|S|) — the scheme's
// sample-efficiency trick. Values average per-stratum means, as in CC-SV.
type CCShapley struct {
	// Gamma is the evaluation budget (each draw costs up to two
	// evaluations).
	Gamma int
}

// NewCCShapley returns the baseline with budget γ.
func NewCCShapley(gamma int) *CCShapley { return &CCShapley{Gamma: gamma} }

// Name implements Valuer.
func (a *CCShapley) Name() string { return fmt.Sprintf("CC-Shapley(γ=%d)", a.Gamma) }

// forEachDraw replays the sampler's draw sequence: each iteration draws a
// size, a coalition of that size and its complement, and hands them to
// visit, which evaluates (or, for planning, records) the pair and returns
// the run's distinct-request count — the budget meter that drives the stop
// condition exactly as Source.Evals does. evals seeds the meter (the
// Source's count before the run; 0 for a fresh budget scope).
func (a *CCShapley) forEachDraw(n, evals int, rng *rand.Rand, visit func(k int, s, comp combin.Coalition) int) {
	full := combin.FullCoalition(n)
	draws := 0
	for evals < a.Gamma || draws == 0 {
		k := 1 + rng.Intn(n) // coalition size 1..n
		s := combin.RandomSubsetOfSize(n, k, rng)
		evals = visit(k, s, full.Minus(s))
		draws++
		if draws >= 1<<20 || a.Gamma <= 0 {
			break
		}
	}
}

// Values implements Valuer.
func (a *CCShapley) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()

	// sums[i][k] accumulates complementary contributions of client i at
	// stratum k (coalition size containing i); counts track sample counts.
	sums := make([][]float64, n)
	counts := make([][]int, n)
	for i := range sums {
		sums[i] = make([]float64, n+1)
		counts[i] = make([]int, n+1)
	}

	a.forEachDraw(n, o.Evals(), ctx.RNG, func(k int, s, comp combin.Coalition) int {
		us := o.U(s)
		uc := o.U(comp)
		cc := us - uc
		for _, i := range s.Members() {
			sums[i][k] += cc
			counts[i][k]++
		}
		ck := n - k
		if ck > 0 {
			for _, i := range comp.Members() {
				sums[i][ck] += -cc
				counts[i][ck]++
			}
		}
		return o.Evals()
	})

	phi := make(Values, n)
	for i := 0; i < n; i++ {
		var total float64
		for k := 1; k <= n; k++ {
			if counts[i][k] > 0 {
				total += sums[i][k] / float64(counts[i][k])
			}
		}
		phi[i] = total / float64(n)
	}
	return phi, nil
}
