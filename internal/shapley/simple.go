package shapley

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
)

// Two simple reference valuers rounding out the family: leave-one-out (the
// cheapest defensible valuation, O(n) evaluations) and plain Monte-Carlo
// permutation sampling (ApproShapley / Castro et al., the classic unbiased
// estimator that Extended-TMC adds truncation to).

// LeaveOneOut values each client by its marginal contribution to the grand
// coalition: φᵢ = U(N) − U(N\{i}). It needs only n+1 evaluations but is not
// a Shapley value — it ignores every smaller coalition, over-penalising
// redundant clients (two duplicates each get ~0). Provided as the natural
// lower-bound baseline for cost and fairness comparisons.
type LeaveOneOut struct{}

// Name implements Valuer.
func (LeaveOneOut) Name() string { return "Leave-One-Out" }

// Values implements Valuer.
func (LeaveOneOut) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	full := combin.FullCoalition(n)
	uAll := o.U(full)
	phi := make(Values, n)
	for i := 0; i < n; i++ {
		phi[i] = uAll - o.U(full.Without(i))
	}
	return phi, nil
}

// PermSampling is plain Monte-Carlo permutation sampling without
// truncation: sample random client orderings, walk each accumulating
// marginal contributions, stop at the evaluation budget. Unbiased for the
// Shapley value; the baseline Extended-TMC improves on with truncation.
type PermSampling struct {
	// Gamma is the evaluation budget.
	Gamma int
	// MaxPermutations bounds the sampled permutations (0 = no bound).
	MaxPermutations int
}

// NewPermSampling returns the sampler with budget γ.
func NewPermSampling(gamma int) *PermSampling { return &PermSampling{Gamma: gamma} }

// Name implements Valuer.
func (a *PermSampling) Name() string { return fmt.Sprintf("Perm-MC(γ=%d)", a.Gamma) }

// forEachPerm replays the permutation draws: each iteration draws one
// client ordering and hands it to visit, which walks it evaluating (or, for
// planning, recording) every prefix and returns the run's distinct-request
// count — the budget meter driving the stop condition exactly as
// Source.Evals does. evals seeds the meter (the Source's count after U(∅);
// 1 for a fresh budget scope).
func (a *PermSampling) forEachPerm(n, evals int, rng *rand.Rand, visit func(perm []int) int) {
	perms := 0
	for (a.Gamma <= 0 || evals < a.Gamma) || perms == 0 {
		if a.MaxPermutations > 0 && perms >= a.MaxPermutations {
			break
		}
		evals = visit(combin.RandomPermutation(n, rng))
		perms++
		if perms >= 1<<20 || a.Gamma <= 0 {
			break
		}
	}
}

// Values implements Valuer.
func (a *PermSampling) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	uEmpty := o.U(combin.Empty)
	sums := make(Values, n)
	perms := 0
	a.forEachPerm(n, o.Evals(), ctx.RNG, func(perm []int) int {
		var s combin.Coalition
		prev := uEmpty
		for _, i := range perm {
			s = s.With(i)
			cur := o.U(s)
			sums[i] += cur - prev
			prev = cur
		}
		perms++
		return o.Evals()
	})
	if perms > 0 {
		inv := 1.0 / float64(perms)
		for i := range sums {
			sums[i] *= inv
		}
	}
	return sums, nil
}
