package shapley

import (
	"math"
	"testing"

	"fedshap/internal/combin"
)

// recordingSource is a synthetic utility Source that records the distinct
// coalitions a run requests, in first-request order — the sequence a
// SamplePlan must reproduce. Utilities vary irregularly with the coalition
// so value-dependent control flow (TMC truncation) is exercised.
type recordingSource struct {
	n        int
	seen     map[combin.Coalition]int
	requests []combin.Coalition
}

func newRecordingSource(n int) *recordingSource {
	return &recordingSource{n: n, seen: make(map[combin.Coalition]int)}
}

func (r *recordingSource) N() int { return r.n }

func (r *recordingSource) U(s combin.Coalition) float64 {
	if _, ok := r.seen[s]; !ok {
		r.seen[s] = len(r.requests)
		r.requests = append(r.requests, s)
	}
	// Deterministic, irregular, size-correlated utility.
	return float64(s.Size())/float64(r.n) + 0.1*math.Sin(float64(s.Index()))
}

func (r *recordingSource) Cached(s combin.Coalition) bool {
	_, ok := r.seen[s]
	return ok
}

func (r *recordingSource) Evals() int { return len(r.requests) }

// planners lists every seeded sampler with the plan kind it promises:
// exact plans reproduce the full request sequence, prefix plans a certain
// prefix of it.
func planners(gamma int) []struct {
	alg   Valuer
	exact bool
} {
	return []struct {
		alg   Valuer
		exact bool
	}{
		{NewIPSS(gamma), true},
		{&IPSS{Gamma: gamma, RescaleSampledStratum: true}, true},
		{&IPSS{Gamma: gamma, UnbalancedP: true}, true},
		{NewStratified(MC, gamma), true},
		{NewStratified(CC, gamma), true},
		{&Stratified{Scheme: MC, TotalRounds: gamma, ForcePairs: true}, true},
		{NewCCShapley(gamma), true},
		{NewGTB(gamma), true},
		{NewMCBanzhaf(gamma), true},
		{NewPermSampling(gamma), true},
		{NewStratifiedNeyman(gamma), false},
		{NewTMC(gamma), false},
	}
}

// TestSamplePlanMatchesRun is the anti-drift contract: for every Planner,
// SamplePlan(n, seed) must equal the distinct-request sequence of a real
// run with the same seed (or, for utility-dependent samplers, a prefix of
// it). A plan that requests anything the run would not request would
// inflate the fresh-evaluation count under parallel prefetching.
func TestSamplePlanMatchesRun(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, gamma := range []int{1, 2, 7, 40} {
				if gamma > 1<<n {
					// A budget no run can consume makes every sampler spin
					// to its 2²⁰-draw safety valve — pointless here.
					continue
				}
				for _, tc := range planners(gamma) {
					p, ok := tc.alg.(Planner)
					if !ok {
						t.Fatalf("%s does not implement Planner", tc.alg.Name())
					}
					plan := p.SamplePlan(n, seed)
					src := newRecordingSource(n)
					ctx := NewContext(src, seed)
					if _, err := tc.alg.Values(ctx); err != nil {
						t.Fatalf("%s n=%d: %v", tc.alg.Name(), n, err)
					}
					if tc.exact && len(plan) != len(src.requests) {
						t.Errorf("%s n=%d seed=%d γ=%d: plan has %d coalitions, run requested %d",
							tc.alg.Name(), n, seed, gamma, len(plan), len(src.requests))
					}
					if len(plan) > len(src.requests) {
						t.Fatalf("%s n=%d seed=%d γ=%d: plan (%d) longer than request sequence (%d)",
							tc.alg.Name(), n, seed, gamma, len(plan), len(src.requests))
					}
					for i, s := range plan {
						if src.requests[i] != s {
							t.Fatalf("%s n=%d seed=%d γ=%d: plan[%d]=%s but run requested %s",
								tc.alg.Name(), n, seed, gamma, i, s, src.requests[i])
						}
					}
				}
			}
		}
	}
}

// TestPlanForDispatch checks the Planner-before-Prefetchable preference and
// the no-plan fallback.
func TestPlanForDispatch(t *testing.T) {
	// IPSS implements both; PlanFor must return the seeded (longer) plan.
	a := NewIPSS(7)
	plan, ok := PlanFor(a, 5, 3)
	if !ok {
		t.Fatal("PlanFor(IPSS) not ok")
	}
	if got, want := len(plan), len(a.SamplePlan(5, 3)); got != want {
		t.Fatalf("PlanFor(IPSS) = %d coalitions, want the seeded plan's %d", got, want)
	}
	if cert := a.PrefetchPlan(5); len(plan) <= len(cert) && len(a.SamplePlan(5, 3)) > len(cert) {
		t.Fatalf("PlanFor returned the certain set (%d), not the seeded plan", len(cert))
	}

	// Exact schemes fall back to the certain set.
	if plan, ok := PlanFor(ExactMC{}, 4, 1); !ok || len(plan) != 16 {
		t.Fatalf("PlanFor(ExactMC) = (%d, %v), want (16, true)", len(plan), ok)
	}
	// Leave-one-out has a seed-free plan.
	if plan, ok := PlanFor(LeaveOneOut{}, 6, 1); !ok || len(plan) != 7 {
		t.Fatalf("PlanFor(LeaveOneOut) = (%d, %v), want (7, true)", len(plan), ok)
	}
	// Gradient baselines have none.
	if _, ok := PlanFor(OR{}, 4, 1); ok {
		t.Fatal("PlanFor(OR) = ok, want no plan")
	}
}
