package shapley

import (
	"math"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/metrics"
	"fedshap/internal/utility"
)

func TestLeaveOneOutBasics(t *testing.T) {
	o := tableI()
	phi := mustValues(t, LeaveOneOut{}, NewContext(o, 1))
	// φ1 = U(N) − U({2,3}) = 0.96 − 0.90 = 0.06 etc.
	want := Values{0.06, 0.06, 0.16}
	for i := range want {
		if math.Abs(phi[i]-want[i]) > 1e-12 {
			t.Errorf("client %d: %v, want %v", i, phi[i], want[i])
		}
	}
	// n+1 evaluations.
	fresh := tableI()
	ctx := NewContext(fresh, 1)
	mustValues(t, LeaveOneOut{}, ctx)
	if got := fresh.Evals(); got != 4 {
		t.Errorf("evals = %d, want 4", got)
	}
}

func TestLeaveOneOutPunishesDuplicates(t *testing.T) {
	// Additive game with two identical players 0,1 that are perfect
	// substitutes: U(S) = 1 if S contains 0 or 1, plus 0.5 if it has 2.
	n := 3
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) {
		v := 0.0
		if s.Has(0) || s.Has(1) {
			v = 1
		}
		if s.Has(2) {
			v += 0.5
		}
		table[s] = v
	})
	o := utility.TableOracle(n, table)
	loo := mustValues(t, LeaveOneOut{}, NewContext(o, 1))
	if loo[0] != 0 || loo[1] != 0 {
		t.Errorf("LOO should zero out perfect substitutes: %v", loo)
	}
	// Shapley splits the shared value instead.
	shap := mustValues(t, ExactMC{}, NewContext(o, 1))
	if shap[0] <= 0 || math.Abs(shap[0]-shap[1]) > 1e-12 {
		t.Errorf("Shapley should split substitutes evenly: %v", shap)
	}
}

func TestPermSamplingUnbiasedConvergence(t *testing.T) {
	n := 6
	exact := mustValues(t, ExactMC{}, NewContext(steepMonotoneGame(n, 61), 1))
	phi := mustValues(t, NewPermSampling(64), NewContext(steepMonotoneGame(n, 61), 3))
	if err := metrics.L2RelativeError(phi, exact); err > 0.35 {
		t.Errorf("Perm-MC error %v, want < 0.35", err)
	}
}

func TestPermSamplingBudget(t *testing.T) {
	o := monotoneGame(8, 63)
	ctx := NewContext(o, 5)
	mustValues(t, NewPermSampling(25), ctx)
	// Overshoot bounded by one permutation.
	if got := ctx.Oracle.Evals(); got > 25+8 {
		t.Errorf("evals = %d for budget 25", got)
	}
}

func TestSimpleNames(t *testing.T) {
	if (LeaveOneOut{}).Name() != "Leave-One-Out" {
		t.Errorf("bad LOO name")
	}
	if NewPermSampling(9).Name() != "Perm-MC(γ=9)" {
		t.Errorf("bad Perm-MC name")
	}
}
