package shapley

import (
	"math"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/metrics"
	"fedshap/internal/utility"
)

func TestKGreedyFullKIsExact(t *testing.T) {
	for n := 2; n <= 6; n++ {
		o := monotoneGame(n, int64(n*3+1))
		exact := mustValues(t, ExactMC{}, NewContext(o, 1))
		phi := mustValues(t, &KGreedy{K: n}, NewContext(o, 1))
		for i := range exact {
			if math.Abs(phi[i]-exact[i]) > 1e-9 {
				t.Errorf("n=%d client %d: K=n value %v != exact %v", n, i, phi[i], exact[i])
			}
		}
	}
}

// The key-combinations phenomenon (Fig. 4): on monotone games with
// diminishing returns, the K-Greedy error decreases rapidly in K.
func TestKGreedyErrorDecreasesInK(t *testing.T) {
	n := 8
	o := monotoneGame(n, 17)
	exact := mustValues(t, ExactMC{}, NewContext(o, 1))
	prevErr := math.Inf(1)
	for k := 1; k <= n; k++ {
		phi := mustValues(t, &KGreedy{K: k}, NewContext(o, 1))
		err := metrics.L2RelativeError(phi, exact)
		if err > prevErr+1e-9 {
			t.Errorf("K=%d error %v exceeds K=%d error %v", k, err, k-1, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-9 {
		t.Errorf("K=n error should be ~0, got %v", prevErr)
	}
}

func TestKGreedyClamps(t *testing.T) {
	o := monotoneGame(3, 1)
	// K out of range gets clamped rather than panicking.
	if _, err := (&KGreedy{K: 0}).Values(NewContext(o, 1)); err != nil {
		t.Errorf("K=0: %v", err)
	}
	if _, err := (&KGreedy{K: 99}).Values(NewContext(o, 1)); err != nil {
		t.Errorf("K=99: %v", err)
	}
}

// TestExample3IPSS reproduces the structure of the paper's Example 3:
// n = 4, γ = 10 → k* = 1, all combinations of size ≤ 1 evaluated, and 5
// balanced combinations of size 2 sampled.
func TestExample3IPSS(t *testing.T) {
	n := 4
	o := monotoneGame(n, 23)
	alg := NewIPSS(10)
	if got := alg.KStar(n); got != 1 {
		t.Fatalf("k* = %d, want 1", got)
	}
	ctx := NewContext(o, 3)
	phi := mustValues(t, alg, ctx)
	// Budget respected: exactly 5 (sizes ≤ 1) + 5 (size 2) = 10 evals.
	if got := ctx.Oracle.Evals(); got != 10 {
		t.Errorf("evaluations = %d, want 10", got)
	}
	// All evaluated coalitions have size ≤ k*+1 = 2 (the concrete oracle
	// behind the Source exposes its cache for inspection).
	for s := range o.Snapshot() {
		if s.Size() > 2 {
			t.Errorf("IPSS evaluated pruned coalition %v", s)
		}
	}
	// Values are sane: positive for this monotone game.
	for i, v := range phi {
		if v <= 0 {
			t.Errorf("client %d value %v, want > 0", i, v)
		}
	}
}

// With the budget covering all 2^n combinations, IPSS is exact.
func TestIPSSFullBudgetIsExact(t *testing.T) {
	for n := 2; n <= 6; n++ {
		o := monotoneGame(n, int64(n*5+2))
		exact := mustValues(t, ExactMC{}, NewContext(o, 1))
		phi := mustValues(t, NewIPSS(1<<uint(n)), NewContext(o, 9))
		for i := range exact {
			if math.Abs(phi[i]-exact[i]) > 1e-9 {
				t.Errorf("n=%d client %d: %v != exact %v", n, i, phi[i], exact[i])
			}
		}
	}
}

// IPSS respects its budget for every (n, γ).
func TestIPSSBudget(t *testing.T) {
	for n := 3; n <= 10; n++ {
		for _, gamma := range []int{n + 1, 2 * n, 4 * n} {
			o := monotoneGame(n, int64(n*100+gamma))
			ctx := NewContext(o, int64(gamma))
			mustValues(t, NewIPSS(gamma), ctx)
			if got := ctx.Oracle.Evals(); got > gamma {
				t.Errorf("n=%d γ=%d: used %d evaluations", n, gamma, got)
			}
		}
	}
}

// On FL-like monotone games IPSS achieves low error with tiny budgets —
// the headline claim.
func TestIPSSAccurateAtSmallBudget(t *testing.T) {
	n := 10
	o := steepMonotoneGame(n, 31)
	exact := mustValues(t, ExactMC{}, NewContext(o, 1))
	phi := mustValues(t, NewIPSS(32), NewContext(o, 5)) // Table III: n=10 → γ=32
	err := metrics.L2RelativeError(phi, exact)
	if err > 0.15 {
		t.Errorf("IPSS(γ=32) error %v, want < 0.15", err)
	}
}

// IPSS beats the plain stratified framework at equal budget on monotone
// games — the point of importance pruning.
func TestIPSSBeatsStratifiedAtEqualBudget(t *testing.T) {
	n := 10
	gamma := 32
	o := monotoneGame(n, 37)
	exact := mustValues(t, ExactMC{}, NewContext(o, 1))

	avgErr := func(mk func(int) Valuer) float64 {
		var sum float64
		const reps = 15
		for r := 0; r < reps; r++ {
			phi := mustValues(t, mk(r), NewContext(o, int64(r*13+1)))
			sum += metrics.L2RelativeError(phi, exact)
		}
		return sum / reps
	}
	ipssErr := avgErr(func(r int) Valuer { return NewIPSS(gamma) })
	stratErr := avgErr(func(r int) Valuer { return NewStratified(MC, gamma) })
	if ipssErr >= stratErr {
		t.Errorf("IPSS err %v not better than stratified %v at γ=%d", ipssErr, stratErr, gamma)
	}
}

func TestIPSSDegenerateBudgets(t *testing.T) {
	o := monotoneGame(4, 41)
	// γ = 1: only the empty set fits (k* = 0); values come out zero-ish
	// but the call must not panic.
	phi := mustValues(t, NewIPSS(1), NewContext(o, 1))
	if len(phi) != 4 {
		t.Fatalf("len = %d", len(phi))
	}
	// γ = 0 behaves like γ = 1.
	phi0 := mustValues(t, NewIPSS(0), NewContext(o, 1))
	if len(phi0) != 4 {
		t.Fatalf("len = %d", len(phi0))
	}
}

func TestIPSSSingleClient(t *testing.T) {
	o := utility.TableOracle(1, map[combin.Coalition]float64{
		combin.Empty:           0.1,
		combin.NewCoalition(0): 0.8,
	})
	phi := mustValues(t, NewIPSS(2), NewContext(o, 1))
	if math.Abs(phi[0]-0.7) > 1e-12 {
		t.Errorf("single client value %v, want 0.7", phi[0])
	}
}

// The rescaled ablation variant is also exact at full budget and runs
// within budget.
func TestIPSSRescaledVariant(t *testing.T) {
	n := 6
	o := monotoneGame(n, 43)
	exact := mustValues(t, ExactMC{}, NewContext(o, 1))
	alg := &IPSS{Gamma: 1 << uint(n), RescaleSampledStratum: true}
	phi := mustValues(t, alg, NewContext(o, 1))
	for i := range exact {
		if math.Abs(phi[i]-exact[i]) > 1e-9 {
			t.Errorf("rescaled full budget client %d: %v != %v", i, phi[i], exact[i])
		}
	}
	// Budget check needs a fresh oracle: the full-budget run above already
	// populated this one.
	fresh := monotoneGame(n, 43)
	ctx := NewContext(fresh, 2)
	mustValues(t, &IPSS{Gamma: 20, RescaleSampledStratum: true}, ctx)
	if got := ctx.Oracle.Evals(); got > 20 {
		t.Errorf("rescaled variant exceeded budget: %d", got)
	}
}

func TestIPSSNames(t *testing.T) {
	if got := NewIPSS(32).Name(); got != "IPSS(γ=32)" {
		t.Errorf("Name = %q", got)
	}
	if got := (&IPSS{Gamma: 8, RescaleSampledStratum: true}).Name(); got != "IPSS-rescaled(γ=8)" {
		t.Errorf("Name = %q", got)
	}
	if got := (&IPSS{Gamma: 8, UnbalancedP: true}).Name(); got != "IPSS-unbalanced(γ=8)" {
		t.Errorf("Name = %q", got)
	}
}
