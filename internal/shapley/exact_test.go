package shapley

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// tableI is the paper's Table I: a three-client FL game whose exact Shapley
// values the paper works out in Example 1 as φ ≈ (0.22, 0.32, 0.32).
func tableI() *utility.Oracle {
	u := map[combin.Coalition]float64{
		combin.Empty:              0.10,
		combin.NewCoalition(0):    0.50,
		combin.NewCoalition(1):    0.70,
		combin.NewCoalition(2):    0.60,
		combin.NewCoalition(0, 1): 0.80,
		combin.NewCoalition(0, 2): 0.90,
		combin.NewCoalition(1, 2): 0.90,
		combin.FullCoalition(3):   0.96,
	}
	return utility.TableOracle(3, u)
}

// randomGame builds a utility table over n players with uniform utilities.
func randomGame(n int, seed int64) *utility.Oracle {
	rng := rand.New(rand.NewSource(seed))
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) {
		table[s] = rng.Float64()
	})
	return utility.TableOracle(n, table)
}

// monotoneGame builds a utility table with diminishing returns in coalition
// size, mimicking FL model accuracy.
func monotoneGame(n int, seed int64) *utility.Oracle {
	return monotoneGameRate(n, seed, 0.8)
}

// steepMonotoneGame saturates quickly — the regime the paper's key-
// combinations phenomenon describes, where one or two clients' data already
// bring the model near its ceiling.
func steepMonotoneGame(n int, seed int64) *utility.Oracle {
	return monotoneGameRate(n, seed, 2.2)
}

func monotoneGameRate(n int, seed int64, rate float64) *utility.Oracle {
	rng := rand.New(rand.NewSource(seed))
	quality := make([]float64, n)
	for i := range quality {
		quality[i] = 0.5 + rng.Float64()
	}
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) {
		var mass float64
		for _, i := range s.Members() {
			mass += quality[i]
		}
		table[s] = 0.1 + 0.88*(1-math.Exp(-rate*mass))
	})
	return utility.TableOracle(n, table)
}

func mustValues(t *testing.T, v Valuer, ctx *Context) Values {
	t.Helper()
	out, err := v.Values(ctx)
	if err != nil {
		t.Fatalf("%s: %v", v.Name(), err)
	}
	return out
}

// TestExample1 reproduces the paper's Example 1 line by line.
func TestExample1(t *testing.T) {
	ctx := NewContext(tableI(), 1)
	phi := mustValues(t, ExactMC{}, ctx)
	// φ1 = (0.40/1 + (0.10+0.30)/2 + 0.06/1)/3 = 0.22 exactly.
	if math.Abs(phi[0]-0.22) > 1e-12 {
		t.Errorf("φ1 = %v, want 0.22", phi[0])
	}
	// Paper rounds φ2 ≈ 0.32, φ3 = 0.32; exact values:
	// φ2 = (0.60/1 + (0.30+0.30)/2 + 0.06/1)/3 = 0.32
	if math.Abs(phi[1]-0.32) > 1e-9 {
		t.Errorf("φ2 = %v, want 0.32", phi[1])
	}
	if math.Abs(phi[2]-0.32) > 1e-9 {
		t.Errorf("φ3 = %v, want 0.32", phi[2])
	}
	// Efficiency: Σφ = U(N) − U(∅) = 0.86.
	if math.Abs(phi.Sum()-0.86) > 1e-12 {
		t.Errorf("Σφ = %v, want 0.86", phi.Sum())
	}
}

// The three exact schemes agree on arbitrary games — the equivalence of
// Defs. 3-4 and the permutation formulation.
func TestExactSchemesAgree(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 2 // 2..6
		o := randomGame(n, seed)
		ctx := NewContext(o, seed)
		mc := mustValuesQuick(ExactMC{}, ctx)
		cc := mustValuesQuick(ExactCC{}, ctx)
		perm := mustValuesQuick(ExactPerm{}, ctx)
		for i := 0; i < n; i++ {
			if math.Abs(mc[i]-cc[i]) > 1e-9 || math.Abs(mc[i]-perm[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func mustValuesQuick(v Valuer, ctx *Context) Values {
	out, err := v.Values(ctx)
	if err != nil {
		panic(err)
	}
	return out
}

// Efficiency axiom: Σφᵢ = U(N) − U(∅) for any game.
func TestEfficiencyAxiom(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		o := randomGame(n, seed)
		ctx := NewContext(o, seed)
		phi := mustValuesQuick(ExactMC{}, ctx)
		want := o.U(combin.FullCoalition(n)) - o.U(combin.Empty)
		return math.Abs(phi.Sum()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Null player axiom: a player that never changes utility gets value zero.
func TestNullPlayerAxiom(t *testing.T) {
	n := 4
	null := 2
	rng := rand.New(rand.NewSource(5))
	table := make(map[combin.Coalition]float64)
	// Assign utilities to all null-free subsets, then copy to supersets
	// including the null player.
	combin.AllSubsets(n, func(s combin.Coalition) {
		if !s.Has(null) {
			table[s] = rng.Float64()
		}
	})
	combin.AllSubsets(n, func(s combin.Coalition) {
		if s.Has(null) {
			table[s] = table[s.Without(null)]
		}
	})
	ctx := NewContext(utility.TableOracle(n, table), 1)
	for _, alg := range []Valuer{ExactMC{}, ExactCC{}, ExactPerm{}} {
		phi := mustValues(t, alg, ctx)
		if math.Abs(phi[null]) > 1e-12 {
			t.Errorf("%s: null player value %v, want 0", alg.Name(), phi[null])
		}
	}
}

// Symmetry axiom: two interchangeable players receive equal values.
func TestSymmetryAxiom(t *testing.T) {
	n := 4
	a, b := 1, 3
	rng := rand.New(rand.NewSource(6))
	table := make(map[combin.Coalition]float64)
	// Utility depends only on (size, whether a present, whether b present)
	// symmetrically: use count of {a,b} members plus identity of others.
	combin.AllSubsets(n, func(s combin.Coalition) {
		key := s.Without(a).Without(b)
		cnt := 0
		if s.Has(a) {
			cnt++
		}
		if s.Has(b) {
			cnt++
		}
		canonical := key
		if cnt >= 1 {
			canonical = canonical.With(a)
		}
		if cnt == 2 {
			canonical = canonical.With(b)
		}
		if v, ok := table[canonical]; ok {
			table[s] = v
			return
		}
		v := rng.Float64()
		table[canonical] = v
		table[s] = v
	})
	ctx := NewContext(utility.TableOracle(n, table), 1)
	phi := mustValues(t, ExactMC{}, ctx)
	if math.Abs(phi[a]-phi[b]) > 1e-12 {
		t.Errorf("symmetric players differ: %v vs %v", phi[a], phi[b])
	}
}

func TestExactPermSmallestCases(t *testing.T) {
	// n=1: the single player gets U({0}) − U(∅).
	o := utility.TableOracle(1, map[combin.Coalition]float64{
		combin.Empty:           0.2,
		combin.NewCoalition(0): 0.9,
	})
	ctx := NewContext(o, 1)
	phi := mustValues(t, ExactPerm{}, ctx)
	if math.Abs(phi[0]-0.7) > 1e-12 {
		t.Errorf("n=1 value = %v, want 0.7", phi[0])
	}
}
