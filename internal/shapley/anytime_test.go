package shapley

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// additiveGame builds the utility table of an additive game U(S) = Σ_{i∈S} w_i.
// Marginal contributions are the constants w_i, so exact Shapley values equal
// the weights and every stratum mean is w_i — the cleanest possible probe of
// the tracker's estimator and of ranking resolution.
func additiveGame(n int, w []float64) *utility.Oracle {
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) {
		var u float64
		for _, i := range s.Members() {
			u += w[i]
		}
		table[s] = u
	})
	return utility.TableOracle(n, table)
}

func exactRanking(v Values) []int {
	order := make([]int, len(v))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return v[order[a]] > v[order[b]] })
	return order
}

func rankingsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTrackerWelford checks the running mean/variance fold against a direct
// computation, and the estimator's (1/n)·Σ stratum-means shape.
func TestTrackerWelford(t *testing.T) {
	tr := NewTracker(4, 0.9)
	obs := []float64{0.3, -0.1, 0.7, 0.2, 0.4}
	for _, d := range obs {
		tr.Observe(1, 2, d)
	}
	mean := 0.0
	for _, d := range obs {
		mean += d
	}
	mean /= float64(len(obs))
	est := tr.Estimate()
	if got, want := est[1], mean/4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("estimate = %v, want %v", got, want)
	}
	if tr.Observations(1) != len(obs) {
		t.Fatalf("observations = %d, want %d", tr.Observations(1), len(obs))
	}
	for i := 0; i < 4; i++ {
		if i != 1 && tr.Estimate()[i] != 0 {
			t.Fatalf("client %d estimate should be 0", i)
		}
	}
	// Out-of-range observations are dropped, not panics.
	tr.Observe(-1, 0, 1)
	tr.Observe(0, 99, 1)
	if tr.Observations(0) != 0 {
		t.Fatal("out-of-range observe must be ignored")
	}
}

// TestReplayFullEnumeration feeds a complete 2^n enumeration through the
// replay and checks the anytime estimate lands exactly on the exact MC-SV
// values with zero-width intervals and a fully resolved ranking.
func TestReplayFullEnumeration(t *testing.T) {
	const n = 6
	o := randomGame(n, 11)
	exact := mustValues(t, ExactMC{}, NewContext(o, 1))

	plan := ExactMC{}.PrefetchPlan(n)
	rep := NewReplay(n, 0.95, plan)
	for _, s := range plan {
		rep.Add(s, o.U(s))
	}
	snap := rep.Snapshot()
	if snap.Seen != len(plan) || snap.Planned != len(plan) {
		t.Fatalf("seen %d planned %d, want both %d", snap.Seen, snap.Planned, len(plan))
	}
	for i := 0; i < n; i++ {
		if math.Abs(snap.Values[i]-exact[i]) > 1e-9 {
			t.Fatalf("client %d: anytime %v != exact %v", i, snap.Values[i], exact[i])
		}
		if snap.Lo[i] != snap.Values[i] || snap.Hi[i] != snap.Values[i] {
			t.Fatalf("client %d: interval [%v, %v] not collapsed on %v",
				i, snap.Lo[i], snap.Hi[i], snap.Values[i])
		}
		if snap.Observations[i] != 1<<(n-1) {
			t.Fatalf("client %d: %d observations, want %d", i, snap.Observations[i], 1<<(n-1))
		}
	}
	if !snap.Resolved {
		t.Fatal("fully enumerated game must be resolved")
	}
}

// TestReplayIdempotent re-adds coalitions and checks no observation is
// double counted.
func TestReplayIdempotent(t *testing.T) {
	const n = 4
	o := randomGame(n, 3)
	plan := ExactMC{}.PrefetchPlan(n)
	rep := NewReplay(n, 0.9, plan)
	for _, s := range plan {
		rep.Add(s, o.U(s))
		rep.Add(s, o.U(s)) // duplicate: must be a no-op
	}
	snap := rep.Snapshot()
	for i := 0; i < n; i++ {
		if snap.Observations[i] != 1<<(n-1) {
			t.Fatalf("client %d: %d observations after duplicates, want %d",
				i, snap.Observations[i], 1<<(n-1))
		}
	}
}

// TestTrackerPrunedStrata builds a plan covering only strata {0, 1} of a
// 3-client game. Cells outside the plan are deliberately pruned: they must
// contribute neither estimate mass nor interval width, so after the plan is
// exhausted the interval collapses onto the truncated estimand.
func TestTrackerPrunedStrata(t *testing.T) {
	const n = 3
	o := randomGame(n, 7)
	plan := []combin.Coalition{combin.Empty}
	combin.SubsetsOfSize(n, 1, func(s combin.Coalition) { plan = append(plan, s) })

	rep := NewReplay(n, 0.9, plan)
	for _, s := range plan {
		rep.Add(s, o.U(s))
	}
	snap := rep.Snapshot()
	for i := 0; i < n; i++ {
		want := (o.U(combin.NewCoalition(i)) - o.U(combin.Empty)) / float64(n)
		if math.Abs(snap.Values[i]-want) > 1e-12 {
			t.Fatalf("client %d: truncated estimate %v, want %v", i, snap.Values[i], want)
		}
		if snap.Lo[i] != snap.Values[i] || snap.Hi[i] != snap.Values[i] {
			t.Fatalf("client %d: pruned-plan interval should collapse, got [%v, %v]",
				i, snap.Lo[i], snap.Hi[i])
		}
	}
}

// TestSetMarginalBounds checks tighter marginal bounds shrink the interval.
func TestSetMarginalBounds(t *testing.T) {
	wide := NewTracker(3, 0.9)
	tight := NewTracker(3, 0.9)
	tight.SetMarginalBounds(-0.1, 0.1)
	for j := 0; j < 5; j++ {
		d := 0.01 * float64(j)
		wide.Observe(0, 1, d)
		tight.Observe(0, 1, d)
	}
	wl, wh := wide.Interval(0)
	tl, th := tight.Interval(0)
	if th-tl >= wh-wl {
		t.Fatalf("tight bounds gave width %v, wide %v", th-tl, wh-wl)
	}
	// Degenerate bounds are rejected.
	bad := NewTracker(3, 0.9)
	bad.SetMarginalBounds(1, -1)
	bad.Observe(0, 1, 0.5)
	bl, bh := bad.Interval(0)
	if bh-bl != wh-wl {
		// The rejected call must leave the default [-1, 1] in place; widths
		// differ only through the observation stream, which matches neither
		// tracker here — so just check the default range survived.
		if bad.lo != -1 || bad.hi != 1 {
			t.Fatalf("degenerate SetMarginalBounds must be ignored, got [%v, %v]", bad.lo, bad.hi)
		}
	}
}

// TestPlanExhaustive pins which algorithms expose their complete evaluation
// set — the precondition for plan-driven anytime execution and early stop.
func TestPlanExhaustive(t *testing.T) {
	cases := []struct {
		alg  Valuer
		want bool
	}{
		{ExactMC{}, true},
		{ExactCC{}, true},
		{ExactPerm{}, true},
		{ExactBanzhaf{}, true},
		{LeaveOneOut{}, true},
		{NewIPSS(64), true},
		{&KGreedy{K: 2}, true},
		{&Stratified{TotalRounds: 32}, true},
		{&CCShapley{Gamma: 32}, true},
		{&GTB{Gamma: 32}, true},
		{&MCBanzhaf{Gamma: 32}, true},
		{&PermSampling{Gamma: 32}, true},
		{&TMC{Gamma: 32}, false},              // truncation reads utilities
		{&StratifiedNeyman{Gamma: 32}, false}, // allocation reads variances
	}
	for _, tc := range cases {
		if got := PlanExhaustive(tc.alg); got != tc.want {
			t.Errorf("PlanExhaustive(%s) = %v, want %v", tc.alg.Name(), got, tc.want)
		}
	}
}

// TestAnytimeCoverage is the statistical heart of this harness: across 200
// seeded replications of a random 5-client game, stream a shuffled full
// enumeration through the replay and check the simultaneous intervals cover
// the exact Shapley values at every checkpoint. The anytime construction
// targets ≥ nominal coverage of the whole trajectory; the empirical failure
// rate across replications must not exceed the nominal 1 − confidence.
func TestAnytimeCoverage(t *testing.T) {
	const (
		n          = 5
		reps       = 200
		confidence = 0.9
	)
	plan := ExactMC{}.PrefetchPlan(n)
	failures := 0
	for rep := 0; rep < reps; rep++ {
		seed := int64(1000 + rep)
		o := randomGame(n, seed)
		exact := mustValues(t, ExactMC{}, NewContext(o, 1))

		order := make([]combin.Coalition, len(plan))
		copy(order, plan)
		rng := rand.New(rand.NewSource(seed * 31))
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })

		rp := NewReplay(n, confidence, plan)
		covered := true
		for _, s := range order {
			rp.Add(s, o.U(s))
			snap := rp.Snapshot()
			for i := 0; i < n && covered; i++ {
				if exact[i] < snap.Lo[i]-1e-12 || exact[i] > snap.Hi[i]+1e-12 {
					covered = false
				}
			}
			if !covered {
				break
			}
		}
		if !covered {
			failures++
		}
	}
	maxFailures := int(float64(reps) * (1 - confidence))
	if failures > maxFailures {
		t.Fatalf("coverage failures %d/%d exceed nominal allowance %d",
			failures, reps, maxFailures)
	}
	t.Logf("anytime coverage: %d/%d replications fully covered (allowance %d misses)",
		reps-failures, reps, maxFailures)
}

// TestEarlyStopSoundness replays the IPSS plan of an additive game for 200
// seeds and, at every checkpoint where the ranking-resolution criterion
// fires, compares the anytime ranking against the exact one. The criterion
// must never certify a wrong ranking, and must fire strictly before plan
// exhaustion often enough to be worth having.
func TestEarlyStopSoundness(t *testing.T) {
	// n=11, γ=500 puts IPSS at k*=3 with a 268-of-330 balanced sample of
	// stratum 4, so the per-cell populations are large enough for the
	// without-replacement factor to resolve rankings before the plan runs
	// dry — the same regime the valserve e2e early-stop test exercises.
	const (
		n          = 11
		gamma      = 500
		confidence = 0.6
		seeds      = 200
	)
	earlyStops := 0
	for rep := 0; rep < seeds; rep++ {
		seed := int64(5000 + rep)
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, n)
		for i := range w {
			w[i] = -0.45 + 0.9*float64(i)/float64(n-1) + 0.02*rng.Float64()
		}
		o := additiveGame(n, w)
		exact := mustValues(t, ExactMC{}, NewContext(o, 1))
		wantRank := exactRanking(exact)

		plan := NewIPSS(gamma).SamplePlan(n, seed)
		rp := NewReplay(n, confidence, plan)
		rp.Tracker().SetMarginalBounds(-0.5, 0.5)
		stoppedAt := -1
		for pos, s := range plan {
			rp.Add(s, o.U(s))
			if rp.Tracker().Resolved() {
				stoppedAt = pos + 1
				break
			}
		}
		if stoppedAt < 0 {
			// The plan ran dry without resolving — allowed (no certificate,
			// no claim), but it must not be the common case.
			continue
		}
		gotRank := exactRanking(rp.Tracker().Estimate())
		if !rankingsEqual(gotRank, wantRank) {
			t.Fatalf("seed %d: resolved at %d/%d with wrong ranking %v (want %v)",
				seed, stoppedAt, len(plan), gotRank, wantRank)
		}
		if stoppedAt < len(plan) {
			earlyStops++
		}
	}
	if earlyStops < seeds/2 {
		t.Fatalf("only %d/%d seeds stopped before plan exhaustion — criterion too weak to matter", earlyStops, seeds)
	}
	t.Logf("early-stop soundness: %d/%d seeds certified strictly early, 0 ranking violations", earlyStops, seeds)
}

// TestResolvedTiesAtExhaustion: a game with two identical clients can never
// separate their intervals, but once every cell is exhausted both intervals
// collapse to the same point and the tie counts as decided.
func TestResolvedTiesAtExhaustion(t *testing.T) {
	const n = 4
	w := []float64{0.3, 0.3, 0.1, 0.5}
	o := additiveGame(n, w)
	plan := ExactMC{}.PrefetchPlan(n)
	rp := NewReplay(n, 0.9, plan)
	for _, s := range plan {
		rp.Add(s, o.U(s))
	}
	if !rp.Tracker().Resolved() {
		t.Fatal("exhausted enumeration with a tie must still resolve")
	}
	est := rp.Tracker().Estimate()
	if math.Abs(est[0]-est[1]) > 1e-12 {
		t.Fatalf("identical clients diverged: %v vs %v", est[0], est[1])
	}
}
