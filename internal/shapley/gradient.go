package shapley

import (
	"fmt"

	"fedshap/internal/combin"
	"fedshap/internal/fl"
	"fedshap/internal/model"
	"fedshap/internal/utility"
)

// Shared plumbing for the gradient-based baselines (OR, λ-MR, GTG-Shapley
// and the parametric path of DIG-FL): train the federation once recording
// per-round client updates, then value clients by evaluating models
// *reconstructed* from those updates instead of retraining per coalition.

// trainTrace runs the single traced all-client training. It returns
// ErrNotApplicable for Fitter (tree) models, which produce no usable trace —
// the "\" cells of Table V.
func trainTrace(spec *utility.FLSpec) (model.Model, *fl.Trace, error) {
	if spec == nil {
		return nil, nil, ErrNeedsSpec
	}
	if _, ok := spec.Factory(spec.Config.Seed).(model.Parametric); !ok {
		return nil, nil, ErrNotApplicable
	}
	m, trace := fl.TrainWithTrace(spec.Factory, spec.Clients, spec.Config)
	return m, trace, nil
}

// reconEvalFull evaluates the utility of the full-trajectory reconstruction
// of coalition s (Song et al.'s construction).
func reconEvalFull(spec *utility.FLSpec, trace *fl.Trace, s combin.Coalition) float64 {
	m := fl.ReconstructFull(spec.Factory, trace, s, spec.Config.Seed)
	return spec.Metric(m, spec.Test)
}

// reconEvalRound evaluates the utility of the round-r reconstruction of
// coalition s.
func reconEvalRound(spec *utility.FLSpec, trace *fl.Trace, r int, s combin.Coalition) float64 {
	m := fl.ReconstructRound(spec.Factory, trace, r, s, spec.Config.Seed)
	return spec.Metric(m, spec.Test)
}

// OR is Song et al.'s gradient-based baseline: it reconstructs M_S for
// every coalition S from the recorded updates (no extra training) and then
// computes the exact MC-SV over the reconstructed utilities. Fast — only
// 2ⁿ model *evaluations* — but with no approximation-error guarantee, since
// reconstructed models differ from actually-trained ones.
type OR struct{}

// Name implements Valuer.
func (OR) Name() string { return "OR" }

// Values implements Valuer.
func (OR) Values(ctx *Context) (Values, error) {
	spec := ctx.Spec
	_, trace, err := trainTrace(spec)
	if err != nil {
		return nil, err
	}
	n := len(spec.Clients)
	u := make([]float64, 1<<uint(n))
	combin.AllSubsets(n, func(s combin.Coalition) {
		u[s.Index()] = reconEvalFull(spec, trace, s)
	})
	phi := make(Values, n)
	combin.AllSubsets(n, func(s combin.Coalition) {
		size := s.Size()
		for i := 0; i < n; i++ {
			if s.Has(i) {
				continue
			}
			phi[i] += mcWeight(n, size) * (u[s.With(i).Index()] - u[s.Index()])
		}
	})
	return phi, nil
}

// LambdaMR is Wei et al.'s multi-round gradient baseline (λ-MR): in every
// training round it computes a full MC-SV over single-round reconstructions
// and aggregates the per-round values with exponential decay λ (λ = 1
// recovers the uniform average). Cost grows as rounds × 2ⁿ evaluations —
// the exponential blow-up the paper observes at n = 10.
type LambdaMR struct {
	// Lambda is the decay factor in (0, 1]; rounds nearer the end weigh
	// λ^(T−1−r). Zero means 1 (uniform).
	Lambda float64
}

// Name implements Valuer.
func (a *LambdaMR) Name() string { return "λ-MR" }

// Values implements Valuer.
func (a *LambdaMR) Values(ctx *Context) (Values, error) {
	spec := ctx.Spec
	_, trace, err := trainTrace(spec)
	if err != nil {
		return nil, err
	}
	lambda := a.Lambda
	if lambda <= 0 || lambda > 1 {
		lambda = 1
	}
	n := len(spec.Clients)
	phi := make(Values, n)
	var wsum float64
	u := make([]float64, 1<<uint(n))
	for r := range trace.Rounds {
		combin.AllSubsets(n, func(s combin.Coalition) {
			u[s.Index()] = reconEvalRound(spec, trace, r, s)
		})
		roundPhi := make(Values, n)
		combin.AllSubsets(n, func(s combin.Coalition) {
			size := s.Size()
			for i := 0; i < n; i++ {
				if s.Has(i) {
					continue
				}
				roundPhi[i] += mcWeight(n, size) * (u[s.With(i).Index()] - u[s.Index()])
			}
		})
		w := pow(lambda, len(trace.Rounds)-1-r)
		wsum += w
		for i := range phi {
			phi[i] += w * roundPhi[i]
		}
	}
	if wsum > 0 {
		for i := range phi {
			phi[i] /= wsum
		}
	}
	return phi, nil
}

// PerRoundValues exposes the per-round decomposition λ-MR aggregates: for
// each training round r, the exact MC-SV of the game whose utility is the
// evaluation of the round-r reconstruction. Useful for auditing *when* in
// training each client contributed. Requires a parametric model.
func PerRoundValues(spec *utility.FLSpec) ([]Values, error) {
	_, trace, err := trainTrace(spec)
	if err != nil {
		return nil, err
	}
	n := len(spec.Clients)
	out := make([]Values, 0, len(trace.Rounds))
	u := make([]float64, 1<<uint(n))
	for r := range trace.Rounds {
		combin.AllSubsets(n, func(s combin.Coalition) {
			u[s.Index()] = reconEvalRound(spec, trace, r, s)
		})
		roundPhi := make(Values, n)
		combin.AllSubsets(n, func(s combin.Coalition) {
			size := s.Size()
			for i := 0; i < n; i++ {
				if s.Has(i) {
					continue
				}
				roundPhi[i] += mcWeight(n, size) * (u[s.With(i).Index()] - u[s.Index()])
			}
		})
		out = append(out, roundPhi)
	}
	return out, nil
}

func pow(x float64, k int) float64 {
	r := 1.0
	for ; k > 0; k-- {
		r *= x
	}
	return r
}

// GTGShapley is Liu et al.'s guided-truncation gradient baseline: per
// training round it Monte-Carlo-samples permutations over single-round
// reconstructions, with between-round truncation (rounds that barely move
// the utility are skipped entirely) and within-permutation truncation (a
// permutation walk stops once the running utility reaches the round's full
// utility). Per-round values are summed over rounds.
type GTGShapley struct {
	// PermsPerRound is the number of sampled permutations per round
	// (default max(8, 2n)).
	PermsPerRound int
	// BetweenTol is the between-round truncation threshold (default 0.01).
	BetweenTol float64
	// WithinTol is the within-permutation truncation threshold
	// (default 0.005).
	WithinTol float64
}

// Name implements Valuer.
func (a *GTGShapley) Name() string { return "GTG-Shapley" }

// Values implements Valuer.
func (a *GTGShapley) Values(ctx *Context) (Values, error) {
	spec := ctx.Spec
	_, trace, err := trainTrace(spec)
	if err != nil {
		return nil, err
	}
	n := len(spec.Clients)
	perms := a.PermsPerRound
	if perms <= 0 {
		perms = 2 * n
		if perms < 8 {
			perms = 8
		}
	}
	betweenTol := a.BetweenTol
	if betweenTol <= 0 {
		betweenTol = 0.01
	}
	withinTol := a.WithinTol
	if withinTol <= 0 {
		withinTol = 0.005
	}
	fullC := combin.FullCoalition(n)

	phi := make(Values, n)
	prevRoundU := spec.Metric(initModel(spec), spec.Test)
	for r := range trace.Rounds {
		uFull := reconEvalRound(spec, trace, r, fullC)
		if abs(uFull-prevRoundU) < betweenTol {
			// Between-round truncation: this round changed little; its
			// per-round SV is taken as zero.
			prevRoundU = uFull
			continue
		}
		uEmpty := reconEvalRound(spec, trace, r, combin.Empty)
		cache := map[combin.Coalition]float64{combin.Empty: uEmpty, fullC: uFull}
		evalRound := func(s combin.Coalition) float64 {
			if v, ok := cache[s]; ok {
				return v
			}
			v := reconEvalRound(spec, trace, r, s)
			cache[s] = v
			return v
		}
		roundPhi := make(Values, n)
		for p := 0; p < perms; p++ {
			perm := combin.RandomPermutation(n, ctx.RNG)
			var s combin.Coalition
			prev := uEmpty
			for _, i := range perm {
				s = s.With(i)
				if abs(uFull-prev) < withinTol {
					break // within-permutation truncation
				}
				cur := evalRound(s)
				roundPhi[i] += cur - prev
				prev = cur
			}
		}
		for i := range phi {
			phi[i] += roundPhi[i] / float64(perms)
		}
		prevRoundU = uFull
	}
	return phi, nil
}

func initModel(spec *utility.FLSpec) model.Model {
	return spec.Factory(spec.Config.Seed)
}

// DIGFL is Wang et al.'s efficient contribution-evaluation baseline
// (ICDE 2022): it needs only O(n) utility evaluations. For parametric
// models it accumulates per-round leave-one-out differences over
// reconstructions, U(M_r) − U(M_r^{−i}); for tree models — where no trace
// exists — it falls back to leave-one-out retraining, U(N) − U(N\{i}),
// still O(n) coalition evaluations (Table V shows DIG-FL *is* applicable to
// XGB).
type DIGFL struct{}

// Name implements Valuer.
func (DIGFL) Name() string { return "DIG-FL" }

// Values implements Valuer.
func (a DIGFL) Values(ctx *Context) (Values, error) {
	spec := ctx.Spec
	if spec == nil {
		return nil, ErrNeedsSpec
	}
	n := len(spec.Clients)
	if _, ok := spec.Factory(spec.Config.Seed).(model.Parametric); !ok {
		return a.leaveOneOut(ctx, n)
	}
	_, trace, err := trainTrace(spec)
	if err != nil {
		return nil, err
	}
	full := combin.FullCoalition(n)
	phi := make(Values, n)
	for r := range trace.Rounds {
		uAll := reconEvalRound(spec, trace, r, full)
		for i := 0; i < n; i++ {
			uWithout := reconEvalRound(spec, trace, r, full.Without(i))
			phi[i] += uAll - uWithout
		}
	}
	return phi, nil
}

// leaveOneOut is the retraining fallback for non-parametric models.
func (DIGFL) leaveOneOut(ctx *Context, n int) (Values, error) {
	o := ctx.Oracle
	if o == nil {
		return nil, fmt.Errorf("shapley: DIG-FL fallback requires an oracle")
	}
	full := combin.FullCoalition(n)
	uAll := o.U(full)
	phi := make(Values, n)
	for i := 0; i < n; i++ {
		phi[i] = uAll - o.U(full.Without(i))
	}
	return phi, nil
}
