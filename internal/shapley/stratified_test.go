package shapley

import (
	"math"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/metrics"
)

// With the budget covering every combination, the stratified framework
// recovers the exact Shapley value under both schemes.
func TestStratifiedFullBudgetIsExact(t *testing.T) {
	for _, scheme := range []Scheme{MC, CC} {
		for n := 2; n <= 6; n++ {
			o := monotoneGame(n, int64(n))
			ctx := NewContext(o, 42)
			exact := mustValues(t, ExactMC{}, NewContext(o, 1))
			// Rounds per stratum = full stratum size.
			rounds := make([]int, n)
			for k := 1; k <= n; k++ {
				rounds[k-1] = int(combin.BinomialInt(n, k))
			}
			alg := &Stratified{Scheme: scheme, RoundsPerStratum: rounds}
			phi := mustValues(t, alg, ctx)
			for i := range exact {
				if math.Abs(phi[i]-exact[i]) > 1e-9 {
					t.Errorf("%v n=%d: client %d got %v, want %v", scheme, n, i, phi[i], exact[i])
				}
			}
		}
	}
}

// Partial budgets give approximations that improve with more rounds.
func TestStratifiedConvergesWithBudget(t *testing.T) {
	n := 6
	o := monotoneGame(n, 7)
	exact := mustValues(t, ExactMC{}, NewContext(o, 1))

	avgErr := func(gamma int) float64 {
		var sum float64
		const reps = 20
		for r := 0; r < reps; r++ {
			ctx := NewContext(o, int64(1000+r))
			phi := mustValues(t, NewStratified(MC, gamma), ctx)
			sum += metrics.L2RelativeError(phi, exact)
		}
		return sum / reps
	}
	small := avgErr(8)
	large := avgErr(60)
	if large >= small {
		t.Errorf("error did not shrink with budget: γ=8 → %v, γ=60 → %v", small, large)
	}
}

// The MC scheme pairs S with S\{i}; stratum k=1 must therefore anchor on
// the empty coalition, as in the paper's Example 2 (φ̂₁,₁ = U({1}) − U(∅)).
func TestStratifiedSizeOneUsesEmpty(t *testing.T) {
	o := tableI()
	// Sample only stratum 1 fully: every singleton evaluated.
	alg := &Stratified{Scheme: MC, RoundsPerStratum: []int{3, 0, 0}}
	ctx := NewContext(o, 1)
	phi := mustValues(t, alg, ctx)
	// φ̂ᵢ = (1/n)·(U({i}) − U(∅)): (0.4, 0.6, 0.5)/3.
	want := Values{0.4 / 3, 0.6 / 3, 0.5 / 3}
	for i := range want {
		if math.Abs(phi[i]-want[i]) > 1e-12 {
			t.Errorf("client %d: %v, want %v", i, phi[i], want[i])
		}
	}
}

// CC pairing requires the complement to be sampled; when a stratum's
// complement stratum is not sampled, the stratum contributes zero, exactly
// as the paper's Example 2 Case 2 (φ̂₁,₂ = 0).
func TestStratifiedCCUnpairedStratumIsZero(t *testing.T) {
	o := tableI()
	// Sample stratum 1 (singletons); complements are pairs (stratum 2),
	// which is unsampled, so everything should be zero except stratum
	// pairing within... singleton {i} pairs with N\{i} of size 2: not
	// sampled → all φ zero.
	alg := &Stratified{Scheme: CC, RoundsPerStratum: []int{3, 0, 0}}
	ctx := NewContext(o, 1)
	phi := mustValues(t, alg, ctx)
	for i, v := range phi {
		if v != 0 {
			t.Errorf("client %d: %v, want 0 (no pairs sampled)", i, v)
		}
	}
	// Sampling strata 1 AND 2 fully creates the pairs.
	alg2 := &Stratified{Scheme: CC, RoundsPerStratum: []int{3, 3, 0}}
	phi2 := mustValues(t, alg2, NewContext(o, 1))
	nonzero := false
	for _, v := range phi2 {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Errorf("pairs sampled but all values zero")
	}
}

// Unbiasedness (Theorem 1): the per-stratum estimate φ̂ᵢ,ₖ/mᵢ,ₖ is an
// unbiased estimate of the stratum's true mean marginal contribution,
// conditioned on at least one paired sample — the expectation Theorem 1
// computes. We fix stratum k = 3 over n = 5 clients, fully sample stratum
// k−1 so pairs are always available, partially sample stratum k, and check
// that the across-run average of the stratum estimate matches the true
// stratum mean.
func TestStratifiedUnbiasedness(t *testing.T) {
	n := 5
	k := 3
	client := 0
	o := monotoneGame(n, 11)

	// True stratum mean for the client: average marginal over all S∋i of
	// size k against S\{i}.
	var trueMean float64
	cnt := 0
	combin.SubsetsOfSize(n, k, func(s combin.Coalition) {
		if !s.Has(client) {
			return
		}
		trueMean += o.U(s) - o.U(s.Without(client))
		cnt++
	})
	trueMean /= float64(cnt)

	// The isolated stratum estimate equals n·φ̂ᵢ when only stratum k can
	// form pairs (stratum k−1 fully sampled contributes nothing itself:
	// its own pairs in stratum k−2 are unsampled).
	rounds := make([]int, n)
	rounds[k-2] = int(combin.BinomialInt(n, k-1)) // full stratum k−1
	rounds[k-1] = 3                               // partial stratum k
	const runs = 600
	var sum float64
	used := 0
	for r := 0; r < runs; r++ {
		ctx := NewContext(o, int64(r))
		alg := &Stratified{Scheme: MC, RoundsPerStratum: rounds}
		phi := mustValues(t, alg, ctx)
		est := phi[client] * float64(n) // undo the 1/n averaging
		if est != 0 {
			sum += est
			used++
		}
	}
	if used == 0 {
		t.Fatal("no run produced a paired sample")
	}
	got := sum / float64(used)
	if math.Abs(got-trueMean) > 0.05*math.Abs(trueMean)+1e-3 {
		t.Errorf("conditional stratum mean %v, want %v (over %d runs)", got, trueMean, used)
	}
}

// Theorem 2's empirical shadow: under the same per-stratum budgets, the MC
// scheme shows lower run-to-run variance than CC on monotone FL-like games.
// The budget must be large enough that paired combinations are commonly
// sampled (the ascending branch of the paper's Fig. 10 can invert the
// ordering because sparse pairing degenerates estimates to a constant 0).
func TestMCVarianceBelowCC(t *testing.T) {
	n := 6
	o := monotoneGame(n, 13)
	const runs = 150
	variance := func(scheme Scheme) float64 {
		var all [][]float64
		for r := 0; r < runs; r++ {
			ctx := NewContext(o, int64(r*7+1))
			alg := &Stratified{Scheme: scheme, TotalRounds: 48}
			phi := mustValues(t, alg, ctx)
			all = append(all, phi)
		}
		return metrics.VectorVariance(all)
	}
	vMC := variance(MC)
	vCC := variance(CC)
	if vMC > vCC {
		t.Errorf("Var[MC]=%v exceeds Var[CC]=%v (Theorem 2 predicts otherwise)", vMC, vCC)
	}
}

func TestStratifiedName(t *testing.T) {
	if got := NewStratified(MC, 10).Name(); got != "Stratified(MC-SV)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewStratified(CC, 10).Name(); got != "Stratified(CC-SV)" {
		t.Errorf("Name = %q", got)
	}
}

// ForcePairs removes the pairing-sparsity degeneracy of the MC scheme
// under tight budgets: a sampled S∋i rarely finds S\{i} among the samples,
// so most strata degenerate to zero; forcing the pair evaluation produces
// live estimates with lower error. (Empirically the CC scheme does *not*
// benefit — its complements pair across strata in a way that plain Alg. 1
// already exploits — so the assertion targets MC only.)
func TestStratifiedForcePairsHelpsMC(t *testing.T) {
	n := 6
	exact := mustValues(t, ExactMC{}, NewContext(monotoneGame(n, 81), 1))

	avgErr := func(force bool) float64 {
		var sum float64
		const reps = 25
		for r := 0; r < reps; r++ {
			alg := &Stratified{Scheme: MC, TotalRounds: 10, ForcePairs: force}
			phi := mustValues(t, alg, NewContext(monotoneGame(n, 81), int64(r)))
			sum += metrics.L2RelativeError(phi, exact)
		}
		return sum / reps
	}
	plain := avgErr(false)
	forced := avgErr(true)
	if forced >= plain {
		t.Errorf("ForcePairs did not help MC: plain %v, forced %v", plain, forced)
	}
}

// With forced pairs, the framework stays exact at full budget.
func TestStratifiedForcePairsExactAtFullBudget(t *testing.T) {
	n := 5
	o := monotoneGame(n, 83)
	exact := mustValues(t, ExactMC{}, NewContext(o, 1))
	rounds := make([]int, n)
	for k := 1; k <= n; k++ {
		rounds[k-1] = int(combin.BinomialInt(n, k))
	}
	alg := &Stratified{Scheme: MC, RoundsPerStratum: rounds, ForcePairs: true}
	phi := mustValues(t, alg, NewContext(o, 2))
	for i := range exact {
		if math.Abs(phi[i]-exact[i]) > 1e-9 {
			t.Errorf("client %d: %v != %v", i, phi[i], exact[i])
		}
	}
}
