package shapley

import (
	"errors"
	"math"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/metrics"
	"fedshap/internal/model"
	"fedshap/internal/utility"
)

// flSpec builds a small real federated valuation problem over FEMNIST-like
// writers with an MLP.
func flSpec(n int, seed int64) *utility.FLSpec {
	cfg := dataset.DefaultFEMNISTLike(n, 40, seed)
	cfg.Classes = 4
	clients, test := dataset.FEMNISTLike(cfg)
	return &utility.FLSpec{
		Factory: func(s int64) model.Model { return model.NewMLP(clients[0].Dim(), 8, 4, s) },
		Clients: clients,
		Test:    test,
		Config:  fl.Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true},
		Metric:  model.Accuracy,
	}
}

func flContext(spec *utility.FLSpec, seed int64) *Context {
	return NewContext(utility.NewFLOracle(*spec), seed).WithSpec(spec)
}

func TestTMCConvergesOnTableGame(t *testing.T) {
	n := 6
	exact := mustValues(t, ExactMC{}, NewContext(steepMonotoneGame(n, 3), 1))
	// Fresh oracle: budget accounting counts this algorithm's evals only.
	phi := mustValues(t, &TMC{Gamma: 60, MaxPermutations: 400}, NewContext(steepMonotoneGame(n, 3), 4))
	if err := metrics.L2RelativeError(phi, exact); err > 0.35 {
		t.Errorf("TMC error %v, want < 0.35", err)
	}
}

func TestTMCRespectsBudgetApproximately(t *testing.T) {
	n := 8
	o := monotoneGame(n, 5)
	ctx := NewContext(o, 6)
	mustValues(t, NewTMC(30), ctx)
	// TMC finishes its current permutation after the budget trips, so the
	// overshoot is bounded by one permutation's n evaluations.
	if got := ctx.Oracle.Evals(); got > 30+n {
		t.Errorf("TMC used %d evals for budget 30", got)
	}
}

func TestTMCTruncates(t *testing.T) {
	// A game where the first player alone reaches the full utility: TMC
	// should truncate most walks and remain cheap.
	n := 8
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) {
		if s.Size() > 0 {
			table[s] = 0.9
		} else {
			table[s] = 0.1
		}
	})
	o := utility.TableOracle(n, table)
	ctx := NewContext(o, 7)
	phi := mustValues(t, &TMC{Gamma: 40, MaxPermutations: 50}, ctx)
	// Values must sum to roughly U(N) - U(∅) = 0.8 (efficiency in
	// expectation; truncation is exact here since marginals are truly 0).
	if math.Abs(phi.Sum()-0.8) > 0.1 {
		t.Errorf("TMC sum = %v, want ≈ 0.8", phi.Sum())
	}
}

func TestGTBRecoversOnTableGame(t *testing.T) {
	n := 5
	o := steepMonotoneGame(n, 9)
	exact := mustValues(t, ExactMC{}, NewContext(steepMonotoneGame(n, 9), 1))
	phi := mustValues(t, NewGTB(400), NewContext(o, 10))
	if err := metrics.L2RelativeError(phi, exact); err > 0.35 {
		t.Errorf("GTB error %v, want < 0.35", err)
	}
	// Efficiency is enforced by construction.
	want := o.U(combin.FullCoalition(n)) - o.U(combin.Empty)
	if math.Abs(phi.Sum()-want) > 1e-9 {
		t.Errorf("GTB sum %v, want %v", phi.Sum(), want)
	}
}

func TestGTBSingleClient(t *testing.T) {
	o := utility.TableOracle(1, map[combin.Coalition]float64{
		combin.Empty:           0.2,
		combin.NewCoalition(0): 0.9,
	})
	phi := mustValues(t, NewGTB(5), NewContext(o, 1))
	if math.Abs(phi[0]-0.7) > 1e-12 {
		t.Errorf("GTB single client %v, want 0.7", phi[0])
	}
}

func TestCCShapleyConvergesOnTableGame(t *testing.T) {
	n := 6
	o := steepMonotoneGame(n, 11)
	exact := mustValues(t, ExactMC{}, NewContext(steepMonotoneGame(n, 11), 1))
	phi := mustValues(t, NewCCShapley(120), NewContext(o, 12))
	if err := metrics.L2RelativeError(phi, exact); err > 0.35 {
		t.Errorf("CC-Shapley error %v, want < 0.35", err)
	}
}

func TestCCShapleyComplementPairsSharedEval(t *testing.T) {
	// Each draw evaluates S and N\S: with budget γ the number of distinct
	// evals is ≤ γ+2.
	n := 7
	o := monotoneGame(n, 13)
	ctx := NewContext(o, 14)
	mustValues(t, NewCCShapley(20), ctx)
	if got := ctx.Oracle.Evals(); got > 22 {
		t.Errorf("CC-Shapley used %d evals for budget 20", got)
	}
}

func TestSamplingBaselinesNeedNoSpec(t *testing.T) {
	o := monotoneGame(4, 15)
	for _, alg := range []Valuer{NewTMC(10), NewGTB(10), NewCCShapley(10), NewIPSS(10), NewStratified(MC, 10)} {
		if _, err := alg.Values(NewContext(o, 1)); err != nil {
			t.Errorf("%s on table game: %v", alg.Name(), err)
		}
	}
}

func TestGradientBaselinesRequireSpec(t *testing.T) {
	o := monotoneGame(3, 17)
	for _, alg := range []Valuer{OR{}, &LambdaMR{}, &GTGShapley{}, DIGFL{}} {
		_, err := alg.Values(NewContext(o, 1))
		if !errors.Is(err, ErrNeedsSpec) {
			t.Errorf("%s without spec: err = %v, want ErrNeedsSpec", alg.Name(), err)
		}
	}
}

func TestGradientBaselinesOnFLGame(t *testing.T) {
	spec := flSpec(4, 19)
	exactCtx := flContext(spec, 1)
	exact := mustValues(t, ExactMC{}, exactCtx)

	for _, alg := range []Valuer{OR{}, &LambdaMR{}, &GTGShapley{}, DIGFL{}} {
		t.Run(alg.Name(), func(t *testing.T) {
			ctx := flContext(spec, 2)
			phi := mustValues(t, alg, ctx)
			if len(phi) != 4 {
				t.Fatalf("%s returned %d values", alg.Name(), len(phi))
			}
			// Gradient methods lack accuracy guarantees (the paper reports
			// OR errors of 2.5-3×), so assert only well-formedness here;
			// the experiment harness records their actual error.
			for i, v := range phi {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s client %d value %v", alg.Name(), i, v)
				}
			}
			t.Logf("%s: τ=%v against exact", alg.Name(), metrics.KendallTau(phi, exact))
		})
	}
}

func TestGradientBaselinesNotApplicableToXGB(t *testing.T) {
	d, occ := dataset.AdultLike(dataset.DefaultAdultLike(200, 21))
	clients := dataset.PartitionByKey(d, occ, 3)
	spec := &utility.FLSpec{
		Factory: func(s int64) model.Model { return model.NewXGB(2, model.DefaultXGBConfig(), s) },
		Clients: clients,
		Test:    d,
		Config:  fl.DefaultConfig(7),
		Metric:  model.Accuracy,
	}
	for _, alg := range []Valuer{OR{}, &LambdaMR{}, &GTGShapley{}} {
		_, err := alg.Values(flContext(spec, 1))
		if !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%s on XGB: err = %v, want ErrNotApplicable", alg.Name(), err)
		}
	}
	// DIG-FL falls back to leave-one-out retraining and works (Table V).
	phi, err := (DIGFL{}).Values(flContext(spec, 1))
	if err != nil {
		t.Fatalf("DIG-FL on XGB: %v", err)
	}
	if len(phi) != 3 {
		t.Errorf("DIG-FL returned %d values", len(phi))
	}
}

func TestORReconstructionAnchoredAtFullCoalition(t *testing.T) {
	// OR's reconstruction of the grand coalition equals the actual trained
	// model, so U-recon(N) must equal the oracle's U(N).
	spec := flSpec(3, 23)
	_, trace, err := trainTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := reconEvalFull(spec, trace, combin.FullCoalition(3))
	oracle := utility.NewFLOracle(*spec)
	want := oracle.U(combin.FullCoalition(3))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OR reconstruction of N: %v, oracle: %v", got, want)
	}
}

func TestDIGFLParametricPath(t *testing.T) {
	spec := flSpec(3, 25)
	phi := mustValues(t, DIGFL{}, flContext(spec, 1))
	if len(phi) != 3 {
		t.Fatalf("len = %d", len(phi))
	}
}

func TestLambdaMRDecayWeights(t *testing.T) {
	// λ = 1 and λ = 0.5 must both produce finite values.
	spec := flSpec(3, 27)
	for _, l := range []float64{1, 0.5} {
		phi := mustValues(t, &LambdaMR{Lambda: l}, flContext(spec, 1))
		for i, v := range phi {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("λ=%v client %d value %v", l, i, v)
			}
		}
	}
}

func TestValuerNames(t *testing.T) {
	cases := map[Valuer]string{
		ExactMC{}:       "MC-Shapley",
		ExactCC{}:       "CC-exact",
		ExactPerm{}:     "Perm-Shapley",
		OR{}:            "OR",
		&LambdaMR{}:     "λ-MR",
		&GTGShapley{}:   "GTG-Shapley",
		DIGFL{}:         "DIG-FL",
		NewTMC(5):       "Extended-TMC(γ=5)",
		NewGTB(5):       "Extended-GTB(γ=5)",
		NewCCShapley(5): "CC-Shapley(γ=5)",
	}
	for v, want := range cases {
		if got := v.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestTMCCustomTolerance(t *testing.T) {
	// A very large tolerance truncates immediately after U(N), U(∅):
	// every marginal beyond the first client is zeroed.
	n := 5
	o := steepMonotoneGame(n, 71)
	alg := &TMC{Gamma: 30, Tolerance: 10, MaxPermutations: 20}
	phi := mustValues(t, alg, NewContext(o, 1))
	// Values are finite and the walk still assigns the first marginal.
	nonzero := 0
	for _, v := range phi {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Errorf("full truncation should still credit first-position clients")
	}
}

func TestGTGCustomKnobs(t *testing.T) {
	spec := flSpec(3, 73)
	alg := &GTGShapley{PermsPerRound: 2, BetweenTol: 1e-9, WithinTol: 1e-9}
	phi := mustValues(t, alg, flContext(spec, 1))
	if len(phi) != 3 {
		t.Fatalf("len = %d", len(phi))
	}
	// Huge between-round tolerance truncates every round → all zeros.
	lazy := &GTGShapley{PermsPerRound: 2, BetweenTol: 1e9}
	phi2 := mustValues(t, lazy, flContext(spec, 1))
	for i, v := range phi2 {
		if v != 0 {
			t.Errorf("client %d: %v, want 0 under total between-round truncation", i, v)
		}
	}
}

func TestStratifiedBadRoundsPanics(t *testing.T) {
	o := monotoneGame(3, 75)
	alg := &Stratified{Scheme: MC, RoundsPerStratum: []int{1, 2}} // wrong length
	defer func() {
		if recover() == nil {
			t.Errorf("mismatched RoundsPerStratum should panic")
		}
	}()
	_, _ = alg.Values(NewContext(o, 1))
}

func TestStratifiedZeroBudget(t *testing.T) {
	o := monotoneGame(3, 77)
	phi := mustValues(t, NewStratified(MC, 0), NewContext(o, 1))
	for i, v := range phi {
		if v != 0 {
			t.Errorf("client %d: %v, want 0 with no budget", i, v)
		}
	}
}
