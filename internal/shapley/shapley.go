// Package shapley implements SV-based data valuation for federated
// learning: the exact MC-SV / CC-SV / permutation schemes (Defs. 3-4), the
// paper's unified stratified sampling framework (Alg. 1), the K-Greedy probe
// (Alg. 2), the IPSS contribution (Alg. 3), and the nine baselines the paper
// evaluates against (DIG-FL, Extended-TMC, Extended-GTB, CC-Shapley, OR,
// λ-MR, GTG-Shapley, plus the exact definitional methods).
//
// Every algorithm consumes coalition utilities through a utility.Source,
// so budget accounting (distinct train+evaluate calls, the paper's γ) and
// caching are uniform across methods.
package shapley

import (
	"context"
	"errors"
	"math/rand"

	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// Values holds one data value per FL client.
type Values []float64

// Clone returns a copy.
func (v Values) Clone() Values {
	out := make(Values, len(v))
	copy(out, v)
	return out
}

// Sum returns Σᵢ φᵢ.
func (v Values) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Context carries the inputs a valuation algorithm may need. Oracle is
// always required. Spec is required only by the gradient-based baselines,
// which train once with a trace and evaluate reconstructed models; it is nil
// when the game exists only as a utility table. Ctx, when non-nil, makes
// the run cooperatively cancellable (see Run).
type Context struct {
	Oracle utility.Source
	Spec   *utility.FLSpec
	RNG    *rand.Rand
	Ctx    context.Context
}

// NewContext builds a Context with a deterministic RNG.
func NewContext(o utility.Source, seed int64) *Context {
	return &Context{Oracle: o, RNG: rand.New(rand.NewSource(seed))}
}

// WithSpec attaches the FL spec needed by gradient-based baselines.
func (c *Context) WithSpec(spec *utility.FLSpec) *Context {
	c.Spec = spec
	return c
}

// WithContext attaches a context for cooperative cancellation.
func (c *Context) WithContext(ctx context.Context) *Context {
	c.Ctx = ctx
	return c
}

// Run executes a valuer with cooperative cancellation. If c.Ctx is set and
// the oracle supports context binding, cancelling the context makes the
// next *fresh* coalition evaluation abort the run; Run converts that abort
// back into an error satisfying errors.Is(err, context.Canceled) (or
// DeadlineExceeded). Utilities cached before the cancellation stay cached.
// Algorithms themselves stay context-free: every one is budgeted in oracle
// calls, so the oracle is the single choke point cancellation needs.
func Run(c *Context, v Valuer) (values Values, err error) {
	if c.Ctx != nil {
		if b, ok := c.Oracle.(utility.ContextBinder); ok {
			b.SetContext(c.Ctx)
		}
		if err := c.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	defer func() {
		if r := recover(); r != nil {
			ce, ok := r.(*utility.CancelError)
			if !ok {
				panic(r)
			}
			values, err = nil, ce
		}
	}()
	return v.Values(c)
}

// Valuer estimates the data value of every client in the federation.
type Valuer interface {
	// Name returns the algorithm's display name.
	Name() string
	// Values computes the (possibly approximate) data values.
	Values(ctx *Context) (Values, error)
}

// ErrNeedsSpec is returned by gradient-based baselines when no FL spec is
// available (e.g. pure utility-table games).
var ErrNeedsSpec = errors.New("shapley: algorithm requires an FL training spec")

// ErrNotApplicable is returned when an algorithm cannot run on the given
// model family — e.g. gradient-based baselines on tree ensembles, the "\"
// cells of the paper's Table V.
var ErrNotApplicable = errors.New("shapley: algorithm not applicable to this model")

// mcWeight returns the MC-SV weight 1/(n·C(n-1, |S|)) for a coalition of
// size s not containing the target client.
func mcWeight(n, s int) float64 {
	return 1.0 / (float64(n) * combin.Binomial(n-1, s))
}
