package shapley

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
)

// Scheme selects the Shapley computation scheme plugged into the unified
// stratified sampling framework (Alg. 1).
type Scheme int

const (
	// MC pairs a sampled coalition S ∋ i with S\{i} (Def. 3).
	MC Scheme = iota
	// CC pairs a sampled coalition S ∋ i with N\S (Def. 4).
	CC
)

// String returns the paper's abbreviation for the scheme.
func (s Scheme) String() string {
	switch s {
	case MC:
		return "MC-SV"
	case CC:
		return "CC-SV"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Stratified is the unified stratified sampling framework of Alg. 1: dataset
// combinations of equal size form strata; m_k combinations are sampled per
// stratum; each client's stratified value φ̂ᵢ,ₖ averages the marginal (MC)
// or complementary (CC) contributions whose paired combination was also
// sampled; and φ̂ᵢ averages across strata.
type Stratified struct {
	// Scheme selects MC-SV or CC-SV pairing.
	Scheme Scheme
	// RoundsPerStratum holds m_k for stratum k (index 0 = combinations of
	// size 1, as Alg. 1 iterates k = 1..n). When nil, TotalRounds is split
	// evenly across strata.
	RoundsPerStratum []int
	// TotalRounds is the sampling budget γ used when RoundsPerStratum is
	// nil.
	TotalRounds int
	// ForcePairs, when true, evaluates each sampled coalition's pair
	// (S\{i} for MC, N\S for CC) even when it was not itself sampled, so
	// no stratum degenerates to zero from pairing sparsity. This doubles
	// the evaluation cost per sample but removes the estimator's
	// conditional-on-pairing bias — a design study on Alg. 1, not part of
	// the paper (which counts only pairs that happen to be sampled).
	ForcePairs bool
}

// NewStratified builds the framework with budget γ split evenly over strata.
func NewStratified(scheme Scheme, gamma int) *Stratified {
	return &Stratified{Scheme: scheme, TotalRounds: gamma}
}

// Name implements Valuer.
func (a *Stratified) Name() string {
	return fmt.Sprintf("Stratified(%s)", a.Scheme)
}

// rounds returns m_k for k = 1..n (index k-1), materialising the even split
// when RoundsPerStratum is unset. The remainder of an uneven division is
// given to the smallest strata first, which is where contributions matter
// most (the key-combinations phenomenon).
func (a *Stratified) rounds(n int) []int {
	if a.RoundsPerStratum != nil {
		if len(a.RoundsPerStratum) != n {
			panic(fmt.Sprintf("shapley: RoundsPerStratum has %d entries for n=%d", len(a.RoundsPerStratum), n))
		}
		return a.RoundsPerStratum
	}
	m := make([]int, n)
	if a.TotalRounds <= 0 {
		return m
	}
	base, rem := a.TotalRounds/n, a.TotalRounds%n
	for k := range m {
		m[k] = base
		if k < rem {
			m[k]++
		}
	}
	return m
}

// draw replays Alg. 1's per-stratum sampling (lines 1-8), consuming rng
// exactly as the valuation pass does; strata[k] holds the sampled
// coalitions of size k. Both Values and SamplePlan consume it.
func (a *Stratified) draw(n int, rng *rand.Rand) [][]combin.Coalition {
	m := a.rounds(n)
	strata := make([][]combin.Coalition, n+1)
	for k := 1; k <= n; k++ {
		mk := m[k-1]
		if mk <= 0 {
			continue
		}
		strata[k] = combin.SampleStratumWithoutReplacement(n, k, mk, rng)
	}
	return strata
}

// sampledSet indexes the drawn coalitions — plus ∅, whose utility anchors
// size-1 marginals (Example 2) — for the pairing test of lines 9-17.
func sampledSet(strata [][]combin.Coalition) map[combin.Coalition]bool {
	sampled := map[combin.Coalition]bool{combin.Empty: true}
	for _, ss := range strata {
		for _, c := range ss {
			sampled[c] = true
		}
	}
	return sampled
}

// forEachPair invokes fn for every (S, pair) term the reduce pass of
// lines 9-17 evaluates, in evaluation order (client-major, then stratum,
// then sample). Terms whose pair was not sampled are skipped unless
// ForcePairs evaluates them anyway.
func (a *Stratified) forEachPair(n int, strata [][]combin.Coalition, sampled map[combin.Coalition]bool, fn func(i, k int, s, pair combin.Coalition)) {
	full := combin.FullCoalition(n)
	for i := 0; i < n; i++ {
		for k := 1; k <= n; k++ {
			for _, s := range strata[k] {
				if !s.Has(i) {
					continue
				}
				var pair combin.Coalition
				switch a.Scheme {
				case MC:
					pair = s.Without(i)
				case CC:
					pair = full.Minus(s)
				}
				if !sampled[pair] && !a.ForcePairs {
					continue
				}
				fn(i, k, s, pair)
			}
		}
	}
}

// Values implements Valuer, following Alg. 1 line by line.
func (a *Stratified) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()

	// Lines 1-8: sample each stratum and evaluate sampled coalitions.
	strata := a.draw(n, ctx.RNG)
	for k := 1; k <= n; k++ {
		for _, c := range strata[k] {
			o.U(c)
		}
	}
	o.U(combin.Empty)
	sampled := sampledSet(strata)

	// Lines 9-17: pair sampled combinations per scheme and average.
	sums := make([][]float64, n)
	cnts := make([][]int, n)
	for i := range sums {
		sums[i] = make([]float64, n+1)
		cnts[i] = make([]int, n+1)
	}
	a.forEachPair(n, strata, sampled, func(i, k int, s, pair combin.Coalition) {
		sums[i][k] += o.U(s) - o.U(pair)
		cnts[i][k]++
	})
	phi := make(Values, n)
	for i := 0; i < n; i++ {
		var total float64
		for k := 1; k <= n; k++ {
			if cnts[i][k] > 0 {
				total += sums[i][k] / float64(cnts[i][k])
			}
		}
		phi[i] = total / float64(n)
	}
	return phi, nil
}
