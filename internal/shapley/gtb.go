package shapley

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
)

// GTB is the paper's "Extended-GTB" baseline: Jia et al.'s Group-Testing-
// Based Shapley estimation extended to FL. It samples coalitions with the
// group-testing size distribution q(k) ∝ 1/(k(n−k)), forms unbiased
// estimates of all pairwise value differences Δᵢⱼ = φᵢ − φⱼ from the shared
// utility measurements, and then recovers φ by solving the feasibility
// problem {Σφᵢ = U(N) − U(∅), |(φᵢ−φⱼ) − Δ̂ᵢⱼ| ≤ ε} with ε relaxed until
// feasible — realised here by the least-squares solution (which minimises
// the maximal violation's ℓ2 proxy) followed by a feasibility check.
type GTB struct {
	// Gamma is the evaluation budget.
	Gamma int
}

// NewGTB returns the baseline with budget γ.
func NewGTB(gamma int) *GTB { return &GTB{Gamma: gamma} }

// Name implements Valuer.
func (a *GTB) Name() string { return fmt.Sprintf("Extended-GTB(γ=%d)", a.Gamma) }

// forEachDraw replays the group-testing sampling loop: each iteration draws
// a size from q(k) ∝ 1/(k(n−k)) and a coalition of that size, and hands it
// to visit, which evaluates (or, for planning, records) it and returns the
// run's distinct-request count — the budget meter driving the stop
// condition exactly as Source.Evals does. evals seeds the meter (the
// Source's count after U(N) and U(∅); 2 for a fresh budget scope).
func (a *GTB) forEachDraw(n, evals int, rng *rand.Rand, visit func(s combin.Coalition) int) {
	// Group-testing size distribution over k = 1..n-1.
	qk := make([]float64, n) // qk[k], k=1..n-1
	var z float64
	for k := 1; k <= n-1; k++ {
		qk[k] = 1.0 / float64(k*(n-k))
		z += qk[k]
	}
	for k := 1; k <= n-1; k++ {
		qk[k] /= z
	}
	draws := 0
	for evals < a.Gamma || draws == 0 {
		k := sampleSize(qk, rng)
		s := combin.RandomSubsetOfSize(n, k, rng)
		evals = visit(s)
		draws++
		if draws >= 1<<20 {
			break
		}
		if a.Gamma <= 0 {
			break
		}
	}
}

// Values implements Valuer.
func (a *GTB) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	if n == 1 {
		full := o.U(combin.FullCoalition(1)) - o.U(combin.Empty)
		return Values{full}, nil
	}
	uFull := o.U(combin.FullCoalition(n))
	uEmpty := o.U(combin.Empty)

	zn := 2.0 * harmonic(n-1) // the Z constant of the estimator

	// Sample until the budget is consumed.
	type obs struct {
		s combin.Coalition
		u float64
	}
	var samples []obs
	a.forEachDraw(n, o.Evals(), ctx.RNG, func(s combin.Coalition) int {
		samples = append(samples, obs{s, o.U(s)})
		return o.Evals()
	})
	t := float64(len(samples))

	// Δ̂ᵢⱼ = (Z/T) Σ_t u_t (β_ti − β_tj).
	// Compute the per-client weighted indicator sums first: Δ̂ᵢⱼ = (Z/T)(cᵢ − cⱼ).
	c := make([]float64, n)
	for _, ob := range samples {
		for _, i := range ob.s.Members() {
			c[i] += ob.u
		}
	}
	for i := range c {
		c[i] *= zn / t
	}

	// Least-squares feasibility solve: with Δ̂ᵢⱼ = cᵢ − cⱼ exactly
	// antisymmetric, the minimiser of Σᵢⱼ((φᵢ−φⱼ)−Δ̂ᵢⱼ)² subject to
	// Σφ = U(N) − U(∅) is φᵢ = (U(N)−U(∅))/n + cᵢ − mean(c).
	var cbar float64
	for _, x := range c {
		cbar += x
	}
	cbar /= float64(n)
	total := uFull - uEmpty
	phi := make(Values, n)
	for i := range phi {
		phi[i] = total/float64(n) + c[i] - cbar
	}
	return phi, nil
}

func harmonic(n int) float64 {
	var h float64
	for k := 1; k <= n; k++ {
		h += 1.0 / float64(k)
	}
	return h
}

func sampleSize(qk []float64, rng interface{ Float64() float64 }) int {
	r := rng.Float64()
	var cum float64
	for k := 1; k < len(qk); k++ {
		cum += qk[k]
		if r < cum {
			return k
		}
	}
	return len(qk) - 1
}
