package shapley

import (
	"math"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/metrics"
	"fedshap/internal/utility"
)

func TestExactBanzhafNullPlayer(t *testing.T) {
	n := 4
	null := 1
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) {
		// Utility independent of the null player.
		table[s] = float64(s.Without(null).Size())
	})
	ctx := NewContext(utility.TableOracle(n, table), 1)
	phi := mustValues(t, ExactBanzhaf{}, ctx)
	if phi[null] != 0 {
		t.Errorf("null player Banzhaf value %v", phi[null])
	}
	for i := 0; i < n; i++ {
		if i != null && math.Abs(phi[i]-1) > 1e-12 {
			t.Errorf("client %d value %v, want 1 (unit marginal everywhere)", i, phi[i])
		}
	}
}

func TestExactBanzhafSymmetry(t *testing.T) {
	// Symmetric game: utility = coalition size → all values equal 1.
	n := 5
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) { table[s] = float64(s.Size()) })
	ctx := NewContext(utility.TableOracle(n, table), 1)
	phi := mustValues(t, ExactBanzhaf{}, ctx)
	for i, v := range phi {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("client %d Banzhaf %v, want 1", i, v)
		}
	}
}

// On additive games, Banzhaf equals Shapley (both recover each player's own
// contribution).
func TestBanzhafEqualsShapleyOnAdditiveGames(t *testing.T) {
	n := 5
	contrib := []float64{0.1, 0.25, 0.05, 0.4, 0.2}
	table := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) {
		var sum float64
		for _, i := range s.Members() {
			sum += contrib[i]
		}
		table[s] = sum
	})
	o := utility.TableOracle(n, table)
	shap := mustValues(t, ExactMC{}, NewContext(o, 1))
	banz := mustValues(t, ExactBanzhaf{}, NewContext(o, 1))
	for i := range contrib {
		if math.Abs(shap[i]-contrib[i]) > 1e-12 || math.Abs(banz[i]-contrib[i]) > 1e-12 {
			t.Errorf("client %d: shap %v banz %v want %v", i, shap[i], banz[i], contrib[i])
		}
	}
}

func TestMCBanzhafConverges(t *testing.T) {
	n := 6
	o := steepMonotoneGame(n, 51)
	exact := mustValues(t, ExactBanzhaf{}, NewContext(o, 1))
	approx := mustValues(t, NewMCBanzhaf(500), NewContext(steepMonotoneGame(n, 51), 2))
	if err := metrics.L2RelativeError(approx, exact); err > 0.3 {
		t.Errorf("MC-Banzhaf error %v, want < 0.3", err)
	}
}

func TestMCBanzhafBudget(t *testing.T) {
	o := monotoneGame(6, 53)
	ctx := NewContext(o, 3)
	mustValues(t, NewMCBanzhaf(30), ctx)
	// Each draw evaluates at most two coalitions; bounded overshoot.
	if got := ctx.Oracle.Evals(); got > 32 {
		t.Errorf("evals = %d for budget 30", got)
	}
}

func TestBanzhafNames(t *testing.T) {
	if (ExactBanzhaf{}).Name() != "Banzhaf-exact" {
		t.Errorf("bad name")
	}
	if NewMCBanzhaf(7).Name() != "Banzhaf-MC(γ=7)" {
		t.Errorf("bad name")
	}
}
