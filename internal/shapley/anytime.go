package shapley

import (
	"math"
	"sort"

	"fedshap/internal/combin"
)

// Anytime valuation: fold per-evaluation marginal contributions into running
// per-client estimates with always-valid confidence intervals, so a consumer
// can read off interim Shapley values (and stop early) while sampling is
// still in flight.
//
// The estimator mirrors the stratified structure every sampler here shares:
// a marginal contribution Δᵢ(S) = U(S∪{i}) − U(S) with |S| = k is one draw
// from stratum k of client i, and the Shapley value is the equally-weighted
// stratum-mean sum φᵢ = (1/n)·Σₖ E[Δᵢ(S) : |S| = k]. The tracker keeps
// Welford mean/variance per (client, stratum) cell and intervals per cell:
//
//   - a Serfling-style without-replacement Hoeffding bound, which carries a
//     (1 − (t−1)/M) finite-population factor and collapses to exactly zero
//     once all M planned pairs of the cell have been observed, and
//   - an empirical-Bernstein bound, which wins when the observed variance is
//     small long before the cell is exhausted.
//
// The per-cell failure probability is split anytime-uniformly over the
// observation count (δ_t = δ_cell/(t(t+1)), Σ_t δ_t = δ_cell), so the
// intervals are valid simultaneously at every checkpoint — the property the
// early-stop rule needs. Balanced stratum samples are not literal uniform
// without-replacement draws, so the Serfling factor is an approximation for
// sampled strata; the statistical suite in anytime_test.go measures the
// realised coverage and shows it stays at or above nominal.
//
// Estimand note: when a plan covers only part of a stratum family (IPSS
// truncation), unplanned cells are pinned to zero — the tracker estimates
// the same truncated quantity the algorithm itself reports, not the exact
// Shapley value.

// Tracker accumulates per-(client, stratum) marginal-contribution
// observations and serves interim estimates with simultaneous confidence
// intervals. It is not safe for concurrent use; callers serialise (the
// valserve driver feeds it from one goroutine).
type Tracker struct {
	n          int
	confidence float64
	lo, hi     float64 // marginal contribution bounds, default [-1, 1]

	// cells[i*n+k] is the stratum-k cell of client i (k = |S| ∈ [0, n-1]).
	cells []cell
}

type cell struct {
	planned int // pairs the plan can complete for this cell (M); 0 = pruned
	count   int
	mean    float64
	m2      float64
}

// NewTracker builds a tracker over the full stratum family: every cell's
// population is the whole stratum, M = C(n−1, k). Suitable when the sampler
// may touch any coalition (the OnEvalValue hook path).
func NewTracker(n int, confidence float64) *Tracker {
	t := &Tracker{n: n, confidence: confidence, lo: -1, hi: 1,
		cells: make([]cell, n*n)}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			m := combin.BinomialInt(n-1, k)
			if m > math.MaxInt32 {
				m = math.MaxInt32
			}
			t.cells[i*n+k].planned = int(m)
		}
	}
	return t
}

// NewTrackerForPlan builds a tracker whose cell populations are the pairs
// actually completable within plan: cell (i, k) counts the coalitions S with
// |S| = k, i ∉ S where both S and S∪{i} appear in the plan. Cells with zero
// planned pairs are treated as deliberately pruned (IPSS truncation): they
// contribute zero to both the estimate and the interval, matching the
// truncated estimand the planned algorithm reports.
func NewTrackerForPlan(n int, confidence float64, plan []combin.Coalition) *Tracker {
	t := &Tracker{n: n, confidence: confidence, lo: -1, hi: 1,
		cells: make([]cell, n*n)}
	in := make(map[combin.Coalition]struct{}, len(plan))
	for _, s := range plan {
		in[s] = struct{}{}
	}
	// Walk the plan in its own (seed-deterministic) order, visiting each
	// distinct coalition once — never range the dedup map, so the cell
	// populations are built identically run to run.
	visited := make(map[combin.Coalition]struct{}, len(in))
	for _, s := range plan {
		if _, dup := visited[s]; dup {
			continue
		}
		visited[s] = struct{}{}
		size := s.Size()
		for i := 0; i < n; i++ {
			if s.Has(i) {
				continue
			}
			if _, ok := in[s.With(i)]; ok {
				t.cells[i*n+size].planned++
			}
		}
	}
	return t
}

// SetMarginalBounds overrides the assumed range of a single marginal
// contribution (default [−1, 1], correct for accuracy-style utilities in
// [0, 1]). Tighter bounds shrink the Hoeffding term proportionally.
func (t *Tracker) SetMarginalBounds(lo, hi float64) {
	if hi > lo {
		t.lo, t.hi = lo, hi
	}
}

// N returns the number of clients.
func (t *Tracker) N() int { return t.n }

// Observe folds one marginal contribution Δᵢ(S) with |S| = stratum into
// client i's running statistics (Welford update).
func (t *Tracker) Observe(i, stratum int, delta float64) {
	if i < 0 || i >= t.n || stratum < 0 || stratum >= t.n {
		return
	}
	c := &t.cells[i*t.n+stratum]
	c.count++
	d := delta - c.mean
	c.mean += d / float64(c.count)
	c.m2 += d * (delta - c.mean)
}

// Observations returns the total marginal contributions folded for client i.
func (t *Tracker) Observations(i int) int {
	total := 0
	for k := 0; k < t.n; k++ {
		total += t.cells[i*t.n+k].count
	}
	return total
}

// Estimate returns the current per-client values: the equally-weighted sum
// of observed stratum means (unobserved and pruned cells contribute zero).
// On a fully enumerated plan this equals the exact MC-SV value; on IPSS it
// converges to the same truncated plug-in quantity the algorithm reports.
func (t *Tracker) Estimate() Values {
	v := make(Values, t.n)
	inv := 1 / float64(t.n)
	for i := 0; i < t.n; i++ {
		for k := 0; k < t.n; k++ {
			c := &t.cells[i*t.n+k]
			if c.count > 0 {
				v[i] += inv * c.mean
			}
		}
	}
	return v
}

// Interval returns client i's simultaneous confidence interval. Per-cell
// half-widths (min of the without-replacement Hoeffding and the empirical-
// Bernstein bound; exactly zero for exhausted cells; worst-case for planned
// but untouched cells) are summed across strata, scaled by 1/n.
func (t *Tracker) Interval(i int) (lo, hi float64) {
	center := 0.0
	hw := 0.0
	inv := 1 / float64(t.n)
	r := t.hi - t.lo
	worst := math.Max(math.Abs(t.lo), math.Abs(t.hi))
	// Union-bound the failure probability over every (client, stratum) cell
	// so all n client intervals hold simultaneously.
	deltaCell := (1 - t.confidence) / float64(t.n*t.n)
	for k := 0; k < t.n; k++ {
		c := &t.cells[i*t.n+k]
		if c.planned == 0 {
			continue // pruned stratum: pinned to zero by construction
		}
		if c.count == 0 {
			hw += inv * worst
			continue
		}
		center += inv * c.mean
		hw += inv * cellHalfWidth(c, deltaCell, r)
	}
	return center - hw, center + hw
}

// cellHalfWidth bounds |mean − truth| for one cell at anytime-corrected
// confidence: δ_t = δ_cell/(t(t+1)) keeps Σ_t δ_t = δ_cell, so the bound
// holds at every observation count simultaneously.
func cellHalfWidth(c *cell, deltaCell, r float64) float64 {
	tn := float64(c.count)
	if c.count >= c.planned {
		return 0 // population exhausted: the mean is the (truncated) truth
	}
	deltaT := deltaCell / (tn * (tn + 1))
	// Serfling without-replacement Hoeffding: the finite-population factor
	// (1 − (t−1)/M) drives the width to zero as the cell drains.
	fpc := 1 - (tn-1)/float64(c.planned)
	if fpc < 0 {
		fpc = 0
	}
	hoeff := r * math.Sqrt(fpc*math.Log(2/deltaT)/(2*tn))
	// Empirical Bernstein (Maurer–Pontil style): variance-adaptive, wins
	// when observed marginals are nearly constant.
	v := c.m2 / tn
	eb := math.Sqrt(2*v*math.Log(3/deltaT)/tn) + 3*r*math.Log(3/deltaT)/tn
	return math.Min(hoeff, eb)
}

// Resolved reports whether every pairwise client ranking is decided at the
// tracker's confidence: for each pair, either the intervals are disjoint or
// both are zero-width (fully resolved ties count as decided).
func (t *Tracker) Resolved() bool {
	lo := make([]float64, t.n)
	hi := make([]float64, t.n)
	for i := 0; i < t.n; i++ {
		lo[i], hi[i] = t.Interval(i)
	}
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			disjoint := hi[i] < lo[j] || hi[j] < lo[i]
			exactTie := hi[i] == lo[i] && hi[j] == lo[j]
			if !disjoint && !exactTie {
				return false
			}
		}
	}
	return true
}

// AnytimeSnapshot is one interim view of a run: current estimates, their
// simultaneous confidence intervals, per-client observation counts, and
// progress through the plan.
type AnytimeSnapshot struct {
	Values       Values
	Lo, Hi       []float64
	Observations []int
	Seen         int // distinct coalitions folded so far
	Planned      int // distinct coalitions in the plan (0 when unplanned)
	Resolved     bool
}

// Replay turns a stream of (coalition, utility) evaluations — in any order —
// into tracker observations by pair completion: the moment both S and
// S∪{i} have been seen, Δᵢ(S) is folded. Duplicate coalitions are ignored,
// so feeding a plan's warm replay and live evaluations through the same
// Replay is safe.
type Replay struct {
	tracker *Tracker
	planned int
	seen    map[combin.Coalition]float64
}

// NewReplay builds a replay feeding a plan-aware tracker (plan nil ⇒ the
// full stratum family, see NewTracker).
func NewReplay(n int, confidence float64, plan []combin.Coalition) *Replay {
	var tr *Tracker
	if plan == nil {
		tr = NewTracker(n, confidence)
	} else {
		tr = NewTrackerForPlan(n, confidence, plan)
	}
	return &Replay{tracker: tr, planned: len(plan),
		seen: make(map[combin.Coalition]float64, len(plan))}
}

// Tracker exposes the underlying tracker (e.g. to tighten marginal bounds).
func (r *Replay) Tracker() *Tracker { return r.tracker }

// Add folds one evaluated coalition. Every marginal pair it completes is
// emitted in ascending client order, so the observation sequence is a pure
// function of the insertion order of distinct coalitions.
func (r *Replay) Add(s combin.Coalition, u float64) {
	if _, dup := r.seen[s]; dup {
		return
	}
	r.seen[s] = u
	n := r.tracker.n
	size := s.Size()
	type obs struct {
		client, stratum int
		delta           float64
	}
	var out []obs
	for i := 0; i < n; i++ {
		if s.Has(i) {
			// s = S∪{i}: completing pair is S = s\{i}.
			if base, ok := r.seen[s.Without(i)]; ok {
				out = append(out, obs{i, size - 1, u - base})
			}
		} else if sup, ok := r.seen[s.With(i)]; ok {
			// s = S: completing pair is S∪{i}.
			out = append(out, obs{i, size, sup - u})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].client < out[b].client })
	for _, o := range out {
		r.tracker.Observe(o.client, o.stratum, o.delta)
	}
}

// Seen returns the number of distinct coalitions folded so far.
func (r *Replay) Seen() int { return len(r.seen) }

// Snapshot captures the current interim state.
func (r *Replay) Snapshot() AnytimeSnapshot {
	t := r.tracker
	snap := AnytimeSnapshot{
		Values:       t.Estimate(),
		Lo:           make([]float64, t.n),
		Hi:           make([]float64, t.n),
		Observations: make([]int, t.n),
		Seen:         len(r.seen),
		Planned:      r.planned,
	}
	for i := 0; i < t.n; i++ {
		snap.Lo[i], snap.Hi[i] = t.Interval(i)
		snap.Observations[i] = t.Observations(i)
	}
	snap.Resolved = t.Resolved()
	return snap
}

// PlanExhaustive reports whether PlanFor yields the algorithm's *complete*
// evaluation set — a prerequisite for plan-driven anytime execution and for
// sound early stopping. TMC and Stratified-Neyman expose only a certain
// prefix (later draws depend on observed utilities), so a plan-scoped
// tracker would mistake their unplanned strata for deliberate pruning and
// report falsely tight intervals.
func PlanExhaustive(alg Valuer) bool {
	switch alg.(type) {
	case *TMC, *StratifiedNeyman:
		return false
	case Planner, Prefetchable:
		return true
	}
	return false
}
