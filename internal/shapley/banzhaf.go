package shapley

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
)

// The Banzhaf value is the robustness-oriented cousin of the Shapley value
// (Wang & Jia's "Data Banzhaf", cited by the paper as a valuation variant):
// it averages a client's marginal contributions uniformly over all 2^{n-1}
// coalitions instead of stratifying by size, which provably maximises
// robustness to noisy utility functions. Provided as an extension so
// downstream users can trade the efficiency axiom for noise robustness.

// ExactBanzhaf computes βᵢ = 2^{-(n-1)} Σ_{S⊆N\{i}} [U(S∪{i}) − U(S)]
// over all coalitions (2ⁿ evaluations).
type ExactBanzhaf struct{}

// Name implements Valuer.
func (ExactBanzhaf) Name() string { return "Banzhaf-exact" }

// Values implements Valuer.
func (ExactBanzhaf) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	u := allUtilities(o)
	phi := make(Values, n)
	combin.AllSubsets(n, func(s combin.Coalition) {
		us := u[s.Index()]
		for i := 0; i < n; i++ {
			if s.Has(i) {
				continue
			}
			phi[i] += u[s.With(i).Index()] - us
		}
	})
	scale := 1.0
	for k := 1; k < n; k++ {
		scale /= 2
	}
	for i := range phi {
		phi[i] *= scale
	}
	return phi, nil
}

// MCBanzhaf approximates the Banzhaf value by Monte Carlo: coalitions are
// drawn uniformly from 2^N (each client joins independently with
// probability ½), and each draw's utility pairs with its single-client
// toggles under the evaluation budget γ.
type MCBanzhaf struct {
	// Gamma is the evaluation budget.
	Gamma int
}

// NewMCBanzhaf returns the sampler with budget γ.
func NewMCBanzhaf(gamma int) *MCBanzhaf { return &MCBanzhaf{Gamma: gamma} }

// Name implements Valuer.
func (a *MCBanzhaf) Name() string { return fmt.Sprintf("Banzhaf-MC(γ=%d)", a.Gamma) }

// forEachDraw replays the Monte-Carlo toggle draws: each iteration draws a
// uniform coalition and a client to toggle, and hands the (with, without)
// pair to visit, which evaluates (or, for planning, records) it and returns
// the run's distinct-request count — the budget meter driving the stop
// condition exactly as Source.Evals does. evals seeds the meter (0 for a
// fresh budget scope).
func (a *MCBanzhaf) forEachDraw(n, evals int, rng *rand.Rand, visit func(i int, with, without combin.Coalition) int) {
	draws := 0
	for evals < a.Gamma || draws == 0 {
		// Uniform coalition: each member joins with probability 1/2.
		var s combin.Coalition
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				s = s.With(i)
			}
		}
		// Toggle one uniformly chosen client to form the marginal pair.
		i := rng.Intn(n)
		evals = visit(i, s.With(i), s.Without(i))
		draws++
		if draws >= 1<<20 || a.Gamma <= 0 {
			break
		}
	}
}

// Values implements Valuer.
func (a *MCBanzhaf) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	sums := make(Values, n)
	counts := make([]int, n)
	a.forEachDraw(n, o.Evals(), ctx.RNG, func(i int, with, without combin.Coalition) int {
		d := o.U(with) - o.U(without)
		sums[i] += d
		counts[i]++
		return o.Evals()
	})
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return sums, nil
}
