package shapley

import (
	"fmt"

	"fedshap/internal/combin"
)

// KGreedy is the probe algorithm of Alg. 2 used to expose the
// key-combinations phenomenon (Sec. IV-A): it exhaustively evaluates every
// dataset combination with at most K clients and computes the truncated
// MC-SV sum over them, deliberately ignoring all larger combinations.
//
// Weight note: the paper's Alg. 2 line 7 prints the divisor n·C(n, |S|); we
// use the MC-SV divisor n·C(n−1, |S|) so that K = n recovers the exact
// Shapley value — the property Fig. 4's relative-error curve measures. See
// DESIGN.md §3.
type KGreedy struct {
	// K is the maximum combination size evaluated.
	K int
}

// Name implements Valuer.
func (a *KGreedy) Name() string { return fmt.Sprintf("K-Greedy(K=%d)", a.K) }

// Values implements Valuer.
func (a *KGreedy) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	k := a.K
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Evaluate every combination of size <= K (Alg. 2 lines 2-4).
	u := make(map[combin.Coalition]float64)
	for size := 0; size <= k; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) {
			u[s] = o.U(s)
		})
	}
	// Truncated MC-SV sum over combinations S with |S| < K (lines 6-8):
	// each term pairs S (size < K) with S∪{i} (size <= K), both evaluated.
	phi := make(Values, n)
	for i := 0; i < n; i++ {
		for size := 0; size < k; size++ {
			w := mcWeight(n, size)
			combin.SubsetsOfSizeNotContaining(n, size, i, func(s combin.Coalition) {
				phi[i] += w * (u[s.With(i)] - u[s])
			})
		}
	}
	return phi, nil
}
