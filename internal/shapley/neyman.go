package shapley

import (
	"fmt"
	"math"
	"math/rand"

	"fedshap/internal/combin"
)

// StratifiedNeyman extends the unified framework (Alg. 1) with two-phase
// variance-aware budget allocation, an extension the paper leaves open (it
// "operates without imposing specific assumptions on the number of sampling
// rounds m_k"). Phase one spends a pilot fraction of the budget uniformly
// across strata to estimate each stratum's marginal-contribution variance;
// phase two allocates the remainder proportionally to the estimated
// standard deviations (Neyman allocation), so noisy strata get more
// samples. Pairs are force-evaluated so every sample yields a live
// marginal.
type StratifiedNeyman struct {
	// Gamma is the total evaluation budget.
	Gamma int
	// PilotFraction is the share of budget spent uniformly in phase one
	// (default 0.3).
	PilotFraction float64
}

// NewStratifiedNeyman returns the two-phase allocator with budget γ.
func NewStratifiedNeyman(gamma int) *StratifiedNeyman {
	return &StratifiedNeyman{Gamma: gamma}
}

// Name implements Valuer.
func (a *StratifiedNeyman) Name() string {
	return fmt.Sprintf("Stratified-Neyman(γ=%d)", a.Gamma)
}

// sampleCounts resolves the effective budget and the per-phase sample
// counts: each "sample" costs ~2 evaluations (S and its pair S\{i}).
// Shared by Values and SamplePlan so the two cannot disagree on either
// clamp.
func (a *StratifiedNeyman) sampleCounts(n int) (gamma, totalSamples, pilot int) {
	gamma = a.Gamma
	if gamma < 2 {
		gamma = 2
	}
	pilotFrac := a.PilotFraction
	if pilotFrac <= 0 || pilotFrac >= 1 {
		pilotFrac = 0.3
	}
	totalSamples = gamma / 2
	pilot = int(float64(totalSamples) * pilotFrac)
	if pilot < n {
		pilot = min(totalSamples, n) // at least one pilot sample per stratum
	}
	return gamma, totalSamples, pilot
}

// neymanDraw makes one stratum-k draw: a random coalition and a random
// member whose marginal it will probe. Shared by Values and SamplePlan so
// the replayed plan consumes rng identically.
func neymanDraw(n, k int, rng *rand.Rand) (combin.Coalition, int) {
	s := combin.RandomSubsetOfSize(n, k, rng)
	members := s.Members()
	return s, members[rng.Intn(len(members))]
}

// Values implements Valuer.
func (a *StratifiedNeyman) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	gamma, totalSamples, pilot := a.sampleCounts(n)

	// Per-stratum accumulators of marginal contributions for each client.
	type accum struct {
		sum, sumSq float64
		count      int
	}
	strata := make([][]accum, n+1) // strata[k][i]
	for k := 1; k <= n; k++ {
		strata[k] = make([]accum, n)
	}
	// draw samples one marginal at a time: pick stratum k, sample S of
	// size k, pick i ∈ S, evaluate U(S) − U(S\{i}).
	drawInto := func(k int) {
		s, i := neymanDraw(n, k, ctx.RNG)
		d := o.U(s) - o.U(s.Without(i))
		acc := &strata[k][i]
		acc.sum += d
		acc.sumSq += d * d
		acc.count++
	}

	// Phase one: uniform pilot.
	for t := 0; t < pilot; t++ {
		k := 1 + t%n
		drawInto(k)
	}

	// Estimate per-stratum std dev (pooled across clients).
	stds := make([]float64, n+1)
	var stdSum float64
	for k := 1; k <= n; k++ {
		var sum, sumSq float64
		cnt := 0
		for i := 0; i < n; i++ {
			sum += strata[k][i].sum
			sumSq += strata[k][i].sumSq
			cnt += strata[k][i].count
		}
		if cnt > 1 {
			mean := sum / float64(cnt)
			v := sumSq/float64(cnt) - mean*mean
			if v < 0 {
				v = 0
			}
			stds[k] = math.Sqrt(v)
		}
		// Floor so no stratum starves entirely.
		if stds[k] < 1e-6 {
			stds[k] = 1e-6
		}
		stdSum += stds[k]
	}

	// Phase two: Neyman allocation of the remaining samples.
	remaining := totalSamples - pilot
	for k := 1; k <= n && remaining > 0; k++ {
		share := int(math.Round(float64(remaining) * stds[k] / stdSum))
		for t := 0; t < share && o.Evals() < gamma; t++ {
			drawInto(k)
		}
	}

	// Estimate: φ̂ᵢ = (1/n) Σ_k mean marginal of stratum k for client i.
	// A (client, stratum) cell with no samples falls back to the stratum's
	// pooled mean across clients — shrinkage that keeps the efficiency
	// mass instead of silently zeroing the cell (which would bias every
	// under-sampled client downward).
	pooled := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		var sum float64
		cnt := 0
		for i := 0; i < n; i++ {
			sum += strata[k][i].sum
			cnt += strata[k][i].count
		}
		if cnt > 0 {
			pooled[k] = sum / float64(cnt)
		}
	}
	phi := make(Values, n)
	for i := 0; i < n; i++ {
		var total float64
		for k := 1; k <= n; k++ {
			if c := strata[k][i].count; c > 0 {
				total += strata[k][i].sum / float64(c)
			} else {
				total += pooled[k]
			}
		}
		phi[i] = total / float64(n)
	}
	return phi, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
