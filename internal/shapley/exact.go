package shapley

import (
	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// ExactMC computes the exact Shapley value via the marginal-contribution
// scheme of Def. 3:
//
//	φᵢ = Σ_{S ⊆ N\{i}} [U(S∪{i}) − U(S)] / (n · C(n−1, |S|))
//
// It evaluates all 2ⁿ coalitions (the paper's "MC-Shapley" baseline).
type ExactMC struct{}

// Name implements Valuer.
func (ExactMC) Name() string { return "MC-Shapley" }

// Values implements Valuer.
func (ExactMC) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	u := allUtilities(o)
	phi := make(Values, n)
	combin.AllSubsets(n, func(s combin.Coalition) {
		us := u[s.Index()]
		size := s.Size()
		for i := 0; i < n; i++ {
			if s.Has(i) {
				continue
			}
			w := mcWeight(n, size)
			phi[i] += w * (u[s.With(i).Index()] - us)
		}
	})
	return phi, nil
}

// ExactCC computes the exact Shapley value via the complementary-
// contribution scheme of Def. 4:
//
//	φᵢ = Σ_{S ⊆ N\{i}} [U(S∪{i}) − U(N\(S∪{i}))] / (n · C(n−1, |S|))
type ExactCC struct{}

// Name implements Valuer.
func (ExactCC) Name() string { return "CC-exact" }

// Values implements Valuer.
func (ExactCC) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	u := allUtilities(o)
	full := combin.FullCoalition(n)
	phi := make(Values, n)
	combin.AllSubsets(n, func(s combin.Coalition) {
		size := s.Size()
		for i := 0; i < n; i++ {
			if s.Has(i) {
				continue
			}
			si := s.With(i)
			w := mcWeight(n, size)
			phi[i] += w * (u[si.Index()] - u[full.Minus(si).Index()])
		}
	})
	return phi, nil
}

// ExactPerm computes the exact Shapley value by enumerating all n!
// permutations and averaging marginal contributions (the paper's
// "Perm-Shapley" baseline). Mathematically identical to ExactMC but with
// the factorial-cost computation scheme; feasible only for small n.
type ExactPerm struct{}

// Name implements Valuer.
func (ExactPerm) Name() string { return "Perm-Shapley" }

// Values implements Valuer.
func (ExactPerm) Values(ctx *Context) (Values, error) {
	o := ctx.Oracle
	n := o.N()
	u := allUtilities(o)
	phi := make(Values, n)
	count := 0
	combin.ForEachPermutation(n, func(p []int) {
		count++
		var s combin.Coalition
		prev := u[s.Index()]
		for _, i := range p {
			s = s.With(i)
			cur := u[s.Index()]
			phi[i] += cur - prev
			prev = cur
		}
	})
	if count > 0 {
		inv := 1.0 / float64(count)
		for i := range phi {
			phi[i] *= inv
		}
	}
	return phi, nil
}

// allUtilities evaluates every coalition and returns a bitmask-indexed
// utility array, the fast path for the exact schemes.
func allUtilities(o utility.Source) []float64 {
	n := o.N()
	u := make([]float64, 1<<uint(n))
	combin.AllSubsets(n, func(s combin.Coalition) {
		u[s.Index()] = o.U(s)
	})
	return u
}
