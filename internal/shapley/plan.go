package shapley

import "fedshap/internal/combin"

// Prefetchable is implemented by algorithms whose evaluation set is (partly)
// known before sampling begins; the deterministic part can then be evaluated
// concurrently (utility.Oracle.Prefetch) before the sequential valuation
// pass.
type Prefetchable interface {
	// PrefetchPlan returns coalitions the algorithm will certainly
	// evaluate for a federation of n clients.
	PrefetchPlan(n int) []combin.Coalition
}

// PrefetchPlan returns the exhaustively evaluated strata of Alg. 3: every
// coalition of size ≤ k*. The sampled stratum P is RNG-dependent and not
// included.
func (a *IPSS) PrefetchPlan(n int) []combin.Coalition {
	kstar := a.KStar(n)
	if kstar < 0 {
		kstar = 0
	}
	var out []combin.Coalition
	for size := 0; size <= kstar && size <= n; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) { out = append(out, s) })
	}
	return out
}

// PrefetchPlan returns every coalition of size ≤ K (Alg. 2 evaluates all of
// them).
func (a *KGreedy) PrefetchPlan(n int) []combin.Coalition {
	k := a.K
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	var out []combin.Coalition
	for size := 0; size <= k; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) { out = append(out, s) })
	}
	return out
}

// PrefetchPlan returns all 2ⁿ coalitions.
func (ExactMC) PrefetchPlan(n int) []combin.Coalition {
	out := make([]combin.Coalition, 0, 1<<uint(n))
	combin.AllSubsets(n, func(s combin.Coalition) { out = append(out, s) })
	return out
}

// PrefetchPlan returns all 2ⁿ coalitions.
func (ExactCC) PrefetchPlan(n int) []combin.Coalition {
	return ExactMC{}.PrefetchPlan(n)
}

// PrefetchPlan returns all 2ⁿ coalitions.
func (ExactPerm) PrefetchPlan(n int) []combin.Coalition {
	return ExactMC{}.PrefetchPlan(n)
}

// PrefetchPlan returns all 2ⁿ coalitions (Banzhaf enumerates them too).
func (ExactBanzhaf) PrefetchPlan(n int) []combin.Coalition {
	return ExactMC{}.PrefetchPlan(n)
}
