package shapley

import (
	"math/rand"

	"fedshap/internal/combin"
)

// Evaluation planning: every sampler in this package draws its coalitions
// deterministically from its seed, so the sequence of oracle requests a run
// will make can be replayed *without* training anything. The replayed plan
// streams through a bounded evaluation pool (utility.Oracle.Prefetch /
// EvalBatch) and the unchanged sequential pass then reduces against a warm
// cache — bit-identical values, identical budget accounting, wall-clock
// divided by the worker count.
//
// Two levels of plannability exist:
//
//   - Prefetchable algorithms have a seed-free deterministic evaluation set
//     (the exact schemes, K-Greedy, leave-one-out, IPSS's certain strata).
//   - Planner algorithms additionally replay their seeded sampling, so the
//     full evaluation sequence — not just the certain part — is known
//     upfront. Control flow may depend on the running count of *distinct*
//     coalitions requested (the budget meter γ), which the replay simulates;
//     it may not depend on utility values. TMC (truncation compares
//     utilities) and Stratified-Neyman (phase-two allocation uses observed
//     variances) therefore return only the certain prefix of their sequence;
//     the sequential pass evaluates the utility-dependent remainder lazily.
//
// The simulated budget meter matches utility.RunView (and a fresh Oracle)
// exactly: each distinct coalition requested by the run counts once,
// whether the shared cache underneath is warm or cold. Plans are therefore
// computed for a fresh budget scope; running an algorithm against an
// already-charged raw Source remains supported but is not what plans
// describe.

// Prefetchable is implemented by algorithms whose evaluation set is (partly)
// known before sampling begins; the deterministic part can then be evaluated
// concurrently (utility.Oracle.Prefetch) before the sequential valuation
// pass.
type Prefetchable interface {
	// PrefetchPlan returns coalitions the algorithm will certainly
	// evaluate for a federation of n clients.
	PrefetchPlan(n int) []combin.Coalition
}

// Planner is implemented by samplers that can replay their seeded draw
// sequence. SamplePlan returns, in first-request order, the distinct
// coalitions a run with the given seed will ask the oracle for — the full
// sequence when control flow is utility-independent, or a certain prefix
// when later draws depend on observed utilities. The seed must be the one
// the run's Context was built with (shapley.NewContext(o, seed)).
type Planner interface {
	SamplePlan(n int, seed int64) []combin.Coalition
}

// PlanFor returns the deterministic evaluation plan of alg for a federation
// of n clients and a run seeded with seed, preferring the full seeded replay
// (Planner) over the certain-set fallback (Prefetchable). ok is false when
// the algorithm exposes no plan at all (the gradient-based baselines, whose
// cost is one traced training run, not oracle calls).
func PlanFor(alg Valuer, n int, seed int64) (plan []combin.Coalition, ok bool) {
	switch p := alg.(type) {
	case Planner:
		return p.SamplePlan(n, seed), true
	case Prefetchable:
		return p.PrefetchPlan(n), true
	}
	return nil, false
}

// planRNG builds the RNG a run's Context starts from (see NewContext), so a
// replay consumes the exact same stream.
func planRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// planRecorder simulates a fresh budget scope: it records every requested
// coalition once, in first-request order, and reports the distinct count —
// the same meter a budget-gated sampler reads via Source.Evals against a
// fresh oracle or a utility.RunView.
type planRecorder struct {
	seen map[combin.Coalition]struct{}
	plan []combin.Coalition
}

func newPlanRecorder() *planRecorder {
	return &planRecorder{seen: make(map[combin.Coalition]struct{})}
}

// visit records one oracle request and returns the distinct-request count.
func (r *planRecorder) visit(s combin.Coalition) int {
	if _, ok := r.seen[s]; !ok {
		r.seen[s] = struct{}{}
		r.plan = append(r.plan, s)
	}
	return len(r.plan)
}

// PrefetchPlan returns the exhaustively evaluated strata of Alg. 3: every
// coalition of size ≤ k*. The sampled stratum P is RNG-dependent; SamplePlan
// replays it too.
func (a *IPSS) PrefetchPlan(n int) []combin.Coalition {
	kstar := a.KStar(n)
	if kstar < 0 {
		kstar = 0
	}
	var out []combin.Coalition
	for size := 0; size <= kstar && size <= n; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) { out = append(out, s) })
	}
	return out
}

// SamplePlan implements Planner: the certain strata plus the replayed
// balanced sample of the k*+1 stratum — IPSS's complete evaluation set.
func (a *IPSS) SamplePlan(n int, seed int64) []combin.Coalition {
	_, strata, pset := a.samplePlan(n, planRNG(seed))
	rec := newPlanRecorder()
	for _, s := range strata {
		rec.visit(s)
	}
	for _, s := range pset {
		rec.visit(s)
	}
	return rec.plan
}

// PrefetchPlan returns every coalition of size ≤ K (Alg. 2 evaluates all of
// them).
func (a *KGreedy) PrefetchPlan(n int) []combin.Coalition {
	k := a.K
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	var out []combin.Coalition
	for size := 0; size <= k; size++ {
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) { out = append(out, s) })
	}
	return out
}

// PrefetchPlan returns all 2ⁿ coalitions.
func (ExactMC) PrefetchPlan(n int) []combin.Coalition {
	out := make([]combin.Coalition, 0, 1<<uint(n))
	combin.AllSubsets(n, func(s combin.Coalition) { out = append(out, s) })
	return out
}

// PrefetchPlan returns all 2ⁿ coalitions.
func (ExactCC) PrefetchPlan(n int) []combin.Coalition {
	return ExactMC{}.PrefetchPlan(n)
}

// PrefetchPlan returns all 2ⁿ coalitions.
func (ExactPerm) PrefetchPlan(n int) []combin.Coalition {
	return ExactMC{}.PrefetchPlan(n)
}

// PrefetchPlan returns all 2ⁿ coalitions (Banzhaf enumerates them too).
func (ExactBanzhaf) PrefetchPlan(n int) []combin.Coalition {
	return ExactMC{}.PrefetchPlan(n)
}

// PrefetchPlan returns the grand coalition and every leave-one-out
// coalition, in evaluation order.
func (LeaveOneOut) PrefetchPlan(n int) []combin.Coalition {
	full := combin.FullCoalition(n)
	out := make([]combin.Coalition, 0, n+1)
	out = append(out, full)
	for i := 0; i < n; i++ {
		out = append(out, full.Without(i))
	}
	return out
}

// SamplePlan implements Planner by replaying Alg. 1's stratum sampling and
// the pairing pass — Stratified's complete evaluation set.
func (a *Stratified) SamplePlan(n int, seed int64) []combin.Coalition {
	strata := a.draw(n, planRNG(seed))
	sampled := sampledSet(strata)
	rec := newPlanRecorder()
	for k := 1; k <= n; k++ {
		for _, s := range strata[k] {
			rec.visit(s)
		}
	}
	rec.visit(combin.Empty)
	a.forEachPair(n, strata, sampled, func(i, k int, s, pair combin.Coalition) {
		rec.visit(s)
		rec.visit(pair)
	})
	return rec.plan
}

// SamplePlan implements Planner: the uniform pilot phase is replayed in
// full; the Neyman-allocated second phase depends on observed variances and
// is left to the sequential pass.
func (a *StratifiedNeyman) SamplePlan(n int, seed int64) []combin.Coalition {
	_, _, pilot := a.sampleCounts(n)
	rng := planRNG(seed)
	rec := newPlanRecorder()
	for t := 0; t < pilot; t++ {
		k := 1 + t%n
		s, i := neymanDraw(n, k, rng)
		rec.visit(s)
		rec.visit(s.Without(i))
	}
	return rec.plan
}

// SamplePlan implements Planner: U(N), U(∅) and the first prefix of the
// first permutation are certain; everything after depends on the truncation
// comparisons against observed utilities and is left to the sequential pass.
func (a *TMC) SamplePlan(n int, seed int64) []combin.Coalition {
	rec := newPlanRecorder()
	rec.visit(combin.FullCoalition(n))
	evals := rec.visit(combin.Empty)
	if a.Gamma > 0 && evals >= a.Gamma {
		return rec.plan // budget exhausted before any permutation
	}
	perm := combin.RandomPermutation(n, planRNG(seed))
	rec.visit(combin.NewCoalition(perm[0]))
	return rec.plan
}

// SamplePlan implements Planner by replaying the draw loop — CC-Shapley's
// complete evaluation set.
func (a *CCShapley) SamplePlan(n int, seed int64) []combin.Coalition {
	rec := newPlanRecorder()
	a.forEachDraw(n, 0, planRNG(seed), func(k int, s, comp combin.Coalition) int {
		rec.visit(s)
		return rec.visit(comp)
	})
	return rec.plan
}

// SamplePlan implements Planner by replaying the group-testing draw loop —
// Extended-GTB's complete evaluation set.
func (a *GTB) SamplePlan(n int, seed int64) []combin.Coalition {
	rec := newPlanRecorder()
	rec.visit(combin.FullCoalition(n))
	evals := rec.visit(combin.Empty)
	if n == 1 {
		return rec.plan
	}
	a.forEachDraw(n, evals, planRNG(seed), func(s combin.Coalition) int {
		return rec.visit(s)
	})
	return rec.plan
}

// SamplePlan implements Planner by replaying the Monte-Carlo toggle draws —
// MC-Banzhaf's complete evaluation set.
func (a *MCBanzhaf) SamplePlan(n int, seed int64) []combin.Coalition {
	rec := newPlanRecorder()
	a.forEachDraw(n, 0, planRNG(seed), func(i int, with, without combin.Coalition) int {
		rec.visit(with)
		return rec.visit(without)
	})
	return rec.plan
}

// SamplePlan implements Planner by replaying the permutation walks —
// Perm-MC's complete evaluation set.
func (a *PermSampling) SamplePlan(n int, seed int64) []combin.Coalition {
	rec := newPlanRecorder()
	evals := rec.visit(combin.Empty)
	a.forEachPerm(n, evals, planRNG(seed), func(perm []int) int {
		var s combin.Coalition
		last := 0
		for _, i := range perm {
			s = s.With(i)
			last = rec.visit(s)
		}
		return last
	})
	return rec.plan
}
