// Package flnet runs the federated training loop over a real network
// transport. The paper's implementation simulates cross-silo data providers
// as separate processes talking gRPC; this package reproduces that substrate
// with stdlib networking: each client runs in its own goroutine behind a
// net.Conn (an in-memory pipe or a real TCP loopback socket) and exchanges
// gob-encoded parameter messages with the coordinator.
//
// Training is bit-identical to the in-process engine (fl.Train) given the
// same Config — the transport changes the plumbing, not the math — which
// the package tests assert. Valuation experiments use the in-process engine
// for speed; this package exists so the distributed code path is exercised
// and available.
package flnet

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"

	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/model"
	"fedshap/internal/tensor"
)

// Transport selects how coordinator and clients are wired together.
type Transport int

const (
	// Pipe uses synchronous in-memory net.Pipe connections.
	Pipe Transport = iota
	// TCP uses real loopback TCP sockets.
	TCP
)

// globalMsg is the coordinator → client broadcast for one round.
type globalMsg struct {
	Round  int
	Params []float64
	// Done tells the client to exit instead of training.
	Done bool
}

// updateMsg is the client → coordinator reply.
type updateMsg struct {
	Client int
	Round  int
	Delta  []float64
}

// Train runs federated training across networked clients and returns the
// final model. Only parametric models can be trained over the wire (tree
// ensembles ship no parameter vector); Fitter models return an error.
func Train(factory model.Factory, clients []*dataset.Dataset, cfg fl.Config, transport Transport) (model.Model, error) {
	probe := factory(cfg.Seed)
	global, ok := probe.(model.Parametric)
	if !ok {
		return nil, fmt.Errorf("flnet: model %T is not parametric; networked FedAvg needs parameter vectors", probe)
	}

	n := len(clients)
	weights := fedAvgWeights(clients, cfg.WeightBySize)
	anyData := false
	for _, w := range weights {
		if w > 0 {
			anyData = true
		}
	}
	if !anyData {
		return global, nil
	}

	conns, cleanup, err := dial(n, transport)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Launch client workers.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if weights[i] == 0 {
			continue
		}
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			clientLoop(id, conn, clients[id], factory, cfg)
		}(i, conns[i].client)
	}

	params := global.Params()
	encs := make([]*gob.Encoder, n)
	decs := make([]*gob.Decoder, n)
	for i := range conns {
		if weights[i] == 0 {
			continue
		}
		encs[i] = gob.NewEncoder(conns[i].server)
		decs[i] = gob.NewDecoder(conns[i].server)
	}

	for round := 0; round < cfg.Rounds; round++ {
		// Broadcast the global model.
		for i := 0; i < n; i++ {
			if weights[i] == 0 {
				continue
			}
			if err := encs[i].Encode(globalMsg{Round: round, Params: params}); err != nil {
				return nil, fmt.Errorf("flnet: broadcast to client %d: %w", i, err)
			}
		}
		// Collect updates; order of arrival varies, so gather then apply
		// in client order for determinism.
		updates := make([][]float64, n)
		type recv struct {
			msg updateMsg
			err error
			id  int
		}
		ch := make(chan recv, n)
		for i := 0; i < n; i++ {
			if weights[i] == 0 {
				continue
			}
			go func(id int) {
				var m updateMsg
				err := decs[id].Decode(&m)
				ch <- recv{m, err, id}
			}(i)
		}
		for i := 0; i < n; i++ {
			if weights[i] == 0 {
				continue
			}
			r := <-ch
			if r.err != nil {
				return nil, fmt.Errorf("flnet: receive from client %d: %w", r.id, r.err)
			}
			if r.msg.Round != round {
				return nil, fmt.Errorf("flnet: client %d answered round %d during round %d", r.id, r.msg.Round, round)
			}
			updates[r.msg.Client] = r.msg.Delta
		}
		// Deterministic aggregation in client-index order.
		agg := tensor.NewVector(len(params))
		for i := 0; i < n; i++ {
			if updates[i] == nil {
				continue
			}
			agg.AddScaled(weights[i], tensor.Vector(updates[i]))
		}
		tensor.Vector(params).AddScaled(1, agg)
	}
	// Tell clients to exit.
	for i := 0; i < n; i++ {
		if weights[i] == 0 {
			continue
		}
		_ = encs[i].Encode(globalMsg{Done: true})
	}
	wg.Wait()

	global.SetParams(params)
	return global, nil
}

// clientLoop is the data provider's side: receive global parameters, train
// locally, send back the delta.
func clientLoop(id int, conn net.Conn, ds *dataset.Dataset, factory model.Factory, cfg fl.Config) {
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	local := factory(cfg.Seed).(model.Parametric)
	for {
		var g globalMsg
		if err := dec.Decode(&g); err != nil {
			return
		}
		if g.Done {
			return
		}
		params := tensor.Vector(g.Params)
		local.SetParams(params)
		// Same per-client, per-round seeding as the in-process engine so
		// the transports agree bit for bit.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(g.Round)*1009 + int64(id)*9176))
		for e := 0; e < cfg.LocalEpochs; e++ {
			local.TrainEpoch(ds, cfg.LR, rng)
		}
		delta := local.Params()
		delta.AddScaled(-1, params)
		if cfg.Algorithm == fl.FedProx && cfg.ProxMu > 0 {
			delta.Scale(1 / (1 + cfg.ProxMu))
		}
		if err := enc.Encode(updateMsg{Client: id, Round: g.Round, Delta: delta}); err != nil {
			return
		}
	}
}

// connPair holds both ends of one coordinator↔client link.
type connPair struct {
	server net.Conn
	client net.Conn
}

// dial wires up n links over the chosen transport.
func dial(n int, transport Transport) ([]connPair, func(), error) {
	pairs := make([]connPair, n)
	var closers []func()
	cleanup := func() {
		for _, c := range closers {
			c()
		}
	}
	switch transport {
	case Pipe:
		for i := 0; i < n; i++ {
			s, c := net.Pipe()
			pairs[i] = connPair{server: s, client: c}
			closers = append(closers, func() { s.Close(); c.Close() })
		}
		return pairs, cleanup, nil
	case TCP:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, cleanup, fmt.Errorf("flnet: listen: %w", err)
		}
		closers = append(closers, func() { ln.Close() })

		type accepted struct {
			conn net.Conn
			err  error
		}
		acceptCh := make(chan accepted, n)
		go func() {
			for i := 0; i < n; i++ {
				conn, err := ln.Accept()
				acceptCh <- accepted{conn, err}
			}
		}()
		var dialed []net.Conn
		for i := 0; i < n; i++ {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				cleanup()
				return nil, func() {}, fmt.Errorf("flnet: dial: %w", err)
			}
			dialed = append(dialed, conn)
			closers = append(closers, func() { conn.Close() })
		}
		// Pair accepted connections with dialers by a handshake byte so
		// ordering is well-defined.
		serverSide := make([]net.Conn, n)
		for i := 0; i < n; i++ {
			if _, err := dialed[i].Write([]byte{byte(i)}); err != nil {
				cleanup()
				return nil, func() {}, fmt.Errorf("flnet: handshake write: %w", err)
			}
		}
		for i := 0; i < n; i++ {
			a := <-acceptCh
			if a.err != nil {
				cleanup()
				return nil, func() {}, fmt.Errorf("flnet: accept: %w", a.err)
			}
			buf := make([]byte, 1)
			if _, err := a.conn.Read(buf); err != nil {
				cleanup()
				return nil, func() {}, fmt.Errorf("flnet: handshake read: %w", err)
			}
			serverSide[int(buf[0])] = a.conn
			closers = append(closers, func() { a.conn.Close() })
		}
		for i := 0; i < n; i++ {
			pairs[i] = connPair{server: serverSide[i], client: dialed[i]}
		}
		return pairs, cleanup, nil
	default:
		return nil, cleanup, fmt.Errorf("flnet: unknown transport %d", transport)
	}
}

// fedAvgWeights mirrors the in-process engine's weighting.
func fedAvgWeights(clients []*dataset.Dataset, bySize bool) []float64 {
	w := make([]float64, len(clients))
	var total float64
	for i, ds := range clients {
		if ds == nil || ds.Len() == 0 {
			continue
		}
		if bySize {
			w[i] = float64(ds.Len())
		} else {
			w[i] = 1
		}
		total += w[i]
	}
	if total > 0 {
		for i := range w {
			w[i] /= total
		}
	}
	return w
}

// sortedClientIDs returns the participating client ids in order (exported
// for tests of deterministic aggregation).
func sortedClientIDs(weights []float64) []int {
	var ids []int
	for i, w := range weights {
		if w > 0 {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	return ids
}
