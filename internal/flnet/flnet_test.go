package flnet

import (
	"math"
	"testing"

	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/model"
)

func femClients(n, per int, seed int64) ([]*dataset.Dataset, *dataset.Dataset) {
	cfg := dataset.DefaultFEMNISTLike(n, per, seed)
	cfg.Classes = 4
	return dataset.FEMNISTLike(cfg)
}

func mlpFactory(dim, classes int) model.Factory {
	return func(seed int64) model.Model { return model.NewMLP(dim, 8, classes, seed) }
}

// The networked engine must agree bit-for-bit with the in-process engine on
// both transports — the transport changes plumbing, not math.
func TestNetworkedMatchesInProcess(t *testing.T) {
	clients, _ := femClients(3, 30, 1)
	cfg := fl.Config{Rounds: 3, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	f := mlpFactory(clients[0].Dim(), 4)
	want := fl.Train(f, clients, cfg).(model.Parametric).Params()

	for _, tr := range []Transport{Pipe, TCP} {
		got, err := Train(f, clients, cfg, tr)
		if err != nil {
			t.Fatalf("transport %d: %v", tr, err)
		}
		g := got.(model.Parametric).Params()
		for i := range want {
			if math.Abs(g[i]-want[i]) > 1e-12 {
				t.Fatalf("transport %d deviates from in-process at param %d: %v vs %v",
					tr, i, g[i], want[i])
			}
		}
	}
}

func TestNetworkedFedProxMatchesInProcess(t *testing.T) {
	clients, _ := femClients(3, 25, 2)
	cfg := fl.Config{
		Algorithm: fl.FedProx, ProxMu: 0.5,
		Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 9, WeightBySize: true,
	}
	f := mlpFactory(clients[0].Dim(), 4)
	want := fl.Train(f, clients, cfg).(model.Parametric).Params()
	got, err := Train(f, clients, cfg, Pipe)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(model.Parametric).Params()
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("FedProx over pipe deviates at param %d", i)
		}
	}
}

func TestNetworkedSkipsEmptyClients(t *testing.T) {
	clients, test := femClients(3, 40, 3)
	clients[1] = clients[1].Empty("rider")
	cfg := fl.Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 7, WeightBySize: true}
	f := mlpFactory(clients[0].Dim(), 4)
	m, err := Train(f, clients, cfg, Pipe)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.Accuracy(m, test); acc < 0.4 {
		t.Errorf("accuracy with empty client %v", acc)
	}
	// Must equal the in-process result on the same inputs.
	want := fl.Train(f, clients, cfg).(model.Parametric).Params()
	got := m.(model.Parametric).Params()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("deviation at param %d", i)
		}
	}
}

func TestNetworkedAllEmptyReturnsInit(t *testing.T) {
	clients, _ := femClients(2, 10, 4)
	empty := []*dataset.Dataset{clients[0].Empty("a"), clients[1].Empty("b")}
	cfg := fl.DefaultConfig(5)
	f := mlpFactory(clients[0].Dim(), 4)
	m, err := Train(f, empty, cfg, Pipe)
	if err != nil {
		t.Fatal(err)
	}
	init := f(cfg.Seed).(model.Parametric).Params()
	got := m.(model.Parametric).Params()
	for i := range init {
		if got[i] != init[i] {
			t.Fatalf("all-empty federation changed parameters")
		}
	}
}

func TestNetworkedRejectsFitterModels(t *testing.T) {
	clients, _ := femClients(2, 10, 5)
	f := func(seed int64) model.Model { return model.NewXGB(4, model.DefaultXGBConfig(), seed) }
	if _, err := Train(f, clients, fl.DefaultConfig(1), Pipe); err == nil {
		t.Errorf("tree model over the wire should be rejected")
	}
}

func TestSortedClientIDs(t *testing.T) {
	ids := sortedClientIDs([]float64{0.5, 0, 0.5})
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("ids = %v", ids)
	}
}

func TestManyClientsTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP fan-out in short mode")
	}
	clients, _ := femClients(8, 15, 6)
	cfg := fl.Config{Rounds: 2, LocalEpochs: 1, LR: 0.05, Seed: 11, WeightBySize: true}
	f := mlpFactory(clients[0].Dim(), 4)
	want := fl.Train(f, clients, cfg).(model.Parametric).Params()
	got, err := Train(f, clients, cfg, TCP)
	if err != nil {
		t.Fatal(err)
	}
	g := got.(model.Parametric).Params()
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("8-client TCP deviates at param %d", i)
		}
	}
}
