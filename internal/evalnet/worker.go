package evalnet

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"fedshap/internal/utility"
)

// Worker is the remote-evaluation daemon: it dials a coordinator, receives
// problem specs and coalition batches, trains locally and streams results
// back. cmd/fedvalworker wraps it; tests drive it in-process.
type Worker struct {
	// Name identifies the worker in the coordinator's fleet listing.
	Name string
	// Capacity bounds concurrent evaluations (<= 0 selects GOMAXPROCS);
	// it is announced to the coordinator, which never exceeds it.
	Capacity int
	// BuildEval constructs the evaluation function for a spec, called once
	// per spec and cached. The standard builder (valserve.WorkerEval)
	// rebuilds the problem from the spec's request and evaluates through a
	// fresh oracle, so repeated coalitions within a job are served from
	// the worker's own cache.
	BuildEval func(spec ProblemSpec) (utility.EvalFunc, error)
}

// workerSpec is one cached problem on the worker.
type workerSpec struct {
	spec      ProblemSpec
	once      sync.Once
	eval      utility.EvalFunc
	err       error
	cancelled atomic.Bool
}

// Serve speaks the protocol on conn until the connection breaks or ctx is
// done (which closes the connection). Every received task is answered —
// with a utility, or with an error the coordinator converts into a local
// fallback — so the coordinator's in-flight accounting always drains.
func (w *Worker) Serve(ctx context.Context, conn net.Conn) error {
	capacity := w.Capacity
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(envelope{Hello: &helloMsg{Proto: protoVersion, Name: w.Name, Capacity: capacity}}); err != nil {
		return fmt.Errorf("evalnet: hello: %w", err)
	}
	var ack envelope
	if err := dec.Decode(&ack); err != nil {
		return fmt.Errorf("evalnet: hello ack: %w", err)
	}
	if ack.Hello == nil || ack.Hello.Proto != protoVersion {
		return fmt.Errorf("evalnet: coordinator rejected handshake")
	}

	// ctx cancellation unblocks the decoder by closing the connection.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	var sendMu sync.Mutex
	send := func(e envelope) {
		sendMu.Lock()
		defer sendMu.Unlock()
		_ = enc.Encode(e) // a broken link also breaks the read loop below
	}

	specs := make(map[string]*workerSpec)
	sem := make(chan struct{}, capacity)
	var wg sync.WaitGroup
	for {
		var e envelope
		if err := dec.Decode(&e); err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("evalnet: connection lost: %w", err)
		}
		switch {
		case e.Spec != nil:
			if _, ok := specs[e.Spec.Spec.ID]; !ok {
				specs[e.Spec.Spec.ID] = &workerSpec{spec: e.Spec.Spec}
			}
		case e.Cancel != nil:
			// Mark, then drop: in-flight goroutines still hold the pointer
			// and skip via the flag, while the map releases the rebuilt
			// problem (datasets + oracle cache) so a long-lived worker
			// doesn't accumulate one federation per served job. A stale
			// task arriving after the drop is answered "unknown spec",
			// which the coordinator turns into a local fallback.
			if ws, ok := specs[e.Cancel.SpecID]; ok {
				ws.cancelled.Store(true)
				delete(specs, e.Cancel.SpecID)
			}
		case e.Task != nil:
			ws := specs[e.Task.SpecID]
			for _, tw := range e.Task.Tasks {
				wg.Add(1)
				go func(tw taskWire) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					send(envelope{Result: w.run(ws, e.Task.SpecID, tw)})
				}(tw)
			}
		}
	}
}

// run computes one assignment, converting every failure mode (unknown or
// cancelled spec, build error, evaluation panic) into an error reply.
func (w *Worker) run(ws *workerSpec, specID string, tw taskWire) (res *resultMsg) {
	res = &resultMsg{SpecID: specID, TaskID: tw.ID, Lo: tw.Lo, Hi: tw.Hi}
	defer func() {
		if r := recover(); r != nil {
			res.U = 0
			res.Err = fmt.Sprintf("evaluation panic: %v", r)
		}
	}()
	if ws == nil {
		res.Err = "unknown spec"
		return res
	}
	if ws.cancelled.Load() {
		res.Err = "spec cancelled"
		return res
	}
	ws.once.Do(func() {
		build := w.BuildEval
		if build == nil {
			ws.err = fmt.Errorf("evalnet: worker has no problem builder")
			return
		}
		ws.eval, ws.err = build(ws.spec)
	})
	if ws.err != nil {
		res.Err = ws.err.Error()
		return res
	}
	res.U = ws.eval(tw.coalition())
	return res
}

// Dial connects to a coordinator at addr and serves until the link breaks
// or ctx is done, returning the terminal error. Reconnection policy is the
// caller's (cmd/fedvalworker loops with backoff).
func (w *Worker) Dial(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return w.Serve(ctx, conn)
}
