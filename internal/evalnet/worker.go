package evalnet

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// Evaluator is a worker-side problem evaluator. Eval computes one
// coalition's utility; Warm, when non-nil, pre-populates the evaluator's
// cache with utilities the coordinator shipped (warm-start), returning
// how many were new; Cached, when non-nil, reports whether a coalition
// is already in the cache — answers that were never trained are flagged
// on the wire so they stay out of the coordinator's latency tracking.
// valserve.WorkerEvaluatorWith builds all three from a fresh per-spec
// oracle.
type Evaluator struct {
	Eval   utility.EvalFunc
	Warm   func(entries map[combin.Coalition]float64) int
	Cached func(s combin.Coalition) bool
}

// Worker is the remote-evaluation daemon: it dials a coordinator, receives
// problem specs and coalition batches, trains locally and streams results
// back. cmd/fedvalworker wraps it; tests drive it in-process.
type Worker struct {
	// Name identifies the worker in the coordinator's fleet listing.
	Name string
	// Capacity bounds concurrent evaluations (<= 0 selects GOMAXPROCS);
	// it is announced to the coordinator, which never exceeds it.
	Capacity int
	// Build constructs the evaluator for a spec, called once per spec and
	// cached. The standard builder (valserve.WorkerEvaluatorWith) rebuilds
	// the problem from the spec's request and evaluates through a fresh
	// oracle, so repeated coalitions within a job are served from the
	// worker's own cache and coordinator-shipped warm utilities are never
	// retrained. When nil, BuildEval is used instead (without warm-start).
	Build func(spec ProblemSpec) (Evaluator, error)
	// BuildEval is the plain-EvalFunc variant of Build, kept for builders
	// that have no cache to warm. Ignored when Build is set.
	BuildEval func(spec ProblemSpec) (utility.EvalFunc, error)
	// DisableWarmStart drops coordinator-shipped warm utilities instead of
	// applying them — every assigned coalition is then trained locally
	// (fedvalworker -warm=false; mainly for debugging and benchmarks).
	DisableWarmStart bool
	// Observe, when non-nil, is invoked after every answered assignment
	// with its outcome ("fresh", "warm" or "error") and wall time — the
	// seam cmd/fedvalworker's fedvalworker_* metric series hang off.
	Observe func(outcome string, seconds float64)
	// Logger receives structured connection/spec lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
}

// logger resolves the configured logger.
func (w *Worker) logger() *slog.Logger {
	if w.Logger != nil {
		return w.Logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// build resolves the configured builder.
func (w *Worker) build(spec ProblemSpec) (Evaluator, error) {
	if w.Build != nil {
		return w.Build(spec)
	}
	if w.BuildEval != nil {
		eval, err := w.BuildEval(spec)
		return Evaluator{Eval: eval}, err
	}
	return Evaluator{}, fmt.Errorf("evalnet: worker has no problem builder")
}

// workerSpec is one cached problem on the worker.
type workerSpec struct {
	spec      ProblemSpec
	warm      map[combin.Coalition]float64
	once      sync.Once
	eval      Evaluator
	err       error
	cancelled atomic.Bool
}

// Serve speaks the protocol on conn until the connection breaks or ctx is
// done (which closes the connection). Every received task is answered —
// with a utility, or with an error the coordinator converts into a local
// fallback — so the coordinator's in-flight accounting always drains.
func (w *Worker) Serve(ctx context.Context, conn net.Conn) error {
	capacity := w.Capacity
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(envelope{Hello: &helloMsg{Proto: protoVersion, Name: w.Name, Capacity: capacity}}); err != nil {
		return fmt.Errorf("evalnet: hello: %w", err)
	}
	var ack envelope
	if err := dec.Decode(&ack); err != nil {
		return fmt.Errorf("evalnet: hello ack: %w", err)
	}
	if ack.Hello == nil || ack.Hello.Proto != protoVersion {
		return fmt.Errorf("evalnet: coordinator rejected handshake")
	}

	// ctx cancellation unblocks the decoder by closing the connection.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	log := w.logger().With("worker", w.Name, "coordinator", conn.RemoteAddr().String())
	log.Info("connected", "capacity", capacity)

	var sendMu sync.Mutex
	send := func(e envelope) {
		sendMu.Lock()
		defer sendMu.Unlock()
		_ = enc.Encode(e) // a broken link also breaks the read loop below
	}

	specs := make(map[string]*workerSpec)
	sem := make(chan struct{}, capacity)
	var wg sync.WaitGroup
	for {
		var e envelope
		if err := dec.Decode(&e); err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("evalnet: connection lost: %w", err)
		}
		switch {
		case e.Spec != nil:
			if _, ok := specs[e.Spec.Spec.ID]; !ok {
				ws := &workerSpec{spec: e.Spec.Spec}
				if !w.DisableWarmStart && len(e.Spec.Warm) > 0 {
					ws.warm = make(map[combin.Coalition]float64, len(e.Spec.Warm))
					for _, entry := range e.Spec.Warm {
						ws.warm[combin.FromWords(entry.Lo, entry.Hi)] = entry.U
					}
				}
				specs[e.Spec.Spec.ID] = ws
				log.Info("spec received", "job", e.Spec.Spec.ID, "warm", len(e.Spec.Warm))
			}
		case e.Cancel != nil:
			// Mark, then drop: in-flight goroutines still hold the pointer
			// and skip via the flag, while the map releases the rebuilt
			// problem (datasets + oracle cache) so a long-lived worker
			// doesn't accumulate one federation per served job. A stale
			// task arriving after the drop is answered "unknown spec",
			// which the coordinator turns into a local fallback.
			if ws, ok := specs[e.Cancel.SpecID]; ok {
				ws.cancelled.Store(true)
				delete(specs, e.Cancel.SpecID)
			}
		case e.Task != nil:
			ws := specs[e.Task.SpecID]
			for _, tw := range e.Task.Tasks {
				wg.Add(1)
				go func(tw taskWire) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					send(envelope{Result: w.run(ws, e.Task.SpecID, tw)})
				}(tw)
			}
		}
	}
}

// run computes one assignment, converting every failure mode (unknown or
// cancelled spec, build error, evaluation panic) into an error reply. The
// first run of a spec builds its evaluator and applies the warm-start
// utilities shipped with the spec, so a warm coalition is answered from
// cache without training.
func (w *Worker) run(ws *workerSpec, specID string, tw taskWire) (res *resultMsg) {
	res = &resultMsg{SpecID: specID, TaskID: tw.ID, Lo: tw.Lo, Hi: tw.Hi}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res.U = 0
			res.Err = fmt.Sprintf("evaluation panic: %v", r)
		}
		res.Nanos = time.Since(start).Nanoseconds()
		if w.Observe != nil {
			outcome := "fresh"
			switch {
			case res.Err != "":
				outcome = "error"
			case res.Warm:
				outcome = "warm"
			}
			w.Observe(outcome, time.Since(start).Seconds())
		}
	}()
	if ws == nil {
		res.Err = "unknown spec"
		return res
	}
	if ws.cancelled.Load() {
		res.Err = "spec cancelled"
		return res
	}
	ws.once.Do(func() {
		ws.eval, ws.err = w.build(ws.spec)
		if ws.err == nil && ws.eval.Warm != nil && len(ws.warm) > 0 {
			ws.eval.Warm(ws.warm)
		}
		ws.warm = nil // applied (or unusable); release the snapshot
	})
	if ws.err != nil {
		res.Err = ws.err.Error()
		return res
	}
	coal := tw.coalition()
	if ws.eval.Cached != nil && ws.eval.Cached(coal) {
		res.Warm = true // answered from cache: no training happened
	}
	res.U = ws.eval.Eval(coal)
	return res
}

// Dial connects to a coordinator at addr and serves until the link breaks
// or ctx is done, returning the terminal error. Reconnection policy is the
// caller's (cmd/fedvalworker loops with backoff).
func (w *Worker) Dial(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return w.Serve(ctx, conn)
}
