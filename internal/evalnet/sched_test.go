package evalnet

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// newLocalListener opens a loopback listener for tests that build their
// coordinator with explicit scheduler tuning.
func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// dialCoordinator opens a raw worker connection for tests that drive a
// Worker directly (custom Build, warm-start opt-out).
func dialCoordinator(t *testing.T, addr net.Addr) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// additiveTable materialises the additive test game over the full power
// set, the warm snapshot a coordinator-side store would hold.
func additiveTable(n int) map[combin.Coalition]float64 {
	out := make(map[combin.Coalition]float64)
	combin.AllSubsets(n, func(s combin.Coalition) { out[s] = additive(s) })
	return out
}

// oracleBuilder builds a worker evaluator backed by its own oracle — the
// shape valserve.WorkerEvaluatorWith produces — counting the evaluations
// that actually train (cache misses), and optionally slowing them down.
func oracleBuilder(fresh *atomic.Int64, delay time.Duration) func(ProblemSpec) (Evaluator, error) {
	return func(spec ProblemSpec) (Evaluator, error) {
		oracle := utility.NewOracle(spec.N, func(s combin.Coalition) float64 {
			if fresh != nil {
				fresh.Add(1)
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			return additive(s)
		})
		return Evaluator{Eval: oracle.U, Warm: oracle.Warm, Cached: oracle.Cached}, nil
	}
}

// TestStragglerRedispatch runs a deliberately lopsided fleet — one fast
// worker, one slow — with speculation enabled: near the end of the job the
// slow worker's in-flight coalitions must be speculatively re-dispatched
// to the idle fast worker, the first result wins, and the duplicate that
// the straggler eventually answers is discarded without double-charging
// the budget meter or the fleet's completion accounting.
func TestStragglerRedispatch(t *testing.T) {
	c := NewCoordinatorWith(SchedulerConfig{
		SpeculateFactor: 1.5,
		SpeculateMinAge: 10 * time.Millisecond,
		SpeculateTick:   5 * time.Millisecond,
	})
	ln := newLocalListener(t)
	go func() { _ = c.Serve(ln) }()
	t.Cleanup(func() { _ = c.Close() })
	addr := ln.Addr()

	var fast, slow atomic.Int64
	startWorker(t, addr, "fast", 2, gameBuilder(&fast, time.Millisecond))
	startWorker(t, addr, "slow", 2, gameBuilder(&slow, 80*time.Millisecond))
	waitWorkers(t, c, 2)

	var localCalls atomic.Int64
	n := 6
	oracle, _ := newSessionOracle(t, c, context.Background(), n, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})

	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 8); err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if got := oracle.U(s); got != additive(s) {
			t.Fatalf("U(%s) = %v, want %v", s, got, additive(s))
		}
	}
	if oracle.Evals() != len(all) {
		t.Errorf("fresh evals = %d, want %d (lost or double-counted work)", oracle.Evals(), len(all))
	}
	if localCalls.Load() != 0 {
		t.Errorf("local fallback ran %d times with a healthy fleet", localCalls.Load())
	}

	// Let the straggler's superseded duplicates finish and stream their
	// stale results back: the accounting must not move.
	time.Sleep(200 * time.Millisecond)
	stats := c.Stats()
	if stats.Redispatches == 0 {
		t.Error("no speculative re-dispatch despite an 80x straggler")
	}
	// The duplicate must actually reach the relief worker and answer
	// first — a re-dispatch that is counted but never flushed to the wire
	// would leave wins at zero (regression guard: speculative batches
	// were once dropped when the straggler scan found no further victim).
	if stats.RedispatchWins == 0 {
		t.Error("speculative copies never beat an 80x straggler to the result")
	}
	var completed int64
	for _, w := range stats.Workers {
		completed += w.Completed
		if w.Name == "slow" && w.EWMAMillis < 1 {
			t.Errorf("slow worker EWMA = %vms, want >= 1ms", w.EWMAMillis)
		}
	}
	if completed != int64(len(all)) {
		t.Errorf("fleet completed %d evaluations, want %d (duplicates must be discarded, not counted)",
			completed, len(all))
	}
	if fast.Load()+slow.Load() < int64(len(all)) {
		t.Errorf("workers trained %d coalitions, want >= %d", fast.Load()+slow.Load(), len(all))
	}
}

// TestWarmStartShipsCache gives the session a warm snapshot covering the
// whole game — the coordinator-side cache a recycled fleet would find —
// and checks an attaching worker answers every coalition from the shipped
// utilities without one fresh training run.
func TestWarmStartShipsCache(t *testing.T) {
	c, addr := startCoordinator(t)
	n := 5
	warm := additiveTable(n)

	var freshOnWorker atomic.Int64
	w := &Worker{Name: "recycled", Capacity: 4, Build: oracleBuilder(&freshOnWorker, 0)}
	conn := dialCoordinator(t, addr)
	go func() { _ = w.Serve(context.Background(), conn) }()
	waitWorkers(t, c, 1)

	var localCalls atomic.Int64
	oracle := utility.NewOracle(n, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})
	var sess *Session
	oracle.WrapEval(func(inner utility.EvalFunc) utility.EvalFunc {
		sess = c.NewSessionWith(context.Background(), SessionConfig{
			Spec:         ProblemSpec{ID: "warm-spec", N: n},
			Local:        inner,
			LocalLimit:   8,
			WarmSnapshot: func() map[combin.Coalition]float64 { return warm },
		})
		return sess.Eval
	})
	t.Cleanup(sess.Close)

	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 4); err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if got := oracle.U(s); got != additive(s) {
			t.Fatalf("U(%s) = %v, want %v", s, got, additive(s))
		}
	}
	// Every utility flowed back remotely and was charged exactly once on
	// the coordinator side...
	if oracle.Evals() != len(all) {
		t.Errorf("coordinator fresh evals = %d, want %d", oracle.Evals(), len(all))
	}
	// ...but the warm worker never trained anything.
	if got := freshOnWorker.Load(); got != 0 {
		t.Errorf("warm worker ran %d fresh evaluations, want 0", got)
	}
	if localCalls.Load() != 0 {
		t.Errorf("local fallback ran %d times", localCalls.Load())
	}
	// Cache-hit answers carry no training signal: the worker's latency
	// EWMA must stay unset, or a warm fleet would look microsecond-fast
	// and misclassify every real training as a straggler.
	for _, w := range c.Workers() {
		if w.EWMAMillis != 0 {
			t.Errorf("worker %s EWMA = %vms from warm answers, want 0", w.Name, w.EWMAMillis)
		}
	}
}

// TestWarmStartDisabled checks the worker-side opt-out: with
// DisableWarmStart the shipped utilities are dropped and every coalition
// is trained locally on the worker.
func TestWarmStartDisabled(t *testing.T) {
	c, addr := startCoordinator(t)
	n := 4
	warm := additiveTable(n)

	var freshOnWorker atomic.Int64
	w := &Worker{Name: "cold", Capacity: 4, Build: oracleBuilder(&freshOnWorker, 0), DisableWarmStart: true}
	conn := dialCoordinator(t, addr)
	go func() { _ = w.Serve(context.Background(), conn) }()
	waitWorkers(t, c, 1)

	oracle := utility.NewOracle(n, additive)
	var sess *Session
	oracle.WrapEval(func(inner utility.EvalFunc) utility.EvalFunc {
		sess = c.NewSessionWith(context.Background(), SessionConfig{
			Spec:         ProblemSpec{ID: "cold-spec", N: n},
			Local:        inner,
			LocalLimit:   4,
			WarmSnapshot: func() map[combin.Coalition]float64 { return warm },
		})
		return sess.Eval
	})
	t.Cleanup(sess.Close)

	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 4); err != nil {
		t.Fatal(err)
	}
	if got := freshOnWorker.Load(); got != int64(len(all)) {
		t.Errorf("opted-out worker trained %d coalitions, want %d", got, len(all))
	}
}

// TestAdaptivePickPrefersFastWorker seeds two workers with very different
// observed latencies and checks the scheduler routes the bulk of a
// sequential workload to the faster one.
func TestAdaptivePickPrefersFastWorker(t *testing.T) {
	c, addr := startCoordinator(t)
	var fast, slow atomic.Int64
	startWorker(t, addr, "fast", 1, gameBuilder(&fast, time.Millisecond))
	startWorker(t, addr, "slow", 1, gameBuilder(&slow, 40*time.Millisecond))
	waitWorkers(t, c, 2)

	n := 6
	oracle, _ := newSessionOracle(t, c, context.Background(), n, additive)

	// One evaluation at a time: after the warm-up samples, expected
	// completion time should send nearly everything to the fast worker.
	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 2); err != nil {
		t.Fatal(err)
	}
	if fast.Load() <= slow.Load() {
		t.Errorf("latency-aware scheduling sent %d to the fast worker and %d to the 40x slower one",
			fast.Load(), slow.Load())
	}
}
