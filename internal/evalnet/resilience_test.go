package evalnet

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// startCoordinatorWith serves a tuned coordinator on a loopback listener.
func startCoordinatorWith(t *testing.T, sched SchedulerConfig) (*Coordinator, net.Addr) {
	t.Helper()
	c := NewCoordinatorWith(sched)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ln) }()
	t.Cleanup(func() { _ = c.Close() })
	return c, ln.Addr()
}

// TestTaskDeadlineReapsHungWorker assigns a task to a worker that never
// answers (its connection stays healthy — the straggler scan alone cannot
// rescue the task on a fleet with no latency history), then attaches a
// healthy worker and checks the deadline reaper moves the task over. The
// hung worker's eventual non-answer must not corrupt the result.
func TestTaskDeadlineReapsHungWorker(t *testing.T) {
	c, addr := startCoordinatorWith(t, SchedulerConfig{
		TaskDeadline:  80 * time.Millisecond,
		SpeculateTick: 10 * time.Millisecond,
		FlapThreshold: -1, // quarantine off: this test kills workers freely
	})

	// The hung worker blocks every evaluation until the test ends.
	unblock := make(chan struct{})
	hungBuild := func(ProblemSpec) (utility.EvalFunc, error) {
		return func(s combin.Coalition) float64 {
			<-unblock
			return additive(s)
		}, nil
	}
	startWorker(t, addr, "hung", 2, hungBuild)
	// Registered after startWorker: cleanups run LIFO, so the evaluation
	// unblocks before the worker's kill waits for it to drain.
	t.Cleanup(func() { close(unblock) })
	waitWorkers(t, c, 1)

	ctx := context.Background()
	oracle, _ := newSessionOracle(t, c, ctx, 4, additive)

	// Submit before the healthy worker exists, so the task can only land
	// on the hung worker first.
	coal := combin.NewCoalition(1, 2)
	done := make(chan float64, 1)
	go func() { done <- oracle.U(coal) }()
	time.Sleep(20 * time.Millisecond) // let the assignment reach "hung"

	var healthyEvals atomic.Int64
	startWorker(t, addr, "healthy", 2, gameBuilder(&healthyEvals, 0))
	waitWorkers(t, c, 2)

	select {
	case u := <-done:
		if want := additive(coal); u != want {
			t.Fatalf("reaped task returned %v, want %v", u, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("task never escaped the hung worker")
	}
	if got := c.Stats().DeadlineRequeues; got < 1 {
		t.Fatalf("DeadlineRequeues = %d, want >= 1", got)
	}
	if healthyEvals.Load() < 1 {
		t.Fatalf("healthy worker evaluated nothing; the reaped task went elsewhere")
	}
}

// TestFlapQuarantineBenchesAndRejects kills the same named worker past the
// flap threshold, checks the name is benched and refused at attach, then
// waits out the penalty and checks it is welcomed back.
func TestFlapQuarantineBenchesAndRejects(t *testing.T) {
	c, addr := startCoordinatorWith(t, SchedulerConfig{
		FlapThreshold: 2,
		FlapWindow:    time.Minute,
		BenchBase:     400 * time.Millisecond,
		BenchMax:      time.Second,
	})

	for i := 0; i < 2; i++ {
		fw := startWorker(t, addr, "flappy", 1, gameBuilder(nil, 0))
		waitWorkers(t, c, 1)
		fw.kill()
		waitWorkers(t, c, 0)
	}

	stats := c.Stats()
	if len(stats.Quarantined) != 1 || stats.Quarantined[0] != "flappy" {
		t.Fatalf("Quarantined = %v, want [flappy]", stats.Quarantined)
	}

	// An attach attempt under the bench must fail the handshake.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	w := &Worker{Name: "flappy", Capacity: 1, BuildEval: gameBuilder(nil, 0)}
	if err := w.Serve(context.Background(), conn); err == nil {
		t.Fatal("benched worker attached without error")
	}
	conn.Close()
	waitRejections(t, c, 1)

	// A differently named worker is unaffected.
	startWorker(t, addr, "steady", 1, gameBuilder(nil, 0))
	waitWorkers(t, c, 1)

	// After the penalty expires the flapping name attaches again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, benched := c.flaps.Benched("flappy"); !benched {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bench never expired")
		}
		time.Sleep(25 * time.Millisecond)
	}
	startWorker(t, addr, "flappy", 1, gameBuilder(nil, 0))
	waitWorkers(t, c, 2)
}

// waitRejections polls until the coordinator has counted n quarantine
// rejections (the refusal is recorded on the Attach goroutine).
func waitRejections(t *testing.T, c *Coordinator, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().QuarantineRejections < n {
		if time.Now().After(deadline) {
			t.Fatalf("QuarantineRejections = %d, want >= %d", c.Stats().QuarantineRejections, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
