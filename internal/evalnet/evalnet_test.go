package evalnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// additive is the test game U(S) = Σ_{i∈S}(i+1): deterministic, cheap, and
// wrong answers are impossible to miss.
func additive(s combin.Coalition) float64 {
	var u float64
	for _, i := range s.Members() {
		u += float64(i + 1)
	}
	return u
}

// gameBuilder builds a worker eval for the additive game, counting
// evaluations and optionally slowing each one down.
func gameBuilder(evals *atomic.Int64, delay time.Duration) func(ProblemSpec) (utility.EvalFunc, error) {
	return func(ProblemSpec) (utility.EvalFunc, error) {
		return func(s combin.Coalition) float64 {
			if evals != nil {
				evals.Add(1)
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			return additive(s)
		}, nil
	}
}

// startCoordinator serves a coordinator on a loopback TCP listener.
func startCoordinator(t *testing.T) (*Coordinator, net.Addr) {
	t.Helper()
	c := NewCoordinator()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ln) }()
	t.Cleanup(func() { _ = c.Close() })
	return c, ln.Addr()
}

// fleetWorker is a test worker with a kill switch.
type fleetWorker struct {
	conn   net.Conn
	cancel context.CancelFunc
	done   chan struct{}
}

// kill severs the worker's connection mid-flight, as a crashed process
// would.
func (fw *fleetWorker) kill() {
	fw.conn.Close()
	fw.cancel()
	<-fw.done
}

// startWorker dials the coordinator and serves the protocol until killed.
func startWorker(t *testing.T, addr net.Addr, name string, capacity int, build func(ProblemSpec) (utility.EvalFunc, error)) *fleetWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fw := &fleetWorker{conn: conn, cancel: cancel, done: make(chan struct{})}
	w := &Worker{Name: name, Capacity: capacity, BuildEval: build}
	go func() {
		defer close(fw.done)
		_ = w.Serve(ctx, conn)
	}()
	t.Cleanup(fw.kill)
	return fw
}

// waitWorkers polls until the fleet reaches size n.
func waitWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.WorkerCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers (have %d)", n, c.WorkerCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newSessionOracle wires a session-backed oracle the way valserve does:
// WrapEval swaps the eval for Session.Eval with the original as fallback.
func newSessionOracle(t *testing.T, c *Coordinator, ctx context.Context, n int, local utility.EvalFunc) (*utility.Oracle, *Session) {
	t.Helper()
	oracle := utility.NewOracle(n, local)
	var sess *Session
	oracle.WrapEval(func(inner utility.EvalFunc) utility.EvalFunc {
		sess = c.NewSession(ctx, ProblemSpec{ID: fmt.Sprintf("spec-%s", t.Name()), N: n}, inner, 8)
		return sess.Eval
	})
	t.Cleanup(sess.Close)
	return oracle, sess
}

func allCoalitions(n int) []combin.Coalition {
	var all []combin.Coalition
	combin.AllSubsets(n, func(s combin.Coalition) { all = append(all, s) })
	return all
}

// TestDistributedPrefetch fans a full power set out across two TCP workers
// through the oracle's Prefetch pool and checks every utility, the budget
// accounting, and that both workers actually shared the load with the
// local fallback never consulted.
func TestDistributedPrefetch(t *testing.T) {
	c, addr := startCoordinator(t)
	var w1, w2 atomic.Int64
	startWorker(t, addr, "w1", 4, gameBuilder(&w1, 0))
	startWorker(t, addr, "w2", 4, gameBuilder(&w2, 0))
	waitWorkers(t, c, 2)

	var localCalls atomic.Int64
	n := 6
	oracle, _ := newSessionOracle(t, c, context.Background(), n, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})

	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 8); err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if got := oracle.U(s); got != additive(s) {
			t.Fatalf("U(%s) = %v, want %v", s, got, additive(s))
		}
	}
	if oracle.Evals() != len(all) {
		t.Errorf("fresh evals = %d, want %d", oracle.Evals(), len(all))
	}
	if localCalls.Load() != 0 {
		t.Errorf("local fallback ran %d times with a healthy fleet", localCalls.Load())
	}
	if w1.Load() == 0 || w2.Load() == 0 {
		t.Errorf("load not distributed: w1=%d w2=%d", w1.Load(), w2.Load())
	}
	if w1.Load()+w2.Load() != int64(len(all)) {
		t.Errorf("workers evaluated %d coalitions, want %d", w1.Load()+w2.Load(), len(all))
	}
	infos := c.Workers()
	if len(infos) != 2 || infos[0].Completed+infos[1].Completed != int64(len(all)) {
		t.Errorf("fleet stats = %+v", infos)
	}
}

// TestWorkerDeathRequeue kills one of two workers mid-job: its in-flight
// coalitions must be requeued to the survivor, the job must finish with
// every utility correct, and nothing may be double-charged or fall back to
// local evaluation.
func TestWorkerDeathRequeue(t *testing.T) {
	c, addr := startCoordinator(t)
	var w1, w2 atomic.Int64
	victim := startWorker(t, addr, "victim", 2, gameBuilder(&w1, 2*time.Millisecond))
	startWorker(t, addr, "survivor", 2, gameBuilder(&w2, 2*time.Millisecond))
	waitWorkers(t, c, 2)

	var localCalls atomic.Int64
	n := 6
	oracle, _ := newSessionOracle(t, c, context.Background(), n, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})

	// Kill the victim once it has demonstrably taken work.
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for w1.Load() < 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		victim.kill()
	}()

	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 4); err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if got := oracle.U(s); got != additive(s) {
			t.Fatalf("U(%s) = %v, want %v", s, got, additive(s))
		}
	}
	if oracle.Evals() != len(all) {
		t.Errorf("fresh evals = %d, want %d (lost or double-counted work)", oracle.Evals(), len(all))
	}
	if localCalls.Load() != 0 {
		t.Errorf("local fallback ran %d times with a surviving worker", localCalls.Load())
	}
	if c.WorkerCount() != 1 {
		t.Errorf("fleet size after kill = %d, want 1", c.WorkerCount())
	}
	if w2.Load() == 0 {
		t.Error("survivor evaluated nothing")
	}
}

// TestAllWorkersDieLocalFallback kills the entire fleet mid-job: every
// remaining coalition must complete through the local fallback.
func TestAllWorkersDieLocalFallback(t *testing.T) {
	c, addr := startCoordinator(t)
	var we atomic.Int64
	only := startWorker(t, addr, "only", 2, gameBuilder(&we, 2*time.Millisecond))
	waitWorkers(t, c, 1)

	var localCalls atomic.Int64
	n := 5
	oracle, _ := newSessionOracle(t, c, context.Background(), n, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})

	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for we.Load() < 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		only.kill()
	}()

	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 4); err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if got := oracle.U(s); got != additive(s) {
			t.Fatalf("U(%s) = %v, want %v", s, got, additive(s))
		}
	}
	if oracle.Evals() != len(all) {
		t.Errorf("fresh evals = %d, want %d", oracle.Evals(), len(all))
	}
	if localCalls.Load() == 0 {
		t.Error("local fallback never ran after the fleet died")
	}
}

// TestNoWorkersEvaluatesLocally checks a coordinator with an empty fleet
// routes every evaluation straight to the local function.
func TestNoWorkersEvaluatesLocally(t *testing.T) {
	c, _ := startCoordinator(t)
	var localCalls atomic.Int64
	oracle, _ := newSessionOracle(t, c, context.Background(), 4, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})
	s := combin.NewCoalition(0, 2)
	if got := oracle.U(s); got != additive(s) {
		t.Fatalf("U = %v, want %v", got, additive(s))
	}
	if localCalls.Load() != 1 {
		t.Errorf("local evals = %d, want 1", localCalls.Load())
	}
}

// TestBuildErrorFallsBackLocal: a worker that cannot rebuild the problem
// answers with errors; the session must transparently evaluate locally.
func TestBuildErrorFallsBackLocal(t *testing.T) {
	c, addr := startCoordinator(t)
	startWorker(t, addr, "broken", 2, func(ProblemSpec) (utility.EvalFunc, error) {
		return nil, errors.New("no such dataset on this machine")
	})
	waitWorkers(t, c, 1)

	var localCalls atomic.Int64
	oracle, _ := newSessionOracle(t, c, context.Background(), 4, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})
	s := combin.NewCoalition(1, 3)
	if got := oracle.U(s); got != additive(s) {
		t.Fatalf("U = %v, want %v", got, additive(s))
	}
	if localCalls.Load() != 1 {
		t.Errorf("local evals = %d, want 1", localCalls.Load())
	}
}

// TestCancellationPropagates cancels a job mid-prefetch: blocked Eval
// calls abort with the oracle's CancelError, the worker is told to skip
// the spec's queued coalitions, and evaluation activity settles at no more
// than the in-flight trainings that were already running.
func TestCancellationPropagates(t *testing.T) {
	c, addr := startCoordinator(t)
	var we atomic.Int64
	startWorker(t, addr, "w", 2, gameBuilder(&we, 10*time.Millisecond))
	waitWorkers(t, c, 1)

	ctx, cancel := context.WithCancel(context.Background())
	n := 6
	oracle, sess := newSessionOracle(t, c, ctx, n, additive)

	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for we.Load() < 3 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()

	err := oracle.Prefetch(ctx, allCoalitions(n), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Prefetch err = %v, want context.Canceled", err)
	}

	// A fresh Eval on the cancelled session aborts with the oracle's
	// cancellation contract.
	func() {
		defer func() {
			var ce *utility.CancelError
			if r := recover(); r == nil {
				t.Error("Eval on cancelled session did not abort")
			} else if err, ok := r.(error); !ok || !errors.As(err, &ce) {
				t.Errorf("Eval panicked with %v, want *utility.CancelError", r)
			}
		}()
		sess.Eval(combin.NewCoalition(0))
	}()

	// The worker stops evaluating: at most its in-flight trainings finish
	// after the cancel; queued coalitions are skipped.
	time.Sleep(60 * time.Millisecond)
	settled := we.Load()
	time.Sleep(60 * time.Millisecond)
	if got := we.Load(); got != settled {
		t.Errorf("worker kept evaluating after cancellation: %d → %d", settled, got)
	}
	if settled == int64(len(allCoalitions(n))) {
		t.Error("worker evaluated the entire plan despite cancellation")
	}
}

// TestCoordinatorCloseFallsBack: closing the coordinator mid-job hands all
// queued work back to local evaluation rather than blocking callers.
func TestCoordinatorCloseFallsBack(t *testing.T) {
	c, addr := startCoordinator(t)
	var we atomic.Int64
	startWorker(t, addr, "w", 1, gameBuilder(&we, 2*time.Millisecond))
	waitWorkers(t, c, 1)

	var localCalls atomic.Int64
	n := 5
	oracle, _ := newSessionOracle(t, c, context.Background(), n, func(s combin.Coalition) float64 {
		localCalls.Add(1)
		return additive(s)
	})
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for we.Load() < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		_ = c.Close()
	}()
	all := allCoalitions(n)
	if err := oracle.Prefetch(context.Background(), all, 4); err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if got := oracle.U(s); got != additive(s) {
			t.Fatalf("U(%s) = %v, want %v", s, got, additive(s))
		}
	}
	if localCalls.Load() == 0 {
		t.Error("local fallback never ran after coordinator shutdown")
	}
}
