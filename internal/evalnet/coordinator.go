package evalnet

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/obs"
	"fedshap/internal/resilience"
	"fedshap/internal/utility"
)

// SchedulerConfig tunes the coordinator's adaptive scheduler. The zero
// value of every field selects a sensible default, so NewCoordinator
// callers that don't care get latency-aware scheduling with speculation
// enabled out of the box.
type SchedulerConfig struct {
	// DisableSpeculation turns straggler re-dispatch off: tasks then run on
	// exactly one worker until it answers or dies. Speculation never
	// changes results or budget accounting (the first result wins and
	// duplicates are discarded), so it is on by default.
	DisableSpeculation bool
	// SpeculateFactor is the straggler threshold: a task is re-dispatched
	// once its in-flight age exceeds Factor × the fleet's EWMA evaluation
	// latency (default 3). Raise it on fleets with naturally noisy
	// per-coalition cost.
	SpeculateFactor float64
	// SpeculateMinAge floors the straggler threshold, so a fleet of
	// uniformly fast workers doesn't duplicate work over scheduling jitter
	// (default 50ms).
	SpeculateMinAge time.Duration
	// SpeculateTick is how often the coordinator scans for stragglers
	// while idle capacity exists (default 25ms). The same ticker drives
	// the task-deadline reaper when TaskDeadline is set.
	SpeculateTick time.Duration
	// TaskDeadline bounds how long one assignment may sit unanswered on a
	// worker before it is forcibly requeued (0 disables). Unlike the
	// straggler scan — which only duplicates work when idle capacity
	// exists — the reaper fires regardless of fleet load, so a task on a
	// stalled (SIGSTOP'd, wedged) worker whose connection stays open is
	// still rescued. The stalled worker's eventual result is discarded as
	// stale, so results and budgets stay bit-identical.
	TaskDeadline time.Duration
	// FlapThreshold benches a worker name after this many losses inside
	// FlapWindow (default 3; < 0 disables quarantine). A benched name is
	// refused at Attach until its penalty expires; the penalty starts at
	// BenchBase and doubles per bench up to BenchMax.
	FlapThreshold int
	// FlapWindow is the sliding window flap losses are counted in
	// (default 1m).
	FlapWindow time.Duration
	// BenchBase is the first quarantine penalty (default 5s).
	BenchBase time.Duration
	// BenchMax caps the doubling quarantine penalty (default 2m).
	BenchMax time.Duration
	// Logger receives structured fleet lifecycle logs (worker attach and
	// loss, straggler re-dispatch) with worker/job correlation attributes;
	// nil discards them.
	Logger *slog.Logger
}

func (sc *SchedulerConfig) fillDefaults() {
	if sc.SpeculateFactor <= 0 {
		sc.SpeculateFactor = 3
	}
	if sc.SpeculateMinAge <= 0 {
		sc.SpeculateMinAge = 50 * time.Millisecond
	}
	if sc.SpeculateTick <= 0 {
		sc.SpeculateTick = 25 * time.Millisecond
	}
	if sc.FlapThreshold == 0 {
		sc.FlapThreshold = 3
	}
	if sc.FlapWindow <= 0 {
		sc.FlapWindow = time.Minute
	}
	if sc.BenchBase <= 0 {
		sc.BenchBase = 5 * time.Second
	}
	if sc.BenchMax <= 0 {
		sc.BenchMax = 2 * time.Minute
	}
}

// ewmaAlpha weights the latest latency sample in the per-worker EWMA.
const ewmaAlpha = 0.3

// Coordinator owns the worker fleet and schedules coalition evaluations
// onto it. It is safe for concurrent use by many jobs; a single Coordinator
// is shared by every job a valserve.Manager runs.
type Coordinator struct {
	sched SchedulerConfig

	mu      sync.Mutex
	workers map[int]*remoteWorker
	// pending is the FIFO of unassigned tasks; requeues from dead workers
	// go to the front so interrupted work finishes first.
	pending  []*task
	nextWkr  int
	nextTask uint64
	closed   bool

	// redispatches counts speculative task copies dispatched; wins counts
	// the copies that beat the original assignment to the result.
	// requeues counts tasks re-dispatched because their worker died;
	// deadlineRequeues counts tasks reaped off a hung worker by the task
	// deadline; quarantineRejections counts attaches refused while the
	// worker's name served a flap-quarantine bench.
	redispatches         int64
	wins                 int64
	requeues             int64
	deadlineRequeues     int64
	quarantineRejections int64

	// flaps tracks worker losses per name; a name flapping past the
	// threshold is benched and refused at Attach (nil when disabled).
	flaps *resilience.Tracker

	logger *slog.Logger

	specStop chan struct{}
	specDone chan struct{}

	lnMu sync.Mutex
	ln   net.Listener
}

// remoteWorker is the coordinator's view of one connected worker.
type remoteWorker struct {
	id       int
	name     string
	addr     string
	capacity int
	conn     net.Conn

	// inflight holds tasks assigned but unanswered; its size is bounded by
	// capacity. started records each assignment's dispatch time for the
	// latency EWMA and the straggler scan. specs records which problem
	// specs this worker has received.
	inflight map[uint64]*task
	started  map[uint64]time.Time
	specs    map[string]bool

	// ewma is the exponentially weighted moving average of this worker's
	// per-evaluation latency in nanoseconds; 0 until the first result.
	ewma float64
	// suspect marks a worker the deadline reaper has taken a task from:
	// its connection is up but it stopped answering, so the scheduler
	// skips it — otherwise the reaped task would requeue straight back
	// onto the same stalled machine. Any decoded result clears it.
	suspect bool
	// redispatched counts speculative copies this worker received.
	redispatched int64

	// outbox + outCond (on Coordinator.mu) feed the writer goroutine, so
	// dispatching never blocks on a slow connection.
	outbox  []envelope
	outCond *sync.Cond
	gone    bool
	done    int64
}

// latencyOr returns the worker's EWMA latency, or fallback when it has no
// history yet.
func (w *remoteWorker) latencyOr(fallback float64) float64 {
	if w.ewma > 0 {
		return w.ewma
	}
	return fallback
}

// task is one coalition evaluation in flight through the scheduler.
type task struct {
	id      uint64
	session *Session
	coal    combin.Coalition

	// holders lists the workers currently evaluating this task — more than
	// one after a speculative re-dispatch. delivered marks a task whose
	// winning result already reached the caller, so late duplicates and
	// worker-death requeues know to leave it alone. speculated caps each
	// task at one speculative copy and specWorker records who received it
	// (for the win accounting). All guarded by Coordinator.mu.
	holders    []int
	delivered  bool
	speculated bool
	specWorker int

	once sync.Once
	ch   chan taskResult // buffered(1); delivered at most once
}

// dropHolder removes worker id from the task's holder list.
func (t *task) dropHolder(id int) {
	for i, h := range t.holders {
		if h == id {
			t.holders = append(t.holders[:i], t.holders[i+1:]...)
			return
		}
	}
}

type taskResult struct {
	u float64
	// fallback asks the caller to evaluate locally (fleet gone, worker
	// error, or coordinator shut down).
	fallback bool
}

func (t *task) deliver(r taskResult) {
	t.once.Do(func() { t.ch <- r })
}

// NewCoordinator builds an empty coordinator with default scheduling
// (latency-aware picking, speculation on); attach workers with Serve or
// Attach.
func NewCoordinator() *Coordinator {
	return NewCoordinatorWith(SchedulerConfig{})
}

// NewCoordinatorWith builds a coordinator with explicit scheduler tuning.
func NewCoordinatorWith(sched SchedulerConfig) *Coordinator {
	sched.fillDefaults()
	logger := sched.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c := &Coordinator{
		sched:   sched,
		workers: make(map[int]*remoteWorker),
		logger:  logger,
	}
	if sched.FlapThreshold > 0 {
		c.flaps = resilience.NewTracker(resilience.TrackerConfig{
			Threshold:   sched.FlapThreshold,
			Window:      sched.FlapWindow,
			BasePenalty: sched.BenchBase,
			MaxPenalty:  sched.BenchMax,
		})
	}
	if !sched.DisableSpeculation || sched.TaskDeadline > 0 {
		c.specStop = make(chan struct{})
		c.specDone = make(chan struct{})
		go c.speculateLoop()
	}
	return c
}

// speculateLoop periodically re-examines the fleet for stragglers and —
// when a task deadline is configured — for hung assignments to reap; the
// scans themselves are cheap (a few map walks under the scheduler lock),
// so a short tick keeps tail latency low without measurable overhead.
func (c *Coordinator) speculateLoop() {
	defer close(c.specDone)
	t := time.NewTicker(c.sched.SpeculateTick)
	defer t.Stop()
	for {
		select {
		case <-c.specStop:
			return
		case <-t.C:
			c.mu.Lock()
			if c.sched.TaskDeadline > 0 {
				c.reapHungLocked()
			}
			if !c.sched.DisableSpeculation {
				c.speculateLocked()
			}
			c.mu.Unlock()
		}
	}
}

// Serve accepts worker connections on ln until the listener closes (Close
// closes it). Each accepted connection is handshaken and attached.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.lnMu.Lock()
	c.ln = ln
	c.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := c.Attach(conn); err != nil {
				conn.Close()
			}
		}()
	}
}

// Attach performs the registration handshake on conn and, on success, adds
// the worker to the fleet and services it until the connection breaks.
func (c *Coordinator) Attach(conn net.Conn) error {
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	var hello envelope
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("evalnet: worker handshake: %w", err)
	}
	if hello.Hello == nil || hello.Hello.Proto != protoVersion {
		return fmt.Errorf("evalnet: worker handshake: bad hello (proto %v)", hello.Hello)
	}
	// Flap quarantine: a name that keeps dying is refused before the ack,
	// so the worker sees a failed handshake and backs off (its dial retry
	// loop has jittered exponential backoff) instead of rejoining the
	// fleet only to take tasks down with it again.
	if c.flaps != nil {
		if left, benched := c.flaps.Benched(hello.Hello.Name); benched {
			c.mu.Lock()
			c.quarantineRejections++
			c.mu.Unlock()
			c.logger.Warn("worker attach refused: quarantined",
				"worker", hello.Hello.Name, "bench_remaining", left)
			return fmt.Errorf("evalnet: worker %q quarantined for %s after repeated losses",
				hello.Hello.Name, left.Round(time.Millisecond))
		}
	}
	capacity := hello.Hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	w := &remoteWorker{
		name:     hello.Hello.Name,
		addr:     conn.RemoteAddr().String(),
		capacity: capacity,
		conn:     conn,
		inflight: make(map[uint64]*task),
		started:  make(map[uint64]time.Time),
		specs:    make(map[string]bool),
	}
	if err := enc.Encode(envelope{Hello: &helloMsg{Proto: protoVersion, Name: "coordinator"}}); err != nil {
		return fmt.Errorf("evalnet: worker handshake ack: %w", err)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("evalnet: coordinator closed")
	}
	w.id = c.nextWkr
	c.nextWkr++
	w.outCond = sync.NewCond(&c.mu)
	c.workers[w.id] = w
	// A fresh worker may unblock queued work immediately; with no queue,
	// the next speculateLoop tick can hand it a straggler's task.
	c.dispatchLocked()
	c.mu.Unlock()
	c.logger.Info("worker attached", "worker", w.name, "id", w.id, "addr", w.addr, "capacity", w.capacity)

	go c.writeLoop(w, enc)
	c.readLoop(w, dec)
	return nil
}

// writeLoop drains the worker's outbox; encoding happens outside the lock
// so a slow connection never stalls the scheduler.
func (c *Coordinator) writeLoop(w *remoteWorker, enc *gob.Encoder) {
	for {
		c.mu.Lock()
		for len(w.outbox) == 0 && !w.gone {
			w.outCond.Wait()
		}
		if w.gone && len(w.outbox) == 0 {
			c.mu.Unlock()
			return
		}
		msgs := w.outbox
		w.outbox = nil
		c.mu.Unlock()
		for _, m := range msgs {
			if m.warm != nil && m.Spec != nil {
				m.Spec.Warm = m.warm()
			}
			if err := enc.Encode(m); err != nil {
				c.removeWorker(w)
				return
			}
		}
	}
}

// readLoop consumes results until the connection breaks, then retires the
// worker and requeues whatever it still owed.
func (c *Coordinator) readLoop(w *remoteWorker, dec *gob.Decoder) {
	for {
		var e envelope
		if err := dec.Decode(&e); err != nil {
			c.removeWorker(w)
			return
		}
		if e.Result != nil {
			c.completeTask(w, *e.Result)
		}
	}
}

// completeTask delivers one worker result and refills the freed slot. A
// result for a task this worker no longer holds — retired with its
// session or requeued after a presumed death — is discarded without
// touching the accounting, as is a superseded duplicate, which is what
// keeps budgets and values bit-identical under re-dispatch. The losing
// copy of a speculated task keeps its in-flight slot until this reply
// arrives: the worker really is still training it, so freeing the slot
// earlier would oversubscribe the machine past its announced capacity.
func (c *Coordinator) completeTask(w *remoteWorker, res resultMsg) {
	c.mu.Lock()
	// Any decoded result proves the worker is alive and answering again;
	// lift the deadline reaper's suspicion so it is schedulable. If the
	// result itself is stale (the reaper already requeued its task, so the
	// inflight lookup below misses), the un-suspected worker still has free
	// slots pending work may be waiting on — dispatch explicitly, because
	// the miss path otherwise skips it.
	if w.suspect {
		w.suspect = false
		if _, stillHeld := w.inflight[res.TaskID]; !stillHeld {
			c.dispatchLocked()
		}
	}
	t, ok := w.inflight[res.TaskID]
	var deliver taskResult
	var observeRemote float64 // >0: report to the session's Observe hook after unlock
	var observeFn func(string, float64)
	if ok {
		if a := t.session.agg[w.id]; a != nil {
			// Every answered assignment counts toward the worker's dispatch
			// span — including superseded duplicates, which were real work on
			// that machine even though their result is discarded below.
			a.tasks++
			a.last = time.Now().UTC()
			a.evalNanos += res.Nanos
			switch {
			case res.Err != "":
				a.failed++
			case res.Warm:
				a.warm++
			default:
				a.fresh++
			}
		}
		delete(w.inflight, res.TaskID)
		var dispatchLat time.Duration
		if startedAt, has := w.started[res.TaskID]; has {
			delete(w.started, res.TaskID)
			dispatchLat = time.Since(startedAt)
			// Losing duplicates update the EWMA too: the straggler's
			// large sample is exactly the signal the scheduler needs.
			// Warm cache hits don't — they measure nothing about this
			// worker's training speed, and on a warm fleet they would
			// drag the EWMA so low that every real training reads as a
			// straggler and gets pointlessly duplicated.
			if res.Err == "" && !res.Warm {
				w.observeLatencyLocked(dispatchLat)
			}
		}
		t.dropHolder(w.id)
		switch {
		case t.delivered:
			// The losing copy of a speculated task: the winner already
			// answered. Discard uncounted; only the freed slot matters.
			ok = false
		case res.Err == "":
			w.done++
			t.delivered = true
			if t.speculated && w.id == t.specWorker {
				c.wins++ // the speculative copy beat the original
			}
			deliver = taskResult{u: res.U}
			if t.session.observe != nil && dispatchLat > 0 {
				observeFn, observeRemote = t.session.observe, dispatchLat.Seconds()
			}
		case len(t.holders) > 0:
			// This copy failed but a twin is still evaluating; let it
			// answer instead of falling back to local training. If the
			// *original* failed, the surviving speculative copy becomes
			// the de-facto original and regains the entitlement. If the
			// *speculative copy* failed, the entitlement stays spent —
			// resetting it would let a persistently erroring relief
			// worker (still in the fleet, unlike a dead one) be re-picked
			// every tick in a futile re-dispatch storm.
			if w.id != t.specWorker {
				t.speculated, t.specWorker = false, 0
			}
			ok = false
		default:
			deliver = taskResult{fallback: true}
		}
		c.dispatchLocked()
	}
	c.mu.Unlock()
	if observeFn != nil {
		observeFn("remote", observeRemote)
	}
	if !ok {
		return // stale or superseded: another copy owns the answer
	}
	t.deliver(deliver)
}

// observeLatencyLocked folds one evaluation latency into the worker's
// EWMA. A speculative copy's win is measured from its own dispatch, so a
// fast worker relieving a straggler is not charged the straggler's delay.
func (w *remoteWorker) observeLatencyLocked(d time.Duration) {
	sample := float64(d)
	if sample <= 0 {
		sample = 1
	}
	if w.ewma == 0 {
		w.ewma = sample
		return
	}
	w.ewma = ewmaAlpha*sample + (1-ewmaAlpha)*w.ewma
}

// removeWorker retires a dead connection: its unanswered tasks go back to
// the front of the queue (never lost, never double-delivered — the dead
// link can produce no more results once inflight is cleared). A task whose
// speculative twin is still alive on another worker is not requeued: the
// twin already owns it.
func (c *Coordinator) removeWorker(w *remoteWorker) {
	c.mu.Lock()
	if w.gone {
		c.mu.Unlock()
		return
	}
	w.gone = true
	delete(c.workers, w.id)
	// Record the loss for flap quarantine — but not during coordinator
	// shutdown, where every worker is deliberately disconnected and a
	// bench would punish the next daemon life's fleet for nothing.
	if c.flaps != nil && !c.closed {
		if benched, until := c.flaps.Fail(w.name); benched {
			c.logger.Warn("worker quarantined after repeated losses",
				"worker", w.name, "bench_until", until.UTC().Format(time.RFC3339))
		}
	}
	orphans := make([]*task, 0, len(w.inflight))
	for _, t := range w.inflight {
		t.dropHolder(w.id)
		if !t.delivered {
			// Back to square one whether this death orphaned the task
			// (requeued below, may straggle again on its next worker) or
			// killed one of its copies (the survivor may need relief
			// again): either way it regains its speculation entitlement.
			t.speculated, t.specWorker = false, 0
		}
		if t.delivered || len(t.holders) > 0 {
			continue
		}
		orphans = append(orphans, t)
	}
	w.inflight = make(map[uint64]*task)
	w.started = make(map[uint64]time.Time)
	c.requeues += int64(len(orphans))
	// One redispatch event per affected session, so a job trace shows the
	// death that rerouted its work without a span per orphaned coalition.
	perSession := make(map[*Session]int)
	for _, t := range orphans {
		perSession[t.session]++
	}
	for s, n := range perSession {
		s.trace.Event("redispatch", "daemon",
			"reason", "worker-death", "worker", w.name, "tasks", strconv.Itoa(n))
	}
	// Requeue in assignment order for determinism of the retry schedule.
	sort.Slice(orphans, func(a, b int) bool { return orphans[a].id < orphans[b].id })
	c.pending = append(orphans, c.pending...)
	c.dispatchLocked()
	w.outCond.Broadcast() // release the writer
	c.mu.Unlock()
	w.conn.Close()
	c.logger.Warn("worker lost", "worker", w.name, "id", w.id, "requeued", len(orphans))
}

// assignLocked records one task's assignment to a worker, shipping the
// spec the first time the worker sees it. The session's warm-start
// snapshot rides along, but is materialised lazily by the writer
// goroutine (envelope.warm) so copying a large cache never happens under
// the scheduler lock. The caller batches the actual task message.
func (c *Coordinator) assignLocked(w *remoteWorker, t *task) {
	sid := t.session.spec.ID
	if !w.specs[sid] {
		w.specs[sid] = true
		w.outbox = append(w.outbox, envelope{
			Spec: &specMsg{Spec: t.session.spec},
			warm: t.session.warmEntries,
		})
	}
	w.inflight[t.id] = t
	w.started[t.id] = time.Now()
	t.holders = append(t.holders, w.id)
	if t.session.agg != nil {
		a := t.session.agg[w.id]
		if a == nil {
			a = &dispatchStats{name: w.name, first: time.Now().UTC()}
			t.session.agg[w.id] = a
		}
	}
}

// batchKey groups task assignments headed for one (worker, spec) pair.
type batchKey struct {
	wid  int
	spec string
}

// batchSet accumulates task assignments and flushes them as one taskMsg
// per (worker, spec) — shared by queue dispatch and straggler
// re-dispatch so the outbox/Signal mechanics exist exactly once.
type batchSet struct {
	batches map[batchKey][]taskWire
	touched []*remoteWorker
}

func newBatchSet() *batchSet {
	return &batchSet{batches: make(map[batchKey][]taskWire)}
}

// add records one assignment of t to w.
func (b *batchSet) add(w *remoteWorker, t *task) {
	lo, hi := t.coal.Words()
	key := batchKey{w.id, t.session.spec.ID}
	if len(b.batches[key]) == 0 {
		b.touched = append(b.touched, w)
	}
	b.batches[key] = append(b.batches[key], taskWire{ID: t.id, Lo: lo, Hi: hi})
}

// flushLocked appends the accumulated task messages to the worker
// outboxes and wakes their writers. Caller holds c.mu.
func (b *batchSet) flushLocked(c *Coordinator) {
	for key, tasks := range b.batches {
		w := c.workers[key.wid]
		if w == nil {
			continue // raced with removeWorker; tasks were requeued there
		}
		w.outbox = append(w.outbox, envelope{Task: &taskMsg{SpecID: key.spec, Tasks: tasks}})
	}
	for _, w := range b.touched {
		w.outCond.Signal()
	}
}

// dispatchLocked assigns queued tasks to free slots, batching consecutive
// assignments to the same worker and spec into one taskMsg. With workers
// connected but saturated it leaves the queue alone; with no workers at
// all it hands every task back for local evaluation. Straggler
// re-dispatch is not done here — the speculateLoop ticker owns it, so
// the per-Eval hot path never pays for a fleet-wide scan.
func (c *Coordinator) dispatchLocked() {
	b := newBatchSet()
	for len(c.pending) > 0 {
		t := c.pending[0]
		if t.session.closed {
			c.pending = c.pending[1:]
			t.deliver(taskResult{fallback: true})
			continue
		}
		w := c.pickWorkerLocked()
		if w == nil {
			if len(c.workers) == 0 {
				c.pending = c.pending[1:]
				t.deliver(taskResult{fallback: true})
				continue
			}
			break // fleet saturated; completions re-dispatch
		}
		c.pending = c.pending[1:]
		c.assignLocked(w, t)
		b.add(w, t)
	}
	b.flushLocked(c)
}

// speculateLocked re-dispatches stragglers' in-flight tasks to idle
// workers. It only acts at the tail of a job — when the pending queue is
// empty — because earlier there is real work for every free slot. A task
// qualifies once its in-flight age exceeds the straggler threshold
// (SpeculateFactor × fleet EWMA, floored at SpeculateMinAge) and it has
// exactly one holder; the duplicate goes to the best idle worker other
// than the holder. First result wins, so a straggler that eventually
// answers is harmlessly discarded as stale.
func (c *Coordinator) speculateLocked() {
	if c.sched.DisableSpeculation || len(c.pending) > 0 || len(c.workers) < 2 {
		return
	}
	fleet := c.fleetEWMALocked()
	if fleet <= 0 {
		return // no latency history yet — nothing to judge stragglers by
	}
	threshold := time.Duration(c.sched.SpeculateFactor * fleet)
	if threshold < c.sched.SpeculateMinAge {
		threshold = c.sched.SpeculateMinAge
	}
	now := time.Now()

	b := newBatchSet()
	// unrelievable remembers victims whose only possible relief worker is
	// saturated (or is their own holder), so the scan moves on to younger
	// stragglers another free slot could still take instead of stalling
	// the whole pass on the oldest one.
	var unrelievable map[*task]bool
	for {
		// Oldest qualifying straggler task first.
		var (
			victim *task
			age    time.Duration
		)
		for _, w := range c.workers {
			for id, t := range w.inflight {
				if t.speculated || t.delivered || t.session.closed ||
					len(t.holders) != 1 || unrelievable[t] {
					continue
				}
				if a := now.Sub(w.started[id]); a > threshold && (victim == nil || a > age) {
					victim, age = t, a
				}
			}
		}
		if victim == nil {
			break // no relievable straggler left; flush what was assigned
		}
		dst := c.pickWorkerExceptLocked(victim.holders[0])
		if dst == nil {
			if unrelievable == nil {
				unrelievable = make(map[*task]bool)
			}
			unrelievable[victim] = true
			continue
		}
		from := ""
		if holder := c.workers[victim.holders[0]]; holder != nil {
			from = holder.name
		}
		victim.speculated = true
		victim.specWorker = dst.id
		dst.redispatched++
		c.redispatches++
		victim.session.trace.Event("redispatch", "daemon",
			"reason", "straggler", "from", from, "to", dst.name,
			"age_seconds", strconv.FormatFloat(age.Seconds(), 'g', 4, 64))
		c.logger.Debug("straggler re-dispatched",
			"job", victim.session.spec.ID, "from", from, "to", dst.name, "age", age)
		c.assignLocked(dst, victim)
		if a := victim.session.agg[dst.id]; a != nil {
			a.speculative++
		}
		b.add(dst, victim)
	}
	b.flushLocked(c)
}

// reapHungLocked forcibly requeues every assignment older than the task
// deadline. The straggler scan cannot rescue these: it needs idle
// capacity and latency history, while a stalled worker (SIGSTOP, wedged
// runtime) can sit on a saturated fleet's tasks forever with its
// connection alive. Reaping deletes the assignment, so the worker's
// eventual late result misses the inflight lookup in completeTask and is
// discarded uncounted — determinism is preserved. The worker itself is
// marked suspect and skipped by the scheduler until it answers again,
// so the reaped task cannot requeue straight back onto it.
func (c *Coordinator) reapHungLocked() {
	deadline := c.sched.TaskDeadline
	now := time.Now()
	var orphans []*task
	for _, w := range c.workers {
		for id, t := range w.inflight {
			if now.Sub(w.started[id]) <= deadline {
				continue
			}
			delete(w.inflight, id)
			delete(w.started, id)
			t.dropHolder(w.id)
			w.suspect = true
			if t.delivered {
				continue
			}
			// Back to square one: the reaped task regains its speculation
			// entitlement on whichever worker runs it next.
			t.speculated, t.specWorker = false, 0
			if len(t.holders) > 0 {
				continue // a speculative twin still owns it
			}
			orphans = append(orphans, t)
		}
	}
	if len(orphans) == 0 {
		return
	}
	c.deadlineRequeues += int64(len(orphans))
	perSession := make(map[*Session]int)
	for _, t := range orphans {
		perSession[t.session]++
	}
	for s, n := range perSession {
		s.trace.Event("redispatch", "daemon",
			"reason", "deadline", "tasks", strconv.Itoa(n))
	}
	sort.Slice(orphans, func(a, b int) bool { return orphans[a].id < orphans[b].id })
	c.pending = append(orphans, c.pending...)
	c.logger.Warn("hung evaluations reaped past task deadline",
		"tasks", len(orphans), "deadline", deadline)
	c.dispatchLocked()
}

// fleetEWMALocked returns the mean EWMA latency across workers with
// history, or 0 when no worker has answered anything yet.
func (c *Coordinator) fleetEWMALocked() float64 {
	var sum float64
	n := 0
	for _, w := range c.workers {
		if w.ewma > 0 {
			sum += w.ewma
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// pickWorkerLocked returns the worker expected to finish one more task
// soonest, or nil when every worker is saturated. Only workers with a
// free in-flight slot are considered, and a free slot starts the task
// immediately, so expected completion time is simply the worker's EWMA
// evaluation latency; workers with no latency history borrow the fleet
// average. Latency ties fall back to the load fraction
// inflight/capacity and then the lower worker id — so with no history
// anywhere the policy is exactly the static least-loaded one, and a
// uniform fleet schedules deterministically.
func (c *Coordinator) pickWorkerLocked() *remoteWorker {
	return c.pickWorkerExceptLocked(-1)
}

// pickWorkerExceptLocked is pickWorkerLocked skipping one worker id — the
// straggler a speculative copy must not return to.
func (c *Coordinator) pickWorkerExceptLocked(except int) *remoteWorker {
	fleet := c.fleetEWMALocked()
	var (
		best    *remoteWorker
		bestLat float64
	)
	for _, w := range c.workers {
		if w.id == except || w.suspect || len(w.inflight) >= w.capacity {
			continue
		}
		lat := w.latencyOr(fleet)
		if lat <= 0 {
			lat = 1 // unitless: equal latency everywhere → pure load balance
		}
		better := best == nil || lat < bestLat
		if !better && lat == bestLat {
			la, lb := len(w.inflight)*best.capacity, len(best.inflight)*w.capacity
			better = la < lb || (la == lb && w.id < best.id)
		}
		if better {
			best, bestLat = w, lat
		}
	}
	return best
}

// WorkerCount returns the number of connected workers.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// TotalCapacity returns the fleet's aggregate in-flight limit — the right
// size for an evaluation pool that keeps every worker busy.
func (c *Coordinator) TotalCapacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalCapacityLocked()
}

func (c *Coordinator) totalCapacityLocked() int {
	total := 0
	for _, w := range c.workers {
		total += w.capacity
	}
	return total
}

// Workers snapshots the fleet for the daemon's /v1/workers endpoint.
func (c *Coordinator) Workers() []fedshap.WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workersLocked()
}

func (c *Coordinator) workersLocked() []fedshap.WorkerInfo {
	out := make([]fedshap.WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		flaps := 0
		if c.flaps != nil {
			flaps = c.flaps.Strikes(w.name)
		}
		out = append(out, fedshap.WorkerInfo{
			ID:           w.id,
			Name:         w.name,
			Addr:         w.addr,
			Capacity:     w.capacity,
			InFlight:     len(w.inflight),
			Completed:    w.done,
			EWMAMillis:   w.ewma / float64(time.Millisecond),
			Redispatched: w.redispatched,
			Flaps:        flaps,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Stats snapshots the scheduler for the daemon's /metrics endpoint.
func (c *Coordinator) Stats() fedshap.FleetMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	var quarantined []string
	if c.flaps != nil {
		quarantined = c.flaps.BenchedKeys()
	}
	return fedshap.FleetMetrics{
		Workers:              c.workersLocked(),
		TotalCapacity:        c.totalCapacityLocked(),
		PendingTasks:         len(c.pending),
		Redispatches:         c.redispatches,
		RedispatchWins:       c.wins,
		Requeues:             c.requeues,
		DeadlineRequeues:     c.deadlineRequeues,
		Quarantined:          quarantined,
		QuarantineRejections: c.quarantineRejections,
	}
}

// WantedWorkers estimates the fleet size needed to drain the current
// evaluation backlog within the target window — the autoscaling signal
// behind the fedvald_fleet_wanted_workers gauge. The backlog's expected
// compute is (pending + in-flight tasks) × the fleet's EWMA evaluation
// latency; dividing by the window and the mean per-worker capacity yields
// a worker count. With no latency history yet the current fleet size is
// returned (no evidence to scale on); an empty backlog wants zero.
func (c *Coordinator) WantedWorkers(target time.Duration) int {
	if target <= 0 {
		target = 30 * time.Second
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	backlog := len(c.pending)
	for _, w := range c.workers {
		backlog += len(w.inflight)
	}
	if backlog == 0 {
		return 0
	}
	ewma := c.fleetEWMALocked()
	if ewma <= 0 {
		if n := len(c.workers); n > 0 {
			return n
		}
		return 1
	}
	meanCap := 1.0
	if n := len(c.workers); n > 0 {
		meanCap = float64(c.totalCapacityLocked()) / float64(n)
	}
	wanted := int(math.Ceil(float64(backlog) * ewma / float64(target) / meanCap))
	if wanted < 1 {
		wanted = 1
	}
	return wanted
}

// Close shuts the coordinator down: the listener stops accepting, the
// straggler scan stops, every worker connection is closed, and all queued
// work is handed back for local evaluation so no Eval caller blocks
// forever.
func (c *Coordinator) Close() error {
	c.lnMu.Lock()
	if c.ln != nil {
		c.ln.Close()
		c.ln = nil
	}
	c.lnMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	workers := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	c.mu.Unlock()
	if c.specStop != nil {
		close(c.specStop)
		<-c.specDone
	}
	for _, w := range workers {
		c.removeWorker(w) // requeues in-flight work, then local fallback
	}
	return nil
}

// Session is one job's handle on the fleet. Its Eval method is the remote
// utility.EvalFunc plugged into the job's oracle; local is the in-process
// evaluation used as the fallback.
type Session struct {
	c     *Coordinator
	spec  ProblemSpec
	ctx   context.Context
	local utility.EvalFunc
	// warm snapshots the coordinator-side cached utilities for the spec,
	// shipped to each worker with its first spec message; nil disables
	// warm-start.
	warm func() map[combin.Coalition]float64
	// localSem bounds concurrent local fallback evaluations at the job's
	// own local limit: the pool is sized for the fleet's capacity, so
	// when the fleet vanishes mid-job the queued Evals must not all start
	// training on this machine at once.
	localSem chan struct{}

	// observe and trace are the job's telemetry hooks (see SessionConfig).
	observe func(source string, seconds float64)
	trace   *obs.Trace
	// agg accumulates one dispatch span per worker that served this
	// session, flushed into trace at Close. Guarded by c.mu.
	agg map[int]*dispatchStats

	// closed is guarded by c.mu.
	closed bool
	stop   chan struct{}
}

// dispatchStats is a session's running aggregate of one worker's service:
// it materialises as a per-worker "dispatch" span in the job trace, with
// the worker-reported evaluation time merged in from result messages.
type dispatchStats struct {
	name        string
	first, last time.Time
	tasks       int64
	warm        int64
	fresh       int64
	failed      int64
	speculative int64
	evalNanos   int64
}

// SessionConfig configures one job's fleet session.
type SessionConfig struct {
	// Spec identifies the job's valuation problem to workers.
	Spec ProblemSpec
	// Local is the in-process evaluation fallback.
	Local utility.EvalFunc
	// LocalLimit bounds the session's concurrent local-fallback
	// evaluations — the concurrency the job would use with no fleet at all
	// (<= 0 selects GOMAXPROCS).
	LocalLimit int
	// WarmSnapshot, when set, returns the coordinator-side cached
	// utilities for the spec (typically utility.Oracle.Snapshot after the
	// persistent store warmed it). Each worker receives the snapshot taken
	// at the moment its first task of this spec is dispatched, so a
	// recycled fleet never retrains what the daemon already knows.
	WarmSnapshot func() map[combin.Coalition]float64
	// Observe, when set, receives the coordinator-measured latency of
	// every fleet-served result under source "remote" — the service's
	// eval-latency-by-source histograms hang off it. Called outside the
	// scheduler lock.
	Observe func(source string, seconds float64)
	// Trace, when set, collects the job's fleet-side spans: one
	// per-worker dispatch span (task counts by warm/fresh/speculative
	// outcome plus worker-reported evaluation seconds, flushed at Close)
	// and instant redispatch events with their reason (worker-death or
	// straggler).
	Trace *obs.Trace
}

// NewSession registers a job with the coordinator without warm-start; see
// NewSessionWith. ctx is the job's context: when it is done, queued work is
// dropped, workers are told to skip the spec, and blocked Eval calls abort.
func (c *Coordinator) NewSession(ctx context.Context, spec ProblemSpec, local utility.EvalFunc, localLimit int) *Session {
	return c.NewSessionWith(ctx, SessionConfig{Spec: spec, Local: local, LocalLimit: localLimit})
}

// NewSessionWith registers a job with the coordinator. ctx is the job's
// context: when it is done, queued work is dropped, workers are told to
// skip the spec, and blocked Eval calls abort.
func (c *Coordinator) NewSessionWith(ctx context.Context, cfg SessionConfig) *Session {
	if ctx == nil {
		ctx = context.Background() //fedvallint:allow(ctxthread) nil-ctx compat fallback; callers that care pass their own
	}
	localLimit := cfg.LocalLimit
	if localLimit <= 0 {
		localLimit = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		c: c, spec: cfg.Spec, ctx: ctx, local: cfg.Local, warm: cfg.WarmSnapshot,
		observe:  cfg.Observe,
		trace:    cfg.Trace,
		localSem: make(chan struct{}, localLimit),
		stop:     make(chan struct{}),
	}
	if s.trace != nil {
		s.agg = make(map[int]*dispatchStats)
	}
	// Push cancellation to the fleet as soon as it happens, not just when
	// the job's deferred Close runs: workers then skip the spec's queued
	// batches instead of training them into a void.
	go func() {
		select {
		case <-ctx.Done():
			s.c.cancelSpec(cfg.Spec.ID)
		case <-s.stop:
		}
	}()
	return s
}

// warmEntries materialises the session's warm snapshot for the wire.
func (s *Session) warmEntries() []warmEntry {
	if s.warm == nil {
		return nil
	}
	snap := s.warm()
	if len(snap) == 0 {
		return nil
	}
	out := make([]warmEntry, 0, len(snap))
	for coal, u := range snap {
		lo, hi := coal.Words()
		out = append(out, warmEntry{Lo: lo, Hi: hi, U: u})
	}
	return out
}

// Eval evaluates one coalition on the fleet, blocking until a result
// arrives. With no workers connected (or after coordinator shutdown) it
// evaluates locally. If the session context is cancelled while waiting it
// panics with *utility.CancelError — the oracle's cancellation contract,
// recovered by Prefetch and shapley.Run.
func (s *Session) Eval(coal combin.Coalition) float64 {
	if err := s.ctx.Err(); err != nil {
		panic(&utility.CancelError{Err: err})
	}
	t := s.c.enqueue(s, coal)
	if t == nil {
		return s.localEval(coal)
	}
	select {
	case r := <-t.ch:
		if r.fallback {
			return s.localEval(coal)
		}
		return r.u
	case <-s.ctx.Done():
		s.c.abandon(t)
		panic(&utility.CancelError{Err: s.ctx.Err()})
	}
}

// localEval runs the in-process fallback, bounded by the local machine's
// parallelism and aborting rather than training when the job is already
// cancelled (a worker's "spec cancelled" error reply can race ctx.Done in
// Eval's select).
func (s *Session) localEval(coal combin.Coalition) float64 {
	if err := s.ctx.Err(); err != nil {
		panic(&utility.CancelError{Err: err})
	}
	s.localSem <- struct{}{}
	defer func() { <-s.localSem }()
	return s.local(coal)
}

// enqueue queues one evaluation, or returns nil when the caller should
// evaluate locally (no fleet, closed session or coordinator).
func (c *Coordinator) enqueue(s *Session, coal combin.Coalition) *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || s.closed || len(c.workers) == 0 {
		return nil
	}
	c.nextTask++
	t := &task{id: c.nextTask, session: s, coal: coal, ch: make(chan taskResult, 1)}
	c.pending = append(c.pending, t)
	c.dispatchLocked()
	return t
}

// abandon forgets a task whose caller stopped waiting: dequeued if still
// pending; if already assigned, the eventual worker result is discarded by
// completeTask (the session is cancelled, so no new work follows it).
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.pending {
		if p == t {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
}

// cancelSpec tells every worker that received the spec to drop it.
func (c *Coordinator) cancelSpec(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.specs[id] {
			w.outbox = append(w.outbox, envelope{Cancel: &cancelMsg{SpecID: id}})
			w.outCond.Signal()
		}
	}
}

// Close ends the session: its queued tasks fall back to local delivery,
// workers drop the spec, and the registration is removed. Idempotent.
func (s *Session) Close() {
	s.c.mu.Lock()
	if s.closed {
		s.c.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	kept := s.c.pending[:0]
	for _, t := range s.c.pending {
		if t.session == s {
			t.deliver(taskResult{fallback: true})
			continue
		}
		kept = append(kept, t)
	}
	s.c.pending = kept
	for _, w := range s.c.workers {
		if w.specs[s.spec.ID] {
			w.outbox = append(w.outbox, envelope{Cancel: &cancelMsg{SpecID: s.spec.ID}})
			w.outCond.Signal()
		}
	}
	agg := s.agg
	s.agg = nil
	s.c.mu.Unlock()

	// Materialise the per-worker dispatch spans: one per worker that served
	// this job, carrying the worker-reported evaluation time merged from
	// its result messages. Done after unlock — the trace has its own lock.
	for _, a := range agg {
		end := a.last
		if end.IsZero() {
			end = a.first // assigned but never answered (e.g. worker died)
		}
		s.trace.Add(obs.Span{
			Name: "dispatch", Source: a.name, Start: a.first, End: end,
			Attrs: map[string]string{
				"tasks":        strconv.FormatInt(a.tasks, 10),
				"fresh":        strconv.FormatInt(a.fresh, 10),
				"warm":         strconv.FormatInt(a.warm, 10),
				"failed":       strconv.FormatInt(a.failed, 10),
				"speculative":  strconv.FormatInt(a.speculative, 10),
				"eval_seconds": strconv.FormatFloat(time.Duration(a.evalNanos).Seconds(), 'g', 6, 64),
			},
		})
	}
}
