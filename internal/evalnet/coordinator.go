package evalnet

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"

	"fedshap"
	"fedshap/internal/combin"
	"fedshap/internal/utility"
)

// Coordinator owns the worker fleet and schedules coalition evaluations
// onto it. It is safe for concurrent use by many jobs; a single Coordinator
// is shared by every job a valserve.Manager runs.
type Coordinator struct {
	mu      sync.Mutex
	workers map[int]*remoteWorker
	// pending is the FIFO of unassigned tasks; requeues from dead workers
	// go to the front so interrupted work finishes first.
	pending  []*task
	nextWkr  int
	nextTask uint64
	closed   bool

	lnMu sync.Mutex
	ln   net.Listener
}

// remoteWorker is the coordinator's view of one connected worker.
type remoteWorker struct {
	id       int
	name     string
	addr     string
	capacity int
	conn     net.Conn

	// inflight holds tasks assigned but unanswered; its size is bounded by
	// capacity. specs records which problem specs this worker has received.
	inflight map[uint64]*task
	specs    map[string]bool

	// outbox + outCond (on Coordinator.mu) feed the writer goroutine, so
	// dispatching never blocks on a slow connection.
	outbox  []envelope
	outCond *sync.Cond
	gone    bool
	done    int64
}

// task is one coalition evaluation in flight through the scheduler.
type task struct {
	id      uint64
	session *Session
	coal    combin.Coalition

	// worker is the id of the worker the task is assigned to (-1 when
	// queued). Guarded by Coordinator.mu.
	worker int

	once sync.Once
	ch   chan taskResult // buffered(1); delivered at most once
}

type taskResult struct {
	u float64
	// fallback asks the caller to evaluate locally (fleet gone, worker
	// error, or coordinator shut down).
	fallback bool
}

func (t *task) deliver(r taskResult) {
	t.once.Do(func() { t.ch <- r })
}

// NewCoordinator builds an empty coordinator; attach workers with Serve or
// Attach.
func NewCoordinator() *Coordinator {
	return &Coordinator{workers: make(map[int]*remoteWorker)}
}

// Serve accepts worker connections on ln until the listener closes (Close
// closes it). Each accepted connection is handshaken and attached.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.lnMu.Lock()
	c.ln = ln
	c.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := c.Attach(conn); err != nil {
				conn.Close()
			}
		}()
	}
}

// Attach performs the registration handshake on conn and, on success, adds
// the worker to the fleet and services it until the connection breaks.
func (c *Coordinator) Attach(conn net.Conn) error {
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	var hello envelope
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("evalnet: worker handshake: %w", err)
	}
	if hello.Hello == nil || hello.Hello.Proto != protoVersion {
		return fmt.Errorf("evalnet: worker handshake: bad hello (proto %v)", hello.Hello)
	}
	capacity := hello.Hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	w := &remoteWorker{
		name:     hello.Hello.Name,
		addr:     conn.RemoteAddr().String(),
		capacity: capacity,
		conn:     conn,
		inflight: make(map[uint64]*task),
		specs:    make(map[string]bool),
	}
	if err := enc.Encode(envelope{Hello: &helloMsg{Proto: protoVersion, Name: "coordinator"}}); err != nil {
		return fmt.Errorf("evalnet: worker handshake ack: %w", err)
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("evalnet: coordinator closed")
	}
	w.id = c.nextWkr
	c.nextWkr++
	w.outCond = sync.NewCond(&c.mu)
	c.workers[w.id] = w
	// A fresh worker may unblock queued work immediately.
	c.dispatchLocked()
	c.mu.Unlock()

	go c.writeLoop(w, enc)
	c.readLoop(w, dec)
	return nil
}

// writeLoop drains the worker's outbox; encoding happens outside the lock
// so a slow connection never stalls the scheduler.
func (c *Coordinator) writeLoop(w *remoteWorker, enc *gob.Encoder) {
	for {
		c.mu.Lock()
		for len(w.outbox) == 0 && !w.gone {
			w.outCond.Wait()
		}
		if w.gone && len(w.outbox) == 0 {
			c.mu.Unlock()
			return
		}
		msgs := w.outbox
		w.outbox = nil
		c.mu.Unlock()
		for _, m := range msgs {
			if err := enc.Encode(m); err != nil {
				c.removeWorker(w)
				return
			}
		}
	}
}

// readLoop consumes results until the connection breaks, then retires the
// worker and requeues whatever it still owed.
func (c *Coordinator) readLoop(w *remoteWorker, dec *gob.Decoder) {
	for {
		var e envelope
		if err := dec.Decode(&e); err != nil {
			c.removeWorker(w)
			return
		}
		if e.Result != nil {
			c.completeTask(w, *e.Result)
		}
	}
}

// completeTask delivers one worker result and refills the freed slot.
func (c *Coordinator) completeTask(w *remoteWorker, res resultMsg) {
	c.mu.Lock()
	t, ok := w.inflight[res.TaskID]
	if ok {
		delete(w.inflight, res.TaskID)
		if res.Err == "" {
			w.done++ // error replies produced no utility; don't count them
		}
		c.dispatchLocked()
	}
	c.mu.Unlock()
	if !ok {
		return // stale: task already retired with its session
	}
	if res.Err != "" {
		t.deliver(taskResult{fallback: true})
		return
	}
	t.deliver(taskResult{u: res.U})
}

// removeWorker retires a dead connection: its unanswered tasks go back to
// the front of the queue (never lost, never double-delivered — the dead
// link can produce no more results once inflight is cleared).
func (c *Coordinator) removeWorker(w *remoteWorker) {
	c.mu.Lock()
	if w.gone {
		c.mu.Unlock()
		return
	}
	w.gone = true
	delete(c.workers, w.id)
	orphans := make([]*task, 0, len(w.inflight))
	for _, t := range w.inflight {
		orphans = append(orphans, t)
	}
	w.inflight = make(map[uint64]*task)
	// Requeue in assignment order for determinism of the retry schedule.
	sort.Slice(orphans, func(a, b int) bool { return orphans[a].id < orphans[b].id })
	for _, t := range orphans {
		t.worker = -1
	}
	c.pending = append(orphans, c.pending...)
	c.dispatchLocked()
	w.outCond.Broadcast() // release the writer
	c.mu.Unlock()
	w.conn.Close()
}

// dispatchLocked assigns queued tasks to free slots, batching consecutive
// assignments to the same worker and spec into one taskMsg. With workers
// connected but saturated it leaves the queue alone; with no workers at
// all it hands every task back for local evaluation.
func (c *Coordinator) dispatchLocked() {
	type batchKey struct {
		wid  int
		spec string
	}
	batches := make(map[batchKey][]taskWire)
	var touched []*remoteWorker
	for len(c.pending) > 0 {
		t := c.pending[0]
		if t.session.closed {
			c.pending = c.pending[1:]
			t.deliver(taskResult{fallback: true})
			continue
		}
		w := c.pickWorkerLocked()
		if w == nil {
			if len(c.workers) == 0 {
				c.pending = c.pending[1:]
				t.deliver(taskResult{fallback: true})
				continue
			}
			break // fleet saturated; completions re-dispatch
		}
		c.pending = c.pending[1:]
		sid := t.session.spec.ID
		if !w.specs[sid] {
			w.specs[sid] = true
			w.outbox = append(w.outbox, envelope{Spec: &specMsg{Spec: t.session.spec}})
		}
		w.inflight[t.id] = t
		t.worker = w.id
		lo, hi := t.coal.Words()
		key := batchKey{w.id, sid}
		if len(batches[key]) == 0 {
			touched = append(touched, w)
		}
		batches[key] = append(batches[key], taskWire{ID: t.id, Lo: lo, Hi: hi})
	}
	for key, tasks := range batches {
		w := c.workers[key.wid]
		if w == nil {
			continue // raced with removeWorker; tasks were requeued there
		}
		w.outbox = append(w.outbox, envelope{Task: &taskMsg{SpecID: key.spec, Tasks: tasks}})
	}
	for _, w := range touched {
		w.outCond.Signal()
	}
}

// pickWorkerLocked returns the least-loaded worker with a free in-flight
// slot (load compared as inflight/capacity fractions), or nil.
func (c *Coordinator) pickWorkerLocked() *remoteWorker {
	var best *remoteWorker
	for _, w := range c.workers {
		if len(w.inflight) >= w.capacity {
			continue
		}
		if best == nil ||
			len(w.inflight)*best.capacity < len(best.inflight)*w.capacity ||
			(len(w.inflight)*best.capacity == len(best.inflight)*w.capacity && w.id < best.id) {
			best = w
		}
	}
	return best
}

// WorkerCount returns the number of connected workers.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// TotalCapacity returns the fleet's aggregate in-flight limit — the right
// size for an evaluation pool that keeps every worker busy.
func (c *Coordinator) TotalCapacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, w := range c.workers {
		total += w.capacity
	}
	return total
}

// Workers snapshots the fleet for the daemon's /v1/workers endpoint.
func (c *Coordinator) Workers() []fedshap.WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]fedshap.WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, fedshap.WorkerInfo{
			ID:        w.id,
			Name:      w.name,
			Addr:      w.addr,
			Capacity:  w.capacity,
			InFlight:  len(w.inflight),
			Completed: w.done,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Close shuts the coordinator down: the listener stops accepting, every
// worker connection is closed, and all queued work is handed back for
// local evaluation so no Eval caller blocks forever.
func (c *Coordinator) Close() error {
	c.lnMu.Lock()
	if c.ln != nil {
		c.ln.Close()
		c.ln = nil
	}
	c.lnMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	workers := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		workers = append(workers, w)
	}
	c.mu.Unlock()
	for _, w := range workers {
		c.removeWorker(w) // requeues in-flight work, then local fallback
	}
	return nil
}

// Session is one job's handle on the fleet. Its Eval method is the remote
// utility.EvalFunc plugged into the job's oracle; local is the in-process
// evaluation used as the fallback.
type Session struct {
	c     *Coordinator
	spec  ProblemSpec
	ctx   context.Context
	local utility.EvalFunc
	// localSem bounds concurrent local fallback evaluations at the job's
	// own local limit: the pool is sized for the fleet's capacity, so
	// when the fleet vanishes mid-job the queued Evals must not all start
	// training on this machine at once.
	localSem chan struct{}

	// closed is guarded by c.mu.
	closed bool
	stop   chan struct{}
}

// NewSession registers a job with the coordinator. ctx is the job's
// context: when it is done, queued work is dropped, workers are told to
// skip the spec, and blocked Eval calls abort. localLimit bounds the
// session's concurrent local-fallback evaluations — the concurrency the
// job would use with no fleet at all (<= 0 selects GOMAXPROCS) — so a
// pool widened for a large fleet collapses back to sane local parallelism
// when the fleet vanishes.
func (c *Coordinator) NewSession(ctx context.Context, spec ProblemSpec, local utility.EvalFunc, localLimit int) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	if localLimit <= 0 {
		localLimit = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		c: c, spec: spec, ctx: ctx, local: local,
		localSem: make(chan struct{}, localLimit),
		stop:     make(chan struct{}),
	}
	// Push cancellation to the fleet as soon as it happens, not just when
	// the job's deferred Close runs: workers then skip the spec's queued
	// batches instead of training them into a void.
	go func() {
		select {
		case <-ctx.Done():
			s.c.cancelSpec(spec.ID)
		case <-s.stop:
		}
	}()
	return s
}

// Eval evaluates one coalition on the fleet, blocking until a result
// arrives. With no workers connected (or after coordinator shutdown) it
// evaluates locally. If the session context is cancelled while waiting it
// panics with *utility.CancelError — the oracle's cancellation contract,
// recovered by Prefetch and shapley.Run.
func (s *Session) Eval(coal combin.Coalition) float64 {
	if err := s.ctx.Err(); err != nil {
		panic(&utility.CancelError{Err: err})
	}
	t := s.c.enqueue(s, coal)
	if t == nil {
		return s.localEval(coal)
	}
	select {
	case r := <-t.ch:
		if r.fallback {
			return s.localEval(coal)
		}
		return r.u
	case <-s.ctx.Done():
		s.c.abandon(t)
		panic(&utility.CancelError{Err: s.ctx.Err()})
	}
}

// localEval runs the in-process fallback, bounded by the local machine's
// parallelism and aborting rather than training when the job is already
// cancelled (a worker's "spec cancelled" error reply can race ctx.Done in
// Eval's select).
func (s *Session) localEval(coal combin.Coalition) float64 {
	if err := s.ctx.Err(); err != nil {
		panic(&utility.CancelError{Err: err})
	}
	s.localSem <- struct{}{}
	defer func() { <-s.localSem }()
	return s.local(coal)
}

// enqueue queues one evaluation, or returns nil when the caller should
// evaluate locally (no fleet, closed session or coordinator).
func (c *Coordinator) enqueue(s *Session, coal combin.Coalition) *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || s.closed || len(c.workers) == 0 {
		return nil
	}
	c.nextTask++
	t := &task{id: c.nextTask, session: s, coal: coal, worker: -1, ch: make(chan taskResult, 1)}
	c.pending = append(c.pending, t)
	c.dispatchLocked()
	return t
}

// abandon forgets a task whose caller stopped waiting: dequeued if still
// pending; if already assigned, the eventual worker result is discarded by
// completeTask (the session is cancelled, so no new work follows it).
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, p := range c.pending {
		if p == t {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
}

// cancelSpec tells every worker that received the spec to drop it.
func (c *Coordinator) cancelSpec(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.specs[id] {
			w.outbox = append(w.outbox, envelope{Cancel: &cancelMsg{SpecID: id}})
			w.outCond.Signal()
		}
	}
}

// Close ends the session: its queued tasks fall back to local delivery,
// workers drop the spec, and the registration is removed. Idempotent.
func (s *Session) Close() {
	s.c.mu.Lock()
	if s.closed {
		s.c.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	kept := s.c.pending[:0]
	for _, t := range s.c.pending {
		if t.session == s {
			t.deliver(taskResult{fallback: true})
			continue
		}
		kept = append(kept, t)
	}
	s.c.pending = kept
	for _, w := range s.c.workers {
		if w.specs[s.spec.ID] {
			w.outbox = append(w.outbox, envelope{Cancel: &cancelMsg{SpecID: s.spec.ID}})
			w.outCond.Signal()
		}
	}
	s.c.mu.Unlock()
}
