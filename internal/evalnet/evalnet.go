// Package evalnet distributes coalition utility evaluations across a fleet
// of remote worker machines. One coalition utility costs a full federated
// training run, so single-machine throughput is the binding constraint on
// large federations and heavy job traffic; this package removes it by
// turning the utility oracle's evaluation function into a remote call.
//
// The topology is one coordinator (embedded in the fedvald daemon) and N
// workers (cmd/fedvalworker daemons) that dial in and register. The
// protocol is gob over a net.Conn — the same stdlib substrate as
// internal/flnet — and deliberately small:
//
//	worker → coordinator   hello{name, capacity}
//	coordinator → worker   hello ack, then per job:
//	                       spec{problem, warm utilities}  once per (worker, job)
//	                       task{coalitions}  batches, ≤ capacity in flight
//	                       cancel{spec}      job cancelled or finished
//	worker → coordinator   result{coalition, utility} streamed as computed
//
// A ProblemSpec carries the job's normalized wire request
// (fedshap.JobRequest), not datasets: every problem in this repo is
// generated deterministically from its request fields and seed, so each
// worker rebuilds the identical federation locally and training yields
// bit-identical utilities to the in-process oracle. The first spec message
// a worker receives for a job also carries the coordinator's cached
// utilities for the job's fingerprint (warm-start), so a recycled or
// late-attaching worker never retrains a coalition the coordinator side
// already knows.
//
// The coordinator hands each job a Session whose Eval method is plugged in
// as the oracle's utility.EvalFunc (Oracle.WrapEval), so the existing
// Prefetch pool, sharded cache, budget accounting and JSONL write-through
// all apply unchanged — remote results land in the coordinator's cache and
// store exactly as local ones do. Scheduling is adaptive: the coordinator
// tracks an EWMA of each worker's evaluation latency and assigns work by
// expected completion time, and near the end of a job it speculatively
// re-dispatches a straggler's in-flight coalitions to idle workers — the
// first result wins and duplicates are discarded, so budget accounting and
// values stay bit-identical to serial evaluation. A dead worker's
// in-flight coalitions are requeued to the surviving fleet (or evaluated
// locally when no workers remain), and results are delivered at most once,
// so a killed worker never loses or double-counts an evaluation.
// Cancellation propagates: when a job's context is done, queued tasks are
// dropped, blocked Eval calls abort with *utility.CancelError, and workers
// are told to skip the spec's queued work.
//
// Local in-process evaluation remains the default: a coordinator with no
// attached workers is never consulted, and every Session carries the local
// evaluation function as its fallback.
package evalnet

import (
	"fedshap"
	"fedshap/internal/combin"
)

// protoVersion guards against mismatched coordinator/worker builds.
// Version 2 added warm-start utilities on the spec message; version 3
// added the worker-side evaluation duration on the result message.
const protoVersion = 3

// ProblemSpec identifies one job's valuation problem to a worker. Request
// fully determines the problem (datasets, model, FL config are all derived
// deterministically from it), which is what makes shipping a spec instead
// of gigabytes of training data possible.
type ProblemSpec struct {
	// ID is the coordinator-unique spec identifier (the job ID).
	ID string
	// Fingerprint is the problem's persistent-cache key, for worker-side
	// caching or logging.
	Fingerprint string
	// N is the federation size.
	N int
	// Request is the normalized job request the worker rebuilds the
	// problem from.
	Request fedshap.JobRequest
}

// helloMsg opens a connection in both directions: the worker announces
// itself, the coordinator acknowledges.
type helloMsg struct {
	Proto    int
	Name     string
	Capacity int
}

// specMsg delivers a problem spec to a worker, once per (worker, spec).
// Warm carries the coordinator's cached utilities for the spec at ship
// time: the worker pre-populates its own cache with them so coalitions the
// coordinator (or its persistent store) already knows are never retrained
// on the fleet.
type specMsg struct {
	Spec ProblemSpec
	Warm []warmEntry
}

// warmEntry is one (coalition, utility) pair shipped for warm-start.
type warmEntry struct {
	Lo, Hi uint64
	U      float64
}

// taskWire is one coalition evaluation assignment.
type taskWire struct {
	ID     uint64
	Lo, Hi uint64
}

// taskMsg assigns a batch of coalitions under one spec.
type taskMsg struct {
	SpecID string
	Tasks  []taskWire
}

// resultMsg streams one computed utility back. A non-empty Err means the
// worker could not produce the utility (spec build failure, cancellation);
// the coordinator then falls back to local evaluation for that coalition.
// Warm marks an answer served from the worker's cache (warm-start or a
// repeated coalition) rather than trained: the coordinator must not fold
// its near-zero latency into the worker's EWMA, or a warm fleet would
// look fast enough to make every real training a "straggler".
type resultMsg struct {
	SpecID string
	TaskID uint64
	Lo, Hi uint64
	U      float64
	Warm   bool
	Err    string
	// Nanos is the worker-side wall time spent producing the utility. A
	// duration rather than timestamps, so coordinator/worker clock skew
	// never corrupts the merged job trace; the coordinator folds it into
	// the job's per-worker dispatch spans.
	Nanos int64
}

// cancelMsg tells a worker to drop a spec: skip its queued tasks and free
// its cached problem.
type cancelMsg struct {
	SpecID string
}

// envelope is the single wire frame; exactly one exported field is
// non-nil.
type envelope struct {
	Hello  *helloMsg
	Spec   *specMsg
	Task   *taskMsg
	Result *resultMsg
	Cancel *cancelMsg

	// warm, when set on an outgoing Spec envelope, materialises Spec.Warm
	// just before encoding — in the writer goroutine, outside the
	// scheduler lock, so a large cache snapshot never stalls dispatching
	// (gob ignores unexported fields).
	warm func() []warmEntry
}

// coalition reconstructs the combin value from its wire words.
func (t taskWire) coalition() combin.Coalition {
	return combin.FromWords(t.Lo, t.Hi)
}
