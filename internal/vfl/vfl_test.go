package vfl

import (
	"math"
	"math/rand"
	"testing"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/shapley"
)

// verticalProblem builds a tabular task where feature blocks carry unequal
// signal: block 0 gets the informative columns, later blocks get noise.
func verticalProblem(t *testing.T, n int, seed int64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dim := 4 * n
	samples := 500
	d := dataset.New("vertical", samples, dim, 2)
	// Only the first block's columns carry label signal.
	for i := 0; i < samples; i++ {
		row := d.X.Row(i)
		for j := 0; j < dim; j++ {
			row[j] = rng.NormFloat64()
		}
		z := 1.5*row[0] - 1.2*row[1] + 0.8*row[2]
		if z > 0 {
			d.Y[i] = 1
		}
	}
	train, test := d.Split(0.7, rng)
	return &Problem{
		Train: train, Test: test,
		Blocks: EqualBlocks(dim, n),
		Epochs: 3, LR: 0.1, Seed: seed,
	}
}

func TestValidate(t *testing.T) {
	p := verticalProblem(t, 3, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overlapping blocks rejected.
	bad := *p
	bad.Blocks = []FeatureBlock{{Name: "a", Start: 0, Width: 4}, {Name: "b", Start: 2, Width: 4}}
	if err := bad.Validate(); err == nil {
		t.Errorf("overlapping blocks accepted")
	}
	// Out-of-range block rejected.
	bad2 := *p
	bad2.Blocks = []FeatureBlock{{Name: "a", Start: 0, Width: 9999}}
	if err := bad2.Validate(); err == nil {
		t.Errorf("out-of-range block accepted")
	}
}

func TestEqualBlocks(t *testing.T) {
	blocks := EqualBlocks(10, 3) // widths 4,3,3
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	total := 0
	for _, b := range blocks {
		total += b.Width
	}
	if total != 10 {
		t.Errorf("widths cover %d of 10", total)
	}
	if blocks[0].Start != 0 || blocks[1].Start != 4 || blocks[2].Start != 7 {
		t.Errorf("starts = %d,%d,%d", blocks[0].Start, blocks[1].Start, blocks[2].Start)
	}
}

func TestVerticalUtilityMonotone(t *testing.T) {
	p := verticalProblem(t, 3, 2)
	o, err := p.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	full := o.U(combin.FullCoalition(3))
	empty := o.U(combin.Empty)
	// Without any provider's features, only the bias trains → near chance.
	if empty > 0.65 {
		t.Errorf("empty-coalition accuracy %v looks too high", empty)
	}
	if full <= empty {
		t.Errorf("full features (%v) should beat none (%v)", full, empty)
	}
}

func TestVerticalShapleyRanksSignalBlock(t *testing.T) {
	p := verticalProblem(t, 3, 3)
	o, err := p.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	ctx := shapley.NewContext(o, 1)
	phi, err := (shapley.ExactMC{}).Values(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Provider 0 holds all the signal; it must dominate.
	if !(phi[0] > phi[1] && phi[0] > phi[2]) {
		t.Errorf("signal provider not top-ranked: %v", phi)
	}
	// Noise providers are worth ~nothing.
	for i := 1; i < 3; i++ {
		if math.Abs(phi[i]) > 0.25*phi[0] {
			t.Errorf("noise provider %d valued %v vs signal %v", i, phi[i], phi[0])
		}
	}
}

func TestVerticalIPSSWithinBudget(t *testing.T) {
	p := verticalProblem(t, 5, 4)
	o, err := p.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	ctx := shapley.NewContext(o, 2)
	phi, err := shapley.NewIPSS(10).Values(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(phi) != 5 {
		t.Fatalf("values = %v", phi)
	}
	if o.Evals() > 10 {
		t.Errorf("IPSS used %d evals for γ=10", o.Evals())
	}
}

func TestVerticalDeterminism(t *testing.T) {
	run := func() []float64 {
		p := verticalProblem(t, 3, 7)
		o, err := p.Oracle()
		if err != nil {
			t.Fatal(err)
		}
		phi, err := (shapley.ExactMC{}).Values(shapley.NewContext(o, 1))
		if err != nil {
			t.Fatal(err)
		}
		return phi
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vertical valuation non-deterministic at %d", i)
		}
	}
}
