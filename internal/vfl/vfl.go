// Package vfl implements a vertical federated learning substrate for data
// valuation: providers hold disjoint *feature blocks* of the same sample
// population (bank features, telecom features, retail features, …), and a
// label holder coordinates training. The paper's evaluation is horizontal,
// but its Adult dataset "is commonly used in vertical FL" and the DIG-FL
// baseline explicitly covers both settings — this package extends the
// valuation machinery to that setting.
//
// The model is split multinomial logistic regression — the canonical
// vertical-FL architecture: each provider computes partial logits from its
// feature block, the coordinator sums them with a bias and applies softmax.
// Training a coalition S uses only S's feature blocks, so the utility
// oracle U(M_S) measures how much predictive power each provider's
// *features* contribute, and the Shapley machinery applies unchanged.
package vfl

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
	"fedshap/internal/utility"
)

// FeatureBlock is one provider's vertical slice: a contiguous range of
// feature columns.
type FeatureBlock struct {
	// Name identifies the provider.
	Name string
	// Start and Width give the column range [Start, Start+Width) in the
	// full design matrix.
	Start, Width int
}

// Problem is a vertical valuation problem: the full aligned design matrix,
// the labels, the provider blocks, and the training configuration.
type Problem struct {
	// Train and Test are the aligned datasets over the full feature space.
	Train, Test *dataset.Dataset
	// Blocks lists each provider's feature range; blocks must be disjoint
	// but need not cover all columns (uncovered columns belong to the
	// coordinator and are always available).
	Blocks []FeatureBlock
	// Epochs and LR configure the split-model SGD.
	Epochs int
	LR     float64
	Seed   int64
}

// Validate checks block disjointness and bounds.
func (p *Problem) Validate() error {
	if p.Train == nil || p.Test == nil {
		return fmt.Errorf("vfl: problem needs train and test data")
	}
	dim := p.Train.Dim()
	if p.Test.Dim() != dim {
		return fmt.Errorf("vfl: train dim %d != test dim %d", dim, p.Test.Dim())
	}
	covered := make([]bool, dim)
	for _, b := range p.Blocks {
		if b.Width <= 0 || b.Start < 0 || b.Start+b.Width > dim {
			return fmt.Errorf("vfl: block %q range [%d,%d) outside %d features",
				b.Name, b.Start, b.Start+b.Width, dim)
		}
		for c := b.Start; c < b.Start+b.Width; c++ {
			if covered[c] {
				return fmt.Errorf("vfl: feature column %d claimed by two blocks", c)
			}
			covered[c] = true
		}
	}
	return nil
}

// N returns the number of feature providers.
func (p *Problem) N() int { return len(p.Blocks) }

// splitLogReg is multinomial logistic regression whose active features are
// masked to a coalition's blocks.
type splitLogReg struct {
	w       *tensor.Matrix // classes × dim
	b       tensor.Vector
	classes int
	active  []bool // feature mask
}

func newSplitLogReg(dim, classes int, active []bool, seed int64) *splitLogReg {
	rng := rand.New(rand.NewSource(seed))
	m := &splitLogReg{
		w:       tensor.NewMatrix(classes, dim),
		b:       tensor.NewVector(classes),
		classes: classes,
		active:  active,
	}
	m.w.XavierInit(rng)
	// Zero out inactive columns so they contribute nothing.
	for c := 0; c < classes; c++ {
		row := m.w.Row(c)
		for j, a := range active {
			if !a {
				row[j] = 0
			}
		}
	}
	return m
}

func (m *splitLogReg) scores(x tensor.Vector, out tensor.Vector) tensor.Vector {
	if out == nil {
		out = tensor.NewVector(m.classes)
	}
	for c := 0; c < m.classes; c++ {
		row := m.w.Row(c)
		var s float64
		for j, a := range m.active {
			if a {
				s += row[j] * x[j]
			}
		}
		out[c] = s + m.b[c]
	}
	return tensor.Softmax(out, out)
}

func (m *splitLogReg) trainEpoch(ds *dataset.Dataset, lr float64, rng *rand.Rand) {
	probs := tensor.NewVector(m.classes)
	for _, i := range rng.Perm(ds.Len()) {
		x := ds.X.Row(i)
		m.scores(x, probs)
		y := ds.Y[i]
		for c := 0; c < m.classes; c++ {
			g := probs[c]
			if c == y {
				g -= 1
			}
			if g == 0 {
				continue
			}
			m.b[c] -= lr * g
			row := m.w.Row(c)
			for j, a := range m.active {
				if a {
					row[j] -= lr * g * x[j]
				}
			}
		}
	}
}

func (m *splitLogReg) accuracy(ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	probs := tensor.NewVector(m.classes)
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		if m.scores(ds.X.Row(i), probs).ArgMax() == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// Oracle builds the vertical utility oracle: U(M_S) is the test accuracy of
// the split model trained with only the feature blocks of providers in S
// (plus any coordinator-owned columns not claimed by any block).
func (p *Problem) Oracle() (*utility.Oracle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dim := p.Train.Dim()
	epochs := p.Epochs
	if epochs <= 0 {
		epochs = 3
	}
	lr := p.LR
	if lr <= 0 {
		lr = 0.1
	}
	// Coordinator-owned columns: not claimed by any block.
	baseActive := make([]bool, dim)
	for j := range baseActive {
		baseActive[j] = true
	}
	for _, b := range p.Blocks {
		for c := b.Start; c < b.Start+b.Width; c++ {
			baseActive[c] = false
		}
	}
	blocks := p.Blocks
	train, test := p.Train, p.Test
	seed := p.Seed
	return utility.NewOracle(len(blocks), func(s combin.Coalition) float64 {
		active := append([]bool(nil), baseActive...)
		for _, i := range s.Members() {
			b := blocks[i]
			for c := b.Start; c < b.Start+b.Width; c++ {
				active[c] = true
			}
		}
		m := newSplitLogReg(dim, train.NumClasses, active, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		for e := 0; e < epochs; e++ {
			m.trainEpoch(train, lr, rng)
		}
		return m.accuracy(test)
	}), nil
}

// EqualBlocks partitions dim features into n contiguous blocks of (nearly)
// equal width, a convenience for building synthetic vertical problems.
func EqualBlocks(dim, n int) []FeatureBlock {
	if n <= 0 {
		return nil
	}
	out := make([]FeatureBlock, n)
	start := 0
	for i := 0; i < n; i++ {
		width := dim / n
		if i < dim%n {
			width++
		}
		out[i] = FeatureBlock{
			Name:  fmt.Sprintf("provider-%d", i),
			Start: start,
			Width: width,
		}
		start += width
	}
	return out
}
