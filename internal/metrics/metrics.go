// Package metrics implements the evaluation measures of the paper's Sec. V:
// the ℓ2 relative approximation error (Eq. 21), the property-based proxies
// used when ground truth is infeasible (Fig. 9: no-free-rider and
// symmetric-fairness violations), and the run-to-run variance statistics of
// Fig. 10, plus rank-quality measures useful for downstream auditing.
package metrics

import (
	"math"
	"sort"
)

// L2RelativeError returns ‖φ̂ − φ‖₂ / ‖φ‖₂ (Eq. 21). A zero ground-truth
// vector yields the absolute ℓ2 norm of the estimate.
func L2RelativeError(approx, exact []float64) float64 {
	if len(approx) != len(exact) {
		panic("metrics: L2RelativeError length mismatch")
	}
	var num, den float64
	for i := range exact {
		d := approx[i] - exact[i]
		num += d * d
		den += exact[i] * exact[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// FreeRiderError measures violation of the no-free-rider property for the
// clients known to hold empty datasets: the ℓ2 norm of their assigned
// values, normalised by the ℓ2 norm of all values. Zero is perfect.
func FreeRiderError(values []float64, freeRiders []int) float64 {
	var num, den float64
	for _, v := range values {
		den += v * v
	}
	for _, i := range freeRiders {
		num += values[i] * values[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// SymmetryError measures violation of symmetric fairness for known groups
// of clients with identical datasets: the root-mean-square deviation of
// each group member's value from the group mean, normalised by the ℓ2 norm
// of all values. Zero is perfect.
func SymmetryError(values []float64, groups [][]int) float64 {
	var den float64
	for _, v := range values {
		den += v * v
	}
	var num float64
	cnt := 0
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		var mean float64
		for _, i := range g {
			mean += values[i]
		}
		mean /= float64(len(g))
		for _, i := range g {
			d := values[i] - mean
			num += d * d
			cnt++
		}
	}
	if den == 0 || cnt == 0 {
		return 0
	}
	return math.Sqrt(num) / math.Sqrt(den)
}

// PropertyError is the Fig. 9 proxy: the mean of the free-rider and
// symmetry violations.
func PropertyError(values []float64, freeRiders []int, duplicateGroups [][]int) float64 {
	return (FreeRiderError(values, freeRiders) + SymmetryError(values, duplicateGroups)) / 2
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// VectorVariance returns the run-to-run variance of a vector estimator:
// the mean over coordinates of the per-coordinate sample variance across
// runs (runs[r][i] = value of client i in run r). This is the statistic of
// the paper's Fig. 10.
func VectorVariance(runs [][]float64) float64 {
	if len(runs) == 0 {
		return 0
	}
	n := len(runs[0])
	if n == 0 {
		return 0
	}
	var total float64
	col := make([]float64, len(runs))
	for i := 0; i < n; i++ {
		for r := range runs {
			col[r] = runs[r][i]
		}
		total += Variance(col)
	}
	return total / float64(n)
}

// KendallTau returns the Kendall rank correlation τ between two value
// vectors — a downstream-relevant measure of whether an approximation
// preserves the client *ranking* even when magnitudes drift.
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: KendallTau length mismatch")
	}
	n := len(a)
	if n < 2 {
		return 1
	}
	var concordant, discordant float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da, db := a[i]-a[j], b[i]-b[j]
			p := da * db
			switch {
			case p > 0:
				concordant++
			case p < 0:
				discordant++
			}
		}
	}
	pairs := float64(n*(n-1)) / 2
	return (concordant - discordant) / pairs
}

// TopKOverlap returns |top-k(a) ∩ top-k(b)| / k: how well the approximation
// identifies the k most valuable clients.
func TopKOverlap(a, b []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	ta, tb := topK(a, k), topK(b, k)
	inter := 0
	for i := range ta {
		if tb[i] {
			inter++
		}
	}
	return float64(inter) / float64(k)
}

func topK(xs []float64, k int) map[int]bool {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make(map[int]bool, k)
	for _, i := range idx[:k] {
		out[i] = true
	}
	return out
}
