package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL2RelativeError(t *testing.T) {
	exact := []float64{3, 4}
	if got := L2RelativeError(exact, exact); got != 0 {
		t.Errorf("identical vectors: %v", got)
	}
	approx := []float64{3, 4 + 5}
	// ‖(0,5)‖ / ‖(3,4)‖ = 1
	if got := L2RelativeError(approx, exact); math.Abs(got-1) > 1e-12 {
		t.Errorf("error = %v, want 1", got)
	}
	// Zero ground truth: absolute norm.
	if got := L2RelativeError([]float64{3, 4}, []float64{0, 0}); math.Abs(got-5) > 1e-12 {
		t.Errorf("zero-truth error = %v, want 5", got)
	}
}

func TestL2RelativeErrorScaleInvariance(t *testing.T) {
	f := func(a, b, c float64) bool {
		norm := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 100)
		}
		a, b, c = norm(a), norm(b), norm(c)
		exact := []float64{a + 1, b + 2, c + 3}
		approx := []float64{a + 1.1, b + 1.9, c + 3.2}
		e1 := L2RelativeError(approx, exact)
		// Scaling both by 10 preserves the relative error.
		scale := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = 10 * x
			}
			return out
		}
		e2 := L2RelativeError(scale(approx), scale(exact))
		return math.Abs(e1-e2) < 1e-9*(1+e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreeRiderError(t *testing.T) {
	values := []float64{0.5, 0.0, 0.5}
	if got := FreeRiderError(values, []int{1}); got != 0 {
		t.Errorf("clean free rider error = %v", got)
	}
	values2 := []float64{0.5, 0.5, 0.5}
	got := FreeRiderError(values2, []int{1})
	want := 0.5 / math.Sqrt(0.75)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("error = %v, want %v", got, want)
	}
	// No riders → 0.
	if FreeRiderError(values2, nil) != 0 {
		t.Errorf("no riders should give 0")
	}
}

func TestSymmetryError(t *testing.T) {
	values := []float64{0.3, 0.3, 0.4}
	if got := SymmetryError(values, [][]int{{0, 1}}); got != 0 {
		t.Errorf("equal duplicates error = %v", got)
	}
	values2 := []float64{0.2, 0.4, 0.4}
	if got := SymmetryError(values2, [][]int{{0, 1}}); got == 0 {
		t.Errorf("unequal duplicates should give positive error")
	}
	// Singleton groups contribute nothing.
	if got := SymmetryError(values2, [][]int{{0}}); got != 0 {
		t.Errorf("singleton group error = %v", got)
	}
}

func TestPropertyError(t *testing.T) {
	values := []float64{0.5, 0, 0.25, 0.25}
	got := PropertyError(values, []int{1}, [][]int{{2, 3}})
	if got != 0 {
		t.Errorf("perfect values give property error %v", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Errorf("degenerate inputs mishandled")
	}
}

func TestVectorVariance(t *testing.T) {
	// Identical runs → zero variance.
	runs := [][]float64{{1, 2}, {1, 2}, {1, 2}}
	if got := VectorVariance(runs); got != 0 {
		t.Errorf("identical runs variance = %v", got)
	}
	// Known case: coordinate 0 varies {0,2} (var 2), coordinate 1 fixed.
	runs2 := [][]float64{{0, 5}, {2, 5}}
	if got := VectorVariance(runs2); math.Abs(got-1) > 1e-12 {
		t.Errorf("variance = %v, want 1 (mean of 2 and 0)", got)
	}
	if VectorVariance(nil) != 0 {
		t.Errorf("empty runs should give 0")
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := KendallTau(a, a); got != 1 {
		t.Errorf("τ(self) = %v", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := KendallTau(a, rev); got != -1 {
		t.Errorf("τ(reversed) = %v", got)
	}
	if got := KendallTau([]float64{1}, []float64{2}); got != 1 {
		t.Errorf("τ(singleton) = %v", got)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{0.9, 0.1, 0.8, 0.2}
	b := []float64{0.8, 0.2, 0.9, 0.1}
	if got := TopKOverlap(a, b, 2); got != 1 {
		t.Errorf("overlap = %v, want 1 (same top-2 set)", got)
	}
	c := []float64{0.1, 0.9, 0.2, 0.8}
	if got := TopKOverlap(a, c, 2); got != 0 {
		t.Errorf("overlap = %v, want 0", got)
	}
	if got := TopKOverlap(a, c, 0); got != 1 {
		t.Errorf("k=0 overlap = %v, want 1", got)
	}
}
