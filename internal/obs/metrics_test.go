package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// checkExposition is a strict Prometheus text-format (0.0.4) line checker:
// every line must be a well-formed # HELP, # TYPE, or sample line; every
// sample must belong to the most recently declared family (allowing the
// _bucket/_sum/_count expansions for histograms); histogram buckets must
// be cumulative and end in a +Inf bucket equal to _count. It returns the
// parsed samples keyed by "name{labels}".
func checkExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9.e+\-]+|\+Inf|NaN)$`)
	labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	samples := make(map[string]float64)
	var curName, curType string
	seenHelp := map[string]bool{}
	var lastBucketCum float64
	var sawInf bool
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			if seenHelp[name] {
				t.Fatalf("line %d: duplicate HELP for %s", i+1, name)
			}
			seenHelp[name] = true
			curName, curType = name, ""
			lastBucketCum, sawInf = 0, false
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if fields[0] != curName {
				t.Fatalf("line %d: TYPE for %s not preceded by its HELP (current family %s)", i+1, fields[0], curName)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", i+1, fields[1])
			}
			curType = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", i+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample line %q", i+1, line)
			}
			name, labels, valStr := m[1], m[3], m[4]
			base := name
			isBucket := false
			if curType == "histogram" {
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if strings.HasSuffix(name, suf) {
						base = strings.TrimSuffix(name, suf)
						isBucket = suf == "_bucket"
					}
				}
			}
			if base != curName {
				t.Fatalf("line %d: sample %s outside its family block (current %s)", i+1, name, curName)
			}
			if curType == "" {
				t.Fatalf("line %d: sample %s before TYPE line", i+1, name)
			}
			if labels != "" {
				for _, pair := range splitLabels(labels) {
					if !labelRe.MatchString(pair) {
						t.Fatalf("line %d: malformed label pair %q", i+1, pair)
					}
				}
			}
			var v float64
			switch valStr {
			case "+Inf":
				v = math.Inf(1)
			case "NaN":
				v = math.NaN()
			default:
				var err error
				v, err = strconv.ParseFloat(valStr, 64)
				if err != nil {
					t.Fatalf("line %d: bad value %q: %v", i+1, valStr, err)
				}
			}
			if isBucket {
				if v < lastBucketCum {
					t.Fatalf("line %d: histogram %s buckets not cumulative (%g after %g)", i+1, base, v, lastBucketCum)
				}
				lastBucketCum = v
				if strings.Contains(labels, `le="+Inf"`) {
					sawInf = true
				}
			}
			if strings.HasSuffix(name, "_count") && curType == "histogram" {
				if !sawInf {
					t.Fatalf("line %d: histogram %s has no +Inf bucket before _count", i+1, base)
				}
				if v != lastBucketCum {
					t.Fatalf("line %d: histogram %s _count %g != +Inf bucket %g", i+1, base, v, lastBucketCum)
				}
			}
			samples[name+"{"+labels+"}"] = v
		}
	}
	return samples
}

// splitLabels splits a label body on commas not inside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("fedvald_jobs_submitted_total", "Jobs accepted.")
	c.Add(3)
	done := r.NewCounter("fedvald_jobs_completed_total", "Jobs finished.", "state", "done")
	failed := r.NewCounter("fedvald_jobs_completed_total", "Jobs finished.", "state", "failed")
	done.Add(2)
	failed.Inc()
	g := r.NewGauge("fedvald_sse_subscribers", "Attached SSE subscribers.")
	g.Set(4)
	g.Add(-1)
	r.NewGaugeFunc("fedvald_journal_bytes", "Journal size.", func() float64 { return 123 })
	h := r.NewHistogram("fedvald_job_duration_seconds", "End-to-end job latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99)
	r.NewCollector("fedvald_fleet_worker_inflight_tasks", "In-flight tasks per worker.", TypeGauge, func() []Sample {
		return []Sample{
			{Labels: []string{"worker", `w"1`, "id", "1"}, Value: 2},
			{Labels: []string{"worker", "w2", "id", "2"}, Value: 0},
		}
	})

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := sb.String()
	samples := checkExposition(t, text)

	want := map[string]float64{
		`fedvald_jobs_submitted_total{}`:                            3,
		`fedvald_jobs_completed_total{state="done"}`:                2,
		`fedvald_jobs_completed_total{state="failed"}`:              1,
		`fedvald_sse_subscribers{}`:                                 3,
		`fedvald_journal_bytes{}`:                                   123,
		`fedvald_job_duration_seconds_bucket{le="0.1"}`:             1,
		`fedvald_job_duration_seconds_bucket{le="1"}`:               2,
		`fedvald_job_duration_seconds_bucket{le="10"}`:              2,
		`fedvald_job_duration_seconds_bucket{le="+Inf"}`:            3,
		`fedvald_job_duration_seconds_count{}`:                      3,
		`fedvald_fleet_worker_inflight_tasks{worker="w\"1",id="1"}`: 2,
		`fedvald_fleet_worker_inflight_tasks{worker="w2",id="2"}`:   0,
	}
	for key, v := range want {
		got, ok := samples[key]
		if !ok {
			t.Errorf("missing sample %s in exposition:\n%s", key, text)
			continue
		}
		if got != v {
			t.Errorf("sample %s = %g, want %g", key, got, v)
		}
	}
	sum := samples[`fedvald_job_duration_seconds_sum{}`]
	if math.Abs(sum-99.55) > 1e-9 {
		t.Errorf("histogram sum = %g, want 99.55", sum)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	// le is inclusive: a sample equal to a bound lands in that bound's
	// bucket, per the exposition format.
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.1, 1e9} {
		h.Observe(v)
	}
	raw := make([]int64, len(h.counts))
	for i := range h.counts {
		raw[i] = h.counts[i].Load()
	}
	want := []int64{2, 2, 1, 2} // ≤1: {0.5, 1}; ≤2: {1.0000001, 2}; ≤5: {5}; +Inf: {5.1, 1e9}
	for i, w := range want {
		if raw[i] != w {
			t.Errorf("bucket %d count = %d, want %d (raw %v)", i, raw[i], w, raw)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

func TestLint(t *testing.T) {
	good := map[string]Type{
		"fedvald_jobs_submitted_total": TypeCounter,
		"fedvald_job_duration_seconds": TypeHistogram,
		"fedvald_journal_bytes":        TypeGauge,
		"fedvald_cache_hit_ratio":      TypeGauge,
		"fedvalworker_eval_seconds":    TypeHistogram,
		"fedvalworker_active_specs":    TypeGauge,
		"fedvald_fleet_wanted_workers": TypeGauge,
		"fedvald_fleet_pending_tasks":  TypeGauge,
		"fedvald_sse_subscribers":      TypeGauge,
		"fedvald_store_fingerprints":   TypeGauge,
		"fedvald_job_queue_depth_jobs": TypeGauge,
	}
	if probs := Lint(good); len(probs) != 0 {
		t.Fatalf("lint flagged conforming names: %v", probs)
	}
	bad := map[string]Type{
		"jobs_submitted_total":   TypeCounter,   // no process prefix
		"fedvald_jobs_submitted": TypeCounter,   // counter without _total
		"fedvald_job_duration":   TypeHistogram, // histogram without unit
		"fedvald_queue_depth":    TypeGauge,     // gauge without unit suffix
		"fedvald_evals_total":    TypeGauge,     // gauge masquerading as counter
	}
	probs := Lint(bad)
	if len(probs) != len(bad) {
		t.Fatalf("lint found %d problems, want %d: %v", len(probs), len(bad), probs)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	donech := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
			donech <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-donech
	}
	if g.Value() != 4000 {
		t.Fatalf("gauge = %g, want 4000", g.Value())
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("fedvald_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.NewGauge("fedvald_x_total", "x")
}
