package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one step of a job's lifecycle: a named interval with a source
// (the daemon, or a worker's name) and free-form string attributes. An
// instant event is a span whose End equals its Start; a span still open
// when the trace is snapshotted has a zero End.
type Span struct {
	Name   string
	Source string
	Start  time.Time
	End    time.Time
	Attrs  map[string]string
}

// Duration returns the span's length, or zero while it is open.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Trace records the spans of one job. It is safe for concurrent use, and
// every method is a no-op on a nil *Trace, so instrumentation points never
// branch on whether tracing is enabled.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// StartSpan opens a span now and returns a handle to close it. The handle
// is nil-safe like the trace itself.
func (t *Trace) StartSpan(name, source string) *SpanHandle {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Name: name, Source: source, Start: time.Now().UTC()})
	return &SpanHandle{t: t, idx: len(t.spans) - 1}
}

// Event records an instant span with optional "key", "value" attribute
// pairs.
func (t *Trace) Event(name, source string, attrs ...string) {
	if t == nil {
		return
	}
	now := time.Now().UTC()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Name: name, Source: source, Start: now, End: now, Attrs: attrMap(attrs)})
}

// Add appends an externally built span — the merge point for spans
// assembled from worker-reported durations.
func (t *Trace) Add(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, sp)
}

// Snapshot returns a copy of the recorded spans ordered by start time
// (ties keep record order), safe to serialize while the job still runs.
func (t *Trace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	for i, sp := range t.spans {
		out[i] = sp
		if sp.Attrs != nil {
			m := make(map[string]string, len(sp.Attrs))
			for k, v := range sp.Attrs {
				m[k] = v
			}
			out[i].Attrs = m
		}
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SpanHandle closes or annotates a span opened by StartSpan.
type SpanHandle struct {
	t   *Trace
	idx int
}

// SetAttr sets one attribute on the span.
func (h *SpanHandle) SetAttr(key, value string) {
	if h == nil {
		return
	}
	h.t.mu.Lock()
	defer h.t.mu.Unlock()
	sp := &h.t.spans[h.idx]
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]string, 4)
	}
	sp.Attrs[key] = value
}

// SetInt sets one integer attribute on the span.
func (h *SpanHandle) SetInt(key string, value int64) {
	h.SetAttr(key, strconv.FormatInt(value, 10))
}

// End closes the span now. Ending twice keeps the first end time.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.t.mu.Lock()
	defer h.t.mu.Unlock()
	sp := &h.t.spans[h.idx]
	if sp.End.IsZero() {
		sp.End = time.Now().UTC()
	}
}

// attrMap folds "key", "value" varargs into a map (nil when empty).
func attrMap(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}
