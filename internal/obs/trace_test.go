package obs

import (
	"testing"
	"time"
)

func TestTraceSpansAndEvents(t *testing.T) {
	tr := NewTrace()
	h := tr.StartSpan("queue", "daemon")
	time.Sleep(time.Millisecond)
	h.SetInt("depth", 3)
	h.End()
	tr.Event("redispatch", "daemon", "reason", "worker-death", "worker", "w1")
	tr.Add(Span{Name: "dispatch", Source: "w1", Start: time.Now().Add(-time.Second).UTC(), End: time.Now().UTC()})

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Snapshot orders by start time: the worker span started earliest.
	if spans[0].Name != "dispatch" {
		t.Errorf("first span = %s, want dispatch (start-time order)", spans[0].Name)
	}
	var q, e *Span
	for i := range spans {
		switch spans[i].Name {
		case "queue":
			q = &spans[i]
		case "redispatch":
			e = &spans[i]
		}
	}
	if q == nil || e == nil {
		t.Fatalf("missing spans in %+v", spans)
	}
	if q.Duration() < time.Millisecond {
		t.Errorf("queue span duration %v, want >= 1ms", q.Duration())
	}
	if q.Attrs["depth"] != "3" {
		t.Errorf("queue attrs = %v", q.Attrs)
	}
	if e.Attrs["reason"] != "worker-death" || !e.End.Equal(e.Start) {
		t.Errorf("event span = %+v", *e)
	}
}

func TestTraceOpenSpan(t *testing.T) {
	tr := NewTrace()
	tr.StartSpan("prefetch", "daemon")
	spans := tr.Snapshot()
	if len(spans) != 1 || !spans[0].End.IsZero() || spans[0].Duration() != 0 {
		t.Fatalf("open span snapshot = %+v", spans)
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	h := tr.StartSpan("x", "daemon")
	h.SetAttr("k", "v")
	h.End()
	tr.Event("y", "daemon")
	tr.Add(Span{Name: "z"})
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil trace snapshot = %v, want nil", got)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				h := tr.StartSpan("s", "daemon")
				h.SetInt("j", int64(j))
				h.End()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if n := len(tr.Snapshot()); n != 800 {
		t.Fatalf("got %d spans, want 800", n)
	}
}
