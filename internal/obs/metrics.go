// Package obs is the telemetry substrate shared by the fedvald daemon,
// the evalnet coordinator and the fedvalworker daemons: a lock-cheap
// metrics registry with a Prometheus text-format (0.0.4) writer, a
// lightweight per-job span recorder for end-to-end trace timelines, a
// pprof/debug listener, and structured-logging helpers.
//
// The package is deliberately dependency-free (stdlib only — no OTel, no
// client_golang): the valuation service needs counters, gauges,
// fixed-bucket histograms and spans, nothing more, and a scrape must never
// allocate proportionally to traffic. Hot-path instruments are built on
// atomics; the registry mutex is taken only at registration and scrape
// time.
//
// Metric naming is enforced at registration (see Lint): every series is
// prefixed with its emitting process (fedvald_, fedvalworker_) and carries
// a unit suffix (_seconds, _bytes, _total, ...), so dashboards and alerts
// survive refactors by construction rather than by review.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the series to stay a counter).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size histogram. Buckets are
// cumulative-on-read: Observe touches exactly one bucket counter plus the
// sum and count, so the hot path is three atomic operations and no locks.
type Histogram struct {
	bounds  []float64 // sorted upper bounds (le), +Inf implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// newHistogram builds a histogram over the given bucket upper bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. A sample exactly equal to a bucket bound
// lands in that bucket (le is ≤, per the exposition format).
func (h *Histogram) Observe(v float64) {
	// First bound >= v; equal bounds are inclusive.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n bucket bounds growing geometrically from start by
// factor — the standard shape for latency histograms spanning decades.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Sample is one dynamically collected series value: a label set and the
// value sampled at scrape time. Collectors return them for series whose
// children are not known at registration (per-worker gauges, per-state
// counts).
type Sample struct {
	// Labels are label pairs in "key", "value" order.
	Labels []string
	// Value is the sampled value.
	Value float64
}

// Type describes a registered series for exposition and linting.
type Type string

// The supported series types.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// series is one registered child under a family.
type series struct {
	labels  []string // "key", "value" pairs
	counter *Counter
	gauge   *Gauge
	gfn     func() float64
	hist    *Histogram
}

// family groups every child sharing a metric name.
type family struct {
	name    string
	help    string
	typ     Type
	series  []*series
	collect func() []Sample // dynamic children, sampled at scrape
}

// Registry holds named series and writes them in Prometheus text format.
// Registration is typically done once at startup; scraping takes the
// registry lock only to walk the family list.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// fam returns (creating if needed) the family for name, panicking on a
// type conflict or an invalid name — registration errors are programming
// errors, caught by the lint test, not runtime conditions.
func (r *Registry) fam(name, help string, typ Type) *family {
	if !nameRe.MatchString(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic("obs: metric " + name + " re-registered as " + string(typ) + ", was " + string(f.typ))
	}
	return f
}

// NewCounter registers and returns a counter. labels are "key", "value"
// pairs; registering the same name with different label sets creates
// sibling children under one family.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Counter{}
	f := r.fam(name, help, TypeCounter)
	f.series = append(f.series, &series{labels: labels, counter: c})
	return c
}

// NewGauge registers and returns a settable gauge.
func (r *Registry) NewGauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Gauge{}
	f := r.fam(name, help, TypeGauge)
	f.series = append(f.series, &series{labels: labels, gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is sampled at scrape time —
// for values that already live elsewhere (queue depth, file sizes).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, TypeGauge)
	f.series = append(f.series, &series{labels: labels, gfn: fn})
}

// NewHistogram registers and returns a fixed-bucket histogram.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := newHistogram(bounds)
	f := r.fam(name, help, TypeHistogram)
	f.series = append(f.series, &series{labels: labels, hist: h})
	return h
}

// NewCollector registers a family whose children (label sets and values)
// are produced by collect at every scrape — the shape for per-worker
// series, where workers attach and die at runtime. typ must be
// TypeCounter or TypeGauge.
func (r *Registry) NewCollector(name, help string, typ Type, collect func() []Sample) {
	if typ == TypeHistogram {
		panic("obs: collector families must be counters or gauges: " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, typ)
	f.collect = collect
}

// Names returns every registered family name with its type, in
// registration order — the input to Lint.
func (r *Registry) Names() map[string]Type {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Type, len(r.families))
	for name, f := range r.families {
		out[name] = f.typ
	}
	return out
}

// WriteText writes every registered series in Prometheus text exposition
// format 0.0.4: one # HELP and # TYPE line per family followed by its
// samples; histograms expand to cumulative _bucket{le=...} series plus
// _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := &errWriter{w: w}
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				writeSample(bw, f.name, s.labels, "", float64(s.counter.Value()))
			case s.gauge != nil:
				writeSample(bw, f.name, s.labels, "", s.gauge.Value())
			case s.gfn != nil:
				writeSample(bw, f.name, s.labels, "", s.gfn())
			case s.hist != nil:
				writeHistogram(bw, f.name, s.labels, s.hist)
			}
		}
		if f.collect != nil {
			for _, smp := range f.collect() {
				writeSample(bw, f.name, smp.Labels, "", smp.Value)
			}
		}
	}
	return bw.err
}

// writeHistogram expands one histogram into its exposition series. Bucket
// counts are cumulative, ending at the implicit +Inf bucket whose count
// equals _count.
func writeHistogram(w io.Writer, name string, labels []string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", append(append([]string{}, labels...), "le", formatFloat(bound)), "", float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", append(append([]string{}, labels...), "le", "+Inf"), "", float64(cum))
	writeSample(w, name+"_sum", labels, "", h.Sum())
	writeSample(w, name+"_count", labels, "", float64(cum))
}

// writeSample writes one exposition sample line.
func writeSample(w io.Writer, name string, labels []string, suffix string, v float64) {
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s%s %s\n", name, suffix, formatFloat(v))
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteString(suffix)
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	fmt.Fprintf(w, "%s %s\n", sb.String(), formatFloat(v))
}

// formatFloat renders a sample value: integers without exponent, +Inf as
// the exposition format spells it.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// errWriter remembers the first write error so WriteText needs no
// per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

// Lint checks every registered series name against the repo's metric
// naming convention and returns one problem string per violation:
//
//   - every name carries a process prefix: fedvald_ or fedvalworker_
//   - counters end in _total
//   - histograms end in a unit: _seconds or _bytes
//   - gauges end in a unit or counted-noun suffix (_seconds, _bytes,
//     _ratio, _workers, _jobs, _tasks, _subscribers, _fingerprints,
//     _specs, _writes) or — for 0/1 condition flags, in the spirit of
//     Prometheus's own bare "up" — in a state adjective (_up,
//     _degraded), and never in _total (which would masquerade as a
//     counter)
//
// The convention is enforced by a test over the live registries, so a new
// series cannot merge without a scrape-stable, unit-suffixed name.
func Lint(names map[string]Type) []string {
	var problems []string
	gaugeSuffixes := []string{
		"_seconds", "_bytes", "_ratio", "_workers", "_jobs",
		"_tasks", "_subscribers", "_fingerprints", "_specs", "_writes",
		"_up", "_degraded",
	}
	for name, typ := range names {
		if !strings.HasPrefix(name, "fedvald_") && !strings.HasPrefix(name, "fedvalworker_") {
			problems = append(problems, name+": missing fedvald_/fedvalworker_ process prefix")
		}
		switch typ {
		case TypeCounter:
			if !strings.HasSuffix(name, "_total") {
				problems = append(problems, name+": counter must end in _total")
			}
		case TypeHistogram:
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				problems = append(problems, name+": histogram must end in a unit suffix (_seconds or _bytes)")
			}
		case TypeGauge:
			if strings.HasSuffix(name, "_total") {
				problems = append(problems, name+": gauge must not end in _total")
				continue
			}
			ok := false
			for _, suf := range gaugeSuffixes {
				if strings.HasSuffix(name, suf) {
					ok = true
					break
				}
			}
			if !ok {
				problems = append(problems, name+": gauge must end in a unit or counted-noun suffix "+
					strings.Join(gaugeSuffixes, "/"))
			}
		}
	}
	sort.Strings(problems)
	return problems
}
