package obs

import (
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the optional diagnostics listener a daemon mounts away
// from its service port (the -pprof flag on fedvald and fedvalworker): it
// serves net/http/pprof under /debug/pprof/ and, when a registry is
// given, Prometheus text exposition on /metrics. Keeping it on its own
// listener means profiling endpoints are never reachable through the
// public API address.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the diagnostics listener on addr. reg may be nil (no
// /metrics route). The server runs until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WriteText(w)
		})
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listener address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *DebugServer) Close() error { return s.srv.Close() }

// NopLogger returns a logger that discards everything — the default for
// library components whose caller did not configure logging, so
// instrumented code paths never nil-check their logger.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// NewLogger builds a structured logger at the given level ("debug",
// "info", "warn", "error"; anything else means info) and format ("json"
// selects JSON lines; anything else text) writing to w — the shared
// configuration surface for the daemons' -log-level/-log-format flags.
func NewLogger(w io.Writer, level, format string) *slog.Logger {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
