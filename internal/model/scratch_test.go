package model

import (
	"math/rand"
	"testing"
)

// TestPermIntoMatchesRandPerm guards the lockstep between permInto and
// math/rand's Perm: same seed, same permutation, same RNG consumption. If
// this ever fails, every model's training order — and so every cached
// utility — would silently change.
func TestPermIntoMatchesRandPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 501} {
		a := rand.New(rand.NewSource(int64(n) + 3))
		b := rand.New(rand.NewSource(int64(n) + 3))
		var buf []int
		for rep := 0; rep < 3; rep++ {
			want := a.Perm(n)
			buf = permInto(b, n, buf)
			if len(buf) != len(want) {
				t.Fatalf("n=%d: len %d, want %d", n, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("n=%d rep=%d: perm[%d] = %d, want %d", n, rep, i, buf[i], want[i])
				}
			}
		}
		// The two RNGs must stay in the same stream position.
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: RNG streams diverged after Perm", n)
		}
	}
}

// TestPredictClassMatchesScore checks the allocation-free fast path agrees
// with the allocating Score on every classifier.
func TestPredictClassMatchesScore(t *testing.T) {
	ds := benchData(200, 16, 4, 9)
	img := benchImageData(200, 6, 6, 4, 9)
	xgb := NewXGB(4, DefaultXGBConfig(), 3)
	xgb.Fit(benchData(100, 16, 4, 4))
	cases := []struct {
		name string
		m    Model
	}{
		{"logreg", NewLogReg(16, 4, 2)},
		{"mlp", NewMLP(16, 8, 4, 2)},
		{"deepmlp", NewDeepMLP([]int{16, 8, 6, 4}, 2)},
		{"cnn", NewCNN(6, 6, 3, 4, 2)},
		{"xgb", xgb},
	}
	for _, tc := range cases {
		c, ok := tc.m.(Classifier)
		if !ok {
			t.Fatalf("%s does not implement Classifier", tc.name)
		}
		data := ds
		if tc.name == "cnn" {
			data = img
		}
		for i := 0; i < data.Len(); i++ {
			x := data.X.Row(i)
			want := tc.m.Score(x).ArgMax()
			if got := c.PredictClass(x); got != want {
				t.Fatalf("%s sample %d: PredictClass = %d, Score argmax = %d", tc.name, i, got, want)
			}
		}
	}
}
