package model

import (
	"sort"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// XGB is a gradient-boosted tree ensemble with the XGBoost second-order
// objective: per boosting round it fits one regression tree per class to the
// softmax gradients/hessians, with L2-regularised leaf weights and greedy
// exact split search. It is the "XGB" model of the paper's Table V.
//
// Trees are Fitters, not Parametrics: federated boosting on shared gradient
// histograms is equivalent to fitting the merged coalition data, and the
// gradient-reconstruction baselines are not applicable (the "\" cells of
// Table V).
type XGB struct {
	Rounds   int     // boosting rounds
	Depth    int     // maximum tree depth
	LR       float64 // shrinkage
	Lambda   float64 // L2 regularisation on leaf weights
	MinChild int     // minimum samples per leaf
	Classes  int
	Seed     int64

	trees [][]*regTree // [round][class]

	logits tensor.Vector // PredictClass scratch, lazily allocated
}

// XGBConfig collects the boosting hyper-parameters.
type XGBConfig struct {
	Rounds   int
	Depth    int
	LR       float64
	Lambda   float64
	MinChild int
}

// DefaultXGBConfig is sized for the repo's synthetic tabular workloads.
func DefaultXGBConfig() XGBConfig {
	return XGBConfig{Rounds: 12, Depth: 3, LR: 0.3, Lambda: 1.0, MinChild: 4}
}

// NewXGB constructs an untrained boosted ensemble.
func NewXGB(classes int, cfg XGBConfig, seed int64) *XGB {
	return &XGB{
		Rounds: cfg.Rounds, Depth: cfg.Depth, LR: cfg.LR,
		Lambda: cfg.Lambda, MinChild: cfg.MinChild,
		Classes: classes, Seed: seed,
	}
}

// Score returns softmax class probabilities for x.
func (m *XGB) Score(x tensor.Vector) tensor.Vector {
	logits := tensor.NewVector(m.Classes)
	for _, round := range m.trees {
		for c, t := range round {
			logits[c] += m.LR * t.predict(x)
		}
	}
	return tensor.Softmax(logits, logits)
}

// PredictClass implements Classifier: the same ensemble walk and softmax as
// Score, into a reused buffer.
func (m *XGB) PredictClass(x tensor.Vector) int {
	if cap(m.logits) < m.Classes {
		m.logits = tensor.NewVector(m.Classes)
	}
	logits := m.logits[:m.Classes]
	for c := range logits {
		logits[c] = 0
	}
	for _, round := range m.trees {
		for c, t := range round {
			logits[c] += m.LR * t.predict(x)
		}
	}
	return tensor.Softmax(logits, logits).ArgMax()
}

// Clone returns a copy sharing the (immutable once fitted) trees.
func (m *XGB) Clone() Model {
	c := *m
	c.trees = make([][]*regTree, len(m.trees))
	for i, r := range m.trees {
		c.trees[i] = append([]*regTree(nil), r...)
	}
	c.logits = nil // scratch must not be shared across instances
	return &c
}

// NumTrees returns the number of fitted trees (rounds × classes).
func (m *XGB) NumTrees() int {
	n := 0
	for _, r := range m.trees {
		n += len(r)
	}
	return n
}

// Fit trains the ensemble from scratch on ds.
func (m *XGB) Fit(ds *dataset.Dataset) {
	m.trees = nil
	n := ds.Len()
	if n == 0 {
		return
	}
	// Running logits F[i*classes+c].
	F := tensor.NewVector(n * m.Classes)
	probs := tensor.NewVector(m.Classes)
	g := tensor.NewVector(n)
	h := tensor.NewVector(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sc := &fitScratch{}

	for round := 0; round < m.Rounds; round++ {
		roundTrees := make([]*regTree, m.Classes)
		for c := 0; c < m.Classes; c++ {
			// Softmax gradients for class c at current F.
			for i := 0; i < n; i++ {
				tensor.Softmax(F[i*m.Classes:(i+1)*m.Classes], probs)
				p := probs[c]
				yi := 0.0
				if ds.Y[i] == c {
					yi = 1.0
				}
				g[i] = p - yi
				h[i] = p * (1 - p)
				if h[i] < 1e-6 {
					h[i] = 1e-6
				}
			}
			t := m.fitTree(ds, idx, g, h, sc)
			roundTrees[c] = t
			// Update logits with the new tree.
			for i := 0; i < n; i++ {
				F[i*m.Classes+c] += m.LR * t.predict(ds.X.Row(i))
			}
		}
		m.trees = append(m.trees, roundTrees)
	}
}

// regTree is a binary regression tree stored as a node slice.
type regTree struct {
	nodes []treeNode
}

type treeNode struct {
	feature   int     // split feature, -1 for leaf
	threshold float64 // go left if x[feature] < threshold
	left      int     // child indices
	right     int
	value     float64 // leaf weight
}

func (t *regTree) predict(x tensor.Vector) float64 {
	i := 0
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.value
		}
		if x[nd.feature] < nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// fitScratch holds the buffers one Fit reuses across every tree and node:
// the per-tree working copy of the sample order, the split-scan sort buffer
// and the stable-partition spill buffer. A Fit is single-threaded, so one
// instance serves the whole recursion.
type fitScratch struct {
	order []int
	vals  []splitVal
	part  []int
}

// splitVal is one (feature value, gradient, hessian) triple of the sorted
// split sweep.
type splitVal struct{ v, g, h float64 }

// fitTree grows one tree greedily on gradient/hessian targets. idx is
// copied into the scratch order buffer first: grow partitions its segments
// in place, and every tree must start the scan from the same (identity)
// sample order for the gradient sums — and hence the fitted ensemble — to
// be independent of buffer reuse.
func (m *XGB) fitTree(ds *dataset.Dataset, idx []int, g, h tensor.Vector, sc *fitScratch) *regTree {
	sc.order = append(sc.order[:0], idx...)
	t := &regTree{}
	m.grow(t, ds, sc.order, g, h, 0, sc)
	return t
}

// grow recursively builds the subtree over the sample-index segment idx
// (owned by this call; child segments nest inside it) and returns its node
// index within t.
func (m *XGB) grow(t *regTree, ds *dataset.Dataset, idx []int, g, h tensor.Vector, depth int, sc *fitScratch) int {
	var gSum, hSum float64
	for _, i := range idx {
		gSum += g[i]
		hSum += h[i]
	}
	makeLeaf := func() int {
		t.nodes = append(t.nodes, treeNode{
			feature: -1,
			value:   -gSum / (hSum + m.Lambda),
		})
		return len(t.nodes) - 1
	}
	if depth >= m.Depth || len(idx) < 2*m.MinChild {
		return makeLeaf()
	}
	feat, thr, gain := m.bestSplit(ds, idx, g, h, gSum, hSum, sc)
	if gain <= 1e-9 {
		return makeLeaf()
	}
	// Stable in-place partition into a left and a right segment: relative
	// order is preserved in both halves (right spills through the scratch
	// buffer), so the children accumulate their gradient sums in exactly
	// the order the previous per-node slices did.
	nl := 0
	spill := sc.part[:0]
	for _, i := range idx {
		if ds.X.At(i, feat) < thr {
			idx[nl] = i
			nl++
		} else {
			spill = append(spill, i)
		}
	}
	copy(idx[nl:], spill)
	sc.part = spill[:0] // keep the grown capacity for the next node
	left, right := idx[:nl], idx[nl:]
	if len(left) < m.MinChild || len(right) < m.MinChild {
		return makeLeaf()
	}
	// Reserve this node, then grow children (their indices come after).
	self := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{feature: feat, threshold: thr})
	l := m.grow(t, ds, left, g, h, depth+1, sc)
	r := m.grow(t, ds, right, g, h, depth+1, sc)
	t.nodes[self].left, t.nodes[self].right = l, r
	return self
}

// bestSplit scans every feature with an exact sorted sweep and returns the
// split maximising the XGBoost gain.
func (m *XGB) bestSplit(ds *dataset.Dataset, idx []int, g, h tensor.Vector, gSum, hSum float64, sc *fitScratch) (feature int, threshold, gain float64) {
	feature = -1
	parentScore := gSum * gSum / (hSum + m.Lambda)
	if cap(sc.vals) < len(idx) {
		sc.vals = make([]splitVal, len(idx))
	}
	vals := sc.vals[:len(idx)]
	for f := 0; f < ds.Dim(); f++ {
		for j, i := range idx {
			vals[j] = splitVal{ds.X.At(i, f), g[i], h[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		var gl, hl float64
		for j := 0; j < len(vals)-1; j++ {
			gl += vals[j].g
			hl += vals[j].h
			if vals[j].v == vals[j+1].v {
				continue // can't split between equal values
			}
			if j+1 < m.MinChild || len(vals)-j-1 < m.MinChild {
				continue
			}
			gr, hr := gSum-gl, hSum-hl
			score := gl*gl/(hl+m.Lambda) + gr*gr/(hr+m.Lambda) - parentScore
			if score > gain {
				gain = score
				feature = f
				threshold = (vals[j].v + vals[j+1].v) / 2
			}
		}
	}
	return feature, threshold, gain
}
