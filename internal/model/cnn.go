package model

import (
	"math/rand"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// CNN is a small convolutional classifier — conv(3×3, F filters, valid
// padding) → ReLU → 2×2 max-pool → dense softmax — the "CNN" model of the
// paper's evaluation, scaled to the synthetic image sizes this repo uses.
// Training is per-sample SGD backprop through all layers.
type CNN struct {
	ImgW, ImgH int
	Filters    int
	Classes    int

	// Conv layer: Filters kernels of 3×3 plus bias.
	K *tensor.Matrix // Filters × 9
	// KB is the per-filter bias.
	KB tensor.Vector
	// Dense layer over the pooled feature map.
	W *tensor.Matrix // Classes × featDim
	B tensor.Vector

	convW, convH int // conv output spatial size
	poolW, poolH int // pooled output spatial size
	featDim      int

	// scratch
	conv    tensor.Vector // Filters*convW*convH
	pooled  tensor.Vector // featDim
	poolArg []int         // argmax index into conv for each pooled cell
	logits  tensor.Vector
	dPool   tensor.Vector
	perm    []int
}

const cnnKernel = 3

// NewCNN constructs the convolutional model for imgW×imgH inputs.
func NewCNN(imgW, imgH, filters, classes int, seed int64) *CNN {
	if imgW < cnnKernel || imgH < cnnKernel {
		panic("model: CNN image smaller than kernel")
	}
	rng := rand.New(rand.NewSource(seed))
	convW, convH := imgW-cnnKernel+1, imgH-cnnKernel+1
	poolW, poolH := (convW+1)/2, (convH+1)/2
	featDim := filters * poolW * poolH
	m := &CNN{
		ImgW: imgW, ImgH: imgH, Filters: filters, Classes: classes,
		K:  tensor.NewMatrix(filters, cnnKernel*cnnKernel),
		KB: tensor.NewVector(filters),
		W:  tensor.NewMatrix(classes, featDim),
		B:  tensor.NewVector(classes),

		convW: convW, convH: convH, poolW: poolW, poolH: poolH,
		featDim: featDim,
		conv:    tensor.NewVector(filters * convW * convH),
		pooled:  tensor.NewVector(featDim),
		poolArg: make([]int, featDim),
		logits:  tensor.NewVector(classes),
		dPool:   tensor.NewVector(featDim),
	}
	m.K.GaussianInit(0.3, rng)
	m.W.XavierInit(rng)
	return m
}

// forward runs the network on x (row-major imgH×imgW pixels), filling the
// scratch buffers and returning class probabilities.
func (m *CNN) forward(x tensor.Vector) tensor.Vector {
	// Convolution + ReLU.
	for f := 0; f < m.Filters; f++ {
		k := m.K.Row(f)
		base := f * m.convW * m.convH
		for oy := 0; oy < m.convH; oy++ {
			for ox := 0; ox < m.convW; ox++ {
				var s float64
				for ky := 0; ky < cnnKernel; ky++ {
					xo := (oy+ky)*m.ImgW + ox
					ko := ky * cnnKernel
					s += k[ko]*x[xo] + k[ko+1]*x[xo+1] + k[ko+2]*x[xo+2]
				}
				m.conv[base+oy*m.convW+ox] = tensor.ReLU(s + m.KB[f])
			}
		}
	}
	// 2×2 max-pool (ceil at borders), recording argmax for backprop.
	for f := 0; f < m.Filters; f++ {
		base := f * m.convW * m.convH
		pbase := f * m.poolW * m.poolH
		for py := 0; py < m.poolH; py++ {
			for px := 0; px < m.poolW; px++ {
				bestIdx := base + (2*py)*m.convW + 2*px
				best := m.conv[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						cy, cx := 2*py+dy, 2*px+dx
						if cy >= m.convH || cx >= m.convW {
							continue
						}
						idx := base + cy*m.convW + cx
						if m.conv[idx] > best {
							best, bestIdx = m.conv[idx], idx
						}
					}
				}
				p := pbase + py*m.poolW + px
				m.pooled[p] = best
				m.poolArg[p] = bestIdx
			}
		}
	}
	// Dense softmax head.
	m.W.MulVec(m.pooled, m.logits)
	for c := range m.logits {
		m.logits[c] += m.B[c]
	}
	return tensor.Softmax(m.logits, m.logits)
}

// Score returns class probabilities for x.
func (m *CNN) Score(x tensor.Vector) tensor.Vector {
	return m.forward(x).Clone()
}

// PredictClass implements Classifier without the per-sample copy Score pays.
func (m *CNN) PredictClass(x tensor.Vector) int {
	return m.forward(x).ArgMax()
}

// Clone returns a deep copy.
func (m *CNN) Clone() Model {
	c := NewCNN(m.ImgW, m.ImgH, m.Filters, m.Classes, 0)
	copy(c.K.Data, m.K.Data)
	copy(c.KB, m.KB)
	copy(c.W.Data, m.W.Data)
	copy(c.B, m.B)
	return c
}

// NumParams returns the total trainable parameter count.
func (m *CNN) NumParams() int {
	return len(m.K.Data) + len(m.KB) + len(m.W.Data) + len(m.B)
}

// Params returns the flattened [K, KB, W, B].
func (m *CNN) Params() tensor.Vector {
	p := make(tensor.Vector, 0, m.NumParams())
	p = append(p, m.K.Data...)
	p = append(p, m.KB...)
	p = append(p, m.W.Data...)
	p = append(p, m.B...)
	return p
}

// SetParams restores parameters from a flat vector.
func (m *CNN) SetParams(p tensor.Vector) {
	if len(p) != m.NumParams() {
		panic("model: CNN.SetParams length mismatch")
	}
	o := 0
	o += copy(m.K.Data, p[o:o+len(m.K.Data)])
	o += copy(m.KB, p[o:o+len(m.KB)])
	o += copy(m.W.Data, p[o:o+len(m.W.Data)])
	copy(m.B, p[o:])
}

// TrainEpoch runs one epoch of per-sample SGD backprop.
func (m *CNN) TrainEpoch(ds *dataset.Dataset, lr float64, rng *rand.Rand) {
	m.perm = permInto(rng, ds.Len(), m.perm)
	for _, i := range m.perm {
		x := ds.X.Row(i)
		probs := m.forward(x)
		y := ds.Y[i]

		// Dense head gradient and backprop into pooled features.
		m.dPool.Fill(0)
		for c := 0; c < m.Classes; c++ {
			g := probs[c]
			if c == y {
				g -= 1
			}
			if g == 0 {
				continue
			}
			row := m.W.Row(c)
			for j, wj := range row {
				m.dPool[j] += g * wj
			}
			m.B[c] -= lr * g
			row.AddScaled(-lr*g, m.pooled)
		}
		// Through max-pool (route to argmax) and ReLU gate into kernels.
		for f := 0; f < m.Filters; f++ {
			pbase := f * m.poolW * m.poolH
			base := f * m.convW * m.convH
			k := m.K.Row(f)
			for p := 0; p < m.poolW*m.poolH; p++ {
				g := m.dPool[pbase+p]
				if g == 0 {
					continue
				}
				convIdx := m.poolArg[pbase+p]
				if m.conv[convIdx] <= 0 {
					continue // ReLU inactive
				}
				rel := convIdx - base
				oy, ox := rel/m.convW, rel%m.convW
				for ky := 0; ky < cnnKernel; ky++ {
					xo := (oy+ky)*m.ImgW + ox
					ko := ky * cnnKernel
					k[ko] -= lr * g * x[xo]
					k[ko+1] -= lr * g * x[xo+1]
					k[ko+2] -= lr * g * x[xo+2]
				}
				m.KB[f] -= lr * g
			}
		}
	}
}
