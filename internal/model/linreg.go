package model

import (
	"math/rand"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// LinReg is ordinary linear regression y ≈ w·x + b trained by SGD on squared
// loss. It is the model of the paper's theoretical analysis (Theorem 2,
// Lemma 1, Theorem 3), where utility = −MSE.
type LinReg struct {
	W tensor.Vector
	B float64

	perm []int // shuffle scratch reused across epochs
}

// NewLinReg returns a zero-initialised linear regressor over dim features.
// Zero init matches the "initialised model" m0 of Lemma 1.
func NewLinReg(dim int) *LinReg {
	return &LinReg{W: tensor.NewVector(dim)}
}

// Score returns the single-element prediction [w·x + b].
func (m *LinReg) Score(x tensor.Vector) tensor.Vector {
	return tensor.Vector{m.W.Dot(x) + m.B}
}

// Clone returns a deep copy.
func (m *LinReg) Clone() Model {
	return &LinReg{W: m.W.Clone(), B: m.B}
}

// NumParams returns len(W)+1.
func (m *LinReg) NumParams() int { return len(m.W) + 1 }

// Params returns [W..., B].
func (m *LinReg) Params() tensor.Vector {
	p := make(tensor.Vector, 0, m.NumParams())
	p = append(p, m.W...)
	p = append(p, m.B)
	return p
}

// SetParams restores parameters from a flat vector.
func (m *LinReg) SetParams(p tensor.Vector) {
	if len(p) != m.NumParams() {
		panic("model: LinReg.SetParams length mismatch")
	}
	copy(m.W, p[:len(m.W)])
	m.B = p[len(m.W)]
}

// TrainEpoch runs one epoch of per-sample SGD on squared loss, interpreting
// dataset labels as real targets.
func (m *LinReg) TrainEpoch(ds *dataset.Dataset, lr float64, rng *rand.Rand) {
	m.perm = permInto(rng, ds.Len(), m.perm)
	for _, i := range m.perm {
		x := ds.X.Row(i)
		err := m.W.Dot(x) + m.B - float64(ds.Y[i])
		g := tensor.Clip(err, 1e6)
		m.W.AddScaled(-lr*g, x)
		m.B -= lr * g
	}
}

// TrainEpochFloat is TrainEpoch against real-valued targets.
func (m *LinReg) TrainEpochFloat(X *tensor.Matrix, y []float64, lr float64, rng *rand.Rand) {
	m.perm = permInto(rng, X.Rows, m.perm)
	for _, i := range m.perm {
		x := X.Row(i)
		err := m.W.Dot(x) + m.B - y[i]
		g := tensor.Clip(err, 1e6)
		m.W.AddScaled(-lr*g, x)
		m.B -= lr * g
	}
}

// FitOLS solves the least-squares problem exactly via the normal equations
// with ridge damping eps for conditioning, against real-valued targets.
// Used by the theory package to realise the Donahue–Kleinberg analysis model.
func (m *LinReg) FitOLS(X *tensor.Matrix, y []float64, eps float64) {
	d := X.Cols
	// Augmented design with intercept column: A is (d+1)×(d+1).
	a := tensor.NewMatrix(d+1, d+1)
	bvec := tensor.NewVector(d + 1)
	for i := 0; i < X.Rows; i++ {
		row := X.Row(i)
		for p := 0; p < d; p++ {
			for q := p; q < d; q++ {
				a.Data[p*(d+1)+q] += row[p] * row[q]
			}
			a.Data[p*(d+1)+d] += row[p]
			bvec[p] += row[p] * y[i]
		}
		a.Data[d*(d+1)+d]++
		bvec[d] += y[i]
	}
	// Mirror the upper triangle and damp the diagonal.
	for p := 0; p <= d; p++ {
		for q := 0; q < p; q++ {
			a.Data[p*(d+1)+q] = a.Data[q*(d+1)+p]
		}
		a.Data[p*(d+1)+p] += eps
	}
	sol := solveGaussian(a, bvec)
	copy(m.W, sol[:d])
	m.B = sol[d]
}

// solveGaussian solves A x = b by Gaussian elimination with partial
// pivoting, destroying A and b. Singular systems return the least-norm-ish
// solution of the damped system (callers damp the diagonal).
func solveGaussian(a *tensor.Matrix, b tensor.Vector) tensor.Vector {
	n := a.Rows
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := abs(a.At(r, col)); v > best {
				best, piv = v, r
			}
		}
		if piv != col {
			for c := 0; c < n; c++ {
				ac, ap := a.At(col, c), a.At(piv, c)
				a.Set(col, c, ap)
				a.Set(piv, c, ac)
			}
			b[col], b[piv] = b[piv], b[col]
		}
		p := a.At(col, col)
		if p == 0 {
			continue
		}
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a.Set(r, c, a.At(r, c)-f*a.At(col, c))
			}
			b[r] -= f * b[col]
		}
	}
	x := tensor.NewVector(n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a.At(r, c) * x[c]
		}
		if p := a.At(r, r); p != 0 {
			x[r] = s / p
		}
	}
	return x
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
