package model

import (
	"math/rand"
	"testing"

	"fedshap/internal/dataset"
)

// Allocation benchmarks for the per-sample SGD and split-scan hot loops —
// the paths every coalition evaluation spends its time in. Run with
// -benchmem; the scratch-buffer reuse in each model should keep per-epoch
// allocations flat in the sample count.

func benchData(n, dim, classes int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New("bench", n, dim, classes)
	for i := 0; i < n; i++ {
		row := ds.X.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		ds.Y[i] = rng.Intn(classes)
	}
	return ds
}

func benchImageData(n, w, h, classes int, seed int64) *dataset.Dataset {
	ds := benchData(n, w*h, classes, seed)
	ds.ImageW, ds.ImageH = w, h
	return ds
}

func BenchmarkTrainEpoch(b *testing.B) {
	const samples = 128
	ds := benchData(samples, 24, 4, 1)
	img := benchImageData(samples, 8, 8, 4, 1)
	models := []struct {
		name string
		m    Parametric
		data *dataset.Dataset
	}{
		{"logreg", NewLogReg(24, 4, 1), ds},
		{"mlp", NewMLP(24, 16, 4, 1), ds},
		{"deepmlp", NewDeepMLP([]int{24, 12, 8, 4}, 1), ds},
		{"cnn", NewCNN(8, 8, 4, 4, 1), img},
	}
	for _, tc := range models {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tc.m.TrainEpoch(tc.data, 0.05, rng)
			}
		})
	}
}

func BenchmarkXGBFit(b *testing.B) {
	ds := benchData(256, 12, 3, 1)
	cfg := DefaultXGBConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewXGB(3, cfg, 1)
		m.Fit(ds)
	}
}

func BenchmarkAccuracy(b *testing.B) {
	ds := benchData(512, 24, 4, 1)
	mlp := NewMLP(24, 16, 4, 1)
	xgb := NewXGB(4, DefaultXGBConfig(), 1)
	xgb.Fit(benchData(128, 24, 4, 2))
	models := []struct {
		name string
		m    Model
	}{{"mlp", mlp}, {"xgb", xgb}}
	for _, tc := range models {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Accuracy(tc.m, ds)
			}
		})
	}
}
