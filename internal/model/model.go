// Package model implements the learning models used in the paper's
// evaluation — linear regression, logistic (softmax) regression, a
// multi-layer perceptron, a small convolutional network, and
// gradient-boosted trees (the XGB stand-in) — each trained from scratch
// with stdlib-only code.
//
// Two training styles exist, mirroring how the paper's FL substrate treats
// them:
//
//   - Parametric models expose a flat parameter vector and per-epoch SGD,
//     which is what FedAvg aggregates and what the gradient-based valuation
//     baselines (OR, λ-MR, GTG-Shapley) reconstruct from.
//   - Fitter models (gradient-boosted trees) train holistically on a
//     dataset; federated boosting on shared histograms is equivalent to
//     fitting the merged coalition data, so the FL engine trains them
//     centrally and the gradient-based baselines are not applicable — the
//     "\" entries of the paper's Table V.
package model

import (
	"math/rand"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// Model is anything that can score a sample. For classifiers Score returns
// per-class scores (argmax = prediction); for regressors it returns a
// single-element vector.
type Model interface {
	// Score returns the model output for one sample.
	Score(x tensor.Vector) tensor.Vector
	// Clone returns an independent deep copy.
	Clone() Model
}

// Parametric is a model trained by gradient steps over a flat parameter
// vector, suitable for FedAvg aggregation.
type Parametric interface {
	Model
	// Params returns a copy of the flattened trainable parameters.
	Params() tensor.Vector
	// SetParams overwrites the trainable parameters from a flat vector.
	SetParams(p tensor.Vector)
	// NumParams returns the parameter count.
	NumParams() int
	// TrainEpoch runs one epoch of SGD on ds with the given learning rate.
	TrainEpoch(ds *dataset.Dataset, lr float64, rng *rand.Rand)
}

// Fitter is a model trained holistically (tree ensembles).
type Fitter interface {
	Model
	// Fit trains the model on the dataset from scratch.
	Fit(ds *dataset.Dataset)
}

// Factory constructs a freshly initialised model. Valuation trains one model
// per dataset coalition, so construction must be cheap and deterministic in
// the seed.
type Factory func(seed int64) Model

// Classifier is the allocation-free scoring fast path: PredictClass returns
// the argmax class for one sample without copying the score vector (Score
// must clone because callers may retain its result). Every classifier in
// this package implements it; Accuracy — the hot evaluation loop of the
// utility oracle — uses it when available. Like the model's other scratch
// state, PredictClass is not safe for concurrent use on one instance.
type Classifier interface {
	PredictClass(x tensor.Vector) int
}

// Accuracy returns the fraction of samples whose argmax score matches the
// label — the paper's default utility function U(·). An empty test set
// yields 0.
func Accuracy(m Model, ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	if c, ok := m.(Classifier); ok {
		for i := 0; i < ds.Len(); i++ {
			if c.PredictClass(ds.X.Row(i)) == ds.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(ds.Len())
	}
	for i := 0; i < ds.Len(); i++ {
		if m.Score(ds.X.Row(i)).ArgMax() == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// NegMSE returns the negative mean squared error of a regressor against
// float-valued labels (Y reinterpreted as real targets) — the utility used
// in the paper's linear-regression theory (Lemma 1).
func NegMSE(m Model, ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < ds.Len(); i++ {
		diff := m.Score(ds.X.Row(i))[0] - float64(ds.Y[i])
		sum += diff * diff
	}
	return -sum / float64(ds.Len())
}

// NegMSEFloat is NegMSE for real-valued targets supplied separately.
func NegMSEFloat(m Model, X *tensor.Matrix, y []float64) float64 {
	if X.Rows == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < X.Rows; i++ {
		diff := m.Score(X.Row(i))[0] - y[i]
		sum += diff * diff
	}
	return -sum / float64(X.Rows)
}
