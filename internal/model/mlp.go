package model

import (
	"math/rand"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// MLP is a one-hidden-layer perceptron (input → ReLU hidden → softmax
// output) trained by per-sample SGD backprop — the "MLP" model of the
// paper's Tables IV and V.
type MLP struct {
	W1     *tensor.Matrix // hidden × in
	B1     tensor.Vector  // hidden
	W2     *tensor.Matrix // out × hidden
	B2     tensor.Vector  // out
	In     int
	Hidden int
	Out    int

	// scratch buffers reused across samples and epochs (not model state)
	h, dh, logits tensor.Vector
	perm          []int
}

// NewMLP constructs an MLP with Xavier-initialised weights.
func NewMLP(in, hidden, out int, seed int64) *MLP {
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{
		W1: tensor.NewMatrix(hidden, in),
		B1: tensor.NewVector(hidden),
		W2: tensor.NewMatrix(out, hidden),
		B2: tensor.NewVector(out),
		In: in, Hidden: hidden, Out: out,
		h:      tensor.NewVector(hidden),
		dh:     tensor.NewVector(hidden),
		logits: tensor.NewVector(out),
	}
	m.W1.XavierInit(rng)
	m.W2.XavierInit(rng)
	return m
}

// forward computes hidden activations into m.h and class probabilities into
// m.logits (in place), returning the probability vector.
func (m *MLP) forward(x tensor.Vector) tensor.Vector {
	m.W1.MulVec(x, m.h)
	for j := range m.h {
		m.h[j] = tensor.ReLU(m.h[j] + m.B1[j])
	}
	m.W2.MulVec(m.h, m.logits)
	for c := range m.logits {
		m.logits[c] += m.B2[c]
	}
	return tensor.Softmax(m.logits, m.logits)
}

// Score returns class probabilities for x.
func (m *MLP) Score(x tensor.Vector) tensor.Vector {
	return m.forward(x).Clone()
}

// PredictClass implements Classifier without the per-sample copy Score pays.
func (m *MLP) PredictClass(x tensor.Vector) int {
	return m.forward(x).ArgMax()
}

// Clone returns a deep copy.
func (m *MLP) Clone() Model {
	return &MLP{
		W1: m.W1.Clone(), B1: m.B1.Clone(),
		W2: m.W2.Clone(), B2: m.B2.Clone(),
		In: m.In, Hidden: m.Hidden, Out: m.Out,
		h:      tensor.NewVector(m.Hidden),
		dh:     tensor.NewVector(m.Hidden),
		logits: tensor.NewVector(m.Out),
	}
}

// NumParams returns the total trainable parameter count.
func (m *MLP) NumParams() int {
	return m.Hidden*m.In + m.Hidden + m.Out*m.Hidden + m.Out
}

// Params returns the flattened [W1, B1, W2, B2].
func (m *MLP) Params() tensor.Vector {
	p := make(tensor.Vector, 0, m.NumParams())
	p = append(p, m.W1.Data...)
	p = append(p, m.B1...)
	p = append(p, m.W2.Data...)
	p = append(p, m.B2...)
	return p
}

// SetParams restores parameters from a flat vector.
func (m *MLP) SetParams(p tensor.Vector) {
	if len(p) != m.NumParams() {
		panic("model: MLP.SetParams length mismatch")
	}
	o := 0
	o += copy(m.W1.Data, p[o:o+len(m.W1.Data)])
	o += copy(m.B1, p[o:o+len(m.B1)])
	o += copy(m.W2.Data, p[o:o+len(m.W2.Data)])
	copy(m.B2, p[o:])
}

// TrainEpoch runs one epoch of per-sample SGD backprop on cross-entropy.
func (m *MLP) TrainEpoch(ds *dataset.Dataset, lr float64, rng *rand.Rand) {
	m.perm = permInto(rng, ds.Len(), m.perm)
	for _, i := range m.perm {
		x := ds.X.Row(i)
		probs := m.forward(x)
		y := ds.Y[i]

		// Output layer gradient: dL/dlogit_c = p_c - 1{c==y}.
		// Backprop into hidden first (needs W2 before its update).
		m.dh.Fill(0)
		for c := 0; c < m.Out; c++ {
			g := probs[c]
			if c == y {
				g -= 1
			}
			if g == 0 {
				continue
			}
			row := m.W2.Row(c)
			for j, wj := range row {
				m.dh[j] += g * wj
			}
			// Update output layer.
			m.B2[c] -= lr * g
			row.AddScaled(-lr*g, m.h)
		}
		// Hidden layer: ReLU gate then input-layer update.
		for j := 0; j < m.Hidden; j++ {
			if m.h[j] <= 0 {
				continue // ReLU inactive
			}
			g := m.dh[j]
			if g == 0 {
				continue
			}
			m.B1[j] -= lr * g
			m.W1.Row(j).AddScaled(-lr*g, x)
		}
	}
}
