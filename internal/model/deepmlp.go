package model

import (
	"math/rand"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// DeepMLP is a multi-hidden-layer perceptron (input → ReLU stack → softmax)
// generalising MLP to arbitrary depth. The valuation algorithms are
// model-agnostic; this family exists to check that the key-combinations
// phenomenon and IPSS accuracy carry over to deeper models than the paper's
// single-hidden-layer MLP.
type DeepMLP struct {
	// Ws[l] is the weight matrix of layer l (out × in); Bs[l] its bias.
	Ws []*tensor.Matrix
	Bs []tensor.Vector
	// Dims holds the layer widths: [in, hidden..., out].
	Dims []int

	// scratch activations and gradients per layer
	acts  []tensor.Vector // acts[l] = output of layer l (post-ReLU / softmax)
	grads []tensor.Vector
	perm  []int
}

// NewDeepMLP constructs a perceptron with the given layer widths
// [input, hidden1, ..., hiddenK, output]. At least one hidden layer is
// required (use LogReg for the zero-hidden case).
func NewDeepMLP(dims []int, seed int64) *DeepMLP {
	if len(dims) < 3 {
		panic("model: DeepMLP needs [in, hidden..., out] with at least one hidden layer")
	}
	rng := rand.New(rand.NewSource(seed))
	m := &DeepMLP{Dims: append([]int(nil), dims...)}
	for l := 0; l+1 < len(dims); l++ {
		w := tensor.NewMatrix(dims[l+1], dims[l])
		w.XavierInit(rng)
		m.Ws = append(m.Ws, w)
		m.Bs = append(m.Bs, tensor.NewVector(dims[l+1]))
		m.acts = append(m.acts, tensor.NewVector(dims[l+1]))
		m.grads = append(m.grads, tensor.NewVector(dims[l+1]))
	}
	return m
}

// layers returns the number of weight layers.
func (m *DeepMLP) layers() int { return len(m.Ws) }

// forward runs the network, caching activations, and returns the output
// probabilities (aliasing the last activation buffer).
func (m *DeepMLP) forward(x tensor.Vector) tensor.Vector {
	in := x
	last := m.layers() - 1
	for l := 0; l <= last; l++ {
		out := m.acts[l]
		m.Ws[l].MulVec(in, out)
		for j := range out {
			out[j] += m.Bs[l][j]
		}
		if l < last {
			for j := range out {
				out[j] = tensor.ReLU(out[j])
			}
		} else {
			tensor.Softmax(out, out)
		}
		in = out
	}
	return m.acts[last]
}

// Score returns class probabilities for x.
func (m *DeepMLP) Score(x tensor.Vector) tensor.Vector {
	return m.forward(x).Clone()
}

// PredictClass implements Classifier without the per-sample copy Score pays.
func (m *DeepMLP) PredictClass(x tensor.Vector) int {
	return m.forward(x).ArgMax()
}

// Clone returns a deep copy.
func (m *DeepMLP) Clone() Model {
	c := NewDeepMLP(m.Dims, 0)
	for l := range m.Ws {
		copy(c.Ws[l].Data, m.Ws[l].Data)
		copy(c.Bs[l], m.Bs[l])
	}
	return c
}

// NumParams returns the total trainable parameter count.
func (m *DeepMLP) NumParams() int {
	n := 0
	for l := range m.Ws {
		n += len(m.Ws[l].Data) + len(m.Bs[l])
	}
	return n
}

// Params returns the flattened layer parameters in order.
func (m *DeepMLP) Params() tensor.Vector {
	p := make(tensor.Vector, 0, m.NumParams())
	for l := range m.Ws {
		p = append(p, m.Ws[l].Data...)
		p = append(p, m.Bs[l]...)
	}
	return p
}

// SetParams restores parameters from a flat vector.
func (m *DeepMLP) SetParams(p tensor.Vector) {
	if len(p) != m.NumParams() {
		panic("model: DeepMLP.SetParams length mismatch")
	}
	o := 0
	for l := range m.Ws {
		o += copy(m.Ws[l].Data, p[o:o+len(m.Ws[l].Data)])
		o += copy(m.Bs[l], p[o:o+len(m.Bs[l])])
	}
}

// TrainEpoch runs one epoch of per-sample SGD backprop through all layers.
func (m *DeepMLP) TrainEpoch(ds *dataset.Dataset, lr float64, rng *rand.Rand) {
	last := m.layers() - 1
	m.perm = permInto(rng, ds.Len(), m.perm)
	for _, i := range m.perm {
		x := ds.X.Row(i)
		probs := m.forward(x)
		y := ds.Y[i]

		// Output gradient wrt logits.
		g := m.grads[last]
		for c := range g {
			g[c] = probs[c]
			if c == y {
				g[c] -= 1
			}
		}
		// Backward pass: compute the previous layer's gradient before
		// updating this layer's weights.
		for l := last; l >= 0; l-- {
			var input tensor.Vector
			if l == 0 {
				input = x
			} else {
				input = m.acts[l-1]
			}
			if l > 0 {
				prev := m.grads[l-1]
				m.Ws[l].MulVecT(m.grads[l], prev)
				// ReLU gate of the layer below.
				below := m.acts[l-1]
				for j := range prev {
					if below[j] <= 0 {
						prev[j] = 0
					}
				}
			}
			// Update layer l.
			gl := m.grads[l]
			for r := range gl {
				if gl[r] == 0 {
					continue
				}
				m.Bs[l][r] -= lr * gl[r]
				m.Ws[l].Row(r).AddScaled(-lr*gl[r], input)
			}
		}
	}
}
