package model

import (
	"math"
	"testing"

	"fedshap/internal/tensor"
)

func TestDeepMLPLearns(t *testing.T) {
	train, test := trainingSet(400, 21)
	m := NewDeepMLP([]int{train.Dim(), 16, 12, train.NumClasses}, 7)
	trainEpochs(m, train, 8, 0.04, 2)
	if acc := Accuracy(m, test); acc < 0.75 {
		t.Errorf("DeepMLP accuracy %v, want > 0.75", acc)
	}
}

func TestDeepMLPParamsRoundTrip(t *testing.T) {
	m := NewDeepMLP([]int{5, 4, 3, 2}, 1)
	p := m.Params()
	if len(p) != m.NumParams() {
		t.Fatalf("Params len %d != NumParams %d", len(p), m.NumParams())
	}
	// NumParams = 4*5+4 + 3*4+3 + 2*3+2 = 24+15+8 = 47.
	if m.NumParams() != 47 {
		t.Errorf("NumParams = %d, want 47", m.NumParams())
	}
	q := p.Clone()
	for i := range q {
		q[i] = float64(i) * 0.01
	}
	m.SetParams(q)
	got := m.Params()
	for i := range q {
		if got[i] != q[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestDeepMLPCloneIsDeep(t *testing.T) {
	m := NewDeepMLP([]int{4, 3, 2}, 1)
	c := m.Clone().(*DeepMLP)
	c.Ws[0].Data[0] += 7
	if m.Ws[0].Data[0] == c.Ws[0].Data[0] {
		t.Errorf("Clone shares weight storage")
	}
}

func TestDeepMLPScoreIsProbability(t *testing.T) {
	m := NewDeepMLP([]int{6, 5, 4, 3}, 3)
	p := m.Score(tensor.Vector{0.5, -0.2, 0.1, 0.9, -0.4, 0.0})
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestDeepMLPMatchesShallowShape(t *testing.T) {
	// A one-hidden-layer DeepMLP has the same parameter count as MLP.
	deep := NewDeepMLP([]int{8, 6, 4}, 1)
	flat := NewMLP(8, 6, 4, 1)
	if deep.NumParams() != flat.NumParams() {
		t.Errorf("param counts differ: %d vs %d", deep.NumParams(), flat.NumParams())
	}
}

func TestDeepMLPRejectsTooShallow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no-hidden-layer DeepMLP should panic")
		}
	}()
	NewDeepMLP([]int{4, 2}, 1)
}

func TestDeepMLPDeterministicTraining(t *testing.T) {
	train, _ := trainingSet(150, 23)
	run := func() tensor.Vector {
		m := NewDeepMLP([]int{train.Dim(), 8, 6, train.NumClasses}, 7)
		trainEpochs(m, train, 2, 0.05, 3)
		return m.Params()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical seeds diverged at param %d", i)
		}
	}
}
