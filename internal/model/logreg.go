package model

import (
	"math/rand"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// LogReg is multinomial logistic (softmax) regression trained by SGD on
// cross-entropy. With one hidden layer removed it is the cheapest
// classifier in the suite and the workhorse of fast unit tests.
type LogReg struct {
	W       *tensor.Matrix // classes × features
	B       tensor.Vector  // classes
	Classes int
	Dim     int

	scratch tensor.Vector
	perm    []int
}

// NewLogReg returns a softmax regressor with Xavier-initialised weights.
func NewLogReg(dim, classes int, seed int64) *LogReg {
	rng := rand.New(rand.NewSource(seed))
	m := &LogReg{
		W:       tensor.NewMatrix(classes, dim),
		B:       tensor.NewVector(classes),
		Classes: classes,
		Dim:     dim,
		scratch: tensor.NewVector(classes),
	}
	m.W.XavierInit(rng)
	return m
}

// Score returns the class probabilities for x.
func (m *LogReg) Score(x tensor.Vector) tensor.Vector {
	logits := m.W.MulVec(x, nil)
	for c := range logits {
		logits[c] += m.B[c]
	}
	return tensor.Softmax(logits, logits)
}

// PredictClass implements Classifier without the per-sample vector Score
// allocates; the softmax is kept so the argmax is computed on exactly the
// probabilities Score would return. The scratch guard covers instances
// built outside the constructors (e.g. decoded off the wire).
func (m *LogReg) PredictClass(x tensor.Vector) int {
	if len(m.scratch) != m.Classes {
		m.scratch = tensor.NewVector(m.Classes)
	}
	logits := m.W.MulVec(x, m.scratch)
	for c := range logits {
		logits[c] += m.B[c]
	}
	return tensor.Softmax(logits, logits).ArgMax()
}

// Clone returns a deep copy.
func (m *LogReg) Clone() Model {
	return &LogReg{
		W: m.W.Clone(), B: m.B.Clone(),
		Classes: m.Classes, Dim: m.Dim,
		scratch: tensor.NewVector(m.Classes),
	}
}

// NumParams returns classes*(dim+1).
func (m *LogReg) NumParams() int { return m.Classes*m.Dim + m.Classes }

// Params returns the flattened [W, B].
func (m *LogReg) Params() tensor.Vector {
	p := make(tensor.Vector, 0, m.NumParams())
	p = append(p, m.W.Data...)
	p = append(p, m.B...)
	return p
}

// SetParams restores parameters from a flat vector.
func (m *LogReg) SetParams(p tensor.Vector) {
	if len(p) != m.NumParams() {
		panic("model: LogReg.SetParams length mismatch")
	}
	copy(m.W.Data, p[:len(m.W.Data)])
	copy(m.B, p[len(m.W.Data):])
}

// TrainEpoch runs one epoch of per-sample SGD on softmax cross-entropy.
func (m *LogReg) TrainEpoch(ds *dataset.Dataset, lr float64, rng *rand.Rand) {
	m.perm = permInto(rng, ds.Len(), m.perm)
	for _, i := range m.perm {
		x := ds.X.Row(i)
		probs := m.W.MulVec(x, m.scratch)
		for c := range probs {
			probs[c] += m.B[c]
		}
		tensor.Softmax(probs, probs)
		y := ds.Y[i]
		// Gradient of CE wrt logits: p - onehot(y).
		for c := 0; c < m.Classes; c++ {
			g := probs[c]
			if c == y {
				g -= 1
			}
			if g == 0 {
				continue
			}
			m.B[c] -= lr * g
			row := m.W.Row(c)
			row.AddScaled(-lr*g, x)
		}
	}
}
