package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// trainingSet builds a small, learnable classification task.
func trainingSet(samples int, seed int64) (*dataset.Dataset, *dataset.Dataset) {
	cfg := dataset.DefaultSynthImages(samples, seed)
	cfg.Classes = 4
	cfg.NoiseStd = 0.25
	d := dataset.SynthImages(cfg)
	rng := rand.New(rand.NewSource(seed))
	return d.Split(0.75, rng)
}

func trainEpochs(m Parametric, ds *dataset.Dataset, epochs int, lr float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for e := 0; e < epochs; e++ {
		m.TrainEpoch(ds, lr, rng)
	}
}

func TestLogRegLearns(t *testing.T) {
	train, test := trainingSet(400, 1)
	m := NewLogReg(train.Dim(), train.NumClasses, 7)
	before := Accuracy(m, test)
	trainEpochs(m, train, 5, 0.05, 2)
	after := Accuracy(m, test)
	if after < 0.8 {
		t.Errorf("LogReg accuracy %v (was %v), want > 0.8", after, before)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %v -> %v", before, after)
	}
}

func TestMLPLearns(t *testing.T) {
	train, test := trainingSet(400, 3)
	m := NewMLP(train.Dim(), 16, train.NumClasses, 7)
	trainEpochs(m, train, 6, 0.05, 2)
	if acc := Accuracy(m, test); acc < 0.8 {
		t.Errorf("MLP accuracy %v, want > 0.8", acc)
	}
}

func TestCNNLearns(t *testing.T) {
	train, test := trainingSet(300, 5)
	m := NewCNN(10, 10, 4, train.NumClasses, 7)
	trainEpochs(m, train, 6, 0.03, 2)
	if acc := Accuracy(m, test); acc < 0.7 {
		t.Errorf("CNN accuracy %v, want > 0.7", acc)
	}
}

func TestXGBLearns(t *testing.T) {
	train, test := trainingSet(400, 9)
	m := NewXGB(train.NumClasses, DefaultXGBConfig(), 7)
	m.Fit(train)
	if acc := Accuracy(m, test); acc < 0.8 {
		t.Errorf("XGB accuracy %v, want > 0.8", acc)
	}
	if m.NumTrees() != m.Rounds*m.Classes {
		t.Errorf("NumTrees = %d, want %d", m.NumTrees(), m.Rounds*m.Classes)
	}
}

func TestXGBBinaryTabular(t *testing.T) {
	d, _ := dataset.AdultLike(dataset.DefaultAdultLike(600, 11))
	rng := rand.New(rand.NewSource(1))
	train, test := d.Split(0.8, rng)
	m := NewXGB(2, DefaultXGBConfig(), 3)
	m.Fit(train)
	if acc := Accuracy(m, test); acc < 0.7 {
		t.Errorf("XGB tabular accuracy %v, want > 0.7", acc)
	}
}

func TestXGBEmptyFit(t *testing.T) {
	m := NewXGB(2, DefaultXGBConfig(), 1)
	m.Fit(dataset.New("empty", 0, 3, 2))
	// Untrained model must still score (uniform probabilities).
	p := m.Score(tensor.Vector{1, 2, 3})
	if math.Abs(p[0]-0.5) > 1e-9 {
		t.Errorf("empty-fit XGB probability %v, want 0.5", p[0])
	}
}

func TestLinRegSGDConverges(t *testing.T) {
	// y = 2x0 - 3x1 + 1, exactly learnable.
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := tensor.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X.Set(i, 0, rng.NormFloat64())
		X.Set(i, 1, rng.NormFloat64())
		y[i] = 2*X.At(i, 0) - 3*X.At(i, 1) + 1
	}
	m := NewLinReg(2)
	for e := 0; e < 50; e++ {
		m.TrainEpochFloat(X, y, 0.05, rng)
	}
	if math.Abs(m.W[0]-2) > 0.1 || math.Abs(m.W[1]+3) > 0.1 || math.Abs(m.B-1) > 0.1 {
		t.Errorf("SGD fit w=%v b=%v, want [2,-3], 1", m.W, m.B)
	}
}

func TestLinRegOLSExact(t *testing.T) {
	// OLS on noiseless data recovers coefficients near-exactly.
	rng := rand.New(rand.NewSource(2))
	n, d := 50, 3
	X := tensor.NewMatrix(n, d)
	y := make([]float64, n)
	w := []float64{1.5, -2, 0.5}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < d; j++ {
			v := rng.NormFloat64()
			X.Set(i, j, v)
			s += w[j] * v
		}
		y[i] = s + 0.7
	}
	m := NewLinReg(d)
	m.FitOLS(X, y, 1e-9)
	for j := range w {
		if math.Abs(m.W[j]-w[j]) > 1e-6 {
			t.Errorf("OLS w[%d] = %v, want %v", j, m.W[j], w[j])
		}
	}
	if math.Abs(m.B-0.7) > 1e-6 {
		t.Errorf("OLS intercept = %v, want 0.7", m.B)
	}
}

func TestNegMSE(t *testing.T) {
	m := NewLinReg(1)
	m.W[0] = 1 // predicts y = x
	ds := dataset.New("d", 2, 1, 2)
	ds.X.Set(0, 0, 1)
	ds.Y[0] = 1 // error 0
	ds.X.Set(1, 0, 0)
	ds.Y[1] = 2 // error 2 → sq 4
	if got := NegMSE(m, ds); math.Abs(got+2) > 1e-12 {
		t.Errorf("NegMSE = %v, want -2", got)
	}
}

func TestAccuracyEmptySet(t *testing.T) {
	m := NewLogReg(3, 2, 1)
	if got := Accuracy(m, dataset.New("e", 0, 3, 2)); got != 0 {
		t.Errorf("Accuracy on empty = %v", got)
	}
}

// Params/SetParams round-trips for every parametric model.
func TestParamsRoundTrip(t *testing.T) {
	models := map[string]func() Parametric{
		"linreg": func() Parametric { return NewLinReg(5) },
		"logreg": func() Parametric { return NewLogReg(5, 3, 1) },
		"mlp":    func() Parametric { return NewMLP(5, 4, 3, 1) },
		"cnn":    func() Parametric { return NewCNN(6, 6, 2, 3, 1) },
	}
	for name, mk := range models {
		t.Run(name, func(t *testing.T) {
			m := mk()
			p := m.Params()
			if len(p) != m.NumParams() {
				t.Fatalf("Params len %d != NumParams %d", len(p), m.NumParams())
			}
			// Perturb, restore, compare.
			q := p.Clone()
			for i := range q {
				q[i] = float64(i) * 0.01
			}
			m.SetParams(q)
			got := m.Params()
			for i := range q {
				if got[i] != q[i] {
					t.Fatalf("round trip mismatch at %d: %v != %v", i, got[i], q[i])
				}
			}
		})
	}
}

// SetParams fully determines Score: two models with the same parameters give
// identical outputs (the property FedAvg and gradient reconstruction rely
// on).
func TestParamsDetermineScore(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := NewMLP(6, 5, 3, seedA)
		b := NewMLP(6, 5, 3, seedB)
		b.SetParams(a.Params())
		x := tensor.Vector{0.1, -0.2, 0.3, 0.5, -0.9, 0.01}
		sa, sb := a.Score(x), b.Score(x)
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMLP(4, 3, 2, 1)
	c := m.Clone().(*MLP)
	c.W1.Data[0] += 5
	if m.W1.Data[0] == c.W1.Data[0] {
		t.Errorf("Clone shares W1 storage")
	}
}

func TestCNNCloneIsDeep(t *testing.T) {
	m := NewCNN(6, 6, 2, 3, 1)
	c := m.Clone().(*CNN)
	c.K.Data[0] += 5
	if m.K.Data[0] == c.K.Data[0] {
		t.Errorf("CNN Clone shares kernel storage")
	}
}

func TestScoreIsProbability(t *testing.T) {
	train, _ := trainingSet(100, 13)
	models := []Model{
		NewLogReg(train.Dim(), train.NumClasses, 1),
		NewMLP(train.Dim(), 8, train.NumClasses, 1),
		NewCNN(10, 10, 2, train.NumClasses, 1),
	}
	x := train.X.Row(0)
	for _, m := range models {
		p := m.Score(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Errorf("%T produced probability %v", m, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%T probabilities sum to %v", m, sum)
		}
	}
}

func TestTrainingDeterminism(t *testing.T) {
	train, _ := trainingSet(150, 17)
	run := func() tensor.Vector {
		m := NewMLP(train.Dim(), 8, train.NumClasses, 7)
		trainEpochs(m, train, 2, 0.05, 3)
		return m.Params()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical seeds diverged at param %d", i)
		}
	}
}
