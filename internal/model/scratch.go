package model

import "math/rand"

// permInto is rand.Rand.Perm into a reusable buffer: it consumes the RNG
// identically (same Intn sequence, hence the same permutation for the same
// seed), so swapping it into a training loop changes no trained parameter
// bit — it only drops the per-epoch slice allocation. Kept in lockstep with
// math/rand's Perm, whose output sequence is frozen by the Go 1
// compatibility promise; TestPermIntoMatchesRandPerm guards the lockstep.
func permInto(rng *rand.Rand, n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	// The i = 0 iteration is a useless self-swap, but math/rand keeps it
	// for Go 1 stream compatibility — it consumes one Intn — so it must
	// stay here too or every RNG draw after a shuffle would shift.
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}
