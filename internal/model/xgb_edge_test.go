package model

import (
	"math"
	"testing"

	"fedshap/internal/dataset"
	"fedshap/internal/tensor"
)

// Edge behaviour of the tree substrate: degenerate label distributions,
// unsplittable features, and regularisation effects.

func TestXGBConstantLabels(t *testing.T) {
	d := dataset.New("const", 50, 3, 2)
	for i := 0; i < d.Len(); i++ {
		d.X.Set(i, 0, float64(i))
		d.Y[i] = 1 // every sample positive
	}
	m := NewXGB(2, DefaultXGBConfig(), 1)
	m.Fit(d)
	// Prediction must be class 1 everywhere.
	for i := 0; i < d.Len(); i++ {
		if m.Score(d.X.Row(i)).ArgMax() != 1 {
			t.Fatalf("constant-label model mispredicts row %d", i)
		}
	}
}

func TestXGBConstantFeatures(t *testing.T) {
	// All features identical: no split possible; the model must fall back
	// to leaf-only trees predicting the majority class.
	d := dataset.New("flat", 60, 2, 2)
	for i := 0; i < d.Len(); i++ {
		d.X.Set(i, 0, 1)
		d.X.Set(i, 1, 2)
		if i < 45 {
			d.Y[i] = 0
		} else {
			d.Y[i] = 1
		}
	}
	m := NewXGB(2, DefaultXGBConfig(), 1)
	m.Fit(d)
	if m.Score(tensor.Vector{1, 2}).ArgMax() != 0 {
		t.Errorf("majority class not predicted on unsplittable data")
	}
}

func TestXGBMinChildRespected(t *testing.T) {
	// With MinChild = 10 and 12 samples, at most one split can happen and
	// children must hold >= 10... which is impossible for 12 samples
	// (10+10 > 12), so trees must be single leaves.
	cfg := DefaultXGBConfig()
	cfg.MinChild = 10
	cfg.Rounds = 2
	d := dataset.New("small", 12, 1, 2)
	for i := 0; i < d.Len(); i++ {
		d.X.Set(i, 0, float64(i))
		d.Y[i] = i % 2
	}
	m := NewXGB(2, cfg, 1)
	m.Fit(d)
	for _, round := range m.trees {
		for _, tree := range round {
			if len(tree.nodes) != 1 {
				t.Fatalf("tree has %d nodes; MinChild should force a leaf", len(tree.nodes))
			}
			if tree.nodes[0].feature != -1 {
				t.Fatalf("single node is not a leaf")
			}
		}
	}
}

func TestXGBLambdaShrinksLeaves(t *testing.T) {
	mk := func(lambda float64) float64 {
		cfg := DefaultXGBConfig()
		cfg.Lambda = lambda
		cfg.Rounds = 1
		cfg.Depth = 1
		d := dataset.New("d", 40, 1, 2)
		for i := 0; i < d.Len(); i++ {
			d.X.Set(i, 0, float64(i))
			if i < 20 {
				d.Y[i] = 0
			} else {
				d.Y[i] = 1
			}
		}
		m := NewXGB(2, cfg, 1)
		m.Fit(d)
		// Magnitude of the first tree's most extreme leaf.
		var maxAbs float64
		for _, nd := range m.trees[0][0].nodes {
			if nd.feature == -1 && math.Abs(nd.value) > maxAbs {
				maxAbs = math.Abs(nd.value)
			}
		}
		return maxAbs
	}
	if small, big := mk(0.1), mk(10); big >= small {
		t.Errorf("larger lambda should shrink leaves: λ=0.1 → %v, λ=10 → %v", small, big)
	}
}

func TestCNNMinimumImageSize(t *testing.T) {
	// 3×3 images are the minimum for a 3×3 kernel; conv output is 1×1.
	m := NewCNN(3, 3, 2, 2, 1)
	x := make(tensor.Vector, 9)
	p := m.Score(x)
	if len(p) != 2 {
		t.Fatalf("score len = %d", len(p))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("2x2 image should panic")
		}
	}()
	NewCNN(2, 2, 1, 2, 1)
}

func TestCNNOddImageSizes(t *testing.T) {
	// Odd conv output exercises the ceil pooling path.
	cfg := dataset.SynthImagesConfig{
		Samples: 60, Classes: 3, Width: 7, Height: 9,
		NoiseStd: 0.2, Seed: 5, Sharpness: 1,
	}
	d := dataset.SynthImages(cfg)
	m := NewCNN(7, 9, 2, 3, 1)
	trainEpochs(m, d, 2, 0.05, 1)
	if acc := Accuracy(m, d); acc < 0.4 {
		t.Errorf("odd-size CNN training accuracy %v", acc)
	}
}

func TestLogRegSingleClass(t *testing.T) {
	// Degenerate single-class data must not NaN out.
	d := dataset.New("one", 30, 2, 2)
	for i := range d.Y {
		d.Y[i] = 0
		d.X.Set(i, 0, float64(i%5))
	}
	m := NewLogReg(2, 2, 1)
	trainEpochs(m, d, 3, 0.1, 1)
	p := m.Score(d.X.Row(0))
	if math.IsNaN(p[0]) || p.ArgMax() != 0 {
		t.Errorf("single-class logreg broken: %v", p)
	}
}
