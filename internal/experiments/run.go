package experiments

import (
	"context"
	"errors"
	"math"
	"time"

	"fedshap/internal/combin"
	"fedshap/internal/metrics"
	"fedshap/internal/shapley"
	"fedshap/internal/utility"
)

// GammaForN returns the paper's Table III sampling budget for a federation
// size: n=3→5, n=6→8, n=10→32; other sizes interpolate with the Fig. 9
// policy γ = ⌈n·ln n⌉.
func GammaForN(n int) int {
	switch n {
	case 3:
		return 5
	case 6:
		return 8
	case 10:
		return 32
	default:
		if n <= 1 {
			return 2
		}
		return int(math.Ceil(float64(n) * math.Log(float64(n))))
	}
}

// Result records one algorithm run on one problem.
type Result struct {
	// Algorithm is the display name.
	Algorithm string
	// Values are the estimated data values (nil when NotApplicable).
	Values shapley.Values
	// Seconds is the wall-clock run time, including all training and
	// evaluation the algorithm triggered.
	Seconds float64
	// Evals is the number of distinct coalition evaluations consumed from
	// the oracle (0 for purely gradient-based methods).
	Evals int
	// Err is the ℓ2 relative error against the exact values (NaN when no
	// ground truth was provided).
	Err float64
	// NotApplicable marks the "\" cells of Table V.
	NotApplicable bool
	// RunErr carries unexpected failures.
	RunErr error
}

// RunAlgorithm executes one algorithm on a fresh oracle for the problem and
// scores it against the exact values (pass nil when ground truth is
// unavailable, e.g. Fig. 9).
func RunAlgorithm(p *Problem, alg shapley.Valuer, exact shapley.Values, seed int64) Result {
	return RunWithOracle(p, p.Oracle(), alg, exact, seed)
}

// RunWithOracle is RunAlgorithm against a caller-supplied oracle, wrapped
// in a per-run budget view: sharing one oracle across repetitions is sound
// for error-only experiments (utilities are deterministic; only the
// sampling varies) and avoids retraining identical coalitions — the
// γ-sweeps of Figs. 7 and 10 use it. The budget meter each algorithm
// self-limits against counts only this run's distinct coalitions, so
// semantics match a fresh oracle exactly; wall-clock reflects cache hits.
func RunWithOracle(p *Problem, oracle *utility.Oracle, alg shapley.Valuer, exact shapley.Values, seed int64) Result {
	view := utility.NewRunView(oracle)
	ctx := shapley.NewContext(view, seed).WithSpec(p.Spec)
	start := time.Now()
	values, err := alg.Values(ctx)
	elapsed := time.Since(start).Seconds()
	res := Result{
		Algorithm: alg.Name(),
		Values:    values,
		Seconds:   elapsed,
		Evals:     view.Evals(),
		Err:       math.NaN(),
	}
	if err != nil {
		if errors.Is(err, shapley.ErrNotApplicable) {
			res.NotApplicable = true
		} else {
			res.RunErr = err
		}
		return res
	}
	if exact != nil {
		res.Err = metrics.L2RelativeError(values, exact)
	}
	return res
}

// RunAlgorithmParallel is RunAlgorithm with the algorithm's deterministic
// evaluation plan (shapley.PlanFor) trained on a bounded worker pool before
// the sequential pass, which then reduces against the warm cache. Values,
// budget accounting and fresh-evaluation counts are identical to
// RunAlgorithm; Seconds includes the concurrent prefetch. workers == 1
// falls through to the serial path; workers <= 0 selects GOMAXPROCS.
func RunAlgorithmParallel(ctx context.Context, p *Problem, alg shapley.Valuer, exact shapley.Values, seed int64, workers int) Result {
	oracle := p.Oracle()
	var prefetch float64
	if workers != 1 {
		if plan, ok := shapley.PlanFor(alg, p.N, seed); ok && len(plan) > 0 {
			start := time.Now()
			if err := oracle.Prefetch(ctx, plan, workers); err != nil {
				return Result{Algorithm: alg.Name(), RunErr: err, Err: math.NaN()}
			}
			prefetch = time.Since(start).Seconds()
		}
	}
	res := RunWithOracle(p, oracle, alg, exact, seed)
	res.Seconds += prefetch
	return res
}

// ExactValues computes the ground-truth MC-SV values on a fresh oracle and
// returns them with the evaluation time (the "MC-Shapley" row of the
// tables).
func ExactValues(p *Problem, seed int64) (shapley.Values, Result) {
	res := RunAlgorithm(p, shapley.ExactMC{}, nil, seed)
	return res.Values, res
}

// ExactValuesParallel is ExactValues with the 2ⁿ coalition trainings spread
// across a bounded worker pool.
func ExactValuesParallel(ctx context.Context, p *Problem, seed int64, workers int) (shapley.Values, Result) {
	res := RunAlgorithmParallel(ctx, p, shapley.ExactMC{}, nil, seed, workers)
	return res.Values, res
}

// PermShapleyTime estimates the Perm-Shapley row. For n ≤ maxExact it runs
// the enumeration for real (utilities cached, as any implementation would);
// beyond that it measures the per-coalition cost τ on a handful of
// coalitions and extrapolates the naive n!·n evaluation count, which is how
// the paper reports 10⁶-10⁹-second entries.
func PermShapleyTime(p *Problem, maxExact int, seed int64) Result {
	if p.N <= maxExact {
		return RunAlgorithm(p, shapley.ExactPerm{}, nil, seed)
	}
	oracle := p.Oracle()
	const probes = 3
	start := time.Now()
	for i := 0; i < probes && i < p.N; i++ {
		oracle.U(combin.NewCoalition(i))
	}
	tau := time.Since(start).Seconds() / float64(probes)
	return Result{
		Algorithm: "Perm-Shapley",
		Seconds:   tau * combin.Factorial(p.N) * float64(p.N),
		Err:       math.NaN(),
	}
}

// StandardSuite returns the paper's compared algorithms for a budget γ, in
// Table IV column order (Perm- and MC-Shapley are handled separately as
// ground truth rows).
func StandardSuite(gamma int) []shapley.Valuer {
	return []shapley.Valuer{
		shapley.DIGFL{},
		shapley.NewTMC(gamma),
		shapley.NewGTB(gamma),
		shapley.NewCCShapley(gamma),
		&shapley.GTGShapley{},
		shapley.OR{},
		&shapley.LambdaMR{},
		shapley.NewIPSS(gamma),
	}
}

// SamplingSuite returns just the sampling-based algorithms (the ones the γ
// sweeps of Figs. 7-9 compare).
func SamplingSuite(gamma int) []shapley.Valuer {
	return []shapley.Valuer{
		shapley.NewTMC(gamma),
		shapley.NewGTB(gamma),
		shapley.NewCCShapley(gamma),
		shapley.NewIPSS(gamma),
	}
}
