// Package experiments reproduces the paper's evaluation section: it builds
// the benchmark valuation problems (synthetic-MNIST setups (a)-(e),
// FEMNIST-like, Adult-like), runs every compared algorithm under the
// paper's budget policy (Table III), and regenerates the rows and series of
// each table and figure. DESIGN.md §4 maps experiment ids to the runners
// here.
package experiments

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/model"
	"fedshap/internal/utility"
)

// Scale controls the computational size of every experiment so the same
// code serves fast unit benches and full table regeneration.
type Scale struct {
	// PerClient is the training-sample count per FL client.
	PerClient int
	// TestSamples is the shared test-set size.
	TestSamples int
	// Rounds and LocalEpochs configure FedAvg.
	Rounds      int
	LocalEpochs int
	// Hidden is the MLP hidden width; Filters the CNN filter count.
	Hidden  int
	Filters int
	// XGBRounds is the boosting-round count for tree models.
	XGBRounds int
	// Reps is the repetition count for variance/Pareto experiments.
	Reps int
}

// Tiny is sized for unit tests and `go test -bench` — a full Table IV row
// completes in seconds.
func Tiny() Scale {
	return Scale{
		PerClient: 30, TestSamples: 120,
		Rounds: 2, LocalEpochs: 1,
		Hidden: 8, Filters: 3, XGBRounds: 6,
		Reps: 5,
	}
}

// Small is the default for the CLI tools: big enough that utility curves
// are smooth, small enough for a laptop.
func Small() Scale {
	return Scale{
		PerClient: 60, TestSamples: 300,
		Rounds: 3, LocalEpochs: 1,
		Hidden: 16, Filters: 4, XGBRounds: 10,
		Reps: 20,
	}
}

// ModelKind names the FL model families of the paper's evaluation.
type ModelKind string

// The model families compared in Tables IV-V and Figs. 6-10.
const (
	MLP ModelKind = "MLP"
	CNN ModelKind = "CNN"
	XGB ModelKind = "XGB"
	// LogReg is an extra fast family used by tests and the quickstart.
	LogReg ModelKind = "LogReg"
	// DeepMLP is a two-hidden-layer extension beyond the paper's models.
	DeepMLP ModelKind = "DeepMLP"
)

// Problem is a fully specified valuation problem: the federation, the test
// set, the model family and the FL configuration.
type Problem struct {
	// Name describes the dataset/setup/model combination.
	Name string
	// N is the number of FL clients.
	N int
	// Spec carries everything an algorithm needs to train and evaluate.
	Spec *utility.FLSpec
	// FreeRiders lists clients with deliberately empty datasets (Fig. 9).
	FreeRiders []int
	// DuplicateGroups lists client groups holding identical datasets
	// (Fig. 9 symmetric-fairness proxy).
	DuplicateGroups [][]int

	// customOracle, when set, overrides the standard FL-training oracle
	// (used by the linear-regression theory experiments, which evaluate
	// coalitions by closed-form OLS).
	customOracle func() *utility.Oracle
}

// Oracle returns a fresh utility oracle for the problem. Every algorithm
// run gets its own oracle so time and budget accounting are independent.
func (p *Problem) Oracle() *utility.Oracle {
	if p.customOracle != nil {
		return p.customOracle()
	}
	return utility.NewFLOracle(*p.Spec)
}

// NewFuncProblem builds a problem whose utilities come from an arbitrary
// function instead of FL training — synthetic cooperative games, closed-form
// oracles and valuation-service tests use it. Spec stays nil, so
// gradient-based baselines report ErrNeedsSpec on such problems.
func NewFuncProblem(name string, n int, eval func(combin.Coalition) float64) *Problem {
	return &Problem{
		Name: name,
		N:    n,
		customOracle: func() *utility.Oracle {
			return utility.NewOracle(n, eval)
		},
	}
}

// factory builds the model constructor for a family over a given input
// dimensionality and class count.
func factory(kind ModelKind, dim, classes, imgW, imgH int, sc Scale) model.Factory {
	switch kind {
	case MLP:
		return func(seed int64) model.Model { return model.NewMLP(dim, sc.Hidden, classes, seed) }
	case CNN:
		return func(seed int64) model.Model { return model.NewCNN(imgW, imgH, sc.Filters, classes, seed) }
	case XGB:
		cfg := model.DefaultXGBConfig()
		cfg.Rounds = sc.XGBRounds
		return func(seed int64) model.Model { return model.NewXGB(classes, cfg, seed) }
	case LogReg:
		return func(seed int64) model.Model { return model.NewLogReg(dim, classes, seed) }
	case DeepMLP:
		h2 := sc.Hidden / 2
		if h2 < 2 {
			h2 = 2
		}
		return func(seed int64) model.Model {
			return model.NewDeepMLP([]int{dim, sc.Hidden, h2, classes}, seed)
		}
	default:
		panic(fmt.Sprintf("experiments: unknown model kind %q", kind))
	}
}

// flConfig builds the FedAvg configuration for a scale.
func flConfig(sc Scale, seed int64) fl.Config {
	return fl.Config{
		Rounds: sc.Rounds, LocalEpochs: sc.LocalEpochs,
		LR: 0.05, Seed: seed, WeightBySize: true,
	}
}

// NewFEMNISTProblem builds the FEMNIST-like writer-partitioned problem of
// Tables IV and Figs. 1(b), 4, 7-10.
func NewFEMNISTProblem(n int, kind ModelKind, sc Scale, seed int64) *Problem {
	cfg := dataset.DefaultFEMNISTLike(n, sc.PerClient, seed)
	cfg.TestSamples = sc.TestSamples
	clients, test := dataset.FEMNISTLike(cfg)
	spec := &utility.FLSpec{
		Factory: factory(kind, clients[0].Dim(), cfg.Classes, cfg.Width, cfg.Height, sc),
		Clients: clients,
		Test:    test,
		Config:  flConfig(sc, seed+1),
		Metric:  model.Accuracy,
	}
	return &Problem{
		Name: fmt.Sprintf("FEMNIST-like/n=%d/%s", n, kind),
		N:    n,
		Spec: spec,
	}
}

// NewAdultProblem builds the Adult-like occupation-partitioned tabular
// problem of Table V.
func NewAdultProblem(n int, kind ModelKind, sc Scale, seed int64) *Problem {
	cfg := dataset.DefaultAdultLike(n*sc.PerClient+sc.TestSamples, seed)
	pool, occ := dataset.AdultLike(cfg)
	rng := rand.New(rand.NewSource(seed + 2))
	// Hold out a test split, partition the rest by occupation.
	perm := rng.Perm(pool.Len())
	testIdx, trainIdx := perm[:sc.TestSamples], perm[sc.TestSamples:]
	test := pool.Subset("adult-like/test", testIdx)
	train := pool.Subset("adult-like/train", trainIdx)
	trainOcc := make([]int, len(trainIdx))
	for i, idx := range trainIdx {
		trainOcc[i] = occ[idx]
	}
	clients := dataset.PartitionByKey(train, trainOcc, n)
	spec := &utility.FLSpec{
		Factory: factory(kind, pool.Dim(), pool.NumClasses, 0, 0, sc),
		Clients: clients,
		Test:    test,
		Config:  flConfig(sc, seed+3),
		Metric:  model.Accuracy,
	}
	return &Problem{
		Name: fmt.Sprintf("Adult-like/n=%d/%s", n, kind),
		N:    n,
		Spec: spec,
	}
}

// SyntheticSetup identifies the five partitioning setups of Fig. 6.
type SyntheticSetup string

// The Fig. 6 setups.
const (
	SameSizeSameDist  SyntheticSetup = "same-size-same-distr"
	SameSizeDiffDist  SyntheticSetup = "same-size-diff-distr"
	DiffSizeSameDist  SyntheticSetup = "diff-size-same-distr"
	SameSizeNoisyLbl  SyntheticSetup = "same-size-noisy-label"
	SameSizeNoisyFeat SyntheticSetup = "same-size-noisy-feature"
)

// AllSyntheticSetups lists the Fig. 6 setups in paper order.
func AllSyntheticSetups() []SyntheticSetup {
	return []SyntheticSetup{
		SameSizeSameDist, SameSizeDiffDist, DiffSizeSameDist,
		SameSizeNoisyLbl, SameSizeNoisyFeat,
	}
}

// NewSyntheticProblem builds one of the Fig. 6 synthetic-MNIST problems.
// noise configures setups (d) and (e): the label-flip fraction or the
// feature-noise scale (both 0.0-0.2 in the paper); it is ignored by the
// other setups. Noise is applied to half the clients so that client values
// differentiate, mirroring the paper's per-client quality variation.
func NewSyntheticProblem(setup SyntheticSetup, n int, kind ModelKind, sc Scale, noise float64, seed int64) *Problem {
	imgCfg := dataset.DefaultSynthImages(n*sc.PerClient+sc.TestSamples, seed)
	pool := dataset.SynthImages(imgCfg)
	rng := rand.New(rand.NewSource(seed + 4))
	train, test := pool.Split(1-float64(sc.TestSamples)/float64(pool.Len()), rng)

	var clients []*dataset.Dataset
	switch setup {
	case SameSizeSameDist:
		clients = dataset.PartitionEqualIID(train, n, rng)
	case SameSizeDiffDist:
		clients = dataset.PartitionLabelSkew(train, n, 0.7, rng)
	case DiffSizeSameDist:
		clients = dataset.PartitionBySizeRatio(train, n, rng)
	case SameSizeNoisyLbl:
		clients = dataset.PartitionEqualIID(train, n, rng)
		for i := n / 2; i < n; i++ {
			dataset.AddLabelNoise(clients[i], noise, rng)
		}
	case SameSizeNoisyFeat:
		clients = dataset.PartitionEqualIID(train, n, rng)
		for i := n / 2; i < n; i++ {
			dataset.AddFeatureNoise(clients[i], noise, rng)
		}
	default:
		panic(fmt.Sprintf("experiments: unknown setup %q", setup))
	}

	spec := &utility.FLSpec{
		Factory: factory(kind, pool.Dim(), pool.NumClasses, imgCfg.Width, imgCfg.Height, sc),
		Clients: clients,
		Test:    test,
		Config:  flConfig(sc, seed+5),
		Metric:  model.Accuracy,
	}
	return &Problem{
		Name: fmt.Sprintf("synthetic/%s/n=%d/%s", setup, n, kind),
		N:    n,
		Spec: spec,
	}
}

// NewScalabilityProblem builds the Fig. 9 large-federation problem:
// 5% of clients are free riders (empty datasets) and 5% duplicate another
// client's dataset, so property proxies can replace infeasible ground
// truth.
func NewScalabilityProblem(n int, kind ModelKind, sc Scale, seed int64) *Problem {
	cfg := dataset.DefaultFEMNISTLike(n, sc.PerClient, seed)
	cfg.TestSamples = sc.TestSamples
	clients, test := dataset.FEMNISTLike(cfg)

	nRiders := n / 20
	if nRiders < 1 {
		nRiders = 1
	}
	nDups := n / 20
	if nDups < 1 {
		nDups = 1
	}
	var freeRiders []int
	var dupGroups [][]int
	// Final nRiders clients become free riders; the nDups before them
	// duplicate client 0, 1, ... respectively.
	for i := 0; i < nRiders; i++ {
		idx := n - 1 - i
		clients[idx] = clients[idx].Empty(fmt.Sprintf("free-rider-%d", i))
		freeRiders = append(freeRiders, idx)
	}
	for i := 0; i < nDups; i++ {
		idx := n - 1 - nRiders - i
		src := i % (n - nRiders - nDups)
		clients[idx] = clients[src].Clone()
		dupGroups = append(dupGroups, []int{src, idx})
	}

	spec := &utility.FLSpec{
		Factory: factory(kind, clients[0].Dim(), cfg.Classes, cfg.Width, cfg.Height, sc),
		Clients: clients,
		Test:    test,
		Config:  flConfig(sc, seed+6),
		Metric:  model.Accuracy,
	}
	return &Problem{
		Name:            fmt.Sprintf("scalability/n=%d/%s", n, kind),
		N:               n,
		Spec:            spec,
		FreeRiders:      freeRiders,
		DuplicateGroups: dupGroups,
	}
}
