package experiments

import (
	"fmt"

	"fedshap/internal/combin"
	"fedshap/internal/metrics"
)

// MarginalCurve reproduces the observation behind the paper's Fig. 3 and
// Sec. IV-A: the average marginal utility U(M_{S∪{i}}) − U(M_S) per
// coalition size |S|, together with the MC-SV stratum coefficient
// 1/C(n−1,|S|) and their product — the actual per-stratum impact on the
// data value. The curve's fast decay is the key-combinations phenomenon:
// most of the value mass lives in the smallest strata.
func MarginalCurve(p *Problem, seed int64) *Report {
	n := p.N
	o := p.Oracle()
	rep := &Report{
		Title:  fmt.Sprintf("Fig. 3 observation — marginal utility by stratum, %s", p.Name),
		Header: []string{"|S|", "avg marginal", "coef 1/C(n-1,|S|)", "impact (avg×coef)"},
	}
	for size := 0; size < n; size++ {
		var margs []float64
		combin.SubsetsOfSize(n, size, func(s combin.Coalition) {
			us := o.U(s)
			for i := 0; i < n; i++ {
				if s.Has(i) {
					continue
				}
				margs = append(margs, o.U(s.With(i))-us)
			}
		})
		avg := metrics.Mean(margs)
		coef := 1.0 / combin.Binomial(n-1, size)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.4f", avg),
			fmt.Sprintf("%.5f", coef),
			fmt.Sprintf("%.6f", avg*coef),
		})
	}
	return rep
}
