package experiments

import (
	"fedshap/internal/combin"
	"fmt"
	"strconv"
	"testing"
)

func TestLinRegProblemOracle(t *testing.T) {
	p := NewLinRegProblem(DefaultLinRegProblem(5))
	o := p.Oracle()
	// More data → higher utility (less negative MSE), on average.
	uEmpty := o.U(combin.Empty)
	uFull := o.U(combin.FullCoalition(5))
	if uFull <= uEmpty {
		t.Errorf("U(N)=%v should beat U(∅)=%v", uFull, uEmpty)
	}
	// Utility is negative MSE: never positive.
	if uFull > 0 {
		t.Errorf("negative-MSE utility is positive: %v", uFull)
	}
}

func TestLemmaOneCloseToClosedForm(t *testing.T) {
	rep := LemmaOne(DefaultLinRegProblem(1), 8)
	gap, err := strconv.ParseFloat(rep.Rows[2][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	// The closed form is asymptotic; finite samples land within ~15%.
	if gap > 0.15 {
		t.Errorf("Lemma 1 relative gap %v, want < 0.15\n%v", gap, rep.Rows)
	}
}

func TestTheoremThreeMeanGapWithinBound(t *testing.T) {
	rep := TheoremThree(DefaultLinRegProblem(2), 6)
	for _, row := range rep.Rows {
		k := row[0]
		meanGap, _ := strconv.ParseFloat(row[1], 64)
		bound, _ := strconv.ParseFloat(row[3], 64)
		// Expectation bound with slack for finite-draw averaging.
		if meanGap > 2*bound+0.01 {
			t.Errorf("k*=%s: mean gap %v far above bound %v", k, meanGap, bound)
		}
	}
	// The bound column must decrease in k*.
	prev := 1e18
	for _, row := range rep.Rows {
		b, _ := strconv.ParseFloat(row[3], 64)
		if b > prev {
			t.Errorf("bound not decreasing: %v after %v", b, prev)
		}
		prev = b
	}
}

func TestTheoremThreeReportShape(t *testing.T) {
	cfg := DefaultLinRegProblem(3)
	rep := TheoremThree(cfg, 1)
	if len(rep.Rows) != cfg.N {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), cfg.N)
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last[1] != "0.0000" || last[2] != "0.0000" {
		t.Errorf("k*=n should have zero error: %v", last)
	}
	_ = fmt.Sprintf("%v", rep)
}
