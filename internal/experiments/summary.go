package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Summary distils a set of valuation results into the paper's Sec. V-E
// findings format: per problem, which algorithm was the most efficient and
// which the most effective, plus whether IPSS achieved both — the claim
// the paper's summary makes for "most setups".

// Finding is one problem's verdict.
type Finding struct {
	Problem       string
	FastestAlg    string
	FastestTime   float64
	AccuratestAlg string
	BestErr       float64
	IPSSBoth      bool
}

// Summarise scans (problem, result) pairs and produces one Finding per
// problem. Exact methods (error NaN) are excluded from both rankings.
func Summarise(problems []string, results [][]Result) []Finding {
	out := make([]Finding, 0, len(problems))
	for i, name := range problems {
		f := Finding{Problem: name, FastestTime: math.Inf(1), BestErr: math.Inf(1)}
		for _, r := range results[i] {
			if r.NotApplicable || r.RunErr != nil || math.IsNaN(r.Err) {
				continue
			}
			if r.Seconds < f.FastestTime {
				f.FastestTime = r.Seconds
				f.FastestAlg = r.Algorithm
			}
			if r.Err < f.BestErr {
				f.BestErr = r.Err
				f.AccuratestAlg = r.Algorithm
			}
		}
		f.IPSSBoth = strings.HasPrefix(f.FastestAlg, "IPSS") && strings.HasPrefix(f.AccuratestAlg, "IPSS")
		out = append(out, f)
	}
	return out
}

// SummaryReport renders findings as a report, with a closing line counting
// how often IPSS won each category — the Sec. V-E reproduction.
func SummaryReport(findings []Finding) *Report {
	rep := &Report{
		Title:  "Sec. V-E summary — per-problem winners",
		Header: []string{"problem", "fastest", "time(s)", "most accurate", "error"},
	}
	fastWins, accWins, both := 0, 0, 0
	for _, f := range findings {
		rep.Rows = append(rep.Rows, []string{
			f.Problem, f.FastestAlg, fmtSecs(f.FastestTime),
			f.AccuratestAlg, strconv.FormatFloat(f.BestErr, 'f', 3, 64),
		})
		if strings.HasPrefix(f.FastestAlg, "IPSS") {
			fastWins++
		}
		if strings.HasPrefix(f.AccuratestAlg, "IPSS") {
			accWins++
		}
		if f.IPSSBoth {
			both++
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"IPSS fastest in %d/%d problems, most accurate in %d/%d, both in %d",
		fastWins, len(findings), accWins, len(findings), both))
	return rep
}

// RunSummary executes the standard suite over a set of problems and
// summarises — the one-call Sec. V-E reproduction.
func RunSummary(problems []*Problem, seed int64) *Report {
	names := make([]string, len(problems))
	results := make([][]Result, len(problems))
	for i, p := range problems {
		names[i] = p.Name
		exact, _ := ExactValues(p, seed+int64(i))
		gamma := GammaForN(p.N)
		for ai, alg := range StandardSuite(gamma) {
			results[i] = append(results[i], RunAlgorithm(p, alg, exact, seed+int64(100*i+ai)))
		}
	}
	return SummaryReport(Summarise(names, results))
}
