package experiments

import (
	"fmt"
)

// TableConfig parameterises the Table IV / Table V runners.
type TableConfig struct {
	// Ns lists the client counts (the paper uses 3, 6, 10).
	Ns []int
	// Models lists the FL model families for the table.
	Models []ModelKind
	// Scale sizes the substrate.
	Scale Scale
	// Seed drives data generation and sampling.
	Seed int64
	// MaxExactPerm bounds real Perm-Shapley enumeration; larger n are
	// extrapolated as in the paper.
	MaxExactPerm int
}

// DefaultTableConfig mirrors the paper's Table IV setup at the given scale.
func DefaultTableConfig(sc Scale, seed int64) TableConfig {
	return TableConfig{
		Ns:           []int{3, 6, 10},
		Models:       []ModelKind{MLP, CNN},
		Scale:        sc,
		Seed:         seed,
		MaxExactPerm: 6,
	}
}

// TableIV regenerates the paper's Table IV: FEMNIST-like, MLP and CNN
// models, n ∈ {3,6,10}, all ten algorithms, time and ℓ2 error per cell.
func TableIV(cfg TableConfig) *Report {
	return valuationTable(
		"Table IV — FEMNIST-like (time seconds / l2 error)",
		cfg,
		func(n int, kind ModelKind) *Problem {
			return NewFEMNISTProblem(n, kind, cfg.Scale, cfg.Seed+int64(n)*17)
		},
	)
}

// TableV regenerates the paper's Table V: Adult-like tabular data with MLP
// and XGB models; gradient-based baselines report "\" for XGB.
func TableV(cfg TableConfig) *Report {
	if len(cfg.Models) == 0 {
		cfg.Models = []ModelKind{MLP, XGB}
	}
	return valuationTable(
		"Table V — Adult-like (time seconds / l2 error)",
		cfg,
		func(n int, kind ModelKind) *Problem {
			return NewAdultProblem(n, kind, cfg.Scale, cfg.Seed+int64(n)*19)
		},
	)
}

// valuationTable runs the full comparison grid shared by Tables IV and V.
func valuationTable(title string, cfg TableConfig, build func(int, ModelKind) *Problem) *Report {
	rep := &Report{
		Title: title,
		Header: []string{
			"model", "n", "metric",
			"Perm-Shap.", "MC-Shap.", "DIG-FL", "Ext-TMC", "Ext-GTB",
			"CC-Shap.", "GTG-Shap.", "OR", "λ-MR", "IPSS",
		},
		Notes: []string{
			"\"-\" = exact method (no approximation error); \"\\\" = not applicable to the model family",
			fmt.Sprintf("budgets per Table III / n·ln n policy; scale: %d samples/client, %d FedAvg rounds",
				cfg.Scale.PerClient, cfg.Scale.Rounds),
		},
	}
	for _, kind := range cfg.Models {
		for _, n := range cfg.Ns {
			p := build(n, kind)
			gamma := GammaForN(n)

			exact, exactRes := ExactValues(p, cfg.Seed+101)
			permRes := PermShapleyTime(p, cfg.MaxExactPerm, cfg.Seed+103)

			results := make([]Result, 0, 8)
			for i, alg := range StandardSuite(gamma) {
				results = append(results, RunAlgorithm(p, alg, exact, cfg.Seed+200+int64(i)))
			}

			timeRow := []string{string(kind), fmt.Sprintf("%d", n), "Time(s)",
				fmtSecs(permRes.Seconds), fmtSecs(exactRes.Seconds)}
			errRow := []string{"", "", "Error(l2)", "-", "-"}
			for _, r := range results {
				if r.RunErr != nil {
					timeRow = append(timeRow, "err")
					errRow = append(errRow, "err")
					continue
				}
				if r.NotApplicable {
					timeRow = append(timeRow, `\`)
					errRow = append(errRow, `\`)
					continue
				}
				timeRow = append(timeRow, fmtSecs(r.Seconds))
				errRow = append(errRow, fmtErr(r.Err, false))
			}
			rep.Rows = append(rep.Rows, timeRow, errRow)
		}
	}
	return rep
}

// TableI reproduces the worked example of the paper's Table I / Example 1:
// the three-hospital utility table and its exact Shapley values.
func TableI() *Report {
	return &Report{
		Title:  "Table I — worked example (Example 1)",
		Header: []string{"client", "exact SV (MC scheme)"},
		Rows: [][]string{
			{"hospital 1", "0.220"},
			{"hospital 2", "0.320"},
			{"hospital 3", "0.320"},
		},
		Notes: []string{"see TestExample1 for the line-by-line reproduction"},
	}
}
