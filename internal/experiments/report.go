package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Report is a rendered experiment: a titled table of rows, directly
// comparable to the corresponding table/figure of the paper.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the report as CSV for downstream plotting.
func (r *Report) RenderCSV(w io.Writer) {
	writeCSVRow(w, r.Header)
	for _, row := range r.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		quoted[i] = c
	}
	fmt.Fprintln(w, strings.Join(quoted, ","))
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtSecs renders a time like the paper's Time(s) cells, switching to
// scientific notation for extrapolated astronomic entries.
func fmtSecs(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case s >= 1e5:
		return fmt.Sprintf("%.1e", s)
	case s >= 10:
		return fmt.Sprintf("%.0f", s)
	case s >= 0.01:
		return fmt.Sprintf("%.3f", s)
	default:
		return fmt.Sprintf("%.5f", s)
	}
}

// fmtErr renders an Error(l2) cell; exact methods show "-" and
// not-applicable cells show "\" as in the paper.
func fmtErr(e float64, notApplicable bool) string {
	if notApplicable {
		return `\`
	}
	if math.IsNaN(e) {
		return "-"
	}
	return fmt.Sprintf("%.3f", e)
}
