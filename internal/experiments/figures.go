package experiments

import (
	"fmt"

	"fedshap/internal/metrics"
	"fedshap/internal/shapley"
)

// FigConfig parameterises the figure runners.
type FigConfig struct {
	// N is the client count (figures mostly use 10).
	N int
	// Models lists the model families to sweep.
	Models []ModelKind
	// Scale sizes the substrate.
	Scale Scale
	// Seed drives generation and sampling.
	Seed int64
}

// DefaultFigConfig mirrors the paper's figure setups at the given scale.
func DefaultFigConfig(sc Scale, seed int64) FigConfig {
	return FigConfig{N: 10, Models: []ModelKind{MLP, CNN}, Scale: sc, Seed: seed}
}

// Fig1b regenerates the paper's Fig. 1(b) motivation scatter: time vs error
// of every algorithm on the FEMNIST-like problem with ten clients.
func Fig1b(cfg FigConfig) *Report {
	p := NewFEMNISTProblem(cfg.N, MLP, cfg.Scale, cfg.Seed)
	gamma := GammaForN(cfg.N)
	exact, exactRes := ExactValues(p, cfg.Seed+1)

	rep := &Report{
		Title:  fmt.Sprintf("Fig. 1(b) — time vs error, %s", p.Name),
		Header: []string{"algorithm", "time(s)", "error(l2)"},
	}
	rep.Rows = append(rep.Rows, []string{"MC-Shapley", fmtSecs(exactRes.Seconds), "-"})
	for i, alg := range StandardSuite(gamma) {
		r := RunAlgorithm(p, alg, exact, cfg.Seed+10+int64(i))
		rep.Rows = append(rep.Rows, []string{r.Algorithm, fmtSecs(r.Seconds), fmtErr(r.Err, r.NotApplicable)})
	}
	return rep
}

// Fig4 regenerates Fig. 4: the key-combinations probe. K-Greedy relative
// error against exact MC-SV for K = 1..n on the FEMNIST-like problem.
func Fig4(cfg FigConfig) *Report {
	kind := CNN // the paper's empirical study uses the CNN
	if len(cfg.Models) > 0 {
		kind = cfg.Models[0]
	}
	p := NewFEMNISTProblem(cfg.N, kind, cfg.Scale, cfg.Seed)
	exact, _ := ExactValues(p, cfg.Seed+1)

	rep := &Report{
		Title:  fmt.Sprintf("Fig. 4 — K-Greedy error vs K, %s", p.Name),
		Header: []string{"K", "error(l2)", "evals"},
	}
	for k := 1; k <= p.N; k++ {
		r := RunAlgorithm(p, &shapley.KGreedy{K: k}, exact, cfg.Seed+int64(k))
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", k), fmtErr(r.Err, false), fmt.Sprintf("%d", r.Evals),
		})
	}
	rep.Notes = append(rep.Notes, "paper: error < 1% already at K=2; shape = fast drop then plateau")
	return rep
}

// Fig6 regenerates Fig. 6: the five synthetic partition setups (a)-(e), per
// model family, reporting every algorithm's time and error. Setups (d) and
// (e) use the paper's mid-range noise level 0.10.
func Fig6(cfg FigConfig) *Report {
	const noise = 0.10
	rep := &Report{
		Title:  "Fig. 6 — synthetic setups (a)-(e)",
		Header: []string{"setup", "model", "algorithm", "time(s)", "error(l2)"},
		Notes:  []string{"noise level 0.10 for setups (d) and (e)"},
	}
	gamma := GammaForN(cfg.N)
	for _, setup := range AllSyntheticSetups() {
		for _, kind := range cfg.Models {
			p := NewSyntheticProblem(setup, cfg.N, kind, cfg.Scale, noise, cfg.Seed)
			exact, _ := ExactValues(p, cfg.Seed+2)
			for i, alg := range StandardSuite(gamma) {
				r := RunAlgorithm(p, alg, exact, cfg.Seed+30+int64(i))
				rep.Rows = append(rep.Rows, []string{
					string(setup), string(kind), r.Algorithm,
					fmtSecs(r.Seconds), fmtErr(r.Err, r.NotApplicable),
				})
			}
		}
	}
	return rep
}

// Fig6Noise regenerates the noise sweeps behind Fig. 6(d) and 6(e): for
// label-noise and feature-noise levels 0%..20% (the paper's range), the
// error of every applicable algorithm. The noisy half of the clients
// degrades as noise grows; algorithms that stay accurate across the sweep
// are the stable ones the paper calls out (λ-MR and IPSS in (d)).
func Fig6Noise(cfg FigConfig, levels []float64) *Report {
	if len(levels) == 0 {
		levels = []float64{0, 0.05, 0.10, 0.15, 0.20}
	}
	kind := MLP
	if len(cfg.Models) > 0 {
		kind = cfg.Models[0]
	}
	rep := &Report{
		Title:  "Fig. 6(d)/(e) — error vs noise level",
		Header: []string{"setup", "noise", "algorithm", "error(l2)"},
	}
	gamma := GammaForN(cfg.N)
	for _, setup := range []SyntheticSetup{SameSizeNoisyLbl, SameSizeNoisyFeat} {
		for _, lvl := range levels {
			p := NewSyntheticProblem(setup, cfg.N, kind, cfg.Scale, lvl, cfg.Seed)
			exact, _ := ExactValues(p, cfg.Seed+2)
			for i, alg := range StandardSuite(gamma) {
				r := RunAlgorithm(p, alg, exact, cfg.Seed+50+int64(i))
				rep.Rows = append(rep.Rows, []string{
					string(setup), fmt.Sprintf("%.2f", lvl), r.Algorithm,
					fmtErr(r.Err, r.NotApplicable),
				})
			}
		}
	}
	return rep
}

// Fig7 regenerates Fig. 7: approximation error of the sampling-based
// algorithms as the budget γ grows, with across-run mean and standard
// deviation over Scale.Reps repetitions.
func Fig7(cfg FigConfig, gammas []int) *Report {
	if len(gammas) == 0 {
		gammas = []int{8, 16, 32, 64, 128, 256}
	}
	rep := &Report{
		Title:  "Fig. 7 — error vs sampling rounds γ",
		Header: []string{"model", "γ", "algorithm", "mean error", "std error"},
	}
	for _, kind := range cfg.Models {
		p := NewFEMNISTProblem(cfg.N, kind, cfg.Scale, cfg.Seed)
		exact, _ := ExactValues(p, cfg.Seed+1)
		// One shared oracle per problem: utilities are deterministic, so
		// repetitions only redo the sampling, not the training.
		oracle := p.Oracle()
		for _, gamma := range gammas {
			for ai, alg := range SamplingSuite(gamma) {
				errs := make([]float64, 0, cfg.Scale.Reps)
				for rep := 0; rep < cfg.Scale.Reps; rep++ {
					r := RunWithOracle(p, oracle, SamplingSuite(gamma)[ai], exact,
						cfg.Seed+int64(1000*gamma+100*ai+rep))
					errs = append(errs, r.Err)
				}
				rep.Rows = append(rep.Rows, []string{
					string(kind), fmt.Sprintf("%d", gamma), alg.Name(),
					fmt.Sprintf("%.4f", metrics.Mean(errs)),
					fmt.Sprintf("%.4f", metrics.StdDev(errs)),
				})
			}
		}
	}
	return rep
}

// Fig8 regenerates Fig. 8: Pareto (time, error) points per sampling
// algorithm per budget, for each n and model family — the efficiency/
// effectiveness trade-off curves.
func Fig8(cfg FigConfig, ns []int, gammas []int) *Report {
	if len(ns) == 0 {
		ns = []int{3, 6, 10}
	}
	rep := &Report{
		Title:  "Fig. 8 — Pareto curves (mean time vs mean error per γ)",
		Header: []string{"model", "n", "γ", "algorithm", "mean time(s)", "mean error"},
	}
	for _, kind := range cfg.Models {
		for _, n := range ns {
			p := NewFEMNISTProblem(n, kind, cfg.Scale, cfg.Seed+int64(n))
			exact, _ := ExactValues(p, cfg.Seed+1)
			sweep := gammas
			if len(sweep) == 0 {
				base := GammaForN(n)
				sweep = []int{base, 2 * base, 4 * base}
			}
			// Honest per-run timing needs fresh oracles, so cap the
			// repetition count to keep full-grid runs tractable.
			reps := cfg.Scale.Reps
			if reps > 5 {
				reps = 5
			}
			for _, gamma := range sweep {
				for ai, alg := range SamplingSuite(gamma) {
					var ts, es []float64
					for rr := 0; rr < reps; rr++ {
						r := RunAlgorithm(p, SamplingSuite(gamma)[ai], exact,
							cfg.Seed+int64(10000*gamma+100*ai+rr))
						ts = append(ts, r.Seconds)
						es = append(es, r.Err)
					}
					rep.Rows = append(rep.Rows, []string{
						string(kind), fmt.Sprintf("%d", n), fmt.Sprintf("%d", gamma),
						alg.Name(),
						fmt.Sprintf("%.4f", metrics.Mean(ts)),
						fmt.Sprintf("%.4f", metrics.Mean(es)),
					})
				}
			}
		}
	}
	return rep
}

// Fig9 regenerates Fig. 9: scalability over large federations with 5% free
// riders and 5% duplicated datasets; the error column is the property proxy
// (no-free-rider + symmetric-fairness violations), since exact SV is
// infeasible at this scale. Budgets follow the paper's γ = n·log n.
func Fig9(cfg FigConfig, ns []int) *Report {
	if len(ns) == 0 {
		ns = []int{20, 40, 60, 80, 100}
	}
	kind := MLP
	if len(cfg.Models) > 0 {
		kind = cfg.Models[0]
	}
	rep := &Report{
		Title:  "Fig. 9 — scalability (property-proxy error)",
		Header: []string{"n", "γ", "algorithm", "time(s)", "property error"},
		Notes:  []string{"5% free riders + 5% duplicates; error = mean of free-rider and symmetry violations"},
	}
	for _, n := range ns {
		p := NewScalabilityProblem(n, kind, cfg.Scale, cfg.Seed+int64(n))
		gamma := GammaForN(n)
		for ai, alg := range SamplingSuite(gamma) {
			r := RunAlgorithm(p, alg, nil, cfg.Seed+int64(100*ai))
			propErr := metrics.PropertyError(r.Values, p.FreeRiders, p.DuplicateGroups)
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", gamma), alg.Name(),
				fmtSecs(r.Seconds), fmt.Sprintf("%.4f", propErr),
			})
		}
	}
	return rep
}

// Fig10 regenerates Fig. 10: the run-to-run variance of the unified
// stratified framework (Alg. 1) under the MC-SV and CC-SV schemes, per γ,
// per n, per model family — the empirical counterpart of Theorem 2. The
// oracle is shared across repetitions (utilities are deterministic), so the
// measured variance is pure sampling variance, as in the paper.
func Fig10(cfg FigConfig, ns []int, gammas []int) *Report {
	if len(ns) == 0 {
		ns = []int{3, 6, 10}
	}
	rep := &Report{
		Title:  "Fig. 10 — variance of MC-SV vs CC-SV in Alg. 1",
		Header: []string{"model", "n", "γ", "Var[MC]", "Var[CC]"},
	}
	for _, kind := range cfg.Models {
		for _, n := range ns {
			p := NewFEMNISTProblem(n, kind, cfg.Scale, cfg.Seed+int64(n))
			oracle := p.Oracle() // shared: variance comes from sampling only
			sweep := gammas
			if len(sweep) == 0 {
				sweep = []int{n, 2 * n, 4 * n, 1 << uint(n)}
			}
			for _, gamma := range sweep {
				variance := func(scheme shapley.Scheme) float64 {
					var runs [][]float64
					for rr := 0; rr < cfg.Scale.Reps; rr++ {
						ctx := shapley.NewContext(oracle, cfg.Seed+int64(1000*gamma+rr)).WithSpec(p.Spec)
						v, err := shapley.NewStratified(scheme, gamma).Values(ctx)
						if err != nil {
							continue
						}
						runs = append(runs, v)
					}
					return metrics.VectorVariance(runs)
				}
				rep.Rows = append(rep.Rows, []string{
					string(kind), fmt.Sprintf("%d", n), fmt.Sprintf("%d", gamma),
					fmt.Sprintf("%.6f", variance(shapley.MC)),
					fmt.Sprintf("%.6f", variance(shapley.CC)),
				})
			}
		}
	}
	return rep
}

// Ablations compares the paper-faithful IPSS against the two design-choice
// ablations (Horvitz-Thompson rescaling of the sampled stratum; unbalanced
// P sampling), at equal budget over repeated runs — DESIGN.md E-AB1/E-AB2.
func Ablations(cfg FigConfig) *Report {
	p := NewFEMNISTProblem(cfg.N, MLP, cfg.Scale, cfg.Seed)
	exact, _ := ExactValues(p, cfg.Seed+1)
	gamma := GammaForN(cfg.N)
	variants := []shapley.Valuer{
		shapley.NewIPSS(gamma),
		&shapley.IPSS{Gamma: gamma, RescaleSampledStratum: true},
		&shapley.IPSS{Gamma: gamma, UnbalancedP: true},
	}
	rep := &Report{
		Title:  fmt.Sprintf("Ablations — IPSS design choices (γ=%d, %s)", gamma, p.Name),
		Header: []string{"variant", "mean error", "std error"},
	}
	for vi, v := range variants {
		var errs []float64
		for rr := 0; rr < cfg.Scale.Reps; rr++ {
			r := RunAlgorithm(p, v, exact, cfg.Seed+int64(100*vi+rr))
			errs = append(errs, r.Err)
		}
		rep.Rows = append(rep.Rows, []string{
			v.Name(),
			fmt.Sprintf("%.4f", metrics.Mean(errs)),
			fmt.Sprintf("%.4f", metrics.StdDev(errs)),
		})
	}
	return rep
}
