package experiments

import (
	"fmt"
	"math/rand"

	"fedshap/internal/dataset"
	"fedshap/internal/shapley"
)

// SybilSplit is an extension robustness study: a strategic client splits
// its dataset across k sybil identities hoping to collect more total value
// — the classic attack on data-marketplace payouts. The report compares
// the attacker's value before the split with the *sum* of its sybils'
// values after, for a chosen valuation algorithm. A robust payout rule
// keeps the ratio ≈ 1.
func SybilSplit(p *Problem, attacker, k int, mkAlg func(gamma int) shapley.Valuer, seed int64) (*Report, error) {
	if attacker < 0 || attacker >= p.N {
		return nil, fmt.Errorf("experiments: attacker %d out of range", attacker)
	}
	if k < 2 {
		return nil, fmt.Errorf("experiments: split count %d must be >= 2", k)
	}

	// Baseline valuation.
	gammaBefore := GammaForN(p.N)
	before := RunAlgorithm(p, mkAlg(gammaBefore), nil, seed)

	// Build the post-split federation: attacker's data divided into k
	// IID shares, each becoming its own client.
	rng := rand.New(rand.NewSource(seed + 1))
	shares := dataset.PartitionEqualIID(p.Spec.Clients[attacker], k, rng)
	clients := make([]*dataset.Dataset, 0, p.N-1+k)
	var sybilIdx []int
	for i, c := range p.Spec.Clients {
		if i == attacker {
			continue
		}
		clients = append(clients, c)
	}
	for _, s := range shares {
		sybilIdx = append(sybilIdx, len(clients))
		clients = append(clients, s)
	}
	spec := *p.Spec
	spec.Clients = clients
	split := &Problem{Name: p.Name + "/sybil", N: len(clients), Spec: &spec}

	gammaAfter := GammaForN(split.N)
	after := RunAlgorithm(split, mkAlg(gammaAfter), nil, seed+2)

	var sybilTotal float64
	for _, i := range sybilIdx {
		sybilTotal += after.Values[i]
	}
	ratio := 0.0
	if before.Values[attacker] != 0 {
		ratio = sybilTotal / before.Values[attacker]
	}
	rep := &Report{
		Title:  fmt.Sprintf("Sybil-split robustness — %s, attacker %d split %d-way", p.Name, attacker, k),
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"attacker value before split", fmt.Sprintf("%.4f", before.Values[attacker])},
			{"sum of sybil values after", fmt.Sprintf("%.4f", sybilTotal)},
			{"gain ratio (≈1 is robust)", fmt.Sprintf("%.3f", ratio)},
		},
	}
	return rep, nil
}
