package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Minimal ASCII charting so the figure runners can render the *shape* the
// paper plots — log-scale line charts for the γ-sweeps and scatter plots
// for the Pareto panels — directly in a terminal, alongside the data rows.

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a collection of series with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY plots log10(y) (the paper's error axes are logarithmic).
	LogY bool
	// Width and Height are the plot area size in characters.
	Width, Height int
}

// Render draws the chart with one marker per series ('a', 'b', ...) and a
// legend. Non-finite and (for LogY) non-positive points are skipped.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	type pt struct {
		x, y float64
		mark byte
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range c.Series {
		mark := byte('a' + si%26)
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			pts = append(pts, pt{x, y, mark})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	fmt.Fprintf(w, "-- %s --\n", c.Title)
	if len(pts) == 0 {
		fmt.Fprintln(w, "(no finite points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((p.y-minY)/(maxY-minY)*float64(height-1))
		if grid[row][col] == ' ' || grid[row][col] == p.mark {
			grid[row][col] = p.mark
		} else {
			grid[row][col] = '*' // collision
		}
	}

	yTop, yBot := maxY, minY
	suffix := ""
	if c.LogY {
		suffix = " (log10)"
	}
	fmt.Fprintf(w, "%8.3f +%s\n", yTop, "")
	for _, row := range grid {
		fmt.Fprintf(w, "         |%s\n", string(row))
	}
	fmt.Fprintf(w, "%8.3f +%s\n", yBot, strings.Repeat("-", width))
	fmt.Fprintf(w, "          %-8.3g%s%8.3g\n", minX, strings.Repeat(" ", max(1, width-16)), maxX)
	fmt.Fprintf(w, "          x: %s   y: %s%s\n", c.XLabel, c.YLabel, suffix)
	for si, s := range c.Series {
		fmt.Fprintf(w, "          %c = %s\n", byte('a'+si%26), s.Name)
	}
	fmt.Fprintln(w)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// stripBudget removes a trailing "(γ=…)" so that the same algorithm at
// different budgets forms one series.
func stripBudget(name string) string {
	if i := strings.Index(name, "(γ="); i > 0 {
		return name[:i]
	}
	return name
}

// ChartFromRows builds a chart from report rows: groupCol labels the
// series, xCol and yCol are parsed as floats (unparsable cells skipped).
func ChartFromRows(title string, rows [][]string, groupCol, xCol, yCol int, xLabel, yLabel string, logY bool) *Chart {
	series := map[string]*Series{}
	var order []string
	for _, row := range rows {
		if groupCol >= len(row) || xCol >= len(row) || yCol >= len(row) {
			continue
		}
		var x, y float64
		if _, err := fmt.Sscanf(row[xCol], "%f", &x); err != nil {
			continue
		}
		if _, err := fmt.Sscanf(row[yCol], "%f", &y); err != nil {
			continue
		}
		key := stripBudget(row[groupCol])
		s, ok := series[key]
		if !ok {
			s = &Series{Name: key}
			series[key] = s
			order = append(order, key)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	sort.Strings(order)
	c := &Chart{Title: title, XLabel: xLabel, YLabel: yLabel, LogY: logY}
	for _, key := range order {
		c.Series = append(c.Series, *series[key])
	}
	return c
}
