package experiments

import (
	"fmt"
	"math/rand"

	"fedshap/internal/combin"
	"fedshap/internal/dataset"
	"fedshap/internal/fl"
	"fedshap/internal/metrics"
	"fedshap/internal/model"
	"fedshap/internal/shapley"
	"fedshap/internal/tensor"
	"fedshap/internal/theory"
	"fedshap/internal/utility"
)

// Executable counterparts of the paper's theoretical claims, runnable from
// the bench harness: Lemma 1's closed-form expected value and Theorem 3's
// truncation-error bound, validated on actual FL linear regression.

// LinRegProblemConfig parameterises the Donahue-Kleinberg linear-regression
// federation used by the theory experiments.
type LinRegProblemConfig struct {
	N        int     // clients
	T        int     // samples per client
	Dim      int     // feature dimensionality
	Sigma    float64 // noise standard deviation
	TestSize int
	Seed     int64
}

// DefaultLinRegProblem sizes the theory experiment so OLS expectations are
// well-defined (t > dim + 1).
func DefaultLinRegProblem(seed int64) LinRegProblemConfig {
	return LinRegProblemConfig{N: 5, T: 40, Dim: 3, Sigma: 0.5, TestSize: 600, Seed: seed}
}

// NewLinRegProblem builds an FL linear-regression valuation problem with
// negative-MSE utility: standard-Gaussian features, a shared ground-truth
// weight vector, and homoscedastic noise — exactly the analysis model of
// Lemma 1 and Theorems 2-3. The FL training for a coalition is realised as
// exact OLS on the merged data (the fixed point all FedAvg rounds converge
// to for quadratic objectives), keeping the experiment free of
// optimisation noise.
func NewLinRegProblem(cfg LinRegProblemConfig) *Problem {
	rng := rand.New(rand.NewSource(cfg.Seed))
	wTrue := make([]float64, cfg.Dim)
	for j := range wTrue {
		wTrue[j] = rng.NormFloat64()
	}
	gen := func(name string, n int) (*dataset.Dataset, []float64) {
		d := dataset.New(name, n, cfg.Dim, 1)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < cfg.Dim; j++ {
				v := rng.NormFloat64()
				d.X.Set(i, j, v)
				s += wTrue[j] * v
			}
			y[i] = s + rng.NormFloat64()*cfg.Sigma
		}
		return d, y
	}

	clients := make([]*dataset.Dataset, cfg.N)
	targets := make([][]float64, cfg.N)
	for i := range clients {
		clients[i], targets[i] = gen(fmt.Sprintf("linreg/client-%d", i), cfg.T)
	}
	test, testY := gen("linreg/test", cfg.TestSize)

	// The oracle bypasses fl.Train: coalition → merged OLS fit → −MSE.
	// Real-valued targets live alongside the dataset rows.
	spec := &utility.FLSpec{
		Factory: func(seed int64) model.Model { return model.NewLinReg(cfg.Dim) },
		Clients: clients,
		Test:    test,
		Config:  fl.DefaultConfig(cfg.Seed),
		Metric:  model.Accuracy, // unused; see custom oracle below
	}
	p := &Problem{Name: fmt.Sprintf("linreg/n=%d", cfg.N), N: cfg.N, Spec: spec}
	p.customOracle = func() *utility.Oracle {
		return utility.NewOracle(cfg.N, func(s combin.Coalition) float64 {
			var rows int
			for _, i := range s.Members() {
				rows += clients[i].Len()
			}
			if rows == 0 {
				// Untrained (zero) model: −MSE of predicting 0.
				m := model.NewLinReg(cfg.Dim)
				return model.NegMSEFloat(m, test.X, testY)
			}
			X := tensor.NewMatrix(rows, cfg.Dim)
			y := make([]float64, 0, rows)
			r := 0
			for _, i := range s.Members() {
				c := clients[i]
				for k := 0; k < c.Len(); k++ {
					copy(X.Row(r), c.X.Row(k))
					r++
				}
				y = append(y, targets[i]...)
			}
			m := model.NewLinReg(cfg.Dim)
			m.FitOLS(X, y, 1e-9)
			return model.NegMSEFloat(m, test.X, testY)
		})
	}
	return p
}

// LemmaOne runs the Lemma 1 experiment: exact MC-SV values on FL linear
// regression, averaged over repetitions, against the closed-form
// prediction E[φ̂ᵢ] = (m0 − μe·|x|/(nt−|x|−1))/n.
func LemmaOne(cfg LinRegProblemConfig, reps int) *Report {
	muE := cfg.Sigma * cfg.Sigma
	rep := &Report{
		Title:  "Lemma 1 — expected data value under FL linear regression",
		Header: []string{"quantity", "value"},
	}
	var empirical, m0sum float64
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*101
		p := NewLinRegProblem(c)
		values, _ := ExactValues(p, c.Seed)
		empirical += metrics.Mean(values) / float64(reps)
		m0sum += -p.Oracle().U(combin.Empty) / float64(reps) // MSE of the zero model
	}
	predicted := theory.LemmaOneValue(cfg.N, cfg.T, cfg.Dim, muE, m0sum)
	rep.Rows = append(rep.Rows,
		[]string{"empirical mean φ (exact MC-SV)", fmt.Sprintf("%.5f", empirical)},
		[]string{"Lemma 1 closed form", fmt.Sprintf("%.5f", predicted)},
		[]string{"relative gap", fmt.Sprintf("%.4f", relGap(empirical, predicted))},
	)
	return rep
}

// TheoremThree runs the Theorem 3 experiment: the truncation error of
// K-Greedy at each k* against the theoretical bound. The bound governs the
// *expected mean value* |E[φ̂^{k*}] − E[φ]|/E[φ]; the single-draw ℓ2 vector
// error is reported alongside for context (it includes cross-client
// fluctuation the bound does not cover), so the "mean gap" column is the
// one the bound must dominate (averaged over draws).
func TheoremThree(cfg LinRegProblemConfig, reps int) *Report {
	if reps < 1 {
		reps = 1
	}
	rep := &Report{
		Title:  "Theorem 3 — truncation error vs bound (FL linear regression)",
		Header: []string{"k*", "mean gap", "l2 vec err", "bound"},
	}
	meanGap := make([]float64, cfg.N+1)
	vecErr := make([]float64, cfg.N+1)
	for r := 0; r < reps; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)*211
		p := NewLinRegProblem(c)
		exact, _ := ExactValues(p, c.Seed)
		exactMean := metrics.Mean(exact)
		for k := 1; k <= cfg.N; k++ {
			res := RunAlgorithm(p, &shapley.KGreedy{K: k}, exact, c.Seed+int64(k))
			meanGap[k] += relGap(metrics.Mean(res.Values), exactMean) / float64(reps)
			vecErr[k] += res.Err / float64(reps)
		}
	}
	for k := 1; k <= cfg.N; k++ {
		bound := theory.TheoremThreeBound(cfg.N, cfg.T, cfg.Dim, k)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.4f", meanGap[k]),
			fmt.Sprintf("%.4f", vecErr[k]),
			fmt.Sprintf("%.4f", bound),
		})
	}
	return rep
}

func relGap(a, b float64) float64 {
	den := b
	if den == 0 {
		den = 1
	}
	g := (a - b) / den
	if g < 0 {
		return -g
	}
	return g
}
