package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := &Chart{
		Title:  "test",
		XLabel: "γ",
		YLabel: "error",
		Series: []Series{
			{Name: "ipss", X: []float64{1, 2, 3}, Y: []float64{0.5, 0.1, 0.01}},
			{Name: "tmc", X: []float64{1, 2, 3}, Y: []float64{0.9, 0.5, 0.2}},
		},
		LogY: true,
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"-- test --", "a = ipss", "b = tmc", "log10"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestChartRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "no finite points") {
		t.Errorf("empty chart should say so")
	}
}

func TestChartSkipsNonPositiveOnLog(t *testing.T) {
	c := &Chart{
		Title:  "log",
		Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{0, -1}}},
		LogY:   true,
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "no finite points") {
		t.Errorf("non-positive values should be dropped on log axis")
	}
}

func TestChartFromRows(t *testing.T) {
	rows := [][]string{
		{"MLP", "8", "IPSS", "0.5436", "0.02"},
		{"MLP", "16", "IPSS", "0.0768", "0.001"},
		{"MLP", "8", "TMC", "1.3851", "0.2"},
		{"MLP", "notanumber", "TMC", "1.0", "0.2"},
	}
	c := ChartFromRows("f7", rows, 2, 1, 3, "γ", "err", true)
	if len(c.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(c.Series))
	}
	// Sorted order: IPSS before TMC.
	if c.Series[0].Name != "IPSS" || len(c.Series[0].X) != 2 {
		t.Errorf("series[0] = %+v", c.Series[0])
	}
	if len(c.Series[1].X) != 1 {
		t.Errorf("unparsable row not skipped: %+v", c.Series[1])
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "a = IPSS") {
		t.Errorf("legend missing")
	}
}
