package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFmtSecs(t *testing.T) {
	cases := map[float64]string{
		1.5e6:  "1.5e+06",
		123:    "123",
		0.1234: "0.123",
		0.0001: "0.00010",
	}
	for in, want := range cases {
		if got := fmtSecs(in); got != want {
			t.Errorf("fmtSecs(%v) = %q, want %q", in, got, want)
		}
	}
	if got := fmtSecs(math.NaN()); got != "-" {
		t.Errorf("fmtSecs(NaN) = %q", got)
	}
}

func TestFmtErr(t *testing.T) {
	if got := fmtErr(0.1234, false); got != "0.123" {
		t.Errorf("fmtErr = %q", got)
	}
	if got := fmtErr(math.NaN(), false); got != "-" {
		t.Errorf("fmtErr(NaN) = %q", got)
	}
	if got := fmtErr(0, true); got != `\` {
		t.Errorf("fmtErr(NA) = %q", got)
	}
}

func TestReportRenderAlignment(t *testing.T) {
	rep := &Report{
		Title:  "t",
		Header: []string{"aaa", "b"},
		Rows:   [][]string{{"x", "longcell"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "note: a note") {
		t.Errorf("render missing parts:\n%s", out)
	}
	// Separator row matches header width.
	if !strings.Contains(out, "---") {
		t.Errorf("no separator row")
	}
}
