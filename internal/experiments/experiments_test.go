package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"fedshap/internal/shapley"
)

// fastScale keeps harness tests quick: trivial training sizes.
func fastScale() Scale {
	sc := Tiny()
	sc.PerClient = 20
	sc.TestSamples = 60
	sc.Reps = 3
	return sc
}

func TestGammaForN(t *testing.T) {
	// Table III values.
	cases := map[int]int{3: 5, 6: 8, 10: 32}
	for n, want := range cases {
		if got := GammaForN(n); got != want {
			t.Errorf("GammaForN(%d) = %d, want %d", n, got, want)
		}
	}
	// Fig. 9 policy for other n.
	if got := GammaForN(20); got != int(math.Ceil(20*math.Log(20))) {
		t.Errorf("GammaForN(20) = %d", got)
	}
	if GammaForN(1) < 2 {
		t.Errorf("degenerate n should still get a budget")
	}
}

func TestProblemConstructors(t *testing.T) {
	sc := fastScale()
	for _, p := range []*Problem{
		NewFEMNISTProblem(3, LogReg, sc, 1),
		NewAdultProblem(3, XGB, sc, 2),
		NewSyntheticProblem(SameSizeSameDist, 4, MLP, sc, 0, 3),
		NewSyntheticProblem(SameSizeNoisyLbl, 4, MLP, sc, 0.2, 4),
		NewSyntheticProblem(SameSizeNoisyFeat, 4, MLP, sc, 0.2, 5),
		NewSyntheticProblem(SameSizeDiffDist, 4, MLP, sc, 0, 6),
		NewSyntheticProblem(DiffSizeSameDist, 4, MLP, sc, 0, 7),
	} {
		if p.N != len(p.Spec.Clients) {
			t.Errorf("%s: N=%d but %d clients", p.Name, p.N, len(p.Spec.Clients))
		}
		if p.Spec.Test.Len() == 0 {
			t.Errorf("%s: empty test set", p.Name)
		}
		for i, c := range p.Spec.Clients {
			if c == nil {
				t.Errorf("%s: nil client %d", p.Name, i)
			}
		}
	}
}

func TestScalabilityProblemInjectsProperties(t *testing.T) {
	sc := fastScale()
	p := NewScalabilityProblem(20, LogReg, sc, 9)
	if len(p.FreeRiders) != 1 || len(p.DuplicateGroups) != 1 {
		t.Fatalf("riders=%v dups=%v", p.FreeRiders, p.DuplicateGroups)
	}
	for _, i := range p.FreeRiders {
		if !p.Spec.Clients[i].IsEmpty() {
			t.Errorf("free rider %d has data", i)
		}
	}
	for _, g := range p.DuplicateGroups {
		src, dup := g[0], g[1]
		a, b := p.Spec.Clients[src], p.Spec.Clients[dup]
		if a.Len() != b.Len() {
			t.Fatalf("duplicate pair %v sizes differ", g)
		}
		for j := range a.X.Data {
			if a.X.Data[j] != b.X.Data[j] {
				t.Fatalf("duplicate pair %v differs at %d", g, j)
			}
		}
	}
}

func TestRunAlgorithmScoresAgainstExact(t *testing.T) {
	sc := fastScale()
	p := NewFEMNISTProblem(3, LogReg, sc, 11)
	exact, exactRes := ExactValues(p, 1)
	if len(exact) != 3 {
		t.Fatalf("exact len = %d", len(exact))
	}
	if exactRes.Evals != 8 {
		t.Errorf("exact evals = %d, want 2^3", exactRes.Evals)
	}
	r := RunAlgorithm(p, shapley.NewIPSS(GammaForN(3)), exact, 2)
	if math.IsNaN(r.Err) {
		t.Errorf("err not computed")
	}
	if r.Seconds <= 0 {
		t.Errorf("no time recorded")
	}
	if r.Evals > GammaForN(3) {
		t.Errorf("IPSS evals %d exceed budget", r.Evals)
	}
}

func TestPermShapleyTimeExtrapolates(t *testing.T) {
	sc := fastScale()
	p := NewFEMNISTProblem(8, LogReg, sc, 13)
	r := PermShapleyTime(p, 4, 1) // n=8 > maxExact=4 → extrapolate
	if r.Values != nil {
		t.Errorf("extrapolated run should not produce values")
	}
	if r.Seconds <= 0 {
		t.Errorf("extrapolated time = %v", r.Seconds)
	}
	// Real enumeration path.
	p3 := NewFEMNISTProblem(3, LogReg, sc, 13)
	r3 := PermShapleyTime(p3, 4, 1)
	if r3.Values == nil {
		t.Errorf("small-n run should enumerate for real")
	}
}

func TestTableIVTinyGrid(t *testing.T) {
	cfg := TableConfig{
		Ns: []int{3}, Models: []ModelKind{LogReg},
		Scale: fastScale(), Seed: 17, MaxExactPerm: 4,
	}
	rep := TableIV(cfg)
	if len(rep.Rows) != 2 { // one time row + one error row
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	if got := len(rep.Rows[0]); got != len(rep.Header) {
		t.Errorf("time row has %d cells, header %d", got, len(rep.Header))
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "IPSS") || !strings.Contains(out, "Error(l2)") {
		t.Errorf("render missing expected content:\n%s", out)
	}
}

func TestTableVXGBNotApplicable(t *testing.T) {
	cfg := TableConfig{
		Ns: []int{3}, Models: []ModelKind{XGB},
		Scale: fastScale(), Seed: 19, MaxExactPerm: 4,
	}
	rep := TableV(cfg)
	// Gradient columns (GTG, OR, λ-MR) must be "\" for XGB.
	timeRow := rep.Rows[0]
	header := rep.Header
	for i, h := range header {
		if h == "GTG-Shap." || h == "OR" || h == "λ-MR" {
			if timeRow[i] != `\` {
				t.Errorf("column %s = %q, want \\", h, timeRow[i])
			}
		}
		if h == "IPSS" && timeRow[i] == `\` {
			t.Errorf("IPSS should be applicable to XGB")
		}
	}
}

func TestFig4ErrorDropsWithK(t *testing.T) {
	cfg := FigConfig{N: 5, Models: []ModelKind{LogReg}, Scale: fastScale(), Seed: 23}
	rep := Fig4(cfg)
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rep.Rows))
	}
	// K = n row is exact: error ~0.
	last := rep.Rows[len(rep.Rows)-1][1]
	if last != "0.000" {
		t.Errorf("K=n error cell = %q, want 0.000", last)
	}
}

func TestFig1bRuns(t *testing.T) {
	cfg := FigConfig{N: 4, Models: []ModelKind{LogReg}, Scale: fastScale(), Seed: 29}
	rep := Fig1b(cfg)
	if len(rep.Rows) != 9 { // MC + 8 algorithms
		t.Errorf("rows = %d, want 9", len(rep.Rows))
	}
}

func TestFig7Runs(t *testing.T) {
	cfg := FigConfig{N: 4, Models: []ModelKind{LogReg}, Scale: fastScale(), Seed: 31}
	rep := Fig7(cfg, []int{6, 12})
	// 1 model × 2 gammas × 4 sampling algorithms.
	if len(rep.Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(rep.Rows))
	}
}

func TestFig9PropertyProxies(t *testing.T) {
	cfg := FigConfig{N: 20, Models: []ModelKind{LogReg}, Scale: fastScale(), Seed: 37}
	rep := Fig9(cfg, []int{20})
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 sampling algorithms", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[4] == "NaN" {
			t.Errorf("property error NaN for %s", row[2])
		}
	}
}

func TestFig10VarianceOrdering(t *testing.T) {
	// Theorem 2's Var[MC] < Var[CC] emerges once γ is large enough that
	// paired combinations are commonly sampled (the paper's Fig. 10 shows
	// variance rising then falling in γ; the ordering holds on the
	// descending branch). γ=48 of 64 coalitions for n=6 is that regime.
	sc := fastScale()
	sc.Reps = 25
	cfg := FigConfig{N: 6, Models: []ModelKind{LogReg}, Scale: sc, Seed: 41}
	rep := Fig10(cfg, []int{6}, []int{48})
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Parse the two variance cells and check MC <= CC (Theorem 2 shape).
	var vmc, vcc float64
	if _, err := fmtScan(rep.Rows[0][3], &vmc); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtScan(rep.Rows[0][4], &vcc); err != nil {
		t.Fatal(err)
	}
	if vmc > vcc {
		t.Errorf("Var[MC]=%v > Var[CC]=%v", vmc, vcc)
	}
}

func TestAblationsRuns(t *testing.T) {
	cfg := FigConfig{N: 5, Models: []ModelKind{LogReg}, Scale: fastScale(), Seed: 43}
	rep := Ablations(cfg)
	if len(rep.Rows) != 3 {
		t.Errorf("rows = %d, want 3 variants", len(rep.Rows))
	}
}

func TestReportRenderCSV(t *testing.T) {
	rep := &Report{
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,y", "1"}},
	}
	var buf bytes.Buffer
	rep.RenderCSV(&buf)
	if !strings.Contains(buf.String(), "\"x,y\"") {
		t.Errorf("CSV quoting broken: %q", buf.String())
	}
}

func fmtScan(s string, out *float64) (int, error) {
	return sscanf(s, out)
}

func sscanf(s string, out *float64) (int, error) {
	var v float64
	n, err := fmt.Sscanf(s, "%f", &v)
	*out = v
	return n, err
}

func TestFig6NoiseSweep(t *testing.T) {
	cfg := FigConfig{N: 4, Models: []ModelKind{LogReg}, Scale: fastScale(), Seed: 47}
	rep := Fig6Noise(cfg, []float64{0, 0.2})
	// 2 setups × 2 levels × 8 algorithms.
	if len(rep.Rows) != 32 {
		t.Fatalf("rows = %d, want 32", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[3] == "" {
			t.Errorf("missing error cell in %v", row)
		}
	}
}

func TestRunWithOracleSharedCache(t *testing.T) {
	sc := fastScale()
	p := NewFEMNISTProblem(3, LogReg, sc, 53)
	exact, _ := ExactValues(p, 1)
	oracle := p.Oracle()
	r1 := RunWithOracle(p, oracle, shapley.NewIPSS(5), exact, 2)
	r2 := RunWithOracle(p, oracle, shapley.NewIPSS(5), exact, 2)
	// Identical seeds on a shared cache: same values, full budget charged
	// to both runs despite the cache hits.
	if r1.Evals != r2.Evals {
		t.Errorf("run evals differ: %d vs %d", r1.Evals, r2.Evals)
	}
	for i := range r1.Values {
		if r1.Values[i] != r2.Values[i] {
			t.Errorf("same-seed shared-oracle runs diverge at client %d", i)
		}
	}
	// The second run should be much faster (cache hits), but that's
	// timing-dependent; assert only that it completed with valid error.
	if math.IsNaN(r2.Err) {
		t.Errorf("err missing on shared-oracle run")
	}
}

func TestMarginalCurveDecays(t *testing.T) {
	sc := fastScale()
	p := NewFEMNISTProblem(5, LogReg, sc, 59)
	rep := MarginalCurve(p, 1)
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rep.Rows))
	}
	// The first stratum's average marginal should dominate the last's —
	// diminishing returns, the paper's observation (i).
	var first, last float64
	fmt.Sscanf(rep.Rows[0][1], "%f", &first)
	fmt.Sscanf(rep.Rows[len(rep.Rows)-1][1], "%f", &last)
	if first <= last {
		t.Errorf("no diminishing returns: first %v last %v", first, last)
	}
}

func TestSummarise(t *testing.T) {
	results := [][]Result{{
		{Algorithm: "IPSS(γ=8)", Seconds: 0.1, Err: 0.05},
		{Algorithm: "Extended-TMC(γ=8)", Seconds: 0.2, Err: 0.5},
		{Algorithm: "OR", Seconds: 0.05, Err: 2.0},
		{Algorithm: "GTG-Shap.", NotApplicable: true},
		{Algorithm: "MC-Shapley", Seconds: 5, Err: math.NaN()},
	}}
	f := Summarise([]string{"p1"}, results)
	if len(f) != 1 {
		t.Fatalf("findings = %d", len(f))
	}
	if f[0].FastestAlg != "OR" || f[0].AccuratestAlg != "IPSS(γ=8)" {
		t.Errorf("winners = %q / %q", f[0].FastestAlg, f[0].AccuratestAlg)
	}
	if f[0].IPSSBoth {
		t.Errorf("IPSSBoth should be false here")
	}
	rep := SummaryReport(f)
	if len(rep.Rows) != 1 || len(rep.Notes) != 1 {
		t.Errorf("report shape wrong")
	}
	if !strings.Contains(rep.Notes[0], "most accurate in 1/1") {
		t.Errorf("note = %q", rep.Notes[0])
	}
}

func TestRunSummaryEndToEnd(t *testing.T) {
	sc := fastScale()
	problems := []*Problem{
		NewFEMNISTProblem(3, LogReg, sc, 101),
		NewSyntheticProblem(SameSizeSameDist, 4, LogReg, sc, 0, 103),
	}
	rep := RunSummary(problems, 1)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestSybilSplit(t *testing.T) {
	sc := fastScale()
	p := NewFEMNISTProblem(4, LogReg, sc, 201)
	rep, err := SybilSplit(p, 1, 2, func(g int) shapley.Valuer { return shapley.NewIPSS(g) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	var ratio float64
	fmt.Sscanf(rep.Rows[2][1], "%f", &ratio)
	// The split should not multiply the attacker's take by k; allow a broad
	// robustness band.
	if ratio < 0 || ratio > 2.5 {
		t.Errorf("gain ratio %v outside sanity band", ratio)
	}
	// Validation.
	if _, err := SybilSplit(p, 99, 2, func(g int) shapley.Valuer { return shapley.NewIPSS(g) }, 1); err == nil {
		t.Errorf("bad attacker index accepted")
	}
	if _, err := SybilSplit(p, 0, 1, func(g int) shapley.Valuer { return shapley.NewIPSS(g) }, 1); err == nil {
		t.Errorf("k=1 accepted")
	}
}
