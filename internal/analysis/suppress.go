package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// Suppression directives take the form
//
//	//fedvallint:allow(<check>) <reason>
//
// and silence diagnostics of that check on the directive's own line and
// the line immediately below it — so the directive works both as a
// trailing comment on the offending line and as a standalone comment
// above it. The reason is mandatory: an allow without a justification is
// itself a diagnostic, as is an allow naming a check that does not exist
// (so suppressions cannot outlive the analyzer they silence). Multiple
// checks may be listed comma-separated.
var directiveRe = regexp.MustCompile(`^//fedvallint:allow\(([^)]*)\)(.*)$`)

// supKey identifies one silenced (check, file, line) triple.
type supKey struct {
	check string
	file  string
	line  int
}

type supSet map[supKey]bool

func (s supSet) allows(check, file string, line int) bool {
	return s[supKey{check, file, line}]
}

// collectDirectives scans every comment in the package for fedvallint
// directives, returning the suppression set and one diagnostic per
// malformed directive (unknown check name, missing reason).
func collectDirectives(pkg *Package, known map[string]bool) (supSet, []Diagnostic) {
	sup := make(supSet)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//fedvallint:") {
						pos := pkg.Fset.Position(c.Pos())
						diags = append(diags, Diagnostic{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check:   DirectiveCheck,
							Message: "malformed fedvallint directive: want //fedvallint:allow(<check>) <reason>",
						})
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				if reason == "" {
					diags = append(diags, Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   DirectiveCheck,
						Message: "fedvallint:allow directive needs a reason after the check name",
					})
				}
				for _, check := range strings.Split(m[1], ",") {
					check = strings.TrimSpace(check)
					if !known[check] {
						diags = append(diags, Diagnostic{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Check:   DirectiveCheck,
							Message: fmt.Sprintf("fedvallint:allow names unknown check %q; run fedvallint -list for valid names", check),
						})
						continue
					}
					if reason == "" {
						continue
					}
					sup[supKey{check, pos.Filename, pos.Line}] = true
					sup[supKey{check, pos.Filename, pos.Line + 1}] = true
				}
			}
		}
	}
	return sup, diags
}
