package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Dir   string
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages with a shared file set and a
// shared source importer, so dependencies (including the standard
// library) are checked once per process, not once per package.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer — the
// only importer that works without prebuilt export data, keeping the
// module free of external dependencies.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load resolves go-style package patterns relative to the module root
// and returns the type-checked packages in deterministic (path-sorted)
// order. A pattern is either a directory ("./internal/obs", ".") or a
// recursive prefix ("./...", "./internal/..."). Directories named
// testdata, hidden directories and _-prefixed directories are skipped,
// as are _test.go files — fedvallint checks shipped code.
func (l *Loader) Load(root string, patterns ...string) ([]*Package, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if err := walkPackageDirs(filepath.Join(root, base), dirs); err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(root, pat)
		if hasGoFiles(dir) {
			dirs[dir] = true
		} else {
			return nil, fmt.Errorf("pattern %q: no Go files in %s", pat, dir)
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses every non-test Go file in dir and type-checks them as
// one package under the given import path. The import path is what
// path-sensitive analyzers (determinism's value-affecting package list)
// see, which is how the golden testdata suites impersonate real
// packages.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Dir: dir, Path: path, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// walkPackageDirs adds every directory under root containing Go files.
func walkPackageDirs(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs[p] = true
		}
		return nil
	})
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// ModuleRoot walks up from dir to the nearest directory containing
// go.mod — how cmd/fedvallint and the self-lint test find the repo root
// regardless of the working directory they start in.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}
