package analysis

import (
	"sort"
	"strings"
	"testing"

	"fedshap/internal/obs"
)

func TestAnalyzersSortedAndDocumented(t *testing.T) {
	as := Analyzers()
	if len(as) < 5 {
		t.Fatalf("expected at least 5 analyzers, got %d", len(as))
	}
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc string", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no run function", a.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("analyzer names are not sorted: %v", names)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "x.go", Line: 3, Col: 7, Check: "determinism", Message: "range over map"}
	got := d.String()
	want := "x.go:3:7: range over map [determinism]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestModuleRoot(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && root == "" {
		t.Errorf("unexpected module root %q", root)
	}
	path, err := modulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	if path != "fedshap" {
		t.Errorf("module path = %q, want fedshap", path)
	}
	if _, err := ModuleRoot("/"); err == nil {
		t.Error("expected error for directory outside any module")
	}
}

func TestMetricProblems(t *testing.T) {
	if p := MetricProblems("fedvald_jobs_total", obs.TypeCounter, 2); len(p) != 0 {
		t.Errorf("clean metric reported problems: %v", p)
	}
	p := MetricProblems("bad_name", obs.TypeCounter, 4)
	joined := strings.Join(p, "\n")
	for _, frag := range []string{"process prefix", "counter must end in _total", "cardinality ceiling"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("problems %q missing %q", joined, frag)
		}
	}
}
