package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDirectiveValidation asserts the diagnostic set for the directive
// testdata: malformed, reason-less, and unknown-check allows are all
// errors, while well-formed allows (including comma lists) suppress.
func TestDirectiveValidation(t *testing.T) {
	abs, err := filepath.Abs(filepath.Join("testdata", "src", "directive"))
	if err != nil {
		t.Fatal(err)
	}
	// A value-affecting path arms determinism alongside ctxthread, which
	// the comma-list fixture needs.
	pkg, err := testLoader().LoadDir(abs, "fedshap/internal/shapley")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, Analyzers())

	type want struct {
		check, frag string
	}
	wants := []want{
		{DirectiveCheck, `unknown check "bogus"`},
		{DirectiveCheck, "needs a reason"},
		{DirectiveCheck, "malformed fedvallint directive"},
		{"ctxthread", "outside package main"}, // unknownCheck: allow was invalid
		{"ctxthread", "outside package main"}, // missingReason: allow not registered
		{"ctxthread", "outside package main"}, // malformed: allow not parsed
	}
	used := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if !used[i] && d.Check == w.check && strings.Contains(d.Message, w.frag) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic [%s] containing %q", w.check, w.frag)
		}
	}
	for i, d := range diags {
		if !used[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestSupSetAllows(t *testing.T) {
	s := supSet{supKey{"determinism", "a.go", 10}: true}
	if !s.allows("determinism", "a.go", 10) {
		t.Error("expected suppression to apply")
	}
	if s.allows("determinism", "a.go", 11) || s.allows("ctxthread", "a.go", 10) {
		t.Error("suppression leaked to another line or check")
	}
}
