package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxThread enforces context threading: a function that receives
// a context.Context must hand that context (or one derived from it) to
// every callee that accepts one — manufacturing a fresh
// context.Background()/TODO() inside such a function severs the
// cancellation chain, which is exactly how a job cancel stops reaching a
// hot loop. Outside functions that already hold a ctx, Background/TODO
// is only legitimate at the process root: package main. Everywhere else
// the site needs a //fedvallint:allow(ctxthread) annotation explaining
// who owns the lifetime (nil-ctx compat fallbacks, daemon-scoped
// background loops).
var AnalyzerCtxThread = &Analyzer{
	Name: "ctxthread",
	Doc:  "received contexts are threaded to callees; no context.Background outside main",
	Run:  runCtxThread,
}

func runCtxThread(pass *Pass) {
	for _, f := range pass.Files {
		// funcStack tracks whether any enclosing function literal or
		// declaration receives a context parameter.
		var stack []bool
		hasCtx := func() bool {
			for _, h := range stack {
				if h {
					return true
				}
			}
			return false
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				stack = append(stack, fieldListHasContext(pass, n.Type.Params))
				if n.Body != nil {
					ast.Inspect(n.Body, visit)
				}
				stack = stack[:len(stack)-1]
				return false
			case *ast.FuncLit:
				stack = append(stack, fieldListHasContext(pass, n.Type.Params))
				ast.Inspect(n.Body, visit)
				stack = stack[:len(stack)-1]
				return false
			case *ast.CallExpr:
				if !isFreshContextCall(pass, n) {
					// Passing an untyped nil where a callee expects a
					// context severs cancellation the same way a fresh
					// Background does.
					for i, arg := range n.Args {
						if !isNilIdent(arg) {
							continue
						}
						if sig := calleeSignature(pass, n); sig != nil && i < sig.Params().Len() && isContextType(sig.Params().At(i).Type()) {
							pass.Reportf(arg.Pos(), "nil passed for a context.Context parameter: pass the caller's ctx")
						}
					}
					return true
				}
				name := "context.Background"
				if fn := calleeFunc(pass, n); fn != nil && fn.Name() == "TODO" {
					name = "context.TODO"
				}
				switch {
				case hasCtx():
					pass.Reportf(n.Pos(), "%s() inside a function that already receives a ctx: thread the caller's ctx so cancellation propagates", name)
				case pass.Pkg.Name() != "main":
					pass.Reportf(n.Pos(), "%s() outside package main: accept a ctx from the caller instead of severing the cancellation chain", name)
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
}

// fieldListHasContext reports whether any parameter has type
// context.Context.
func fieldListHasContext(pass *Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if t := pass.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// isFreshContextCall reports whether call is context.Background() or
// context.TODO().
func isFreshContextCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// calleeFunc resolves the called function object, if the callee is a
// plain identifier or selector.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// calleeSignature returns the callee's signature, or nil for
// conversions, builtins and untypeable callees.
func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
