package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader is shared across every test in the package: the source
// importer caches type-checked dependencies, so stdlib packages (context,
// sync, os, ...) are only compiled once per `go test` run.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
)

func testLoader() *Loader {
	loaderOnce.Do(func() { sharedLoader = NewLoader() })
	return sharedLoader
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantsIn parses `// want "substring"` expectations from a file, keyed
// by 1-based line number.
func wantsIn(t *testing.T, path string) map[int][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wants := make(map[int][]string)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
			wants[line] = append(wants[line], m[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return wants
}

// runGolden type-checks testdata/src/<dir> under importPath, runs the
// named analyzer, and compares the diagnostics against the file's
// `// want` comments: every diagnostic must match an expectation on its
// line, and every expectation must be hit.
func runGolden(t *testing.T, check, dir, importPath string) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := testLoader().LoadDir(abs, importPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, check)})

	wants := make(map[string]map[int][]string)
	matched := make(map[string]map[int][]bool)
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		p := filepath.Join(abs, e.Name())
		wants[p] = wantsIn(t, p)
		matched[p] = make(map[int][]bool)
		for line, frags := range wants[p] {
			matched[p][line] = make([]bool, len(frags))
		}
	}

	for _, d := range diags {
		frags := wants[d.File][d.Line]
		hit := false
		for i, frag := range frags {
			if strings.Contains(d.Message, frag) && !matched[d.File][d.Line][i] {
				matched[d.File][d.Line][i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for path, byLine := range matched {
		for line, hits := range byLine {
			for i, hit := range hits {
				if !hit {
					t.Errorf("%s:%d: expected diagnostic containing %q, got none",
						path, line, wants[path][line][i])
				}
			}
		}
	}
}

func TestGoldenDeterminism(t *testing.T) {
	// The testdata only arms the analyzer when checked under a
	// value-affecting import path.
	runGolden(t, "determinism", "determinism", "fedshap/internal/shapley")
}

func TestDeterminismNeutralPath(t *testing.T) {
	// The same files under a neutral path are out of scope: wall-clock
	// and global rand are fine in, say, telemetry code.
	abs, err := filepath.Abs(filepath.Join("testdata", "src", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := testLoader().LoadDir(abs, "example.com/neutral")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "determinism")}) {
		t.Errorf("unexpected diagnostic under neutral path: %s", d)
	}
}

func TestGoldenCtxThread(t *testing.T) {
	runGolden(t, "ctxthread", "ctxthread", "example.com/ctxthread")
}

func TestGoldenLockHygiene(t *testing.T) {
	runGolden(t, "lockhygiene", "lockhygiene", "example.com/lockhygiene")
}

func TestGoldenDurability(t *testing.T) {
	runGolden(t, "durability", "durability", "example.com/durability")
}

func TestGoldenObsMetrics(t *testing.T) {
	runGolden(t, "obsmetrics", "obsmetrics", "example.com/obsmetrics")
}

// TestSelfLint runs every analyzer over the whole repository and demands
// a clean report: any new violation must be fixed or carry a justified
// fedvallint:allow before it can merge.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo type check is slow; skipped in -short mode")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := testLoader().Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("repository is not fedvallint-clean: %s", d)
	}
}
